file(REMOVE_RECURSE
  "libexw_cfd.a"
)
