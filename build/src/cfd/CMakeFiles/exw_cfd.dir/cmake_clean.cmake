file(REMOVE_RECURSE
  "CMakeFiles/exw_cfd.dir/config.cpp.o"
  "CMakeFiles/exw_cfd.dir/config.cpp.o.d"
  "CMakeFiles/exw_cfd.dir/simulation.cpp.o"
  "CMakeFiles/exw_cfd.dir/simulation.cpp.o.d"
  "libexw_cfd.a"
  "libexw_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
