# Empty dependencies file for exw_cfd.
# This may be replaced when dependencies are built.
