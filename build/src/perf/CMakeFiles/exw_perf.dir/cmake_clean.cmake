file(REMOVE_RECURSE
  "CMakeFiles/exw_perf.dir/machine_model.cpp.o"
  "CMakeFiles/exw_perf.dir/machine_model.cpp.o.d"
  "CMakeFiles/exw_perf.dir/tracer.cpp.o"
  "CMakeFiles/exw_perf.dir/tracer.cpp.o.d"
  "libexw_perf.a"
  "libexw_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
