# Empty dependencies file for exw_perf.
# This may be replaced when dependencies are built.
