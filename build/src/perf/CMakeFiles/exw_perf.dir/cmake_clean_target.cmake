file(REMOVE_RECURSE
  "libexw_perf.a"
)
