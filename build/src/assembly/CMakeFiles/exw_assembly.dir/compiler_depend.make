# Empty compiler generated dependencies file for exw_assembly.
# This may be replaced when dependencies are built.
