file(REMOVE_RECURSE
  "libexw_assembly.a"
)
