file(REMOVE_RECURSE
  "CMakeFiles/exw_assembly.dir/global.cpp.o"
  "CMakeFiles/exw_assembly.dir/global.cpp.o.d"
  "CMakeFiles/exw_assembly.dir/graph.cpp.o"
  "CMakeFiles/exw_assembly.dir/graph.cpp.o.d"
  "CMakeFiles/exw_assembly.dir/ij.cpp.o"
  "CMakeFiles/exw_assembly.dir/ij.cpp.o.d"
  "CMakeFiles/exw_assembly.dir/layout.cpp.o"
  "CMakeFiles/exw_assembly.dir/layout.cpp.o.d"
  "libexw_assembly.a"
  "libexw_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
