# Empty compiler generated dependencies file for exw_mesh.
# This may be replaced when dependencies are built.
