file(REMOVE_RECURSE
  "libexw_mesh.a"
)
