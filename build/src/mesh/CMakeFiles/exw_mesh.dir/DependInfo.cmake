
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/generators.cpp" "src/mesh/CMakeFiles/exw_mesh.dir/generators.cpp.o" "gcc" "src/mesh/CMakeFiles/exw_mesh.dir/generators.cpp.o.d"
  "/root/repo/src/mesh/meshdb.cpp" "src/mesh/CMakeFiles/exw_mesh.dir/meshdb.cpp.o" "gcc" "src/mesh/CMakeFiles/exw_mesh.dir/meshdb.cpp.o.d"
  "/root/repo/src/mesh/motion.cpp" "src/mesh/CMakeFiles/exw_mesh.dir/motion.cpp.o" "gcc" "src/mesh/CMakeFiles/exw_mesh.dir/motion.cpp.o.d"
  "/root/repo/src/mesh/overset.cpp" "src/mesh/CMakeFiles/exw_mesh.dir/overset.cpp.o" "gcc" "src/mesh/CMakeFiles/exw_mesh.dir/overset.cpp.o.d"
  "/root/repo/src/mesh/quality.cpp" "src/mesh/CMakeFiles/exw_mesh.dir/quality.cpp.o" "gcc" "src/mesh/CMakeFiles/exw_mesh.dir/quality.cpp.o.d"
  "/root/repo/src/mesh/vtk_writer.cpp" "src/mesh/CMakeFiles/exw_mesh.dir/vtk_writer.cpp.o" "gcc" "src/mesh/CMakeFiles/exw_mesh.dir/vtk_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
