file(REMOVE_RECURSE
  "CMakeFiles/exw_mesh.dir/generators.cpp.o"
  "CMakeFiles/exw_mesh.dir/generators.cpp.o.d"
  "CMakeFiles/exw_mesh.dir/meshdb.cpp.o"
  "CMakeFiles/exw_mesh.dir/meshdb.cpp.o.d"
  "CMakeFiles/exw_mesh.dir/motion.cpp.o"
  "CMakeFiles/exw_mesh.dir/motion.cpp.o.d"
  "CMakeFiles/exw_mesh.dir/overset.cpp.o"
  "CMakeFiles/exw_mesh.dir/overset.cpp.o.d"
  "CMakeFiles/exw_mesh.dir/quality.cpp.o"
  "CMakeFiles/exw_mesh.dir/quality.cpp.o.d"
  "CMakeFiles/exw_mesh.dir/vtk_writer.cpp.o"
  "CMakeFiles/exw_mesh.dir/vtk_writer.cpp.o.d"
  "libexw_mesh.a"
  "libexw_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
