file(REMOVE_RECURSE
  "libexw_par.a"
)
