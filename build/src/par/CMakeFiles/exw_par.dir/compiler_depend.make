# Empty compiler generated dependencies file for exw_par.
# This may be replaced when dependencies are built.
