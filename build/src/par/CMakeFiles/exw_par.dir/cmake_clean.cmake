file(REMOVE_RECURSE
  "CMakeFiles/exw_par.dir/partition.cpp.o"
  "CMakeFiles/exw_par.dir/partition.cpp.o.d"
  "CMakeFiles/exw_par.dir/runtime.cpp.o"
  "CMakeFiles/exw_par.dir/runtime.cpp.o.d"
  "libexw_par.a"
  "libexw_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
