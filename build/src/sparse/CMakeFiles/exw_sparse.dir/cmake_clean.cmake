file(REMOVE_RECURSE
  "CMakeFiles/exw_sparse.dir/coo.cpp.o"
  "CMakeFiles/exw_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/exw_sparse.dir/csr.cpp.o"
  "CMakeFiles/exw_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/exw_sparse.dir/dense.cpp.o"
  "CMakeFiles/exw_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/exw_sparse.dir/spgemm.cpp.o"
  "CMakeFiles/exw_sparse.dir/spgemm.cpp.o.d"
  "libexw_sparse.a"
  "libexw_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
