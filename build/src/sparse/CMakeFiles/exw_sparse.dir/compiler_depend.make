# Empty compiler generated dependencies file for exw_sparse.
# This may be replaced when dependencies are built.
