
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/exw_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/exw_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/exw_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/exw_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/exw_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/exw_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/spgemm.cpp" "src/sparse/CMakeFiles/exw_sparse.dir/spgemm.cpp.o" "gcc" "src/sparse/CMakeFiles/exw_sparse.dir/spgemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
