file(REMOVE_RECURSE
  "libexw_sparse.a"
)
