file(REMOVE_RECURSE
  "libexw_amg.a"
)
