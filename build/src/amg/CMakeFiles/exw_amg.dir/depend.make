# Empty dependencies file for exw_amg.
# This may be replaced when dependencies are built.
