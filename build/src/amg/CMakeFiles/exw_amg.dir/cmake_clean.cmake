file(REMOVE_RECURSE
  "CMakeFiles/exw_amg.dir/coarsen.cpp.o"
  "CMakeFiles/exw_amg.dir/coarsen.cpp.o.d"
  "CMakeFiles/exw_amg.dir/hierarchy.cpp.o"
  "CMakeFiles/exw_amg.dir/hierarchy.cpp.o.d"
  "CMakeFiles/exw_amg.dir/interp.cpp.o"
  "CMakeFiles/exw_amg.dir/interp.cpp.o.d"
  "CMakeFiles/exw_amg.dir/rap.cpp.o"
  "CMakeFiles/exw_amg.dir/rap.cpp.o.d"
  "CMakeFiles/exw_amg.dir/smoothers.cpp.o"
  "CMakeFiles/exw_amg.dir/smoothers.cpp.o.d"
  "CMakeFiles/exw_amg.dir/soc.cpp.o"
  "CMakeFiles/exw_amg.dir/soc.cpp.o.d"
  "libexw_amg.a"
  "libexw_amg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
