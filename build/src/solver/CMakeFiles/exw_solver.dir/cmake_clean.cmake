file(REMOVE_RECURSE
  "CMakeFiles/exw_solver.dir/gmres.cpp.o"
  "CMakeFiles/exw_solver.dir/gmres.cpp.o.d"
  "CMakeFiles/exw_solver.dir/krylov.cpp.o"
  "CMakeFiles/exw_solver.dir/krylov.cpp.o.d"
  "libexw_solver.a"
  "libexw_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
