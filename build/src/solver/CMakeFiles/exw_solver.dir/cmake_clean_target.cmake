file(REMOVE_RECURSE
  "libexw_solver.a"
)
