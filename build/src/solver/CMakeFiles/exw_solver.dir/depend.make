# Empty dependencies file for exw_solver.
# This may be replaced when dependencies are built.
