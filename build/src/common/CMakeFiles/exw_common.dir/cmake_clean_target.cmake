file(REMOVE_RECURSE
  "libexw_common.a"
)
