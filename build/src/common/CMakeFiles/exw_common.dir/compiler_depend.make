# Empty compiler generated dependencies file for exw_common.
# This may be replaced when dependencies are built.
