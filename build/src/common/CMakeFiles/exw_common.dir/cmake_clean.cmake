file(REMOVE_RECURSE
  "CMakeFiles/exw_common.dir/error.cpp.o"
  "CMakeFiles/exw_common.dir/error.cpp.o.d"
  "libexw_common.a"
  "libexw_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
