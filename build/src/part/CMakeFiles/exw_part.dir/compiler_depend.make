# Empty compiler generated dependencies file for exw_part.
# This may be replaced when dependencies are built.
