file(REMOVE_RECURSE
  "libexw_part.a"
)
