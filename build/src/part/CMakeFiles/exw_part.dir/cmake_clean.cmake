file(REMOVE_RECURSE
  "CMakeFiles/exw_part.dir/graph_partition.cpp.o"
  "CMakeFiles/exw_part.dir/graph_partition.cpp.o.d"
  "CMakeFiles/exw_part.dir/rcb.cpp.o"
  "CMakeFiles/exw_part.dir/rcb.cpp.o.d"
  "CMakeFiles/exw_part.dir/renumber.cpp.o"
  "CMakeFiles/exw_part.dir/renumber.cpp.o.d"
  "libexw_part.a"
  "libexw_part.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_part.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
