
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/part/graph_partition.cpp" "src/part/CMakeFiles/exw_part.dir/graph_partition.cpp.o" "gcc" "src/part/CMakeFiles/exw_part.dir/graph_partition.cpp.o.d"
  "/root/repo/src/part/rcb.cpp" "src/part/CMakeFiles/exw_part.dir/rcb.cpp.o" "gcc" "src/part/CMakeFiles/exw_part.dir/rcb.cpp.o.d"
  "/root/repo/src/part/renumber.cpp" "src/part/CMakeFiles/exw_part.dir/renumber.cpp.o" "gcc" "src/part/CMakeFiles/exw_part.dir/renumber.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/exw_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/exw_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/exw_par.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/exw_perf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
