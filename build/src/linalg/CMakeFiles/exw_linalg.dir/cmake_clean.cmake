file(REMOVE_RECURSE
  "CMakeFiles/exw_linalg.dir/parcsr.cpp.o"
  "CMakeFiles/exw_linalg.dir/parcsr.cpp.o.d"
  "CMakeFiles/exw_linalg.dir/parvector.cpp.o"
  "CMakeFiles/exw_linalg.dir/parvector.cpp.o.d"
  "libexw_linalg.a"
  "libexw_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exw_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
