# Empty dependencies file for exw_linalg.
# This may be replaced when dependencies are built.
