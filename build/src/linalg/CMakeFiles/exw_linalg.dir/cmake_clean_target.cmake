file(REMOVE_RECURSE
  "libexw_linalg.a"
)
