# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_prim[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_perf_par[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_assembly[1]_include.cmake")
include("/root/repo/build/tests/test_amg[1]_include.cmake")
include("/root/repo/build/tests/test_smoothers[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_cfd[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
