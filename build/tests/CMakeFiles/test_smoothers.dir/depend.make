# Empty dependencies file for test_smoothers.
# This may be replaced when dependencies are built.
