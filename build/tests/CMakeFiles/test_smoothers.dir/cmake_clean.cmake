file(REMOVE_RECURSE
  "CMakeFiles/test_smoothers.dir/test_smoothers.cpp.o"
  "CMakeFiles/test_smoothers.dir/test_smoothers.cpp.o.d"
  "test_smoothers"
  "test_smoothers.pdb"
  "test_smoothers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoothers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
