file(REMOVE_RECURSE
  "CMakeFiles/test_cfd.dir/test_cfd.cpp.o"
  "CMakeFiles/test_cfd.dir/test_cfd.cpp.o.d"
  "test_cfd"
  "test_cfd.pdb"
  "test_cfd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
