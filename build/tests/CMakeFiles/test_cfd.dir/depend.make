# Empty dependencies file for test_cfd.
# This may be replaced when dependencies are built.
