# Empty compiler generated dependencies file for test_assembly.
# This may be replaced when dependencies are built.
