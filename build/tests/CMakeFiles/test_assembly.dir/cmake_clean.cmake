file(REMOVE_RECURSE
  "CMakeFiles/test_assembly.dir/test_assembly.cpp.o"
  "CMakeFiles/test_assembly.dir/test_assembly.cpp.o.d"
  "test_assembly"
  "test_assembly.pdb"
  "test_assembly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
