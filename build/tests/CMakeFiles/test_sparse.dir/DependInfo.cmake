
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/test_sparse.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/test_sparse.dir/test_sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfd/CMakeFiles/exw_cfd.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/exw_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/amg/CMakeFiles/exw_amg.dir/DependInfo.cmake"
  "/root/repo/build/src/assembly/CMakeFiles/exw_assembly.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/exw_part.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/exw_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/exw_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/exw_par.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/exw_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/exw_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/exw_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
