# Empty compiler generated dependencies file for test_perf_par.
# This may be replaced when dependencies are built.
