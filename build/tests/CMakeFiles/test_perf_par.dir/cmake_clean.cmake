file(REMOVE_RECURSE
  "CMakeFiles/test_perf_par.dir/test_perf_par.cpp.o"
  "CMakeFiles/test_perf_par.dir/test_perf_par.cpp.o.d"
  "test_perf_par"
  "test_perf_par.pdb"
  "test_perf_par[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
