file(REMOVE_RECURSE
  "CMakeFiles/test_amg.dir/test_amg.cpp.o"
  "CMakeFiles/test_amg.dir/test_amg.cpp.o.d"
  "test_amg"
  "test_amg.pdb"
  "test_amg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
