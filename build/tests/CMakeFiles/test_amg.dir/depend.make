# Empty dependencies file for test_amg.
# This may be replaced when dependencies are built.
