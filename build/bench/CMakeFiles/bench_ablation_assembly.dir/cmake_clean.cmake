file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_assembly.dir/bench_ablation_assembly.cpp.o"
  "CMakeFiles/bench_ablation_assembly.dir/bench_ablation_assembly.cpp.o.d"
  "bench_ablation_assembly"
  "bench_ablation_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
