# Empty dependencies file for bench_ablation_assembly.
# This may be replaced when dependencies are built.
