file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nnz_balance.dir/bench_fig5_nnz_balance.cpp.o"
  "CMakeFiles/bench_fig5_nnz_balance.dir/bench_fig5_nnz_balance.cpp.o.d"
  "bench_fig5_nnz_balance"
  "bench_fig5_nnz_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nnz_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
