# Empty dependencies file for bench_fig5_nnz_balance.
# This may be replaced when dependencies are built.
