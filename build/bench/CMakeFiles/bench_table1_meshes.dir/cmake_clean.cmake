file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_meshes.dir/bench_table1_meshes.cpp.o"
  "CMakeFiles/bench_table1_meshes.dir/bench_table1_meshes.cpp.o.d"
  "bench_table1_meshes"
  "bench_table1_meshes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_meshes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
