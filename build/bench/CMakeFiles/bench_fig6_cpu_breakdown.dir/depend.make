# Empty dependencies file for bench_fig6_cpu_breakdown.
# This may be replaced when dependencies are built.
