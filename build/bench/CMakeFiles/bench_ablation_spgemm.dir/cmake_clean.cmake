file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spgemm.dir/bench_ablation_spgemm.cpp.o"
  "CMakeFiles/bench_ablation_spgemm.dir/bench_ablation_spgemm.cpp.o.d"
  "bench_ablation_spgemm"
  "bench_ablation_spgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
