# Empty compiler generated dependencies file for bench_ablation_spgemm.
# This may be replaced when dependencies are built.
