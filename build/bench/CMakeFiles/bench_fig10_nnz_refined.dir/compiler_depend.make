# Empty compiler generated dependencies file for bench_fig10_nnz_refined.
# This may be replaced when dependencies are built.
