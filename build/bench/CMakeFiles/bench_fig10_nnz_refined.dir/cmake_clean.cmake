file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_nnz_refined.dir/bench_fig10_nnz_refined.cpp.o"
  "CMakeFiles/bench_fig10_nnz_refined.dir/bench_fig10_nnz_refined.cpp.o.d"
  "bench_fig10_nnz_refined"
  "bench_fig10_nnz_refined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_nnz_refined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
