file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_two_turbine.dir/bench_fig8_two_turbine.cpp.o"
  "CMakeFiles/bench_fig8_two_turbine.dir/bench_fig8_two_turbine.cpp.o.d"
  "bench_fig8_two_turbine"
  "bench_fig8_two_turbine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_two_turbine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
