# Empty dependencies file for bench_fig8_two_turbine.
# This may be replaced when dependencies are built.
