file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_smoother.dir/bench_ablation_smoother.cpp.o"
  "CMakeFiles/bench_ablation_smoother.dir/bench_ablation_smoother.cpp.o.d"
  "bench_ablation_smoother"
  "bench_ablation_smoother.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_smoother.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
