# Empty dependencies file for bench_ablation_smoother.
# This may be replaced when dependencies are built.
