# Empty dependencies file for bench_fig9_refined.
# This may be replaced when dependencies are built.
