file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_refined.dir/bench_fig9_refined.cpp.o"
  "CMakeFiles/bench_fig9_refined.dir/bench_fig9_refined.cpp.o.d"
  "bench_fig9_refined"
  "bench_fig9_refined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_refined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
