# Empty dependencies file for bench_ablation_interp.
# This may be replaced when dependencies are built.
