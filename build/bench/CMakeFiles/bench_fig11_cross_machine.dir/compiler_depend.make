# Empty compiler generated dependencies file for bench_fig11_cross_machine.
# This may be replaced when dependencies are built.
