file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cross_machine.dir/bench_fig11_cross_machine.cpp.o"
  "CMakeFiles/bench_fig11_cross_machine.dir/bench_fig11_cross_machine.cpp.o.d"
  "bench_fig11_cross_machine"
  "bench_fig11_cross_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cross_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
