file(REMOVE_RECURSE
  "CMakeFiles/overset_two_turbine.dir/overset_two_turbine.cpp.o"
  "CMakeFiles/overset_two_turbine.dir/overset_two_turbine.cpp.o.d"
  "overset_two_turbine"
  "overset_two_turbine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overset_two_turbine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
