# Empty compiler generated dependencies file for overset_two_turbine.
# This may be replaced when dependencies are built.
