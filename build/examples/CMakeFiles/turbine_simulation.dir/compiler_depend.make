# Empty compiler generated dependencies file for turbine_simulation.
# This may be replaced when dependencies are built.
