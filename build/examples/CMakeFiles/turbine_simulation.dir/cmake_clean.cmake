file(REMOVE_RECURSE
  "CMakeFiles/turbine_simulation.dir/turbine_simulation.cpp.o"
  "CMakeFiles/turbine_simulation.dir/turbine_simulation.cpp.o.d"
  "turbine_simulation"
  "turbine_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbine_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
