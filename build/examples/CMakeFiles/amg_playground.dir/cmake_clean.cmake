file(REMOVE_RECURSE
  "CMakeFiles/amg_playground.dir/amg_playground.cpp.o"
  "CMakeFiles/amg_playground.dir/amg_playground.cpp.o.d"
  "amg_playground"
  "amg_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amg_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
