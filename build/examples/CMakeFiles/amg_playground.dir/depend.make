# Empty dependencies file for amg_playground.
# This may be replaced when dependencies are built.
