// Blade-resolved single-turbine simulation — the paper's core workload.
//
// Runs the NREL-5MW-like overset case (rotating rotor disc mesh inside a
// graded background) for a few time steps and prints, per step, the
// solver statistics and the modeled nonlinear-iteration (NLI) time under
// the Summit GPU, Summit CPU, and Eagle GPU machine models.
//
//   ./build/examples/turbine_simulation [refine] [nranks] [steps] [vtk_prefix]
//
// With a vtk_prefix, the final fields are written as legacy VTK files
// (one per component mesh) for ParaView — the paper's Fig. 2 style
// flow-field visualization.

#include <cstdio>
#include <cstdlib>

#include "cfd/simulation.hpp"

using namespace exw;

int main(int argc, char** argv) {
  const double refine = argc > 1 ? std::atof(argv[1]) : 0.5;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 24;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 3;

  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("case: %s | %lld mesh nodes (%zu meshes), %zu overset fringe "
              "constraints\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()),
              sys.meshes.size(), sys.constraints.size());
  for (const auto& m : sys.meshes) {
    std::printf("  mesh %-12s nodes=%lld hexes=%lld\n", m.name.c_str(),
                static_cast<long long>(m.num_nodes().value()),
                static_cast<long long>(m.num_hexes().value()));
  }

  par::Runtime rt(nranks);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfd::Simulation sim(sys, cfg, rt);

  const auto gpu = perf::MachineModel::summit_gpu();
  const auto cpu = perf::MachineModel::summit_cpu();
  const auto eagle = perf::MachineModel::eagle_gpu();

  std::printf("\n%4s %10s %10s %8s %8s %8s | %10s %10s %10s\n", "step",
              "div_rms", "vel_rms", "mom_it", "prs_it", "scl_it",
              "NLI@Summit", "NLI@Eagle", "NLI@CPUmdl");
  for (int s = 0; s < steps; ++s) {
    rt.tracer().reset();
    sim.step();
    const auto& nli = rt.tracer().phase("nli");
    std::printf("%4d %10.3e %10.3f %8d %8d %8d | %9.3fs %9.3fs %9.3fs\n", s,
                static_cast<double>(sim.divergence_rms()),
                static_cast<double>(sim.velocity_rms()),
                sim.momentum_stats().gmres_iterations,
                sim.continuity_stats().gmres_iterations,
                sim.scalar_stats().gmres_iterations, nli.modeled_time(gpu),
                nli.modeled_time(eagle), nli.modeled_time(cpu));
  }

  // Per-equation breakdown of the last step (the Figs. 6-7 shape).
  std::printf("\npressure-Poisson breakdown of last step (SummitGPU model):\n");
  auto& tr = rt.tracer();
  for (const char* phase : {"physics", "local", "global", "setup", "solve"}) {
    const std::string full = std::string("nli/continuity/") + phase;
    if (tr.has_phase(full)) {
      std::printf("  %-8s %.4f s\n", phase, tr.phase_time(full, gpu));
    }
  }
  std::printf("AMG: %d levels, operator complexity %.2f\n",
              sim.continuity_stats().amg_levels,
              sim.continuity_stats().amg_operator_complexity);
  if (argc > 4) {
    const bool ok = sim.write_vtk(argv[4]);
    std::printf("VTK fields written with prefix '%s': %s\n", argv[4],
                ok ? "ok" : "FAILED");
  }
  return 0;
}
