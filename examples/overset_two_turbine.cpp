// Two turbines in sequence (the paper's dual-turbine case): demonstrates
// the overset machinery — two rotating rotor meshes embedded in one
// background, per-mesh systems coupled through fringe exchange — and the
// wake interaction measured through the transported scalar.
//
//   ./build/examples/overset_two_turbine [refine] [nranks] [steps]

#include <cstdio>
#include <cstdlib>

#include "cfd/simulation.hpp"

using namespace exw;

int main(int argc, char** argv) {
  const double refine = argc > 1 ? std::atof(argv[1]) : 0.4;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 24;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 3;

  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kDual, refine);
  std::printf("case: %s | %lld nodes over %zu component meshes\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()),
              sys.meshes.size());

  // Overset inventory: which mesh donates to which.
  std::vector<std::vector<int>> donations(sys.meshes.size(),
                                          std::vector<int>(sys.meshes.size(), 0));
  for (const auto& c : sys.constraints) {
    donations[static_cast<std::size_t>(c.donor_mesh)]
             [static_cast<std::size_t>(c.mesh)] += 1;
  }
  std::printf("overset donor -> receptor constraint counts:\n");
  for (std::size_t d = 0; d < donations.size(); ++d) {
    for (std::size_t m = 0; m < donations.size(); ++m) {
      if (donations[d][m] > 0) {
        std::printf("  %-12s -> %-12s : %d fringe nodes\n",
                    sys.meshes[d].name.c_str(), sys.meshes[m].name.c_str(),
                    donations[d][m]);
      }
    }
  }

  par::Runtime rt(nranks);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfd::Simulation sim(sys, cfg, rt);

  for (int s = 0; s < steps; ++s) {
    rt.tracer().reset();
    sim.step();
    const auto& nli = rt.tracer().phase("nli");
    std::printf(
        "step %d: div=%.3e vel=%.3f scalar=%.4f prs_it=%d | NLI(gpu)=%.3f s\n",
        s, static_cast<double>(sim.divergence_rms()),
        static_cast<double>(sim.velocity_rms()),
        static_cast<double>(sim.scalar_mean()),
        sim.continuity_stats().gmres_iterations,
        nli.modeled_time(perf::MachineModel::summit_gpu()));
  }

  std::printf("\nrotor azimuths advanced independently; connectivity was "
              "rebuilt every step (%zu constraints).\n",
              sys.constraints.size());
  return 0;
}
