// Quickstart: assemble a pressure-Poisson-type system on a graded box
// mesh through the hypre-style IJ interface and solve it with the
// paper's solver configuration (AMG-preconditioned one-reduce GMRES).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [nranks]

#include <cstdio>
#include <cstdlib>

#include "assembly/ij.hpp"
#include "mesh/meshdb.hpp"
#include "solver/gmres.hpp"

using namespace exw;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 8;

  // 1. A graded box mesh (boundary-layer-like clustering in z).
  mesh::MeshDB db;
  const GlobalIndex n{24};
  mesh::StructuredBlockBuilder block(n, n, n);
  block.emit(db, [&](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    const Real t = static_cast<Real>(k.value()) / static_cast<Real>(n.value());
    return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                24.0 * t * t};  // quadratic clustering: anisotropic cells
  });
  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  std::printf("mesh: %lld nodes, %lld hexes, %lld dual edges\n",
              static_cast<long long>(db.num_nodes().value()),
              static_cast<long long>(db.num_hexes().value()),
              static_cast<long long>(db.num_edges().value()));

  // 2. A simulated distributed runtime with `nranks` ranks.
  par::Runtime rt(nranks);
  const auto rows = par::RowPartition::even(db.num_nodes(), nranks);

  // 3. Assemble the Laplacian + RHS through the six-call IJ pattern.
  //    (Real applications use the assembly::EquationGraph pipeline; the
  //    IJ interface is the low-level entry point, as in hypre.)
  assembly::IJMatrix ij_mat(rt, rows, rows);
  assembly::IJVector ij_rhs(rt, rows);
  std::vector<std::vector<GlobalIndex>> ri(static_cast<std::size_t>(nranks)),
      ci(static_cast<std::size_t>(nranks));
  std::vector<std::vector<Real>> vi(static_cast<std::size_t>(nranks));
  auto push = [&](RankId r, GlobalIndex row, GlobalIndex col, Real v) {
    ri[static_cast<std::size_t>(r)].push_back(row);
    ci[static_cast<std::size_t>(r)].push_back(col);
    vi[static_cast<std::size_t>(r)].push_back(v);
  };
  // Each edge is "evaluated" by the owner of its lower endpoint; the
  // contribution to the other row goes through AddToValues2.
  for (const auto& e : db.edges) {
    const RankId r = rows.rank_of(std::min(e.a, e.b));
    push(r, e.a, e.a, e.coeff + 1e-6);
    push(r, e.a, e.b, -e.coeff);
    push(r, e.b, e.b, e.coeff + 1e-6);
    push(r, e.b, e.a, -e.coeff);
  }
  for (RankId r{0}; r.value() < nranks; ++r) {
    // Split into owned rows (SetValues2) and off-rank rows (AddToValues2).
    std::vector<GlobalIndex> orow, ocol, srow, scol;
    std::vector<Real> oval, sval;
    for (std::size_t k = 0; k < ri[static_cast<std::size_t>(r)].size(); ++k) {
      if (rows.owns(r, ri[static_cast<std::size_t>(r)][k])) {
        orow.push_back(ri[static_cast<std::size_t>(r)][k]);
        ocol.push_back(ci[static_cast<std::size_t>(r)][k]);
        oval.push_back(vi[static_cast<std::size_t>(r)][k]);
      } else {
        srow.push_back(ri[static_cast<std::size_t>(r)][k]);
        scol.push_back(ci[static_cast<std::size_t>(r)][k]);
        sval.push_back(vi[static_cast<std::size_t>(r)][k]);
      }
    }
    ij_mat.SetValues2(r, orow, ocol, oval);
    ij_mat.AddToValues2(r, srow, scol, sval);
    // RHS: unit source on owned rows.
    std::vector<GlobalIndex> rr;
    std::vector<Real> rv;
    for (GlobalIndex g = rows.first_row(r); g < rows.end_row(r); ++g) {
      rr.push_back(g);
      rv.push_back(1.0);
    }
    ij_rhs.SetValues2(r, rr, rv);
  }
  const linalg::ParCsr a = ij_mat.Assemble();   // Algorithm 1
  const linalg::ParVector b = ij_rhs.Assemble();  // Algorithm 2
  std::printf("matrix: %lld rows, %lld nonzeros over %d ranks\n",
              static_cast<long long>(a.global_rows().value()),
              static_cast<long long>(a.global_nnz().value()), nranks);

  // 4. BoomerAMG-style preconditioner (aggressive PMIS + MM-ext + two-
  //    stage Gauss-Seidel) inside one-reduce GMRES.
  amg::AmgConfig amg_cfg;
  solver::AmgPrecond precond(a, amg_cfg);
  std::printf("%s\n", precond.hierarchy().describe().c_str());

  linalg::ParVector x(rt, rows);
  solver::GmresOptions opts;
  opts.rel_tol = 1e-8;
  const auto stats = solver::gmres_solve(a, b, x, precond, opts);
  std::printf("GMRES: %d iterations, converged=%d, ||r||/||r0|| = %.3e\n",
              stats.iterations, stats.converged ? 1 : 0,
              stats.final_residual / stats.initial_residual);

  // 5. Modeled cost of the solve under the paper's platforms.
  const auto& root = rt.tracer().phase("");
  std::printf("modeled time:  SummitGPU %.4f s | EagleGPU %.4f s | "
              "SummitCPU %.4f s (per-rank work identical, clock differs)\n",
              root.modeled_time(perf::MachineModel::summit_gpu()),
              root.modeled_time(perf::MachineModel::eagle_gpu()),
              root.modeled_time(perf::MachineModel::summit_cpu()));
  return stats.converged ? 0 : 1;
}
