// AMG playground: builds the actual turbine pressure-Poisson matrix and
// sweeps the BoomerAMG-style knobs of paper §4.1 — interpolation
// operator, strength threshold, aggressive-coarsening depth — printing
// hierarchy complexities and measured V-cycle convergence factors.
//
//   ./build/examples/amg_playground [refine] [nranks]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cfd/simulation.hpp"
#include "solver/gmres.hpp"

using namespace exw;

namespace {

/// Assemble the pressure matrix of the background mesh of a turbine case.
linalg::ParCsr pressure_matrix(par::Runtime& rt, mesh::OversetSystem& sys) {
  const auto& db = sys.meshes[0];
  const auto layout =
      assembly::make_layout(db, rt.nranks(), assembly::PartitionMethod::kGraph);
  std::vector<std::uint8_t> dirichlet(static_cast<std::size_t>(db.num_nodes()), 0);
  for (std::size_t i = 0; i < dirichlet.size(); ++i) {
    const auto role = db.roles[i];
    dirichlet[i] = role == mesh::NodeRole::kOutflow ||
                   role == mesh::NodeRole::kFringe ||
                   role == mesh::NodeRole::kHole;
  }
  assembly::EquationGraph graph(db, layout, dirichlet);
  for (std::size_t e = 0; e < db.edges.size(); ++e) {
    const Real g = db.edges[e].coeff;
    graph.add_edge(e, {g, -g, -g, g}, {0, 0});
  }
  for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
    graph.add_node(node, dirichlet[static_cast<std::size_t>(node)] ? 1.0 : 0.0,
                   1.0);
  }
  std::vector<sparse::Coo> owned, shared;
  for (RankId r{0}; r.value() < graph.nranks(); ++r) {
    owned.push_back(graph.rank(r).owned);
    shared.push_back(graph.rank(r).shared);
  }
  const auto& rows = layout.numbering.rows;
  return assembly::assemble_matrix(rt, rows, rows, owned, shared);
}

const char* interp_name(amg::InterpType t) {
  switch (t) {
    case amg::InterpType::kDirect: return "direct";
    case amg::InterpType::kBamg: return "BAMG";
    case amg::InterpType::kMmExt: return "MM-ext";
    case amg::InterpType::kMmExtI: return "MM-ext+i";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const double refine = argc > 1 ? std::atof(argv[1]) : 0.5;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 8;

  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  par::Runtime rt(nranks);
  const auto a = pressure_matrix(rt, sys);
  std::printf("pressure matrix: %lld rows, %lld nnz (avg %.1f/row)\n\n",
              static_cast<long long>(a.global_rows().value()),
              static_cast<long long>(a.global_nnz().value()),
              static_cast<double>(a.global_nnz().value()) /
                  static_cast<double>(a.global_rows().value()));

  linalg::ParVector b(rt, a.rows()), x(rt, a.rows()), r(rt, a.rows());
  b.fill(1.0);

  std::printf("%-10s %5s %6s %7s %7s %9s %7s\n", "interp", "agg", "theta",
              "levels", "opC", "rho", "iters");
  for (auto interp : {amg::InterpType::kDirect, amg::InterpType::kBamg,
                      amg::InterpType::kMmExt, amg::InterpType::kMmExtI}) {
    for (int agg : {0, 2}) {
      amg::AmgConfig cfg;
      cfg.interp = interp;
      cfg.agg_levels = agg;
      amg::AmgHierarchy h(a, cfg);

      // Measured V-cycle convergence factor.
      x.fill(0.0);
      a.residual(b, x, r);
      const Real r0 = r.norm2();
      const int cycles = 12;
      for (int it = 0; it < cycles; ++it) {
        h.vcycle(b, x);
      }
      a.residual(b, x, r);
      const double rho = std::pow(static_cast<double>(r.norm2() / r0), 1.0 / cycles);

      // Iterations as a GMRES preconditioner.
      x.fill(0.0);
      solver::AmgPrecond precond(a, cfg);
      solver::GmresOptions opts;
      opts.rel_tol = 1e-8;
      const auto stats = solver::gmres_solve(a, b, x, precond, opts);

      std::printf("%-10s %5d %6.2f %7d %7.2f %9.3f %7d\n", interp_name(interp),
                  agg, static_cast<double>(cfg.strong_threshold), h.num_levels(),
                  h.operator_complexity(), rho, stats.iterations);
    }
  }
  std::printf("\n(paper §4.1: MM-ext repairs PMIS F-points without C "
              "neighbors; aggressive coarsening trades convergence for "
              "complexity)\n");
  return 0;
}
