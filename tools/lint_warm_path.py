#!/usr/bin/env python3
"""Warm-path purity lint gate for src/.

The runtime half of the purity contract (perf/purity.hpp) counts heap
allocations inside EXW_PURITY_REGION scopes while the code runs. This
gate is the static half: it walks the call graph from every function
annotated `EXW_WARM_FN` and flags constructs that are categorically
wrong on a warm (steady-state, structure-frozen) path:

  * sorting          — std::sort / stable_sort / partial_sort /
                       nth_element. Warm paths replay a frozen plan;
                       ordering work belongs in plan build.
  * searching        — std::lower_bound / upper_bound / binary_search /
                       std::find / std::search / .find( on containers.
                       Position lookups must be precomputed offsets.
  * container growth — .push_back( / .emplace_back( / .emplace( /
                       .resize( / .reserve( / .insert( / .assign(.
                       Warm scratch is sized once at plan build.
  * allocation       — `new`, std::make_unique, std::make_shared.

A line may carry `// exw-warm-ok: <reason>` to suppress its findings
(used where a construct is provably cold-once or covered by a runtime
EXW_PURITY_ALLOW scope with the same justification). Everything else is
counted against the per-file ratchet below: counts were frozen when the
gate was introduced and may only SHRINK. A new finding anywhere — or a
count above a file's allowance — fails CI; an improvement fails too
until the allowance is lowered, so progress is ratcheted in.

Call-graph notes: reachability is name-based (an identifier called from
a warm body that matches a function *defined* in src/ pulls that
function's definitions into the warm set). Overloads and same-named
methods are conservatively lumped together. cfd::Simulation's warm
Picard branches are deliberately NOT EXW_WARM_FN roots — those callers
own the cold fallback too, so they are policed by runtime
EXW_PURITY_REGIONs only (see DESIGN.md §14).

Usage: python3 tools/lint_warm_path.py [--root REPO_ROOT]
Exit status: 0 clean, 1 violations or stale allowlist.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Constructs that are wrong on a warm path, with the category reported.
FORBIDDEN = [
    (re.compile(r"\bstd::(?:stable_|partial_)?sort\s*\("), "sort"),
    (re.compile(r"\bstd::nth_element\s*\("), "sort"),
    (re.compile(r"\bstd::(?:lower|upper)_bound\s*\("), "search"),
    (re.compile(r"\bstd::binary_search\s*\("), "search"),
    (re.compile(r"\bstd::(?:find|find_if|search)\s*\("), "search"),
    (re.compile(r"\.find\s*\("), "search"),
    (re.compile(r"\.(?:push_back|emplace_back|emplace)\s*\("), "growth"),
    (re.compile(r"\.(?:resize|reserve|insert|assign)\s*\("), "growth"),
    (re.compile(r"(?<!\w)new\s+[A-Za-z_:]"), "alloc"),
    (re.compile(r"\bstd::make_(?:unique|shared)\s*<"), "alloc"),
]

SUPPRESS = re.compile(r"//\s*exw-warm-ok:\s*\S")

# Marks a function definition as a warm-path call-graph root.
WARM_MACRO = "EXW_WARM_FN"

# Function definition heads: `name(args...) ... {` with no `;` between
# the parameter list and the brace. Deliberately loose — it also matches
# control keywords, which CONTROL_KEYWORDS filters out.
DEF_HEAD = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "alignof", "decltype", "static_assert", "defined", "assert",
}

# Calls inside a body: identifier followed by `(`. Same keyword filter.
CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")

# Names excluded from call-graph edges: standard container methods (a
# `.find(` on a std::map would otherwise pull in any src/ function that
# happens to be named `find`) — their misuse is already caught directly
# by FORBIDDEN — plus ubiquitous tiny accessors that only add noise.
CALL_EXCLUDE = {
    "find", "find_if", "insert", "emplace", "emplace_back", "push_back",
    "resize", "reserve", "assign", "erase", "clear", "count", "at",
    "begin", "end", "size", "data", "empty", "front", "back", "swap",
    "value", "get", "min", "max", "abs", "move", "region",
}

# Frozen per-file allowances. Counts may only decrease; delete a line
# once its file reaches zero. Every entry is a construct inside the warm
# call graph that is justified at runtime by an EXW_PURITY_ALLOW scope
# (NIC serialization payloads, collective staging, first-refill scratch
# priming) — see the matching comments at each site.
WARM_ALLOWANCE = {
    "src/amg/cache.cpp": 2,      # first-refill scratch priming (resize)
    "src/assembly/plan.cpp": 2,  # first-refill scratch priming (resize)
    "src/par/runtime.hpp": 1,    # simulated-NIC mailbox push in send()
}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif ch in "\"'":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def body_span(code: str, open_brace: int) -> int:
    """Index one past the `}` matching the `{` at open_brace."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def find_definitions(code: str):
    """Yield (name, head_start, body_start, body_end) for every function
    definition in stripped source. Heuristic: an identifier + `(...)`
    where the matching `)` is followed (modulo specifiers) by `{` and the
    parameter list contains no `;` (rules out control blocks over
    statements and class bodies)."""
    for m in DEF_HEAD.finditer(code):
        name = m.group(1)
        if name in CONTROL_KEYWORDS:
            continue
        # Find the matching close paren.
        depth, i = 0, m.end() - 1
        close = -1
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
            elif code[i] == ";" and depth == 1:
                break  # parameter lists don't contain `;`
            i += 1
        if close < 0:
            continue
        # Skip trailing specifiers up to `{` or bail at `;`/other.
        j = close + 1
        while j < len(code):
            rest = code[j:j + 24]
            if code[j] in " \t\n":
                j += 1
            elif rest.startswith(("const", "noexcept", "override", "final")):
                j += len(re.match(r"\w+", rest).group(0))
            elif rest.startswith("->"):
                k = code.find("{", j)
                semi = code.find(";", j)
                if k < 0 or (0 <= semi < k):
                    j = -1
                else:
                    j = k
                break
            elif code[j] == ":":  # constructor init list
                k = code.find("{", j)
                semi = code.find(";", j)
                if k < 0 or (0 <= semi < k):
                    j = -1
                else:
                    j = k
                break
            elif code[j] == "{":
                break
            else:
                j = -1
                break
        if j < 0 or j >= len(code) or code[j] != "{":
            continue
        yield name, m.start(), j, body_span(code, j)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root)
    src = root / "src"
    if not src.is_dir():
        print(f"lint_warm_path: no src/ under {root}", file=sys.stderr)
        return 1

    # name -> [(rel, raw_lines, code, body_start, body_end)]
    defs: dict[str, list] = {}
    roots: list[str] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(root).as_posix()
        raw = path.read_text(encoding="utf-8")
        code = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        for name, head, b0, b1 in find_definitions(code):
            defs.setdefault(name, []).append((rel, raw_lines, code, b0, b1))
            # Warm root if EXW_WARM_FN appears between the previous
            # statement boundary and this definition's head.
            prefix = code[:head]
            stmt = max(prefix.rfind(";"), prefix.rfind("}"))
            if WARM_MACRO in prefix[stmt + 1:]:
                roots.append(name)

    if not roots:
        print("lint_warm_path: no EXW_WARM_FN roots found in src/",
              file=sys.stderr)
        return 1

    # BFS over name-matched calls.
    warm: set[str] = set()
    via: dict[str, str] = {}
    queue = list(dict.fromkeys(roots))
    while queue:
        fn = queue.pop()
        if fn in warm:
            continue
        warm.add(fn)
        for _, _, code, b0, b1 in defs.get(fn, []):
            for cm in CALL.finditer(code, b0, b1):
                callee = cm.group(1)
                if callee in CONTROL_KEYWORDS or callee in CALL_EXCLUDE \
                        or callee == fn:
                    continue
                if callee in defs and callee not in warm:
                    via.setdefault(callee, fn)
                    queue.append(callee)

    # Scan every warm function's body lines for forbidden constructs.
    findings = []           # (rel, lineno, fn, category, text)
    counts: dict[str, int] = {}
    scanned: set[tuple] = set()
    for fn in sorted(warm):
        for rel, raw_lines, code, b0, b1 in defs.get(fn, []):
            key = (rel, b0, b1)
            if key in scanned:
                continue
            scanned.add(key)
            first_line = code.count("\n", 0, b0) + 1
            for off, line in enumerate(code[b0:b1].splitlines()):
                lineno = first_line + off
                raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) \
                    else ""
                if SUPPRESS.search(raw_line):
                    continue
                for pat, category in FORBIDDEN:
                    if pat.search(line):
                        counts[rel] = counts.get(rel, 0) + 1
                        findings.append(
                            (rel, lineno, fn, category, line.strip()))

    failures = []
    by_file: dict[str, list] = {}
    for rel, lineno, fn, category, text in findings:
        by_file.setdefault(rel, []).append((lineno, fn, category, text))
    for rel in sorted(set(counts) | set(WARM_ALLOWANCE)):
        have = counts.get(rel, 0)
        allowed = WARM_ALLOWANCE.get(rel, 0)
        if have > allowed:
            hits = by_file.get(rel, [])
            failures.append(
                f"{rel}: {have} warm-path finding(s), allowance is {allowed} "
                f"— move the work to plan build, or justify it with a "
                f"runtime EXW_PURITY_ALLOW plus `// exw-warm-ok: reason`:")
            for lineno, fn, category, text in hits:
                trail = via.get(fn)
                how = f" (reached via {trail})" if trail else ""
                failures.append(
                    f"  {rel}:{lineno}: [{category}] in {fn}(){how}: {text}")
        elif have < allowed:
            failures.append(
                f"{rel}: improved to {have} warm-path finding(s) but the "
                f"allowance is still {allowed} — shrink its entry in "
                f"tools/lint_warm_path.py to ratchet the gate.")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\nlint_warm_path: FAILED ({len(failures)} finding(s))",
              file=sys.stderr)
        return 1
    total = sum(counts.values())
    print(f"lint_warm_path: OK ({len(set(roots))} warm roots, "
          f"{len(warm)} reachable functions, "
          f"{total} allowlisted findings remaining)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
