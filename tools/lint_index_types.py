#!/usr/bin/env python3
"""Index-type lint gate for src/.

The strong index types (GlobalIndex / LocalIndex / RankId / EntryOffset,
see src/common/strong_id.hpp) only help where they are actually used, so
this gate forbids the two habits that reintroduce raw-integer indexing:

  1. `for (int ...)` / `for (int32_t ...)` loop induction variables.
     Loops over an index space must use the space's StrongId (or a
     64-bit raw type, e.g. `std::int64_t` / `std::size_t`, where OpenMP
     canonical form requires an integral induction variable). Plain
     `int` silently truncates past 2^31.
  2. C-style casts to integer types, e.g. `(int)x` or `(size_t)i`.
     Narrowing between index spaces must go through
     `exw::checked_narrow<To>()`; sanctioned raw exits are `.value()`
     and `static_cast<std::size_t>(id)` — both greppable, neither
     C-style.

Per-file allowlist: the counts below were frozen when the gate was
introduced and may only SHRINK. Small bounded counters (Krylov basis
loops, the 8 corners of a hex, smoother sweeps) legitimately stay `int`;
they are covered by their file's frozen allowance. A new raw index loop
anywhere — or any count above a file's allowance — fails CI. When a file
improves, the gate also fails until its allowance is lowered to match,
so progress is ratcheted in.

Usage: python3 tools/lint_index_types.py [--root REPO_ROOT]
Exit status: 0 clean, 1 violations or stale allowlist.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Raw int loop induction variables (rule 1).
RAW_INT_LOOP = re.compile(r"\bfor\s*\(\s*(?:const\s+)?(?:std::)?(?:int|int32_t)\s+\w+")

# C-style casts to integer types (rule 2). The `(?<![\w>])` guard keeps
# function calls like `f(int)` declarations and template args out.
C_STYLE_INT_CAST = re.compile(
    r"(?<![\w>])\(\s*(?:unsigned\s+)?(?:std::)?"
    r"(?:int|long|short|int32_t|int64_t|uint32_t|uint64_t|size_t|ptrdiff_t)"
    r"(?:\s+long)?\s*\)\s*[A-Za-z_(]"
)

# Frozen per-file allowances for rule 1 (rule 2 has no allowance: zero
# C-style integer casts exist in src/ and none may be added). Counts may
# only decrease; delete a line once its file reaches zero.
LOOP_ALLOWANCE = {
    "src/mesh/generators.cpp": 2,
    "src/mesh/meshdb.cpp": 4,
    "src/mesh/overset.cpp": 3,
    "src/par/thread_pool.cpp": 2,
    "src/part/graph_partition.cpp": 1,
}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif ch in "\"'":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root)
    src = root / "src"
    if not src.is_dir():
        print(f"lint_index_types: no src/ under {root}", file=sys.stderr)
        return 1

    failures = []
    seen = {}
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
            continue
        rel = path.relative_to(root).as_posix()
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        loop_hits = [
            (lineno, line.strip())
            for lineno, line in enumerate(code.splitlines(), 1)
            if RAW_INT_LOOP.search(line)
        ]
        cast_hits = [
            (lineno, line.strip())
            for lineno, line in enumerate(code.splitlines(), 1)
            if C_STYLE_INT_CAST.search(line)
        ]
        seen[rel] = len(loop_hits)

        allowed = LOOP_ALLOWANCE.get(rel, 0)
        if len(loop_hits) > allowed:
            failures.append(
                f"{rel}: {len(loop_hits)} raw int loop variable(s), "
                f"allowance is {allowed} — use the index space's StrongId "
                f"(or std::int64_t for OpenMP canonical loops):"
            )
            failures += [f"  {rel}:{ln}: {txt}" for ln, txt in loop_hits]
        elif len(loop_hits) < allowed:
            failures.append(
                f"{rel}: improved to {len(loop_hits)} raw int loop variable(s) "
                f"but the allowance is still {allowed} — shrink its entry in "
                f"tools/lint_index_types.py to ratchet the gate."
            )
        for ln, txt in cast_hits:
            failures.append(
                f"{rel}:{ln}: C-style integer cast (use checked_narrow<To>() "
                f"or static_cast): {txt}"
            )

    for rel in sorted(LOOP_ALLOWANCE):
        if rel not in seen:
            failures.append(
                f"{rel}: listed in LOOP_ALLOWANCE but does not exist — "
                f"remove the stale entry."
            )

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\nlint_index_types: FAILED ({len(failures)} finding(s))",
              file=sys.stderr)
        return 1
    total = sum(seen.values())
    print(f"lint_index_types: OK ({len(seen)} files, "
          f"{total} allowlisted raw int loops remaining)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
