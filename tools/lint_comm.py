#!/usr/bin/env python3
"""Communication-determinism lint gate.

Static half of the communication contract; par/comm_audit.hpp is the
runtime half. Three rules, scanned over src/, tests/, bench/ and
examples/:

  * raw-tag-literal — the tag argument of Transport::send / recv /
    has_message must be a named constant (par/tags.hpp registry), never
    an integer literal. Literals sidestep the registry's compile-time
    uniqueness check, and a tag collision silently crosses two
    subsystems' message streams.
  * rank-guarded-collective / collective-in-rank-body — walks every
    `parallel_for_ranks` lambda: an allreduce under a branch whose
    condition mentions the rank parameter executes on a subset of ranks
    only, which on real hardware is a deadlock; and in this runtime
    collectives are orchestrator-driven, so ANY allreduce reachable from
    a rank body (directly or through functions defined in the scanned
    tree) is flagged. This is the bug class the comm audit catches at
    runtime; the lint catches it before the code ever runs.
  * unordered-fp-order — range-for iteration over a std::unordered_map /
    std::unordered_set feeding floating-point accumulation (`+=`) or
    message payloads (`.send`). Iteration order is unspecified and can
    change across libstdc++ versions or hash seeds, breaking the repo's
    bitwise-determinism claims.

A line may carry `// exw-comm-ok: <reason>` to suppress its findings.
Everything else counts against the per-file ratchet COMM_ALLOWANCE:
counts may only SHRINK (the tree starts clean, so the table starts
empty). A new finding — or an improvement without lowering the
allowance — fails CI, exactly like tools/lint_warm_path.py.

Usage: python3 tools/lint_comm.py [--root REPO_ROOT] [--self-test]
Exit status: 0 clean, 1 violations / stale allowlist / failed self-test.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

SCAN_DIRS = ["src", "tests", "bench", "examples"]
SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

SUPPRESS = re.compile(r"//\s*exw-comm-ok:\s*\S")

# Transport entry points that carry a tag as their third argument.
TAG_CALL = re.compile(r"\.(?:send|recv|has_message)\s*(?:<[\w:\s,]*>)?\s*\(")
INT_LITERAL = re.compile(r"^[0-9][0-9']*$")

# A collective call token (Runtime::allreduce_* family).
COLLECTIVE = re.compile(r"\ballreduce_\w+\s*\(")

RANK_REGION = re.compile(r"\bparallel_for_ranks\s*\(")

# Declarations of unordered containers; group(1) is the variable name.
UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>[&\s]+"
    r"([A-Za-z_]\w*)")

# Frozen per-file allowances (shrink-only, like lint_warm_path.py's
# WARM_ALLOWANCE). The tree is clean at introduction, so this starts and
# should stay empty; prefer `// exw-comm-ok: reason` for the rare
# justified construct over growing this table.
COMM_ALLOWANCE: dict[str, int] = {}

# Function-call heads / definitions (same heuristics as lint_warm_path).
DEF_HEAD = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "alignof", "decltype", "static_assert", "defined", "assert",
}
CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CALL_EXCLUDE = {
    "find", "find_if", "insert", "emplace", "emplace_back", "push_back",
    "resize", "reserve", "assign", "erase", "clear", "count", "at",
    "begin", "end", "size", "data", "empty", "front", "back", "swap",
    "value", "get", "min", "max", "abs", "move", "region",
}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif ch in "\"'":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def matching_paren(code: str, open_paren: int) -> int:
    """Index of the `)` matching the `(` at open_paren (-1 if none)."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def body_span(code: str, open_brace: int) -> int:
    """Index one past the `}` matching the `{` at open_brace."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def split_args(argtext: str) -> list[str]:
    """Split a call's argument text at top-level commas."""
    args, depth, cur = [], 0, []
    for ch in argtext:
        if ch in "([{<":
            depth += 1
        elif ch in ")]}>":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        args.append("".join(cur))
    return args


def find_definitions(code: str):
    """Yield (name, head_start, body_start, body_end) for every function
    definition in stripped source (same heuristic as lint_warm_path)."""
    for m in DEF_HEAD.finditer(code):
        name = m.group(1)
        if name in CONTROL_KEYWORDS:
            continue
        depth, i = 0, m.end() - 1
        close = -1
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
            elif code[i] == ";" and depth == 1:
                break
            i += 1
        if close < 0:
            continue
        j = close + 1
        while j < len(code):
            rest = code[j:j + 24]
            if code[j] in " \t\n":
                j += 1
            elif rest.startswith(("const", "noexcept", "override", "final")):
                j += len(re.match(r"\w+", rest).group(0))
            elif rest.startswith("->"):
                k = code.find("{", j)
                semi = code.find(";", j)
                if k < 0 or (0 <= semi < k):
                    j = -1
                else:
                    j = k
                break
            elif code[j] == ":":
                k = code.find("{", j)
                semi = code.find(";", j)
                if k < 0 or (0 <= semi < k):
                    j = -1
                else:
                    j = k
                break
            elif code[j] == "{":
                break
            else:
                j = -1
                break
        if j < 0 or j >= len(code) or code[j] != "{":
            continue
        yield name, m.start(), j, body_span(code, j)


def collective_reaching(files: dict[str, str]) -> set[str]:
    """Names of functions defined in the scanned tree whose bodies reach
    an allreduce_* call, directly or through other scanned definitions.
    The allreduce_* definitions themselves are excluded — calling them is
    what we detect, their bodies are the implementation."""
    bodies: dict[str, list[str]] = {}
    for code in files.values():
        for name, _, b0, b1 in find_definitions(code):
            if name.startswith("allreduce_"):
                continue
            bodies.setdefault(name, []).append(code[b0:b1])
    reaching: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, texts in bodies.items():
            if name in reaching:
                continue
            for text in texts:
                if COLLECTIVE.search(text):
                    reaching.add(name)
                    changed = True
                    break
                hit = False
                for cm in CALL.finditer(text):
                    callee = cm.group(1)
                    if callee in reaching and callee != name:
                        reaching.add(name)
                        changed = hit = True
                        break
                if hit:
                    break
    return reaching


def rank_guard_spans(body: str, rank_param: str) -> list[tuple[int, int]]:
    """Spans of `body` controlled by an if/else-if whose condition
    mentions the rank parameter."""
    spans = []
    if not rank_param:
        return spans
    rank_word = re.compile(rf"\b{re.escape(rank_param)}\b")
    for m in re.finditer(r"\bif\s*\(", body):
        open_paren = m.end() - 1
        close = matching_paren(body, open_paren)
        if close < 0:
            continue
        if not rank_word.search(body[open_paren:close]):
            continue
        # Guarded extent: the following brace block, or one statement.
        k = close + 1
        while k < len(body) and body[k] in " \t\n":
            k += 1
        if k < len(body) and body[k] == "{":
            spans.append((k, body_span(body, k)))
        else:
            semi = body.find(";", k)
            spans.append((k, len(body) if semi < 0 else semi + 1))
    return spans


def scan_tree(root: pathlib.Path):
    """Return (findings, counts). findings: (rel, lineno, category, text)."""
    files: dict[str, str] = {}
    raw_files: dict[str, list[str]] = {}
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            rel = path.relative_to(root).as_posix()
            raw = path.read_text(encoding="utf-8")
            files[rel] = strip_comments_and_strings(raw)
            raw_files[rel] = raw.splitlines()

    reaching = collective_reaching(files)
    findings = []

    def add(rel: str, pos: int, category: str, text: str,
            base_line: int = 0, code: str | None = None):
        src = files[rel] if code is None else code
        lineno = base_line + src.count("\n", 0, pos) + 1
        raw_line = raw_files[rel][lineno - 1] \
            if lineno <= len(raw_files[rel]) else ""
        if SUPPRESS.search(raw_line):
            return
        findings.append((rel, lineno, category, text.strip()))

    for rel, code in files.items():
        # Rule A: integer tag literal at a transport call site.
        for m in TAG_CALL.finditer(code):
            open_paren = m.end() - 1
            close = matching_paren(code, open_paren)
            if close < 0:
                continue
            args = split_args(code[open_paren + 1:close])
            if len(args) < 3:
                continue
            tag = args[2].strip()
            if INT_LITERAL.match(tag):
                add(rel, m.start(), "raw-tag-literal",
                    f"tag argument is the literal {tag}; use a named "
                    f"constant from par/tags.hpp")

        # Rule B: collectives inside parallel_for_ranks bodies.
        for m in RANK_REGION.finditer(code):
            open_paren = m.end() - 1
            lam = re.compile(r"\[[^\]]*\]\s*\(([^)]*)\)").search(
                code, open_paren)
            if lam is None:
                continue
            params = lam.group(1).strip()
            rank_param = ""
            if params:
                first = split_args(params)[0].strip()
                words = re.findall(r"[A-Za-z_]\w*", first)
                rank_param = words[-1] if words else ""
            brace = code.find("{", lam.end())
            if brace < 0:
                continue
            end = body_span(code, brace)
            body = code[brace:end]
            base_line = code.count("\n", 0, brace)
            guarded = rank_guard_spans(body, rank_param)

            def flag_collective(pos: int, what: str):
                in_guard = any(a <= pos < b for a, b in guarded)
                category = ("rank-guarded-collective" if in_guard
                            else "collective-in-rank-body")
                detail = (f"{what} under a branch on rank parameter "
                          f"'{rank_param}' — a subset of ranks would "
                          f"enter the collective (deadlock)"
                          if in_guard else
                          f"{what} inside a rank body — collectives are "
                          f"orchestrator-driven in this runtime")
                add(rel, pos, category, detail, base_line, body)

            for cm in COLLECTIVE.finditer(body):
                flag_collective(cm.start(), f"collective {cm.group(0)[:-1]}")
            for cm in CALL.finditer(body):
                callee = cm.group(1)
                if callee in CONTROL_KEYWORDS or callee in CALL_EXCLUDE:
                    continue
                if callee in reaching:
                    flag_collective(
                        cm.start(),
                        f"call to {callee}() which reaches a collective")

        # Rule C: unordered-container iteration feeding FP accumulation
        # or message payloads.
        unordered = set(UNORDERED_DECL.findall(code))
        if unordered:
            for m in re.finditer(r"\bfor\s*\(", code):
                open_paren = m.end() - 1
                close = matching_paren(code, open_paren)
                if close < 0:
                    continue
                head = code[open_paren + 1:close]
                # Range-for: a top-level `:` that is not part of `::`.
                parts = re.split(r"(?<!:):(?!:)", head, maxsplit=1)
                if len(parts) != 2:
                    continue
                range_words = re.findall(r"[A-Za-z_]\w*", parts[1])
                if not range_words or range_words[-1] not in unordered:
                    continue
                k = close + 1
                while k < len(code) and code[k] in " \t\n":
                    k += 1
                if k < len(code) and code[k] == "{":
                    loop_body = code[k:body_span(code, k)]
                else:
                    semi = code.find(";", k)
                    loop_body = code[k:len(code) if semi < 0 else semi + 1]
                if "+=" in loop_body or ".send" in loop_body:
                    add(rel, m.start(), "unordered-fp-order",
                        f"iteration over unordered container "
                        f"'{range_words[-1]}' feeds FP accumulation or a "
                        f"message payload; order is unspecified — use an "
                        f"ordered container or sort the keys first")

    counts: dict[str, int] = {}
    for rel, _, _, _ in findings:
        counts[rel] = counts.get(rel, 0) + 1
    return findings, counts


def self_test() -> int:
    """Seed a temp tree with one violation per rule (plus a suppressed
    one) and assert the scanner flags exactly the seeded lines."""
    seeded = r"""
#include <unordered_map>
void raw_tag(Transport& t, std::vector<int> payload) {
  t.send(RankId{0}, RankId{1}, 42, payload);
}
void guarded(Runtime& rt, const std::vector<double>& xs) {
  rt.parallel_for_ranks([&](RankId r) {
    if (r.value() == 0) {
      rt.allreduce_sum(xs);
    }
  });
}
void bare_in_body(Runtime& rt, const std::vector<double>& xs) {
  rt.parallel_for_ranks([&](RankId rank) {
    rt.allreduce_sum(xs);
  });
}
double unordered_sum(const std::unordered_map<int, double>& weights) {
  double s = 0.0;
  for (const auto& [k, v] : weights) {
    s += v;
  }
  return s;
}
void suppressed(Transport& t, std::vector<int> payload) {
  t.send(RankId{0}, RankId{1}, 43, payload);  // exw-comm-ok: self-test
}
"""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src").mkdir()
        (root / "src" / "seeded.cpp").write_text(seeded, encoding="utf-8")
        findings, _ = scan_tree(root)
    got = {category for _, _, category, _ in findings}
    want = {"raw-tag-literal", "rank-guarded-collective",
            "collective-in-rank-body", "unordered-fp-order"}
    errors = []
    if not want <= got:
        errors.append(f"missing categories: {sorted(want - got)} "
                      f"(got {sorted(got)})")
    if len(findings) != 4:
        errors.append(
            f"expected exactly 4 findings (suppressed line must not "
            f"count), got {len(findings)}: {findings}")
    if errors:
        print("lint_comm --self-test: FAILED", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("lint_comm --self-test: OK (all rule categories fire; "
          "suppression honored)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules fire on seeded violations")
    args = parser.parse_args()
    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root)
    if not (root / "src").is_dir():
        print(f"lint_comm: no src/ under {root}", file=sys.stderr)
        return 1

    findings, counts = scan_tree(root)
    by_file: dict[str, list] = {}
    for rel, lineno, category, text in findings:
        by_file.setdefault(rel, []).append((lineno, category, text))

    failures = []
    for rel in sorted(set(counts) | set(COMM_ALLOWANCE)):
        have = counts.get(rel, 0)
        allowed = COMM_ALLOWANCE.get(rel, 0)
        if have > allowed:
            failures.append(
                f"{rel}: {have} comm finding(s), allowance is {allowed} — "
                f"use par/tags.hpp constants, hoist collectives to the "
                f"orchestrator, or justify with `// exw-comm-ok: reason`:")
            for lineno, category, text in by_file.get(rel, []):
                failures.append(f"  {rel}:{lineno}: [{category}] {text}")
        elif have < allowed:
            failures.append(
                f"{rel}: improved to {have} comm finding(s) but the "
                f"allowance is still {allowed} — shrink its entry in "
                f"tools/lint_comm.py to ratchet the gate.")

    if failures:
        print("\n".join(failures), file=sys.stderr)
        print(f"\nlint_comm: FAILED ({len(failures)} finding(s))",
              file=sys.stderr)
        return 1
    print(f"lint_comm: OK ({len(findings)} allowlisted finding(s) "
          f"remaining)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
