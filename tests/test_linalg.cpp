// Property tests: distributed vectors/matrices must reproduce their
// serial counterparts for every rank count.
#include <gtest/gtest.h>

#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "test_util.hpp"

namespace exw::linalg {
namespace {

using testutil::laplace3d;
using testutil::matrix_diff;
using testutil::max_diff;
using testutil::random_rect;
using testutil::random_spd_ish;
using testutil::random_vector;

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, VectorOpsMatchSerial) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto rows = par::RowPartition::even(GlobalIndex{101}, nranks);
  ParVector x(rt, rows), y(rt, rows);
  const RealVector xs = random_vector(101, 1);
  const RealVector ys = random_vector(101, 2);
  x.scatter(xs);
  y.scatter(ys);

  double ref_dot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) ref_dot += xs[i] * ys[i];
  EXPECT_NEAR(x.dot(y), ref_dot, 1e-11);

  x.axpy(2.5, y);
  RealVector ref = xs;
  for (std::size_t i = 0; i < ref.size(); ++i) ref[i] += 2.5 * ys[i];
  EXPECT_LT(max_diff(x.gather(), ref), 1e-13);

  x.scale(-0.5);
  for (auto& v : ref) v *= -0.5;
  EXPECT_LT(max_diff(x.gather(), ref), 1e-13);

  x.aypx(3.0, y);
  for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = 3.0 * ref[i] + ys[i];
  EXPECT_LT(max_diff(x.gather(), ref), 1e-12);
}

TEST_P(RankSweep, SerialRoundtrip) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const sparse::Csr a = random_spd_ish(LocalIndex{97}, 6, 5);
  const auto rows = par::RowPartition::even(GlobalIndex{97}, nranks);
  const ParCsr pa = ParCsr::from_serial(rt, a, rows, rows);
  EXPECT_LT(matrix_diff(pa.to_serial(), a), 1e-15);
  EXPECT_EQ(pa.global_nnz(), GlobalIndex{a.nnz()});
}

TEST_P(RankSweep, MatvecMatchesSerial) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const sparse::Csr a = random_spd_ish(LocalIndex{120}, 7, 6);
  const auto rows = par::RowPartition::even(GlobalIndex{120}, nranks);
  const ParCsr pa = ParCsr::from_serial(rt, a, rows, rows);

  ParVector x(rt, rows), y(rt, rows);
  const RealVector xs = random_vector(120, 7);
  x.scatter(xs);
  pa.matvec(x, y);

  RealVector ref(120, 0.0);
  a.spmv(xs, ref);
  EXPECT_LT(max_diff(y.gather(), ref), 1e-11);
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(RankSweep, RectangularMatvecAndTranspose) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const sparse::Csr a = random_rect(LocalIndex{90}, LocalIndex{40}, 5, 8);
  const auto rows = par::RowPartition::even(GlobalIndex{90}, nranks);
  const auto cols = par::RowPartition::even(GlobalIndex{40}, nranks);
  const ParCsr pa = ParCsr::from_serial(rt, a, rows, cols);

  ParVector x(rt, cols), y(rt, rows);
  const RealVector xs = random_vector(40, 9);
  x.scatter(xs);
  pa.matvec(x, y);
  RealVector ref(90, 0.0);
  a.spmv(xs, ref);
  EXPECT_LT(max_diff(y.gather(), ref), 1e-11);

  // Transpose matvec.
  ParVector xt(rt, rows), yt(rt, cols);
  const RealVector ts = random_vector(90, 10);
  xt.scatter(ts);
  pa.matvec_transpose(xt, yt);
  RealVector reft(40, 0.0);
  a.spmv_transpose(ts, reft);
  EXPECT_LT(max_diff(yt.gather(), reft), 1e-11);
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(RankSweep, ResidualIsExact) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const sparse::Csr a = laplace3d(5, 0.3);
  const auto rows = par::RowPartition::even(GlobalIndex{125}, nranks);
  const ParCsr pa = ParCsr::from_serial(rt, a, rows, rows);
  ParVector x(rt, rows), b(rt, rows), r(rt, rows);
  x.scatter(random_vector(125, 11));
  b.scatter(random_vector(125, 12));
  pa.residual(b, x, r);
  RealVector ax(125, 0.0);
  a.spmv(x.gather(), ax);
  const RealVector bs = b.gather();
  RealVector ref(125);
  for (std::size_t i = 0; i < ref.size(); ++i) ref[i] = bs[i] - ax[i];
  EXPECT_LT(max_diff(r.gather(), ref), 1e-12);
}

TEST_P(RankSweep, FetchExternalRows) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const sparse::Csr a = random_spd_ish(LocalIndex{64}, 5, 13);
  const auto rows = par::RowPartition::even(GlobalIndex{64}, nranks);
  const ParCsr pa = ParCsr::from_serial(rt, a, rows, rows);

  // Each rank requests three rows owned by other ranks.
  std::vector<std::vector<GlobalIndex>> needed(static_cast<std::size_t>(nranks));
  for (RankId r{0}; r.value() < nranks; ++r) {
    for (GlobalIndex g{0}; g < GlobalIndex{64}; g += 23) {
      if (!rows.owns(r, g)) {
        needed[static_cast<std::size_t>(r)].push_back(g);
      }
    }
  }
  const auto ext = fetch_external_rows(pa, needed);
  for (RankId r{0}; r.value() < nranks; ++r) {
    for (GlobalIndex g : needed[static_cast<std::size_t>(r)]) {
      const auto idx = ext[static_cast<std::size_t>(r)].find(g);
      ASSERT_NE(idx, static_cast<std::size_t>(-1));
      const auto& e = ext[static_cast<std::size_t>(r)];
      // Row content matches the serial matrix.
      const auto gi = checked_narrow<LocalIndex>(g);
      const auto len = e.row_ptr[idx + 1] - e.row_ptr[idx];
      EXPECT_EQ(checked_narrow<LocalIndex>(len), a.row_nnz(gi));
      for (std::size_t k = e.row_ptr[idx]; k < e.row_ptr[idx + 1]; ++k) {
        EXPECT_NEAR(e.vals[k], a.at(gi, checked_narrow<LocalIndex>(e.cols[k])), 1e-15);
      }
    }
  }
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(RankSweep, NnzPerRankSumsToGlobal) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const sparse::Csr a = laplace3d(5);
  const auto rows = par::RowPartition::even(GlobalIndex{125}, nranks);
  const ParCsr pa = ParCsr::from_serial(rt, a, rows, rows);
  double total = 0;
  for (double v : pa.nnz_per_rank()) total += v;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(a.nnz()));
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(ParCsr, MatvecChargesHaloMessages) {
  par::Runtime rt(4);
  const sparse::Csr a = laplace3d(6, 0.1);
  const auto rows = par::RowPartition::even(GlobalIndex{216}, 4);
  const ParCsr pa = ParCsr::from_serial(rt, a, rows, rows);
  ParVector x(rt, rows), y(rt, rows);
  x.fill(1.0);
  rt.tracer().reset();
  pa.matvec(x, y);
  // A block-partitioned 3D Laplacian has neighbor couplings: messages
  // must have been charged.
  EXPECT_GT(rt.tracer().phase("").total_messages(), 0);
}

}  // namespace
}  // namespace exw::linalg
