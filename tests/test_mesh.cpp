// Unit tests: mesh database, turbine generators, overset assembly, motion.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "mesh/generators.hpp"
#include "mesh/motion.hpp"

namespace exw::mesh {
namespace {

constexpr Real kPi = std::numbers::pi_v<Real>;

MeshDB unit_box(GlobalIndex n) {
  MeshDB db;
  StructuredBlockBuilder block(n, n, n);
  block.emit(db, [&](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    const Real h = 1.0 / static_cast<Real>(n.value());
    return Vec3{static_cast<Real>(i.value()) * h, static_cast<Real>(j.value()) * h,
                static_cast<Real>(k.value()) * h};
  });
  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  return db;
}

TEST(HexVolume, UnitCube) {
  const std::array<Vec3, 8> x{Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{1, 1, 0},
                              Vec3{0, 1, 0}, Vec3{0, 0, 1}, Vec3{1, 0, 1},
                              Vec3{1, 1, 1}, Vec3{0, 1, 1}};
  EXPECT_NEAR(hex_volume(x), 1.0, 1e-14);
}

TEST(HexVolume, StretchedHex) {
  std::array<Vec3, 8> x{Vec3{0, 0, 0}, Vec3{2, 0, 0}, Vec3{2, 3, 0},
                        Vec3{0, 3, 0}, Vec3{0, 0, 0.5}, Vec3{2, 0, 0.5},
                        Vec3{2, 3, 0.5}, Vec3{0, 3, 0.5}};
  EXPECT_NEAR(hex_volume(x), 3.0, 1e-13);
}

TEST(MeshDB, BoxDualQuantities) {
  const MeshDB db = unit_box(GlobalIndex{4});
  EXPECT_EQ(db.num_nodes(), GlobalIndex{125});
  EXPECT_EQ(db.num_hexes(), GlobalIndex{64});
  EXPECT_TRUE(db.edges_valid());
  EXPECT_NEAR(db.total_volume(), 1.0, 1e-12);
  // Node volumes sum to the total volume.
  Real nodal = 0;
  for (Real v : db.node_volume) nodal += v;
  EXPECT_NEAR(nodal, 1.0, 1e-12);
  // Structured box: 3 * n * (n+1)^2 unique axis-aligned grid edges.
  EXPECT_EQ(db.num_edges(), GlobalIndex{3 * 4 * 5 * 5});
}

TEST(MeshDB, EdgeCoefficientsReflectAnisotropy) {
  // Flatten the box in z: z-edges get shorter -> much larger coefficients.
  MeshDB db;
  StructuredBlockBuilder block(GlobalIndex{4}, GlobalIndex{4}, GlobalIndex{4});
  block.emit(db, [&](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                static_cast<Real>(k.value()) * 0.01};
  });
  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  Real max_ratio = 0;
  Real min_c = 1e300, max_c = 0;
  for (const auto& e : db.edges) {
    min_c = std::min(min_c, e.coeff);
    max_c = std::max(max_c, e.coeff);
  }
  max_ratio = max_c / min_c;
  EXPECT_GT(max_ratio, 1e3);  // boundary-layer-like conditioning pathology
}

TEST(Generators, RotorMeshShape) {
  TurbineParams tp;
  tp.blade.n_wrap = GlobalIndex{16};
  tp.blade.n_span = GlobalIndex{10};
  tp.blade.n_layers = GlobalIndex{8};
  const MeshDB rotor = make_rotor_mesh(tp, "rotor");
  EXPECT_GT(rotor.num_nodes(), GlobalIndex{0});
  EXPECT_TRUE(rotor.edges_valid());
  // Annular disc: has fringe boundary, wall footprint, interior.
  GlobalIndex walls{0}, fringe{0}, interior{0};
  for (auto r : rotor.roles) {
    if (r == NodeRole::kWall) ++walls;
    if (r == NodeRole::kFringe) ++fringe;
    if (r == NodeRole::kInterior) ++interior;
  }
  EXPECT_GT(walls, GlobalIndex{0});
  EXPECT_GT(fringe, GlobalIndex{0});
  EXPECT_GT(interior, walls);
  // All nodes inside the annulus bounding box.
  Vec3 lo, hi;
  rotor.bounding_box(lo, hi);
  EXPECT_NEAR(hi.y, tp.blade.tip_radius, 1e-6);
  EXPECT_NEAR(lo.y, -tp.blade.tip_radius, 1e-6);
}

TEST(Generators, BackgroundRolesOnFaces) {
  BackgroundParams bg;
  bg.nx = GlobalIndex{8};
  bg.ny = GlobalIndex{8};
  bg.nz = GlobalIndex{8};
  const MeshDB db = make_background_mesh(bg, "bg");
  GlobalIndex inflow{0}, outflow{0}, symm{0};
  for (auto r : db.roles) {
    if (r == NodeRole::kInflow) ++inflow;
    if (r == NodeRole::kOutflow) ++outflow;
    if (r == NodeRole::kSymmetry) ++symm;
  }
  EXPECT_EQ(inflow, GlobalIndex{9 * 9});
  EXPECT_EQ(outflow, GlobalIndex{9 * 9});
  EXPECT_GT(symm, GlobalIndex{0});
}

TEST(Generators, TurbineCaseSizesMatchTable1Ordering) {
  // Table 1 ordering: single < dual < refined.
  const auto single = make_turbine_case(TurbineCase::kSingle, 0.35);
  const auto dual = make_turbine_case(TurbineCase::kDual, 0.35);
  const auto refined = make_turbine_case(TurbineCase::kSingleRefined, 0.35);
  EXPECT_LT(single.total_nodes(), dual.total_nodes());
  EXPECT_LT(dual.total_nodes(), refined.total_nodes());
  EXPECT_EQ(single.meshes.size(), 2u);
  EXPECT_EQ(dual.meshes.size(), 3u);
}

TEST(Overset, EveryFringeHasNormalizedDonorWeights) {
  const auto sys = make_turbine_case(TurbineCase::kSingle, 0.35);
  EXPECT_FALSE(sys.constraints.empty());
  for (const auto& c : sys.constraints) {
    Real sum = 0;
    for (int k = 0; k < 8; ++k) {
      EXPECT_GE(c.weights[static_cast<std::size_t>(k)], 0.0);
      sum += c.weights[static_cast<std::size_t>(k)];
      const auto& donor_mesh = sys.meshes[static_cast<std::size_t>(c.donor_mesh)];
      EXPECT_LT(c.donors[static_cast<std::size_t>(k)], donor_mesh.num_nodes());
    }
    EXPECT_NEAR(sum, 1.0, 1e-10);
    EXPECT_NE(c.mesh, c.donor_mesh);
  }
}

TEST(Overset, EveryFringeNodeHasConstraint) {
  const auto sys = make_turbine_case(TurbineCase::kSingle, 0.35);
  GlobalIndex fringe{0};
  for (const auto& m : sys.meshes) {
    for (auto r : m.roles) {
      if (r == NodeRole::kFringe) ++fringe;
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(fringe), sys.constraints.size());
}

TEST(Overset, HoleCutProducesHolesAndFringe) {
  BackgroundParams bg;
  bg.nx = GlobalIndex{24};
  bg.ny = GlobalIndex{24};
  bg.nz = GlobalIndex{24};
  MeshDB db = make_background_mesh(bg, "bg");
  const auto res = cut_hole(db, Vec3{0, 0, 0}, Vec3{1, 0, 0}, 10.0, 52.0, 6.0, 8.0);
  EXPECT_GT(res.holes, GlobalIndex{0});
  EXPECT_GT(res.fringe, GlobalIndex{0});
}

TEST(Motion, RotationPreservesGeometry) {
  auto sys = make_turbine_case(TurbineCase::kSingle, 0.35);
  MeshDB& rotor = sys.meshes[1];
  const Real vol_before = rotor.total_volume();
  const auto edges_before = rotor.edges;
  rotate_mesh(rotor, sys.motion[1], 0.4);
  EXPECT_NEAR(rotor.total_volume(), vol_before, vol_before * 1e-10);
  // Rigid rotation: edge coefficients invariant (we keep cached values).
  ASSERT_EQ(rotor.edges.size(), edges_before.size());
  // Node distances from the axis are preserved.
  for (std::size_t i = 0; i < rotor.coords.size(); i += 997) {
    const Real r_ref = std::hypot(rotor.ref_coords[i].y, rotor.ref_coords[i].z);
    const Real r_now = std::hypot(rotor.coords[i].y, rotor.coords[i].z);
    EXPECT_NEAR(r_now, r_ref, 1e-9);
  }
}

TEST(Motion, FullTurnReturnsToReference) {
  auto sys = make_turbine_case(TurbineCase::kSingle, 0.35);
  MeshDB& rotor = sys.meshes[1];
  rotate_mesh(rotor, sys.motion[1], 2.0 * kPi);
  Real diff = 0;
  for (std::size_t i = 0; i < rotor.coords.size(); ++i) {
    diff = std::max(diff, (rotor.coords[i] - rotor.ref_coords[i]).norm());
  }
  EXPECT_LT(diff, 1e-8);
}

TEST(Motion, AdvanceRebuildsConnectivity) {
  auto sys = make_turbine_case(TurbineCase::kSingle, 0.35);
  const auto n_before = sys.constraints.size();
  advance_motion(sys, 0.1);
  EXPECT_EQ(sys.constraints.size(), n_before);  // roles are invariant
  for (const auto& c : sys.constraints) {
    Real sum = 0;
    for (Real w : c.weights) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-10);
  }
}

TEST(CellLocator, FindsContainingCellInBox) {
  const MeshDB db = unit_box(GlobalIndex{5});
  const CellLocator locator(db);
  const GlobalIndex c = locator.find_cell(Vec3{0.5, 0.5, 0.5});
  ASSERT_NE(c, kInvalidGlobal);
  // The centroid of the found cell should be near the query point.
  Vec3 centroid{};
  for (GlobalIndex n : db.hexes[static_cast<std::size_t>(c)]) {
    centroid += db.coords[static_cast<std::size_t>(n)] * 0.125;
  }
  EXPECT_LT((centroid - Vec3{0.5, 0.5, 0.5}).norm(), 0.2);
}

TEST(CellLocator, FallsBackForExteriorPoint) {
  const MeshDB db = unit_box(GlobalIndex{4});
  const CellLocator locator(db);
  EXPECT_NE(locator.find_cell(Vec3{5, 5, 5}), kInvalidGlobal);
}

}  // namespace
}  // namespace exw::mesh
