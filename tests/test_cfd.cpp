// Tests for the incompressible-flow solver: uniform-flow preservation,
// projection behavior, turbine-case stepping, phase accounting.
#include <gtest/gtest.h>

#include "cfd/simulation.hpp"

namespace exw::cfd {
namespace {

/// Background-only system (no turbine, no holes): uniform inflow must be
/// an exact steady state of the discretization.
mesh::OversetSystem box_only_system(GlobalIndex n) {
  mesh::OversetSystem sys;
  mesh::BackgroundParams bg;
  bg.nx = n;
  bg.ny = n;
  bg.nz = n;
  sys.meshes.push_back(mesh::make_background_mesh(bg, "bg"));
  sys.motion.push_back(mesh::RotationSpec{});
  sys.name = "box";
  return sys;
}

TEST(Cfd, UniformInflowIsSteadyState) {
  auto sys = box_only_system(GlobalIndex{8});
  par::Runtime rt(3);
  SimConfig cfg;
  cfg.picard_iters = 2;
  Simulation sim(sys, cfg, rt);
  sim.step();
  // A constant velocity field has zero divergence and zero advective /
  // diffusive imbalance: it must persist to solver tolerance.
  Real max_dev = 0;
  // velocity_rms of a uniform (U, 0, 0) field is exactly U.
  max_dev = std::abs(sim.velocity_rms() - cfg.inflow_speed);
  EXPECT_LT(max_dev, 1e-3 * cfg.inflow_speed);
  EXPECT_LT(sim.divergence_rms(), 1e-6);
}

TEST(Cfd, ProjectionReducesDivergenceOfPerturbedField) {
  // Start from a uniform state, one step keeps divergence tiny; the test
  // of the projection mechanism: a turbine case's divergence stays
  // bounded while the solution develops.
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt(4);
  SimConfig cfg;
  cfg.picard_iters = 2;
  Simulation sim(sys, cfg, rt);
  sim.step();
  const Real d1 = sim.divergence_rms();
  for (int s = 0; s < 3; ++s) {
    sim.step();
  }
  const Real d4 = sim.divergence_rms();
  EXPECT_LT(d4, 50.0 * std::max(d1, Real{1e-8}));  // bounded, no blow-up
  EXPECT_LT(sim.velocity_rms(), 10.0 * cfg.inflow_speed);
}

TEST(Cfd, TurbineStepSolvesAllEquations) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt(4);
  SimConfig cfg;
  cfg.picard_iters = 2;
  Simulation sim(sys, cfg, rt);
  sim.step();
  EXPECT_GT(sim.momentum_stats().solves, 0);
  EXPECT_GT(sim.continuity_stats().solves, 0);
  EXPECT_GT(sim.scalar_stats().solves, 0);
  EXPECT_GT(sim.continuity_stats().amg_levels, 1);
  EXPECT_GT(sim.momentum_stats().gmres_iterations, 0);
  // Paper: momentum converges in a handful of SGS2-preconditioned
  // iterations (3 solves per mesh per Picard iteration here).
  EXPECT_LT(sim.momentum_stats().gmres_iterations / sim.momentum_stats().solves,
            20);
}

TEST(Cfd, PhaseBreakdownIsPopulated) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt(4);
  SimConfig cfg;
  cfg.picard_iters = 1;
  Simulation sim(sys, cfg, rt);
  rt.tracer().reset();
  sim.step();
  auto& tr = rt.tracer();
  const auto gpu = perf::MachineModel::summit_gpu();
  // All five stages of the paper's Figs. 6-7 breakdown exist and carry
  // nonzero modeled time for the pressure equation.
  for (const char* phase :
       {"nli/continuity/physics", "nli/continuity/local",
        "nli/continuity/global", "nli/continuity/setup",
        "nli/continuity/solve"}) {
    ASSERT_TRUE(tr.has_phase(phase)) << phase;
    EXPECT_GT(tr.phase_time(phase, gpu), 0.0) << phase;
  }
  // Sub-phases sum to less than the equation total (which includes both).
  const double total = tr.phase_time("nli", gpu);
  EXPECT_GT(total, tr.phase_time("nli/continuity/solve", gpu));
  // Pressure-Poisson dominates the NLI (paper: 60-70% at scale; at least
  // a plurality holds at any size).
  EXPECT_GT(tr.phase_time("nli/continuity", gpu), 0.2 * total);
}

TEST(Cfd, FringeExchangePreservesConstantFields) {
  // Donor weights sum to one, so interpolating a constant donor field
  // must reproduce the constant exactly at every fringe node.
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt(2);
  SimConfig cfg;
  Simulation sim(sys, cfg, rt);
  // At construction all fields are uniform (inflow everywhere except
  // walls/holes); the initial fringe exchange ran in the constructor.
  // Check: scalar is the ambient constant at all fringe nodes of the
  // rotor (donors are background interior points with ambient value).
  const auto& rotor = sys.meshes[1];
  bool checked = false;
  for (const auto& c : sys.constraints) {
    if (c.mesh != 1) continue;
    bool donor_clean = true;
    for (auto d : c.donors) {
      const auto role = sys.meshes[0].roles[static_cast<std::size_t>(d)];
      if (role == mesh::NodeRole::kHole || role == mesh::NodeRole::kWall) {
        donor_clean = false;
      }
    }
    if (donor_clean) {
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
  (void)rotor;
}

TEST(Cfd, BaselineConfigDiffersAndRuns) {
  auto cfg = SimConfig::baseline();
  EXPECT_EQ(cfg.partition, assembly::PartitionMethod::kRcb);
  EXPECT_EQ(cfg.assembly_algo, assembly::GlobalAssemblyAlgo::kGeneral);
  EXPECT_EQ(cfg.sgs_inner_sweeps, 1);
  auto sys = box_only_system(GlobalIndex{6});
  par::Runtime rt(2);
  cfg.picard_iters = 1;
  Simulation sim(sys, cfg, rt);
  EXPECT_NO_THROW(sim.step());
}

TEST(Cfd, AssemblyPlanCacheIsBitwiseIdenticalToColdPath) {
  // The plan cache must be invisible to the solution: warm in-place
  // refills replay the cold kSortReduce reduction order exactly, so
  // every field diagnostic matches bitwise across multiple steps (and
  // across Picard iterations within each step, where the warm path is
  // actually exercised).
  auto sys_plan = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  auto sys_cold = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt_plan(4);
  par::Runtime rt_cold(4);
  SimConfig cfg;
  cfg.picard_iters = 2;
  cfg.use_assembly_plan = true;
  Simulation warm(sys_plan, cfg, rt_plan);
  cfg.use_assembly_plan = false;
  Simulation cold(sys_cold, cfg, rt_cold);
  for (int s = 0; s < 2; ++s) {
    warm.step();
    cold.step();
    EXPECT_EQ(warm.velocity_rms(), cold.velocity_rms()) << "step " << s;
    EXPECT_EQ(warm.divergence_rms(), cold.divergence_rms()) << "step " << s;
    EXPECT_EQ(warm.scalar_mean(), cold.scalar_mean()) << "step " << s;
  }
  EXPECT_TRUE(rt_plan.transport().drained());
}

TEST(Cfd, AtomicAssemblyMatchesOrdered) {
  auto sys_a = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  auto sys_b = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt_a(3), rt_b(3);
  SimConfig cfg;
  cfg.picard_iters = 1;
  SimConfig cfg_atomic = cfg;
  cfg_atomic.atomic_local_assembly = true;
  Simulation sim_a(sys_a, cfg, rt_a);
  Simulation sim_b(sys_b, cfg_atomic, rt_b);
  sim_a.step();
  sim_b.step();
  // Single-threaded simulated ranks: atomic and ordered adds produce the
  // same sums, so the physics must agree to solver tolerance.
  EXPECT_NEAR(sim_a.velocity_rms(), sim_b.velocity_rms(), 1e-8);
  EXPECT_NEAR(sim_a.scalar_mean(), sim_b.scalar_mean(), 1e-10);
}

TEST(Cfd, SolverStatsAccumulateAcrossPicardLoop) {
  // Regression: the per-equation counters used to be reset inside every
  // solve, so a step always reported solves == 1 regardless of the Picard
  // count. They must accumulate over the step's Picard loop and reset
  // only at the next step.
  auto sys = box_only_system(GlobalIndex{6});
  par::Runtime rt(2);
  SimConfig cfg;
  cfg.picard_iters = 3;
  Simulation sim(sys, cfg, rt);
  sim.step();
  // Momentum solves one system per velocity component.
  EXPECT_EQ(sim.momentum_stats().solves, 3 * 3);
  EXPECT_EQ(sim.continuity_stats().solves, 3);
  EXPECT_EQ(sim.scalar_stats().solves, 3);
  EXPECT_GE(sim.continuity_stats().gmres_iterations,
            sim.continuity_stats().solves);
  sim.step();  // fresh counters each step, not accumulated forever
  EXPECT_EQ(sim.continuity_stats().solves, 3);
}

TEST(Cfd, AmgCacheRebuildsOncePerStepUnderTheLagPolicy) {
  // With the default drift policy (lag 4) and 4 Picard iterations, each
  // step pays exactly one structural AMG setup; the other three pressure
  // solves are value-only refreshes of the cached hierarchy.
  auto sys = box_only_system(GlobalIndex{6});
  par::Runtime rt(2);
  SimConfig cfg;
  cfg.picard_iters = 4;
  ASSERT_TRUE(cfg.use_amg_cache);
  ASSERT_EQ(cfg.amg_rebuild_lag, 4);
  Simulation sim(sys, cfg, rt);
  for (int s = 0; s < 2; ++s) {
    sim.step();
    EXPECT_EQ(sim.continuity_stats().amg_rebuilds, 1) << "step " << s;
    EXPECT_EQ(sim.continuity_stats().amg_refreshes, 3) << "step " << s;
  }
}

TEST(Cfd, AmgCacheDisabledRebuildsEverySolve) {
  auto sys = box_only_system(GlobalIndex{6});
  par::Runtime rt(2);
  SimConfig cfg;
  cfg.picard_iters = 3;
  cfg.use_amg_cache = false;
  Simulation sim(sys, cfg, rt);
  sim.step();
  EXPECT_EQ(sim.continuity_stats().amg_rebuilds, 3);
  EXPECT_EQ(sim.continuity_stats().amg_refreshes, 0);
}

TEST(Cfd, RotorRotationAdvancesWithTime) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  const Vec3 before = sys.meshes[1].coords[100];
  par::Runtime rt(2);
  SimConfig cfg;
  cfg.picard_iters = 1;
  Simulation sim(sys, cfg, rt);
  sim.step();
  const Vec3 after = sys.meshes[1].coords[100];
  EXPECT_GT((after - before).norm(), 1e-6);
  EXPECT_DOUBLE_EQ(sim.time(), cfg.dt);
}

}  // namespace
}  // namespace exw::cfd
