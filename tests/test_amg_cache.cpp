// Tests for the AMG hierarchy cache: frozen SpGEMM replay plans, the
// value-only refresh of a frozen hierarchy (bitwise against rebuilds and
// against cold Galerkin products), stale-structure detection, and the
// HierarchyCache rebuild/refresh bookkeeping behind the drift policy.
#include <gtest/gtest.h>

#include <cstring>
#include <span>

#include "amg/cache.hpp"
#include "amg/hierarchy.hpp"
#include "amg/rap.hpp"
#include "sparse/spgemm.hpp"
#include "test_util.hpp"

namespace exw::amg {
namespace {

using testutil::laplace3d;
using testutil::random_rect;
using testutil::random_vector;

linalg::ParCsr distribute(par::Runtime& rt, const sparse::Csr& a) {
  const auto rows =
      par::RowPartition::even(GlobalIndex{a.nrows().value()}, rt.nranks());
  return linalg::ParCsr::from_serial(rt, a, rows, rows);
}

bool same_span(std::span<const Real> a, std::span<const Real> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Real)) == 0);
}

bool same_vals(const std::vector<Real>& a, const std::vector<Real>& b) {
  return same_span(a, b);
}

/// Bitwise comparison of every rank block's diag/offd values.
bool bitwise_equal(const linalg::ParCsr& a, const linalg::ParCsr& b) {
  if (a.nranks() != b.nranks()) return false;
  for (RankId r{0}; r.value() < a.nranks(); ++r) {
    const auto& ab = a.block(r);
    const auto& bb = b.block(r);
    if (!same_span(ab.diag.vals().raw(), bb.diag.vals().raw()) ||
        !same_span(ab.offd.vals().raw(), bb.offd.vals().raw())) {
      return false;
    }
  }
  return true;
}

/// Scale every stored value (pattern unchanged, all entries stay nonzero).
sparse::Csr scaled(const sparse::Csr& a, Real s) {
  sparse::Csr c = a;
  for (auto& v : c.vals_vec()) v *= s;
  return c;
}

TEST(SpGemmPlan, ReplayMatchesHashBitwise) {
  const auto a = random_rect(LocalIndex{60}, LocalIndex{40}, 5, 11);
  const auto b = random_rect(LocalIndex{40}, LocalIndex{30}, 4, 12);
  const auto plan = sparse::SpGemmPlan::build(a, b);
  ASSERT_TRUE(plan.valid());

  const auto a2 = scaled(a, 1.37);
  const auto b2 = scaled(b, -0.61);
  sparse::Csr c = plan.structure();
  plan.replay(a2, b2, c);

  const auto cold = sparse::spgemm_hash(a2, b2);
  ASSERT_EQ(c.nnz(), cold.nnz());
  EXPECT_TRUE(same_vals(c.vals_vec(), sparse::Csr(cold).vals_vec()));
}

TEST(SpGemmPlan, ReplayThrowsOnStructureChange) {
  const auto a = random_rect(LocalIndex{30}, LocalIndex{20}, 4, 3);
  const auto b = random_rect(LocalIndex{20}, LocalIndex{25}, 3, 4);
  const auto plan = sparse::SpGemmPlan::build(a, b);
  sparse::Csr c = plan.structure();
  // Different nnz / shape on either input must be rejected.
  const auto a_stale = random_rect(LocalIndex{30}, LocalIndex{20}, 5, 7);
  const auto b_stale = random_rect(LocalIndex{20}, LocalIndex{25}, 2, 8);
  EXPECT_THROW(plan.replay(a_stale, b, c), Error);
  EXPECT_THROW(plan.replay(a, b_stale, c), Error);
}

class AmgCacheRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(AmgCacheRankSweep, RefreshRoundTripMatchesRebuildBitwise) {
  // Build a frozen hierarchy on A(shift=0), refresh it through three
  // value changes ending back at the original values, and demand the
  // result is bitwise indistinguishable from a cold rebuild: identical
  // level operators and an identical V-cycle (which also exercises the
  // refreshed smoother splits and the retained coarse LU).
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto a0 = distribute(rt, laplace3d(8, 0.0));
  const auto a1 = distribute(rt, laplace3d(8, 0.5));
  const auto a2 = distribute(rt, laplace3d(8, 0.01));
  AmgConfig cfg;

  AmgHierarchy h(a0, cfg, /*freeze_replay=*/true);
  ASSERT_TRUE(h.frozen());
  h.refresh_values(a1);
  h.refresh_values(a2);
  h.refresh_values(a0);

  AmgHierarchy fresh(a0, cfg);
  ASSERT_EQ(h.num_levels(), fresh.num_levels());
  for (int l = 0; l < h.num_levels(); ++l) {
    EXPECT_TRUE(bitwise_equal(h.level(l).a, fresh.level(l).a))
        << "level " << l << " operator differs after refresh round trip";
  }

  linalg::ParVector b(rt, a0.rows()), x_ref(rt, a0.rows()),
      x_fresh(rt, a0.rows());
  b.scatter(random_vector(512, 17));
  x_ref.fill(0.0);
  x_fresh.fill(0.0);
  h.vcycle(b, x_ref);
  fresh.vcycle(b, x_fresh);
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& lr = x_ref.local(r);
    const auto& lf = x_fresh.local(r);
    ASSERT_EQ(lr.size(), lf.size());
    EXPECT_TRUE(same_vals(lr, lf)) << "V-cycle differs on rank " << r.value();
  }
}

TEST_P(AmgCacheRankSweep, RefreshedCoarseOperatorsMatchColdGalerkin) {
  // After a refresh with genuinely different values, every coarse operator
  // must equal the cold Galerkin product of the refreshed finer level with
  // the frozen interpolation — bitwise, not just to rounding.
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto a0 = distribute(rt, laplace3d(8, 0.0));
  const auto a1 = distribute(rt, laplace3d(8, 0.25));
  AmgConfig cfg;

  AmgHierarchy h(a0, cfg, /*freeze_replay=*/true);
  h.refresh_values(a1);
  ASSERT_GE(h.num_levels(), 2);
  for (int l = 0; l + 1 < h.num_levels(); ++l) {
    ASSERT_TRUE(h.level(l).has_p);
    const auto cold = galerkin_rap(h.level(l).a, h.level(l).p, cfg.spgemm);
    EXPECT_TRUE(bitwise_equal(cold, h.level(l + 1).a))
        << "transition " << l << " -> " << l + 1
        << " replay differs from the cold product";
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, AmgCacheRankSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(AmgRefresh, ThrowsOnStalePatternOrUnfrozenHierarchy) {
  par::Runtime rt(2);
  const auto a = distribute(rt, laplace3d(6, 0.0));
  AmgConfig cfg;
  AmgHierarchy frozen(a, cfg, /*freeze_replay=*/true);
  // Different fine shape: the frozen plans no longer apply.
  const auto bigger = distribute(rt, laplace3d(7, 0.0));
  EXPECT_THROW(frozen.refresh_values(bigger), Error);
  // A hierarchy built without freeze_replay cannot refresh at all.
  AmgHierarchy plain(a, cfg);
  EXPECT_FALSE(plain.frozen());
  EXPECT_THROW(plain.refresh_values(a), Error);
}

TEST(AmgHierarchyComplexity, SingleLevelIsExactlyOne) {
  // With coarsening disabled the hierarchy is its own fine grid; both
  // complexity ratios must be exactly 1 (and must not divide by an empty
  // level list — the accessors are guarded).
  par::Runtime rt(2);
  const auto a = distribute(rt, laplace3d(6, 0.0));
  AmgConfig cfg;
  cfg.max_levels = 1;
  AmgHierarchy h(a, cfg);
  ASSERT_EQ(h.num_levels(), 1);
  EXPECT_DOUBLE_EQ(h.grid_complexity(), 1.0);
  EXPECT_DOUBLE_EQ(h.operator_complexity(), 1.0);
}

TEST(HierarchyCache, KeysOnGenerationAndConfig) {
  par::Runtime rt(2);
  const auto a = distribute(rt, laplace3d(6, 0.0));
  AmgConfig cfg;
  HierarchyCache cache;
  EXPECT_FALSE(cache.valid());
  EXPECT_TRUE(cache.stale(1, cfg));

  cache.rebuild(a, cfg, /*generation=*/1, /*freeze=*/true);
  EXPECT_TRUE(cache.valid());
  EXPECT_EQ(cache.rebuilds(), 1);
  EXPECT_FALSE(cache.stale(1, cfg));
  EXPECT_TRUE(cache.stale(2, cfg));  // graph regenerated
  AmgConfig other = cfg;
  other.strong_threshold = 0.5;
  EXPECT_TRUE(cache.stale(1, other));  // knob changed
  cache.invalidate();
  EXPECT_TRUE(cache.stale(1, cfg));
}

TEST(HierarchyCache, CountsSolvesAndDetectsStagnation) {
  par::Runtime rt(2);
  const auto a0 = distribute(rt, laplace3d(6, 0.0));
  const auto a1 = distribute(rt, laplace3d(6, 0.1));
  AmgConfig cfg;
  HierarchyCache cache;
  cache.rebuild(a0, cfg, 1, /*freeze=*/true);

  cache.note_solve(10);  // sets the post-rebuild baseline
  EXPECT_FALSE(cache.stagnating(1.5));
  cache.refresh(a1);
  EXPECT_EQ(cache.refreshes(), 1);
  cache.note_solve(12);
  EXPECT_FALSE(cache.stagnating(1.5));  // 12 <= 1.5 * 10
  cache.note_solve(16);
  EXPECT_TRUE(cache.stagnating(1.5));  // 16 > 1.5 * 10
  EXPECT_EQ(cache.solves_since_rebuild(), 3);

  // A rebuild resets the baseline and the solve counter.
  cache.rebuild(a1, cfg, 1, /*freeze=*/true);
  EXPECT_EQ(cache.rebuilds(), 2);
  EXPECT_EQ(cache.solves_since_rebuild(), 0);
  EXPECT_FALSE(cache.stagnating(1.5));
}

TEST(HierarchyCache, RefreshWithoutFreezeThrows) {
  par::Runtime rt(2);
  const auto a = distribute(rt, laplace3d(6, 0.0));
  AmgConfig cfg;
  HierarchyCache cache;
  cache.rebuild(a, cfg, 1, /*freeze=*/false);
  EXPECT_THROW(cache.refresh(a), Error);
}

}  // namespace
}  // namespace exw::amg
