// Unit + property tests: the Thrust-shaped primitive library that the
// paper's Algorithms 1-2 are built on.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sparse/prim.hpp"

namespace exw::sparse::prim {
namespace {

TEST(Prim, StableSortByKeySingle) {
  std::vector<int> keys{3, 1, 2, 1};
  std::vector<double> vals{30, 10, 20, 11};
  stable_sort_by_key(keys, vals);
  EXPECT_EQ(keys, (std::vector<int>{1, 1, 2, 3}));
  // Stability: the two key-1 values keep their order.
  EXPECT_EQ(vals, (std::vector<double>{10, 11, 20, 30}));
}

TEST(Prim, StableSortByKeyComposite) {
  std::vector<long> k1{2, 1, 2, 1};
  std::vector<long> k2{0, 5, 0, 3};
  std::vector<double> v{1, 2, 3, 4};
  stable_sort_by_key(k1, k2, v);
  EXPECT_EQ(k1, (std::vector<long>{1, 1, 2, 2}));
  EXPECT_EQ(k2, (std::vector<long>{3, 5, 0, 0}));
  EXPECT_EQ(v, (std::vector<double>{4, 2, 1, 3}));
}

TEST(Prim, ReduceByKeySumsRuns) {
  std::vector<int> keys{1, 1, 2, 3, 3, 3};
  std::vector<double> vals{1, 2, 3, 4, 5, 6};
  const auto n = reduce_by_key(keys, vals);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(vals, (std::vector<double>{3, 3, 15}));
}

TEST(Prim, ReduceByKeyComposite) {
  std::vector<long> k1{0, 0, 0, 1};
  std::vector<long> k2{2, 2, 3, 2};
  std::vector<double> v{1, 10, 100, 1000};
  reduce_by_key(k1, k2, v);
  EXPECT_EQ(k1, (std::vector<long>{0, 0, 1}));
  EXPECT_EQ(k2, (std::vector<long>{2, 3, 2}));
  EXPECT_EQ(v, (std::vector<double>{11, 100, 1000}));
}

TEST(Prim, ExclusiveScan) {
  std::vector<int> v{1, 2, 3, 4};
  const int total = exclusive_scan(v);
  EXPECT_EQ(total, 10);
  EXPECT_EQ(v, (std::vector<int>{0, 1, 3, 6}));
}

TEST(Prim, EmptyInputs) {
  std::vector<int> keys;
  std::vector<double> vals;
  EXPECT_NO_THROW(stable_sort_by_key(keys, vals));
  EXPECT_EQ(reduce_by_key(keys, vals), 0u);
  std::vector<int> empty;
  EXPECT_EQ(exclusive_scan(empty), 0);
}

/// Property sweep: sort+reduce over random composite keys must equal a
/// std::map-based reference sum.
class PrimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimProperty, SortReduceMatchesMapReference) {
  Rng rng(GetParam());
  const std::size_t n = 200 + rng.index(2000);
  std::vector<GlobalIndex> k1(n), k2(n);
  std::vector<Real> v(n);
  std::map<std::pair<GlobalIndex, GlobalIndex>, Real> ref;
  for (std::size_t i = 0; i < n; ++i) {
    k1[i] = static_cast<GlobalIndex>(rng.index(50));
    k2[i] = static_cast<GlobalIndex>(rng.index(50));
    v[i] = rng.uniform(-1, 1);
    ref[{k1[i], k2[i]}] += v[i];
  }
  stable_sort_by_key(k1, k2, v);
  reduce_by_key(k1, k2, v);
  ASSERT_EQ(k1.size(), ref.size());
  std::size_t i = 0;
  for (const auto& [key, sum] : ref) {
    EXPECT_EQ(k1[i], key.first);
    EXPECT_EQ(k2[i], key.second);
    EXPECT_NEAR(v[i], sum, 1e-12);
    ++i;
  }
}

TEST_P(PrimProperty, SortIsSorted) {
  Rng rng(GetParam() ^ 0xabcdef);
  const std::size_t n = 100 + rng.index(3000);
  std::vector<GlobalIndex> k1(n), k2(n);
  std::vector<Real> v(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    k1[i] = static_cast<GlobalIndex>(rng.index(64));
    k2[i] = static_cast<GlobalIndex>(rng.index(64));
  }
  stable_sort_by_key(k1, k2, v);
  for (std::size_t i = 1; i < n; ++i) {
    const bool ordered =
        k1[i - 1] < k1[i] || (k1[i - 1] == k1[i] && k2[i - 1] <= k2[i]);
    ASSERT_TRUE(ordered) << "at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace exw::sparse::prim
