#pragma once
/// Shared fixtures: reference matrices, random systems, dense comparisons.

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace exw::testutil {

/// 3D 7-point Laplacian (+shift) on an n^3 grid — the canonical elliptic
/// test operator.
inline sparse::Csr laplace3d(int n, Real shift = 0.0) {
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  auto id = [&](int i, int j, int k) {
    return static_cast<LocalIndex>((k * n + j) * n + i);
  };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const LocalIndex row = id(i, j, k);
        Real diag = 0;
        auto nb = [&](int a, int b, int c) {
          if (a < 0 || a >= n || b < 0 || b >= n || c < 0 || c >= n) return;
          ti.push_back(row);
          tj.push_back(id(a, b, c));
          tv.push_back(-1.0);
          diag += 1.0;
        };
        nb(i - 1, j, k);
        nb(i + 1, j, k);
        nb(i, j - 1, k);
        nb(i, j + 1, k);
        nb(i, j, k - 1);
        nb(i, j, k + 1);
        ti.push_back(row);
        tj.push_back(row);
        tv.push_back(diag + shift);
      }
    }
  }
  const LocalIndex nn{n * n * n};
  return sparse::Csr::from_triples(nn, nn, std::move(ti), std::move(tj),
                                   std::move(tv));
}

/// Anisotropic 2D 5-point operator (eps << 1 gives strong y-coupling) —
/// exercises strength-of-connection thresholds.
inline sparse::Csr aniso2d(int n, Real eps) {
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  auto id = [&](int i, int j) { return static_cast<LocalIndex>(j * n + i); };
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const LocalIndex row = id(i, j);
      Real diag = 0;
      auto nb = [&](int a, int b, Real w) {
        if (a < 0 || a >= n || b < 0 || b >= n) return;
        ti.push_back(row);
        tj.push_back(id(a, b));
        tv.push_back(-w);
        diag += w;
      };
      nb(i - 1, j, eps);
      nb(i + 1, j, eps);
      nb(i, j - 1, 1.0);
      nb(i, j + 1, 1.0);
      ti.push_back(row);
      tj.push_back(row);
      tv.push_back(diag);
    }
  }
  const LocalIndex nn{n * n};
  return sparse::Csr::from_triples(nn, nn, std::move(ti), std::move(tj),
                                   std::move(tv));
}

/// Random sparse matrix with guaranteed diagonal dominance.
inline sparse::Csr random_spd_ish(LocalIndex n, int nnz_per_row,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  for (LocalIndex i{0}; i < n; ++i) {
    Real diag = 1.0;
    for (int k = 0; k < nnz_per_row; ++k) {
      const auto j = static_cast<LocalIndex>(rng.index(static_cast<std::uint64_t>(n)));
      if (j == i) continue;
      const Real v = -rng.uniform(0.1, 1.0);
      ti.push_back(i);
      tj.push_back(j);
      tv.push_back(v);
      diag += std::abs(v);
    }
    ti.push_back(i);
    tj.push_back(i);
    tv.push_back(diag);
  }
  return sparse::Csr::from_triples(n, n, std::move(ti), std::move(tj),
                                   std::move(tv));
}

/// Random rectangular matrix.
inline sparse::Csr random_rect(LocalIndex nrows, LocalIndex ncols,
                               int nnz_per_row, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  for (LocalIndex i{0}; i < nrows; ++i) {
    for (int k = 0; k < nnz_per_row; ++k) {
      ti.push_back(i);
      tj.push_back(static_cast<LocalIndex>(rng.index(static_cast<std::uint64_t>(ncols))));
      tv.push_back(rng.uniform(-1.0, 1.0));
    }
  }
  return sparse::Csr::from_triples(nrows, ncols, std::move(ti), std::move(tj),
                                   std::move(tv));
}

inline RealVector random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  RealVector v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

/// Max |a - b| over dense arrays.
inline Real max_diff(const RealVector& a, const RealVector& b) {
  Real m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

/// Dense comparison of two sparse matrices: max |A - B| entrywise.
inline Real matrix_diff(const sparse::Csr& a, const sparse::Csr& b) {
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols()) {
    return 1e300;
  }
  Real m = 0;
  for (LocalIndex i{0}; i < a.nrows(); ++i) {
    for (EntryOffset k = a.row_begin(i); k < a.row_end(i); ++k) {
      const LocalIndex c = a.cols()[k];
      m = std::max(m, std::abs(a.vals()[k] - b.at(i, c)));
    }
    for (EntryOffset k = b.row_begin(i); k < b.row_end(i); ++k) {
      const LocalIndex c = b.cols()[k];
      m = std::max(m, std::abs(b.vals()[k] - a.at(i, c)));
    }
  }
  return m;
}

}  // namespace exw::testutil
