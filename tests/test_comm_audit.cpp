// Tests for the communication-determinism audit (par/comm_audit.hpp):
// the per-rank ledger, cross-rank collective-sequence comparison at
// phase boundaries / teardown, the unmatched-send scan, runtime tag-
// registry enforcement, and the compile-time registry uniqueness check.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "par/comm_audit.hpp"
#include "par/contract.hpp"
#include "par/runtime.hpp"
#include "par/tags.hpp"

namespace exw {
namespace {

using par::Runtime;
using par::contract::ScopedRankContext;
namespace comm_audit = par::comm_audit;
namespace tags = par::tags;

// --- tag registry (compiles in every configuration) ----------------------

// The registry's uniqueness contract is a static_assert in tags.hpp; the
// checker itself must accept the committed registry and reject a
// collision. A duplicate tag in kRegistry would fail the build, which is
// the "tag-collision rejected" acceptance criterion.
constexpr tags::Entry kColliding[] = {
    {901, "a"},
    {902, "b"},
    {901, "c"},
};
static_assert(!tags::detail::all_unique(kColliding),
              "duplicate-detection must reject a colliding registry");
static_assert(tags::detail::all_unique(tags::kRegistry),
              "the committed registry must be collision-free");
static_assert(tags::registered(tags::kTestAudit));
static_assert(!tags::registered(777));

TEST(CommAuditConfig, EnabledMatchesBuildAndVerifyIsCleanOnIdleRuntime) {
  EXPECT_EQ(comm_audit::enabled(), EXW_COMM_AUDIT_ENABLED != 0);
  Runtime rt(2);
  if (comm_audit::enabled()) {
    EXPECT_NE(rt.comm_auditor(), nullptr);
  } else {
    EXPECT_EQ(rt.comm_auditor(), nullptr);
  }
  EXPECT_NO_THROW(rt.comm_audit_verify());
  EXPECT_FALSE(comm_audit::summary().empty());
}

TEST(CommAuditConfig, TagNamesResolveFromRegistry) {
  EXPECT_STREQ(tags::name(tags::kPlanMatVals), "plan-mat-vals");
  EXPECT_STREQ(tags::name(tags::kHaloValues), "halo-values");
  EXPECT_STREQ(tags::name(777), "unregistered");
}

#if EXW_COMM_AUDIT_ENABLED

// --- collective-sequence divergence --------------------------------------

TEST(CommAudit, DivergentCollectiveKindThrowsNamingBothRanksAndSite) {
  Runtime rt(2);
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<GlobalIndex> gs{GlobalIndex{1}, GlobalIndex{2}};
  {
    ScopedRankContext ctx(RankId{0});
    (void)rt.allreduce_sum(xs);
  }
  {
    ScopedRankContext ctx(RankId{1});
    (void)rt.allreduce_max(gs);
  }
  try {
    rt.comm_audit_verify();
    FAIL() << "divergent collective sequence must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("allreduce_sum"), std::string::npos) << what;
    EXPECT_NE(what.find("allreduce_max"), std::string::npos) << what;
    // The call site named is THIS file — the defaulted source_location
    // parameter captures the caller, not the runtime internals.
    EXPECT_NE(what.find("test_comm_audit.cpp"), std::string::npos) << what;
  }
  // The divergence was reported once and the window advanced: teardown
  // (destructor) stays quiet and a re-verify passes.
  EXPECT_NO_THROW(rt.comm_audit_verify());
}

TEST(CommAudit, MissingParticipantReportsExtraCollective) {
  Runtime rt(4);
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  {
    ScopedRankContext ctx(RankId{2});
    (void)rt.allreduce_sum(xs);
  }
  try {
    rt.comm_audit_verify();
    FAIL() << "a collective only rank 2 entered must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
  }
}

TEST(CommAudit, IdenticalRankSequencesPassAndWindowAdvances) {
  Runtime rt(2);
  const std::vector<double> xs{1.0, 2.0};
  auto reduce_as = [&](RankId r) {
    ScopedRankContext ctx(r);
    (void)rt.allreduce_sum(xs);  // one call site shared by every rank
  };
  for (int r = 0; r < rt.nranks(); ++r) {
    reduce_as(RankId{r});
  }
  ASSERT_NE(rt.comm_auditor(), nullptr);
  EXPECT_EQ(rt.comm_auditor()->pending_collectives(RankId{0}), 1u);
  EXPECT_EQ(rt.comm_auditor()->pending_collectives(RankId{1}), 1u);
  EXPECT_NO_THROW(rt.comm_audit_verify());
  EXPECT_EQ(rt.comm_auditor()->pending_collectives(RankId{0}), 0u);
  EXPECT_EQ(rt.comm_auditor()->pending_collectives(RankId{1}), 0u);
}

TEST(CommAudit, PhaseBoundaryRunsTheSequenceCheck) {
  Runtime rt(2);
  const std::vector<double> xs{1.0, 2.0};
  rt.tracer().push_phase("divergent");
  {
    ScopedRankContext ctx(RankId{1});
    (void)rt.allreduce_sum(xs);
  }
  // pop_phase notifies the auditor via the PhasePopListener hook; the
  // rank-1-only collective must surface right at the boundary.
  EXPECT_THROW(rt.tracer().pop_phase(), Error);
  EXPECT_NO_THROW(rt.comm_audit_verify());
}

TEST(CommAudit, OrchestratorCollectivesOnlyAdvanceTheEpoch) {
  Runtime rt(3);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  ASSERT_NE(rt.comm_auditor(), nullptr);
  const unsigned long long e0 = rt.comm_auditor()->collective_epoch();
  (void)rt.allreduce_sum(xs);
  (void)rt.allreduce_sum_vec({{1.0}, {2.0}, {3.0}});
  EXPECT_EQ(rt.comm_auditor()->collective_epoch(), e0 + 2);
  for (int r = 0; r < rt.nranks(); ++r) {
    EXPECT_EQ(rt.comm_auditor()->pending_collectives(RankId{r}), 0u);
  }
  EXPECT_NO_THROW(rt.comm_audit_verify());
}

TEST(CommAudit, EpochStampCatchesInterleavingDivergence) {
  // Both ranks record the same rank-context collective from the same
  // site, but rank 1 saw a global collective in between — on real
  // hardware the two ranks would enter different collectives at once.
  Runtime rt(2);
  const std::vector<double> xs{1.0, 2.0};
  auto reduce_as = [&](RankId r) {
    ScopedRankContext ctx(r);
    (void)rt.allreduce_sum(xs);
  };
  reduce_as(RankId{0});
  (void)rt.allreduce_sum(xs);  // orchestrator: bumps the epoch
  reduce_as(RankId{1});
  EXPECT_THROW(rt.comm_audit_verify(), Error);
}

// --- point-to-point audits -----------------------------------------------

TEST(CommAudit, UnmatchedSendExplicitVerifyThrowsNamingChannelAndSite) {
  Runtime rt(2);
  rt.transport().send<int>(RankId{0}, RankId{1}, tags::kTestAudit, {1, 2});
  ASSERT_NE(rt.comm_auditor(), nullptr);
  EXPECT_EQ(rt.comm_auditor()->unreceived_messages(), 1u);
  try {
    rt.comm_audit_verify();
    FAIL() << "a sent-but-never-received message must fail the audit";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("never received"), std::string::npos) << what;
    EXPECT_NE(what.find("test-audit"), std::string::npos) << what;
    EXPECT_NE(what.find("test_comm_audit.cpp"), std::string::npos) << what;
  }
  // Reported once; the pending record is dropped so teardown is quiet.
  EXPECT_EQ(rt.comm_auditor()->unreceived_messages(), 0u);
}

TEST(CommAudit, UnmatchedSendAtTeardownCountsViolations) {
  const auto before = comm_audit::report();
  {
    Runtime rt(2);
    rt.transport().send<int>(RankId{0}, RankId{1}, tags::kTestAudit, {7});
    // No recv, no explicit verify: ~Runtime's teardown scan must catch
    // it without throwing (destructor context) and count it.
  }
  const auto after = comm_audit::report();
  EXPECT_EQ(after.violations, before.violations + 1);
  EXPECT_EQ(after.teardown_reports, before.teardown_reports + 1);
}

TEST(CommAudit, UnregisteredTagIsRejectedAtSend) {
  Runtime rt(2);
  constexpr int kBogusTag = 777;  // named, but absent from the registry
  try {
    rt.transport().send<int>(RankId{0}, RankId{1}, kBogusTag, {1});
    FAIL() << "an unregistered tag must be rejected";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unregistered tag 777"), std::string::npos) << what;
    EXPECT_NE(what.find("par/tags.hpp"), std::string::npos) << what;
  }
  // Rejected before the mailbox push: nothing was actually sent.
  EXPECT_TRUE(rt.transport().drained());
  EXPECT_NO_THROW(rt.comm_audit_verify());
}

TEST(CommAudit, PayloadElementTypeMismatchIsDetectedAtRecv) {
  Runtime rt(2);
  // 4 ints = 16 bytes; received as 2 doubles = same bytes, different
  // element count. The transport deserializes happily — only the ledger
  // can see the type punning across the channel.
  rt.transport().send<int>(RankId{0}, RankId{1}, tags::kTestAudit,
                           {1, 2, 3, 4});
  try {
    (void)rt.transport().recv<double>(RankId{1}, RankId{0},
                                      tags::kTestAudit);
    FAIL() << "cross-type recv must fail the payload audit";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("payload mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("test-audit"), std::string::npos) << what;
  }
  // The message was consumed and the mismatch reported once.
  EXPECT_NO_THROW(rt.comm_audit_verify());
}

// --- ledger propagation through the thread pool --------------------------

TEST(CommAudit, LedgerCountsRingExchangeThroughThreadPool) {
  // Same two-region ring as the contract tests: every rank sends to its
  // right neighbor in one parallel region (potentially on 4/8 pool
  // threads, per EXW_NUM_THREADS) and receives from its left neighbor in
  // the next. The per-rank ledgers must come out exact regardless of the
  // thread count.
  Runtime rt(8);
  rt.parallel_for_ranks([&](RankId r) {
    rt.transport().send<int>(r, RankId{(r.value() + 1) % 8},
                             tags::kTestRing, {r.value()});
  });
  rt.parallel_for_ranks([&](RankId r) {
    const auto got = rt.transport().recv<int>(
        r, RankId{(r.value() + 7) % 8}, tags::kTestRing);
    EXPECT_EQ(got[0], (r.value() + 7) % 8);
  });
  ASSERT_NE(rt.comm_auditor(), nullptr);
  for (int r = 0; r < rt.nranks(); ++r) {
    EXPECT_EQ(rt.comm_auditor()->rank_sends(RankId{r}), 1) << "rank " << r;
    EXPECT_EQ(rt.comm_auditor()->rank_recvs(RankId{r}), 1) << "rank " << r;
  }
  EXPECT_EQ(rt.comm_auditor()->unreceived_messages(), 0u);
  EXPECT_TRUE(rt.transport().drained());
  EXPECT_NO_THROW(rt.comm_audit_verify());
}

TEST(CommAudit, ReportCountsRecordsAndChecks) {
  const auto before = comm_audit::report();
  {
    Runtime rt(2);
    const std::vector<double> xs{1.0, 2.0};
    (void)rt.allreduce_sum(xs);
    rt.transport().send<int>(RankId{0}, RankId{1}, tags::kTestAudit, {1});
    (void)rt.transport().recv<int>(RankId{1}, RankId{0}, tags::kTestAudit);
    rt.comm_audit_verify();
  }
  const auto after = comm_audit::report();
  EXPECT_EQ(after.collectives, before.collectives + 1);
  EXPECT_EQ(after.sends, before.sends + 1);
  EXPECT_EQ(after.recvs, before.recvs + 1);
  EXPECT_GE(after.final_checks, before.final_checks + 1);
  EXPECT_EQ(after.violations, before.violations);
}

#endif  // EXW_COMM_AUDIT_ENABLED

}  // namespace
}  // namespace exw
