// Unit + property tests: RowPartition, RCB, multilevel graph partitioner,
// renumbering — the Fig. 4/5 machinery.
#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "common/rng.hpp"
#include "par/partition.hpp"
#include "part/graph_partition.hpp"
#include "part/rcb.hpp"
#include "part/renumber.hpp"

namespace exw::part {
namespace {

TEST(RowPartition, EvenSplit) {
  const auto p = par::RowPartition::even(GlobalIndex{10}, 3);
  EXPECT_EQ(p.nranks(), 3);
  EXPECT_EQ(p.global_size(), GlobalIndex{10});
  EXPECT_EQ(p.local_size(RankId{0}), LocalIndex{4});
  EXPECT_EQ(p.local_size(RankId{1}), LocalIndex{3});
  EXPECT_EQ(p.local_size(RankId{2}), LocalIndex{3});
  EXPECT_EQ(p.rank_of(GlobalIndex{0}), RankId{0});
  EXPECT_EQ(p.rank_of(GlobalIndex{3}), RankId{0});
  EXPECT_EQ(p.rank_of(GlobalIndex{4}), RankId{1});
  EXPECT_EQ(p.rank_of(GlobalIndex{9}), RankId{2});
  EXPECT_TRUE(p.owns(RankId{1}, GlobalIndex{5}));
  EXPECT_FALSE(p.owns(RankId{1}, GlobalIndex{7}));
  EXPECT_EQ(p.to_local(RankId{2}, GlobalIndex{8}), LocalIndex{1});
}

TEST(RowPartition, FromCountsAllowsEmptyRanks) {
  const auto p = par::RowPartition::from_counts(
      {GlobalIndex{3}, GlobalIndex{0}, GlobalIndex{2}});
  EXPECT_EQ(p.local_size(RankId{1}), LocalIndex{0});
  EXPECT_EQ(p.rank_of(GlobalIndex{3}), RankId{2});
}

TEST(Rcb, BalancesUnitWeights) {
  Rng rng(1);
  std::vector<Vec3> coords(1000);
  for (auto& c : coords) {
    c = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  const auto parts = rcb_partition(coords, {}, 8);
  std::vector<int> counts(8, 0);
  for (RankId p : parts) {
    ASSERT_GE(p, RankId{0});
    ASSERT_LT(p, RankId{8});
    counts[static_cast<std::size_t>(p)] += 1;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 125, 5);
  }
}

TEST(Rcb, NonPowerOfTwoParts) {
  Rng rng(2);
  std::vector<Vec3> coords(700);
  for (auto& c : coords) {
    c = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  const auto parts = rcb_partition(coords, {}, 7);
  std::set<RankId> used(parts.begin(), parts.end());
  EXPECT_EQ(used.size(), 7u);
}

TEST(Rcb, RespectsWeights) {
  // Half the points carry 9x the weight; weighted balance should hold.
  std::vector<Vec3> coords;
  std::vector<double> w;
  for (int i = 0; i < 400; ++i) {
    coords.push_back({static_cast<Real>(i), 0, 0});
    w.push_back(i < 200 ? 9.0 : 1.0);
  }
  const auto parts = rcb_partition(coords, w, 2);
  double w0 = 0, w1 = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    (parts[i] == RankId{0} ? w0 : w1) += w[i];
  }
  EXPECT_NEAR(w0 / (w0 + w1), 0.5, 0.05);
}

Graph ring_graph(LocalIndex n) {
  std::vector<LocalIndex> ei, ej;
  for (LocalIndex i{0}; i < n; ++i) {
    ei.push_back(i);
    ej.push_back(LocalIndex{(i.value() + 1) % n.value()});
  }
  return graph_from_edges(n, ei, ej, {});
}

Graph grid_graph(int nx, int ny) {
  std::vector<LocalIndex> ei, ej;
  auto id = [&](int i, int j) { return static_cast<LocalIndex>(j * nx + i); };
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (i + 1 < nx) {
        ei.push_back(id(i, j));
        ej.push_back(id(i + 1, j));
      }
      if (j + 1 < ny) {
        ei.push_back(id(i, j));
        ej.push_back(id(i, j + 1));
      }
    }
  }
  return graph_from_edges(LocalIndex{nx * ny}, ei, ej, {});
}

TEST(GraphFromEdges, SymmetricAndDeduplicated) {
  // Duplicate edge (0,1) twice: weights should merge.
  const Graph g = graph_from_edges(LocalIndex{3},
                                   {LocalIndex{0}, LocalIndex{1}, LocalIndex{0}},
                                   {LocalIndex{1}, LocalIndex{0}, LocalIndex{2}}, {});
  EXPECT_TRUE(g.valid());
  EXPECT_EQ((g.xadj[1] - g.xadj[0]).value(), 2);  // vertex 0: neighbors {1, 2}
  // Edge (0,1) was given twice (once per direction) -> weight 2.
  EXPECT_DOUBLE_EQ(g.ewgt[0], 2.0);
}

TEST(GraphPartition, RingBisectionIsContiguous) {
  const Graph g = ring_graph(LocalIndex{64});
  const auto parts = graph_partition(g, 2);
  // A ring's optimal bisection cuts exactly 2 edges.
  EXPECT_LE(edge_cut(g, parts), 4.0);
  const auto stats = balance_stats(g.vwgt, parts, 2);
  EXPECT_LE(stats.max / stats.mean, 1.1);
}

class GraphPartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(GraphPartitionProperty, GridKwayBalancedAndBetterThanRandom) {
  const int nparts = GetParam();
  const Graph g = grid_graph(32, 32);
  const auto parts = graph_partition(g, nparts);
  // All parts used, balance within tolerance.
  std::set<RankId> used(parts.begin(), parts.end());
  EXPECT_EQ(static_cast<int>(used.size()), nparts);
  const auto stats = balance_stats(g.vwgt, parts, nparts);
  EXPECT_LE(stats.max / stats.mean, 1.25);
  // The multilevel cut must beat a hashed random assignment by far.
  std::vector<RankId> random_parts(parts.size());
  for (std::size_t v = 0; v < parts.size(); ++v) {
    random_parts[v] = RankId{static_cast<int>(
        hash64(v) % static_cast<std::uint64_t>(nparts))};
  }
  EXPECT_LT(edge_cut(g, parts), 0.5 * edge_cut(g, random_parts));
}

INSTANTIATE_TEST_SUITE_P(Parts, GraphPartitionProperty,
                         ::testing::Values(2, 3, 4, 7, 8, 16));

TEST(GraphPartition, Deterministic) {
  const Graph g = grid_graph(20, 20);
  const auto a = graph_partition(g, 6);
  const auto b = graph_partition(g, 6);
  EXPECT_EQ(a, b);
}

TEST(BalanceStats, ComputesSpread) {
  const std::vector<double> w{1, 1, 1, 1, 1, 1};
  const std::vector<RankId> parts{RankId{0}, RankId{0}, RankId{0}, RankId{1}, RankId{1}, RankId{2}};
  const auto s = balance_stats(w, parts, 3);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Renumber, BijectionAndContiguity) {
  const std::vector<RankId> parts{RankId{2}, RankId{0}, RankId{1}, RankId{0}, RankId{2}, RankId{1}, RankId{0}};
  const auto num = make_numbering(parts, 3);
  // Bijection.
  std::set<GlobalIndex> seen(num.old_to_new.begin(), num.old_to_new.end());
  EXPECT_EQ(seen.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(num.new_to_old[static_cast<std::size_t>(num.old_to_new[i])],
              GlobalIndex{i});
    // Each old id maps into its part's contiguous range.
    EXPECT_TRUE(num.rows.owns(parts[i], num.old_to_new[i]));
  }
  EXPECT_EQ(num.rows.local_size(RankId{0}), LocalIndex{3});
  EXPECT_EQ(num.rows.local_size(RankId{1}), LocalIndex{2});
  EXPECT_EQ(num.rows.local_size(RankId{2}), LocalIndex{2});
}

TEST(Renumber, StableWithinPart) {
  const std::vector<RankId> parts{RankId{0}, RankId{1}, RankId{0}, RankId{1}, RankId{0}};
  const auto num = make_numbering(parts, 2);
  // Old ids 0 < 2 < 4 (part 0) keep relative order.
  EXPECT_LT(num.old_to_new[0], num.old_to_new[2]);
  EXPECT_LT(num.old_to_new[2], num.old_to_new[4]);
}

}  // namespace
}  // namespace exw::part
