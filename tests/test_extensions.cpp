// Tests for the extension features: CG / BiCGStab solvers, the Chebyshev
// smoother, Kahan-compensated reductions (the paper's §3.2 future-work
// item), VTK output, and mesh-quality metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "amg/smoothers.hpp"
#include "mesh/generators.hpp"
#include "mesh/quality.hpp"
#include "mesh/vtk_writer.hpp"
#include "solver/krylov.hpp"
#include "test_util.hpp"

namespace exw {
namespace {

using testutil::laplace3d;
using testutil::random_spd_ish;
using testutil::random_vector;

struct Problem {
  par::Runtime rt;
  linalg::ParCsr a;
  linalg::ParVector b, x;

  Problem(int nranks, const sparse::Csr& mat)
      : rt(nranks),
        a(linalg::ParCsr::from_serial(
            rt, mat, par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks),
            par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks))),
        b(rt, a.rows()),
        x(rt, a.rows()) {
    b.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 77));
    x.fill(0.0);
  }

  Real true_residual() {
    linalg::ParVector r(rt, a.rows());
    a.residual(b, x, r);
    return r.norm2();
  }
};

class KrylovRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(KrylovRankSweep, CgSolvesSpdSystem) {
  Problem prob(GetParam(), laplace3d(8, 0.1));
  solver::IdentityPrecond m;
  solver::KrylovOptions opts;
  opts.rel_tol = 1e-9;
  opts.max_iters = 500;
  const auto stats = solver::cg_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(prob.true_residual(), 1e-7 * stats.initial_residual);
}

TEST_P(KrylovRankSweep, CgWithAmgPrecondIsFast) {
  Problem prob(GetParam(), laplace3d(10, 0.01));
  // CG needs an SPD preconditioner: symmetric smoother (SGS2) makes the
  // V-cycle symmetric (the default two-stage forward GS does not).
  amg::AmgConfig cfg;
  cfg.smoother = amg::SmootherType::kSgs2;
  solver::AmgPrecond m(prob.a, cfg);
  solver::KrylovOptions opts;
  opts.rel_tol = 1e-8;
  const auto stats = solver::cg_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 30);
}

TEST_P(KrylovRankSweep, BicgstabSolvesNonsymmetricSystem) {
  Problem prob(GetParam(), random_spd_ish(LocalIndex{200}, 6, 41));
  solver::SmootherPrecond m(prob.a, amg::SmootherType::kSgs2, 1, 1);
  solver::KrylovOptions opts;
  opts.rel_tol = 1e-8;
  const auto stats =
      solver::bicgstab_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(prob.true_residual(), 1e-6 * stats.initial_residual);
}

INSTANTIATE_TEST_SUITE_P(Ranks, KrylovRankSweep, ::testing::Values(1, 3, 6));

TEST(Krylov, CgUsesTwoReductionsPerIteration) {
  Problem prob(2, laplace3d(6, 0.2));
  solver::IdentityPrecond m;
  solver::KrylovOptions opts;
  opts.rel_tol = 1e-6;
  prob.rt.tracer().reset();
  const auto stats = solver::cg_solve(prob.a, prob.b, prob.x, m, opts);
  ASSERT_TRUE(stats.converged);
  const auto per_iter =
      static_cast<double>(prob.rt.tracer().phase("").collectives) /
      stats.iterations;
  EXPECT_NEAR(per_iter, 3.0, 1.2);  // pap, ||r||, rz (+startup amortized)
}

TEST(Chebyshev, SmoothsLikeTheOthers) {
  Problem prob(3, laplace3d(8, 0.2));
  amg::Smoother cheb(prob.a, amg::SmootherType::kChebyshev, 3, 1.0);
  const Real r0 = prob.true_residual();
  cheb.apply(prob.b, prob.x, 4);
  EXPECT_LT(prob.true_residual(), 0.8 * r0);
}

TEST(Chebyshev, WorksAsAmgSmoother) {
  Problem prob(2, laplace3d(10, 0.01));
  amg::AmgConfig cfg;
  cfg.smoother = amg::SmootherType::kChebyshev;
  cfg.inner_sweeps = 2;
  solver::AmgPrecond m(prob.a, cfg);
  solver::GmresOptions opts;
  opts.rel_tol = 1e-8;
  const auto stats = solver::gmres_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 60);
}

TEST(Chebyshev, GershgorinBoundsSpectrum) {
  // For the shifted Laplacian the largest eigenvalue of Dinv A is < 2;
  // Gershgorin must bound it and stay of the same order.
  par::Runtime rt(2);
  const auto mat = laplace3d(6, 0.5);
  const auto rows = par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 2);
  const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  const Real bound = amg::estimate_eig_max(a);
  EXPECT_GT(bound, 1.0);
  EXPECT_LT(bound, 2.1);
}

TEST(Kahan, CompensatedDotMatchesPlainOnBenignData) {
  par::Runtime rt(3);
  const auto rows = par::RowPartition::even(GlobalIndex{1000}, 3);
  linalg::ParVector x(rt, rows), y(rt, rows);
  x.scatter(random_vector(1000, 1));
  y.scatter(random_vector(1000, 2));
  EXPECT_NEAR(x.dot_compensated(y), x.dot(y), 1e-12 * std::abs(x.dot(y)));
}

TEST(Kahan, CompensatedDotSurvivesCancellation) {
  // Alternating huge/tiny terms: plain summation loses the tiny ones,
  // compensated summation keeps them (the paper's reproducibility
  // motivation for compensated summation [27]).
  par::Runtime rt(1);
  const std::size_t n = 4000;
  const auto rows = par::RowPartition::even(static_cast<GlobalIndex>(n), 1);
  linalg::ParVector x(rt, rows), y(rt, rows);
  // Groups of four terms [1e16, 1, -1e16, 0]: left-to-right plain
  // summation absorbs the 1.0 into the huge partial sum and loses it;
  // Kahan's compensation keeps it. Exact total = n/4.
  RealVector xs(n, 0.0), ys(n, 1.0);
  for (std::size_t i = 0; i + 3 < n; i += 4) {
    xs[i] = 1e16;
    xs[i + 1] = 1.0;
    xs[i + 2] = -1e16;
  }
  x.scatter(xs);
  y.scatter(ys);
  const double exact = static_cast<double>(n / 4);
  EXPECT_NEAR(x.dot_compensated(y), exact, 1e-6);
  // The plain dot demonstrably loses the small terms here.
  EXPECT_LT(std::abs(x.dot(y)), exact / 2);
}

TEST(Vtk, WritesReadableFile) {
  mesh::MeshDB db;
  mesh::StructuredBlockBuilder block(GlobalIndex{2}, GlobalIndex{2}, GlobalIndex{2});
  block.emit(db, [](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                static_cast<Real>(k.value())};
  });
  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  db.name = "unit";
  mesh::VtkFields fields;
  fields.scalars["pressure"] =
      RealVector(static_cast<std::size_t>(db.num_nodes()), 1.5);
  fields.vectors["velocity"] =
      RealVector(static_cast<std::size_t>(3 * db.num_nodes().value()), 0.25);
  const std::string path = "/tmp/exw_vtk_test.vtk";
  ASSERT_TRUE(mesh::write_vtk(db, fields, path));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(content.find("POINTS 27 double"), std::string::npos);
  EXPECT_NE(content.find("CELL_TYPES 8"), std::string::npos);
  EXPECT_NE(content.find("SCALARS pressure double 1"), std::string::npos);
  EXPECT_NE(content.find("VECTORS velocity double"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Vtk, RejectsWrongFieldSizes) {
  mesh::MeshDB db;
  mesh::StructuredBlockBuilder block(GlobalIndex{1}, GlobalIndex{1}, GlobalIndex{1});
  block.emit(db, [](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                static_cast<Real>(k.value())};
  });
  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  mesh::VtkFields fields;
  fields.scalars["bad"] = RealVector(3, 0.0);
  EXPECT_THROW(mesh::write_vtk(db, fields, "/tmp/exw_vtk_bad.vtk"), Error);
}

TEST(Quality, TurbineMeshesAreChallenging) {
  // The paper's premise quantified: the rotor mesh must show large
  // aspect ratios and coupling anisotropy; the background large volume
  // ratios (grading).
  const auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.4);
  const auto bg = mesh::measure_quality(sys.meshes[0]);
  const auto rotor = mesh::measure_quality(sys.meshes[1]);
  EXPECT_GT(rotor.max_aspect_ratio, 50.0);
  EXPECT_GT(rotor.max_coupling_anisotropy, 100.0);
  EXPECT_GT(bg.volume_ratio, 10.0);
}

TEST(Quality, UniformBoxIsBenign) {
  mesh::MeshDB db;
  mesh::StructuredBlockBuilder block(GlobalIndex{4}, GlobalIndex{4}, GlobalIndex{4});
  block.emit(db, [](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                static_cast<Real>(k.value())};
  });
  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  const auto q = mesh::measure_quality(db);
  EXPECT_NEAR(q.max_aspect_ratio, 1.0, 1e-9);
  EXPECT_NEAR(q.volume_ratio, 1.0, 1e-9);
  // Boundary nodes see half/quarter dual faces, so even the uniform box
  // has a small bounded spread; the turbine meshes are orders beyond it.
  EXPECT_LE(q.max_coupling_anisotropy, 4.0 + 1e-9);
}

}  // namespace
}  // namespace exw
