// Unit tests: machine models, tracer accounting, simulated transport,
// and the shared-memory parallel rank executor.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "par/runtime.hpp"
#include "par/tags.hpp"
#include "par/thread_pool.hpp"
#include "perf/machine_model.hpp"
#include "perf/tracer.hpp"

namespace exw {
namespace {

TEST(MachineModel, KernelTimeIsRoofline) {
  perf::MachineModel m;
  m.flops_per_s = 100;
  m.bytes_per_s = 10;
  m.kernel_launch_s = 1.0;
  // Compute-bound.
  EXPECT_DOUBLE_EQ(m.kernel_time(1000, 1), 10.0 + 1.0);
  // Bandwidth-bound.
  EXPECT_DOUBLE_EQ(m.kernel_time(1, 1000), 100.0 + 1.0);
}

TEST(MachineModel, MessageAlphaBeta) {
  perf::MachineModel m;
  m.msg_latency_s = 2.0;
  m.msg_bytes_per_s = 4.0;
  EXPECT_DOUBLE_EQ(m.message_time(8.0), 4.0);
}

TEST(MachineModel, AllreduceLogScaling) {
  perf::MachineModel m;
  m.coll_hop_s = 1.0;
  m.msg_bytes_per_s = 1e30;
  EXPECT_DOUBLE_EQ(m.allreduce_time(8, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.allreduce_time(8, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.allreduce_time(8, 8), 3.0);
  EXPECT_DOUBLE_EQ(m.allreduce_time(8, 9), 4.0);
}

TEST(MachineModel, PlatformOrdering) {
  // Per-rank GPU throughput dwarfs a CPU core; GPU overheads dwarf CPU's.
  const auto gpu = perf::MachineModel::summit_gpu();
  const auto cpu = perf::MachineModel::summit_cpu();
  const auto eagle = perf::MachineModel::eagle_gpu();
  EXPECT_GT(gpu.bytes_per_s, 50 * cpu.bytes_per_s);
  EXPECT_GT(gpu.kernel_launch_s, 10 * cpu.kernel_launch_s);
  EXPECT_GT(gpu.msg_latency_s, cpu.msg_latency_s);
  // Eagle's MPI path is the cheaper one (paper Fig. 11).
  EXPECT_LT(eagle.msg_latency_s, gpu.msg_latency_s);
}

TEST(Tracer, PhaseNestingChargesAllOpenPhases) {
  perf::Tracer t(2);
  {
    perf::PhaseScope outer(t, "eq");
    t.kernel(RankId{0}, 100, 10);
    {
      perf::PhaseScope inner(t, "solve");
      t.kernel(RankId{1}, 200, 20);
    }
  }
  EXPECT_DOUBLE_EQ(t.phase("eq").total_flops(), 300);
  EXPECT_DOUBLE_EQ(t.phase("eq/solve").total_flops(), 200);
  EXPECT_DOUBLE_EQ(t.phase("").total_flops(), 300);
}

TEST(Tracer, ModeledTimeIsMaxOverRanks) {
  perf::Tracer t(2);
  perf::MachineModel m;
  m.flops_per_s = 1.0;
  m.bytes_per_s = 1e30;
  m.kernel_launch_s = 0.0;
  t.kernel(RankId{0}, 5, 0);
  t.kernel(RankId{1}, 9, 0);
  EXPECT_DOUBLE_EQ(t.phase("").modeled_time(m), 9.0);
}

TEST(Tracer, MessageChargedToBothEndpoints) {
  perf::Tracer t(3);
  t.message(RankId{0}, RankId{2}, 100);
  const auto& s = t.phase("");
  EXPECT_EQ(s.rank[0].msgs, 1);
  EXPECT_EQ(s.rank[2].msgs, 1);
  EXPECT_EQ(s.rank[1].msgs, 0);
  EXPECT_EQ(s.total_messages(), 1);
}

TEST(Tracer, SelfMessageCountedOnce) {
  // Regression: total_messages() used to halve the per-rank sum, which
  // undercounts when a rank routes shared COO triples to itself
  // (assembly charges dst == src only once).
  perf::Tracer t(2);
  t.message(RankId{0}, RankId{1}, 8);  // charged to both endpoints
  t.message(RankId{1}, RankId{1}, 8);  // self-message: charged once
  const auto& s = t.phase("");
  EXPECT_EQ(s.rank[0].msgs, 1);
  EXPECT_EQ(s.rank[1].msgs, 2);
  EXPECT_EQ(s.total_messages(), 2);
}

TEST(Tracer, ResetClearsMessageCount) {
  perf::Tracer t(2);
  t.message(RankId{0}, RankId{1}, 8);
  t.reset();
  EXPECT_EQ(t.phase("").total_messages(), 0);
}

TEST(Tracer, CollectiveScalesWithRanks) {
  perf::MachineModel m;
  m.coll_hop_s = 1.0;
  m.msg_bytes_per_s = 1e30;
  perf::Tracer t2(2), t16(16);
  t2.collective(8);
  t16.collective(8);
  EXPECT_LT(t2.phase("").modeled_time(m), t16.phase("").modeled_time(m));
}

TEST(Tracer, ResetClearsWorkKeepsPhases) {
  perf::Tracer t(1);
  t.push_phase("a");
  t.kernel(RankId{0}, 10, 10);
  t.pop_phase();
  t.reset();
  EXPECT_TRUE(t.has_phase("a"));
  EXPECT_DOUBLE_EQ(t.phase("a").total_flops(), 0);
}

TEST(Transport, SendRecvRoundtrip) {
  par::Runtime rt(3);
  rt.transport().send<int>(RankId{0}, RankId{2}, par::tags::kTestPing, {1, 2, 3});
  EXPECT_TRUE(rt.transport().has_message(RankId{2}, RankId{0}, par::tags::kTestPing));
  const auto msg = rt.transport().recv<int>(RankId{2}, RankId{0}, par::tags::kTestPing);
  EXPECT_EQ(msg, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(rt.transport().drained());
}

TEST(Transport, FifoPerChannel) {
  par::Runtime rt(2);
  rt.transport().send<int>(RankId{0}, RankId{1}, par::tags::kTestFifo, {1});
  rt.transport().send<int>(RankId{0}, RankId{1}, par::tags::kTestFifo, {2});
  EXPECT_EQ(rt.transport().recv<int>(RankId{1}, RankId{0}, par::tags::kTestFifo)[0], 1);
  EXPECT_EQ(rt.transport().recv<int>(RankId{1}, RankId{0}, par::tags::kTestFifo)[0], 2);
}

TEST(Transport, RecvWithoutMessageThrows) {
  par::Runtime rt(2);
  EXPECT_THROW(rt.transport().recv<int>(RankId{1}, RankId{0}, par::tags::kTestEmpty), Error);
}

TEST(Runtime, AllreduceSumAndMax) {
  par::Runtime rt(4);
  EXPECT_DOUBLE_EQ(rt.allreduce_sum(std::vector<double>{1, 2, 3, 4}), 10.0);
  EXPECT_EQ(rt.allreduce_max(std::vector<GlobalIndex>{GlobalIndex{5}, GlobalIndex{9}, GlobalIndex{2}, GlobalIndex{7}}), GlobalIndex{9});
  const auto v = rt.allreduce_sum_vec({{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  EXPECT_DOUBLE_EQ(v[0], 16);
  EXPECT_DOUBLE_EQ(v[1], 20);
  // Three collectives were charged.
  EXPECT_EQ(rt.tracer().phase("").collectives, 3);
}

TEST(Runtime, AllreduceMaxAllNegative) {
  // Regression: the accumulator used to start at 0, so an all-negative
  // reduction wrongly returned 0.
  par::Runtime rt(3);
  EXPECT_EQ(rt.allreduce_max(std::vector<GlobalIndex>{GlobalIndex{-5}, GlobalIndex{-9}, GlobalIndex{-2}}), GlobalIndex{-2});
  EXPECT_EQ(rt.allreduce_max(std::vector<GlobalIndex>{GlobalIndex{-7}, GlobalIndex{-7}, GlobalIndex{-7}}), GlobalIndex{-7});
}

TEST(ThreadPool, ParallelForRanksRunsEveryBodyExactlyOnce) {
  par::Runtime rt(64);
  std::vector<int> hits(64, 0);
  rt.parallel_for_ranks([&](RankId r) { hits[static_cast<std::size_t>(r)] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, PropagatesBodyException) {
  par::Runtime rt(8);
  EXPECT_THROW(rt.parallel_for_ranks([&](RankId r) {
    EXW_REQUIRE(r != RankId{5}, "boom");
  }),
               Error);
}

TEST(ThreadPool, NestedRegionsRunInline) {
  par::Runtime rt(4);
  std::atomic<int> total{0};
  rt.parallel_for_ranks([&](RankId) {
    EXPECT_TRUE(par::in_parallel_region() || par::serial_mode() ||
                par::ThreadPool::instance().num_threads() == 1);
    par::parallel_for(3, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 12);
}

TEST(ThreadPool, SerialModeForcesInlineExecution) {
  par::set_serial_mode(true);
  std::vector<int> order;
  par::parallel_for(8, [&](int i) { order.push_back(i); });  // no data race
  par::set_serial_mode(false);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Transport, ConcurrentSendsFromRankBodiesAreSafe) {
  // Every rank posts to every other rank inside one parallel region, then
  // every rank drains its inbox in a second region. FIFO per channel and
  // exact message counts must survive the concurrency.
  const int nranks = 16;
  par::Runtime rt(nranks);
  rt.parallel_for_ranks([&](RankId src) {
    for (RankId dst{0}; dst.value() < nranks; ++dst) {
      rt.transport().send<int>(src, dst, par::tags::kTestRing, {src.value(), dst.value(), 1});
      rt.transport().send<int>(src, dst, par::tags::kTestRing, {src.value(), dst.value(), 2});
    }
  });
  std::atomic<int> received{0};
  rt.parallel_for_ranks([&](RankId dst) {
    for (RankId src{0}; src.value() < nranks; ++src) {
      const auto first = rt.transport().recv<int>(dst, src, par::tags::kTestRing);
      const auto second = rt.transport().recv<int>(dst, src, par::tags::kTestRing);
      if (first == std::vector<int>{src.value(), dst.value(), 1} &&
          second == std::vector<int>{src.value(), dst.value(), 2}) {
        received.fetch_add(2);
      }
    }
  });
  EXPECT_EQ(received.load(), 2 * nranks * nranks);
  EXPECT_TRUE(rt.transport().drained());
  // Exact count: nranks self-messages + nranks*(nranks-1) pair messages,
  // two of each.
  EXPECT_EQ(rt.tracer().phase("").total_messages(), 2 * nranks * nranks);
  // Per-rank charges are exact even though each rank is charged as src
  // by its own thread and as dst by neighbor threads concurrently
  // (regression: the src-side charge used to be a plain RMW racing the
  // atomic dst-side charge, losing updates). Each rank: 2*nranks sends
  // (self-messages charged once) + 2*(nranks-1) receives from others.
  const auto& root = rt.tracer().phase("");
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& w = root.rank[static_cast<std::size_t>(r)];
    EXPECT_EQ(w.msgs, 4 * nranks - 2) << "rank " << r;
    EXPECT_DOUBLE_EQ(w.msg_bytes,
                     static_cast<double>(4 * nranks - 2) * 3 * sizeof(int))
        << "rank " << r;
  }
}

TEST(ThreadPool, InlinePathRunsAllBodiesBeforeRethrow) {
  // Regression: the inline fallback used to abort at the first throwing
  // body, while the threaded path runs every remaining body and rethrows
  // afterwards — so a failure left different side effects (tracer
  // charges, pending messages) in serial vs. threaded runs.
  par::set_serial_mode(true);
  std::vector<int> hits(8, 0);
  EXPECT_THROW(par::parallel_for(8,
                                 [&](int i) {
                                   hits[static_cast<std::size_t>(i)] += 1;
                                   EXW_REQUIRE(i != 2, "boom");
                                 }),
               Error);
  par::set_serial_mode(false);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1) << "body " << i;
  }
}

}  // namespace
}  // namespace exw
