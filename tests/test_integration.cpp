// Cross-module integration: end-to-end invariants that tie mesh,
// partitioning, assembly, AMG, GMRES, and the CFD driver together.
#include <gtest/gtest.h>

#include "cfd/simulation.hpp"
#include "part/graph_partition.hpp"
#include "solver/gmres.hpp"
#include "test_util.hpp"

namespace exw {
namespace {

/// The headline distributed-correctness property: the full CFD step must
/// produce (to solver tolerance) the same physics regardless of how many
/// simulated ranks the problem is decomposed onto.
TEST(Integration, StepIsRankCountInvariant) {
  auto run = [&](int nranks) {
    auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
    par::Runtime rt(nranks);
    cfd::SimConfig cfg;
    cfg.picard_iters = 2;
    // Tighten solves so decomposition-dependent AMG hierarchies cannot
    // leave different leftover errors.
    cfg.pressure_gmres.rel_tol = 1e-9;
    cfg.momentum_gmres.rel_tol = 1e-9;
    cfd::Simulation sim(sys, cfg, rt);
    sim.step();
    return std::tuple{sim.velocity_rms(), sim.divergence_rms(),
                      sim.scalar_mean()};
  };
  const auto [v1, d1, s1] = run(1);
  const auto [v6, d6, s6] = run(6);
  EXPECT_NEAR(v1, v6, 1e-4 * v1);
  EXPECT_NEAR(s1, s6, 1e-6);
  EXPECT_NEAR(d1, d6, 1e-2 * std::max(d1, 1e-8));
}

/// Fig. 5 property: the graph partitioner's nonzero spread is far tighter
/// than RCB's on the rotor mesh (the paper reports ~10x).
TEST(Integration, GraphPartitionTightensNnzSpreadVsRcb) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.5);
  const int nranks = 24;
  auto spread = [&](assembly::PartitionMethod method) {
    par::Runtime rt(nranks);
    cfd::SimConfig cfg;
    cfg.partition = method;
    cfd::Simulation sim(sys, cfg, rt);
    // Pressure-system nnz per rank over both meshes combined.
    auto nnz = sim.pressure_nnz_per_rank(0);
    const auto rotor = sim.pressure_nnz_per_rank(1);
    for (std::size_t r = 0; r < nnz.size(); ++r) nnz[r] += rotor[r];
    const auto stats = part::balance_stats(nnz, [&] {
      std::vector<RankId> ids(nnz.size());
      for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<RankId>(i);
      return ids;
    }(), nranks);
    return (stats.max - stats.min) / stats.median;
  };
  const double rcb = spread(assembly::PartitionMethod::kRcb);
  const double graph = spread(assembly::PartitionMethod::kGraph);
  // Directional claim of Fig. 5: the nnz-weighted multilevel partitioner
  // beats weight-blind RCB. (The paper's ~10x spread reduction needs its
  // multi-block production meshes; our generator's row-size variance is
  // milder — EXPERIMENTS.md records the measured ratio.)
  EXPECT_LT(graph, rcb);
}

/// The modeled-time machinery end-to-end: the same recorded step must be
/// priced differently (and sanely) under the three machine models.
TEST(Integration, ModeledTimesReflectMachineModels) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt(12);
  cfd::SimConfig cfg;
  cfg.picard_iters = 1;
  cfd::Simulation sim(sys, cfg, rt);
  rt.tracer().reset();
  sim.step();
  const auto& nli = rt.tracer().phase("nli");
  const double gpu = nli.modeled_time(perf::MachineModel::summit_gpu());
  const double eagle = nli.modeled_time(perf::MachineModel::eagle_gpu());
  const double cpu = nli.modeled_time(perf::MachineModel::summit_cpu());
  EXPECT_GT(gpu, 0.0);
  // This tiny case sits far below the paper's ~2e5 DoFs/GPU crossover:
  // per-kernel launch and message overheads dominate the GPU model, so
  // the CPU model must win here. (The reverse regime is covered below.)
  EXPECT_LT(cpu, gpu);
  // Eagle's cheaper MPI path cannot be slower than Summit's for the same
  // recorded work at (nearly) equal compute throughput.
  EXPECT_LT(eagle, 1.15 * gpu);

  // Above the crossover: one huge streaming kernel per rank — the GPU's
  // bandwidth advantage (~70x per rank) must dominate all overheads.
  perf::Tracer big(2);
  big.kernel(RankId{0}, 1e12, 5e11);
  big.kernel(RankId{1}, 1e12, 5e11);
  EXPECT_LT(big.phase("").modeled_time(perf::MachineModel::summit_gpu()),
            big.phase("").modeled_time(perf::MachineModel::summit_cpu()));
}

/// Strong-scaling mechanics of the cost model: the same global problem
/// partitioned over more ranks must show (a) less modeled compute per
/// rank but (b) growing communication share — the mechanism behind the
/// paper's flattening GPU curves.
TEST(Integration, CommunicationShareGrowsUnderStrongScaling) {
  const auto mat = testutil::laplace3d(16, 0.01);
  auto comm_share = [&](int nranks) {
    par::Runtime rt(nranks);
    const auto rows = par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks);
    const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
    linalg::ParVector x(rt, rows), y(rt, rows);
    x.fill(1.0);
    rt.tracer().reset();
    for (int i = 0; i < 10; ++i) {
      a.matvec(x, y);
    }
    const auto& s = rt.tracer().phase("");
    const auto m = perf::MachineModel::summit_gpu();
    return s.comm_time(m) / (s.comm_time(m) + s.compute_time(m));
  };
  const double share2 = comm_share(2);
  const double share32 = comm_share(32);
  EXPECT_GT(share32, share2);
}

/// AMG-preconditioned GMRES on the actual turbine pressure system: the
/// solver configuration of §4.2 converges in a moderate iteration count
/// even on the ill-conditioned boundary-layer mesh.
TEST(Integration, PressureSystemSolvesWithPaperConfiguration) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.4);
  par::Runtime rt(6);
  cfd::SimConfig cfg;
  cfg.picard_iters = 1;
  cfd::Simulation sim(sys, cfg, rt);
  sim.step();
  EXPECT_LE(sim.continuity_stats().gmres_iterations, 60);
  EXPECT_GT(sim.continuity_stats().amg_levels, 2);
  EXPECT_LT(sim.continuity_stats().amg_operator_complexity, 3.0);
}

}  // namespace
}  // namespace exw
