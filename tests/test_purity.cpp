// Tests for the warm-path allocation-purity sanitizer (perf/purity.hpp):
// region/allow scoping and attribution, fatal-mode diagnostics naming the
// region and its open site, propagation through par::ThreadPool workers,
// and the zero-allocation steady-state contract of every warm cache
// (assembly-plan refill, AMG value refresh, smoother rebind, fused
// momentum kernels). Everything must also compile and pass — vacuously —
// when EXW_PURITY_CHECKS=OFF.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "amg/hierarchy.hpp"
#include "assembly/graph.hpp"
#include "assembly/layout.hpp"
#include "assembly/plan.hpp"
#include "linalg/multivector.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "mesh/meshdb.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"
#include "par/thread_pool.hpp"
#include "perf/purity.hpp"
#include "perf/tracer.hpp"
#include "solver/gmres.hpp"
#include "solver/precond.hpp"
#include "test_util.hpp"

namespace exw {
namespace {

namespace purity = perf::purity;
using testutil::laplace3d;
using testutil::random_spd_ish;
using testutil::random_vector;

// --- API available in every configuration --------------------------------

TEST(Purity, EnabledMatchesBuildConfiguration) {
  EXPECT_EQ(purity::enabled(), EXW_PURITY_CHECKS_ENABLED != 0);
  // These must be callable (and benign) in both configurations.
  purity::reset();
  const auto t = purity::totals();
  const auto rep = purity::report();
  EXPECT_EQ(rep.violations, 0);
  EXPECT_FALSE(purity::summary().empty());
  if (!purity::enabled()) {
    EXPECT_EQ(t.allocs, 0u);
    EXPECT_EQ(purity::region("nope").entries, 0);
    EXPECT_TRUE(purity::region_names().empty());
  }
}

#if EXW_PURITY_CHECKS_ENABLED

// Inside the guard: with the sanitizer compiled out this helper has no
// callers, and Release + -Werror rejects unused file-static functions.
linalg::ParCsr distribute(par::Runtime& rt, const sparse::Csr& a) {
  const auto rows =
      par::RowPartition::even(GlobalIndex{a.nrows().value()}, rt.nranks());
  return linalg::ParCsr::from_serial(rt, a, rows, rows);
}

/// Restore fatal mode on scope exit so a failing test can't poison the
/// rest of the binary.
struct FatalModeGuard {
  bool prev = purity::fatal_mode();
  ~FatalModeGuard() { purity::set_fatal(prev); }
};

/// Volatile sink: storing a just-new'ed pointer here makes the allocation
/// observable, defeating -O2 allocation elision of new/delete pairs.
double* volatile g_sink = nullptr;

void observed_alloc(std::size_t n) {
  g_sink = new double[n];
  delete[] g_sink;
}

TEST(Purity, InterpositionCountsEveryHeapAllocation) {
  const auto before = purity::totals();
  auto p = std::make_unique<std::vector<double>>(1000);
  const auto after = purity::totals();
  EXPECT_GT(after.allocs, before.allocs);
  EXPECT_GE(after.bytes - before.bytes, 1000 * sizeof(double));
  p.reset();
  EXPECT_GT(purity::totals().frees, before.frees);
}

TEST(Purity, NestedRegionsEachSeeTheAllocation) {
  purity::reset();
  FatalModeGuard guard;  // this test's allocations are deliberate
  purity::set_fatal(false);
  {
    EXW_PURITY_REGION("purity-test-outer");
    {
      EXW_PURITY_REGION("purity-test-inner");
      observed_alloc(32);
    }
  }
  const auto outer = purity::region("purity-test-outer");
  const auto inner = purity::region("purity-test-inner");
  EXPECT_EQ(outer.entries, 1);
  EXPECT_EQ(inner.entries, 1);
  EXPECT_EQ(outer.allocs, 1);
  EXPECT_EQ(inner.allocs, 1);
  EXPECT_EQ(outer.frees, 1);
  EXPECT_EQ(inner.frees, 1);
  EXPECT_GE(outer.bytes, 32 * sizeof(double));
}

TEST(Purity, AllowScopeReclassifiesButStillCounts) {
  purity::reset();
  FatalModeGuard guard;  // the out-of-allow allocation is deliberate
  purity::set_fatal(false);
  {
    EXW_PURITY_REGION("purity-test-allow");
    {
      EXW_PURITY_ALLOW("test payload staging");
      observed_alloc(1);
    }
    // Outside the allow scope again: this one is disallowed.
    observed_alloc(1);
  }
  const auto r = purity::region("purity-test-allow");
  EXPECT_EQ(r.allowed_allocs, 1);
  EXPECT_EQ(r.allocs, 1);
  EXPECT_EQ(r.frees, 2);
  const auto rep = purity::report();
  EXPECT_EQ(rep.allowed_allocs, 1);
  EXPECT_EQ(rep.disallowed_allocs, 1);
}

TEST(Purity, AllocationOutsideAnyRegionIsUntracked) {
  purity::reset();
  observed_alloc(1);
  EXPECT_EQ(purity::report().disallowed_allocs, 0);
  EXPECT_TRUE(purity::region_names().empty());
}

TEST(Purity, FatalModeThrowsNamingRegionAndOpenSite) {
  purity::reset();
  FatalModeGuard guard;
  purity::set_fatal(true);
  std::string msg;
  try {
    EXW_PURITY_REGION("purity-test-fatal");
    observed_alloc(1);
    ADD_FAILURE() << "expected a purity violation, none was thrown";
  } catch (const Error& e) {
    msg = e.what();
  }
  EXPECT_NE(msg.find("purity contract violated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("purity-test-fatal"), std::string::npos) << msg;
  // The diagnostic points at the region's open site, i.e. this file.
  EXPECT_NE(msg.find("test_purity.cpp"), std::string::npos) << msg;
  EXPECT_GE(purity::report().violations, 1);
}

TEST(Purity, FatalModeSparesAllowedScopes) {
  purity::reset();
  FatalModeGuard guard;
  purity::set_fatal(true);
  EXPECT_NO_THROW({
    EXW_PURITY_REGION("purity-test-fatal-allow");
    EXW_PURITY_ALLOW("test payload staging");
    observed_alloc(8);
  });
  EXPECT_EQ(purity::region("purity-test-fatal-allow").allocs, 0);
}

// --- propagation through the thread pool ---------------------------------

TEST(Purity, ThreadPoolWorkersInheritTheRegion) {
  purity::reset();
  FatalModeGuard guard;  // per-body allocations are deliberate
  purity::set_fatal(false);
  std::atomic<int> bodies{0};
  {
    EXW_PURITY_REGION("purity-test-pool");
    par::parallel_for(8, [&](int) {
      // One deliberate allocation per body, on whichever thread runs it.
      volatile auto* p = new std::vector<double>(64);
      delete p;
      bodies.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(bodies.load(), 8);
  const auto r = purity::region("purity-test-pool");
  // Worker frames merge into the same named region as the orchestrator's,
  // so all 8 bodies' allocations are attributed regardless of scheduling.
  EXPECT_GE(r.allocs, 8);
  EXPECT_GE(r.frees, 8);
}

TEST(Purity, ThreadPoolDispatchItselfDoesNotAllocate) {
  // FunctionRef replaced std::function in parallel_for precisely so warm
  // dispatch stays off the heap. Warm up once (contract registries and
  // pool state do cold first-touch work), then demand a clean region.
  std::atomic<int> sink{0};
  par::parallel_for(8, [&](int i) { sink.fetch_add(i); });
  purity::reset();
  {
    EXW_PURITY_REGION("purity-test-dispatch");
    par::parallel_for(8, [&](int i) { sink.fetch_add(i); });
  }
  EXPECT_EQ(purity::region("purity-test-dispatch").allocs, 0);
  EXPECT_EQ(purity::region("purity-test-dispatch").allowed_allocs, 0);
}

// --- the warm caches' steady-state zero-allocation contract --------------
//
// Pattern: run the warm path once to prime first-refill scratch, then
// reset the counters, run it again and demand zero disallowed
// allocations in its region (allowed NIC/collective staging may remain).

TEST(PurityWarmPath, AssemblyPlanRefillIsAllocationPure) {
  using namespace assembly;
  par::Runtime rt(4);
  // Small box mesh with a Dirichlet shell (mirrors test_assembly.cpp).
  mesh::MeshDB db;
  const GlobalIndex n{5};
  mesh::StructuredBlockBuilder block(n, n, n);
  block.emit(db, [&](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                static_cast<Real>(k.value())};
  });
  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  std::vector<std::uint8_t> dirichlet(
      static_cast<std::size_t>(db.num_nodes()), 0);
  for (GlobalIndex k{0}; k <= n; ++k) {
    for (GlobalIndex j{0}; j <= n; ++j) {
      for (GlobalIndex i{0}; i <= n; ++i) {
        if (i == GlobalIndex{0} || i == n || j == GlobalIndex{0} || j == n ||
            k == GlobalIndex{0} || k == n) {
          dirichlet[static_cast<std::size_t>(block.node_id(i, j, k))] = 1;
        }
      }
    }
  }
  const MeshLayout layout =
      make_layout(db, rt.nranks(), PartitionMethod::kGraph);
  EquationGraph graph(db, layout, dirichlet);
  graph.zero_values();
  for (std::size_t e = 0; e < db.edges.size(); ++e) {
    const Real g = db.edges[e].coeff;
    graph.add_edge(e, {g, -g, -g, g}, {0.1, -0.2}, false);
  }
  for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
    graph.add_node(node, dirichlet[static_cast<std::size_t>(node)] ? 1.0 : 0.0,
                   0.5, false);
  }
  const auto& rows = layout.numbering.rows;
  const auto views = system_views(graph);
  const auto span = std::span<const SystemView>(views);
  const auto plan = AssemblyPlan::build(rt, rows, rows, span);
  auto a = plan.create_matrix(rt);
  auto b = plan.create_vector(rt);

  plan.refill_matrix(rt, span, a);  // prime scratch
  plan.refill_vector(rt, span, b);
  purity::reset();
  FatalModeGuard guard;
  purity::set_fatal(true);  // a violation fails loudly, not just by count
  plan.refill_matrix(rt, span, a);
  plan.refill_vector(rt, span, b);
  EXPECT_EQ(purity::region("assembly-refill-matrix").allocs, 0);
  EXPECT_EQ(purity::region("assembly-refill-vector").allocs, 0);
}

TEST(PurityWarmPath, AmgValueRefreshIsAllocationPure) {
  using namespace amg;
  par::Runtime rt(4);
  const auto a0 = distribute(rt, laplace3d(8, 0.0));
  const auto a1 = distribute(rt, laplace3d(8, 0.5));
  AmgConfig cfg;
  AmgHierarchy h(a0, cfg, /*freeze_replay=*/true);

  h.refresh_values(a1);  // prime replay scratch
  purity::reset();
  FatalModeGuard guard;
  purity::set_fatal(true);
  h.refresh_values(a0);
  EXPECT_EQ(purity::region("amg-refresh").allocs, 0);
  EXPECT_EQ(purity::region("amg-replay-level").allocs, 0);
}

TEST(PurityWarmPath, SmootherRebindIsAllocationPure) {
  par::Runtime rt(3);
  auto a = distribute(rt, random_spd_ish(LocalIndex{150}, 6, 53));
  solver::SmootherPrecond m(a, amg::SmootherType::kSgs2, 2, 2);

  rt.parallel_for_ranks([&](RankId r) {
    auto& blk = a.block_mut(r);
    for (auto& v : blk.diag.vals_mut()) v *= 1.25;
    for (auto& v : blk.offd.vals_mut()) v *= 1.25;
  });
  m.refresh_values();  // prime
  purity::reset();
  FatalModeGuard guard;
  purity::set_fatal(true);
  m.refresh_values();
  EXPECT_EQ(purity::region("smoother-precond-rebind").allocs, 0);
  EXPECT_EQ(purity::region("smoother-rebind").allocs, 0);
}

TEST(PurityWarmPath, FusedMomentumKernelsAreAllocationPure) {
  par::Runtime rt(4);
  const auto a = distribute(rt, random_spd_ish(LocalIndex{160}, 5, 47));
  linalg::ParMultiVector b(rt, a.rows(), 3), x(rt, a.rows(), 3);
  for (std::size_t c = 0; c < 3; ++c) {
    linalg::ParVector bc(rt, a.rows());
    bc.scatter(random_vector(160, 11 + c));
    b.set_lane(c, bc);
  }
  solver::SmootherPrecond m(a, amg::SmootherType::kSgs2, 1, 1);
  solver::GmresOptions opts;
  opts.rel_tol = 1e-8;

  x.fill(0.0);
  ASSERT_TRUE(solver::gmres_solve_multi(a, b, x, m, opts).all_converged());
  purity::reset();
  FatalModeGuard guard;
  purity::set_fatal(true);
  x.fill(0.0);
  ASSERT_TRUE(solver::gmres_solve_multi(a, b, x, m, opts).all_converged());
  EXPECT_EQ(purity::region("multivector-scale-lanes").allocs, 0);
  EXPECT_EQ(purity::region("multivector-axpy-lanes").allocs, 0);
  EXPECT_EQ(purity::region("multivector-dots").allocs, 0);
}

TEST(PurityWarmPath, TracerFoldsAllocDeltasIntoPhases) {
  perf::Tracer tr(2);
  tr.push_phase("alloc-probe");
  observed_alloc(128);
  tr.pop_phase();
  const auto& s = tr.phase("alloc-probe");
  EXPECT_GE(s.allocs, 1);
  EXPECT_GE(s.alloc_bytes, 128 * sizeof(double));
}

#endif  // EXW_PURITY_CHECKS_ENABLED

}  // namespace
}  // namespace exw
