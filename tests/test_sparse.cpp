// Unit + property tests: CSR kernels, SpGEMM (hash vs sort), dense LU.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sparse/dense.hpp"
#include "sparse/spgemm.hpp"
#include "test_util.hpp"

namespace exw::sparse {
namespace {

using testutil::laplace3d;
using testutil::matrix_diff;
using testutil::max_diff;
using testutil::random_rect;
using testutil::random_spd_ish;
using testutil::random_vector;

TEST(Csr, FromTriplesSumsDuplicates) {
  const Csr a = Csr::from_triples(LocalIndex{2}, LocalIndex{2},
                                  {LocalIndex{0}, LocalIndex{0}, LocalIndex{1}, LocalIndex{0}},
                                  {LocalIndex{1}, LocalIndex{1}, LocalIndex{0}, LocalIndex{0}},
                                  {1.0, 2.0, 5.0, 4.0});
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{0}, LocalIndex{1}), 3.0);
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{0}, LocalIndex{0}), 4.0);
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{1}, LocalIndex{0}), 5.0);
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{1}, LocalIndex{1}), 0.0);
}

TEST(Csr, IdentitySpmv) {
  const Csr eye = Csr::identity(LocalIndex{5});
  const RealVector x = random_vector(5, 3);
  RealVector y(5, 0.0);
  eye.spmv(x, y);
  EXPECT_NEAR(max_diff(x, y), 0.0, 0.0);
}

TEST(Csr, SpmvAlphaBeta) {
  const Csr a = random_spd_ish(LocalIndex{40}, 5, 11);
  const RealVector x = random_vector(40, 4);
  RealVector y = random_vector(40, 5);
  RealVector y2 = y;
  a.spmv(x, y, 2.0, 3.0);
  // Reference.
  RealVector ax(40, 0.0);
  a.spmv(x, ax);
  for (std::size_t i = 0; i < y2.size(); ++i) {
    y2[i] = 3.0 * y2[i] + 2.0 * ax[i];
  }
  EXPECT_LT(max_diff(y, y2), 1e-12);
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const Csr a = random_rect(LocalIndex{30}, LocalIndex{17}, 4, 7);
  const Csr att = a.transpose().transpose();
  EXPECT_LT(matrix_diff(a, att), 1e-15);
}

TEST(Csr, TransposeMatchesSpmvTranspose) {
  const Csr a = random_rect(LocalIndex{25}, LocalIndex{33}, 5, 9);
  const Csr at = a.transpose();
  const RealVector x = random_vector(25, 10);
  RealVector y1(33, 0.0), y2(33, 0.0);
  a.spmv_transpose(x, y1);
  at.spmv(x, y2);
  EXPECT_LT(max_diff(y1, y2), 1e-12);
}

TEST(Csr, AddMatchesEntrywise) {
  const Csr a = random_rect(LocalIndex{20}, LocalIndex{20}, 4, 1);
  const Csr b = random_rect(LocalIndex{20}, LocalIndex{20}, 4, 2);
  const Csr c = add(a, b);
  for (LocalIndex i{0}; i < LocalIndex{20}; ++i) {
    for (LocalIndex j{0}; j < LocalIndex{20}; ++j) {
      EXPECT_NEAR(c.at(i, j), a.at(i, j) + b.at(i, j), 1e-14);
    }
  }
}

TEST(Csr, ExtractSubmatrix) {
  const Csr a = laplace3d(3);
  // Keep even rows, remap even columns.
  std::vector<LocalIndex> rows;
  std::vector<LocalIndex> col_map(static_cast<std::size_t>(a.ncols()),
                                  kInvalidLocal);
  LocalIndex nc{0};
  for (LocalIndex i{0}; i < a.nrows(); i += 2) {
    rows.push_back(i);
    col_map[static_cast<std::size_t>(i)] = nc++;
  }
  const Csr sub = extract(a, rows, col_map, nc);
  EXPECT_EQ(sub.nrows(), checked_narrow<LocalIndex>(rows.size()));
  for (std::size_t oi = 0; oi < rows.size(); ++oi) {
    for (LocalIndex oj{0}; oj < nc; ++oj) {
      EXPECT_NEAR(sub.at(static_cast<LocalIndex>(oi), oj),
                  a.at(rows[oi], LocalIndex{oj.value() * 2}), 1e-15);
    }
  }
}

TEST(Csr, DiagonalAndScaleRows) {
  Csr a = random_spd_ish(LocalIndex{15}, 4, 21);
  const auto d = a.diagonal();
  for (LocalIndex i{0}; i < LocalIndex{15}; ++i) {
    EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(i)], a.at(i, i));
  }
  RealVector s(15, 2.0);
  const Real before = a.at(LocalIndex{3}, LocalIndex{3});
  a.scale_rows(s);
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{3}, LocalIndex{3}), 2.0 * before);
}

// --- SpGEMM -------------------------------------------------------------

class SpGemmProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(SpGemmProperty, HashEqualsSortEqualsDense) {
  const auto [m, n, seed] = GetParam();
  const Csr a = random_rect(static_cast<LocalIndex>(m), static_cast<LocalIndex>(n), 5, seed);
  const Csr b = random_rect(static_cast<LocalIndex>(n), static_cast<LocalIndex>(m), 4, seed + 1);
  const Csr ch = spgemm_hash(a, b);
  const Csr cs = spgemm_sort(a, b);
  EXPECT_LT(matrix_diff(ch, cs), 1e-11);
  // Dense reference on a few random rows.
  Rng rng(seed + 2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto i = static_cast<LocalIndex>(rng.index(static_cast<std::uint64_t>(m)));
    const auto j = static_cast<LocalIndex>(rng.index(static_cast<std::uint64_t>(m)));
    Real ref = 0;
    for (LocalIndex k{0}; k < LocalIndex{n}; ++k) {
      ref += a.at(i, k) * b.at(k, j);
    }
    EXPECT_NEAR(ch.at(i, j), ref, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpGemmProperty,
    ::testing::Values(std::tuple{20, 30, 1ull}, std::tuple{64, 64, 2ull},
                      std::tuple{100, 40, 3ull}, std::tuple{7, 150, 4ull},
                      std::tuple{128, 128, 5ull}));

TEST(SpGemm, IdentityIsNeutral) {
  const Csr a = random_rect(LocalIndex{30}, LocalIndex{30}, 5, 42);
  const Csr eye = Csr::identity(LocalIndex{30});
  EXPECT_LT(matrix_diff(spgemm(a, eye), a), 1e-15);
  EXPECT_LT(matrix_diff(spgemm(eye, a), a), 1e-15);
}

TEST(SpGemm, RapEqualsTripleProduct) {
  const Csr a = laplace3d(4);
  const Csr p = random_rect(LocalIndex{64}, LocalIndex{20}, 3, 17);
  const Csr c1 = rap(a, p);
  const Csr c2 = triple_product(p.transpose(), a, p);
  EXPECT_LT(matrix_diff(c1, c2), 1e-11);
}

TEST(SpGemm, FlopCountMatchesExpansionSize) {
  const Csr a = random_rect(LocalIndex{25}, LocalIndex{25}, 3, 8);
  const Csr b = random_rect(LocalIndex{25}, LocalIndex{25}, 3, 9);
  double expansion = 0;
  for (LocalIndex i{0}; i < a.nrows(); ++i) {
    for (EntryOffset k = a.row_begin(i); k < a.row_end(i); ++k) {
      expansion += static_cast<double>(b.row_nnz(a.cols()[k]).value());
    }
  }
  EXPECT_DOUBLE_EQ(spgemm_flops(a, b), 2.0 * expansion);
}

// --- Dense LU -----------------------------------------------------------

TEST(DenseLu, SolvesLaplacian) {
  const Csr a = laplace3d(3, 0.2);
  const DenseLu lu(a);
  const RealVector b = random_vector(27, 5);
  const auto x = lu.solve(b);
  EXPECT_LT(residual_inf_norm(a, x, b), 1e-10);
}

TEST(DenseLu, PivotingHandlesZeroLeadingDiag) {
  // [[0 1],[1 0]] requires a pivot swap.
  const DenseLu lu(LocalIndex{2}, {0.0, 1.0, 1.0, 0.0});
  const auto x = lu.solve(RealVector{3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(DenseLu, ThrowsOnSingular) {
  const std::vector<Real> singular{1.0, 2.0, 2.0, 4.0};
  EXPECT_THROW(DenseLu lu(LocalIndex{2}, singular), Error);
}

TEST(Csr, EntryOffsetsSurvivePast32Bits) {
  // Regression for 32-bit nnz overflow: row offsets are 64-bit EntryOffset,
  // so a rank whose entry count passes 2^31 keeps exact row bounds. The
  // probe plants synthetic >32-bit offsets directly in row_ptr instead of
  // allocating 2^31 entries.
  Csr m(LocalIndex{2}, LocalIndex{4});
  auto& rp = m.row_ptr_mut();
  const std::int64_t base = (std::int64_t{1} << 35) + 7;
  rp[0] = EntryOffset{base};
  rp[1] = EntryOffset{base + 3};
  rp[2] = EntryOffset{base + 5};
  EXPECT_EQ(m.row_begin(LocalIndex{0}), EntryOffset{base});
  EXPECT_EQ(m.row_end(LocalIndex{1}), EntryOffset{base + 5});
  // Differences stay in 64-bit space; the per-row count narrows safely.
  EXPECT_EQ(m.row_nnz(LocalIndex{0}), LocalIndex{3});
  EXPECT_EQ(m.row_nnz(LocalIndex{1}), LocalIndex{2});
  EXPECT_EQ((m.row_end(LocalIndex{1}) - m.row_begin(LocalIndex{0})).value(),
            std::int64_t{5});
}

}  // namespace
}  // namespace exw::sparse
