// Unit tests: common types, strong index ids, counter RNG, error handling.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <set>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace exw {
namespace {

// ---------------------------------------------------------------------------
// Compile-time contract of the index-safety layer. Each static_assert is a
// negative-compile test: the expression it checks used to be an accepted
// (and bug-prone) integer conversion before the StrongId migration.
// ---------------------------------------------------------------------------

// Construction from raw integers is explicit, never implicit.
static_assert(std::is_constructible_v<GlobalIndex, std::int64_t>);
static_assert(std::is_constructible_v<LocalIndex, int>);
static_assert(!std::is_convertible_v<std::int64_t, GlobalIndex>);
static_assert(!std::is_convertible_v<int, LocalIndex>);
static_assert(!std::is_convertible_v<int, RankId>);

// No conversion between index spaces, explicit or implicit. The only
// gateway is checked_narrow<To>().
static_assert(!std::is_constructible_v<LocalIndex, GlobalIndex>);
static_assert(!std::is_constructible_v<GlobalIndex, LocalIndex>);
static_assert(!std::is_constructible_v<RankId, LocalIndex>);
static_assert(!std::is_constructible_v<EntryOffset, GlobalIndex>);
static_assert(!std::is_assignable_v<LocalIndex&, GlobalIndex>);
static_assert(!std::is_assignable_v<GlobalIndex&, std::int64_t>);

// Ids do not leak back to arithmetic types implicitly.
static_assert(!std::is_convertible_v<GlobalIndex, std::int64_t>);
static_assert(!std::is_convertible_v<LocalIndex, int>);
static_assert(!std::is_convertible_v<GlobalIndex, double>);

template <class A, class B>
concept EqComparable = requires(A a, B b) { a == b; };
template <class A, class B>
concept Ordered = requires(A a, B b) { a < b; };
template <class A, class B>
concept Addable = requires(A a, B b) { a + b; };
template <class A, class B>
concept Multipliable = requires(A a, B b) { a* b; };

// Comparisons are same-type only: no cross-space, no bare-integer.
static_assert(EqComparable<GlobalIndex, GlobalIndex>);
static_assert(Ordered<LocalIndex, LocalIndex>);
static_assert(!EqComparable<GlobalIndex, LocalIndex>);
static_assert(!EqComparable<LocalIndex, RankId>);
static_assert(!EqComparable<GlobalIndex, int>);
static_assert(!Ordered<GlobalIndex, std::int64_t>);
static_assert(!Ordered<EntryOffset, LocalIndex>);

// Arithmetic: same-space distances and raw integral counts only.
static_assert(Addable<GlobalIndex, GlobalIndex>);
static_assert(Addable<GlobalIndex, int>);
static_assert(Addable<int, GlobalIndex>);
static_assert(!Addable<GlobalIndex, LocalIndex>);
static_assert(!Addable<EntryOffset, GlobalIndex>);
// No multiplication in any index space (a product of indices is not an
// index; lattice flattening must drop to .value()).
static_assert(!Multipliable<GlobalIndex, int>);
static_assert(!Multipliable<LocalIndex, LocalIndex>);

// IndexedSpan subscripts accept exactly their own index space.
template <class S, class I>
concept Subscriptable = requires(S s, I i) { s[i]; };
static_assert(Subscriptable<IndexedSpan<LocalIndex, Real>, LocalIndex>);
static_assert(!Subscriptable<IndexedSpan<LocalIndex, Real>, int>);
static_assert(!Subscriptable<IndexedSpan<LocalIndex, Real>, std::size_t>);
static_assert(!Subscriptable<IndexedSpan<LocalIndex, Real>, GlobalIndex>);
static_assert(!Subscriptable<IndexedSpan<LocalIndex, Real>, EntryOffset>);
static_assert(Subscriptable<IndexedSpan<EntryOffset, const LocalIndex>, EntryOffset>);
static_assert(!Subscriptable<IndexedSpan<EntryOffset, const LocalIndex>, LocalIndex>);

// Representation widths are part of the contract (paper-scale meshes need
// 64-bit global ids and 64-bit entry offsets).
static_assert(std::is_same_v<GlobalIndex::rep_type, std::int64_t>);
static_assert(std::is_same_v<LocalIndex::rep_type, std::int32_t>);
static_assert(std::is_same_v<RankId::rep_type, std::int32_t>);
static_assert(std::is_same_v<EntryOffset::rep_type, std::int64_t>);

TEST(StrongId, ArithmeticAndComparisonBasics) {
  GlobalIndex g{10};
  EXPECT_EQ((g + 5).value(), 15);
  EXPECT_EQ((g - 3).value(), 7);
  EXPECT_EQ((g + GlobalIndex{2}).value(), 12);
  EXPECT_EQ((g - GlobalIndex{4}).value(), 6);
  ++g;
  EXPECT_EQ(g, GlobalIndex{11});
  g--;
  EXPECT_EQ(g, GlobalIndex{10});
  g += 5;
  g -= GlobalIndex{1};
  EXPECT_EQ(g, GlobalIndex{14});
  EXPECT_LT(GlobalIndex{3}, GlobalIndex{4});
  EXPECT_EQ(static_cast<std::size_t>(LocalIndex{7}), std::size_t{7});
}

TEST(StrongId, HashAndToString) {
  std::unordered_set<GlobalIndex> s;
  s.insert(GlobalIndex{1});
  s.insert(GlobalIndex{1});
  s.insert(GlobalIndex{2});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(to_string(LocalIndex{-1}), "-1");
}

TEST(StrongId, SentinelSemantics) {
  EXPECT_EQ(kInvalidGlobal, GlobalIndex{-1});
  EXPECT_EQ(kInvalidLocal, LocalIndex{-1});
  EXPECT_NE(kInvalidGlobal, GlobalIndex{0});
  EXPECT_NE(kInvalidLocal, LocalIndex{0});
  // Sentinels order before every valid index, so `< Id{0}` tests work.
  EXPECT_LT(kInvalidGlobal, GlobalIndex{0});
  EXPECT_LT(kInvalidLocal, LocalIndex{0});
}

TEST(CheckedNarrow, PreservesInRangeValues) {
  EXPECT_EQ(checked_narrow<LocalIndex>(GlobalIndex{123}), LocalIndex{123});
  EXPECT_EQ(checked_narrow<GlobalIndex>(LocalIndex{7}), GlobalIndex{7});
  EXPECT_EQ(checked_narrow<LocalIndex>(std::int64_t{42}), LocalIndex{42});
  EXPECT_EQ(checked_narrow<std::int32_t>(GlobalIndex{9}), 9);
  EXPECT_EQ(checked_narrow<LocalIndex>(std::size_t{31}), LocalIndex{31});
  // Largest value that fits a 32-bit local id round-trips exactly.
  const std::int64_t max32 = std::numeric_limits<std::int32_t>::max();
  EXPECT_EQ(checked_narrow<LocalIndex>(GlobalIndex{max32}).value(), max32);
}

#if EXW_INDEX_CHECKS_ENABLED
TEST(CheckedNarrow, ThrowsOnOverflow) {
  const GlobalIndex big{(std::int64_t{1} << 40) + 3};
  EXPECT_THROW(checked_narrow<LocalIndex>(big), Error);
  EXPECT_THROW(checked_narrow<std::int32_t>(big), Error);
  const std::int64_t just_over =
      std::int64_t{std::numeric_limits<std::int32_t>::max()} + 1;
  EXPECT_THROW(checked_narrow<LocalIndex>(GlobalIndex{just_over}), Error);
}

TEST(CheckedNarrow, RejectsSentinelsAndNegatives) {
  // An invalid id must never be narrowed into another space: -1 in the
  // source space is not -1 "not found" in the target space.
  EXPECT_THROW(checked_narrow<LocalIndex>(kInvalidGlobal), Error);
  EXPECT_THROW(checked_narrow<GlobalIndex>(kInvalidLocal), Error);
  EXPECT_THROW(checked_narrow<LocalIndex>(std::int64_t{-7}), Error);
  // Even a widening conversion rejects negatives: only valid indices pass.
  EXPECT_THROW(checked_narrow<EntryOffset>(LocalIndex{-2}), Error);
}
#else
TEST(CheckedNarrow, IsBareCastWhenChecksOff) {
  // EXW_INDEX_CHECKS=OFF: the gateway compiles to a bare cast and never
  // throws; value bits follow two's-complement truncation.
  EXPECT_NO_THROW(checked_narrow<LocalIndex>(kInvalidGlobal));
  EXPECT_EQ(checked_narrow<LocalIndex>(GlobalIndex{123}), LocalIndex{123});
}
#endif

TEST(IndexedSpan, SubscriptsAndRawExit) {
  std::vector<Real> v{1.0, 2.0, 3.0};
  IndexedSpan<LocalIndex, Real> s(v);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[LocalIndex{1}], 2.0);
  s[LocalIndex{2}] = 9.0;
  EXPECT_DOUBLE_EQ(v[2], 9.0);
  EXPECT_EQ(s.raw().data(), v.data());
  IndexedSpan<LocalIndex, const Real> cs(v);
  EXPECT_DOUBLE_EQ(cs.front(), 1.0);
  EXPECT_DOUBLE_EQ(cs.back(), 9.0);
}

TEST(StrongId, CooVectorsAreBitwiseStable) {
  // StrongId is a trivially-copyable wrapper over its rep: byte views used
  // by the transport must see exactly the raw integer bits.
  static_assert(std::is_trivially_copyable_v<GlobalIndex>);
  static_assert(sizeof(GlobalIndex) == sizeof(std::int64_t));
  const GlobalIndex g{(std::int64_t{1} << 40) + 17};
  std::int64_t raw = 0;
  std::memcpy(&raw, &g, sizeof(raw));
  EXPECT_EQ(raw, g.value());
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5);
  EXPECT_DOUBLE_EQ(s.y, 7);
  EXPECT_DOUBLE_EQ(s.z, 9);
  EXPECT_DOUBLE_EQ(a.dot(b), 32);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3);
  EXPECT_DOUBLE_EQ(c.y, 6);
  EXPECT_DOUBLE_EQ(c.z, -3);
  EXPECT_NEAR((Vec3{3, 4, 0}.norm()), 5.0, 1e-15);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1.3, -0.2, 2.1}, b{0.4, 1.9, -0.7};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, Uniform01Range) {
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = uniform01(42, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01ApproximatelyUniform) {
  // Mean of U(0,1) is 0.5; with 1e5 samples the error is ~1e-3.
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += uniform01(9, static_cast<std::uint64_t>(i));
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
}

TEST(Rng, CounterValuesDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(hash64(i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, SeedChangesSequence) {
  EXPECT_NE(uniform01(1, 0), uniform01(2, 0));
}

TEST(Error, RequireThrowsWithContext) {
  try {
    EXW_REQUIRE(1 == 2, "impossible arithmetic");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("impossible arithmetic"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(EXW_REQUIRE(2 + 2 == 4, "sanity"));
}

}  // namespace
}  // namespace exw
