// Unit tests: common types, counter RNG, error handling.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace exw {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5);
  EXPECT_DOUBLE_EQ(s.y, 7);
  EXPECT_DOUBLE_EQ(s.z, 9);
  EXPECT_DOUBLE_EQ(a.dot(b), 32);
  const Vec3 c = a.cross(b);
  EXPECT_DOUBLE_EQ(c.x, -3);
  EXPECT_DOUBLE_EQ(c.y, 6);
  EXPECT_DOUBLE_EQ(c.z, -3);
  EXPECT_NEAR((Vec3{3, 4, 0}.norm()), 5.0, 1e-15);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1.3, -0.2, 2.1}, b{0.4, 1.9, -0.7};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, Uniform01Range) {
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = uniform01(42, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01ApproximatelyUniform) {
  // Mean of U(0,1) is 0.5; with 1e5 samples the error is ~1e-3.
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += uniform01(9, static_cast<std::uint64_t>(i));
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
}

TEST(Rng, CounterValuesDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(hash64(i));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, SeedChangesSequence) {
  EXPECT_NE(uniform01(1, 0), uniform01(2, 0));
}

TEST(Error, RequireThrowsWithContext) {
  try {
    EXW_REQUIRE(1 == 2, "impossible arithmetic");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("impossible arithmetic"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(EXW_REQUIRE(2 + 2 == 4, "sanity"));
}

}  // namespace
}  // namespace exw
