// Tests for the fused multi-RHS momentum path: ParMultiVector ops,
// fused SpMV / smoother sweeps, the batched multi-RHS GMRES, and the
// cfd-level fused-vs-sequential A/B — all pinned to be bitwise-identical
// per component to the scalar code paths they fuse.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "amg/smoothers.hpp"
#include "cfd/simulation.hpp"
#include "solver/gmres.hpp"
#include "test_util.hpp"

namespace exw {
namespace {

using testutil::laplace3d;
using testutil::random_spd_ish;
using testutil::random_vector;

constexpr std::size_t kLanes = 3;

linalg::ParCsr make_par(par::Runtime& rt, const sparse::Csr& mat) {
  const auto part =
      par::RowPartition::even(GlobalIndex{mat.nrows().value()}, rt.nranks());
  return linalg::ParCsr::from_serial(rt, mat, part, part);
}

/// Three deterministic dense lanes for a given size.
std::vector<RealVector> lane_data(std::size_t n, std::uint64_t seed) {
  std::vector<RealVector> lanes;
  for (std::size_t c = 0; c < kLanes; ++c) {
    lanes.push_back(random_vector(n, seed + 10 * c));
  }
  return lanes;
}

void fill_lanes(linalg::ParMultiVector& x,
                const std::vector<RealVector>& data) {
  for (std::size_t c = 0; c < data.size(); ++c) {
    for (std::size_t i = 0; i < data[c].size(); ++i) {
      x.at(c, checked_narrow<GlobalIndex>(i)) = data[c][i];
    }
  }
}

/// Gather one lane to a dense vector (test convenience).
RealVector gather_lane(const linalg::ParMultiVector& x, std::size_t lane) {
  linalg::ParVector tmp(x.runtime(), x.rows());
  x.extract_lane(lane, tmp);
  return tmp.gather();
}

void expect_bitwise(const RealVector& a, const RealVector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// ---------------------------------------------------------------------------
// ParMultiVector BLAS-1 vs ParVector, bitwise.

class FusedRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(FusedRankSweep, MultiVectorOpsMatchParVectorBitwise) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const std::size_t n = 97;
  const auto part = par::RowPartition::even(GlobalIndex{97}, nranks);
  const auto xd = lane_data(n, 5);
  const auto yd = lane_data(n, 6);

  linalg::ParMultiVector x(rt, part, kLanes), y(rt, part, kLanes);
  fill_lanes(x, xd);
  fill_lanes(y, yd);
  std::vector<linalg::ParVector> xs, ys;
  for (std::size_t c = 0; c < kLanes; ++c) {
    xs.emplace_back(rt, part);
    ys.emplace_back(rt, part);
    xs[c].scatter(xd[c]);
    ys[c].scatter(yd[c]);
  }

  // dots / norms: the batched allreduce must reproduce each lane's
  // scalar reduction exactly.
  const auto dots = x.dots(y);
  const auto norms = x.norms();
  for (std::size_t c = 0; c < kLanes; ++c) {
    EXPECT_EQ(dots[c], xs[c].dot(ys[c]));
    EXPECT_EQ(norms[c], xs[c].norm2());
    EXPECT_EQ(x.lane_norm2(c), xs[c].norm2());
  }

  // axpy / scale with distinct per-lane coefficients.
  const std::vector<Real> alpha{0.5, -1.25, 2.0};
  x.axpy_lanes(alpha, y);
  x.scale_lanes(alpha);
  for (std::size_t c = 0; c < kLanes; ++c) {
    xs[c].axpy(alpha[c], ys[c]);
    xs[c].scale(alpha[c]);
    expect_bitwise(gather_lane(x, c), xs[c].gather());
  }
}

TEST_P(FusedRankSweep, MaskedLanesStayFrozen) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto part = par::RowPartition::even(GlobalIndex{64}, nranks);
  const auto xd = lane_data(64, 7);
  linalg::ParMultiVector x(rt, part, kLanes), y(rt, part, kLanes);
  fill_lanes(x, xd);
  y.fill(3.0);
  const std::vector<Real> alpha{2.0, 0.0, -1.0};
  const std::vector<std::uint8_t> mask{0, 1, 0};  // only lane 1 active
  x.axpy_lanes(alpha, y, mask);
  x.scale_lanes(alpha, mask);
  // Masked-out lanes are untouched (not even multiplied by alpha).
  expect_bitwise(gather_lane(x, 0), xd[0]);
  expect_bitwise(gather_lane(x, 2), xd[2]);
  // The active lane saw alpha = 0: axpy adds nothing, scale zeroes it.
  for (Real v : gather_lane(x, 1)) EXPECT_EQ(v, 0.0);
}

TEST_P(FusedRankSweep, SpmvMatchesPerComponentBitwise) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto mat = random_spd_ish(LocalIndex{210}, 7, 31);
  const auto a = make_par(rt, mat);
  const auto xd = lane_data(210, 11);

  linalg::ParMultiVector x(rt, a.cols(), kLanes), y(rt, a.rows(), kLanes);
  fill_lanes(x, xd);
  a.matvec_multi(x, y, 1.5, 0.0);

  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector xc(rt, a.cols()), yc(rt, a.rows());
    xc.scatter(xd[c]);
    a.matvec(xc, yc, 1.5, 0.0);
    expect_bitwise(gather_lane(y, c), yc.gather());
  }

  // And the beta != 0 / residual forms.
  linalg::ParMultiVector b(rt, a.rows(), kLanes), r(rt, a.rows(), kLanes);
  const auto bd = lane_data(210, 12);
  fill_lanes(b, bd);
  a.residual_multi(b, x, r);
  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector xc(rt, a.cols()), bc(rt, a.rows()), rc(rt, a.rows());
    xc.scatter(xd[c]);
    bc.scatter(bd[c]);
    a.residual(bc, xc, rc);
    expect_bitwise(gather_lane(r, c), rc.gather());
  }
}

TEST_P(FusedRankSweep, SmootherMatchesPerComponentBitwise) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto mat = random_spd_ish(LocalIndex{180}, 6, 37);
  const auto a = make_par(rt, mat);
  const auto bd = lane_data(180, 13);

  // Native fused sweeps (Jacobi, L1-Jacobi, SGS2) and a fallback type
  // (two-stage GS routes lanes through scratch ParVectors).
  for (const auto type :
       {amg::SmootherType::kJacobi, amg::SmootherType::kL1Jacobi,
        amg::SmootherType::kSgs2, amg::SmootherType::kTwoStageGs}) {
    const amg::Smoother sm(a, type, /*inner_sweeps=*/2, /*jacobi_weight=*/0.8);
    linalg::ParMultiVector b(rt, a.rows(), kLanes), z(rt, a.rows(), kLanes);
    fill_lanes(b, bd);
    sm.apply_zero_multi(b, z, /*sweeps=*/2);
    for (std::size_t c = 0; c < kLanes; ++c) {
      linalg::ParVector bc(rt, a.rows()), zc(rt, a.rows());
      bc.scatter(bd[c]);
      sm.apply_zero(bc, zc, /*sweeps=*/2);
      expect_bitwise(gather_lane(z, c), zc.gather());
    }
  }
}

TEST_P(FusedRankSweep, GmresMultiBitwiseMatchesSequential) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  // A stiff enough system that lanes converge at different iteration
  // counts (distinct RHS magnitudes), exercising the lane masks.
  const auto mat = laplace3d(6, 0.05);
  const auto a = make_par(rt, mat);
  const auto n = static_cast<std::size_t>(mat.nrows());
  auto bd = lane_data(n, 17);
  for (std::size_t i = 0; i < n; ++i) bd[2][i] *= 1e3;
  // A zero lane converges at entry: exercises the immediate-done path
  // and the lane masks the whole run through.
  std::fill(bd[1].begin(), bd[1].end(), 0.0);

  solver::GmresOptions opts;
  opts.rel_tol = 1e-7;
  opts.restart = 25;  // force at least one restart
  solver::SmootherPrecond m(a, amg::SmootherType::kSgs2, 2, 2);

  linalg::ParMultiVector b(rt, a.rows(), kLanes), x(rt, a.rows(), kLanes);
  fill_lanes(b, bd);
  x.fill(0.0);
  const auto multi = solver::gmres_solve_multi(a, b, x, m, opts);
  EXPECT_TRUE(multi.all_converged());

  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector bc(rt, a.rows()), xc(rt, a.rows());
    bc.scatter(bd[c]);
    xc.fill(0.0);
    const auto st = solver::gmres_solve(a, bc, xc, m, opts);
    EXPECT_TRUE(st.converged);
    EXPECT_EQ(st.iterations, multi.lane[c].iterations) << "lane " << c;
    EXPECT_EQ(st.final_residual, multi.lane[c].final_residual) << "lane " << c;
    expect_bitwise(gather_lane(x, c), xc.gather());
  }
}

TEST_P(FusedRankSweep, GmresMultiMgsAlsoMatches) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto mat = random_spd_ish(LocalIndex{160}, 6, 41);
  const auto a = make_par(rt, mat);
  const auto bd = lane_data(160, 19);

  solver::GmresOptions opts;
  opts.ortho = solver::OrthoMethod::kMgs;
  opts.rel_tol = 1e-8;
  solver::IdentityPrecond m;

  linalg::ParMultiVector b(rt, a.rows(), kLanes), x(rt, a.rows(), kLanes);
  fill_lanes(b, bd);
  x.fill(0.0);
  const auto multi = solver::gmres_solve_multi(a, b, x, m, opts);
  EXPECT_TRUE(multi.all_converged());
  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector bc(rt, a.rows()), xc(rt, a.rows());
    bc.scatter(bd[c]);
    xc.fill(0.0);
    const auto st = solver::gmres_solve(a, bc, xc, m, opts);
    EXPECT_EQ(st.iterations, multi.lane[c].iterations);
    expect_bitwise(gather_lane(x, c), xc.gather());
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, FusedRankSweep, ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Fewer collectives: the point of batching the reduction payloads.

TEST(FusedGmres, BatchesCollectivesAcrossLanes) {
  const auto mat = laplace3d(7, 0.1);
  par::Runtime rt_seq(4), rt_fused(4);
  const auto a_seq = make_par(rt_seq, mat);
  const auto a_fused = make_par(rt_fused, mat);
  const auto n = static_cast<std::size_t>(mat.nrows());
  const auto bd = lane_data(n, 23);
  solver::GmresOptions opts;
  opts.rel_tol = 1e-7;

  solver::IdentityPrecond m;
  rt_seq.tracer().reset();
  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector bc(rt_seq, a_seq.rows()), xc(rt_seq, a_seq.rows());
    bc.scatter(bd[c]);
    xc.fill(0.0);
    solver::gmres_solve(a_seq, bc, xc, m, opts);
  }
  const auto seq_coll = rt_seq.tracer().phase("").collectives;

  linalg::ParMultiVector b(rt_fused, a_fused.rows(), kLanes);
  linalg::ParMultiVector x(rt_fused, a_fused.rows(), kLanes);
  fill_lanes(b, bd);
  x.fill(0.0);
  rt_fused.tracer().reset();
  solver::gmres_solve_multi(a_fused, b, x, m, opts);
  const auto fused_coll = rt_fused.tracer().phase("").collectives;

  // Identical iteration structure, one batched payload instead of three.
  EXPECT_LT(2.0 * static_cast<double>(fused_coll),
            static_cast<double>(seq_coll));
}

// ---------------------------------------------------------------------------
// Index-traffic accounting: fused SpMV reads structure once per 3 lanes.

TEST(FusedSpmv, ChargesIndexBytesOncePerLaneSet) {
  const auto mat = random_spd_ish(LocalIndex{300}, 8, 43);
  par::Runtime rt(2);
  const auto a = make_par(rt, mat);
  const auto xd = lane_data(300, 29);

  rt.tracer().reset();
  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector xc(rt, a.cols()), yc(rt, a.rows());
    xc.scatter(xd[c]);
    a.matvec(xc, yc);
  }
  const double seq_index = rt.tracer().phase("").total_index_bytes();

  rt.tracer().reset();
  linalg::ParMultiVector x(rt, a.cols(), kLanes), y(rt, a.rows(), kLanes);
  fill_lanes(x, xd);
  a.matvec_multi(x, y);
  const double fused_index = rt.tracer().phase("").total_index_bytes();

  EXPECT_GT(fused_index, 0.0);
  // 3 structure reads collapse to 1 (halo pack kernels carry no index
  // traffic, so the ratio is exact).
  EXPECT_NEAR(seq_index / fused_index, 3.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Shape / lane mismatches throw.

TEST(FusedShapes, MismatchesThrow) {
  par::Runtime rt(2);
  const auto part = par::RowPartition::even(GlobalIndex{40}, 2);
  const auto part2 = par::RowPartition::even(GlobalIndex{44}, 2);
  linalg::ParMultiVector x(rt, part, 3), y2(rt, part, 2), z(rt, part2, 3);
  linalg::ParVector v2(rt, part2);

  EXPECT_THROW(x.copy_from(y2), Error);             // lane count
  EXPECT_THROW(x.copy_from(z), Error);              // row partition
  EXPECT_THROW(x.dots(y2), Error);                  // lane count
  const std::vector<Real> a2{1.0, 2.0};
  EXPECT_THROW(x.scale_lanes(a2), Error);           // coefficient count
  EXPECT_THROW(x.set_lane(3, v2), Error);           // lane out of range
  EXPECT_THROW(x.set_lane(0, v2), Error);           // size mismatch

  const auto mat = random_spd_ish(LocalIndex{40}, 4, 47);
  const auto a = make_par(rt, mat);
  linalg::ParMultiVector b(rt, a.rows(), 3);
  solver::IdentityPrecond m;
  EXPECT_THROW(solver::gmres_solve_multi(a, b, y2, m, solver::GmresOptions{}),
               Error);  // b/x lane mismatch
  EXPECT_THROW(solver::gmres_solve_multi(a, z, z, m, solver::GmresOptions{}),
               Error);  // wrong global size
}

// ---------------------------------------------------------------------------
// Smoother value rebind == fresh build.

TEST(SmootherRebind, MatchesFreshBuildBitwise) {
  par::Runtime rt(3);
  const auto mat = random_spd_ish(LocalIndex{150}, 6, 53);
  auto a = make_par(rt, mat);

  solver::SmootherPrecond cached(a, amg::SmootherType::kSgs2, 2, 2);

  // Perturb the values in place (same structure), as a Picard refill does.
  rt.parallel_for_ranks([&](RankId r) {
    auto& blk = a.block_mut(r);
    for (auto& v : blk.diag.vals_mut()) v *= 1.25;
    for (auto& v : blk.offd.vals_mut()) v *= 1.25;
  });

  cached.refresh_values();
  solver::SmootherPrecond fresh(a, amg::SmootherType::kSgs2, 2, 2);

  linalg::ParVector b(rt, a.rows()), z1(rt, a.rows()), z2(rt, a.rows());
  b.scatter(random_vector(150, 59));
  cached.apply(b, z1);
  fresh.apply(b, z2);
  const auto g1 = z1.gather();
  const auto g2 = z2.gather();
  for (std::size_t i = 0; i < g1.size(); ++i) {
    ASSERT_EQ(g1[i], g2[i]);
  }
}

// ---------------------------------------------------------------------------
// cfd level: fused on/off is bitwise-invisible in the solution.

TEST(CfdFused, MomentumFusedMatchesSequentialBitwise) {
  auto run = [](bool fused) {
    auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
    par::Runtime rt(4);
    cfd::SimConfig cfg;
    cfg.picard_iters = 2;
    cfg.use_fused_momentum = fused;
    cfd::Simulation sim(sys, cfg, rt);
    sim.step();
    sim.step();
    return std::tuple{sim.velocity_rms(), sim.divergence_rms(),
                      sim.scalar_mean(), sim.momentum_stats()};
  };
  const auto [rms_s, div_s, scl_s, mom_s] = run(false);
  const auto [rms_f, div_f, scl_f, mom_f] = run(true);
  EXPECT_EQ(rms_s, rms_f);
  EXPECT_EQ(div_s, div_f);
  EXPECT_EQ(scl_s, scl_f);
  // Identical per-component iteration counts and residuals.
  EXPECT_EQ(mom_s.gmres_iterations, mom_f.gmres_iterations);
  EXPECT_EQ(mom_s.final_residual, mom_f.final_residual);
  EXPECT_EQ(mom_s.solves, mom_f.solves);
}

TEST(CfdFused, SmootherRebindsInsteadOfRebuilding) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt(4);
  cfd::SimConfig cfg;
  cfg.picard_iters = 3;
  cfd::Simulation sim(sys, cfg, rt);
  sim.step();
  // First Picard iteration builds each block's split once (cold assembly
  // epoch); every later momentum/scalar solve rebinds values in place.
  const auto& mom = sim.momentum_stats();
  const auto& scl = sim.scalar_stats();
  EXPECT_GT(mom.smoother_rebuilds, 0);
  EXPECT_GT(mom.smoother_rebinds + scl.smoother_rebinds, 0);
  EXPECT_EQ(mom.smoother_rebuilds + scl.smoother_rebuilds +
                mom.smoother_rebinds + scl.smoother_rebinds,
            mom.solves / 3 + scl.solves);
  sim.step();
  // Steady state: the graph is stable, so step 2 is all rebinds.
  EXPECT_EQ(sim.momentum_stats().smoother_rebuilds, 0);
  EXPECT_EQ(sim.scalar_stats().smoother_rebuilds, 0);
}

}  // namespace
}  // namespace exw
