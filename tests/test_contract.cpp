// Tests for the machine-checked threading contract (par/contract.hpp):
// violations of the rank-parallel rules must throw exw::Error with a
// diagnostic naming the offending ranks, and the checks must compile to
// nothing when EXW_CONTRACT_CHECKS=OFF.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "assembly/ij.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "par/contract.hpp"
#include "par/tags.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"
#include "par/thread_pool.hpp"
#include "sparse/csr.hpp"

namespace exw {
namespace {

using par::contract::ScopedRankContext;

/// Run `body` and return the Error message it threw (fails if it didn't).
template <typename Fn>
std::string thrown_message(Fn&& body) {
  try {
    body();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a contract violation, none was thrown";
  return {};
}

// --- always-on transport rank validation (independent of the contract) ---

TEST(TransportRanks, OutOfRangeRankThrowsInsteadOfAliasing) {
  // Regression: shard() used to wrap out-of-range ids via modulo, so an
  // invalid dst silently landed in another rank's mailbox.
  par::Runtime rt(4);
  EXPECT_THROW(rt.transport().send<int>(RankId{0}, RankId{4}, par::tags::kTestPing, {1}), Error);
  EXPECT_THROW(rt.transport().send<int>(RankId{-1}, RankId{2}, par::tags::kTestPing, {1}), Error);
  EXPECT_THROW(rt.transport().send<int>(RankId{0}, RankId{7}, par::tags::kTestPing, {1}), Error);
  EXPECT_THROW(rt.transport().recv<int>(RankId{4}, RankId{0}, par::tags::kTestPing), Error);
  EXPECT_THROW(rt.transport().recv<int>(RankId{0}, RankId{-2}, par::tags::kTestPing), Error);
  EXPECT_THROW(rt.transport().has_message(RankId{5}, RankId{0}, par::tags::kTestPing), Error);
  EXPECT_THROW(rt.transport().has_message(RankId{0}, RankId{4}, par::tags::kTestPing), Error);
  // Nothing was delivered anywhere.
  EXPECT_TRUE(rt.transport().drained());
}

#if EXW_CONTRACT_CHECKS_ENABLED

// --- contract violations must throw with actionable diagnostics ----------

TEST(Contract, WrongRankSendThrowsNamingBothRanks) {
  par::Runtime rt(4);
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      if (r == RankId{1}) {
        // Rank body 1 impersonates rank 0 as the sender.
        rt.transport().send<int>(RankId{0}, RankId{2}, par::tags::kTestPing, {42});
      }
    });
  });
  EXPECT_NE(msg.find("rank body 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("src 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("Transport::send"), std::string::npos) << msg;
}

TEST(Contract, WrongRankRecvThrowsNamingBothRanks) {
  par::Runtime rt(4);
  rt.transport().send<int>(RankId{0}, RankId{2}, par::tags::kTestPing, {42});
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      if (r == RankId{3}) {
        // Rank body 3 drains rank 2's mailbox.
        rt.transport().recv<int>(RankId{2}, RankId{0}, par::tags::kTestPing);
      }
    });
  });
  EXPECT_NE(msg.find("rank body 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dst 2"), std::string::npos) << msg;
  // Drain the message on the orchestrator so nothing leaks into the next test.
  (void)rt.transport().recv<int>(RankId{2}, RankId{0}, par::tags::kTestPing);
}

TEST(Contract, CrossRankParVectorWriteThrows) {
  par::Runtime rt(4);
  linalg::ParVector v(rt, par::RowPartition::even(GlobalIndex{64}, rt.nranks()));
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      // Every body writes its right neighbor's slice — cross-rank.
      v.local(RankId{(r.value() + 1) % rt.nranks()})[0] = 1.0;
    });
  });
  EXPECT_NE(msg.find("ParVector::local"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank body"), std::string::npos) << msg;
  EXPECT_NE(msg.find("parvector.hpp"), std::string::npos) << msg;
}

TEST(Contract, CrossRankParCsrBlockMutThrows) {
  par::Runtime rt(2);
  const auto rows = par::RowPartition::even(GlobalIndex{8}, 2);
  auto a = linalg::ParCsr::from_serial(rt, sparse::Csr::identity(LocalIndex{8}), rows, rows);
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      a.block_mut(RankId{1 - r.value()});
    });
  });
  EXPECT_NE(msg.find("ParCsr::block_mut"), std::string::npos) << msg;
}

TEST(Contract, PhasePushInsideRegionThrows) {
  par::Runtime rt(4);
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      if (r == RankId{2}) {
        rt.tracer().push_phase("illegal");
      }
    });
  });
  EXPECT_NE(msg.find("push_phase"), std::string::npos) << msg;
  EXPECT_NE(msg.find("rank body 2"), std::string::npos) << msg;
  // The stack must be unchanged: the root phase is still open.
  EXPECT_EQ(rt.tracer().current_phase(), "");
}

TEST(Contract, PhasePopInsideRegionThrows) {
  par::Runtime rt(4);
  rt.tracer().push_phase("outer");
  EXPECT_THROW(rt.parallel_for_ranks([&](RankId) { rt.tracer().pop_phase(); }),
               Error);
  EXPECT_EQ(rt.tracer().current_phase(), "outer");
  rt.tracer().pop_phase();
}

TEST(Contract, WrongRankKernelChargeThrows) {
  par::Runtime rt(4);
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      rt.tracer().kernel(RankId{(r.value() + 1) % rt.nranks()}, 1.0, 1.0);
    });
  });
  EXPECT_NE(msg.find("Tracer::kernel"), std::string::npos) << msg;
}

TEST(Contract, WrongRankMessageChargeThrows) {
  par::Runtime rt(4);
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      if (r == RankId{0}) {
        rt.tracer().message(RankId{3}, RankId{0}, 8.0);
      }
    });
  });
  EXPECT_NE(msg.find("rank body 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("src 3"), std::string::npos) << msg;
}

TEST(Contract, CrossRankIJAssemblyWriteThrows) {
  par::Runtime rt(2);
  const auto rows = par::RowPartition::even(GlobalIndex{8}, 2);
  assembly::IJMatrix ij(rt, rows, rows);
  const std::string msg = thrown_message([&] {
    rt.parallel_for_ranks([&](RankId r) {
      // Body r stages entries into the *other* rank's buffers.
      const RankId other{1 - r.value()};
      const std::vector<GlobalIndex> row{rows.first_row(other)};
      const std::vector<Real> val{1.0};
      ij.SetValues2(other, row, row, val);
    });
  });
  EXPECT_NE(msg.find("IJMatrix::SetValues2"), std::string::npos) << msg;
}

TEST(Contract, TwoThreadsOnOneChannelThrows) {
  // The FIFO-determinism invariant, checked below the rank-context layer:
  // two distinct threads sending on one (src, dst, tag) channel within a
  // region is rejected even if both carry the right rank context.
  par::contract::begin_region();
  // Keep the first sender alive while the second sends: pool threads all
  // live for the whole region, and a joined thread's id may be reused.
  std::atomic<bool> first_sent{false};
  std::atomic<bool> release_first{false};
  std::thread first([&] {
    ScopedRankContext ctx(RankId{0});
    par::contract::check_send(RankId{0}, RankId{1}, 7, "test");
    first_sent.store(true);
    while (!release_first.load()) {
      std::this_thread::yield();
    }
  });
  while (!first_sent.load()) {
    std::this_thread::yield();
  }
  std::string msg;
  std::thread second([&msg] {
    ScopedRankContext ctx(RankId{0});
    try {
      par::contract::check_send(RankId{0}, RankId{1}, 7, "test");
    } catch (const Error& e) {
      msg = e.what();
    }
  });
  second.join();
  release_first.store(true);
  first.join();
  par::contract::end_region();
  EXPECT_NE(msg.find("two distinct threads"), std::string::npos) << msg;
  EXPECT_NE(msg.find("FIFO"), std::string::npos) << msg;
}

TEST(Contract, SameThreadMaySendTwiceOnOneChannel) {
  // FIFO per channel with a single sender is exactly what the transport
  // promises — repeated sends from one body must stay legal.
  par::Runtime rt(2);
  rt.parallel_for_ranks([&](RankId r) {
    if (r == RankId{0}) {
      rt.transport().send<int>(RankId{0}, RankId{1}, par::tags::kTestFifo, {1});
      rt.transport().send<int>(RankId{0}, RankId{1}, par::tags::kTestFifo, {2});
    }
  });
  EXPECT_EQ(rt.transport().recv<int>(RankId{1}, RankId{0}, par::tags::kTestFifo)[0], 1);
  EXPECT_EQ(rt.transport().recv<int>(RankId{1}, RankId{0}, par::tags::kTestFifo)[0], 2);
}

TEST(Contract, OrchestratorIsUnrestrictedBetweenRegions) {
  // Outside parallel regions there is no rank context: the orchestrator
  // may touch any rank's state, send as anyone, and manage phases.
  par::Runtime rt(3);
  linalg::ParVector v(rt, par::RowPartition::even(GlobalIndex{30}, 3));
  v.local(RankId{2})[0] = 4.0;
  rt.transport().send<int>(RankId{1}, RankId{2}, par::tags::kTestRelay, {9});
  EXPECT_EQ(rt.transport().recv<int>(RankId{2}, RankId{1}, par::tags::kTestRelay)[0], 9);
  rt.tracer().push_phase("ok");
  rt.tracer().kernel(RankId{1}, 1.0, 1.0);
  rt.tracer().pop_phase();
  EXPECT_EQ(par::contract::current_rank(), par::contract::kNoRank);
}

TEST(Contract, ReportCountsCheckedRegionsAndCalls) {
  par::contract::reset();
  par::Runtime rt(4);
  linalg::ParVector x(rt, par::RowPartition::even(GlobalIndex{64}, 4));
  linalg::ParVector y(rt, par::RowPartition::even(GlobalIndex{64}, 4));
  x.fill(1.0);
  y.fill(2.0);
  (void)x.dot(y);
  rt.parallel_for_ranks([&](RankId r) { x.local(r)[0] += 1.0; });
  rt.parallel_for_ranks([&](RankId r) {
    rt.transport().send<int>(r, RankId{(r.value() + 1) % 4}, par::tags::kTestRing, {1});
  });
  rt.parallel_for_ranks(
      [&](RankId r) { (void)rt.transport().recv<int>(r, RankId{(r.value() + 3) % 4}, par::tags::kTestRing); });
  const auto rep = par::contract::report();
  EXPECT_GE(rep.regions, 6);         // fill x2, dot, write, send, recv
  EXPECT_GE(rep.sends, 4);
  EXPECT_GE(rep.recvs, 4);
  EXPECT_GE(rep.rank_writes, 4);     // the local(r) region, one per rank
  EXPECT_GE(rep.kernel_charges, 12);
  EXPECT_GE(rep.message_charges, 4);
  EXPECT_EQ(rep.violations, 0);
  EXPECT_FALSE(par::contract::summary().empty());
  EXPECT_TRUE(rt.transport().drained());
}

TEST(Contract, ViolationsAreCountedInReport) {
  par::contract::reset();
  par::Runtime rt(2);
  linalg::ParVector v(rt, par::RowPartition::even(GlobalIndex{8}, 2));
  EXPECT_THROW(
      rt.parallel_for_ranks([&](RankId r) { v.local(RankId{1 - r.value()})[0] = 1.0; }),
      Error);
  EXPECT_GE(par::contract::report().violations, 1);
}

TEST(Contract, NestedParallelForKeepsOuterRankContext) {
  // Nested regions run inline as part of the outer body, so contract
  // checks inside them still attribute work to the outer rank.
  par::Runtime rt(4);
  rt.parallel_for_ranks([&](RankId r) {
    par::parallel_for(3, [&](int) {
      EXPECT_EQ(par::contract::current_rank(), r);
      rt.transport().send<int>(r, r, par::tags::kTestSelf, {1});
      (void)rt.transport().recv<int>(r, r, par::tags::kTestSelf);
    });
  });
  EXPECT_TRUE(rt.transport().drained());
}

#else  // !EXW_CONTRACT_CHECKS_ENABLED

// --- with checks off, the macros must compile to nothing -----------------

TEST(Contract, ChecksCompileToNothingWhenOff) {
  EXPECT_FALSE(par::contract::enabled());
  // EXW_CONTRACT_CHECK must not evaluate its argument at all.
  int evaluated = 0;
  EXW_CONTRACT_CHECK(evaluated = 1);
  EXW_CONTRACT_CHECK_WRITE(evaluated = 1, "never evaluated");
  EXPECT_EQ(evaluated, 0);
}

TEST(Contract, ViolationsPassSilentlyWhenOff) {
  // The same cross-rank write that throws in checked builds is simply
  // not observed (the races it would catch are the user's problem —
  // this configuration exists for release-mode performance).
  par::Runtime rt(2);
  linalg::ParVector v(rt, par::RowPartition::even(GlobalIndex{8}, 2));
  // The same cross-rank write that throws in checked builds. The two
  // bodies touch disjoint slots, so it is well-defined — just contract-
  // breaking — and must pass silently here.
  EXPECT_NO_THROW(rt.parallel_for_ranks(
      [&](RankId r) { v.local(RankId{1 - r.value()})[0] = 1.0; }));
  EXPECT_EQ(par::contract::report().regions, 0);
}

#endif  // EXW_CONTRACT_CHECKS_ENABLED

}  // namespace
}  // namespace exw
