// Tests for the three-stage assembly (paper §3): graph computation, local
// fill (ordered vs atomic), global Algorithms 1-2, IJ interface.
#include <gtest/gtest.h>

#include <cstring>

#include <span>

#include "assembly/global.hpp"
#include "assembly/graph.hpp"
#include "assembly/ij.hpp"
#include "assembly/plan.hpp"
#include "mesh/meshdb.hpp"
#include "par/tags.hpp"
#include "test_util.hpp"

namespace exw::assembly {
namespace {

using testutil::matrix_diff;
using testutil::max_diff;

/// Small box mesh fixture with a Dirichlet shell.
struct BoxFixture {
  mesh::MeshDB db;
  std::vector<std::uint8_t> dirichlet;

  explicit BoxFixture(GlobalIndex n) {
    mesh::StructuredBlockBuilder block(n, n, n);
    block.emit(db, [&](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
      return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                  static_cast<Real>(k.value())};
    });
    db.coords = db.ref_coords;
    db.compute_dual_quantities();
    dirichlet.assign(static_cast<std::size_t>(db.num_nodes()), 0);
    for (GlobalIndex k{0}; k <= n; ++k) {
      for (GlobalIndex j{0}; j <= n; ++j) {
        for (GlobalIndex i{0}; i <= n; ++i) {
          if (i == GlobalIndex{0} || i == n || j == GlobalIndex{0} || j == n ||
              k == GlobalIndex{0} || k == n) {
            dirichlet[static_cast<std::size_t>(block.node_id(i, j, k))] = 1;
          }
        }
      }
    }
  }
};

/// Assemble the Laplacian of the fixture serially as a reference.
sparse::Csr serial_reference(const BoxFixture& fx,
                             const MeshLayout& layout) {
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  const auto& db = fx.db;
  for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
    const auto row = checked_narrow<LocalIndex>(layout.row_of(node));
    ti.push_back(row);
    tj.push_back(row);
    tv.push_back(fx.dirichlet[static_cast<std::size_t>(node)] ? 1.0 : 0.0);
  }
  for (const auto& e : db.edges) {
    const auto ra = checked_narrow<LocalIndex>(layout.row_of(e.a));
    const auto rb = checked_narrow<LocalIndex>(layout.row_of(e.b));
    if (!fx.dirichlet[static_cast<std::size_t>(e.a)]) {
      ti.push_back(ra);
      tj.push_back(ra);
      tv.push_back(e.coeff);
      ti.push_back(ra);
      tj.push_back(rb);
      tv.push_back(-e.coeff);
    }
    if (!fx.dirichlet[static_cast<std::size_t>(e.b)]) {
      ti.push_back(rb);
      tj.push_back(rb);
      tv.push_back(e.coeff);
      ti.push_back(rb);
      tj.push_back(ra);
      tv.push_back(-e.coeff);
    }
  }
  const auto n = checked_narrow<LocalIndex>(db.num_nodes());
  return sparse::Csr::from_triples(n, n, std::move(ti), std::move(tj),
                                   std::move(tv));
}

void fill_laplacian(EquationGraph& graph, const BoxFixture& fx, bool atomic) {
  graph.zero_values();
  for (std::size_t e = 0; e < fx.db.edges.size(); ++e) {
    const Real g = fx.db.edges[e].coeff;
    graph.add_edge(e, {g, -g, -g, g}, {0.1, -0.2}, atomic);
  }
  for (GlobalIndex node{0}; node < fx.db.num_nodes(); ++node) {
    graph.add_node(node,
                   fx.dirichlet[static_cast<std::size_t>(node)] ? 1.0 : 0.0,
                   0.5, atomic);
  }
}

class AssemblyRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(AssemblyRankSweep, GlobalAssemblyMatchesSerialReference) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{6});
  const MeshLayout layout =
      make_layout(fx.db, nranks, PartitionMethod::kGraph);
  EquationGraph graph(fx.db, layout, fx.dirichlet);
  fill_laplacian(graph, fx, false);

  std::vector<sparse::Coo> owned, shared;
  for (RankId r{0}; r.value() < nranks; ++r) {
    owned.push_back(graph.rank(r).owned);
    shared.push_back(graph.rank(r).shared);
  }
  const auto& rows = layout.numbering.rows;
  for (auto algo :
       {GlobalAssemblyAlgo::kSortReduce, GlobalAssemblyAlgo::kSparseAdd,
        GlobalAssemblyAlgo::kGeneral}) {
    const auto a = assemble_matrix(rt, rows, rows, owned, shared, algo);
    EXPECT_LT(matrix_diff(a.to_serial(), serial_reference(fx, layout)), 1e-12)
        << "algo " << static_cast<int>(algo);
  }
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(AssemblyRankSweep, VectorAssemblyMatchesSerialReference) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{5});
  const MeshLayout layout = make_layout(fx.db, nranks, PartitionMethod::kRcb);
  EquationGraph graph(fx.db, layout, fx.dirichlet);
  fill_laplacian(graph, fx, false);

  std::vector<RealVector> rhs_owned;
  std::vector<sparse::CooVector> rhs_shared;
  for (RankId r{0}; r.value() < nranks; ++r) {
    rhs_owned.push_back(graph.rank(r).rhs_owned);
    rhs_shared.push_back(graph.rank(r).rhs_shared);
  }
  const auto& rows = layout.numbering.rows;
  const auto rhs = assemble_vector(rt, rows, rhs_owned, rhs_shared);

  // Serial reference RHS.
  RealVector ref(static_cast<std::size_t>(fx.db.num_nodes()), 0.0);
  for (std::size_t e = 0; e < fx.db.edges.size(); ++e) {
    const auto& edge = fx.db.edges[e];
    if (!fx.dirichlet[static_cast<std::size_t>(edge.a)]) {
      ref[static_cast<std::size_t>(layout.row_of(edge.a))] += 0.1;
    }
    if (!fx.dirichlet[static_cast<std::size_t>(edge.b)]) {
      ref[static_cast<std::size_t>(layout.row_of(edge.b))] += -0.2;
    }
  }
  for (GlobalIndex node{0}; node < fx.db.num_nodes(); ++node) {
    ref[static_cast<std::size_t>(layout.row_of(node))] += 0.5;
  }
  EXPECT_LT(max_diff(rhs.gather(), ref), 1e-12);
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(AssemblyRankSweep, AtomicFillMatchesOrderedFill) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{5});
  const MeshLayout layout =
      make_layout(fx.db, nranks, PartitionMethod::kGraph);
  EquationGraph ordered(fx.db, layout, fx.dirichlet);
  EquationGraph atomic(fx.db, layout, fx.dirichlet);
  fill_laplacian(ordered, fx, false);
  fill_laplacian(atomic, fx, true);
  for (RankId r{0}; r.value() < nranks; ++r) {
    EXPECT_LT(max_diff(ordered.rank(r).owned.vals, atomic.rank(r).owned.vals),
              1e-12);
    EXPECT_LT(max_diff(ordered.rank(r).rhs_owned, atomic.rank(r).rhs_owned),
              1e-12);
  }
}

TEST_P(AssemblyRankSweep, DirichletRowsAreIdentityOnly) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{5});
  const MeshLayout layout =
      make_layout(fx.db, nranks, PartitionMethod::kGraph);
  EquationGraph graph(fx.db, layout, fx.dirichlet);
  fill_laplacian(graph, fx, false);
  std::vector<sparse::Coo> owned, shared;
  for (RankId r{0}; r.value() < nranks; ++r) {
    owned.push_back(graph.rank(r).owned);
    shared.push_back(graph.rank(r).shared);
  }
  const auto& rows = layout.numbering.rows;
  const auto a =
      assemble_matrix(rt, rows, rows, owned, shared).to_serial();
  for (GlobalIndex node{0}; node < fx.db.num_nodes(); ++node) {
    if (!fx.dirichlet[static_cast<std::size_t>(node)]) continue;
    const auto row = checked_narrow<LocalIndex>(layout.row_of(node));
    EXPECT_EQ(a.row_nnz(row), LocalIndex{1});
    EXPECT_DOUBLE_EQ(a.at(row, row), 1.0);
  }
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(AssemblyRankSweep, RhsOnlyRefillMatchesFullFill) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{4});
  const MeshLayout layout =
      make_layout(fx.db, nranks, PartitionMethod::kGraph);
  EquationGraph graph(fx.db, layout, fx.dirichlet);
  fill_laplacian(graph, fx, false);
  std::vector<RealVector> ref_owned;
  for (RankId r{0}; r.value() < nranks; ++r) {
    ref_owned.push_back(graph.rank(r).rhs_owned);
  }
  // Refill only the RHS; matrix values must be untouched, RHS identical.
  const auto mat_vals = graph.rank(RankId{0}).owned.vals;
  graph.zero_rhs();
  for (std::size_t e = 0; e < fx.db.edges.size(); ++e) {
    graph.add_edge_rhs(e, {0.1, -0.2});
  }
  for (GlobalIndex node{0}; node < fx.db.num_nodes(); ++node) {
    graph.add_node_rhs(node, 0.5);
  }
  EXPECT_LT(max_diff(graph.rank(RankId{0}).owned.vals, mat_vals), 0.0 + 1e-300);
  for (RankId r{0}; r.value() < nranks; ++r) {
    EXPECT_LT(max_diff(graph.rank(r).rhs_owned, ref_owned[static_cast<std::size_t>(r)]),
              1e-13);
  }
}

/// Laplacian fill with iteration-dependent values on the frozen pattern
/// (what Picard iterations do: same graph, new values each pass).
void fill_scaled(EquationGraph& graph, const BoxFixture& fx, Real s) {
  graph.zero_values();
  for (std::size_t e = 0; e < fx.db.edges.size(); ++e) {
    const Real g = fx.db.edges[e].coeff * s;
    graph.add_edge(e, {g, -g, -g, g}, {0.1 * s, -0.2 * s}, false);
  }
  for (GlobalIndex node{0}; node < fx.db.num_nodes(); ++node) {
    const auto i = static_cast<std::size_t>(node);
    graph.add_node(node, fx.dirichlet[i] ? 1.0 : 0.1 * s, 0.5 - 0.03 * s,
                   false);
  }
}

void expect_bitwise(const RealVector& got, const RealVector& want) {
  ASSERT_EQ(got.size(), want.size());
  if (!got.empty()) {
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(Real)),
              0);
  }
}

TEST_P(AssemblyRankSweep, PlanRefillIsBitwiseIdenticalToColdAssembly) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{5});
  const MeshLayout layout =
      make_layout(fx.db, nranks, PartitionMethod::kGraph);
  EquationGraph graph(fx.db, layout, fx.dirichlet);
  const auto& rows = layout.numbering.rows;

  fill_laplacian(graph, fx, false);
  const auto views = system_views(graph);
  const auto span = std::span<const SystemView>(views);
  const auto plan = AssemblyPlan::build(rt, rows, rows, span);
  EXPECT_TRUE(plan.matches(span));
  auto warm_a = plan.create_matrix(rt);
  auto warm_b = plan.create_vector(rt);

  // Three warm refills with changed values, each checked bitwise against
  // a cold assembly of the same values under both exact cold variants.
  for (int refill = 0; refill < 3; ++refill) {
    fill_scaled(graph, fx, 1.0 + 0.37 * refill);
    plan.refill_matrix(rt, span, warm_a);
    plan.refill_vector(rt, span, warm_b);
    for (auto algo :
         {GlobalAssemblyAlgo::kSortReduce, GlobalAssemblyAlgo::kGeneral}) {
      const auto cold_a = assemble_matrix(rt, rows, rows, span, algo);
      const auto cold_b = assemble_vector(rt, rows, span, algo);
      for (RankId r{0}; r.value() < nranks; ++r) {
        const auto& wb = warm_a.block(r);
        const auto& cb = cold_a.block(r);
        ASSERT_EQ(wb.col_map, cb.col_map);
        ASSERT_EQ(wb.diag.nnz(), cb.diag.nnz());
        ASSERT_EQ(wb.offd.nnz(), cb.offd.nnz());
        expect_bitwise(
            RealVector(wb.diag.vals().begin(), wb.diag.vals().end()),
            RealVector(cb.diag.vals().begin(), cb.diag.vals().end()));
        expect_bitwise(
            RealVector(wb.offd.vals().begin(), wb.offd.vals().end()),
            RealVector(cb.offd.vals().begin(), cb.offd.vals().end()));
        expect_bitwise(warm_b.local(r), cold_b.local(r));
      }
    }
    // The sparse-add variant reduces in a different order; values agree
    // to rounding, not bitwise.
    const auto approx =
        assemble_matrix(rt, rows, rows, span, GlobalAssemblyAlgo::kSparseAdd);
    EXPECT_LT(matrix_diff(approx.to_serial(), warm_a.to_serial()), 1e-12);
  }
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(AssemblyRankSweep, PlanRejectsMismatchedSystems) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{4});
  BoxFixture other(GlobalIndex{5});
  const MeshLayout layout =
      make_layout(fx.db, nranks, PartitionMethod::kGraph);
  const MeshLayout other_layout =
      make_layout(other.db, nranks, PartitionMethod::kGraph);
  EquationGraph graph(fx.db, layout, fx.dirichlet);
  EquationGraph other_graph(other.db, other_layout, other.dirichlet);
  fill_laplacian(graph, fx, false);
  fill_laplacian(other_graph, other, false);

  const auto views = system_views(graph);
  const auto plan = AssemblyPlan::build(
      rt, layout.numbering.rows, layout.numbering.rows,
      std::span<const SystemView>(views));
  auto a = plan.create_matrix(rt);
  auto b = plan.create_vector(rt);

  // A rebuilt graph (different pattern sizes) must be rejected, not
  // silently assembled through the stale structure.
  const auto stale = system_views(other_graph);
  const auto stale_span = std::span<const SystemView>(stale);
  EXPECT_FALSE(plan.matches(stale_span));
  EXPECT_THROW(plan.refill_matrix(rt, stale_span, a), Error);
  EXPECT_THROW(plan.refill_vector(rt, stale_span, b), Error);
}

TEST(AssemblyPlanCache, GraphGenerationIsUniquePerBuild) {
  // The Simulation-side cache keys plans on the graph generation: two
  // graphs built from identical inputs must still get distinct ids.
  BoxFixture fx(GlobalIndex{3});
  const MeshLayout layout = make_layout(fx.db, 2, PartitionMethod::kGraph);
  EquationGraph g1(fx.db, layout, fx.dirichlet);
  EquationGraph g2(fx.db, layout, fx.dirichlet);
  EXPECT_NE(g1.generation(), g2.generation());
  EXPECT_NE(g1.generation(), 0u);
}

TEST(AssemblyPlanCache, WarmRefillChargesNoSortKernels) {
  // The cost-model contract of the warm path: a refill charges exactly
  // (send slices + 2) streaming kernels per rank for the matrix and
  // (send slices + 1 + nonempty-recv) for the RHS — never the 8-pass
  // modeled sort the cold path pays.
  const int nranks = 4;
  par::Runtime rt(nranks);
  BoxFixture fx(GlobalIndex{5});
  const MeshLayout layout =
      make_layout(fx.db, nranks, PartitionMethod::kGraph);
  EquationGraph graph(fx.db, layout, fx.dirichlet);
  const auto& rows = layout.numbering.rows;
  fill_laplacian(graph, fx, false);
  const auto views = system_views(graph);
  const auto span = std::span<const SystemView>(views);
  const auto plan = AssemblyPlan::build(rt, rows, rows, span);
  auto a = plan.create_matrix(rt);
  auto b = plan.create_vector(rt);

  rt.tracer().push_phase("warm_mat");
  plan.refill_matrix(rt, span, a);
  rt.tracer().pop_phase();
  rt.tracer().push_phase("warm_rhs");
  plan.refill_vector(rt, span, b);
  rt.tracer().pop_phase();
  rt.tracer().push_phase("cold_mat");
  const auto cold_a =
      assemble_matrix(rt, rows, rows, span, GlobalAssemblyAlgo::kSortReduce);
  rt.tracer().pop_phase();
  rt.tracer().push_phase("cold_rhs");
  const auto cold_b =
      assemble_vector(rt, rows, span, GlobalAssemblyAlgo::kSortReduce);
  rt.tracer().pop_phase();

  const auto warm_mat = rt.tracer().phase("warm_mat").total_kernels();
  const auto warm_rhs = rt.tracer().phase("warm_rhs").total_kernels();
  const auto cold_mat = rt.tracer().phase("cold_mat").total_kernels();
  const auto cold_rhs = rt.tracer().phase("cold_rhs").total_kernels();
  // A warm refill is at most (nranks - 1) pack kernels plus two value
  // passes per rank — strictly below one modeled sort's 8 passes per
  // rank. The cold path pays at least the full sort per rank.
  EXPECT_LT(warm_mat, 8 * nranks);
  EXPECT_LT(warm_rhs, 8 * nranks);
  EXPECT_GE(cold_mat, 8 * nranks);
  EXPECT_GT(cold_mat, warm_mat);
  EXPECT_GT(cold_rhs, warm_rhs);
  EXPECT_TRUE(rt.transport().drained());
}

INSTANTIATE_TEST_SUITE_P(Ranks, AssemblyRankSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(IjInterface, SixCallPatternAssembles) {
  // The paper's six-call hypre pattern on a tiny 2-rank system.
  par::Runtime rt(2);
  const auto rows = par::RowPartition::even(GlobalIndex{4}, 2);
  IJMatrix mat(rt, rows, rows);
  IJVector vec(rt, rows);

  // Rank 0 owns rows {0,1}: sets its rows, adds into rank 1's row 2.
  const std::vector<GlobalIndex> r0{GlobalIndex{0}, GlobalIndex{0}, GlobalIndex{1}};
  const std::vector<GlobalIndex> c0{GlobalIndex{0}, GlobalIndex{1}, GlobalIndex{1}};
  const std::vector<Real> v0{2.0, -1.0, 2.0};
  mat.SetValues2(RankId{0}, r0, c0, v0);
  const std::vector<GlobalIndex> r0s{GlobalIndex{2}};
  const std::vector<GlobalIndex> c0s{GlobalIndex{0}};
  const std::vector<Real> v0s{-0.5};
  mat.AddToValues2(RankId{0}, r0s, c0s, v0s);
  // Rank 1 owns rows {2,3}.
  const std::vector<GlobalIndex> r1{GlobalIndex{2}, GlobalIndex{3}};
  const std::vector<GlobalIndex> c1{GlobalIndex{2}, GlobalIndex{3}};
  const std::vector<Real> v1{2.0, 2.0};
  mat.SetValues2(RankId{1}, r1, c1, v1);
  // Duplicate contribution to (2,0) from rank 1 itself.
  const std::vector<GlobalIndex> r1o{GlobalIndex{2}};
  const std::vector<Real> v1o{-0.5};
  mat.SetValues2(RankId{1}, r1o, r0s /*col 2? no: cols*/, v1o);

  const auto a = mat.Assemble().to_serial();
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{0}, LocalIndex{0}), 2.0);
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{0}, LocalIndex{1}), -1.0);
  // (2,2) got 2.0 from SetValues2 and -0.5 from rank 1's own SetValues2
  // at (2,2)? — rank 1 used cols {2}: entry (2,2) = 2.0 - 0.5.
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{2}, LocalIndex{2}), 1.5);
  // Off-rank AddToValues2 landed at (2,0).
  EXPECT_DOUBLE_EQ(a.at(LocalIndex{2}, LocalIndex{0}), -0.5);

  const std::vector<GlobalIndex> vr0{GlobalIndex{0}, GlobalIndex{1}};
  const std::vector<Real> vv0{1.0, 2.0};
  vec.SetValues2(RankId{0}, vr0, vv0);
  const std::vector<GlobalIndex> vr0s{GlobalIndex{3}};
  const std::vector<Real> vv0s{10.0};
  vec.AddToValues2(RankId{0}, vr0s, vv0s);
  const std::vector<GlobalIndex> vr1{GlobalIndex{3}};
  const std::vector<Real> vv1{0.5};
  vec.SetValues2(RankId{1}, vr1, vv1);
  const auto b = vec.Assemble().gather();
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 0.0);
  EXPECT_DOUBLE_EQ(b[3], 10.5);
  EXPECT_TRUE(rt.transport().drained());
}

TEST(IjInterface, RejectsWrongOwnership) {
  par::Runtime rt(2);
  const auto rows = par::RowPartition::even(GlobalIndex{4}, 2);
  IJMatrix mat(rt, rows, rows);
  const std::vector<GlobalIndex> r{GlobalIndex{3}};
  const std::vector<GlobalIndex> c{GlobalIndex{0}};
  const std::vector<Real> v{1.0};
  EXPECT_THROW(mat.SetValues2(RankId{0}, r, c, v), Error);
  const std::vector<GlobalIndex> r2{GlobalIndex{0}};
  EXPECT_THROW(mat.AddToValues2(RankId{0}, r2, c, v), Error);
}

TEST(Exchange, StrongIdCooRoundTripIsBitwise) {
  // Algorithm 1's A_send exchange ships COO triples through the byte
  // transport; GlobalIndex columns past 2^32 and sentinel values must
  // round-trip bit-for-bit.
  par::Runtime rt(2);
  auto& t = rt.transport();
  const std::vector<GlobalIndex> rows{
      GlobalIndex{0}, GlobalIndex{(std::int64_t{1} << 40) + 3}, kInvalidGlobal};
  const std::vector<Real> vals{1.5, -2.25, 0.0};
  t.send<GlobalIndex>(RankId{0}, RankId{1}, par::tags::kTestRows, rows);
  t.send<Real>(RankId{0}, RankId{1}, par::tags::kTestVals, vals);
  const auto got_rows = t.recv<GlobalIndex>(RankId{1}, RankId{0}, par::tags::kTestRows);
  const auto got_vals = t.recv<Real>(RankId{1}, RankId{0}, par::tags::kTestVals);
  ASSERT_EQ(got_rows.size(), rows.size());
  EXPECT_EQ(std::memcmp(got_rows.data(), rows.data(),
                        rows.size() * sizeof(GlobalIndex)),
            0);
  EXPECT_EQ(got_vals, vals);
  EXPECT_TRUE(t.drained());
}

}  // namespace
}  // namespace exw::assembly
