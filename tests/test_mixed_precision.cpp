// Mixed-precision preconditioning (DESIGN.md §16) and pipelined GMRES.
//
// Pins the contracts the perf story rests on:
//   * the demote boundary: round-trip exactness, overflow guard, FTZ of
//     subnormals, NaN/inf pass-through;
//   * the mixed V-cycle is bitwise deterministic, rank-count invariant
//     (1/2/4/8 simulated ranks) and thread-count invariant;
//   * a value refresh of a frozen FP32 hierarchy is bitwise-identical to
//     a cold rebuild (the FP64-chain / demote-at-end replay);
//   * the FP32 preconditioner costs at most one extra GMRES iteration on
//     the canonical elliptic operator;
//   * pipelined GMRES agrees with one-reduce to rounding per iteration,
//     removes the blocking collective from the iteration body, and its
//     fused multi-RHS lanes are bitwise-identical to scalar solves.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "amg/hierarchy.hpp"
#include "common/precision.hpp"
#include "solver/gmres.hpp"
#include "test_util.hpp"

namespace exw {
namespace {

using testutil::laplace3d;
using testutil::random_spd_ish;
using testutil::random_vector;

// ---------------------------------------------------------------- demote --

TEST(Precision, StoreValueRoundsThroughFp32Storage) {
  const Real v = 0.1;  // not FP32-representable
  const Real s = store_value(v, Precision::kF32);
  EXPECT_NE(s, v);
  EXPECT_EQ(s, static_cast<Real>(static_cast<float>(v)));
  // Idempotent: a stored value re-stores to itself (load = exact promote).
  EXPECT_EQ(store_value(s, Precision::kF32), s);
  // FP64 storage is the identity.
  EXPECT_EQ(store_value(v, Precision::kF64), v);
}

TEST(Precision, DemoteOverflowThrows) {
  EXPECT_THROW(demote_value(1e39), Error);
  EXPECT_THROW(demote_value(-1e39), Error);
  EXPECT_NO_THROW(demote_value(3e38));  // still inside float range
}

TEST(Precision, SubnormalsFlushToSignedZero) {
  const Real pos = demote_value(1e-40);
  const Real neg = demote_value(-1e-40);
  EXPECT_EQ(pos, 0.0);
  EXPECT_FALSE(std::signbit(pos));
  EXPECT_EQ(neg, 0.0);
  EXPECT_TRUE(std::signbit(neg));
}

TEST(Precision, NanAndInfPassThrough) {
  EXPECT_TRUE(std::isnan(demote_value(std::nan(""))));
  const Real inf = std::numeric_limits<Real>::infinity();
  EXPECT_EQ(demote_value(inf), inf);
  EXPECT_EQ(demote_value(-inf), -inf);
}

TEST(Precision, BytesOfAndSplit) {
  EXPECT_EQ(bytes_of(Precision::kF64), 8.0);
  EXPECT_EQ(bytes_of(Precision::kF32), 4.0);
  double f64 = 0, f32 = 0;
  split_value_bytes(Precision::kF32, 100.0, f64, f32);
  split_value_bytes(Precision::kF64, 40.0, f64, f32);
  EXPECT_EQ(f32, 100.0);
  EXPECT_EQ(f64, 40.0);
}

// ---------------------------------------------------------- mixed V-cycle --

/// One mixed-precision V-cycle on the canonical operator, gathered dense.
RealVector mixed_vcycle_result(int nranks, const sparse::Csr& mat) {
  par::Runtime rt(nranks);
  const auto rows =
      par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks);
  const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  amg::AmgConfig cfg;
  cfg.precision = Precision::kF32;
  amg::AmgHierarchy h(a, cfg);
  linalg::ParVector b(rt, rows), x(rt, rows);
  b.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 91));
  x.fill(0.0);
  h.vcycle(b, x);
  return x.gather();
}

TEST(MixedVcycle, BitwiseDeterministicAcrossRankCounts) {
  // Determinism is pinned AT each rank count (the l1/two-stage smoother
  // splits are partition-aware, so different rank counts legitimately
  // produce different — each bitwise-reproducible — iterates; the
  // rank-count invariance of the full solve is pinned at the sim level
  // by test_integration).
  const auto mat = laplace3d(8, 0.05);
  for (int nranks : {1, 2, 4, 8}) {
    const auto got = mixed_vcycle_result(nranks, mat);
    const auto again = mixed_vcycle_result(nranks, mat);
    ASSERT_EQ(got.size(), again.size());
    EXPECT_EQ(
        std::memcmp(got.data(), again.data(), got.size() * sizeof(Real)), 0)
        << "mixed V-cycle not deterministic at " << nranks << " ranks";
  }
}

TEST(MixedVcycle, ThreadCountInvariant) {
  const auto mat = laplace3d(7, 0.05);
  const char* saved = std::getenv("EXW_NUM_THREADS");
  const std::string saved_copy = saved ? saved : "";
  setenv("EXW_NUM_THREADS", "1", 1);
  const auto ref = mixed_vcycle_result(4, mat);
  for (const char* threads : {"2", "3", "8"}) {
    setenv("EXW_NUM_THREADS", threads, 1);
    const auto got = mixed_vcycle_result(4, mat);
    EXPECT_EQ(std::memcmp(got.data(), ref.data(), ref.size() * sizeof(Real)),
              0)
        << "mixed V-cycle drifted at EXW_NUM_THREADS=" << threads;
  }
  if (saved) {
    setenv("EXW_NUM_THREADS", saved_copy.c_str(), 1);
  } else {
    unsetenv("EXW_NUM_THREADS");
  }
}

TEST(MixedVcycle, RefreshMatchesColdRebuildBitwise) {
  // The FP64-chain replay: refresh runs the whole Galerkin chain in FP64
  // and demotes every level once at the end, so a refreshed FP32
  // hierarchy must be bitwise-identical to one built cold from the same
  // values.
  const int nranks = 4;
  auto mat = laplace3d(7, 0.1);
  par::Runtime rt(nranks);
  const auto rows =
      par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks);
  auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  amg::AmgConfig cfg;
  cfg.precision = Precision::kF32;
  amg::AmgHierarchy frozen(a, cfg, /*freeze_replay=*/true);

  // Refresh through genuinely different values and back (the round trip
  // keeps the frozen coarsening applicable), then compare against a cold
  // build from the same final values.
  const auto a_mid =
      linalg::ParCsr::from_serial(rt, laplace3d(7, 0.45), rows, rows);
  frozen.refresh_values(a_mid);
  frozen.refresh_values(a);
  amg::AmgHierarchy cold(a, cfg);

  // The refreshed coarse direct solver deliberately keeps its stale
  // factorization (drift policy owns that lag), so the pin is on the
  // value plane: every level's refreshed operator must act bitwise like
  // the cold rebuild's — the FP64-chain replay demoted at the end
  // reproduces the cold Galerkin chain exactly.
  ASSERT_EQ(frozen.num_levels(), cold.num_levels());
  for (int l = 0; l < frozen.num_levels(); ++l) {
    const auto& af = frozen.level(l).a;
    const auto& ac = cold.level(l).a;
    linalg::ParVector v(rt, af.cols()), yf(rt, af.rows()), yc(rt, af.rows());
    v.scatter(random_vector(static_cast<std::size_t>(af.global_cols().value()),
                            7 + static_cast<std::uint64_t>(l)));
    af.matvec(v, yf);
    ac.matvec(v, yc);
    const auto gf = yf.gather();
    const auto gc = yc.gather();
    EXPECT_EQ(std::memcmp(gf.data(), gc.data(), gf.size() * sizeof(Real)), 0)
        << "refreshed level " << l << " operator drifted from cold rebuild";
  }
}

TEST(MixedPrecond, AtMostOneExtraGmresIteration) {
  const auto mat = laplace3d(9, 0.02);
  auto iters = [&](Precision p) {
    par::Runtime rt(4);
    const auto rows =
        par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 4);
    const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
    linalg::ParVector b(rt, rows), x(rt, rows);
    b.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 31));
    x.fill(0.0);
    amg::AmgConfig cfg;
    cfg.precision = p;
    solver::AmgPrecond m(a, cfg);
    solver::GmresOptions opts;
    // The paper's pressure solves run at 1e-5; 1e-6 keeps headroom while
    // staying in the regime where an FP32 preconditioner is iteration-
    // neutral (at much tighter tolerances it legitimately costs more).
    opts.rel_tol = 1e-6;
    const auto st = solver::gmres_solve(a, b, x, m, opts);
    EXPECT_TRUE(st.converged);
    return st.iterations;
  };
  const int full = iters(Precision::kF64);
  const int mixed = iters(Precision::kF32);
  EXPECT_LE(mixed, full + 1);
}

// ------------------------------------------------------- pipelined GMRES --

TEST(Pipelined, AgreesWithOneReducePerIteration) {
  const auto mat = random_spd_ish(LocalIndex{300}, 6, 53);
  auto run = [&](solver::OrthoMethod ortho, std::vector<Real>* trace,
                 RealVector* sol) {
    par::Runtime rt(4);
    const auto rows =
        par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 4);
    const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
    linalg::ParVector b(rt, rows), x(rt, rows);
    b.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 5));
    x.fill(0.0);
    solver::SmootherPrecond m(a, amg::SmootherType::kSgs2, 2, 2);
    solver::GmresOptions opts;
    opts.rel_tol = 1e-9;
    opts.ortho = ortho;
    opts.residual_trace = trace;
    const auto st = solver::gmres_solve(a, b, x, m, opts);
    EXPECT_TRUE(st.converged);
    *sol = x.gather();
    return st;
  };
  std::vector<Real> trace_one, trace_pipe;
  RealVector sol_one, sol_pipe;
  const auto s_one = run(solver::OrthoMethod::kOneReduce, &trace_one,
                         &sol_one);
  const auto s_pipe = run(solver::OrthoMethod::kPipelined, &trace_pipe,
                          &sol_pipe);
  // The q-basis recurrence reassociates A M^-1, so agreement is to
  // rounding, not bitwise: per-iteration residual estimates track within
  // a tight relative band and the solutions coincide to solver accuracy.
  ASSERT_FALSE(trace_one.empty());
  const std::size_t common = std::min(trace_one.size(), trace_pipe.size());
  EXPECT_LE(trace_one.size() > trace_pipe.size()
                ? trace_one.size() - trace_pipe.size()
                : trace_pipe.size() - trace_one.size(),
            std::size_t{1});
  for (std::size_t i = 0; i < common; ++i) {
    EXPECT_NEAR(trace_pipe[i], trace_one[i],
                1e-6 * s_one.initial_residual + 1e-6 * trace_one[i])
        << "residual traces diverged at iteration " << i;
  }
  Real diff = 0, norm = 0;
  for (std::size_t i = 0; i < sol_one.size(); ++i) {
    diff = std::max(diff, std::abs(sol_one[i] - sol_pipe[i]));
    norm = std::max(norm, std::abs(sol_one[i]));
  }
  EXPECT_LE(diff, 1e-7 * std::max(norm, Real{1.0}));
  EXPECT_LE(std::abs(s_pipe.iterations - s_one.iterations), 1);
}

TEST(Pipelined, RemovesBlockingCollectiveFromIterationBody) {
  const auto mat = laplace3d(8, 0.02);
  long blocking_one = 0, blocking_pipe = 0;
  long overlapped_one = 0, overlapped_pipe = 0;
  int iters_one = 0, iters_pipe = 0;
  auto run = [&](solver::OrthoMethod ortho, long* blocking, long* overlapped,
                 int* iters) {
    par::Runtime rt(4);
    const auto rows =
        par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 4);
    const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
    linalg::ParVector b(rt, rows), x(rt, rows);
    b.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 13));
    x.fill(0.0);
    solver::IdentityPrecond m;
    solver::GmresOptions opts;
    opts.rel_tol = 1e-8;
    opts.ortho = ortho;
    rt.tracer().reset();
    const auto st = solver::gmres_solve(a, b, x, m, opts);
    EXPECT_TRUE(st.converged);
    *blocking = rt.tracer().phase("").collectives;
    *overlapped = rt.tracer().phase("").overlapped_collectives;
    *iters = st.iterations;
  };
  run(solver::OrthoMethod::kOneReduce, &blocking_one, &overlapped_one,
      &iters_one);
  run(solver::OrthoMethod::kPipelined, &blocking_pipe, &overlapped_pipe,
      &iters_pipe);
  ASSERT_GT(iters_one, 0);
  ASSERT_GT(iters_pipe, 0);
  // One-reduce: >= 1 blocking reduce per iteration; pipelined moves the
  // per-iteration reduce off the blocking ledger entirely.
  const double per_iter_one =
      static_cast<double>(blocking_one) / iters_one;
  const double per_iter_pipe =
      static_cast<double>(blocking_pipe) / iters_pipe;
  EXPECT_LT(per_iter_pipe, per_iter_one);
  EXPECT_EQ(overlapped_one, 0);
  // One in-flight reduce per iteration, except at the periodic
  // synchronization points where the reduce blocks by design.
  const solver::GmresOptions defaults;
  EXPECT_GE(overlapped_pipe,
            iters_pipe - iters_pipe / defaults.pipeline_sync_period - 1);
}

TEST(Pipelined, MultiLanesMatchScalarBitwise) {
  // The fused multi-RHS pipelined path must reproduce the scalar
  // pipelined iterates exactly, lane by lane (rank-ordered batched
  // reductions + masked lane ops).
  const auto mat = random_spd_ish(LocalIndex{240}, 5, 71);
  const int nranks = 4;
  constexpr std::size_t kLanes = 3;
  par::Runtime rt(nranks);
  const auto rows =
      par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks);
  const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  solver::SmootherPrecond m(a, amg::SmootherType::kSgs2, 2, 1);
  solver::GmresOptions opts;
  opts.rel_tol = 1e-8;
  opts.ortho = solver::OrthoMethod::kPipelined;

  std::vector<RealVector> bd;
  for (std::size_t c = 0; c < kLanes; ++c) {
    bd.push_back(random_vector(static_cast<std::size_t>(mat.nrows()),
                               100 + c));
  }

  linalg::ParMultiVector b(rt, rows, kLanes), x(rt, rows, kLanes);
  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector bc(rt, rows);
    bc.scatter(bd[c]);
    b.set_lane(c, bc);
  }
  x.fill(0.0);
  const auto multi = solver::gmres_solve_multi(a, b, x, m, opts);
  EXPECT_TRUE(multi.all_converged());

  for (std::size_t c = 0; c < kLanes; ++c) {
    linalg::ParVector bc(rt, rows), xc(rt, rows);
    bc.scatter(bd[c]);
    xc.fill(0.0);
    const auto st = solver::gmres_solve(a, bc, xc, m, opts);
    EXPECT_TRUE(st.converged);
    EXPECT_EQ(st.iterations, multi.lane[c].iterations) << "lane " << c;
    linalg::ParVector xm(rt, rows);
    x.extract_lane(c, xm);
    const auto gm = xm.gather();
    const auto gs = xc.gather();
    EXPECT_EQ(std::memcmp(gm.data(), gs.data(), gm.size() * sizeof(Real)),
              0)
        << "lane " << c << " diverged from scalar pipelined";
  }
}

}  // namespace
}  // namespace exw
