// Tests for the relaxation schemes of paper §4.2.
#include <gtest/gtest.h>

#include "amg/smoothers.hpp"
#include "test_util.hpp"

namespace exw::amg {
namespace {

using testutil::laplace3d;
using testutil::random_vector;

struct Problem {
  par::Runtime rt;
  linalg::ParCsr a;
  linalg::ParVector b, x, r;

  Problem(int nranks, const sparse::Csr& mat)
      : rt(nranks),
        a(linalg::ParCsr::from_serial(
            rt, mat, par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks),
            par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks))),
        b(rt, a.rows()),
        x(rt, a.rows()),
        r(rt, a.rows()) {
    b.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 3));
    x.fill(0.0);
  }

  Real residual_norm() {
    a.residual(b, x, r);
    return r.norm2();
  }
};

class SmootherSweep
    : public ::testing::TestWithParam<std::tuple<SmootherType, int>> {};

TEST_P(SmootherSweep, ReducesResidualMonotonically) {
  const auto [type, nranks] = GetParam();
  Problem prob(nranks, laplace3d(8, 0.2));
  Smoother smoother(prob.a, type, /*inner_sweeps=*/2, /*weight=*/0.8);
  Real prev = prob.residual_norm();
  for (int sweep = 0; sweep < 8; ++sweep) {
    smoother.apply(prob.b, prob.x, 1);
    const Real now = prob.residual_norm();
    EXPECT_LT(now, prev * 1.0001) << "sweep " << sweep;
    prev = now;
  }
  EXPECT_LT(prev, 0.5 * prob.residual_norm() + prev);  // sanity
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndRanks, SmootherSweep,
    ::testing::Combine(::testing::Values(SmootherType::kJacobi,
                                         SmootherType::kL1Jacobi,
                                         SmootherType::kHybridGs,
                                         SmootherType::kTwoStageGs,
                                         SmootherType::kSgs2),
                       ::testing::Values(1, 3, 5)));

TEST(Smoother, TwoStageApproachesHybridGsWithManyInnerSweeps) {
  // The Neumann expansion (I + Dinv L)^-1 converges in finitely many
  // terms, so a two-stage sweep with many inner iterations must act like
  // true local Gauss-Seidel.
  const auto mat = laplace3d(6, 0.3);
  Problem gs(1, mat), ts(1, mat);
  Smoother gs_smoother(gs.a, SmootherType::kHybridGs, 0, 1.0);
  Smoother ts_smoother(ts.a, SmootherType::kTwoStageGs, 250, 1.0);
  gs_smoother.apply(gs.b, gs.x, 3);
  ts_smoother.apply(ts.b, ts.x, 3);
  EXPECT_LT(testutil::max_diff(gs.x.gather(), ts.x.gather()), 1e-10);
}

TEST(Smoother, MoreInnerSweepsConvergeFasterPerOuter) {
  // Paper §5.1: "the inclusion of a second inner iteration ... has proven
  // effective at reducing the number of GMRES iterations by roughly 2x".
  // The smoother-level proxy: residual reduction per outer sweep improves
  // with inner sweep count.
  const auto mat = laplace3d(8, 0.1);
  auto reduction = [&](int inner) {
    Problem prob(4, mat);
    Smoother smoother(prob.a, SmootherType::kTwoStageGs, inner, 1.0);
    const Real r0 = prob.residual_norm();
    smoother.apply(prob.b, prob.x, 4);
    return prob.residual_norm() / r0;
  };
  EXPECT_LT(reduction(2), reduction(0));
  EXPECT_LT(reduction(1), reduction(0));
}

TEST(Smoother, Sgs2ActsSymmetric) {
  // SGS2 on one rank with converged inner solves equals exact SGS; the
  // preconditioner action on a symmetric matrix should be symmetric:
  // <M^-1 u, v> == <u, M^-1 v>.
  const auto mat = laplace3d(5, 0.4);
  par::Runtime rt(1);
  const auto rows = par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 1);
  const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  Smoother sgs(a, SmootherType::kSgs2, 200, 1.0);
  linalg::ParVector u(rt, rows), v(rt, rows), mu(rt, rows), mv(rt, rows);
  u.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 5));
  v.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 6));
  sgs.apply_zero(u, mu, 1);
  sgs.apply_zero(v, mv, 1);
  EXPECT_NEAR(mu.dot(v), u.dot(mv), 1e-8 * std::abs(mu.dot(v)));
}

TEST(Smoother, ThrowsOnZeroDiagonal) {
  sparse::Csr bad = sparse::Csr::from_triples(LocalIndex{2}, LocalIndex{2},
                                        {LocalIndex{0}, LocalIndex{1}},
                                        {LocalIndex{1}, LocalIndex{0}}, {1.0, 1.0});
  par::Runtime rt(1);
  const auto rows = par::RowPartition::even(GlobalIndex{2}, 1);
  const auto a = linalg::ParCsr::from_serial(rt, bad, rows, rows);
  EXPECT_THROW(Smoother(a, SmootherType::kJacobi, 1, 1.0), Error);
}

TEST(Smoother, EigEstimateHandlesNegativeDiagonal) {
  // Regression: rows with a negative diagonal used to be skipped, so a
  // matrix whose diagonal is entirely negative produced a Gershgorin
  // bound of 0 — which collapses the Chebyshev interval to a point.
  // -laplace3d is symmetric negative definite with all-negative diagonal.
  auto mat = testutil::laplace3d(4, 0.2);
  for (auto& v : mat.vals_vec()) v = -v;
  par::Runtime rt(2);
  const auto rows = par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 2);
  const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  const Real bound = estimate_eig_max(a);
  EXPECT_GT(bound, 1.0);  // 1 + row/|d| >= 1 with equality only if no off-diag
  // And it matches the bound of the positive twin: |.| makes it sign-blind.
  par::Runtime rt2(2);
  const auto pos = linalg::ParCsr::from_serial(rt2, testutil::laplace3d(4, 0.2),
                                               rows, rows);
  EXPECT_DOUBLE_EQ(bound, estimate_eig_max(pos));
}

TEST(Smoother, EigEstimateThrowsOnZeroDiagonal) {
  sparse::Csr bad = sparse::Csr::from_triples(LocalIndex{2}, LocalIndex{2},
                                        {LocalIndex{0}, LocalIndex{1}},
                                        {LocalIndex{1}, LocalIndex{0}}, {1.0, 1.0});
  par::Runtime rt(1);
  const auto rows = par::RowPartition::even(GlobalIndex{2}, 1);
  const auto a = linalg::ParCsr::from_serial(rt, bad, rows, rows);
  EXPECT_THROW(estimate_eig_max(a), Error);
}

TEST(LduSplit, SplitsDiagBlock) {
  par::Runtime rt(2);
  const auto mat = laplace3d(4, 0.5);
  const auto rows = par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 2);
  const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  const auto ldu = LduSplit::build(a);
  for (RankId r{0}; r.value() < 2; ++r) {
    const auto& lo = ldu.lower[static_cast<std::size_t>(r)];
    const auto& up = ldu.upper[static_cast<std::size_t>(r)];
    for (LocalIndex i{0}; i < lo.nrows(); ++i) {
      for (EntryOffset k = lo.row_begin(i); k < lo.row_end(i); ++k) {
        EXPECT_LT(lo.cols()[k], i);
      }
      for (EntryOffset k = up.row_begin(i); k < up.row_end(i); ++k) {
        EXPECT_GT(up.cols()[k], i);
      }
    }
    // L + D + U accounts for every diag-block entry.
    EXPECT_EQ(lo.nnz() + up.nnz() + static_cast<std::size_t>(lo.nrows()),
              a.block(r).diag.nnz());
    // l1 scaling is at most the plain inverse diagonal.
    for (std::size_t i = 0; i < ldu.dinv[static_cast<std::size_t>(r)].size(); ++i) {
      EXPECT_LE(ldu.l1_dinv[static_cast<std::size_t>(r)][i],
                ldu.dinv[static_cast<std::size_t>(r)][i] + 1e-15);
    }
  }
}

}  // namespace
}  // namespace exw::amg
