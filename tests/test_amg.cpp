// Tests for the BoomerAMG-mini setup pipeline (paper §4.1): strength of
// connection, PMIS, interpolation operators, distributed Galerkin RAP,
// hierarchy construction, and V-cycle convergence.
#include <gtest/gtest.h>

#include "amg/coarsen.hpp"
#include "amg/hierarchy.hpp"
#include "amg/interp.hpp"
#include "amg/rap.hpp"
#include "amg/soc.hpp"
#include "test_util.hpp"

namespace exw::amg {
namespace {

using testutil::aniso2d;
using testutil::laplace3d;
using testutil::matrix_diff;
using testutil::random_rect;
using testutil::random_vector;

linalg::ParCsr distribute(par::Runtime& rt, const sparse::Csr& a) {
  const auto rows = par::RowPartition::even(GlobalIndex{a.nrows().value()}, rt.nranks());
  return linalg::ParCsr::from_serial(rt, a, rows, rows);
}

TEST(Strength, ThresholdSelectsAnisotropicDirection) {
  // eps = 0.01: only the unit-strength y-couplings are strong at
  // theta = 0.25.
  par::Runtime rt(2);
  const auto a = distribute(rt, aniso2d(8, 0.01));
  const Strength s = compute_strength(a, 0.25);
  double strong = 0;
  for (double c : strong_counts(s)) strong += c;
  // Each interior point has exactly 2 strong neighbors (up/down);
  // boundary points 1: total = 2*(n*(n-1)) directed edges.
  EXPECT_DOUBLE_EQ(strong, 2.0 * 8 * 7);
}

TEST(Strength, DiagonalNeverStrong) {
  par::Runtime rt(1);
  const auto a = distribute(rt, laplace3d(4));
  const Strength s = compute_strength(a, 0.0);
  const auto& b = a.block(RankId{0});
  for (LocalIndex i{0}; i < b.diag.nrows(); ++i) {
    for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
      if (b.diag.cols()[k] == i) {
        EXPECT_FALSE(s.strong_diag(RankId{0}, static_cast<std::size_t>(k)));
      }
    }
  }
}

class AmgRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(AmgRankSweep, PmisProducesValidSplitting) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto a = distribute(rt, laplace3d(8));
  const Strength s = compute_strength(a, 0.25);
  const Coarsening c = pmis(a, s, 7);
  // Nontrivial coarsening.
  EXPECT_GT(c.coarse_size(), GlobalIndex{0});
  EXPECT_LT(c.coarse_size(), a.global_rows());
  // Every point decided; coarse ids contiguous per rank.
  for (RankId r{0}; r.value() < nranks; ++r) {
    GlobalIndex expect = c.coarse_rows.first_row(r);
    for (std::size_t i = 0; i < c.cf[static_cast<std::size_t>(r)].size(); ++i) {
      EXPECT_NE(c.cf[static_cast<std::size_t>(r)][i], CF::kUndecided);
      if (c.cf[static_cast<std::size_t>(r)][i] == CF::kCoarse) {
        EXPECT_EQ(c.coarse_id[static_cast<std::size_t>(r)][i], expect++);
      } else {
        EXPECT_EQ(c.coarse_id[static_cast<std::size_t>(r)][i], kInvalidGlobal);
      }
    }
    EXPECT_EQ(expect, c.coarse_rows.end_row(r));
  }
}

TEST_P(AmgRankSweep, PmisIndependentOfRankCount) {
  // The measure hashes *global* ids, so the C/F splitting must be
  // identical for any partitioning into contiguous blocks.
  const int nranks = GetParam();
  par::Runtime rt1(1), rtn(nranks);
  const auto a1 = distribute(rt1, laplace3d(7));
  const auto an = distribute(rtn, laplace3d(7));
  const Coarsening c1 = pmis(a1, compute_strength(a1, 0.25), 3);
  const Coarsening cn = pmis(an, compute_strength(an, 0.25), 3);
  ASSERT_EQ(c1.coarse_size(), cn.coarse_size());
  for (GlobalIndex g{0}; g < a1.global_rows(); ++g) {
    EXPECT_EQ(static_cast<int>(c1.cf_of(a1.rows(), g)),
              static_cast<int>(cn.cf_of(an.rows(), g)));
  }
}

TEST_P(AmgRankSweep, InterpolationPreservesConstants) {
  // For zero-row-sum M-matrix rows (pure Neumann-free interior), the
  // interpolation of the constant vector must be exact: P * 1_C = 1 on
  // every F row with at least one strong C neighbor.
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  // Laplacian without shift has zero row sums in the interior only; use
  // aniso2d which has zero row sums everywhere (pure Neumann would be
  // singular, but interpolation only looks at rows).
  const auto a = distribute(rt, aniso2d(10, 0.2));
  const Strength s = compute_strength(a, 0.25);
  const Coarsening c = pmis(a, s, 11);
  for (auto interp : {InterpType::kDirect, InterpType::kBamg,
                      InterpType::kMmExt, InterpType::kMmExtI}) {
    AmgConfig cfg;
    cfg.interp = interp;
    cfg.pmax = 0;  // no truncation: exactness is only guaranteed untruncated
    const auto p = build_interpolation(a, s, c, cfg);
    linalg::ParVector ones_c(rt, p.cols());
    linalg::ParVector result(rt, p.rows());
    ones_c.fill(1.0);
    p.matvec(ones_c, result);
    const auto res = result.gather();
    for (RankId r{0}; r.value() < nranks; ++r) {
      for (LocalIndex i{0}; i < a.rows().local_size(r); ++i) {
        const auto g = static_cast<std::size_t>(a.rows().first_row(r) + i.value());
        const bool empty_row =
            p.block(r).diag.row_nnz(i).value() + p.block(r).offd.row_nnz(i).value() == 0;
        if (!empty_row) {
          EXPECT_NEAR(res[g], 1.0, 1e-10)
              << "interp " << static_cast<int>(interp) << " row " << g;
        }
      }
    }
  }
}

TEST_P(AmgRankSweep, RapMatchesSerialTripleProduct) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto a = distribute(rt, laplace3d(6, 0.05));
  const Strength s = compute_strength(a, 0.25);
  const Coarsening c = pmis(a, s, 5);
  AmgConfig cfg;
  const auto p = build_interpolation(a, s, c, cfg);
  const auto ac = galerkin_rap(a, p);
  // Serial reference.
  const auto a_serial = a.to_serial();
  const auto p_serial = p.to_serial();
  const auto ref = sparse::rap(a_serial, p_serial);
  EXPECT_LT(matrix_diff(ac.to_serial(), ref), 1e-10);
  EXPECT_TRUE(rt.transport().drained());
}

TEST_P(AmgRankSweep, ParMatmatMatchesSerial) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const sparse::Csr as = testutil::random_spd_ish(LocalIndex{60}, 4, 31);
  const sparse::Csr bs = random_rect(LocalIndex{60}, LocalIndex{25}, 3, 32);
  const auto rows = par::RowPartition::even(GlobalIndex{60}, nranks);
  const auto cols = par::RowPartition::even(GlobalIndex{25}, nranks);
  const auto a = linalg::ParCsr::from_serial(rt, as, rows, rows);
  const auto b = linalg::ParCsr::from_serial(rt, bs, rows, cols);
  const auto c = par_matmat(a, b);
  EXPECT_LT(matrix_diff(c.to_serial(), sparse::spgemm(as, bs)), 1e-11);
}

TEST_P(AmgRankSweep, VcycleConvergesOnLaplacian) {
  const int nranks = GetParam();
  par::Runtime rt(nranks);
  const auto a = distribute(rt, laplace3d(12, 0.01));
  AmgConfig cfg;
  AmgHierarchy h(a, cfg);
  EXPECT_GE(h.num_levels(), 2);
  EXPECT_LT(h.operator_complexity(), 3.0);

  linalg::ParVector b(rt, a.rows()), x(rt, a.rows()), r(rt, a.rows());
  b.scatter(random_vector(static_cast<std::size_t>(a.global_rows()), 2));
  x.fill(0.0);
  a.residual(b, x, r);
  const Real r0 = r.norm2();
  for (int it = 0; it < 10; ++it) {
    h.vcycle(b, x);
  }
  a.residual(b, x, r);
  EXPECT_LT(r.norm2(), 1e-3 * r0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, AmgRankSweep, ::testing::Values(1, 2, 4, 6));

TEST(Interp, CoarseRowsAreIdentity) {
  par::Runtime rt(3);
  const auto a = distribute(rt, laplace3d(6));
  const Strength s = compute_strength(a, 0.25);
  const Coarsening c = pmis(a, s, 9);
  AmgConfig cfg;
  const auto p = build_interpolation(a, s, c, cfg);
  const auto ps = p.to_serial();
  for (RankId r{0}; r.value() < 3; ++r) {
    for (LocalIndex i{0}; i < a.rows().local_size(r); ++i) {
      if (c.cf[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] !=
          CF::kCoarse) {
        continue;
      }
      const auto g = checked_narrow<LocalIndex>(a.rows().first_row(r) + i.value());
      EXPECT_EQ(ps.row_nnz(g), LocalIndex{1});
      EXPECT_DOUBLE_EQ(
          ps.at(g, checked_narrow<LocalIndex>(
                       c.coarse_id[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)])),
          1.0);
    }
  }
}

TEST(Interp, TruncationRespectsPmaxAndRowSum) {
  par::Runtime rt(2);
  const auto a = distribute(rt, laplace3d(8));
  const Strength s = compute_strength(a, 0.1);
  const Coarsening c = pmis(a, s, 13);
  AmgConfig cfg;
  cfg.interp = InterpType::kMmExt;
  cfg.pmax = 0;
  auto p = build_interpolation(a, s, c, cfg);
  // Record row sums before truncation.
  const auto before = p.to_serial();
  truncate_interpolation(p, 3, 0.0);
  const auto after = p.to_serial();
  for (LocalIndex i{0}; i < after.nrows(); ++i) {
    EXPECT_LE(after.row_nnz(i), LocalIndex{3});
    Real sb = 0, sa = 0;
    for (EntryOffset k = before.row_begin(i); k < before.row_end(i); ++k) {
      sb += before.vals()[k];
    }
    for (EntryOffset k = after.row_begin(i); k < after.row_end(i); ++k) {
      sa += after.vals()[k];
    }
    if (before.row_nnz(i) > LocalIndex{0}) {
      EXPECT_NEAR(sa, sb, 1e-9 * std::max<Real>(1.0, std::abs(sb)));
    }
  }
}

TEST(Hierarchy, AggressiveCoarseningReducesComplexity) {
  par::Runtime rt(2);
  const auto a = distribute(rt, laplace3d(14, 0.01));
  AmgConfig standard;
  standard.agg_levels = 0;
  AmgConfig aggressive;
  aggressive.agg_levels = 2;
  AmgHierarchy hs(a, standard);
  AmgHierarchy ha(a, aggressive);
  // Aggressive coarsening: smaller level-1 grid and lower complexity
  // (paper §4.1: "can reduce the grid and operator complexities").
  EXPECT_LT(ha.level(1).a.global_rows(), hs.level(1).a.global_rows());
  EXPECT_LE(ha.operator_complexity(), hs.operator_complexity() + 0.05);
}

TEST(Hierarchy, MmExtBeatsDirectOnConvergence) {
  // The paper's motivation for extended interpolation: better convergence
  // where PMIS leaves F points without C neighbors.
  par::Runtime rt(2);
  const auto a = distribute(rt, laplace3d(12, 0.01));
  auto factor = [&](InterpType interp) {
    AmgConfig cfg;
    cfg.interp = interp;
    AmgHierarchy h(a, cfg);
    linalg::ParVector b(rt, a.rows()), x(rt, a.rows()), r(rt, a.rows());
    b.scatter(random_vector(static_cast<std::size_t>(a.global_rows()), 4));
    x.fill(0.0);
    a.residual(b, x, r);
    const Real r0 = r.norm2();
    for (int it = 0; it < 8; ++it) {
      h.vcycle(b, x);
    }
    a.residual(b, x, r);
    return std::pow(r.norm2() / r0, 1.0 / 8.0);
  };
  EXPECT_LT(factor(InterpType::kMmExt), factor(InterpType::kDirect) + 0.02);
}

TEST(Hierarchy, DescribeListsLevels) {
  par::Runtime rt(1);
  const auto a = distribute(rt, laplace3d(8, 0.01));
  AmgHierarchy h(a, AmgConfig{});
  const std::string desc = h.describe();
  EXPECT_NE(desc.find("levels"), std::string::npos);
  EXPECT_NE(desc.find("operator complexity"), std::string::npos);
}

}  // namespace
}  // namespace exw::amg
