// Tests for GMRES (MGS and one-reduce) and the preconditioner stack.
#include <gtest/gtest.h>

#include "solver/gmres.hpp"
#include "test_util.hpp"

namespace exw::solver {
namespace {

using testutil::laplace3d;
using testutil::random_spd_ish;
using testutil::random_vector;

struct Problem {
  par::Runtime rt;
  linalg::ParCsr a;
  linalg::ParVector b, x;

  Problem(int nranks, const sparse::Csr& mat)
      : rt(nranks),
        a(linalg::ParCsr::from_serial(
            rt, mat, par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks),
            par::RowPartition::even(GlobalIndex{mat.nrows().value()}, nranks))),
        b(rt, a.rows()),
        x(rt, a.rows()) {
    b.scatter(random_vector(static_cast<std::size_t>(mat.nrows()), 17));
    x.fill(0.0);
  }
};

class GmresSweep
    : public ::testing::TestWithParam<std::tuple<OrthoMethod, int>> {};

TEST_P(GmresSweep, SolvesSpdSystem) {
  const auto [ortho, nranks] = GetParam();
  Problem prob(nranks, laplace3d(7, 0.2));
  IdentityPrecond m;
  GmresOptions opts;
  opts.ortho = ortho;
  opts.rel_tol = 1e-8;
  const auto stats = gmres_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  // True residual agrees.
  linalg::ParVector r(prob.rt, prob.a.rows());
  prob.a.residual(prob.b, prob.x, r);
  EXPECT_LT(r.norm2(), 1e-7 * stats.initial_residual);
}

TEST_P(GmresSweep, SolvesNonsymmetricSystem) {
  const auto [ortho, nranks] = GetParam();
  Problem prob(nranks, random_spd_ish(LocalIndex{150}, 6, 23));  // nonsymmetric pattern
  IdentityPrecond m;
  GmresOptions opts;
  opts.ortho = ortho;
  opts.rel_tol = 1e-9;
  const auto stats = gmres_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
}

TEST_P(GmresSweep, RespectsInitialGuess) {
  const auto [ortho, nranks] = GetParam();
  Problem prob(nranks, laplace3d(5, 0.3));
  IdentityPrecond m;
  GmresOptions opts;
  opts.ortho = ortho;
  opts.rel_tol = 1e-10;
  // Solve once, then re-solve starting from the solution: 0 iterations.
  gmres_solve(prob.a, prob.b, prob.x, m, opts);
  const auto again = gmres_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(again.converged);
  EXPECT_EQ(again.iterations, 0);
}

INSTANTIATE_TEST_SUITE_P(
    OrthoAndRanks, GmresSweep,
    ::testing::Combine(::testing::Values(OrthoMethod::kMgs,
                                         OrthoMethod::kOneReduce,
                                         OrthoMethod::kPipelined),
                       ::testing::Values(1, 2, 5)));

TEST(Gmres, RestartStillConverges) {
  Problem prob(2, laplace3d(8, 0.05));
  IdentityPrecond m;
  GmresOptions opts;
  opts.restart = 5;  // force several restarts
  opts.max_iters = 400;
  opts.rel_tol = 1e-6;
  const auto stats = gmres_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.iterations, 5);
}

TEST(Gmres, AmgPreconditionerCutsIterations) {
  const auto mat = laplace3d(10, 0.01);
  Problem plain(2, mat), preconditioned(2, mat);
  GmresOptions opts;
  opts.rel_tol = 1e-8;
  IdentityPrecond id;
  const auto s0 = gmres_solve(plain.a, plain.b, plain.x, id, opts);
  AmgPrecond amg_m(preconditioned.a, amg::AmgConfig{});
  const auto s1 = gmres_solve(preconditioned.a, preconditioned.b,
                              preconditioned.x, amg_m, opts);
  EXPECT_TRUE(s1.converged);
  EXPECT_LT(s1.iterations, s0.iterations / 2);
}

TEST(Gmres, Sgs2PreconditionerConvergesFast) {
  // Paper §4.2: "two outer and two inner iterations often leads to rapid
  // convergence in less than five preconditioned GMRES iterations" for
  // the diagonally dominant momentum systems.
  Problem prob(3, random_spd_ish(LocalIndex{400}, 6, 29));
  SmootherPrecond m(prob.a, amg::SmootherType::kSgs2, 2, 2);
  GmresOptions opts;
  opts.rel_tol = 1e-6;
  const auto stats = gmres_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 8);
}

TEST(Gmres, OneReduceUsesFewerCollectives) {
  // The point of the one-reduce variant: one allreduce per iteration vs
  // j+2 for MGS (paper §4.2 / [39]).
  const auto mat = laplace3d(8, 0.02);
  auto collectives_per_iter = [&](OrthoMethod ortho) {
    Problem prob(4, mat);
    IdentityPrecond m;
    GmresOptions opts;
    opts.ortho = ortho;
    opts.rel_tol = 1e-8;
    prob.rt.tracer().reset();
    const auto stats = gmres_solve(prob.a, prob.b, prob.x, m, opts);
    EXPECT_TRUE(stats.converged);
    return static_cast<double>(prob.rt.tracer().phase("").collectives) /
           std::max(1, stats.iterations);
  };
  const double mgs = collectives_per_iter(OrthoMethod::kMgs);
  const double one = collectives_per_iter(OrthoMethod::kOneReduce);
  EXPECT_LT(one, 3.0);   // ~1 fused reduction + restart overheads
  EXPECT_GT(mgs, 2.0 * one);
}

TEST(Gmres, ExactPreconditionerConvergesInOneIteration) {
  // With M = A^-1 (via a fully converged inner AMG), right-preconditioned
  // GMRES needs a single iteration.
  const auto mat = laplace3d(6, 0.5);
  Problem prob(1, mat);
  class ExactPrecond final : public Preconditioner {
   public:
    explicit ExactPrecond(const sparse::Csr& m) : lu_(m) {}
    void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
      auto dense = r.gather();
      lu_.solve_in_place(dense);
      z.scatter(dense);
    }

   private:
    sparse::DenseLu lu_;
  } m(mat);
  GmresOptions opts;
  opts.rel_tol = 1e-10;
  const auto stats = gmres_solve(prob.a, prob.b, prob.x, m, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(stats.iterations, 2);
}

TEST(Gmres, ZeroRhsIsImmediatelyConverged) {
  Problem prob(2, laplace3d(4, 0.1));
  prob.b.fill(0.0);
  IdentityPrecond m;
  const auto stats = gmres_solve(prob.a, prob.b, prob.x, m, GmresOptions{});
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
}

}  // namespace
}  // namespace exw::solver
