// Figure 9: strong scaling of the refined single-turbine case — the
// paper's largest runs (634M nodes on up to 4,320 V100s, 1/6 of Summit).
// Our refined mesh is host-sized; the rank sweep reaches the same
// DoFs-per-GPU regime (down to ~1e3 here vs ~1.5e5 in the paper at peak
// scale, see EXPERIMENTS.md for the mapping).
//
// Expected shape (paper): scaling behavior consistent with the smaller
// meshes but with far greater fluctuation; CPU strong-scaling slope
// drops (-0.79 vs -0.98 for the low-resolution case).

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const double refine = env_refine(0.7);
  const int steps = env_steps(1);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingleRefined, refine);
  std::printf("Fig. 9 — strong scaling, %s (%lld mesh nodes)\n\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()));

  const double scale =
      paper_scale(mesh::TurbineCase::kSingleRefined, sys.total_nodes());
  const auto gpu = scaled_model(perf::MachineModel::summit_gpu(), scale);
  const auto cpu = scaled_model(perf::MachineModel::summit_cpu(), scale);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.picard_iters = 2;  // keep host time bounded; NLI is per-step anyway

  print_scaling_header("GPU (current)");
  std::vector<double> xs, ts;
  for (double nodes : {8.0, 16.0, 32.0, 64.0}) {
    const int ranks = static_cast<int>(nodes * gpu.ranks_per_node);
    const auto r = run_case(sys, cfg, ranks, gpu, steps);
    print_scaling_row("GPU (current)", nodes, r);
    xs.push_back(static_cast<double>(ranks));
    ts.push_back(r.nli_mean);
  }
  const double gpu_slope = scaling_slope(xs, ts);
  std::printf("  -> log-log slope %.2f (ideal -1)\n\n", gpu_slope);

  print_scaling_header("CPU");
  xs.clear();
  ts.clear();
  for (double nodes : {4.0, 8.0}) {
    const int ranks = static_cast<int>(nodes * cpu.ranks_per_node);
    const auto r = run_case(sys, cfg, ranks, cpu, steps);
    print_scaling_row("CPU", nodes, r);
    xs.push_back(static_cast<double>(ranks));
    ts.push_back(r.nli_mean);
  }
  std::printf("  -> log-log slope %.2f (paper: -0.79 for this case, -0.98 "
              "for the low-res case)\n",
              scaling_slope(xs, ts));
  return 0;
}
