// Table 1: NREL 5-MW turbine mesh sizes.
//
// Paper:                 1 Turbine      2 Turbines     1 Turbine Refined
//   Mesh Nodes           23,022,027     44,233,109     634,469,604
//
// We generate geometry-similar meshes at a reduced scale (~1:100 for the
// two low-resolution cases; the refined case uses a smaller extra factor
// than the paper's 27.5x so it stays host-sized — EXPERIMENTS.md records
// the ratios that must hold: single < dual < refined, dual/single ~ 1.9).

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;

int main() {
  const double refine = bench::env_refine(1.0);
  std::printf("Table 1 — turbine mesh sizes (refine factor %.2f)\n\n", refine);
  std::printf("%-20s %12s %12s %12s %14s\n", "NREL5MW Mesh", "Mesh Nodes",
              "Hexes", "Dual Edges", "Paper Nodes");

  const long long paper[3] = {23022027LL, 44233109LL, 634469604LL};
  double nodes[3] = {0, 0, 0};
  int i = 0;
  for (auto which :
       {mesh::TurbineCase::kSingle, mesh::TurbineCase::kDual,
        mesh::TurbineCase::kSingleRefined}) {
    const auto sys = mesh::make_turbine_case(which, refine);
    GlobalIndex edges{0};
    for (const auto& m : sys.meshes) edges += m.num_edges();
    nodes[i] = static_cast<double>(sys.total_nodes().value());
    std::printf("%-20s %12lld %12lld %12lld %14lld\n",
                mesh::case_name(which).c_str(),
                static_cast<long long>(sys.total_nodes().value()),
                static_cast<long long>(sys.total_hexes().value()),
                static_cast<long long>(edges.value()), paper[i]);
    ++i;
  }
  std::printf("\nratios: dual/single = %.2f (paper %.2f), refined/single = "
              "%.2f (paper %.2f)\n",
              nodes[1] / nodes[0],
              static_cast<double>(paper[1]) / static_cast<double>(paper[0]),
              nodes[2] / nodes[0],
              static_cast<double>(paper[2]) / static_cast<double>(paper[0]));
  return 0;
}
