// Ablation (paper §5.1): "the performance of the preconditioner setup
// degrades considerably when the cuSPARSE implementation of sparse
// matrix-matrix multiply (SpGEMM) is used. Thus, we use hypre's
// hash-based SpGEMM implementation, which exhibits superior throughput."
//
// Measures REAL wall time of the two SpGEMM flavors on Galerkin products
// taken from an actual AMG hierarchy of the turbine pressure system,
// plus the modeled AMG-setup difference in the full application.

#include <chrono>
#include <functional>
#include <cstdio>

#include "amg/hierarchy.hpp"
#include "bench_util.hpp"
#include "sparse/spgemm.hpp"

using namespace exw;

namespace {

double wall_seconds(const std::function<void()>& fn, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / reps;
}

}  // namespace

int main() {
  const double refine = bench::env_refine(0.6);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  par::Runtime rt(1);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.picard_iters = 1;
  cfd::Simulation sim(sys, cfg, rt);
  sim.step();

  // Rebuild a hierarchy for the background pressure matrix and time the
  // level products serially (real wall time on this host).
  std::printf("SpGEMM ablation — hash (hypre-style) vs sort-expand "
              "(cuSPARSE-style)\n\n");
  std::printf("%-28s %10s %12s %12s %8s\n", "product", "rows", "hash[s]",
              "sort[s]", "ratio");

  // Synthetic AP-like products at increasing size.
  for (int n : {16, 24, 32}) {
    const auto a = [&] {
      std::vector<LocalIndex> ti, tj;
      std::vector<Real> tv;
      const LocalIndex nn{n * n * n};
      auto id = [&](int i, int j, int k) {
        return static_cast<LocalIndex>((k * n + j) * n + i);
      };
      for (int k = 0; k < n; ++k)
        for (int j = 0; j < n; ++j)
          for (int i = 0; i < n; ++i) {
            const LocalIndex row = id(i, j, k);
            auto nb = [&](int a_, int b_, int c_, Real v) {
              if (a_ < 0 || a_ >= n || b_ < 0 || b_ >= n || c_ < 0 || c_ >= n)
                return;
              ti.push_back(row);
              tj.push_back(id(a_, b_, c_));
              tv.push_back(v);
            };
            nb(i, j, k, 6.0);
            nb(i - 1, j, k, -1.0);
            nb(i + 1, j, k, -1.0);
            nb(i, j - 1, k, -1.0);
            nb(i, j + 1, k, -1.0);
            nb(i, j, k - 1, -1.0);
            nb(i, j, k + 1, -1.0);
          }
      return sparse::Csr::from_triples(nn, nn, std::move(ti), std::move(tj),
                                       std::move(tv));
    }();
    const double t_hash =
        wall_seconds([&] { sparse::spgemm_hash(a, a); }, 3);
    const double t_sort =
        wall_seconds([&] { sparse::spgemm_sort(a, a); }, 3);
    char label[64];
    std::snprintf(label, sizeof(label), "A*A (7-pt Laplacian %d^3)", n);
    std::printf("%-28s %10d %12.5f %12.5f %7.2fx\n", label, a.nrows().value(), t_hash,
                t_sort, t_sort / t_hash);
  }

  // Modeled AMG-setup cost in the application under both flavors.
  std::printf("\nmodeled pressure AMG setup per step (SummitGPU, 24 ranks):\n");
  for (auto algo : {sparse::SpGemmAlgo::kHash, sparse::SpGemmAlgo::kSort}) {
    par::Runtime rt2(24);
    cfd::SimConfig cfg2 = cfd::SimConfig::optimized();
    cfg2.picard_iters = 1;
    cfg2.pressure_amg.spgemm = algo;
    cfd::Simulation sim2(sys, cfg2, rt2);
    rt2.tracer().reset();
    sim2.step();
    std::printf("  %-12s %.4f s\n",
                algo == sparse::SpGemmAlgo::kHash ? "hash" : "sort-expand",
                rt2.tracer().phase("nli/continuity/setup")
                    .modeled_time(perf::MachineModel::summit_gpu()));
  }
  return 0;
}
