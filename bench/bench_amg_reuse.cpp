// AMG setup reuse bench: cold structural setup every solve vs warm
// value-only refresh of a frozen hierarchy (amg::HierarchyCache, the
// setup half of the Picard-loop reuse program; see DESIGN.md §12).
//
// The bench builds a 7-point Laplacian, then produces EXW_BENCH_REFILLS
// value-perturbed versions of it (structure frozen) and runs the
// pressure-preconditioner setup two ways:
//   cold — full AmgHierarchy setup per version (SoC + PMIS + interp +
//          Galerkin SpGEMMs + coarse dense LU),
//   warm — one frozen setup, then refresh_values() per version: pure
//          value streams and frozen-product replays, no graph traversal,
//          no hashing, no sort, no O(n^3) factorization, no steady-state
//          allocation.
// The warm sequence ends back at the first value set, so the refreshed
// hierarchy must match the first cold build bitwise — checked on every
// level operator and on a full V-cycle. It prints one JSON object and
// exits nonzero when any invariant fails:
//   * modeled warm speedup >= EXW_BENCH_MIN_MODELED_SPEEDUP (default 3),
//   * exact warm kernel-count identity (any SpGEMM / sort / LU kernel
//     leaking into the refresh breaks it),
//   * no warm kernel as large as the dense-LU cubic charge (the n^3/3
//     coarse factorization accrues on true rebuilds only),
//   * flat per-refresh allocation counts after steady state,
//   * a cfd A/B: the same turbine-free case stepped with the cache on
//     and off must report GMRES iteration counts within +-1 per solve.
//
// Knobs: EXW_BENCH_N (cells/side), EXW_BENCH_RANKS, EXW_BENCH_REFILLS,
// EXW_BENCH_MIN_MODELED_SPEEDUP (0 disables).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <memory>
#include <vector>

#include "amg/hierarchy.hpp"
#include "bench_util.hpp"
#include "cfd/simulation.hpp"
#include "common/rng.hpp"
#include "mesh/generators.hpp"
#include "perf/tracer.hpp"

// Heap probe: deltas of bench::alloc_count() (the purity sanitizer's
// process-wide interposition — see perf/purity.hpp) let the steady-state
// warm refresh be checked for allocation growth. The hand-rolled
// operator-new override this bench used to carry is gone: one allocator
// owner per program.

namespace exw {
namespace {

/// 7-point Laplacian (+small shift) scaled by `s`: the value sets the
/// warm path cycles through. Structure is independent of `s`.
sparse::Csr laplace3d_scaled(int n, Real s) {
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  auto id = [&](int i, int j, int k) {
    return static_cast<LocalIndex>((k * n + j) * n + i);
  };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const LocalIndex row = id(i, j, k);
        Real diag = 0.01;
        auto nb = [&](int a, int b, int c) {
          if (a < 0 || a >= n || b < 0 || b >= n || c < 0 || c >= n) return;
          ti.push_back(row);
          tj.push_back(id(a, b, c));
          tv.push_back(-s);
          diag += 1.0;
        };
        nb(i - 1, j, k);
        nb(i + 1, j, k);
        nb(i, j - 1, k);
        nb(i, j + 1, k);
        nb(i, j, k - 1);
        nb(i, j, k + 1);
        ti.push_back(row);
        tj.push_back(row);
        tv.push_back(diag * s);
      }
    }
  }
  const LocalIndex nn{n * n * n};
  return sparse::Csr::from_triples(nn, nn, std::move(ti), std::move(tj),
                                   std::move(tv));
}

bool same_span(std::span<const Real> a, std::span<const Real> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Real)) == 0);
}

bool bitwise_equal(const linalg::ParCsr& a, const linalg::ParCsr& b) {
  for (RankId r{0}; r.value() < a.nranks(); ++r) {
    if (!same_span(a.block(r).diag.vals().raw(), b.block(r).diag.vals().raw()) ||
        !same_span(a.block(r).offd.vals().raw(), b.block(r).offd.vals().raw())) {
      return false;
    }
  }
  return true;
}

long env_long(const char* name, long fallback) {
  if (const char* s = std::getenv(name)) return std::atol(s);
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* s = std::getenv(name)) return std::atof(s);
  return fallback;
}

/// cfd A/B: one background box stepped with the AMG cache on vs off.
/// Returns false (and prints to stderr) if pressure iteration counts
/// drift by more than one iteration per solve, or if the cached run does
/// not actually run the refresh path.
bool cfd_iterations_stay_flat(int* iters_on, int* iters_off) {
  mesh::OversetSystem sys_on, sys_off;
  for (mesh::OversetSystem* sys : {&sys_on, &sys_off}) {
    mesh::BackgroundParams bg;
    bg.nx = bg.ny = bg.nz = GlobalIndex{6};
    sys->meshes.push_back(mesh::make_background_mesh(bg, "bg"));
    sys->motion.push_back(mesh::RotationSpec{});
    sys->name = "bench";
  }
  par::Runtime rt_on(4), rt_off(4);
  cfd::SimConfig cfg;
  cfg.picard_iters = 4;
  cfg.use_amg_cache = true;
  cfd::Simulation sim_on(sys_on, cfg, rt_on);
  cfg.use_amg_cache = false;
  cfd::Simulation sim_off(sys_off, cfg, rt_off);

  *iters_on = 0;
  *iters_off = 0;
  bool ok = true;
  for (int s = 0; s < 2; ++s) {
    sim_on.step();
    sim_off.step();
    const int on = sim_on.continuity_stats().gmres_iterations;
    const int off = sim_off.continuity_stats().gmres_iterations;
    *iters_on += on;
    *iters_off += off;
    if (std::abs(on - off) > cfg.picard_iters) {
      std::fprintf(stderr,
                   "FAIL: cached pressure iterations drifted at step %d: "
                   "%d (cache on) vs %d (cache off)\n", s, on, off);
      ok = false;
    }
    if (sim_on.continuity_stats().amg_refreshes == 0) {
      std::fprintf(stderr, "FAIL: cached run never refreshed at step %d\n", s);
      ok = false;
    }
  }
  return ok;
}

int run() {
  const int n = static_cast<int>(env_long("EXW_BENCH_N", 10));
  const int nranks = static_cast<int>(env_long("EXW_BENCH_RANKS", 8));
  const int refills = static_cast<int>(env_long("EXW_BENCH_REFILLS", 12));
  const double min_modeled =
      env_double("EXW_BENCH_MIN_MODELED_SPEEDUP", 3.0);

  par::Runtime rt(nranks);
  const auto rows = par::RowPartition::even(
      GlobalIndex{static_cast<std::int64_t>(n) * n * n}, nranks);
  // Value set it: scale 1 + 0.37*it on a frozen structure; the warm loop
  // visits 1..refills-1 and then returns to set 0 for the bitwise check.
  auto matrix_for = [&](int it) {
    return linalg::ParCsr::from_serial(
        rt, laplace3d_scaled(n, 1.0 + 0.37 * static_cast<Real>(it)), rows,
        rows);
  };
  amg::AmgConfig cfg;
  // A realistic direct-solve threshold: the coarse grid scales with the
  // fine grid, so the dense-LU cubic charge dominates every linear
  // streaming kernel and its absence from the warm path is observable
  // (the zero-n^3 check below) at any EXW_BENCH_N.
  cfg.max_coarse_size = GlobalIndex{512};

  // --- cold: full structural setup per value set ------------------------
  rt.tracer().reset();
  rt.tracer().push_phase("cold");
  const auto c0 = std::chrono::steady_clock::now();
  std::unique_ptr<amg::AmgHierarchy> cold_ref;  // the set-0 build
  for (int it = 0; it < refills; ++it) {
    auto h = std::make_unique<amg::AmgHierarchy>(matrix_for(it), cfg);
    if (it == 0) cold_ref = std::move(h);
  }
  const auto c1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  // --- warm: one frozen setup, then value-only refreshes ----------------
  rt.tracer().push_phase("freeze");
  const auto f0 = std::chrono::steady_clock::now();
  amg::AmgHierarchy warm(matrix_for(0), cfg, /*freeze_replay=*/true);
  const auto f1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  rt.tracer().push_phase("warm");
  std::vector<std::size_t> allocs_per_refresh;
  const auto w0 = std::chrono::steady_clock::now();
  for (int it = 1; it <= refills; ++it) {
    const auto a = matrix_for(it < refills ? it : 0);
    const auto a0 = bench::alloc_count();
    warm.refresh_values(a);
    allocs_per_refresh.push_back(
        static_cast<std::size_t>(bench::alloc_count() - a0));
  }
  const auto w1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  // --- bitwise: refreshed-back-to-set-0 vs the cold set-0 build ---------
  if (warm.num_levels() != cold_ref->num_levels()) {
    std::fprintf(stderr, "FAIL: level counts differ (%d vs %d)\n",
                 warm.num_levels(), cold_ref->num_levels());
    return 1;
  }
  for (int l = 0; l < warm.num_levels(); ++l) {
    if (!bitwise_equal(warm.level(l).a, cold_ref->level(l).a)) {
      std::fprintf(stderr, "FAIL: level %d operator differs from the cold "
                           "rebuild after the refresh round trip\n", l);
      return 1;
    }
  }
  linalg::ParVector b(rt, rows), x_warm(rt, rows), x_cold(rt, rows);
  {
    Rng rng(17);
    RealVector g(static_cast<std::size_t>(n) * n * n);
    for (auto& v : g) v = rng.uniform(-1.0, 1.0);
    b.scatter(g);
  }
  x_warm.fill(0.0);
  x_cold.fill(0.0);
  warm.vcycle(b, x_warm);
  cold_ref->vcycle(b, x_cold);
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& lw = x_warm.local(r);
    const auto& lc = x_cold.local(r);
    if (!same_span(lw, lc)) {
      std::fprintf(stderr, "FAIL: V-cycle differs from the cold rebuild "
                           "on rank %d\n", r.value());
      return 1;
    }
  }

  const auto& cold_ph = rt.tracer().phase("cold");
  const auto& warm_ph = rt.tracer().phase("warm");
  const auto& freeze_ph = rt.tracer().phase("freeze");
  const auto model = perf::MachineModel::summit_gpu();
  const double cold_wall = std::chrono::duration<double>(c1 - c0).count();
  const double warm_wall = std::chrono::duration<double>(w1 - w0).count();
  const double freeze_wall = std::chrono::duration<double>(f1 - f0).count();
  const double wall_speedup = cold_wall / std::max(warm_wall, 1e-12);
  const double modeled_speedup = cold_ph.modeled_time(model) /
                                 std::max(warm_ph.modeled_time(model), 1e-12);

  // Exact warm charge accounting (amg/hierarchy.cpp refresh_values +
  // amg/cache.cpp replay_level + assembly refill): per rank per refresh,
  // 1 level-0 value copy plus, per level transition, a fine-value gather,
  // an AP replay, a coarse-term replay, and the 2 fixed refill kernels
  // (stacked stream + scatter); each transport send slice charges one
  // kernel and one message. Setup work — SpGEMM, sort, PMIS sweeps, the
  // dense-LU factorization — charges kernels outside this identity, so
  // any leak into the refresh makes the excess nonzero.
  const int transitions = warm.num_levels() - 1;
  const long warm_expected =
      warm_ph.total_messages() +
      static_cast<long>(nranks) * refills * (1L + 5L * transitions);
  const long warm_excess = warm_ph.total_kernels() - warm_expected;

  // The coarse dense-LU factorization charge (n^3/3 cubic term) must
  // accrue on true rebuilds only: no single warm kernel may be as large.
  const double nc = static_cast<double>(
      warm.level(warm.num_levels() - 1).a.global_rows().value());
  const double lu_cubic = nc * nc * nc / 3.0;
  const bool warm_has_cubic = warm_ph.max_kernel_flops() >= lu_cubic;

  bool alloc_growth = false;
  for (std::size_t i = 2; i < allocs_per_refresh.size(); ++i) {
    if (allocs_per_refresh[i] > allocs_per_refresh[1]) alloc_growth = true;
  }
  // Hard floor (purity builds only): the warm refresh region must have
  // recorded zero non-allowlisted allocations across every refresh.
  const long long warm_disallowed = bench::disallowed_allocs("amg-refresh");

  int cfd_iters_on = 0, cfd_iters_off = 0;
  const bool cfd_flat = cfd_iterations_stay_flat(&cfd_iters_on,
                                                 &cfd_iters_off);

  std::printf("{\n");
  std::printf("  \"bench\": \"amg_reuse\",\n");
  std::printf("  \"rows\": %d, \"ranks\": %d, \"refreshes\": %d, "
              "\"levels\": %d,\n",
              n * n * n, nranks, refills, warm.num_levels());
  std::printf("  \"cold\": {\"wall_s\": %.6f, \"modeled_s\": %.6f, "
              "\"kernels\": %ld, \"flops\": %.3e, \"bytes\": %.3e},\n",
              cold_wall, cold_ph.modeled_time(model), cold_ph.total_kernels(),
              cold_ph.total_flops(), cold_ph.total_bytes());
  std::printf("  \"freeze\": {\"wall_s\": %.6f, \"modeled_s\": %.6f},\n",
              freeze_wall, freeze_ph.modeled_time(model));
  std::printf("  \"warm\": {\"wall_s\": %.6f, \"modeled_s\": %.6f, "
              "\"kernels\": %ld, \"flops\": %.3e, \"bytes\": %.3e},\n",
              warm_wall, warm_ph.modeled_time(model), warm_ph.total_kernels(),
              warm_ph.total_flops(), warm_ph.total_bytes());
  std::printf("  \"wall_speedup\": %.2f, \"modeled_speedup\": %.2f,\n",
              wall_speedup, modeled_speedup);
  std::printf("  \"warm_excess_kernels\": %ld,\n", warm_excess);
  std::printf("  \"warm_max_kernel_flops\": %.3e, \"lu_cubic_flops\": "
              "%.3e,\n",
              warm_ph.max_kernel_flops(), lu_cubic);
  std::printf("  \"warm_allocs_per_refresh\": [");
  for (std::size_t i = 0; i < allocs_per_refresh.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", allocs_per_refresh[i]);
  }
  std::printf("],\n");
  std::printf("  \"alloc_steady_state\": %s,\n",
              alloc_growth ? "false" : "true");
  std::printf("  \"warm_disallowed_allocs\": %lld,\n", warm_disallowed);
  std::printf("  \"cfd_pressure_iters\": {\"cache_on\": %d, \"cache_off\": "
              "%d}\n",
              cfd_iters_on, cfd_iters_off);
  std::printf("}\n");

  if (warm_excess != 0) {
    std::fprintf(stderr, "FAIL: warm refresh charged %ld unexpected kernels "
                         "(%ld total, %ld expected) - setup work leaked "
                         "into the value path\n",
                 warm_excess, warm_ph.total_kernels(), warm_expected);
    return 1;
  }
  if (warm_has_cubic) {
    std::fprintf(stderr, "FAIL: warm refresh charged a kernel of %.3e flops "
                         ">= the dense-LU cubic charge %.3e\n",
                 warm_ph.max_kernel_flops(), lu_cubic);
    return 1;
  }
  if (alloc_growth) {
    std::fprintf(stderr, "FAIL: warm refresh allocation count grows after "
                         "steady state\n");
    return 1;
  }
  if (perf::purity::enabled() && warm_disallowed != 0) {
    std::fprintf(stderr, "FAIL: warm refresh made %lld non-allowlisted "
                         "allocations inside the amg-refresh purity region\n",
                 warm_disallowed);
    return 1;
  }
  if (min_modeled > 0 && modeled_speedup < min_modeled) {
    std::fprintf(stderr, "FAIL: modeled warm setup speedup %.2f < required "
                         "%.2f\n", modeled_speedup, min_modeled);
    return 1;
  }
  if (!cfd_flat) {
    return 1;
  }
  if (!rt.transport().drained()) {
    std::fprintf(stderr, "FAIL: transport not drained\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace exw

int main() { return exw::run(); }
