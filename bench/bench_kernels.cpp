// Kernel microbenchmarks (google-benchmark): REAL wall time on this host
// for the primitives the paper's pipeline is built from — SpMV,
// stable_sort_by_key / reduce_by_key (Algorithms 1-2), hash vs sort
// SpGEMM, local assembly fill, smoother sweeps, graph partitioning.

#include <benchmark/benchmark.h>

#include "amg/smoothers.hpp"
#include "assembly/graph.hpp"
#include "common/rng.hpp"
#include "mesh/generators.hpp"
#include "part/graph_partition.hpp"
#include "part/rcb.hpp"
#include "sparse/prim.hpp"
#include "sparse/spgemm.hpp"

namespace {

using namespace exw;

sparse::Csr laplacian(int n) {
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  auto id = [&](int i, int j, int k) {
    return static_cast<LocalIndex>((k * n + j) * n + i);
  };
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i) {
        const LocalIndex row = id(i, j, k);
        auto nb = [&](int a, int b, int c, Real v) {
          if (a < 0 || a >= n || b < 0 || b >= n || c < 0 || c >= n) return;
          ti.push_back(row);
          tj.push_back(id(a, b, c));
          tv.push_back(v);
        };
        nb(i, j, k, 6.01);
        nb(i - 1, j, k, -1.0);
        nb(i + 1, j, k, -1.0);
        nb(i, j - 1, k, -1.0);
        nb(i, j + 1, k, -1.0);
        nb(i, j, k - 1, -1.0);
        nb(i, j, k + 1, -1.0);
      }
  const LocalIndex nn{n * n * n};
  return sparse::Csr::from_triples(nn, nn, std::move(ti), std::move(tj),
                                   std::move(tv));
}

void BM_SpMV(benchmark::State& state) {
  const auto a = laplacian(static_cast<int>(state.range(0)));
  RealVector x(static_cast<std::size_t>(a.ncols()), 1.0);
  RealVector y(static_cast<std::size_t>(a.nrows()), 0.0);
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.nnz()));
}
BENCHMARK(BM_SpMV)->Arg(16)->Arg(32)->Arg(48);

void BM_StableSortByKey(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<GlobalIndex> rows0(n), cols0(n);
  std::vector<Real> vals0(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows0[i] = static_cast<GlobalIndex>(rng.index(n / 9 + 1));
    cols0[i] = static_cast<GlobalIndex>(rng.index(n / 9 + 1));
    vals0[i] = rng.uniform();
  }
  for (auto _ : state) {
    auto rows = rows0;
    auto cols = cols0;
    auto vals = vals0;
    sparse::prim::stable_sort_by_key(rows, cols, vals);
    sparse::prim::reduce_by_key(rows, cols, vals);
    benchmark::DoNotOptimize(vals.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_StableSortByKey)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_SpGemmHash(benchmark::State& state) {
  const auto a = laplacian(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = sparse::spgemm_hash(a, a);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpGemmHash)->Arg(16)->Arg(24)->Arg(32);

void BM_SpGemmSort(benchmark::State& state) {
  const auto a = laplacian(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = sparse::spgemm_sort(a, a);
    benchmark::DoNotOptimize(c.nnz());
  }
}
BENCHMARK(BM_SpGemmSort)->Arg(16)->Arg(24)->Arg(32);

void BM_LocalAssemblyFill(benchmark::State& state) {
  // Stage-2 fill rate on a turbine-like mesh at one rank.
  mesh::BackgroundParams bg;
  bg.nx = bg.ny = bg.nz = GlobalIndex{state.range(0)};
  const auto db = mesh::make_background_mesh(bg, "bg");
  const auto layout =
      assembly::make_layout(db, 1, assembly::PartitionMethod::kRcb);
  std::vector<std::uint8_t> dirichlet(static_cast<std::size_t>(db.num_nodes()), 0);
  assembly::EquationGraph graph(db, layout, dirichlet);
  for (auto _ : state) {
    graph.zero_values();
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      const Real g = db.edges[e].coeff;
      graph.add_edge(e, {g, -g, -g, g}, {0.1, -0.1});
    }
    benchmark::DoNotOptimize(graph.rank(RankId{0}).owned.vals.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.num_edges().value()) * 4);
}
BENCHMARK(BM_LocalAssemblyFill)->Arg(16)->Arg(28);

void BM_LocalAssemblyFillAtomic(benchmark::State& state) {
  mesh::BackgroundParams bg;
  bg.nx = bg.ny = bg.nz = GlobalIndex{state.range(0)};
  const auto db = mesh::make_background_mesh(bg, "bg");
  const auto layout =
      assembly::make_layout(db, 1, assembly::PartitionMethod::kRcb);
  std::vector<std::uint8_t> dirichlet(static_cast<std::size_t>(db.num_nodes()), 0);
  assembly::EquationGraph graph(db, layout, dirichlet);
  for (auto _ : state) {
    graph.zero_values();
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      const Real g = db.edges[e].coeff;
      graph.add_edge(e, {g, -g, -g, g}, {0.1, -0.1}, /*atomic=*/true);
    }
    benchmark::DoNotOptimize(graph.rank(RankId{0}).owned.vals.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.num_edges().value()) * 4);
}
BENCHMARK(BM_LocalAssemblyFillAtomic)->Arg(16)->Arg(28);

void BM_TwoStageGsSweep(benchmark::State& state) {
  const auto mat = laplacian(static_cast<int>(state.range(0)));
  par::Runtime rt(1);
  const auto rows = par::RowPartition::even(GlobalIndex{mat.nrows().value()}, 1);
  const auto a = linalg::ParCsr::from_serial(rt, mat, rows, rows);
  amg::Smoother smoother(a, amg::SmootherType::kTwoStageGs, 2, 1.0);
  linalg::ParVector b(rt, rows), x(rt, rows);
  b.fill(1.0);
  for (auto _ : state) {
    smoother.apply(b, x, 1);
    benchmark::DoNotOptimize(x.local(RankId{0}).data());
  }
}
BENCHMARK(BM_TwoStageGsSweep)->Arg(24)->Arg(40);

void BM_GraphPartition(benchmark::State& state) {
  mesh::BackgroundParams bg;
  bg.nx = bg.ny = bg.nz = GlobalIndex{24};
  const auto db = mesh::make_background_mesh(bg, "bg");
  std::vector<LocalIndex> ei(db.edges.size()), ej(db.edges.size());
  for (std::size_t e = 0; e < db.edges.size(); ++e) {
    ei[e] = checked_narrow<LocalIndex>(db.edges[e].a);
    ej[e] = checked_narrow<LocalIndex>(db.edges[e].b);
  }
  const auto g = part::graph_from_edges(
      checked_narrow<LocalIndex>(db.num_nodes()), ei, ej, {});
  for (auto _ : state) {
    auto parts = part::graph_partition(g, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(parts.data());
  }
}
BENCHMARK(BM_GraphPartition)->Arg(8)->Arg(32);

void BM_Rcb(benchmark::State& state) {
  mesh::BackgroundParams bg;
  bg.nx = bg.ny = bg.nz = GlobalIndex{24};
  const auto db = mesh::make_background_mesh(bg, "bg");
  for (auto _ : state) {
    auto parts =
        part::rcb_partition(db.coords, {}, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(parts.data());
  }
}
BENCHMARK(BM_Rcb)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
