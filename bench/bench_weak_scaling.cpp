// Weak scaling (paper §6): "we estimate that a mesh with approximately
// four billion nodes would display similar strong scaling characteristics
// on the entire Summit machine. Moreover, a mesh with 20-30 billion mesh
// nodes would require exascale compute resources."
//
// The paper approximates weak scaling by keeping mesh nodes per GPU
// consistent across its three strong-scaling studies. This bench does it
// directly: the mesh is refined together with the rank count so each
// rank holds a constant share, and the modeled NLI time per step should
// stay flat if the application weak-scales.

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const int steps = env_steps(1);
  std::printf("Weak scaling — constant mesh nodes per rank (refine and "
              "ranks grow together)\n\n");
  std::printf("%8s %8s %12s %14s %12s %8s\n", "refine", "ranks", "nodes",
              "nodes/rank", "NLI[s/step]", "prs_it");

  double first = 0;
  double last = 0;
  // Each refine step multiplies node count by ~2 (1.26^3); ranks double.
  const double refines[4] = {0.40, 0.504, 0.635, 0.80};
  const int ranks[4] = {6, 12, 24, 48};
  // One scale factor for the whole sweep (from the largest case), so the
  // modeled work per rank is genuinely constant across the series.
  double scale = 0;
  {
    auto probe = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refines[3]);
    scale = paper_scale(mesh::TurbineCase::kSingle, probe.total_nodes());
  }
  for (int i = 0; i < 4; ++i) {
    auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refines[i]);
    const auto gpu = scaled_model(perf::MachineModel::summit_gpu(), scale);
    cfd::SimConfig cfg = cfd::SimConfig::optimized();
    cfg.picard_iters = 2;
    const auto r = run_case(sys, cfg, ranks[i], gpu, steps);
    std::printf("%8.3f %8d %12lld %14.0f %12.4f %8d\n", refines[i], ranks[i],
                static_cast<long long>(sys.total_nodes().value()),
                static_cast<double>(sys.total_nodes().value()) / ranks[i], r.nli_mean,
                r.prs_iters);
    if (i == 0) first = r.nli_mean;
    last = r.nli_mean;
  }
  std::printf("\nweak-scaling efficiency over 8x growth: %.0f%% (flat = "
              "100%%)\n", 100.0 * first / last);
  return 0;
}
