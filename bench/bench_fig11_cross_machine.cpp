// Figure 11: Summit vs Eagle cross-machine comparison on the
// low-resolution single-turbine mesh. Identical software; the machines
// differ in GPUs per node (6 SXM2 vs 2 PCIe), MPI stack, and host
// architecture.
//
// Expected shape (paper): "72 GPUs on Eagle is nearly 40% faster than
// 144 GPUs on Summit", with the gains made almost exclusively in the
// pressure-Poisson AMG setup (1.3 s vs 2.0 s) and solve (0.8 s vs
// 1.1 s).
//
// Because the recorded work is machine-independent, one run per GPU
// count prices both machines.

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const double refine = env_refine(0.8);
  const int steps = env_steps(1);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("Fig. 11 — Summit vs Eagle, %s (%lld mesh nodes)\n\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()));

  const double scale =
      paper_scale(mesh::TurbineCase::kSingle, sys.total_nodes());
  const auto summit = scaled_model(perf::MachineModel::summit_gpu(), scale);
  const auto eagle = scaled_model(perf::MachineModel::eagle_gpu(), scale);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.picard_iters = 4;

  std::printf("%6s %14s %14s | %10s %10s | %10s %10s\n", "GPUs",
              "Summit NLI[s]", "Eagle NLI[s]", "setupS", "setupE", "solveS",
              "solveE");
  double summit_at_144 = 0, eagle_at_72 = 0;
  for (int gpus : {12, 24, 48, 72, 96, 144}) {
    par::Runtime rt(gpus);
    cfd::Simulation sim(sys, cfg, rt);
    double nli_s = 0, nli_e = 0, setup_s = 0, setup_e = 0, solve_s = 0,
           solve_e = 0;
    for (int s = 0; s < steps; ++s) {
      rt.tracer().reset();
      sim.step();
      auto& tr = rt.tracer();
      nli_s = tr.phase("nli").modeled_time(summit);
      nli_e = tr.phase("nli").modeled_time(eagle);
      setup_s = tr.phase("nli/continuity/setup").modeled_time(summit);
      setup_e = tr.phase("nli/continuity/setup").modeled_time(eagle);
      solve_s = tr.phase("nli/continuity/solve").modeled_time(summit);
      solve_e = tr.phase("nli/continuity/solve").modeled_time(eagle);
    }
    std::printf("%6d %14.4f %14.4f | %10.4f %10.4f | %10.4f %10.4f\n", gpus,
                nli_s, nli_e, setup_s, setup_e, solve_s, solve_e);
    if (gpus == 144) summit_at_144 = nli_s;
    if (gpus == 72) eagle_at_72 = nli_e;
  }
  std::printf("\nEagle@72GPUs vs Summit@144GPUs: %.0f%% %s (paper: Eagle "
              "~40%% faster with half the GPUs)\n",
              100.0 * std::abs(summit_at_144 - eagle_at_72) /
                  std::max(summit_at_144, 1e-12),
              eagle_at_72 < summit_at_144 ? "faster" : "slower");

  // --- one-reduce vs pipelined GMRES A/B --------------------------------
  // The pipelined (depth-1) variant moves the per-iteration fused
  // reduction off the blocking ledger (its bandwidth is still priced, as
  // an overlapped collective), so its blocking-collective count per GMRES
  // iteration must be strictly lower, and the latency term it removes
  // grows with log2(R) — the strong-scaling knee (the rank count past
  // which modeled time stops improving) must not move left.
  std::printf("\nOne-reduce vs pipelined GMRES (Summit model):\n");
  std::printf("%6s %12s %12s | %12s %12s | %8s %8s | %7s %7s\n", "GPUs",
              "one[s]", "pipe[s]", "bcoll/it 1r", "bcoll/it pp", "ovl 1r",
              "ovl pp", "it 1r", "it pp");
  struct Variant {
    std::vector<double> nli;
    std::vector<double> bcoll_per_iter;
  };
  Variant one, pipe;
  const std::vector<int> gpu_list = {12, 24, 48, 72, 96, 144};
  for (int gpus : gpu_list) {
    double nli[2], bpi[2];
    long ovl[2];
    int its[2];
    for (int variant = 0; variant < 2; ++variant) {
      cfd::SimConfig vcfg = cfg;
      const auto ortho = variant == 0 ? solver::OrthoMethod::kOneReduce
                                      : solver::OrthoMethod::kPipelined;
      vcfg.pressure_gmres.ortho = ortho;
      vcfg.momentum_gmres.ortho = ortho;
      par::Runtime rt(gpus);
      cfd::Simulation sim(sys, vcfg, rt);
      rt.tracer().reset();
      sim.step();
      const auto& nli_ph = rt.tracer().phase("nli");
      const int iters = sim.continuity_stats().gmres_iterations +
                        sim.momentum_stats().gmres_iterations;
      nli[variant] = nli_ph.modeled_time(summit);
      bpi[variant] = static_cast<double>(nli_ph.collectives) /
                     std::max(1, iters);
      ovl[variant] = nli_ph.overlapped_collectives;
      its[variant] = iters;
    }
    std::printf("%6d %12.4f %12.4f | %12.2f %12.2f | %8ld %8ld | %7d %7d\n",
                gpus, nli[0], nli[1], bpi[0], bpi[1], ovl[0], ovl[1], its[0],
                its[1]);
    one.nli.push_back(nli[0]);
    one.bcoll_per_iter.push_back(bpi[0]);
    pipe.nli.push_back(nli[1]);
    pipe.bcoll_per_iter.push_back(bpi[1]);
  }

  // Knee: the rank count with the best modeled time (after it, adding
  // ranks no longer pays).
  auto knee = [&](const std::vector<double>& nli) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < nli.size(); ++i) {
      if (nli[i] < nli[best]) best = i;
    }
    return gpu_list[best];
  };
  const int knee_one = knee(one.nli);
  const int knee_pipe = knee(pipe.nli);
  std::printf("\nknee: one-reduce %d GPUs, pipelined %d GPUs\n", knee_one,
              knee_pipe);

  bool ok = true;
  for (std::size_t i = 0; i < gpu_list.size(); ++i) {
    if (!(pipe.bcoll_per_iter[i] < one.bcoll_per_iter[i])) {
      std::fprintf(stderr, "FAIL: pipelined blocking collectives/iter %.2f "
                           "not strictly below one-reduce %.2f at %d GPUs\n",
                   pipe.bcoll_per_iter[i], one.bcoll_per_iter[i],
                   gpu_list[i]);
      ok = false;
    }
  }
  if (knee_pipe < knee_one) {
    std::fprintf(stderr, "FAIL: pipelined knee (%d GPUs) moved left of "
                         "one-reduce (%d GPUs)\n", knee_pipe, knee_one);
    ok = false;
  }
  return ok ? 0 : 1;
}
