// Figure 11: Summit vs Eagle cross-machine comparison on the
// low-resolution single-turbine mesh. Identical software; the machines
// differ in GPUs per node (6 SXM2 vs 2 PCIe), MPI stack, and host
// architecture.
//
// Expected shape (paper): "72 GPUs on Eagle is nearly 40% faster than
// 144 GPUs on Summit", with the gains made almost exclusively in the
// pressure-Poisson AMG setup (1.3 s vs 2.0 s) and solve (0.8 s vs
// 1.1 s).
//
// Because the recorded work is machine-independent, one run per GPU
// count prices both machines.

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const double refine = env_refine(0.8);
  const int steps = env_steps(1);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("Fig. 11 — Summit vs Eagle, %s (%lld mesh nodes)\n\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()));

  const double scale =
      paper_scale(mesh::TurbineCase::kSingle, sys.total_nodes());
  const auto summit = scaled_model(perf::MachineModel::summit_gpu(), scale);
  const auto eagle = scaled_model(perf::MachineModel::eagle_gpu(), scale);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.picard_iters = 4;

  std::printf("%6s %14s %14s | %10s %10s | %10s %10s\n", "GPUs",
              "Summit NLI[s]", "Eagle NLI[s]", "setupS", "setupE", "solveS",
              "solveE");
  double summit_at_144 = 0, eagle_at_72 = 0;
  for (int gpus : {12, 24, 48, 72, 96, 144}) {
    par::Runtime rt(gpus);
    cfd::Simulation sim(sys, cfg, rt);
    double nli_s = 0, nli_e = 0, setup_s = 0, setup_e = 0, solve_s = 0,
           solve_e = 0;
    for (int s = 0; s < steps; ++s) {
      rt.tracer().reset();
      sim.step();
      auto& tr = rt.tracer();
      nli_s = tr.phase("nli").modeled_time(summit);
      nli_e = tr.phase("nli").modeled_time(eagle);
      setup_s = tr.phase("nli/continuity/setup").modeled_time(summit);
      setup_e = tr.phase("nli/continuity/setup").modeled_time(eagle);
      solve_s = tr.phase("nli/continuity/solve").modeled_time(summit);
      solve_e = tr.phase("nli/continuity/solve").modeled_time(eagle);
    }
    std::printf("%6d %14.4f %14.4f | %10.4f %10.4f | %10.4f %10.4f\n", gpus,
                nli_s, nli_e, setup_s, setup_e, solve_s, solve_e);
    if (gpus == 144) summit_at_144 = nli_s;
    if (gpus == 72) eagle_at_72 = nli_e;
  }
  std::printf("\nEagle@72GPUs vs Summit@144GPUs: %.0f%% %s (paper: Eagle "
              "~40%% faster with half the GPUs)\n",
              100.0 * std::abs(summit_at_144 - eagle_at_72) /
                  std::max(summit_at_144, 1e-12),
              eagle_at_72 < summit_at_144 ? "faster" : "slower");
  return 0;
}
