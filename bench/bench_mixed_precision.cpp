// Mixed-precision preconditioning A/B (DESIGN.md §16): the optimized
// configuration with FP32 preconditioner storage vs the same run pinned
// to full FP64, on the single-turbine case.
//
// The per-precision value-byte ledger (Tracer::kernel_split_prec) and the
// nested "precond" phases let the bench isolate exactly the streams the
// mixed path claims to halve: smoother/V-cycle value traffic, halo
// payloads, and coarse-level collective payloads inside the
// preconditioner applications. It prints one JSON object and exits
// nonzero when any floor fails:
//   * modeled preconditioner value-stream reduction (FP64 bytes / mixed
//     bytes) >= EXW_BENCH_MIN_STREAM_REDUCTION (default 1.8; the
//     demote/promote boundary copies keep it under the ideal 2x),
//   * halo + collective payload reduction inside the preconditioner
//     >= EXW_BENCH_MIN_PAYLOAD_REDUCTION (default 1.5),
//   * iteration neutrality: pressure and momentum GMRES iterations under
//     the FP32 preconditioner within +1 *per solve* of the FP64 run (the
//     per-step stats aggregate picard_iters pressure solves and
//     3 * picard_iters momentum lane-solves),
//   * the mixed run's preconditioner work actually carries an FP32
//     ledger (guards against silently running everything in FP64).
//
// Knobs: EXW_BENCH_REFINE (0.4), EXW_BENCH_STEPS (2), EXW_BENCH_RANKS
// (8), and the two floor overrides above (0 disables).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace exw {
namespace {

double env_double(const char* name, double fallback) {
  if (const char* s = std::getenv(name)) return std::atof(s);
  return fallback;
}

/// Work recorded inside the leaf "precond" phases (every preconditioner
/// application pushes one; nesting charges work to each open phase, so
/// summing only the leaves avoids double counting).
struct PrecondWork {
  double value_f64 = 0;
  double value_f32 = 0;
  double value_total = 0;
  double msg_bytes = 0;
  double coll_bytes = 0;
  long blocking_colls = 0;
};

PrecondWork precond_work(perf::Tracer& tr) {
  PrecondWork w;
  const std::string leaf = "precond";
  for (const auto& name : tr.phase_names()) {
    if (name.size() < leaf.size() ||
        name.compare(name.size() - leaf.size(), leaf.size(), leaf) != 0) {
      continue;
    }
    if (name.size() > leaf.size() &&
        name[name.size() - leaf.size() - 1] != '/') {
      continue;  // e.g. "...precond_setup" is not a precond leaf
    }
    const auto& ph = tr.phase(name);
    w.value_f64 += ph.total_value_bytes_f64();
    w.value_f32 += ph.total_value_bytes_f32();
    w.value_total += ph.total_value_bytes();
    for (const auto& rw : ph.rank) w.msg_bytes += rw.msg_bytes;
    w.coll_bytes += ph.coll_bytes + ph.overlapped_coll_bytes;
    w.blocking_colls += ph.collectives;
  }
  return w;
}

struct RunOut {
  PrecondWork precond;
  double nli_modeled = 0;
  std::vector<int> prs_iters;  ///< per step
  std::vector<int> mom_iters;
};

RunOut run_variant(Precision p, double refine, int nranks, int steps,
                   const perf::MachineModel& model) {
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  par::Runtime rt(nranks);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.precond_precision = p;
  cfd::Simulation sim(sys, cfg, rt);
  RunOut out;
  rt.tracer().reset();
  for (int s = 0; s < steps; ++s) {
    sim.step();
    out.prs_iters.push_back(sim.continuity_stats().gmres_iterations);
    out.mom_iters.push_back(sim.momentum_stats().gmres_iterations);
  }
  out.precond = precond_work(rt.tracer());
  out.nli_modeled = rt.tracer().phase("nli").modeled_time(model);
  return out;
}

void print_iters(const char* key, const std::vector<int>& v) {
  std::printf("  \"%s\": [", key);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", v[i]);
  }
  std::printf("],\n");
}

int run() {
  const double refine = bench::env_refine(0.4);
  const int steps = bench::env_steps(2);
  int nranks = 8;
  if (const char* s = std::getenv("EXW_BENCH_RANKS")) nranks = std::atoi(s);
  const double min_stream = env_double("EXW_BENCH_MIN_STREAM_REDUCTION", 1.8);
  const double min_payload =
      env_double("EXW_BENCH_MIN_PAYLOAD_REDUCTION", 1.5);

  const auto model = perf::MachineModel::summit_gpu();
  const auto full = run_variant(Precision::kF64, refine, nranks, steps, model);
  const auto mixed =
      run_variant(Precision::kF32, refine, nranks, steps, model);

  const double stream_reduction =
      full.precond.value_total / std::max(mixed.precond.value_total, 1.0);
  const double payload_full = full.precond.msg_bytes + full.precond.coll_bytes;
  const double payload_mixed =
      mixed.precond.msg_bytes + mixed.precond.coll_bytes;
  const double payload_reduction = payload_full / std::max(payload_mixed, 1.0);

  // "+1 iteration per solve": the per-step counters aggregate
  // picard_iters pressure solves and 3 * picard_iters fused momentum
  // lane-solves, so the per-step allowance is the solve count.
  const int picard = cfd::SimConfig::optimized().picard_iters;
  bool iters_ok = true;
  for (std::size_t s = 0; s < full.prs_iters.size(); ++s) {
    if (mixed.prs_iters[s] > full.prs_iters[s] + picard ||
        mixed.mom_iters[s] > full.mom_iters[s] + 3 * picard) {
      iters_ok = false;
    }
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"mixed_precision\",\n");
  std::printf("  \"refine\": %.2f, \"ranks\": %d, \"steps\": %d,\n", refine,
              nranks, steps);
  std::printf("  \"f64\": {\"precond_value_bytes\": %.3e, \"value_f32\": "
              "%.3e, \"msg_bytes\": %.3e, \"coll_bytes\": %.3e, "
              "\"blocking_collectives\": %ld, \"nli_modeled_s\": %.4f},\n",
              full.precond.value_total, full.precond.value_f32,
              full.precond.msg_bytes, full.precond.coll_bytes,
              full.precond.blocking_colls, full.nli_modeled);
  std::printf("  \"mixed\": {\"precond_value_bytes\": %.3e, \"value_f32\": "
              "%.3e, \"msg_bytes\": %.3e, \"coll_bytes\": %.3e, "
              "\"blocking_collectives\": %ld, \"nli_modeled_s\": %.4f},\n",
              mixed.precond.value_total, mixed.precond.value_f32,
              mixed.precond.msg_bytes, mixed.precond.coll_bytes,
              mixed.precond.blocking_colls, mixed.nli_modeled);
  std::printf("  \"stream_reduction\": %.3f, \"payload_reduction\": %.3f,\n",
              stream_reduction, payload_reduction);
  print_iters("pressure_iters_f64", full.prs_iters);
  print_iters("pressure_iters_mixed", mixed.prs_iters);
  print_iters("momentum_iters_f64", full.mom_iters);
  print_iters("momentum_iters_mixed", mixed.mom_iters);
  std::printf("  \"iterations_within_one\": %s\n", iters_ok ? "true"
                                                            : "false");
  std::printf("}\n");

  if (min_stream > 0 && stream_reduction < min_stream) {
    std::fprintf(stderr, "FAIL: preconditioner value-stream reduction %.3f "
                         "< required %.3f\n", stream_reduction, min_stream);
    return 1;
  }
  if (min_payload > 0 && payload_reduction < min_payload) {
    std::fprintf(stderr, "FAIL: halo+collective payload reduction %.3f < "
                         "required %.3f\n", payload_reduction, min_payload);
    return 1;
  }
  if (!iters_ok) {
    std::fprintf(stderr, "FAIL: FP32 preconditioner cost more than one "
                         "extra GMRES iteration\n");
    return 1;
  }
  if (mixed.precond.value_f32 <= 0) {
    std::fprintf(stderr, "FAIL: mixed run recorded no FP32 value traffic "
                         "in the preconditioner\n");
    return 1;
  }
  if (full.precond.value_f32 != 0) {
    std::fprintf(stderr, "FAIL: FP64 run recorded FP32 value traffic\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace exw

int main() { return exw::run(); }
