// Ablation (paper §3.3 + §5.1): global-assembly variants.
//   * kSortReduce — Algorithm 1 as published (the optimized path),
//   * kSparseAdd  — the cuSPARSE-addition alternative ("little
//                   performance benefit ... smaller memory footprint"),
//   * kGeneral    — hypre's general path (the baseline's cost: "more
//                   device memory, more data motion").
// Reports modeled global-assembly time per step and REAL wall time of
// the assembly stage on this host, across rank counts.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"

using namespace exw;

int main() {
  const double refine = bench::env_refine(0.6);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("Global-assembly ablation (%lld nodes)\n\n",
              static_cast<long long>(sys.total_nodes().value()));
  std::printf("%6s %-12s %18s %16s\n", "ranks", "variant",
              "modeled global[s]", "host wall[s]");

  for (int ranks : {12, 48, 96}) {
    for (auto algo : {assembly::GlobalAssemblyAlgo::kSortReduce,
                      assembly::GlobalAssemblyAlgo::kSparseAdd,
                      assembly::GlobalAssemblyAlgo::kGeneral}) {
      par::Runtime rt(ranks);
      cfd::SimConfig cfg = cfd::SimConfig::optimized();
      cfg.picard_iters = 1;
      cfg.assembly_algo = algo;
      // This ablation times the *cold* variants; keep the plan cache out
      // so every Picard iteration pays the full algorithm under test.
      cfg.use_assembly_plan = false;
      cfd::Simulation sim(sys, cfg, rt);
      rt.tracer().reset();
      const auto t0 = std::chrono::steady_clock::now();
      sim.step();
      const auto t1 = std::chrono::steady_clock::now();
      double modeled = 0;
      for (const char* eq : {"momentum", "continuity", "scalar"}) {
        modeled += rt.tracer()
                       .phase(std::string("nli/") + eq + "/global")
                       .modeled_time(perf::MachineModel::summit_gpu());
      }
      const char* name =
          algo == assembly::GlobalAssemblyAlgo::kSortReduce ? "sort-reduce"
          : algo == assembly::GlobalAssemblyAlgo::kSparseAdd ? "sparse-add"
                                                             : "general";
      std::printf("%6d %-12s %18.4f %16.2f\n", ranks, name, modeled,
                  std::chrono::duration<double>(t1 - t0).count());
    }
    std::printf("\n");
  }
  std::printf("(expected: general > sort-reduce ~ sparse-add in modeled "
              "time; the optimized path is what shifts the paper's Fig. 3 "
              "baseline curve down)\n");
  return 0;
}
