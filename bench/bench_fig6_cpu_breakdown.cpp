// Figure 6: CPU pressure-Poisson time-per-step breakdown for the
// low-resolution single-turbine mesh — stacked contributions of graph/
// physics (purple), local assembly (green), global assembly (red),
// preconditioner setup (blue), and solve (orange), across Summit node
// counts at 42 Power9 ranks per node.
//
// Expected shape (paper): setup + solve dominate; all components scale
// well on the CPU (near -1 slope).

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const double refine = env_refine(0.8);
  const int steps = env_steps(1);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("Fig. 6 — CPU pressure-Poisson breakdown, %s (%lld nodes), "
              "modeled seconds per step (SummitCPU)\n\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()));

  const double scale =
      paper_scale(mesh::TurbineCase::kSingle, sys.total_nodes());
  const auto cpu = scaled_model(perf::MachineModel::summit_cpu(), scale);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.picard_iters = 4;

  std::printf("%6s %6s %10s %10s %10s %10s %10s %10s\n", "nodes", "ranks",
              "physics", "local", "global", "setup", "solve", "total");
  for (double nodes : {1.0, 2.0, 4.0, 8.0}) {
    const int ranks = static_cast<int>(nodes * cpu.ranks_per_node);
    const auto r = run_case(sys, cfg, ranks, cpu, steps);
    std::printf("%6.0f %6d %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                nodes, ranks, r.prs_physics, r.prs_local, r.prs_global,
                r.prs_setup, r.prs_solve,
                r.prs_physics + r.prs_local + r.prs_global + r.prs_setup +
                    r.prs_solve);
  }
  return 0;
}
