// Shared-memory executor benchmark: wall-clock speedup of the threaded
// rank loops over the serial escape hatch, on a Table-1-sized problem.
//
// Unlike the figure benches (which price *simulated* work under a
// MachineModel), this one measures real host wall-clock: the same
// simulation is run once with the thread pool disabled
// (par::set_serial_mode) and once with it enabled, and the two runs must
// produce bitwise-identical solver histories — the executor only changes
// which host thread runs each rank body, never the arithmetic.
//
// Usage:
//   bench_parallel_speedup            # serial + parallel, compare
//   bench_parallel_speedup --serial   # serial only (escape hatch)
// Env: EXW_NUM_THREADS, EXW_BENCH_STEPS, EXW_BENCH_REFINE.
//
// Exit code is nonzero if the histories differ, or if >= 4 hardware
// threads are available yet the speedup is below 2x.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "par/thread_pool.hpp"

using namespace exw;

namespace {

/// Everything a step produces that the solver path can influence.
struct StepRecord {
  int prs_iters, mom_iters;
  Real prs_res, mom_res;
  Real vel_rms, div_rms;

  bool operator==(const StepRecord&) const = default;
};

struct TimedRun {
  double seconds = 0;
  std::vector<StepRecord> history;
};

TimedRun run(mesh::OversetSystem& sys, const cfd::SimConfig& cfg, int nranks,
             int steps) {
  par::Runtime rt(nranks);
  cfd::Simulation sim(sys, cfg, rt);
  TimedRun out;
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < steps; ++s) {
    sim.step();
    out.history.push_back({sim.continuity_stats().gmres_iterations,
                           sim.momentum_stats().gmres_iterations,
                           sim.continuity_stats().final_residual,
                           sim.momentum_stats().final_residual,
                           sim.velocity_rms(), sim.divergence_rms()});
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

void print_history(const char* mode, const TimedRun& r) {
  std::printf("%-8s %8.3fs", mode, r.seconds);
  for (const auto& s : r.history) {
    std::printf("  [it %d/%d res %.3e/%.3e]", s.prs_iters, s.mom_iters,
                s.prs_res, s.mom_res);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool serial_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serial") == 0) serial_only = true;
  }

  const double refine = bench::env_refine(0.8);
  const int steps = bench::env_steps(2);
  const int nranks = 16;  // >= 8 per the acceptance bar
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("parallel rank executor — %s (%lld mesh nodes), %d simulated "
              "ranks, %d step(s)\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()),
              nranks, steps);
  std::printf("host: %u hardware threads, pool size %d%s\n\n", hw,
              par::ThreadPool::instance().num_threads(),
              serial_only ? " (--serial: pool bypassed)" : "");

  par::set_serial_mode(true);
  auto serial_sys = sys;  // step() mutates the mesh (rotor motion)
  const auto serial = run(serial_sys, cfg, nranks, steps);
  print_history("serial", serial);
  if (serial_only) return 0;

  par::set_serial_mode(false);
  auto par_sys = sys;
  const auto threaded = run(par_sys, cfg, nranks, steps);
  print_history("threads", threaded);

  if (threaded.history != serial.history) {
    std::printf("\nFAIL: solver histories differ between serial and "
                "threaded runs\n");
    return 1;
  }
  const double speedup = serial.seconds / threaded.seconds;
  std::printf("\nhistories bitwise-identical; speedup %.2fx with %d "
              "threads\n", speedup,
              par::ThreadPool::instance().num_threads());
  if (hw >= 4 && par::ThreadPool::instance().num_threads() >= 4 &&
      speedup < 2.0) {
    std::printf("FAIL: expected >= 2x speedup with >= 4 hardware threads\n");
    return 1;
  }
  return 0;
}
