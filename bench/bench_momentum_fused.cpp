// Fused momentum-solve bench: sequential per-component GMRES (3 solves,
// 3 structure reads per operator application) vs the fused 3-lane
// multi-RHS path (one structure read, one batched allreduce payload per
// orthogonalization; see DESIGN.md §13).
//
// The bench builds a momentum-like diagonally dominant system, three
// distinct RHS lanes, and runs EXW_BENCH_SOLVES repetitions of both
// paths under dedicated tracer phases. It prints one JSON object and
// exits nonzero when any invariant fails:
//   * modeled index-traffic reduction (seq index bytes / fused index
//     bytes) >= EXW_BENCH_MIN_INDEX_REDUCTION (default 2; the fused
//     SpMV/smoother sweeps read row structure once per 3 value lanes,
//     so the expected ratio is ~3),
//   * flat per-component GMRES iterations: each fused lane reports
//     exactly the sequential solve's count,
//   * bitwise-identical solutions per component,
//   * fewer collectives on the fused path (batched payloads),
//   * flat operator-new counts per fused solve after steady state,
//   * a cfd A/B: a turbine case stepped with use_fused_momentum on/off
//     must agree bitwise on the velocity field and momentum stats, and
//     the fused run must exercise the smoother value-rebind path.
//
// Knobs: EXW_BENCH_N (cells/side), EXW_BENCH_RANKS, EXW_BENCH_SOLVES,
// EXW_BENCH_MIN_INDEX_REDUCTION (0 disables).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "cfd/simulation.hpp"
#include "common/rng.hpp"
#include "mesh/generators.hpp"
#include "perf/tracer.hpp"
#include "solver/gmres.hpp"

// Heap probe: deltas of bench::alloc_count() (the purity sanitizer's
// process-wide interposition — see perf/purity.hpp) let repeated fused
// solves be checked for allocation growth. The hand-rolled operator-new
// override is gone: one allocator owner per program.

namespace exw {
namespace {

constexpr std::size_t kLanes = 3;

/// Momentum-like operator: 7-point advection-diffusion stencil with a
/// strong time-derivative diagonal (diagonally dominant, nonsymmetric).
sparse::Csr momentum_like(int n) {
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  auto id = [&](int i, int j, int k) {
    return static_cast<LocalIndex>((k * n + j) * n + i);
  };
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const LocalIndex row = id(i, j, k);
        Real diag = 2.0;  // mass / dt
        auto nb = [&](int a, int b, int c, Real upwind) {
          if (a < 0 || a >= n || b < 0 || b >= n || c < 0 || c >= n) return;
          ti.push_back(row);
          tj.push_back(id(a, b, c));
          tv.push_back(-1.0 - upwind);
          diag += 1.0 + upwind;
        };
        nb(i - 1, j, k, 0.5);  // upwinded x-advection
        nb(i + 1, j, k, 0.0);
        nb(i, j - 1, k, 0.0);
        nb(i, j + 1, k, 0.0);
        nb(i, j, k - 1, 0.0);
        nb(i, j, k + 1, 0.0);
        ti.push_back(row);
        tj.push_back(row);
        tv.push_back(diag);
      }
    }
  }
  const LocalIndex nn{n * n * n};
  return sparse::Csr::from_triples(nn, nn, std::move(ti), std::move(tj),
                                   std::move(tv));
}

bool same_span(std::span<const Real> a, std::span<const Real> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Real)) == 0);
}

long env_long(const char* name, long fallback) {
  if (const char* s = std::getenv(name)) return std::atol(s);
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* s = std::getenv(name)) return std::atof(s);
  return fallback;
}

/// cfd A/B: one turbine case stepped with the fused momentum path on vs
/// off must agree bitwise (velocity RMS is a deterministic functional of
/// the fields) with identical momentum stats, and the fused run must
/// rebind the cached smoother instead of rebuilding it.
bool cfd_paths_agree(int* iters_fused, int* iters_seq, int* rebinds) {
  auto sys_f = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  auto sys_s = mesh::make_turbine_case(mesh::TurbineCase::kSingle, 0.3);
  par::Runtime rt_f(4), rt_s(4);
  cfd::SimConfig cfg;
  cfg.picard_iters = 2;
  cfg.use_fused_momentum = true;
  cfd::Simulation sim_f(sys_f, cfg, rt_f);
  cfg.use_fused_momentum = false;
  cfd::Simulation sim_s(sys_s, cfg, rt_s);

  *iters_fused = 0;
  *iters_seq = 0;
  *rebinds = 0;
  bool ok = true;
  for (int s = 0; s < 2; ++s) {
    sim_f.step();
    sim_s.step();
    const int itf = sim_f.momentum_stats().gmres_iterations;
    const int its = sim_s.momentum_stats().gmres_iterations;
    *iters_fused += itf;
    *iters_seq += its;
    *rebinds += sim_f.momentum_stats().smoother_rebinds +
                sim_f.scalar_stats().smoother_rebinds;
    if (itf != its) {
      std::fprintf(stderr,
                   "FAIL: fused momentum iterations drifted at step %d: "
                   "%d (fused) vs %d (sequential)\n", s, itf, its);
      ok = false;
    }
    if (sim_f.velocity_rms() != sim_s.velocity_rms() ||
        sim_f.divergence_rms() != sim_s.divergence_rms()) {
      std::fprintf(stderr,
                   "FAIL: fused vs sequential fields differ at step %d\n", s);
      ok = false;
    }
  }
  if (*rebinds == 0) {
    std::fprintf(stderr, "FAIL: fused run never rebound the smoother\n");
    ok = false;
  }
  return ok;
}

int run() {
  const int n = static_cast<int>(env_long("EXW_BENCH_N", 12));
  const int nranks = static_cast<int>(env_long("EXW_BENCH_RANKS", 8));
  const int solves = static_cast<int>(env_long("EXW_BENCH_SOLVES", 6));
  const double min_reduction =
      env_double("EXW_BENCH_MIN_INDEX_REDUCTION", 2.0);

  par::Runtime rt(nranks);
  const auto nn = static_cast<std::size_t>(n) * n * n;
  const auto rows = par::RowPartition::even(
      GlobalIndex{static_cast<std::int64_t>(nn)}, nranks);
  const auto a = linalg::ParCsr::from_serial(rt, momentum_like(n), rows, rows);

  // Three distinct RHS lanes (u/v/w stand-ins).
  std::vector<RealVector> bd;
  {
    Rng rng(41);
    for (std::size_t c = 0; c < kLanes; ++c) {
      RealVector g(nn);
      for (auto& v : g) v = rng.uniform(-1.0, 1.0);
      bd.push_back(std::move(g));
    }
  }

  solver::GmresOptions opts;
  opts.rel_tol = 1e-6;
  solver::SmootherPrecond m(a, amg::SmootherType::kSgs2, 2, 2);

  // --- sequential: 3 scalar solves per repetition -----------------------
  rt.tracer().reset();
  rt.tracer().push_phase("seq");
  std::vector<int> seq_iters(kLanes, 0);
  std::vector<RealVector> seq_x(kLanes);
  const auto s0 = std::chrono::steady_clock::now();
  for (int it = 0; it < solves; ++it) {
    for (std::size_t c = 0; c < kLanes; ++c) {
      linalg::ParVector bc(rt, rows), xc(rt, rows);
      bc.scatter(bd[c]);
      xc.fill(0.0);
      const auto st = solver::gmres_solve(a, bc, xc, m, opts);
      if (!st.converged) {
        std::fprintf(stderr, "FAIL: sequential lane %zu did not converge\n",
                     c);
        return 1;
      }
      seq_iters[c] = st.iterations;
      if (it == 0) seq_x[c] = xc.gather();
    }
  }
  const auto s1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  // --- fused: one 3-lane multi-RHS solve per repetition -----------------
  rt.tracer().push_phase("fused");
  std::vector<int> fused_iters(kLanes, 0);
  std::vector<RealVector> fused_x(kLanes);
  std::vector<std::size_t> allocs_per_solve;
  const auto f0 = std::chrono::steady_clock::now();
  for (int it = 0; it < solves; ++it) {
    linalg::ParMultiVector b(rt, rows, kLanes), x(rt, rows, kLanes);
    for (std::size_t c = 0; c < kLanes; ++c) {
      linalg::ParVector bc(rt, rows);
      bc.scatter(bd[c]);
      b.set_lane(c, bc);
    }
    x.fill(0.0);
    const auto a0 = bench::alloc_count();
    const auto st = solver::gmres_solve_multi(a, b, x, m, opts);
    allocs_per_solve.push_back(
        static_cast<std::size_t>(bench::alloc_count() - a0));
    if (!st.all_converged()) {
      std::fprintf(stderr, "FAIL: fused solve did not converge\n");
      return 1;
    }
    for (std::size_t c = 0; c < kLanes; ++c) {
      fused_iters[c] = st.lane[c].iterations;
      if (it == 0) {
        linalg::ParVector xc(rt, rows);
        x.extract_lane(c, xc);
        fused_x[c] = xc.gather();
      }
    }
  }
  const auto f1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  // --- invariants -------------------------------------------------------
  bool iters_flat = true;
  for (std::size_t c = 0; c < kLanes; ++c) {
    if (fused_iters[c] != seq_iters[c]) iters_flat = false;
  }
  bool bitwise = true;
  for (std::size_t c = 0; c < kLanes; ++c) {
    if (!same_span(fused_x[c], seq_x[c])) bitwise = false;
  }
  bool alloc_growth = false;
  for (std::size_t i = 2; i < allocs_per_solve.size(); ++i) {
    if (allocs_per_solve[i] > allocs_per_solve[1]) alloc_growth = true;
  }

  const auto& seq_ph = rt.tracer().phase("seq");
  const auto& fused_ph = rt.tracer().phase("fused");
  const auto model = perf::MachineModel::summit_gpu();
  const double seq_wall = std::chrono::duration<double>(s1 - s0).count();
  const double fused_wall = std::chrono::duration<double>(f1 - f0).count();
  const double index_reduction =
      seq_ph.total_index_bytes() /
      std::max(fused_ph.total_index_bytes(), 1.0);
  const double modeled_speedup = seq_ph.modeled_time(model) /
                                 std::max(fused_ph.modeled_time(model), 1e-12);

  int cfd_iters_fused = 0, cfd_iters_seq = 0, cfd_rebinds = 0;
  const bool cfd_ok =
      cfd_paths_agree(&cfd_iters_fused, &cfd_iters_seq, &cfd_rebinds);

  // Non-allowlisted allocations inside the warm fused-kernel and
  // smoother-rebind purity regions. The contract pins this to zero.
  const long long warm_disallowed =
      bench::disallowed_allocs("multivector-scale-lanes") +
      bench::disallowed_allocs("multivector-axpy-lanes") +
      bench::disallowed_allocs("multivector-dots") +
      bench::disallowed_allocs("smoother-rebind");

  std::printf("{\n");
  std::printf("  \"bench\": \"momentum_fused\",\n");
  std::printf("  \"rows\": %zu, \"ranks\": %d, \"solves\": %d, \"lanes\": "
              "%zu,\n",
              nn, nranks, solves, kLanes);
  std::printf("  \"seq\": {\"wall_s\": %.6f, \"modeled_s\": %.6f, "
              "\"kernels\": %ld, \"collectives\": %ld, \"index_bytes\": "
              "%.3e, \"value_bytes\": %.3e},\n",
              seq_wall, seq_ph.modeled_time(model), seq_ph.total_kernels(),
              seq_ph.collectives, seq_ph.total_index_bytes(),
              seq_ph.total_value_bytes());
  std::printf("  \"fused\": {\"wall_s\": %.6f, \"modeled_s\": %.6f, "
              "\"kernels\": %ld, \"collectives\": %ld, \"index_bytes\": "
              "%.3e, \"value_bytes\": %.3e},\n",
              fused_wall, fused_ph.modeled_time(model),
              fused_ph.total_kernels(), fused_ph.collectives,
              fused_ph.total_index_bytes(), fused_ph.total_value_bytes());
  std::printf("  \"index_traffic_reduction\": %.2f, \"modeled_speedup\": "
              "%.2f,\n",
              index_reduction, modeled_speedup);
  std::printf("  \"iterations\": {\"seq\": [%d, %d, %d], \"fused\": "
              "[%d, %d, %d]},\n",
              seq_iters[0], seq_iters[1], seq_iters[2], fused_iters[0],
              fused_iters[1], fused_iters[2]);
  std::printf("  \"solutions_bitwise\": %s,\n", bitwise ? "true" : "false");
  std::printf("  \"fused_allocs_per_solve\": [");
  for (std::size_t i = 0; i < allocs_per_solve.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", allocs_per_solve[i]);
  }
  std::printf("],\n");
  std::printf("  \"alloc_steady_state\": %s,\n",
              alloc_growth ? "false" : "true");
  std::printf("  \"warm_disallowed_allocs\": %lld,\n", warm_disallowed);
  std::printf("  \"cfd\": {\"fused_iters\": %d, \"seq_iters\": %d, "
              "\"smoother_rebinds\": %d}\n",
              cfd_iters_fused, cfd_iters_seq, cfd_rebinds);
  std::printf("}\n");

  if (min_reduction > 0 && index_reduction < min_reduction) {
    std::fprintf(stderr, "FAIL: modeled index-traffic reduction %.2f < "
                         "required %.2f\n", index_reduction, min_reduction);
    return 1;
  }
  if (!iters_flat) {
    std::fprintf(stderr, "FAIL: fused per-component iteration counts differ "
                         "from sequential\n");
    return 1;
  }
  if (!bitwise) {
    std::fprintf(stderr, "FAIL: fused solutions are not bitwise-identical "
                         "to sequential\n");
    return 1;
  }
  if (fused_ph.collectives >= seq_ph.collectives) {
    std::fprintf(stderr, "FAIL: fused path charged %ld collectives >= "
                         "sequential %ld\n",
                 fused_ph.collectives, seq_ph.collectives);
    return 1;
  }
  if (alloc_growth) {
    std::fprintf(stderr, "FAIL: fused solve allocation count grows after "
                         "steady state\n");
    return 1;
  }
  if (perf::purity::enabled() && warm_disallowed != 0) {
    std::fprintf(stderr, "FAIL: %lld non-allowlisted allocation(s) inside "
                         "warm purity regions\n", warm_disallowed);
    return 1;
  }
  if (!cfd_ok) {
    return 1;
  }
  if (!rt.transport().drained()) {
    std::fprintf(stderr, "FAIL: transport not drained\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace exw

int main() { return exw::run(); }
