// Figure 10: NNZ balance on the refined single-turbine mesh — the case
// where the paper finds ParMETIS's advantage washes out ("while the use
// of ParMETIS reduces the maximum, it also reduces the minimum ... the
// overall spread seems largely unchanged compared to RCB", §5.2, with a
// suspected breakdown at large processor counts [43]).
//
// Thin wrapper: runs the Fig. 5 analysis on the refined case.
#include <cstdlib>
#include <cstdio>
#include <string>

int main(int, char** argv) {
  const std::string self(argv[0]);
  const auto dir = self.substr(0, self.find_last_of('/') + 1);
  const std::string cmd = dir + "bench_fig5_nnz_balance 0.7 refined";
  std::printf("(delegating: %s)\n\n", cmd.c_str());
  return std::system(cmd.c_str());
}
