// Figure 7: GPU pressure-Poisson time-per-step breakdown for the
// low-resolution single-turbine mesh (same stacked components as Fig. 6,
// SummitGPU model, 6 V100 ranks per node).
//
// Expected shape (paper): local assembly ~4x faster than the CPU's;
// setup + solve dominate, and their scaling degrades as DoFs/GPU drops
// (the AMG communication burden) — unlike the CPU breakdown of Fig. 6.

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const double refine = env_refine(0.8);
  const int steps = env_steps(1);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("Fig. 7 — GPU pressure-Poisson breakdown, %s (%lld nodes), "
              "modeled seconds per step (SummitGPU)\n\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()));

  const double scale =
      paper_scale(mesh::TurbineCase::kSingle, sys.total_nodes());
  const auto gpu = scaled_model(perf::MachineModel::summit_gpu(), scale);
  const auto cpu = scaled_model(perf::MachineModel::summit_cpu(), scale);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.picard_iters = 4;

  std::printf("%6s %6s %10s %10s %10s %10s %10s %10s\n", "nodes", "ranks",
              "physics", "local", "global", "setup", "solve", "total");
  double local_gpu_at4 = 0, local_cpu_at4 = 0;
  for (double nodes : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    const int ranks = static_cast<int>(nodes * gpu.ranks_per_node);
    const auto r = run_case(sys, cfg, ranks, gpu, steps);
    std::printf("%6.0f %6d %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                nodes, ranks, r.prs_physics, r.prs_local, r.prs_global,
                r.prs_setup, r.prs_solve,
                r.prs_physics + r.prs_local + r.prs_global + r.prs_setup +
                    r.prs_solve);
    if (nodes == 4.0) local_gpu_at4 = r.prs_local;
  }
  // The paper's local-assembly speedup claim: ~4x vs the CPU at equal
  // node counts (Fig. 7 vs Fig. 6, green bars).
  {
    const int ranks = 4 * cpu.ranks_per_node;
    const auto r = run_case(sys, cfg, ranks, cpu, 1);
    local_cpu_at4 = r.prs_local;
  }
  std::printf("\nlocal-assembly speedup GPU vs CPU at 4 Summit nodes: %.1fx "
              "(paper: ~4x)\n",
              local_cpu_at4 / std::max(local_gpu_at4, 1e-12));
  return 0;
}
