#pragma once
/// Shared harness for the figure-reproduction benchmarks.
///
/// Each bench binary regenerates one table/figure of the paper: it runs
/// the real simulation at a sweep of simulated rank counts, collects the
/// recorded per-phase work, and prints the same rows/series the paper
/// plots. Modeled times come from perf::MachineModel (see DESIGN.md for
/// what is measured vs modeled).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cfd/simulation.hpp"
#include "perf/purity.hpp"

namespace exw::bench {

/// Process-wide heap-allocation count, read from the purity sanitizer's
/// interposition (perf/purity.hpp). Replaces the hand-rolled operator-new
/// probes the reuse benches used to carry — one allocator owner per
/// program. Always zero when EXW_PURITY_CHECKS=OFF, so steadiness checks
/// built on deltas of this value stay vacuously true there; benches that
/// need a hard floor should guard on perf::purity::enabled().
inline unsigned long long alloc_count() {
  return perf::purity::totals().allocs;
}

/// Count of non-allowlisted allocations recorded inside the named purity
/// region so far (the quantity the warm-path contract pins to zero).
inline long long disallowed_allocs(const char* region) {
  return perf::purity::region(region).allocs;
}

/// Result of running `steps` time steps at one configuration.
struct RunResult {
  int ranks = 0;
  double nli_mean = 0;  ///< modeled NLI seconds per step (mean over steps)
  double nli_std = 0;
  /// Pressure-equation breakdown (modeled seconds per step, last step):
  double prs_physics = 0, prs_local = 0, prs_global = 0, prs_setup = 0,
         prs_solve = 0;
  double mom_total = 0, scl_total = 0;
  int prs_iters = 0;
  int mom_iters = 0;
  std::vector<double> pressure_nnz;  ///< per-rank pressure nnz (all meshes)
};

/// Run the case at `nranks` simulated ranks and price phases under `m`.
inline RunResult run_case(mesh::OversetSystem& sys, const cfd::SimConfig& cfg,
                          int nranks, const perf::MachineModel& m,
                          int steps) {
  par::Runtime rt(nranks);
  cfd::Simulation sim(sys, cfg, rt);
  RunResult res;
  res.ranks = nranks;
  std::vector<double> nli_times;
  for (int s = 0; s < steps; ++s) {
    rt.tracer().reset();
    sim.step();
    auto& tr = rt.tracer();
    nli_times.push_back(tr.phase("nli").modeled_time(m));
    res.prs_physics = tr.phase("nli/continuity/physics").modeled_time(m);
    res.prs_local = tr.phase("nli/continuity/local").modeled_time(m);
    res.prs_global = tr.phase("nli/continuity/global").modeled_time(m);
    res.prs_setup = tr.phase("nli/continuity/setup").modeled_time(m);
    res.prs_solve = tr.phase("nli/continuity/solve").modeled_time(m);
    res.mom_total = tr.phase("nli/momentum").modeled_time(m);
    res.scl_total = tr.phase("nli/scalar").modeled_time(m);
    res.prs_iters = sim.continuity_stats().gmres_iterations;
    res.mom_iters = sim.momentum_stats().gmres_iterations;
  }
  double sum = 0;
  for (double t : nli_times) sum += t;
  res.nli_mean = sum / static_cast<double>(nli_times.size());
  double var = 0;
  for (double t : nli_times) var += (t - res.nli_mean) * (t - res.nli_mean);
  res.nli_std = std::sqrt(var / static_cast<double>(nli_times.size()));
  res.pressure_nnz.assign(static_cast<std::size_t>(nranks), 0.0);
  for (std::size_t mi = 0; mi < sys.meshes.size(); ++mi) {
    const auto nnz = sim.pressure_nnz_per_rank(static_cast<int>(mi));
    for (std::size_t r = 0; r < nnz.size(); ++r) {
      res.pressure_nnz[r] += nnz[r];
    }
  }
  return res;
}

/// Header shared by the strong-scaling benches.
inline void print_scaling_header(const char* series) {
  std::printf("%-22s %6s %6s %12s %10s %8s %8s\n", series, "nodes", "ranks",
              "NLI[s/step]", "stddev", "prs_it", "mom_it");
}

inline void print_scaling_row(const char* series, double nodes,
                              const RunResult& r) {
  std::printf("%-22s %6.1f %6d %12.4f %10.4f %8d %8d\n", series, nodes,
              r.ranks, r.nli_mean, r.nli_std, r.prs_iters, r.mom_iters);
}

/// Log-log slope between first and last points of a series (ideal = -1).
inline double scaling_slope(const std::vector<double>& ranks,
                            const std::vector<double>& times) {
  if (ranks.size() < 2) return 0;
  return std::log(times.back() / times.front()) /
         std::log(ranks.back() / ranks.front());
}

/// Scale a machine model's per-rank throughput by the workload-size
/// ratio S = paper mesh nodes / reproduction mesh nodes. The reproduction
/// runs a ~1:100 mesh, so at a given rank count each rank holds S x fewer
/// DoFs than on Summit; dividing the compute rates by S restores the
/// paper's work-per-rank-to-overhead ratio (per-message latency and
/// kernel-launch costs are size-independent). DESIGN.md discusses the
/// halo-bytes approximation this entails.
inline perf::MachineModel scaled_model(perf::MachineModel m, double s) {
  m.flops_per_s /= s;
  m.bytes_per_s /= s;
  return m;
}

/// Workload scale factor for a case vs the paper's Table 1.
inline double paper_scale(mesh::TurbineCase which, GlobalIndex actual_nodes) {
  const double paper = which == mesh::TurbineCase::kSingle ? 23022027.0
                       : which == mesh::TurbineCase::kDual ? 44233109.0
                                                           : 634469604.0;
  return paper / static_cast<double>(actual_nodes.value());
}

inline int env_steps(int fallback) {
  if (const char* s = std::getenv("EXW_BENCH_STEPS")) {
    return std::max(1, std::atoi(s));
  }
  return fallback;
}

inline double env_refine(double fallback) {
  if (const char* s = std::getenv("EXW_BENCH_REFINE")) {
    return std::atof(s);
  }
  return fallback;
}

}  // namespace exw::bench
