// Ablation (paper §5.1): "the inclusion of a second inner iteration in
// the two-stage Gauss-Seidel algorithm has proven effective at reducing
// the number of GMRES iterations by roughly 2x for the momentum and
// scalar transport equations."
//
// Sweeps the inner Jacobi-Richardson sweep count of the SGS2 momentum
// preconditioner on the actual turbine momentum system and reports GMRES
// iterations + modeled solve time.

#include <cstdio>

#include "bench_util.hpp"
#include "solver/gmres.hpp"

using namespace exw;

int main() {
  const double refine = bench::env_refine(0.6);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("Smoother ablation — momentum GMRES iterations vs inner "
              "Jacobi-Richardson sweeps (%lld nodes)\n\n",
              static_cast<long long>(sys.total_nodes().value()));

  std::printf("%13s %10s %12s %14s\n", "inner sweeps", "mom_iters",
              "scl_iters", "NLI(gpu)[s]");
  int iters0 = 0, iters2 = 0;
  for (int inner : {0, 1, 2, 3}) {
    par::Runtime rt(24);
    cfd::SimConfig cfg = cfd::SimConfig::optimized();
    cfg.picard_iters = 2;
    cfg.sgs_inner_sweeps = inner;
    cfd::Simulation sim(sys, cfg, rt);
    rt.tracer().reset();
    sim.step();
    const double nli = rt.tracer().phase("nli").modeled_time(bench::scaled_model(
        perf::MachineModel::summit_gpu(),
        bench::paper_scale(mesh::TurbineCase::kSingle, sys.total_nodes())));
    std::printf("%13d %10d %12d %14.4f\n", inner,
                sim.momentum_stats().gmres_iterations,
                sim.scalar_stats().gmres_iterations, nli);
    if (inner == 0) iters0 = sim.momentum_stats().gmres_iterations;
    if (inner == 2) iters2 = sim.momentum_stats().gmres_iterations;
  }
  std::printf("\nreduction from 0 to 2 inner sweeps: %.1fx (paper: ~2x)\n",
              static_cast<double>(iters0) / std::max(1, iters2));
  return 0;
}
