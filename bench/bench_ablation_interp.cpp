// Ablation (paper §4.1): interpolation operators — direct, BAMG-direct
// (Eq. 2), MM-ext, MM-ext+i — with and without aggressive (two-stage)
// coarsening, on the actual turbine pressure matrix. Reports hierarchy
// complexities, measured V-cycle convergence factor, GMRES iterations,
// and the modeled setup/solve split: the trade the paper tunes.

#include <cmath>
#include <cstdio>

#include "amg/hierarchy.hpp"
#include "bench_util.hpp"
#include "solver/gmres.hpp"

using namespace exw;

namespace {

const char* interp_name(amg::InterpType t) {
  switch (t) {
    case amg::InterpType::kDirect: return "direct";
    case amg::InterpType::kBamg: return "BAMG";
    case amg::InterpType::kMmExt: return "MM-ext";
    case amg::InterpType::kMmExtI: return "MM-ext+i";
  }
  return "?";
}

}  // namespace

int main() {
  const double refine = bench::env_refine(0.6);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  const auto& db = sys.meshes[1];  // the ill-conditioned rotor mesh
  const int nranks = 8;
  par::Runtime rt(nranks);

  // Assemble the rotor pressure matrix.
  const auto layout =
      assembly::make_layout(db, nranks, assembly::PartitionMethod::kGraph);
  std::vector<std::uint8_t> dirichlet(static_cast<std::size_t>(db.num_nodes()), 0);
  for (std::size_t i = 0; i < dirichlet.size(); ++i) {
    dirichlet[i] = db.roles[i] == mesh::NodeRole::kFringe ||
                   db.roles[i] == mesh::NodeRole::kHole;
  }
  assembly::EquationGraph graph(db, layout, dirichlet);
  for (std::size_t e = 0; e < db.edges.size(); ++e) {
    const Real g = db.edges[e].coeff;
    graph.add_edge(e, {g, -g, -g, g}, {0, 0});
  }
  for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
    graph.add_node(node, dirichlet[static_cast<std::size_t>(node)] ? 1.0 : 1e-8,
                   1.0);
  }
  std::vector<sparse::Coo> owned, shared;
  for (RankId r{0}; r.value() < nranks; ++r) {
    owned.push_back(graph.rank(r).owned);
    shared.push_back(graph.rank(r).shared);
  }
  const auto& rows = layout.numbering.rows;
  const auto a = assembly::assemble_matrix(rt, rows, rows, owned, shared);
  std::printf("Interpolation ablation — rotor pressure matrix (%lld rows, "
              "boundary-layer anisotropy)\n\n",
              static_cast<long long>(a.global_rows().value()));

  linalg::ParVector b(rt, a.rows()), x(rt, a.rows()), r(rt, a.rows());
  b.fill(1.0);

  std::printf("%-10s %4s %7s %6s %8s %6s | %10s %10s\n", "interp", "agg",
              "levels", "opC", "rho", "iters", "setup[s]", "solve[s]");
  for (auto interp : {amg::InterpType::kDirect, amg::InterpType::kBamg,
                      amg::InterpType::kMmExt, amg::InterpType::kMmExtI}) {
    for (int agg : {0, 2}) {
      amg::AmgConfig cfg;
      cfg.interp = interp;
      cfg.agg_levels = agg;

      rt.tracer().reset();
      rt.tracer().push_phase("setup");
      amg::AmgHierarchy h(a, cfg);
      rt.tracer().pop_phase();

      x.fill(0.0);
      a.residual(b, x, r);
      const Real r0 = r.norm2();
      const int cycles = 10;
      for (int it = 0; it < cycles; ++it) {
        h.vcycle(b, x);
      }
      a.residual(b, x, r);
      const double rho =
          std::pow(static_cast<double>(r.norm2() / r0), 1.0 / cycles);

      x.fill(0.0);
      solver::AmgPrecond precond(a, cfg);
      solver::GmresOptions opts;
      opts.rel_tol = 1e-8;
      rt.tracer().push_phase("solve");
      const auto stats = solver::gmres_solve(a, b, x, precond, opts);
      rt.tracer().pop_phase();

      const auto gpu = perf::MachineModel::summit_gpu();
      std::printf("%-10s %4d %7d %6.2f %8.3f %6d | %10.4f %10.4f\n",
                  interp_name(interp), agg, h.num_levels(),
                  h.operator_complexity(), rho, stats.iterations,
                  rt.tracer().phase_time("setup", gpu),
                  rt.tracer().phase_time("solve", gpu));
    }
  }
  std::printf("\n(expected: MM-ext family converges best; aggressive "
              "coarsening cuts opC and setup at some convergence cost)\n");
  return 0;
}
