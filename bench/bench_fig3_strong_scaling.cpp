// Figure 3: strong scaling of the low-resolution single-turbine case —
// average nonlinear-iteration (NLI) time per time step on Summit, for
// (a) the current GPU implementation, (b) the baseline GPU
// implementation (general assembly path, RCB decomposition, one inner GS
// sweep, untuned AMG), and (c) the CPU implementation (42 Power9 ranks
// per node).
//
// Expected shape (paper): the optimized GPU curve sits 30-40% below the
// baseline; the CPU slope is near-ideal while the GPU curves flatten as
// DoFs/GPU drops; the CPU/GPU crossover lands at a few 1e5 mesh nodes
// per GPU.

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const double refine = env_refine(0.8);
  const int steps = env_steps(1);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kSingle, refine);
  std::printf("Fig. 3 — strong scaling, %s (%lld mesh nodes), %d step(s), 4 "
              "Picard iters\n\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()),
              steps);

  const double scale =
      paper_scale(mesh::TurbineCase::kSingle, sys.total_nodes());
  std::printf("workload scale factor vs paper mesh: %.0fx (machine models "
              "scaled accordingly, DESIGN.md)\n\n", scale);
  const auto gpu = scaled_model(perf::MachineModel::summit_gpu(), scale);
  const auto cpu = scaled_model(perf::MachineModel::summit_cpu(), scale);

  struct Series {
    const char* name;
    cfd::SimConfig cfg;
    perf::MachineModel model;
    std::vector<double> nodes;  // Summit node counts
    int ranks_per_node;
  };
  cfd::SimConfig optimized = cfd::SimConfig::optimized();
  optimized.picard_iters = 4;
  cfd::SimConfig baseline = cfd::SimConfig::baseline();
  baseline.picard_iters = 4;
  cfd::SimConfig cpu_cfg = optimized;  // CPU runs use the optimized code

  std::vector<Series> series;
  series.push_back({"GPU (current)", optimized, gpu,
                    {2, 4, 8, 16, 32}, gpu.ranks_per_node});
  series.push_back({"GPU (baseline)", baseline, gpu,
                    {2, 4, 8, 16, 32}, gpu.ranks_per_node});
  series.push_back({"CPU", cpu_cfg, cpu, {2, 4, 8}, cpu.ranks_per_node});

  for (auto& s : series) {
    print_scaling_header(s.name);
    std::vector<double> xs, ts;
    for (double nodes : s.nodes) {
      const int ranks = static_cast<int>(nodes * s.ranks_per_node);
      const auto r = run_case(sys, s.cfg, ranks, s.model, steps);
      print_scaling_row(s.name, nodes, r);
      xs.push_back(static_cast<double>(ranks));
      ts.push_back(r.nli_mean);
    }
    std::printf("  -> log-log slope %.2f (ideal -1)\n\n",
                scaling_slope(xs, ts));
  }
  std::printf("(mesh nodes per GPU at 32 Summit nodes: %.0f)\n",
              static_cast<double>(sys.total_nodes().value()) / (32.0 * 6.0));
  return 0;
}
