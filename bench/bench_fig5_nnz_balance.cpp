// Figure 5: median nonzeros per rank (error bars = min/max) of the
// pressure-Poisson system for RCB vs ParMETIS-style graph decomposition
// on the low-resolution single-turbine mesh.
//
// Expected shape (paper): the graph partitioner reduces the nnz spread
// dramatically (the paper reports ~10x on its production meshes) with an
// essentially flat median; RCB shows a wide min/max band.

#include <cstdio>

#include "assembly/graph.hpp"
#include "bench_util.hpp"
#include "part/graph_partition.hpp"

using namespace exw;

namespace {

/// Per-rank owned-pattern nnz of the pressure system over all meshes.
std::vector<double> pressure_nnz(const mesh::OversetSystem& sys, int nranks,
                                 assembly::PartitionMethod method) {
  std::vector<double> nnz(static_cast<std::size_t>(nranks), 0.0);
  for (const auto& db : sys.meshes) {
    const auto layout = assembly::make_layout(db, nranks, method);
    std::vector<std::uint8_t> dirichlet(static_cast<std::size_t>(db.num_nodes()), 0);
    for (std::size_t i = 0; i < dirichlet.size(); ++i) {
      const auto role = db.roles[i];
      dirichlet[i] = role == mesh::NodeRole::kOutflow ||
                     role == mesh::NodeRole::kFringe ||
                     role == mesh::NodeRole::kHole;
    }
    assembly::EquationGraph graph(db, layout, dirichlet);
    for (RankId r{0}; r.value() < nranks; ++r) {
      nnz[static_cast<std::size_t>(r)] +=
          static_cast<double>(graph.rank(r).owned.nnz());
    }
  }
  return nnz;
}

std::vector<RankId> iota_parts(std::size_t n) {
  std::vector<RankId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<RankId>(i);
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  const double refine = bench::env_refine(argc > 1 ? std::atof(argv[1]) : 0.8);
  const auto which = (argc > 2 && std::string(argv[2]) == "refined")
                         ? mesh::TurbineCase::kSingleRefined
                         : mesh::TurbineCase::kSingle;
  auto sys = mesh::make_turbine_case(which, refine);
  const bool refined = which == mesh::TurbineCase::kSingleRefined;
  std::printf("Fig. %s — pressure-system NNZ per rank, RCB vs graph "
              "partitioner, %s (%lld nodes)\n\n",
              refined ? "10" : "5", sys.name.c_str(),
              static_cast<long long>(sys.total_nodes().value()));
  std::printf("%8s  %-8s %12s %12s %12s %10s %9s\n", "ranks", "method",
              "median", "min", "max", "max/min", "stddev");

  for (int ranks : {12, 24, 48, 96, 192}) {
    double spread[2] = {0, 0};
    int mi = 0;
    for (auto method :
         {assembly::PartitionMethod::kRcb, assembly::PartitionMethod::kGraph}) {
      const auto nnz = pressure_nnz(sys, ranks, method);
      const auto s = part::balance_stats(nnz, iota_parts(nnz.size()), ranks);
      spread[mi++] = (s.max - s.min) / s.median;
      std::printf("%8d  %-8s %12.0f %12.0f %12.0f %10.2f %9.0f\n", ranks,
                  method == assembly::PartitionMethod::kRcb ? "RCB" : "graph",
                  s.median, s.min, s.max, s.max / std::max(s.min, 1.0),
                  s.stddev);
    }
    std::printf("%8s  spread reduction (RCB/graph): %.1fx\n\n", "",
                spread[0] / std::max(spread[1], 1e-12));
  }
  return 0;
}
