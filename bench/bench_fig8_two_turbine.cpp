// Figure 8: strong scaling of the dual-turbine case (average NLI time
// per step, GPU current vs CPU).
//
// Expected shape (paper): "very similar performance to the lower
// resolution single-turbine mesh", possibly with a bit more variation in
// the per-step times.

#include <cstdio>

#include "bench_util.hpp"

using namespace exw;
using namespace exw::bench;

int main() {
  const double refine = env_refine(0.6);
  const int steps = env_steps(1);
  auto sys = mesh::make_turbine_case(mesh::TurbineCase::kDual, refine);
  std::printf("Fig. 8 — strong scaling, %s (%lld mesh nodes)\n\n",
              sys.name.c_str(), static_cast<long long>(sys.total_nodes().value()));

  const double scale = paper_scale(mesh::TurbineCase::kDual, sys.total_nodes());
  const auto gpu = scaled_model(perf::MachineModel::summit_gpu(), scale);
  const auto cpu = scaled_model(perf::MachineModel::summit_cpu(), scale);
  cfd::SimConfig cfg = cfd::SimConfig::optimized();
  cfg.picard_iters = 4;

  print_scaling_header("GPU (current)");
  std::vector<double> xs, ts;
  for (double nodes : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    const int ranks = static_cast<int>(nodes * gpu.ranks_per_node);
    const auto r = run_case(sys, cfg, ranks, gpu, steps);
    print_scaling_row("GPU (current)", nodes, r);
    xs.push_back(static_cast<double>(ranks));
    ts.push_back(r.nli_mean);
  }
  std::printf("  -> log-log slope %.2f (ideal -1)\n\n", scaling_slope(xs, ts));

  print_scaling_header("CPU");
  xs.clear();
  ts.clear();
  for (double nodes : {2.0, 4.0, 8.0}) {
    const int ranks = static_cast<int>(nodes * cpu.ranks_per_node);
    const auto r = run_case(sys, cfg, ranks, cpu, steps);
    print_scaling_row("CPU", nodes, r);
    xs.push_back(static_cast<double>(ranks));
    ts.push_back(r.nli_mean);
  }
  std::printf("  -> log-log slope %.2f (ideal -1)\n", scaling_slope(xs, ts));
  return 0;
}
