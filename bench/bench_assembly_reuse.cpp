// Assembly-plan reuse bench: cold stage-3 global assembly vs warm
// in-place value refill through a frozen AssemblyPlan (hypre's
// SetValues2/AddToValues2 fast path, paper §3.3).
//
// The bench fills an edge-Laplacian on a box mesh, then reassembles it
// EXW_BENCH_REFILLS times two ways:
//   cold  — full Algorithm 1/2 every iteration (sort + reduce + split),
//   warm  — AssemblyPlan built once, every iteration a pure value
//           pipeline (pack, exchange, permuted segmented reduce,
//           scatter) with no sort, no searches, no steady-state
//           allocation.
// It prints one JSON object with wall-clock and modeled (FLOPs/bytes)
// costs and exits nonzero if the warm path ever charges a modeled sort
// kernel or allocates a growing amount of heap per refill.
//
// Knobs: EXW_BENCH_N (box cells/side), EXW_BENCH_RANKS, EXW_BENCH_REFILLS,
// EXW_BENCH_MIN_SPEEDUP (wall-clock floor asserted; 0 disables, the CI
// smoke run uses 0 because timing at tiny sizes is noise-dominated).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <vector>

#include "assembly/global.hpp"
#include "assembly/graph.hpp"
#include "assembly/plan.hpp"
#include "bench_util.hpp"
#include "mesh/meshdb.hpp"
#include "perf/tracer.hpp"

// Heap probe: deltas of bench::alloc_count() (the purity sanitizer's
// process-wide interposition — see perf/purity.hpp) bracket exactly the
// stage-3 value pipeline so the steady-state warm refill can be checked
// for allocation growth.

namespace exw {
namespace {

struct BoxCase {
  mesh::MeshDB db;
  std::vector<std::uint8_t> dirichlet;
};

BoxCase make_box(GlobalIndex n) {
  BoxCase c;
  mesh::StructuredBlockBuilder block(n, n, n);
  block.emit(c.db, [&](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    return Vec3{static_cast<Real>(i.value()), static_cast<Real>(j.value()),
                static_cast<Real>(k.value())};
  });
  c.db.coords = c.db.ref_coords;
  c.db.compute_dual_quantities();
  c.dirichlet.assign(static_cast<std::size_t>(c.db.num_nodes()), 0);
  for (GlobalIndex k{0}; k <= n; ++k) {
    for (GlobalIndex j{0}; j <= n; ++j) {
      for (GlobalIndex i{0}; i <= n; ++i) {
        if (i == GlobalIndex{0} || i == n || j == GlobalIndex{0} || j == n ||
            k == GlobalIndex{0} || k == n) {
          c.dirichlet[static_cast<std::size_t>(block.node_id(i, j, k))] = 1;
        }
      }
    }
  }
  return c;
}

/// Refill the graph's values on the frozen pattern, scaled by `s` so
/// every iteration writes genuinely different numbers.
void fill_values(assembly::EquationGraph& graph, const BoxCase& c, Real s) {
  graph.zero_values();
  for (std::size_t e = 0; e < c.db.edges.size(); ++e) {
    const Real g = c.db.edges[e].coeff * s;
    graph.add_edge(e, {g, -g, -g, g}, {0.1 * s, -0.2 * s}, false);
  }
  for (GlobalIndex node{0}; node < c.db.num_nodes(); ++node) {
    graph.add_node(node,
                   c.dirichlet[static_cast<std::size_t>(node)] ? 1.0 : 0.0,
                   0.5 * s, false);
  }
}

long env_long(const char* name, long fallback) {
  if (const char* s = std::getenv(name)) return std::atol(s);
  return fallback;
}

double env_double(const char* name, double fallback) {
  if (const char* s = std::getenv(name)) return std::atof(s);
  return fallback;
}

int run() {
  const auto n = GlobalIndex{env_long("EXW_BENCH_N", 20)};
  const int nranks = static_cast<int>(env_long("EXW_BENCH_RANKS", 8));
  const int refills = static_cast<int>(env_long("EXW_BENCH_REFILLS", 20));
  const double min_speedup = env_double("EXW_BENCH_MIN_SPEEDUP", 2.0);

  auto box = make_box(n);
  par::Runtime rt(nranks);
  const auto layout =
      assembly::make_layout(box.db, nranks, assembly::PartitionMethod::kGraph);
  assembly::EquationGraph graph(box.db, layout, box.dirichlet);
  const auto& rows = layout.numbering.rows;
  const auto algo = assembly::GlobalAssemblyAlgo::kSortReduce;

  // --- cold: full Algorithm 1/2 every refill -----------------------------
  rt.tracer().reset();
  rt.tracer().push_phase("cold");
  const auto c0 = std::chrono::steady_clock::now();
  linalg::ParCsr cold_a;
  linalg::ParVector cold_b;
  for (int it = 0; it < refills; ++it) {
    fill_values(graph, box, 1.0 + 0.37 * static_cast<Real>(it));
    const auto views = assembly::system_views(graph);
    const auto span = std::span<const assembly::SystemView>(views);
    cold_a = assembly::assemble_matrix(rt, rows, rows, span, algo);
    cold_b = assembly::assemble_vector(rt, rows, span, algo);
  }
  const auto c1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  // --- warm: plan built once, then value-only refills --------------------
  rt.tracer().push_phase("plan_build");
  const auto b0 = std::chrono::steady_clock::now();
  const auto build_views = assembly::system_views(graph);
  const auto plan = assembly::AssemblyPlan::build(
      rt, rows, rows, std::span<const assembly::SystemView>(build_views));
  auto warm_a = plan.create_matrix(rt);
  auto warm_b = plan.create_vector(rt);
  const auto b1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  rt.tracer().push_phase("warm");
  std::vector<std::size_t> allocs_per_refill;
  const auto w0 = std::chrono::steady_clock::now();
  for (int it = 0; it < refills; ++it) {
    fill_values(graph, box, 1.0 + 0.37 * static_cast<Real>(it));
    const auto views = assembly::system_views(graph);
    const auto span = std::span<const assembly::SystemView>(views);
    const auto a0 = bench::alloc_count();
    plan.refill_matrix(rt, span, warm_a);
    plan.refill_vector(rt, span, warm_b);
    allocs_per_refill.push_back(
        static_cast<std::size_t>(bench::alloc_count() - a0));
  }
  const auto w1 = std::chrono::steady_clock::now();
  rt.tracer().pop_phase();

  // Self-check: the last warm refill must equal the last cold assembly
  // bitwise (same values were filled).
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& wd = warm_a.block(r).diag.vals();
    const auto& cd = cold_a.block(r).diag.vals();
    const auto& wo = warm_a.block(r).offd.vals();
    const auto& co = cold_a.block(r).offd.vals();
    if (wd.size() != cd.size() || wo.size() != co.size() ||
        std::memcmp(wd.data(), cd.data(), wd.size() * sizeof(Real)) != 0 ||
        std::memcmp(wo.data(), co.data(), wo.size() * sizeof(Real)) != 0 ||
        std::memcmp(warm_b.local(r).data(), cold_b.local(r).data(),
                    warm_b.local(r).size() * sizeof(Real)) != 0) {
      std::fprintf(stderr, "FAIL: warm refill differs from cold assembly "
                           "on rank %d\n", r.value());
      return 1;
    }
  }

  const auto& cold_ph = rt.tracer().phase("cold");
  const auto& warm_ph = rt.tracer().phase("warm");
  const auto& build_ph = rt.tracer().phase("plan_build");
  const auto model = perf::MachineModel::summit_gpu();
  const double cold_wall = std::chrono::duration<double>(c1 - c0).count();
  const double warm_wall = std::chrono::duration<double>(w1 - w0).count();
  const double build_wall = std::chrono::duration<double>(b1 - b0).count();
  const double wall_speedup = cold_wall / std::max(warm_wall, 1e-12);
  const double modeled_speedup = cold_ph.modeled_time(model) /
                                 std::max(warm_ph.modeled_time(model), 1e-12);

  // Exact warm charge accounting (assembly/plan.cpp + *_from_plan):
  // every send slice charges one stream kernel and one traced message,
  // and each rank charges exactly 3 fixed kernels per refill (stacked
  // stream, matrix scatter, RHS scatter). A modeled sort would add 8
  // kernels (assembly/charges.hpp) with no message, so any excess over
  // this identity is sort work leaking into the warm path.
  const long warm_expected =
      warm_ph.total_messages() + 3L * nranks * refills;
  const long warm_excess = warm_ph.total_kernels() - warm_expected;
  const bool warm_sorts = warm_excess != 0;

  // Steady state: from the second refill on, the per-refill allocation
  // count must be flat. The residual constant count is the simulated
  // NIC boundary (transport serialization + send staging, see
  // assembly/plan.hpp); the compute pipeline itself allocates nothing.
  bool alloc_growth = false;
  for (std::size_t i = 2; i < allocs_per_refill.size(); ++i) {
    if (allocs_per_refill[i] > allocs_per_refill[1]) alloc_growth = true;
  }
  // Hard floor (purity builds only): the refill regions must have
  // recorded zero non-allowlisted allocations across every warm refill.
  const long long warm_disallowed =
      bench::disallowed_allocs("assembly-refill-matrix") +
      bench::disallowed_allocs("assembly-refill-vector");

  std::printf("{\n");
  std::printf("  \"bench\": \"assembly_reuse\",\n");
  std::printf("  \"nodes\": %lld, \"ranks\": %d, \"refills\": %d,\n",
              static_cast<long long>(box.db.num_nodes().value()), nranks,
              refills);
  std::printf("  \"cold\": {\"wall_s\": %.6f, \"modeled_s\": %.6f, "
              "\"kernels\": %ld, \"flops\": %.3e, \"bytes\": %.3e},\n",
              cold_wall, cold_ph.modeled_time(model), cold_ph.total_kernels(),
              cold_ph.total_flops(), cold_ph.total_bytes());
  std::printf("  \"plan_build\": {\"wall_s\": %.6f, \"modeled_s\": %.6f},\n",
              build_wall, build_ph.modeled_time(model));
  std::printf("  \"warm\": {\"wall_s\": %.6f, \"modeled_s\": %.6f, "
              "\"kernels\": %ld, \"flops\": %.3e, \"bytes\": %.3e},\n",
              warm_wall, warm_ph.modeled_time(model), warm_ph.total_kernels(),
              warm_ph.total_flops(), warm_ph.total_bytes());
  std::printf("  \"wall_speedup\": %.2f, \"modeled_speedup\": %.2f,\n",
              wall_speedup, modeled_speedup);
  std::printf("  \"warm_excess_kernels\": %ld,\n", warm_excess);
  std::printf("  \"warm_allocs_per_refill\": [");
  for (std::size_t i = 0; i < allocs_per_refill.size(); ++i) {
    std::printf("%s%zu", i ? ", " : "", allocs_per_refill[i]);
  }
  std::printf("],\n");
  std::printf("  \"alloc_steady_state\": %s,\n", alloc_growth ? "false"
                                                              : "true");
  std::printf("  \"warm_disallowed_allocs\": %lld\n", warm_disallowed);
  std::printf("}\n");

  if (warm_sorts) {
    std::fprintf(stderr, "FAIL: warm path charged %ld unexpected kernels "
                         "(%ld total, %ld expected) - modeled sort work "
                         "leaked into the refill\n",
                 warm_excess, warm_ph.total_kernels(), warm_expected);
    return 1;
  }
  if (alloc_growth) {
    std::fprintf(stderr, "FAIL: warm refill allocation count grows after "
                         "steady state\n");
    return 1;
  }
  if (perf::purity::enabled() && warm_disallowed != 0) {
    std::fprintf(stderr, "FAIL: warm refill made %lld non-allowlisted "
                         "allocations inside the assembly-refill purity "
                         "regions\n", warm_disallowed);
    return 1;
  }
  if (min_speedup > 0 && wall_speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: warm wall-clock speedup %.2f < required "
                         "%.2f\n", wall_speedup, min_speedup);
    return 1;
  }
  if (!rt.transport().drained()) {
    std::fprintf(stderr, "FAIL: transport not drained\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace exw

int main() { return exw::run(); }
