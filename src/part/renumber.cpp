#include "part/renumber.hpp"

#include "common/error.hpp"

namespace exw::part {

Numbering make_numbering(const std::vector<RankId>& parts, int nparts) {
  Numbering num;
  std::vector<GlobalIndex> counts(static_cast<std::size_t>(nparts),
                                  GlobalIndex{0});
  for (RankId p : parts) {
    EXW_REQUIRE(p.value() >= 0 && p.value() < nparts, "part id out of range");
    counts[static_cast<std::size_t>(p)] += 1;
  }
  num.rows = par::RowPartition::from_counts(counts);

  std::vector<GlobalIndex> cursor(static_cast<std::size_t>(nparts));
  for (RankId p{0}; p < RankId{nparts}; ++p) {
    cursor[static_cast<std::size_t>(p)] = num.rows.first_row(p);
  }
  num.old_to_new.resize(parts.size());
  num.new_to_old.resize(parts.size());
  for (std::size_t old = 0; old < parts.size(); ++old) {
    const GlobalIndex fresh = cursor[static_cast<std::size_t>(parts[old])]++;
    num.old_to_new[old] = fresh;
    num.new_to_old[static_cast<std::size_t>(fresh)] =
        GlobalIndex{old};
  }
  return num;
}

}  // namespace exw::part
