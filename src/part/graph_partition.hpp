#pragma once
/// \file graph_partition.hpp
/// Multilevel k-way graph partitioner (the ParMETIS stand-in).
///
/// §5.1 of the paper replaces RCB with ParMETIS-based rebalancing to
/// shrink the nonzero spread per rank by ~10x (Fig. 5). We implement the
/// classic multilevel scheme ParMETIS popularized: heavy-edge-matching
/// coarsening, greedy-graph-growing initial bisection, and
/// Fiduccia–Mattheyses boundary refinement during uncoarsening, applied
/// recursively for k-way. Vertex weights carry the row-nnz load so the
/// balance objective is the paper's (nonzeros per rank).

#include <vector>

#include "common/types.hpp"

namespace exw::part {

/// Undirected weighted graph in CSR adjacency form.
struct Graph {
  LocalIndex nv{0};
  std::vector<LocalIndex> xadj{0};  ///< size nv+1
  std::vector<LocalIndex> adj;      ///< neighbor lists (no self loops)
  std::vector<double> ewgt;         ///< per-edge weights (parallel to adj)
  std::vector<double> vwgt;         ///< per-vertex weights

  double total_vweight() const;
  /// Validate symmetry and sizes (tests).
  bool valid() const;
};

/// Build a Graph from symmetric sparsity triples (i != j edges kept once
/// per direction; duplicate edges merged with summed weights).
Graph graph_from_edges(LocalIndex nv, const std::vector<LocalIndex>& ei,
                       const std::vector<LocalIndex>& ej,
                       std::vector<double> vwgt);

struct GraphPartOptions {
  double balance_tol = 1.015;  ///< max part weight / average part weight
  int fm_passes = 4;          ///< FM refinement passes per level
  LocalIndex coarsen_to{160};  ///< stop coarsening below this many vertices
  std::uint64_t seed = 12345;
};

/// Partition into `nparts`; returns per-vertex part ids in [0, nparts).
std::vector<RankId> graph_partition(const Graph& g, int nparts,
                                    const GraphPartOptions& opts = {});

/// Total weight of edges crossing parts (partition quality metric).
double edge_cut(const Graph& g, const std::vector<RankId>& parts);

/// Distribution statistics of per-part aggregated vertex weight — the
/// quantity plotted in the paper's Figs. 5 and 10 (median/min/max nnz).
struct BalanceStats {
  double median = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
  double mean = 0;
};
BalanceStats balance_stats(const std::vector<double>& vwgt,
                           const std::vector<RankId>& parts, int nparts);

}  // namespace exw::part
