#include "part/graph_partition.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace exw::part {

double Graph::total_vweight() const {
  return std::accumulate(vwgt.begin(), vwgt.end(), 0.0);
}

bool Graph::valid() const {
  if (xadj.size() != static_cast<std::size_t>(nv) + 1) return false;
  if (adj.size() != ewgt.size()) return false;
  if (vwgt.size() != static_cast<std::size_t>(nv)) return false;
  for (LocalIndex v{0}; v < nv; ++v) {
    for (LocalIndex k = xadj[static_cast<std::size_t>(v)];
         k < xadj[static_cast<std::size_t>(v) + 1]; ++k) {
      const LocalIndex u = adj[static_cast<std::size_t>(k)];
      if (u < LocalIndex{0} || u >= nv || u == v) return false;
    }
  }
  return true;
}

Graph graph_from_edges(LocalIndex nv, const std::vector<LocalIndex>& ei,
                       const std::vector<LocalIndex>& ej,
                       std::vector<double> vwgt) {
  EXW_REQUIRE(ei.size() == ej.size(), "edge arrays mismatch");
  Graph g;
  g.nv = nv;
  g.vwgt = vwgt.empty() ? std::vector<double>(static_cast<std::size_t>(nv), 1.0)
                        : std::move(vwgt);
  // Count both directions, skip self loops, merge duplicates per vertex.
  std::vector<std::vector<std::pair<LocalIndex, double>>> nbrs(
      static_cast<std::size_t>(nv));
  for (std::size_t k = 0; k < ei.size(); ++k) {
    const LocalIndex a = ei[k], b = ej[k];
    if (a == b) continue;
    nbrs[static_cast<std::size_t>(a)].emplace_back(b, 1.0);
    nbrs[static_cast<std::size_t>(b)].emplace_back(a, 1.0);
  }
  g.xadj.assign(static_cast<std::size_t>(nv) + 1, LocalIndex{0});
  for (LocalIndex v{0}; v < nv; ++v) {
    auto& list = nbrs[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < list.size();) {
      double w = 0;
      std::size_t j = i;
      while (j < list.size() && list[j].first == list[i].first) {
        w += list[j].second;
        ++j;
      }
      list[out++] = {list[i].first, w};
      i = j;
    }
    list.resize(out);
    g.xadj[static_cast<std::size_t>(v) + 1] =
        g.xadj[static_cast<std::size_t>(v)] + checked_narrow<LocalIndex>(out);
  }
  g.adj.reserve(static_cast<std::size_t>(g.xadj.back()));
  g.ewgt.reserve(static_cast<std::size_t>(g.xadj.back()));
  for (LocalIndex v{0}; v < nv; ++v) {
    for (const auto& [u, w] : nbrs[static_cast<std::size_t>(v)]) {
      g.adj.push_back(u);
      g.ewgt.push_back(w);
    }
  }
  return g;
}

namespace {

/// One multilevel coarsening level: fine -> coarse maps.
struct CoarseLevel {
  Graph graph;
  std::vector<LocalIndex> fine_to_coarse;
};

/// Heavy-edge matching: each vertex pairs with its heaviest unmatched
/// neighbor; unmatched vertices map to singleton coarse vertices.
CoarseLevel coarsen(const Graph& g, std::uint64_t seed) {
  const auto nv = static_cast<std::size_t>(g.nv);
  std::vector<LocalIndex> match(nv, kInvalidLocal);
  std::vector<LocalIndex> order(nv);
  std::iota(order.begin(), order.end(), LocalIndex{0});
  // Randomized visit order avoids pathological matchings on regular grids.
  std::sort(order.begin(), order.end(), [&](LocalIndex a, LocalIndex b) {
    return hash64(seed ^ static_cast<std::uint64_t>(a)) <
           hash64(seed ^ static_cast<std::uint64_t>(b));
  });
  for (LocalIndex v : order) {
    if (match[static_cast<std::size_t>(v)] != kInvalidLocal) continue;
    LocalIndex best = kInvalidLocal;
    double best_w = -1;
    for (LocalIndex k = g.xadj[static_cast<std::size_t>(v)];
         k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
      const LocalIndex u = g.adj[static_cast<std::size_t>(k)];
      if (match[static_cast<std::size_t>(u)] == kInvalidLocal &&
          g.ewgt[static_cast<std::size_t>(k)] > best_w) {
        best_w = g.ewgt[static_cast<std::size_t>(k)];
        best = u;
      }
    }
    if (best != kInvalidLocal) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;
    }
  }

  CoarseLevel lvl;
  lvl.fine_to_coarse.assign(nv, kInvalidLocal);
  LocalIndex nc{0};
  for (LocalIndex v{0}; v < g.nv; ++v) {
    if (lvl.fine_to_coarse[static_cast<std::size_t>(v)] != kInvalidLocal)
      continue;
    const LocalIndex m = match[static_cast<std::size_t>(v)];
    lvl.fine_to_coarse[static_cast<std::size_t>(v)] = nc;
    lvl.fine_to_coarse[static_cast<std::size_t>(m)] = nc;
    ++nc;
  }

  Graph& cg = lvl.graph;
  cg.nv = nc;
  cg.vwgt.assign(static_cast<std::size_t>(nc), 0.0);
  for (LocalIndex v{0}; v < g.nv; ++v) {
    cg.vwgt[static_cast<std::size_t>(lvl.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        g.vwgt[static_cast<std::size_t>(v)];
  }
  // Aggregate edges between coarse vertices.
  std::vector<std::vector<std::pair<LocalIndex, double>>> nbrs(
      static_cast<std::size_t>(nc));
  for (LocalIndex v{0}; v < g.nv; ++v) {
    const LocalIndex cv = lvl.fine_to_coarse[static_cast<std::size_t>(v)];
    for (LocalIndex k = g.xadj[static_cast<std::size_t>(v)];
         k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
      const LocalIndex cu =
          lvl.fine_to_coarse[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(k)])];
      if (cu != cv) {
        nbrs[static_cast<std::size_t>(cv)].emplace_back(
            cu, g.ewgt[static_cast<std::size_t>(k)]);
      }
    }
  }
  cg.xadj.assign(static_cast<std::size_t>(nc) + 1, LocalIndex{0});
  for (LocalIndex v{0}; v < nc; ++v) {
    auto& list = nbrs[static_cast<std::size_t>(v)];
    std::sort(list.begin(), list.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < list.size();) {
      double w = 0;
      std::size_t j = i;
      while (j < list.size() && list[j].first == list[i].first) {
        w += list[j].second;
        ++j;
      }
      list[out++] = {list[i].first, w};
      i = j;
    }
    list.resize(out);
    cg.xadj[static_cast<std::size_t>(v) + 1] =
        cg.xadj[static_cast<std::size_t>(v)] + checked_narrow<LocalIndex>(out);
  }
  for (LocalIndex v{0}; v < nc; ++v) {
    for (const auto& [u, w] : nbrs[static_cast<std::size_t>(v)]) {
      cg.adj.push_back(u);
      cg.ewgt.push_back(w);
    }
  }
  return lvl;
}

/// Greedy graph growing: BFS from a hashed start until side 0 holds the
/// target weight fraction.
std::vector<std::uint8_t> grow_bisection(const Graph& g, double target_frac,
                                         std::uint64_t seed) {
  const auto nv = static_cast<std::size_t>(g.nv);
  std::vector<std::uint8_t> side(nv, 1);
  const double target = g.total_vweight() * target_frac;
  double grown = 0;
  std::vector<std::uint8_t> seen(nv, 0);
  std::queue<LocalIndex> queue;
  const auto start = checked_narrow<LocalIndex>(hash64(seed) % nv);
  queue.push(start);
  seen[static_cast<std::size_t>(start)] = 1;
  while (grown < target) {
    if (queue.empty()) {
      // Disconnected graph: seed a new component.
      LocalIndex next = kInvalidLocal;
      for (LocalIndex v{0}; v < g.nv; ++v) {
        if (!seen[static_cast<std::size_t>(v)]) {
          next = v;
          break;
        }
      }
      if (next == kInvalidLocal) break;
      seen[static_cast<std::size_t>(next)] = 1;
      queue.push(next);
    }
    const LocalIndex v = queue.front();
    queue.pop();
    if (grown + g.vwgt[static_cast<std::size_t>(v)] > target && grown > 0) {
      continue;  // skip overweight vertex, keep draining the frontier
    }
    side[static_cast<std::size_t>(v)] = 0;
    grown += g.vwgt[static_cast<std::size_t>(v)];
    for (LocalIndex k = g.xadj[static_cast<std::size_t>(v)];
         k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
      const LocalIndex u = g.adj[static_cast<std::size_t>(k)];
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        queue.push(u);
      }
    }
  }
  return side;
}

/// Fiduccia–Mattheyses boundary refinement of a bisection. Gains are kept
/// in a max-heap with lazy invalidation; moves respect the balance window.
void fm_refine(const Graph& g, std::vector<std::uint8_t>& side,
               double target_frac, double tol, int passes) {
  const auto nv = static_cast<std::size_t>(g.nv);
  const double total = g.total_vweight();
  const double lo = total * target_frac / tol;
  const double hi = total * target_frac * tol;

  auto side_weight0 = [&] {
    double w = 0;
    for (LocalIndex v{0}; v < g.nv; ++v) {
      if (side[static_cast<std::size_t>(v)] == 0) {
        w += g.vwgt[static_cast<std::size_t>(v)];
      }
    }
    return w;
  };

  std::vector<double> gain(nv, 0.0);
  auto compute_gain = [&](LocalIndex v) {
    double internal = 0, external = 0;
    const auto sv = side[static_cast<std::size_t>(v)];
    for (LocalIndex k = g.xadj[static_cast<std::size_t>(v)];
         k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
      const double w = g.ewgt[static_cast<std::size_t>(k)];
      if (side[static_cast<std::size_t>(g.adj[static_cast<std::size_t>(k)])] == sv) {
        internal += w;
      } else {
        external += w;
      }
    }
    return external - internal;
  };

  double w0 = side_weight0();
  // Rebalance first: if the bisection is outside the balance window,
  // move the least-damaging boundary vertices from the heavy side.
  {
    const double target_w = total * target_frac;
    int guard = 0;
    while ((w0 < lo || w0 > hi) && guard++ < g.nv.value()) {
      const bool heavy0 = w0 > target_w;
      LocalIndex best = kInvalidLocal;
      double best_gain = -1e300;
      for (LocalIndex v{0}; v < g.nv; ++v) {
        if ((side[static_cast<std::size_t>(v)] == 0) != heavy0) continue;
        const double gn = compute_gain(v);
        if (gn > best_gain) {
          best_gain = gn;
          best = v;
        }
      }
      if (best == kInvalidLocal) break;
      side[static_cast<std::size_t>(best)] ^= 1;
      w0 += heavy0 ? -g.vwgt[static_cast<std::size_t>(best)]
                   : g.vwgt[static_cast<std::size_t>(best)];
    }
  }
  for (int pass = 0; pass < passes; ++pass) {
    // Max-heap of (gain, vertex) with lazy invalidation.
    using Entry = std::pair<double, LocalIndex>;
    std::priority_queue<Entry> heap;
    for (LocalIndex v{0}; v < g.nv; ++v) {
      gain[static_cast<std::size_t>(v)] = compute_gain(v);
      heap.emplace(gain[static_cast<std::size_t>(v)], v);
    }
    std::vector<std::uint8_t> moved(nv, 0);
    bool any_positive = false;
    while (!heap.empty()) {
      const auto [gval, v] = heap.top();
      heap.pop();
      if (moved[static_cast<std::size_t>(v)] ||
          gval != gain[static_cast<std::size_t>(v)]) {
        continue;  // stale entry
      }
      if (gval <= 0) break;  // only strictly improving moves
      const double vw = g.vwgt[static_cast<std::size_t>(v)];
      const bool from0 = side[static_cast<std::size_t>(v)] == 0;
      const double new_w0 = from0 ? w0 - vw : w0 + vw;
      if (new_w0 < lo || new_w0 > hi) continue;  // would break balance
      // Commit the move and update neighbor gains.
      side[static_cast<std::size_t>(v)] ^= 1;
      moved[static_cast<std::size_t>(v)] = 1;
      w0 = new_w0;
      any_positive = true;
      for (LocalIndex k = g.xadj[static_cast<std::size_t>(v)];
           k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
        const LocalIndex u = g.adj[static_cast<std::size_t>(k)];
        if (!moved[static_cast<std::size_t>(u)]) {
          gain[static_cast<std::size_t>(u)] = compute_gain(u);
          heap.emplace(gain[static_cast<std::size_t>(u)], u);
        }
      }
    }
    if (!any_positive) break;
  }
}

/// Multilevel bisection with side-0 weight fraction `target_frac`.
std::vector<std::uint8_t> multilevel_bisect(const Graph& g, double target_frac,
                                            const GraphPartOptions& opts,
                                            std::uint64_t seed) {
  if (g.nv <= opts.coarsen_to) {
    auto side = grow_bisection(g, target_frac, seed);
    fm_refine(g, side, target_frac, opts.balance_tol, opts.fm_passes);
    return side;
  }
  CoarseLevel lvl = coarsen(g, seed);
  if (lvl.graph.nv.value() >=
      static_cast<std::int64_t>(g.nv.value()) * 95 / 100) {
    // Matching stalled (e.g. star graphs): fall back to direct bisection.
    auto side = grow_bisection(g, target_frac, seed);
    fm_refine(g, side, target_frac, opts.balance_tol, opts.fm_passes);
    return side;
  }
  const auto coarse_side =
      multilevel_bisect(lvl.graph, target_frac, opts, hash64(seed));
  std::vector<std::uint8_t> side(static_cast<std::size_t>(g.nv));
  for (LocalIndex v{0}; v < g.nv; ++v) {
    side[static_cast<std::size_t>(v)] =
        coarse_side[static_cast<std::size_t>(
            lvl.fine_to_coarse[static_cast<std::size_t>(v)])];
  }
  fm_refine(g, side, target_frac, opts.balance_tol, opts.fm_passes);
  return side;
}

/// Extract the subgraph induced by the vertices with keep[v] != 0.
Graph induced_subgraph(const Graph& g, const std::vector<std::uint8_t>& keep,
                       std::vector<LocalIndex>& to_sub) {
  to_sub.assign(static_cast<std::size_t>(g.nv), kInvalidLocal);
  std::vector<LocalIndex> verts;
  for (LocalIndex v{0}; v < g.nv; ++v) {
    if (keep[static_cast<std::size_t>(v)]) {
      to_sub[static_cast<std::size_t>(v)] = checked_narrow<LocalIndex>(verts.size());
      verts.push_back(v);
    }
  }
  Graph s;
  s.nv = checked_narrow<LocalIndex>(verts.size());
  s.xadj.assign(static_cast<std::size_t>(s.nv) + 1, LocalIndex{0});
  s.vwgt.resize(static_cast<std::size_t>(s.nv));
  for (std::size_t i = 0; i < verts.size(); ++i) {
    s.vwgt[i] = g.vwgt[static_cast<std::size_t>(verts[i])];
    for (LocalIndex k = g.xadj[static_cast<std::size_t>(verts[i])];
         k < g.xadj[static_cast<std::size_t>(verts[i]) + 1]; ++k) {
      const LocalIndex u = g.adj[static_cast<std::size_t>(k)];
      if (to_sub[static_cast<std::size_t>(u)] != kInvalidLocal) {
        s.adj.push_back(to_sub[static_cast<std::size_t>(u)]);
        s.ewgt.push_back(g.ewgt[static_cast<std::size_t>(k)]);
      }
    }
    s.xadj[i + 1] = checked_narrow<LocalIndex>(s.adj.size());
  }
  return s;
}

void kway_recurse(const Graph& g, const std::vector<GlobalIndex>& to_parent,
                  std::vector<RankId>& parts, int first_part, int nparts,
                  const GraphPartOptions& opts, std::uint64_t seed) {
  if (nparts == 1) {
    for (LocalIndex v{0}; v < g.nv; ++v) {
      parts[static_cast<std::size_t>(to_parent[static_cast<std::size_t>(v)])] =
          RankId{first_part};
    }
    return;
  }
  const int left = nparts / 2;
  const double frac = static_cast<double>(left) / nparts;
  const auto side = multilevel_bisect(g, frac, opts, seed);

  std::vector<std::uint8_t> keep0(side.size()), keep1(side.size());
  for (std::size_t i = 0; i < side.size(); ++i) {
    keep0[i] = side[i] == 0;
    keep1[i] = side[i] == 1;
  }
  std::vector<LocalIndex> map0, map1;
  const Graph g0 = induced_subgraph(g, keep0, map0);
  const Graph g1 = induced_subgraph(g, keep1, map1);
  std::vector<GlobalIndex> parent0, parent1;
  parent0.reserve(static_cast<std::size_t>(g0.nv));
  parent1.reserve(static_cast<std::size_t>(g1.nv));
  for (LocalIndex v{0}; v < g.nv; ++v) {
    if (side[static_cast<std::size_t>(v)] == 0) {
      parent0.push_back(to_parent[static_cast<std::size_t>(v)]);
    } else {
      parent1.push_back(to_parent[static_cast<std::size_t>(v)]);
    }
  }
  kway_recurse(g0, parent0, parts, first_part, left, opts, hash64(seed ^ 1));
  kway_recurse(g1, parent1, parts, first_part + left, nparts - left, opts,
               hash64(seed ^ 2));
}

}  // namespace

std::vector<RankId> graph_partition(const Graph& g, int nparts,
                                    const GraphPartOptions& opts) {
  EXW_REQUIRE(nparts >= 1, "need at least one part");
  EXW_REQUIRE(g.nv.value() >= nparts, "fewer vertices than parts");
  std::vector<RankId> parts(static_cast<std::size_t>(g.nv), RankId{0});
  std::vector<GlobalIndex> ids(static_cast<std::size_t>(g.nv));
  std::iota(ids.begin(), ids.end(), GlobalIndex{0});
  kway_recurse(g, ids, parts, 0, nparts, opts, opts.seed);
  return parts;
}

double edge_cut(const Graph& g, const std::vector<RankId>& parts) {
  double cut = 0;
  for (LocalIndex v{0}; v < g.nv; ++v) {
    for (LocalIndex k = g.xadj[static_cast<std::size_t>(v)];
         k < g.xadj[static_cast<std::size_t>(v) + 1]; ++k) {
      const LocalIndex u = g.adj[static_cast<std::size_t>(k)];
      if (u > v && parts[static_cast<std::size_t>(v)] !=
                       parts[static_cast<std::size_t>(u)]) {
        cut += g.ewgt[static_cast<std::size_t>(k)];
      }
    }
  }
  return cut;
}

BalanceStats balance_stats(const std::vector<double>& vwgt,
                           const std::vector<RankId>& parts, int nparts) {
  std::vector<double> load(static_cast<std::size_t>(nparts), 0.0);
  for (std::size_t v = 0; v < parts.size(); ++v) {
    load[static_cast<std::size_t>(parts[v])] +=
        vwgt.empty() ? 1.0 : vwgt[v];
  }
  std::vector<double> sorted = load;
  std::sort(sorted.begin(), sorted.end());
  BalanceStats s;
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = sorted[sorted.size() / 2];
  double sum = 0;
  for (double l : load) sum += l;
  s.mean = sum / static_cast<double>(nparts);
  double var = 0;
  for (double l : load) var += (l - s.mean) * (l - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(nparts));
  return s;
}

}  // namespace exw::part
