#pragma once
/// \file renumber.hpp
/// DoF renumbering that turns a partition into hypre's block-row layout.
///
/// hypre requires each rank's rows to be a contiguous global range
/// (paper §3.3). Mesh DoFs are therefore renumbered so that all DoFs of
/// part 0 come first, then part 1, etc.; within a part the original
/// relative order is preserved (stable), which keeps mesh locality.

#include <vector>

#include "common/types.hpp"
#include "par/partition.hpp"

namespace exw::part {

struct Numbering {
  /// old global id -> new global id
  std::vector<GlobalIndex> old_to_new;
  /// new global id -> old global id
  std::vector<GlobalIndex> new_to_old;
  /// block-row ownership of the new ids
  par::RowPartition rows;
};

/// Build the renumbering for `parts` (per-old-id part assignment).
Numbering make_numbering(const std::vector<RankId>& parts, int nparts);

}  // namespace exw::part
