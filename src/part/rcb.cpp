#include "part/rcb.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace exw::part {

namespace {

Real coord_axis(const Vec3& v, int axis) {
  switch (axis) {
    case 0: return v.x;
    case 1: return v.y;
    default: return v.z;
  }
}

struct RcbWorker {
  const std::vector<Vec3>& coords;
  const std::vector<double>& weights;
  std::vector<RankId>& parts;

  double weight_of(GlobalIndex v) const {
    return weights.empty() ? 1.0 : weights[static_cast<std::size_t>(v)];
  }

  /// Assign part ids [first_part, first_part + nparts) to `ids`.
  void split(std::vector<GlobalIndex>& ids, int first_part, int nparts) {
    if (nparts == 1) {
      for (GlobalIndex v : ids) {
        parts[static_cast<std::size_t>(v)] = RankId{first_part};
      }
      return;
    }
    // Widest axis of the bounding box.
    Vec3 lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
    for (GlobalIndex v : ids) {
      const Vec3& c = coords[static_cast<std::size_t>(v)];
      lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
      hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
    }
    const Vec3 ext = hi - lo;
    int axis = 0;
    if (ext.y > ext.x) axis = 1;
    if (ext.z > coord_axis(ext, axis)) axis = 2;

    // Left side receives floor(nparts/2) parts and a proportional share of
    // the weight; split at the weighted "median" under that target.
    const int left_parts = nparts / 2;
    std::sort(ids.begin(), ids.end(), [&](GlobalIndex a, GlobalIndex b) {
      const Real ca = coord_axis(coords[static_cast<std::size_t>(a)], axis);
      const Real cb = coord_axis(coords[static_cast<std::size_t>(b)], axis);
      if (ca != cb) return ca < cb;
      return a < b;
    });
    double total = 0;
    for (GlobalIndex v : ids) total += weight_of(v);
    const double target = total * left_parts / nparts;

    double acc = 0;
    std::size_t cut = 0;
    while (cut < ids.size() && acc + weight_of(ids[cut]) <= target) {
      acc += weight_of(ids[cut]);
      ++cut;
    }
    // Never create an empty side.
    cut = std::clamp<std::size_t>(cut, 1, ids.size() - 1);

    std::vector<GlobalIndex> left(ids.begin(), ids.begin() + cut);
    std::vector<GlobalIndex> right(ids.begin() + cut, ids.end());
    split(left, first_part, left_parts);
    split(right, first_part + left_parts, nparts - left_parts);
  }
};

}  // namespace

std::vector<RankId> rcb_partition(const std::vector<Vec3>& coords,
                                  const std::vector<double>& weights,
                                  int nparts) {
  EXW_REQUIRE(nparts >= 1, "need at least one part");
  EXW_REQUIRE(weights.empty() || weights.size() == coords.size(),
              "weights/coords size mismatch");
  EXW_REQUIRE(coords.size() >= static_cast<std::size_t>(nparts),
              "fewer vertices than parts");
  std::vector<RankId> parts(coords.size(), RankId{0});
  std::vector<GlobalIndex> ids(coords.size());
  std::iota(ids.begin(), ids.end(), GlobalIndex{0});
  RcbWorker worker{coords, weights, parts};
  worker.split(ids, 0, nparts);
  return parts;
}

}  // namespace exw::part
