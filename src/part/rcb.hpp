#pragma once
/// \file rcb.hpp
/// Recursive coordinate bisection (RCB) domain decomposition.
///
/// RCB was the paper's original decomposition; §5.1 shows it produces
/// imbalanced/skewed subdomains on wind-turbine meshes — including small
/// disconnected slivers (Fig. 4) and a ~10x wider nonzero spread than the
/// graph partitioner (Fig. 5). We reproduce it faithfully: recursively
/// split the vertex set along the widest coordinate axis at the weighted
/// median.

#include <vector>

#include "common/types.hpp"

namespace exw::part {

/// Partition `coords` into `nparts` parts balancing `weights`
/// (pass empty weights for unit weights). Returns per-vertex part ids.
std::vector<RankId> rcb_partition(const std::vector<Vec3>& coords,
                                  const std::vector<double>& weights,
                                  int nparts);

}  // namespace exw::part
