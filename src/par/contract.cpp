#include "par/contract.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"

namespace exw::par::contract {

namespace {

thread_local RankId t_rank = kNoRank;

/// Per-region single-sender registry: (src, dst, tag) -> first sender.
struct ChannelKey {
  RankId src;
  RankId dst;
  int tag;
  auto operator<=>(const ChannelKey&) const = default;
};

std::mutex g_channel_mutex;
std::map<ChannelKey, std::thread::id> g_channel_senders;
std::atomic<bool> g_region_active{false};

struct Counters {
  std::atomic<long> regions{0};
  std::atomic<long> sends{0};
  std::atomic<long> recvs{0};
  std::atomic<long> rank_writes{0};
  std::atomic<long> kernel_charges{0};
  std::atomic<long> message_charges{0};
  std::atomic<long> phase_mutations{0};
  std::atomic<long> violations{0};
};
Counters g_counters;

[[noreturn]] void violation(const std::string& msg) {
  g_counters.violations.fetch_add(1, std::memory_order_relaxed);
  EXW_THROW("threading contract violated: " + msg +
            " (see thread_pool.hpp for the rank-parallel contract)");
}

}  // namespace

ScopedRankContext::ScopedRankContext(RankId rank) : prev_(t_rank) {
  t_rank = rank;
}

ScopedRankContext::~ScopedRankContext() { t_rank = prev_; }

RankId current_rank() { return t_rank; }

void begin_region() {
  {
    std::lock_guard<std::mutex> lk(g_channel_mutex);
    g_channel_senders.clear();
  }
  g_region_active.store(true, std::memory_order_release);
  g_counters.regions.fetch_add(1, std::memory_order_relaxed);
}

void end_region() {
  g_region_active.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lk(g_channel_mutex);
  g_channel_senders.clear();
}

void check_send(RankId src, RankId dst, int tag, const char* where) {
  g_counters.sends.fetch_add(1, std::memory_order_relaxed);
  const RankId ctx = t_rank;
  if (ctx != kNoRank && ctx != src) {
    std::ostringstream os;
    os << "rank body " << ctx << " called " << where << " with src " << src
       << " (dst " << dst << ", tag " << tag
       << ") — a rank body may only send as itself";
    violation(os.str());
  }
  if (g_region_active.load(std::memory_order_acquire)) {
    const auto me = std::this_thread::get_id();
    std::lock_guard<std::mutex> lk(g_channel_mutex);
    const auto [it, inserted] =
        g_channel_senders.try_emplace(ChannelKey{src, dst, tag}, me);
    if (!inserted && it->second != me) {
      std::ostringstream os;
      os << "two distinct threads sent on channel (src " << src << ", dst "
         << dst << ", tag " << tag
         << ") within one parallel region — per-channel FIFO order, and with "
            "it bitwise determinism, is lost";
      violation(os.str());
    }
  }
}

void check_recv(RankId dst, RankId src, int tag, const char* where) {
  g_counters.recvs.fetch_add(1, std::memory_order_relaxed);
  const RankId ctx = t_rank;
  if (ctx != kNoRank && ctx != dst) {
    std::ostringstream os;
    os << "rank body " << ctx << " called " << where << " with dst " << dst
       << " (src " << src << ", tag " << tag
       << ") — a rank body may only receive its own messages";
    violation(os.str());
  }
}

void check_rank_write(RankId target, const char* what, const char* file,
                      int line) {
  g_counters.rank_writes.fetch_add(1, std::memory_order_relaxed);
  const RankId ctx = t_rank;
  if (ctx != kNoRank && ctx != target) {
    std::ostringstream os;
    os << "rank body " << ctx << " wrote rank " << target << "'s state via "
       << what << " at " << file << ":" << line
       << " — a rank body may only mutate its own rank's state";
    violation(os.str());
  }
}

void check_kernel_charge(RankId r) {
  g_counters.kernel_charges.fetch_add(1, std::memory_order_relaxed);
  const RankId ctx = t_rank;
  if (ctx != kNoRank && ctx != r) {
    std::ostringstream os;
    os << "rank body " << ctx << " charged Tracer::kernel to rank " << r
       << " — kernel work must be charged by the owning rank's body";
    violation(os.str());
  }
}

void check_message_charge(RankId src) {
  g_counters.message_charges.fetch_add(1, std::memory_order_relaxed);
  const RankId ctx = t_rank;
  if (ctx != kNoRank && ctx != src) {
    std::ostringstream os;
    os << "rank body " << ctx << " charged Tracer::message with src " << src
       << " — a message must be charged by the sending rank's body";
    violation(os.str());
  }
}

void check_phase_mutation(const char* op) {
  g_counters.phase_mutations.fetch_add(1, std::memory_order_relaxed);
  if (t_rank != kNoRank) {
    std::ostringstream os;
    os << "Tracer::" << op << " called from inside rank body " << t_rank
       << " — the phase stack is frozen during parallel regions; push/pop "
          "phases on the orchestrator, between regions";
    violation(os.str());
  }
}

Report report() {
  Report r;
  r.regions = g_counters.regions.load(std::memory_order_relaxed);
  r.sends = g_counters.sends.load(std::memory_order_relaxed);
  r.recvs = g_counters.recvs.load(std::memory_order_relaxed);
  r.rank_writes = g_counters.rank_writes.load(std::memory_order_relaxed);
  r.kernel_charges = g_counters.kernel_charges.load(std::memory_order_relaxed);
  r.message_charges =
      g_counters.message_charges.load(std::memory_order_relaxed);
  r.phase_mutations =
      g_counters.phase_mutations.load(std::memory_order_relaxed);
  r.violations = g_counters.violations.load(std::memory_order_relaxed);
  return r;
}

void reset() {
  g_counters.regions.store(0, std::memory_order_relaxed);
  g_counters.sends.store(0, std::memory_order_relaxed);
  g_counters.recvs.store(0, std::memory_order_relaxed);
  g_counters.rank_writes.store(0, std::memory_order_relaxed);
  g_counters.kernel_charges.store(0, std::memory_order_relaxed);
  g_counters.message_charges.store(0, std::memory_order_relaxed);
  g_counters.phase_mutations.store(0, std::memory_order_relaxed);
  g_counters.violations.store(0, std::memory_order_relaxed);
}

std::string summary() {
  const Report r = report();
  std::ostringstream os;
  os << "contract: " << r.regions << " regions, " << r.sends << " sends, "
     << r.recvs << " recvs, " << r.rank_writes << " rank writes, "
     << r.kernel_charges << " kernel charges, " << r.message_charges
     << " message charges, " << r.phase_mutations << " phase ops, "
     << r.violations << " violations";
  return os.str();
}

}  // namespace exw::par::contract
