#pragma once
/// \file contract.hpp
/// Machine-checked threading contract for the rank-parallel executor.
///
/// thread_pool.hpp states the contract rank bodies must obey so that
/// concurrent execution stays bitwise-identical to the serial loop:
///   * body `i` mutates only rank-i-owned state;
///   * body `i` sends with `src == i` and receives with `dst == i`, so
///     every (src, dst, tag) mailbox channel has a single sender thread
///     and per-channel FIFO order is deterministic;
///   * Tracer kernel/message charges are made as rank `i`;
///   * the phase stack is frozen while a region runs (push/pop only on
///     the orchestrator, between regions).
/// This header turns those rules from prose into runtime checks.
///
/// Mechanics: ThreadPool::parallel_for opens a *checked region* and sets
/// a thread-local ScopedRankContext(i) around each body, so every layer
/// that carries the contract (Transport, Tracer, the per-rank accessors
/// in linalg/assembly) can ask "which rank body am I inside?" and reject
/// cross-rank access with an actionable exw::Error. A per-region
/// channel registry additionally detects two distinct threads sending on
/// the same (src, dst, tag) channel — the FIFO-determinism invariant —
/// even when rank contexts cannot place the callers.
///
/// Checks compile away entirely when EXW_CONTRACT_CHECKS=OFF (the CMake
/// option; default ON except in Release builds): call sites go through
/// the EXW_CONTRACT_CHECK macros, which expand to ((void)0) with the
/// option off, so hot paths carry zero overhead in production builds.

#include <string>

#include "common/types.hpp"

#ifndef EXW_CONTRACT_CHECKS_ENABLED
#define EXW_CONTRACT_CHECKS_ENABLED 0
#endif

#if EXW_CONTRACT_CHECKS_ENABLED
/// Evaluate a contract-check expression (compiled out when checks are off).
#define EXW_CONTRACT_CHECK(...) \
  do {                          \
    __VA_ARGS__;                \
  } while (0)
/// Reject a write to rank `rank`'s state from a different rank's body.
#define EXW_CONTRACT_CHECK_WRITE(rank, what) \
  ::exw::par::contract::check_rank_write((rank), (what), __FILE__, __LINE__)
#else
#define EXW_CONTRACT_CHECK(...) ((void)0)
#define EXW_CONTRACT_CHECK_WRITE(rank, what) ((void)0)
#endif

namespace exw::par::contract {

/// True when the build carries contract checks (EXW_CONTRACT_CHECKS=ON).
constexpr bool enabled() { return EXW_CONTRACT_CHECKS_ENABLED != 0; }

/// RAII thread-local rank context. ThreadPool::parallel_for wraps each
/// body `i` in ScopedRankContext(i); nested (inline) regions keep the
/// outer context, since their bodies are part of the outer rank's work.
class ScopedRankContext {
 public:
  explicit ScopedRankContext(RankId rank);
  ~ScopedRankContext();
  ScopedRankContext(const ScopedRankContext&) = delete;
  ScopedRankContext& operator=(const ScopedRankContext&) = delete;

 private:
  RankId prev_;
};

/// Rank body the calling thread is executing, or kNoRank outside regions.
inline constexpr RankId kNoRank{-1};
RankId current_rank();

/// Region lifecycle, driven by ThreadPool::parallel_for at top level.
/// begin_region() resets the per-region channel-sender registry.
void begin_region();
void end_region();

/// RAII region guard (no-op when `active` is false, for nested calls).
class RegionScope {
 public:
  explicit RegionScope(bool active) : active_(active) {
    if (active_) begin_region();
  }
  ~RegionScope() {
    if (active_) end_region();
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  bool active_;
};

// --- checks (throw exw::Error on violation) ------------------------------

/// Transport::send: the caller's rank context must equal `src`, and no
/// other thread may have sent on (src, dst, tag) within this region.
void check_send(RankId src, RankId dst, int tag, const char* where);

/// Transport::recv: the caller's rank context must equal `dst`.
void check_recv(RankId dst, RankId src, int tag, const char* where);

/// Mutable access to rank `target`'s state: context must match.
void check_rank_write(RankId target, const char* what, const char* file,
                      int line);

/// Tracer::kernel — work on rank `r` must be charged by rank r's body.
void check_kernel_charge(RankId r);

/// Tracer::message — a message must be charged by the sender's body.
void check_message_charge(RankId src);

/// Tracer phase push/pop — rejected inside a parallel region.
void check_phase_mutation(const char* op);

// --- reporting -----------------------------------------------------------

/// Counters of everything the checker looked at (for tests and triage).
struct Report {
  long regions = 0;          ///< checked parallel regions opened
  long sends = 0;            ///< Transport::send calls checked
  long recvs = 0;            ///< Transport::recv calls checked
  long rank_writes = 0;      ///< per-rank mutable accessor calls checked
  long kernel_charges = 0;   ///< Tracer::kernel calls checked
  long message_charges = 0;  ///< Tracer::message calls checked
  long phase_mutations = 0;  ///< phase push/pop calls checked
  long violations = 0;       ///< checks that threw
};

/// Snapshot of the process-wide counters.
Report report();

/// Reset all counters (tests).
void reset();

/// One-line human-readable summary of report().
std::string summary();

}  // namespace exw::par::contract
