#include "par/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace exw::par {

RowPartition::RowPartition(std::vector<GlobalIndex> starts)
    : starts_(std::move(starts)) {
  EXW_REQUIRE(starts_.size() >= 2, "partition needs at least one rank");
  EXW_REQUIRE(std::is_sorted(starts_.begin(), starts_.end()),
              "partition offsets must be monotone");
}

RowPartition RowPartition::even(GlobalIndex n, int nranks) {
  EXW_REQUIRE(nranks >= 1, "need at least one rank");
  std::vector<GlobalIndex> starts(static_cast<std::size_t>(nranks) + 1);
  const std::int64_t base = n.value() / nranks;
  const std::int64_t rem = n.value() % nranks;
  starts[0] = GlobalIndex{0};
  for (std::size_t r = 0; r < static_cast<std::size_t>(nranks); ++r) {
    starts[r + 1] = starts[r] + base + (static_cast<std::int64_t>(r) < rem ? 1 : 0);
  }
  return RowPartition(std::move(starts));
}

RowPartition RowPartition::from_counts(const std::vector<GlobalIndex>& counts) {
  std::vector<GlobalIndex> starts(counts.size() + 1, GlobalIndex{0});
  for (std::size_t r = 0; r < counts.size(); ++r) {
    starts[r + 1] = starts[r] + counts[r];
  }
  return RowPartition(std::move(starts));
}

RankId RowPartition::rank_of(GlobalIndex g) const {
  EXW_ASSERT(g >= GlobalIndex{0} && g < global_size());
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), g);
  return RankId{(it - starts_.begin()) - 1};
}

}  // namespace exw::par
