#include "par/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "par/contract.hpp"
#include "perf/purity.hpp"

namespace exw::par {

namespace {

thread_local bool t_in_region = false;
std::atomic<bool> g_serial{false};

int configured_threads() {
  // Read once, before any worker exists, so the mt-unsafe getenv is safe.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* s = std::getenv("EXW_NUM_THREADS")) {
    const int n = std::atoi(s);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? checked_narrow<int>(hw) : 1;
}

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;
  std::mutex mutex;
  std::condition_variable cv_start;
  std::condition_variable cv_done;
  std::uint64_t epoch = 0;
  const FunctionRef* fn = nullptr;
  int n = 0;
#if EXW_PURITY_CHECKS_ENABLED
  /// Purity region open on the orchestrator when it dispatched the
  /// current epoch; workers inherit it so rank-body allocations are
  /// attributed (and, in fatal mode, flagged) exactly as if they ran
  /// inline. Written under `mutex` before the epoch bump, so the epoch
  /// handshake publishes it to every worker.
  perf::purity::RegionToken region;
#endif
  std::atomic<int> next{0};
  int finished = 0;  ///< workers done with the current epoch
  bool stop = false;
  std::exception_ptr error;
};

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl), num_threads_(configured_threads()) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read before any worker spawns
  if (std::getenv("EXW_SERIAL") != nullptr) {
    g_serial.store(true, std::memory_order_relaxed);
  }
  // The orchestrator participates in every region, so spawn one fewer.
  for (int t = 0; t < num_threads_ - 1; ++t) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv_start.notify_all();
  for (auto& w : impl_->workers) {
    w.join();
  }
  delete impl_;
}

void ThreadPool::run_bodies() {
  t_in_region = true;
#if EXW_PURITY_CHECKS_ENABLED
  // No-op on the orchestrator (its region stack is already open); on a
  // pool worker this pushes the dispatching thread's innermost region.
  perf::purity::ScopedRegionInherit inherit(impl_->region);
#endif
  for (;;) {
    const int i = impl_->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= impl_->n) break;
    try {
#if EXW_CONTRACT_CHECKS_ENABLED
      contract::ScopedRankContext ctx(RankId{i});
#endif
      (*impl_->fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(impl_->mutex);
      if (!impl_->error) {
        impl_->error = std::current_exception();
      }
    }
  }
  t_in_region = false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(impl_->mutex);
      impl_->cv_start.wait(
          lk, [&] { return impl_->stop || impl_->epoch != seen; });
      if (impl_->stop) return;
      seen = impl_->epoch;
    }
    run_bodies();
    {
      std::lock_guard<std::mutex> lk(impl_->mutex);
      impl_->finished += 1;
      if (impl_->finished == checked_narrow<int>(impl_->workers.size())) {
        impl_->cv_done.notify_one();
      }
    }
  }
}

void ThreadPool::parallel_for(int n, FunctionRef fn) {
  if (n <= 0) return;
  if (num_threads_ <= 1 || n == 1 || t_in_region ||
      g_serial.load(std::memory_order_relaxed)) {
    // Mirror run_bodies(): run every body even if one throws, then
    // rethrow the first failure. Otherwise a throwing body would leave
    // different side effects (tracer charges, pending transport
    // messages) in serial vs. threaded runs.
#if EXW_CONTRACT_CHECKS_ENABLED
    // A nested call is part of the enclosing rank's body: keep the outer
    // rank context and region. Only a top-level inline region (serial
    // mode, single-thread pool, n == 1) opens a checked region of its own.
    const bool top_level =
        !t_in_region && contract::current_rank() == contract::kNoRank;
    contract::RegionScope region(top_level);
#endif
    std::exception_ptr error;
    for (int i = 0; i < n; ++i) {
      try {
#if EXW_CONTRACT_CHECKS_ENABLED
        if (top_level) {
          contract::ScopedRankContext ctx(RankId{i});
          fn(i);
          continue;
        }
#endif
        fn(i);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
    }
    if (error) {
      std::rethrow_exception(error);
    }
    return;
  }
#if EXW_CONTRACT_CHECKS_ENABLED
  contract::RegionScope region(true);
#endif
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->fn = &fn;
#if EXW_PURITY_CHECKS_ENABLED
    impl_->region = perf::purity::capture();
#endif
    impl_->n = n;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->finished = 0;
    impl_->error = nullptr;
    impl_->epoch += 1;
  }
  impl_->cv_start.notify_all();
  run_bodies();
  std::unique_lock<std::mutex> lk(impl_->mutex);
  impl_->cv_done.wait(lk, [&] {
    return impl_->finished == checked_narrow<int>(impl_->workers.size());
  });
  impl_->fn = nullptr;
  if (impl_->error) {
    std::exception_ptr e = impl_->error;
    impl_->error = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

bool in_parallel_region() { return t_in_region; }

void set_serial_mode(bool serial) {
  g_serial.store(serial, std::memory_order_relaxed);
}

bool serial_mode() { return g_serial.load(std::memory_order_relaxed); }

void parallel_for(int n, FunctionRef fn) {
  ThreadPool::instance().parallel_for(n, fn);
}

}  // namespace exw::par
