#include "par/comm_audit.hpp"

#if EXW_COMM_AUDIT_ENABLED

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <tuple>

#include "common/error.hpp"
#include "par/contract.hpp"
#include "par/tags.hpp"
#include "perf/purity.hpp"

namespace exw::par::comm_audit {

namespace {

/// Process-wide counters behind report()/reset(), mirroring the contract
/// and purity layers. Relaxed atomics: counts, not synchronization.
struct Counters {
  std::atomic<long long> collectives{0};
  std::atomic<long long> sends{0};
  std::atomic<long long> recvs{0};
  std::atomic<long long> phase_checks{0};
  std::atomic<long long> final_checks{0};
  std::atomic<long long> violations{0};
  std::atomic<long long> teardown_reports{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

std::string site_str(const Record& r) {
  return std::string(r.file) + ":" + std::to_string(r.line);
}

std::string describe(const Record& r) {
  std::string out = op_name(r.kind);
  out += "(count=" + std::to_string(r.count);
  if (r.tag >= 0) {
    out += ", tag=" + std::to_string(r.tag);
    out += " [" + std::string(tags::name(r.tag)) + "]";
  }
  out += ") at " + site_str(r);
  return out;
}

bool same_site(const Record& a, const Record& b) {
  // file_name() pointers can differ across translation units for the
  // same path, so compare contents, not pointers.
  return a.line == b.line && std::strcmp(a.file, b.file) == 0;
}

}  // namespace

Report report() {
  Counters& c = counters();
  Report r;
  r.collectives = c.collectives.load(std::memory_order_relaxed);
  r.sends = c.sends.load(std::memory_order_relaxed);
  r.recvs = c.recvs.load(std::memory_order_relaxed);
  r.phase_checks = c.phase_checks.load(std::memory_order_relaxed);
  r.final_checks = c.final_checks.load(std::memory_order_relaxed);
  r.violations = c.violations.load(std::memory_order_relaxed);
  r.teardown_reports = c.teardown_reports.load(std::memory_order_relaxed);
  return r;
}

void reset() {
  Counters& c = counters();
  c.collectives.store(0, std::memory_order_relaxed);
  c.sends.store(0, std::memory_order_relaxed);
  c.recvs.store(0, std::memory_order_relaxed);
  c.phase_checks.store(0, std::memory_order_relaxed);
  c.final_checks.store(0, std::memory_order_relaxed);
  c.violations.store(0, std::memory_order_relaxed);
  c.teardown_reports.store(0, std::memory_order_relaxed);
}

std::string summary() {
  const Report r = report();
  return "comm-audit: " + std::to_string(r.collectives) + " collectives, " +
         std::to_string(r.sends) + " sends, " + std::to_string(r.recvs) +
         " recvs, " + std::to_string(r.phase_checks) + " boundary checks, " +
         std::to_string(r.final_checks) + " final checks, " +
         std::to_string(r.violations) + " violations";
}

const char* op_name(OpKind kind) {
  switch (kind) {
    case OpKind::kAllreduceSum:
      return "allreduce_sum";
    case OpKind::kAllreduceSumVec:
      return "allreduce_sum_vec";
    case OpKind::kAllreduceSumVecOverlapped:
      return "allreduce_sum_vec_overlapped";
    case OpKind::kAllreduceMax:
      return "allreduce_max";
    case OpKind::kSend:
      return "send";
    case OpKind::kRecv:
      return "recv";
  }
  return "?";
}

// --- Auditor internals -----------------------------------------------------

/// Per-rank ledger state. The pending vector holds rank-context
/// collective records awaiting the next boundary comparison; it is
/// cleared (capacity retained) by every successful check, so steady-state
/// audits allocate nothing. Send/recv tallies are atomics because any
/// neighbor's thread observes rank r as an endpoint.
struct Auditor::PerRank {
  std::vector<Record> pending;
  std::atomic<long long> sends{0};
  std::atomic<long long> recvs{0};
};

/// Unmatched-send FIFO for one (src, dst, tag) channel, mirroring the
/// Transport mailbox exactly (per-channel FIFO order is a contract
/// invariant). `fifo[head..)` are messages posted but not yet received;
/// when the channel drains the buffer is cleared with capacity retained,
/// so warm refills that fully consume their messages never re-allocate.
struct Auditor::Channel {
  std::vector<Record> fifo;
  std::size_t head = 0;
};

struct Auditor::Impl {
  explicit Impl(int n) : ranks(static_cast<std::size_t>(n)) {}

  std::mutex mutex;  ///< guards pending vectors and the channel map
  std::atomic<unsigned long long> epoch{0};
  std::vector<PerRank> ranks;
  /// (src, dst, tag) -> unmatched sends. std::map, not unordered: the
  /// end-of-run audit iterates it and must report deterministically.
  std::map<std::tuple<int, int, int>, Channel> channels;
};

Auditor::Auditor(int nranks) : nranks_(nranks) {
  EXW_REQUIRE(nranks >= 1, "comm audit needs at least one rank");
  EXW_PURITY_ALLOW("comm-audit ledger");
  impl_ = new Impl(nranks);  // exw-warm-ok: once per Runtime (cold)
}

Auditor::~Auditor() { delete impl_; }

void Auditor::violation(const std::string& msg) {
  counters().violations.fetch_add(1, std::memory_order_relaxed);
  EXW_THROW("comm-audit: " + msg);
}

void Auditor::on_collective(OpKind kind, std::size_t count,
                            const std::source_location& site) {
  counters().collectives.fetch_add(1, std::memory_order_relaxed);
  const RankId ctx = contract::current_rank();
  if (ctx == contract::kNoRank) {
    // Orchestrator-driven global collective: every rank participates by
    // construction, so there is nothing to compare across ranks. Advance
    // the shared epoch that stamps rank-context records, so a rank-body
    // collective interleaved differently with global ones still diverges.
    impl_->epoch.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  EXW_REQUIRE(ctx.value() >= 0 && ctx.value() < nranks_,
              "comm audit: rank context out of range for this Runtime");
  Record rec;
  rec.kind = kind;
  rec.file = site.file_name();
  rec.line = static_cast<int>(site.line());
  rec.count = count;
  rec.epoch = impl_->epoch.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  EXW_PURITY_ALLOW("comm-audit ledger");
  impl_->ranks[static_cast<std::size_t>(ctx.value())]
      .pending.push_back(rec);  // exw-warm-ok: cleared w/ capacity at boundary
}

void Auditor::on_send(RankId src, RankId dst, int tag, std::size_t count,
                      std::size_t bytes, const std::source_location& site) {
  counters().sends.fetch_add(1, std::memory_order_relaxed);
  if (!tags::registered(tag)) {
    violation("send with unregistered tag " + std::to_string(tag) + " (" +
              std::to_string(src.value()) + " -> " +
              std::to_string(dst.value()) + ") at " +
              std::string(site.file_name()) + ":" +
              std::to_string(site.line()) +
              " — add the tag to par/tags.hpp's registry");
  }
  Record rec;
  rec.kind = OpKind::kSend;
  rec.file = site.file_name();
  rec.line = static_cast<int>(site.line());
  rec.count = count;
  rec.bytes = bytes;
  rec.tag = tag;
  rec.neighbor = dst.value();
  rec.epoch = impl_->epoch.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  EXW_PURITY_ALLOW("comm-audit ledger");
  Channel& ch = impl_->channels[{src.value(), dst.value(), tag}];
  ch.fifo.push_back(rec);  // exw-warm-ok: drained rings retain capacity
  impl_->ranks[static_cast<std::size_t>(src.value())].sends.fetch_add(
      1, std::memory_order_relaxed);
}

void Auditor::on_recv(RankId dst, RankId src, int tag, std::size_t count,
                      std::size_t bytes, const std::source_location& site) {
  counters().recvs.fetch_add(1, std::memory_order_relaxed);
  if (!tags::registered(tag)) {
    violation("recv with unregistered tag " + std::to_string(tag) + " (" +
              std::to_string(src.value()) + " -> " +
              std::to_string(dst.value()) + ") at " +
              std::string(site.file_name()) + ":" +
              std::to_string(site.line()) +
              " — add the tag to par/tags.hpp's registry");
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->ranks[static_cast<std::size_t>(dst.value())].recvs.fetch_add(
      1, std::memory_order_relaxed);
  auto it = impl_->channels.find(  // exw-warm-ok: ledger lookup, no growth
      std::tuple<int, int, int>{src.value(), dst.value(), tag});
  if (it == impl_->channels.end() || it->second.head >= it->second.fifo.size()) {
    // Transport::recv only succeeds when the mailbox has a message, and
    // every send is recorded before it can be received — so an unrecorded
    // message means the payload bypassed the audited entry points.
    violation("recv of an unrecorded message on channel " +
              std::to_string(src.value()) + " -> " +
              std::to_string(dst.value()) + " tag " + std::to_string(tag) +
              " [" + std::string(tags::name(tag)) + "] at " +
              std::string(site.file_name()) + ":" +
              std::to_string(site.line()));
  }
  Channel& ch = it->second;
  const Record sent = ch.fifo[ch.head];
  ++ch.head;
  if (ch.head == ch.fifo.size()) {
    // Channel drained: reset the ring without giving back capacity, so
    // the next warm refill records into already-owned storage.
    ch.fifo.clear();
    ch.head = 0;
  }
  if (sent.count != count || sent.bytes != bytes) {
    Record got;
    got.kind = OpKind::kRecv;
    got.file = site.file_name();
    got.line = static_cast<int>(site.line());
    got.count = count;
    got.bytes = bytes;
    got.tag = tag;
    got.neighbor = src.value();
    violation("payload mismatch on channel " + std::to_string(src.value()) +
              " -> " + std::to_string(dst.value()) + " tag " +
              std::to_string(tag) + " [" + std::string(tags::name(tag)) +
              "]: sent count=" + std::to_string(sent.count) + "/" +
              std::to_string(sent.bytes) + "B at " + site_str(sent) +
              ", received count=" + std::to_string(count) + "/" +
              std::to_string(bytes) + "B at " + site_str(got) +
              " — element types disagree across the channel");
  }
}

std::string Auditor::sequences_error_locked(const char* where) {
  const std::vector<Record>& ref = impl_->ranks[0].pending;
  std::string err;
  for (std::size_t r = 1; r < impl_->ranks.size() && err.empty(); ++r) {
    const std::vector<Record>& other = impl_->ranks[r].pending;
    const std::size_t common = std::min(ref.size(), other.size());
    for (std::size_t i = 0; i < common; ++i) {
      const Record& a = ref[i];
      const Record& b = other[i];
      if (a.kind != b.kind || a.count != b.count || a.epoch != b.epoch ||
          !same_site(a, b)) {
        err = "divergent collective sequence at " + std::string(where) +
              ", position " + std::to_string(i) + ": rank 0 recorded " +
              describe(a) + " but rank " + std::to_string(r) + " recorded " +
              describe(b);
        break;
      }
    }
    if (err.empty() && ref.size() != other.size()) {
      const bool ref_longer = ref.size() > other.size();
      const Record& extra = ref_longer ? ref[common] : other[common];
      err = "divergent collective sequence at " + std::string(where) +
            ": rank " + std::to_string(ref_longer ? 0 : r) + " recorded " +
            std::to_string(std::max(ref.size(), other.size())) +
            " collective(s) but rank " + std::to_string(ref_longer ? r : 0) +
            " recorded " + std::to_string(common) + "; first extra is " +
            describe(extra) + " — a deadlock on real hardware";
    }
  }
  // Advance the comparison window whether or not the check passed: the
  // divergence is reported once, and teardown stays quiet afterwards.
  for (PerRank& pr : impl_->ranks) {
    pr.pending.clear();  // capacity retained
  }
  return err;
}

std::string Auditor::unmatched_error_locked(const char* where) {
  std::string err;
  std::size_t total = 0;
  for (auto& [key, ch] : impl_->channels) {
    const std::size_t unreceived = ch.fifo.size() - ch.head;
    if (unreceived == 0) {
      continue;
    }
    total += unreceived;
    if (err.empty()) {
      const Record& first = ch.fifo[ch.head];
      err = "unmatched send(s) at " + std::string(where) + ": channel " +
            std::to_string(std::get<0>(key)) + " -> " +
            std::to_string(std::get<1>(key)) + " tag " +
            std::to_string(std::get<2>(key)) + " [" +
            std::string(tags::name(std::get<2>(key))) + "] holds " +
            std::to_string(unreceived) +
            " message(s) sent but never received; first posted by " +
            describe(first);
    }
    // Report once, then forget, so teardown stays quiet after an
    // explicit audit already surfaced the leak.
    ch.fifo.clear();
    ch.head = 0;
  }
  if (!err.empty() && total > 0) {
    err += " (" + std::to_string(total) + " unreceived in total)";
  }
  return err;
}

void Auditor::check_collective_sequences(const char* where) {
  counters().phase_checks.fetch_add(1, std::memory_order_relaxed);
  std::string err;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    err = sequences_error_locked(where);
  }
  if (!err.empty()) {
    violation(err);
  }
}

void Auditor::final_check(const char* where) {
  counters().final_checks.fetch_add(1, std::memory_order_relaxed);
  counters().phase_checks.fetch_add(1, std::memory_order_relaxed);
  std::string err;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    err = sequences_error_locked(where);
    if (err.empty()) {
      err = unmatched_error_locked(where);
    }
  }
  if (!err.empty()) {
    violation(err);
  }
}

int Auditor::teardown_check() noexcept {
  int problems = 0;
  try {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const std::string seq = sequences_error_locked("Runtime teardown");
    if (!seq.empty()) {
      ++problems;
      std::fprintf(stderr, "comm-audit: %s\n", seq.c_str());
    }
    const std::string un = unmatched_error_locked("Runtime teardown");
    if (!un.empty()) {
      ++problems;
      std::fprintf(stderr, "comm-audit: %s\n", un.c_str());
    }
    if (problems > 0) {
      counters().violations.fetch_add(problems, std::memory_order_relaxed);
      counters().teardown_reports.fetch_add(problems,
                                            std::memory_order_relaxed);
    }
  } catch (...) {
    // A destructor-context audit must never propagate (out-of-memory
    // while composing the message, at worst). The violation counters
    // above are only short if the throw preempted them.
  }
  return problems;
}

void Auditor::discard_pending() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (PerRank& pr : impl_->ranks) {
    pr.pending.clear();
  }
  for (auto& [key, ch] : impl_->channels) {
    ch.fifo.clear();
    ch.head = 0;
  }
}

void Auditor::on_phase_pop(const std::string& name) {
  check_collective_sequences(name.empty() ? "<root>" : name.c_str());
}

long long Auditor::rank_sends(RankId r) const {
  return impl_->ranks[static_cast<std::size_t>(r.value())].sends.load(
      std::memory_order_relaxed);
}

long long Auditor::rank_recvs(RankId r) const {
  return impl_->ranks[static_cast<std::size_t>(r.value())].recvs.load(
      std::memory_order_relaxed);
}

std::size_t Auditor::pending_collectives(RankId r) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->ranks[static_cast<std::size_t>(r.value())].pending.size();
}

std::size_t Auditor::unreceived_messages() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::size_t total = 0;
  for (const auto& [key, ch] : impl_->channels) {
    total += ch.fifo.size() - ch.head;
  }
  return total;
}

unsigned long long Auditor::collective_epoch() const {
  return impl_->epoch.load(std::memory_order_relaxed);
}

}  // namespace exw::par::comm_audit

#endif  // EXW_COMM_AUDIT_ENABLED
