#pragma once
/// \file thread_pool.hpp
/// Shared-memory execution of simulated-rank local phases.
///
/// The reproduction drives SPMD algorithms rank-sequentially from one
/// orchestrator thread, but each rank's local phase is embarrassingly
/// parallel by construction (that is the paper's whole premise). The
/// process-wide ThreadPool below runs `fn(0..n-1)` concurrently so the
/// wall-clock of the Table 1 / Fig. 3-10 benchmarks no longer grows
/// linearly with the simulated rank count.
///
/// Contract for rank bodies executed through parallel_for():
///   * body `i` runs exactly once, on some pool thread (or inline);
///   * a body may freely mutate rank-i-owned state and call
///     Transport::send / recv for rank i (mailboxes are lock-sharded)
///     and Tracer::kernel / message with `src == i` (cross-rank message
///     charges are atomic);
///   * phase push/pop must stay on the orchestrator thread — the open
///     phase stack is frozen for the duration of the region;
///   * nested parallel_for() calls run inline on the calling thread;
///   * the first exception thrown by any body is rethrown on the
///     orchestrator thread once every body has finished.
///
/// This contract is machine-checked: parallel_for wraps each body in a
/// contract::ScopedRankContext and opens a checked region, and the
/// layers that carry the contract (Transport, Tracer, the per-rank
/// accessors in linalg/assembly) reject cross-rank access with an
/// exw::Error naming the offending ranks. See par/contract.hpp; checks
/// compile away when EXW_CONTRACT_CHECKS=OFF.
///
/// Sizing: EXW_NUM_THREADS if set, else std::thread::hardware_concurrency.
/// EXW_SERIAL=1 (or set_serial_mode(true), the benches' --serial flag)
/// forces every region inline for determinism debugging; the parallel
/// path is bitwise-identical anyway because each rank body is unchanged
/// and all reductions happen on the orchestrator.

#include <type_traits>
#include <utility>

namespace exw::par {

/// Non-owning, non-allocating reference to a callable `void(int)`.
///
/// parallel_for used to take `const std::function<void(int)>&`; every
/// call site passes a stack lambda, and converting a lambda whose
/// captures exceed the small-buffer size into a std::function heap-
/// allocates — on the *warm* path, once per dispatch. FunctionRef is two
/// words (object pointer + thunk) and never owns, which is exactly right
/// for a fork-join region: the callable provably outlives the call.
class FunctionRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_v<F&, int>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, int i) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(i);
        }) {}

  void operator()(int i) const { call_(obj_, i); }

 private:
  void* obj_;
  void (*call_)(void*, int);
};

class ThreadPool {
 public:
  /// The process-wide pool (created on first use, joined at exit).
  static ThreadPool& instance();

  /// Worker count the pool was sized for (>= 1; 1 means inline only).
  int num_threads() const { return num_threads_; }

  /// Run fn(i) for every i in [0, n), blocking until all bodies return.
  /// The callable is taken by non-owning reference (it outlives the
  /// region by construction), so dispatch never allocates.
  void parallel_for(int n, FunctionRef fn);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  void worker_loop();
  void run_bodies();

  struct Impl;
  Impl* impl_;
  int num_threads_ = 1;
};

/// True while the calling thread is executing a parallel_for body.
bool in_parallel_region();

/// Force all regions inline (the --serial escape hatch; also EXW_SERIAL=1).
void set_serial_mode(bool serial);
bool serial_mode();

/// Convenience: ThreadPool::instance().parallel_for honoring serial_mode().
void parallel_for(int n, FunctionRef fn);

}  // namespace exw::par
