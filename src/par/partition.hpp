#pragma once
/// \file partition.hpp
/// 1-D block-row ownership map.
///
/// hypre distributes matrices and vectors in 1-D block-row fashion among
/// MPI processes (paper §3.3): rank r owns the contiguous global rows
/// [starts[r], starts[r+1]). Arbitrary mesh-derived orderings are mapped
/// into this layout by the partitioner (part/) which renumbers DoFs so
/// that each rank's subdomain occupies one contiguous global range.

#include <vector>

#include "common/types.hpp"

namespace exw::par {

class RowPartition {
 public:
  RowPartition() = default;

  /// Build from explicit offsets; `starts` has nranks+1 monotone entries.
  explicit RowPartition(std::vector<GlobalIndex> starts);

  /// Even block partition of `n` rows over `nranks` ranks.
  static RowPartition even(GlobalIndex n, int nranks);

  /// Partition from per-rank row counts.
  static RowPartition from_counts(const std::vector<GlobalIndex>& counts);

  int nranks() const { return checked_narrow<int>(starts_.size()) - 1; }
  GlobalIndex global_size() const { return starts_.back(); }

  GlobalIndex first_row(RankId r) const { return starts_[static_cast<std::size_t>(r)]; }
  GlobalIndex end_row(RankId r) const { return starts_[static_cast<std::size_t>(r) + 1]; }
  LocalIndex local_size(RankId r) const {
    return checked_narrow<LocalIndex>(end_row(r) - first_row(r));
  }

  /// Owning rank of global row `g` (binary search).
  RankId rank_of(GlobalIndex g) const;

  /// Owned range check.
  bool owns(RankId r, GlobalIndex g) const {
    return g >= first_row(r) && g < end_row(r);
  }

  /// Local index of `g` on its owner — the audited global->local gateway.
  LocalIndex to_local(RankId r, GlobalIndex g) const {
    return checked_narrow<LocalIndex>(g - first_row(r));
  }

  const std::vector<GlobalIndex>& starts() const { return starts_; }

 private:
  std::vector<GlobalIndex> starts_{0};
};

}  // namespace exw::par
