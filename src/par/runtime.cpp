#include "par/runtime.hpp"

#include <algorithm>

namespace exw::par {

Runtime::Runtime(int nranks)
    : tracer_(nranks),
#if EXW_COMM_AUDIT_ENABLED
      audit_(std::make_unique<comm_audit::Auditor>(nranks)),
      transport_(&tracer_, nranks, audit_.get()),
#else
      transport_(&tracer_, nranks),
#endif
      nranks_(nranks) {
  EXW_REQUIRE(nranks >= 1, "runtime needs at least one rank");
#if EXW_COMM_AUDIT_ENABLED
  tracer_.set_phase_pop_listener(audit_.get());
#endif
}

Runtime::~Runtime() {
#if EXW_COMM_AUDIT_ENABLED
  // Unhook before the audit so a listener callback can never reach a
  // half-destroyed auditor, then run the never-throwing teardown scan
  // (problems go to stderr and the comm_audit::report() counters).
  tracer_.set_phase_pop_listener(nullptr);
  audit_->teardown_check();
#endif
}

void Runtime::comm_audit_verify() {
#if EXW_COMM_AUDIT_ENABLED
  audit_->final_check("comm_audit_verify");
#endif
}

comm_audit::Auditor* Runtime::comm_auditor() {
#if EXW_COMM_AUDIT_ENABLED
  return audit_.get();
#else
  return nullptr;
#endif
}

double Runtime::allreduce_sum(
    const std::vector<double>& per_rank_values EXW_COMM_SITE_DEF) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one value per rank");
  tracer_.collective(sizeof(double));
  EXW_COMM_AUDIT_RECORD(
      audit_->on_collective(comm_audit::OpKind::kAllreduceSum, 1, exw_site));
  double sum = 0;
  for (double v : per_rank_values) {
    sum += v;
  }
  return sum;
}

std::vector<double> Runtime::allreduce_sum_vec(
    const std::vector<std::vector<double>>& per_rank_values
        EXW_COMM_SITE_DEF) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one vector per rank");
  const std::size_t n = per_rank_values.front().size();
  tracer_.collective(static_cast<double>(n * sizeof(double)));
  EXW_COMM_AUDIT_RECORD(audit_->on_collective(
      comm_audit::OpKind::kAllreduceSumVec, n, exw_site));
  // Collective result staging — the MPI library's reduction buffer in a
  // real run, not application warm-path state.
  EXW_PURITY_ALLOW("collective payload staging");
  std::vector<double> sum(n, 0.0);
  for (const auto& v : per_rank_values) {
    EXW_REQUIRE(v.size() == n, "allreduce vector length mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      sum[i] += v[i];
    }
  }
  return sum;
}

std::vector<double> Runtime::allreduce_sum_vec_overlapped(
    const std::vector<std::vector<double>>& per_rank_values
        EXW_COMM_SITE_DEF) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one vector per rank");
  const std::size_t n = per_rank_values.front().size();
  tracer_.collective_overlapped(static_cast<double>(n * sizeof(double)));
  EXW_COMM_AUDIT_RECORD(audit_->on_collective(
      comm_audit::OpKind::kAllreduceSumVecOverlapped, n, exw_site));
  // Collective result staging — the MPI library's reduction buffer in a
  // real run, not application warm-path state.
  EXW_PURITY_ALLOW("collective payload staging");
  std::vector<double> sum(n, 0.0);
  for (const auto& v : per_rank_values) {
    EXW_REQUIRE(v.size() == n, "allreduce vector length mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      sum[i] += v[i];
    }
  }
  return sum;
}

GlobalIndex Runtime::allreduce_sum(
    const std::vector<GlobalIndex>& per_rank_values EXW_COMM_SITE_DEF) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one value per rank");
  tracer_.collective(sizeof(GlobalIndex));
  EXW_COMM_AUDIT_RECORD(
      audit_->on_collective(comm_audit::OpKind::kAllreduceSum, 1, exw_site));
  GlobalIndex sum{0};
  for (GlobalIndex v : per_rank_values) {
    sum += v;
  }
  return sum;
}

GlobalIndex Runtime::allreduce_max(
    const std::vector<GlobalIndex>& per_rank_values EXW_COMM_SITE_DEF) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one value per rank");
  tracer_.collective(sizeof(GlobalIndex));
  EXW_COMM_AUDIT_RECORD(
      audit_->on_collective(comm_audit::OpKind::kAllreduceMax, 1, exw_site));
  // Seed from the first element, not 0: a zero seed silently clamps the
  // result for all-negative inputs.
  GlobalIndex m = per_rank_values.front();
  for (GlobalIndex v : per_rank_values) {
    m = std::max(m, v);
  }
  return m;
}

}  // namespace exw::par
