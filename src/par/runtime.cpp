#include "par/runtime.hpp"

#include <algorithm>

namespace exw::par {

double Runtime::allreduce_sum(const std::vector<double>& per_rank_values) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one value per rank");
  tracer_.collective(sizeof(double));
  double sum = 0;
  for (double v : per_rank_values) {
    sum += v;
  }
  return sum;
}

std::vector<double> Runtime::allreduce_sum_vec(
    const std::vector<std::vector<double>>& per_rank_values) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one vector per rank");
  const std::size_t n = per_rank_values.front().size();
  tracer_.collective(static_cast<double>(n * sizeof(double)));
  // Collective result staging — the MPI library's reduction buffer in a
  // real run, not application warm-path state.
  EXW_PURITY_ALLOW("collective payload staging");
  std::vector<double> sum(n, 0.0);
  for (const auto& v : per_rank_values) {
    EXW_REQUIRE(v.size() == n, "allreduce vector length mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      sum[i] += v[i];
    }
  }
  return sum;
}

GlobalIndex Runtime::allreduce_sum(
    const std::vector<GlobalIndex>& per_rank_values) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one value per rank");
  tracer_.collective(sizeof(GlobalIndex));
  GlobalIndex sum{0};
  for (GlobalIndex v : per_rank_values) {
    sum += v;
  }
  return sum;
}

GlobalIndex Runtime::allreduce_max(
    const std::vector<GlobalIndex>& per_rank_values) {
  EXW_REQUIRE(checked_narrow<int>(per_rank_values.size()) == nranks_,
              "allreduce needs one value per rank");
  tracer_.collective(sizeof(GlobalIndex));
  // Seed from the first element, not 0: a zero seed silently clamps the
  // result for all-negative inputs.
  GlobalIndex m = per_rank_values.front();
  for (GlobalIndex v : per_rank_values) {
    m = std::max(m, v);
  }
  return m;
}

}  // namespace exw::par
