#pragma once
/// \file comm_audit.hpp
/// Runtime communication-determinism audit for the simulated runtime.
///
/// The next ROADMAP items (pipelined/s-step GMRES, 10k-rank streaming)
/// will reorder and batch collectives — exactly the class of change that
/// introduces rank-divergent collective sequences, tag collisions, and
/// deadlock-shaped bugs that neither the threading contract (PR 3) nor
/// the purity sanitizer (PR 8) can see. This layer makes the
/// communication contract machine-checked the same way those layers
/// check theirs:
///
///   * every Transport collective (Runtime::allreduce_*) and
///     point-to-point (Transport::send/recv) records
///     (op kind, call-site file:line, element count, tag, neighbor)
///     into a per-rank *communication ledger* (std::source_location
///     captures the caller's site; no macros at call sites);
///   * at every phase boundary (Tracer::pop_phase, via the
///     PhasePopListener hook) and at Runtime teardown, a cross-rank
///     *sequence comparison* checks that all ranks recorded the same
///     collective sequence; the first divergence throws an exw::Error
///     naming the divergent call site and both ranks — the
///     mismatched-collective / deadlock bug class, caught at the
///     boundary instead of hanging a 10k-rank run;
///   * an end-of-run audit flags unmatched sends (messages posted but
///     never received) with the posting call site, and recv payloads
///     whose byte size disagrees with the matching send (type punning
///     across a channel);
///   * every tag must come from the par::tags registry — an
///     unregistered tag is rejected at the first send/recv;
///   * comm_audit::report()/summary() mirror contract::report() and
///     purity::report().
///
/// Ledger mechanics and the purity interplay: collectives recorded from
/// the orchestrator (no rank context) are inherently identical across
/// ranks, so they only bump a shared epoch counter — no storage, no
/// allocation. Only rank-context collectives (recorded inside a
/// ScopedRankContext, i.e. from a parallel_for_ranks body) are stored,
/// stamped with the current epoch so interleaving divergence is caught;
/// today's tree has none, so warm paths allocate nothing for
/// collectives. Point-to-point channels keep a vector-backed FIFO of
/// *unmatched* sends that is cleared (capacity retained) whenever it
/// drains, so steady-state warm refills allocate nothing after the
/// first pass — the reuse benches' allocation-steadiness floors still
/// hold with the audit ON. What bookkeeping does allocate runs under
/// EXW_PURITY_ALLOW("comm-audit ledger"), the fourth allowlisted family
/// (see perf/purity.hpp).
///
/// Everything compiles away when EXW_COMM_AUDIT=OFF (the CMake option;
/// default ON except Release): the recording macros expand to
/// ((void)0), the site parameters vanish from the Transport/Runtime
/// signatures, comm_audit.cpp is not compiled, and the inline stubs
/// below keep report()/summary() callable — production builds carry
/// zero overhead and bit-identical behavior.
///
/// The static half of the discipline is tools/lint_comm.py (raw tag
/// literals, collectives under rank-dependent branching, unordered-
/// container iteration feeding FP accumulation) and the compile-time
/// uniqueness check in par/tags.hpp. DESIGN.md §15 documents all of it.

#include <string>

#include "common/types.hpp"

#ifndef EXW_COMM_AUDIT_ENABLED
#define EXW_COMM_AUDIT_ENABLED 0
#endif

#if EXW_COMM_AUDIT_ENABLED
#include <source_location>

#include <cstddef>
#include <mutex>
#include <vector>

#include "perf/tracer.hpp"
#endif

namespace exw::par::comm_audit {

/// True when the build carries the audit (EXW_COMM_AUDIT=ON).
constexpr bool enabled() { return EXW_COMM_AUDIT_ENABLED != 0; }

/// Counters of everything the audit looked at (for tests and triage).
/// Process-wide across all Runtime instances, mirroring
/// contract::report() / purity::report(). All-zero when compiled out.
struct Report {
  long long collectives = 0;     ///< collective records taken
  long long sends = 0;           ///< send records taken
  long long recvs = 0;           ///< recv records taken
  long long phase_checks = 0;    ///< cross-rank sequence comparisons run
  long long final_checks = 0;    ///< full end-of-run audits run
  long long violations = 0;      ///< divergences/unmatched/tag rejections
  long long teardown_reports = 0;  ///< violations surfaced at ~Runtime
};

#if EXW_COMM_AUDIT_ENABLED

Report report();
void reset();
std::string summary();

/// What a ledger entry describes.
enum class OpKind : int {
  kAllreduceSum = 0,
  kAllreduceSumVec,
  kAllreduceSumVecOverlapped,
  kAllreduceMax,
  kSend,
  kRecv,
};
const char* op_name(OpKind kind);

/// One ledger record. Sites are the *caller's* file:line, captured by
/// the std::source_location default argument on Transport::send/recv and
/// Runtime::allreduce_*. Plain pointers + integers: taking a record
/// never allocates.
struct Record {
  OpKind kind = OpKind::kSend;
  const char* file = "?";
  int line = 0;
  std::size_t count = 0;          ///< element count of the payload
  std::size_t bytes = 0;          ///< payload bytes (p2p matching key)
  int tag = -1;                   ///< channel tag (-1 for collectives)
  int neighbor = -1;              ///< dst for send, src for recv
  unsigned long long epoch = 0;   ///< orchestrator collectives seen first
};

/// Per-Runtime communication auditor. One instance per simulated world,
/// owned by par::Runtime; Transport and the allreduce entry points feed
/// it. Thread-safe: records may arrive from concurrent rank bodies.
class Auditor final : public perf::PhasePopListener {
 public:
  explicit Auditor(int nranks);
  ~Auditor() override;
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // --- recording (called by Transport / Runtime) -------------------------

  /// Record a collective. Outside any rank context (the orchestrator-
  /// driven global collectives) this bumps the shared epoch — all ranks
  /// see it by construction. Inside a rank body it is stored in that
  /// rank's ledger for cross-rank comparison at the next boundary.
  void on_collective(OpKind kind, std::size_t count,
                     const std::source_location& site);
  /// Record a point-to-point send; rejects unregistered tags.
  void on_send(RankId src, RankId dst, int tag, std::size_t count,
               std::size_t bytes, const std::source_location& site);
  /// Record a matched recv; rejects unregistered tags and payload-size
  /// mismatches against the matching send.
  void on_recv(RankId dst, RankId src, int tag, std::size_t count,
               std::size_t bytes, const std::source_location& site);

  // --- checks ------------------------------------------------------------

  /// Cross-rank collective-sequence comparison over everything recorded
  /// since the last boundary. Throws exw::Error naming the first
  /// divergent call site and both ranks; on success the window advances.
  void check_collective_sequences(const char* where);

  /// Full audit: sequence comparison plus unmatched-send scan. Throws
  /// exw::Error naming the channel and posting site of the first
  /// message that was sent but never received.
  void final_check(const char* where);

  /// Destructor-safe variant of final_check(): never throws; problems
  /// are counted in report() and summarized on stderr. Returns the
  /// number of problems found. Called by ~Runtime.
  int teardown_check() noexcept;

  /// Drop all pending (unchecked) state — used by tests that have
  /// asserted on a deliberate violation and want a quiet teardown.
  void discard_pending();

  /// Tracer phase boundary hook: audits the closing phase.
  void on_phase_pop(const std::string& name) override;

  // --- introspection (tests) ---------------------------------------------

  int nranks() const { return nranks_; }
  long long rank_sends(RankId r) const;
  long long rank_recvs(RankId r) const;
  /// Rank-context collective records awaiting the next boundary check.
  std::size_t pending_collectives(RankId r) const;
  /// Messages currently sent but not yet received, over all channels.
  std::size_t unreceived_messages() const;
  /// Orchestrator-driven collectives recorded (the shared epoch).
  unsigned long long collective_epoch() const;

 private:
  struct PerRank;
  struct Channel;

  [[noreturn]] void violation(const std::string& msg);
  /// Cross-rank comparison + window advance; "" when consistent.
  /// Caller holds impl_->mutex.
  std::string sequences_error_locked(const char* where);
  /// Unmatched-send scan + report-once cleanup; "" when fully drained.
  /// Caller holds impl_->mutex.
  std::string unmatched_error_locked(const char* where);

  int nranks_;
  struct Impl;
  Impl* impl_;
};

// Site-capture parameter helpers: with the audit ON, Transport::send /
// recv and Runtime::allreduce_* grow a defaulted std::source_location
// parameter recording the *caller's* file:line; with it OFF the
// signatures are exactly what they were before this layer existed.
// EXW_COMM_SITE_DECL goes on declarations (carries the default),
// EXW_COMM_SITE_DEF on out-of-line definitions.
#define EXW_COMM_SITE_DECL \
  , std::source_location exw_site = std::source_location::current()
#define EXW_COMM_SITE_DEF , std::source_location exw_site
/// Run an audit-recording statement (compiled out when OFF).
#define EXW_COMM_AUDIT_RECORD(...) \
  do {                             \
    __VA_ARGS__;                   \
  } while (0)

#else  // !EXW_COMM_AUDIT_ENABLED

class Auditor;  // never defined; pointers to it stay null

inline Report report() { return {}; }
inline void reset() {}
inline std::string summary() {
  return "comm-audit: disabled (EXW_COMM_AUDIT=OFF)";
}

#define EXW_COMM_SITE_DECL
#define EXW_COMM_SITE_DEF
#define EXW_COMM_AUDIT_RECORD(...) ((void)0)

#endif  // EXW_COMM_AUDIT_ENABLED

}  // namespace exw::par::comm_audit
