#pragma once
/// \file runtime.hpp
/// The simulated distributed world: ranks, transport, and cost accounting.
///
/// The reproduction runs SPMD algorithms "rank-sequentially": distributed
/// operations are driven globally and loop over ranks for their local
/// phases, exchanging data through the in-memory Transport below. The
/// Transport mirrors the MPI message-passing model (explicit send/recv with
/// source, destination, and tag; exchange = the pack/communicate/unpack
/// halo pattern) so the code reads like the real program, and it charges
/// every message to the Tracer's cost model.
///
/// Local phases may also run concurrently, one thread per simulated rank,
/// via Runtime::parallel_for_ranks (see thread_pool.hpp for the threading
/// contract). Mailboxes are sharded by destination rank with one lock per
/// shard, so sends from concurrent rank bodies are safe without
/// serializing the whole transport.

#include <cstddef>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "par/comm_audit.hpp"
#include "par/contract.hpp"
#include "par/thread_pool.hpp"
#include "perf/purity.hpp"
#include "perf/tracer.hpp"

namespace exw::par {

/// In-memory point-to-point mailboxes between simulated ranks.
class Transport {
 public:
  /// `audit` (optional, owned by Runtime) receives a ledger record for
  /// every send/recv when EXW_COMM_AUDIT=ON; see par/comm_audit.hpp.
  Transport(perf::Tracer* tracer, int nranks,
            comm_audit::Auditor* audit = nullptr)
      : tracer_(tracer),
        audit_(audit),
        shards_(static_cast<std::size_t>(nranks > 0 ? nranks : 1)),
        nranks_(nranks > 0 ? nranks : 1) {}

  /// Post a message. Bytes are charged to the cost model immediately.
  /// Safe to call from concurrent rank bodies; per-channel FIFO order is
  /// preserved because each (src, dst, tag) channel has a single sender
  /// (enforced by the contract checker inside parallel regions).
  /// With the comm audit ON, the declaration grows a defaulted
  /// std::source_location parameter capturing the caller's call site.
  template <typename T>
  void send(RankId src, RankId dst, int tag,
            const std::vector<T>& payload EXW_COMM_SITE_DECL) {
    static_assert(std::is_trivially_copyable_v<T>);
    require_rank(src, "send src");
    require_rank(dst, "send dst");
    EXW_CONTRACT_CHECK(contract::check_send(src, dst, tag, "Transport::send"));
    // Ledger entry goes in before the mailbox push: a concurrent receiver
    // can only observe the message after the push, so its matching recv
    // record always finds this send already on the channel FIFO.
    EXW_COMM_AUDIT_RECORD(if (audit_ != nullptr) audit_->on_send(
        src, dst, tag, payload.size(), payload.size() * sizeof(T), exw_site));
    // The staging buffer and mailbox nodes stand in for the NIC/MPI
    // library's internal buffers, which a real run would not allocate on
    // the application's critical path — so purity regions tolerate them.
    EXW_PURITY_ALLOW("simulated-NIC message serialization");
    if (tracer_ != nullptr) {
      tracer_->message(src, dst, static_cast<double>(payload.size() * sizeof(T)));
    }
    Shard& sh = shard(dst);
    std::vector<std::byte> raw = to_bytes(payload);
    std::lock_guard<std::mutex> lk(sh.mutex);
    sh.boxes[Key{src, dst, tag}].push_back(std::move(raw));
  }

  /// Receive the oldest matching message; throws if none is pending.
  template <typename T>
  std::vector<T> recv(RankId dst, RankId src, int tag EXW_COMM_SITE_DECL) {
    require_rank(dst, "recv dst");
    require_rank(src, "recv src");
    EXW_CONTRACT_CHECK(contract::check_recv(dst, src, tag, "Transport::recv"));
    // Mirror of send(): deserialization is the simulated NIC's buffer,
    // not application warm-path state.
    EXW_PURITY_ALLOW("simulated-NIC message deserialization");
    Shard& sh = shard(dst);
    std::vector<std::byte> raw;
    {
      std::lock_guard<std::mutex> lk(sh.mutex);
      auto it = sh.boxes.find(Key{src, dst, tag});
      EXW_REQUIRE(it != sh.boxes.end() && !it->second.empty(),
                  "recv with no matching message");
      raw = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) {
        sh.boxes.erase(it);
      }
    }
    std::vector<T> out = from_bytes<T>(raw);
    // Recorded only after successful extraction, so the audit matches
    // exactly the messages that were actually consumed.
    EXW_COMM_AUDIT_RECORD(if (audit_ != nullptr) audit_->on_recv(
        dst, src, tag, out.size(), raw.size(), exw_site));
    return out;
  }

  /// True if a message from src to dst with tag is pending.
  bool has_message(RankId dst, RankId src, int tag) const {
    require_rank(dst, "has_message dst");
    require_rank(src, "has_message src");
    const Shard& sh = shard(dst);
    std::lock_guard<std::mutex> lk(sh.mutex);
    auto it = sh.boxes.find(Key{src, dst, tag});
    return it != sh.boxes.end() && !it->second.empty();
  }

  /// No messages left anywhere (useful test invariant: protocols drain).
  bool drained() const {
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh.mutex);
      if (!sh.boxes.empty()) return false;
    }
    return true;
  }

 private:
  struct Key {
    RankId src;
    RankId dst;
    int tag;
    auto operator<=>(const Key&) const = default;
  };

  /// One lock + mailbox map per destination rank: concurrent senders to
  /// different destinations never contend, and the common in-region
  /// pattern (every rank draining its own inbox while posting to
  /// neighbors) contends only on true neighbor pairs.
  struct Shard {
    mutable std::mutex mutex;
    std::map<Key, std::deque<std::vector<std::byte>>> boxes;
  };

  /// All public entry points validate ranks first: an out-of-range id
  /// must throw, not silently alias another rank's shard via modulo
  /// wrap-around and corrupt its mailboxes.
  void require_rank(RankId r, const char* what) const {
    EXW_REQUIRE(r.value() >= 0 && r.value() < nranks_,
                std::string(what) + " rank out of range [0, nranks)");
  }

  Shard& shard(RankId dst) { return shards_[static_cast<std::size_t>(dst)]; }
  const Shard& shard(RankId dst) const {
    return shards_[static_cast<std::size_t>(dst)];
  }

  template <typename T>
  static std::vector<std::byte> to_bytes(const std::vector<T>& v) {
    std::vector<std::byte> out(v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(out.data(), v.data(), out.size());
    }
    return out;
  }

  template <typename T>
  static std::vector<T> from_bytes(const std::vector<std::byte>& raw) {
    EXW_REQUIRE(raw.size() % sizeof(T) == 0, "message size/type mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), raw.data(), raw.size());
    }
    return out;
  }

  perf::Tracer* tracer_;
  comm_audit::Auditor* audit_;  ///< not owned; null when audit is OFF
  std::vector<Shard> shards_;
  int nranks_;
};

/// The simulated world handed to every distributed component.
class Runtime {
 public:
  /// With EXW_COMM_AUDIT=ON the constructor also creates the world's
  /// communication auditor, feeds it from the transport and collectives,
  /// and hooks it to the tracer's phase boundaries; the destructor runs
  /// a never-throwing teardown audit (see comm_audit.hpp).
  explicit Runtime(int nranks);
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int nranks() const { return nranks_; }
  perf::Tracer& tracer() { return tracer_; }
  const perf::Tracer& tracer() const { return tracer_; }
  Transport& transport() { return transport_; }

  /// Run the full communication audit now (collective-sequence
  /// comparison + unmatched-send scan) and throw exw::Error on the first
  /// problem. No-op when the audit is compiled out. Tests use this to
  /// assert on violations; production code gets the same scan, without
  /// the throw, from the destructor.
  void comm_audit_verify();

  /// The world's auditor, for introspection; null when EXW_COMM_AUDIT=OFF.
  comm_audit::Auditor* comm_auditor();

  /// Run fn(r) for every rank, potentially concurrently (one thread per
  /// rank body, blocking until all return). Rank bodies stay internally
  /// sequential, so results are bitwise-identical to the serial loop.
  /// Templated (not std::function) so warm-path dispatch never heap-
  /// allocates: the callable travels by non-owning FunctionRef.
  template <typename F>
  void parallel_for_ranks(F&& fn) const {
    parallel_for(nranks_, [&fn](int i) { fn(RankId{i}); });
  }

  /// Sum a per-rank contribution into one global value, charging one
  /// allreduce. The SPMD analogue of MPI_Allreduce(MPI_SUM). Like
  /// Transport::send/recv, each collective grows a defaulted source-
  /// location parameter under the comm audit, so divergence reports name
  /// the caller's call site.
  double allreduce_sum(
      const std::vector<double>& per_rank_values EXW_COMM_SITE_DECL);

  /// Elementwise allreduce over per-rank vectors of equal length.
  std::vector<double> allreduce_sum_vec(
      const std::vector<std::vector<double>>& per_rank_values
          EXW_COMM_SITE_DECL);

  /// Same reduction, charged as a latency-overlapped collective: the
  /// pipelined Krylov caller has independent local work (the next
  /// SpMV+precond) in flight while the tree reduction runs, so the
  /// tracer prices only the bandwidth term
  /// (MachineModel::allreduce_overlapped_time). Numerically identical
  /// to allreduce_sum_vec — same rank-ordered elementwise sum — and
  /// recorded in the comm audit as its own op kind so a blocking and an
  /// overlapped collective can never silently alias across ranks.
  std::vector<double> allreduce_sum_vec_overlapped(
      const std::vector<std::vector<double>>& per_rank_values
          EXW_COMM_SITE_DECL);

  GlobalIndex allreduce_sum(
      const std::vector<GlobalIndex>& per_rank_values EXW_COMM_SITE_DECL);
  GlobalIndex allreduce_max(
      const std::vector<GlobalIndex>& per_rank_values EXW_COMM_SITE_DECL);

 private:
  perf::Tracer tracer_;
#if EXW_COMM_AUDIT_ENABLED
  /// Declared between tracer_ and transport_: constructed after the
  /// tracer it listens to, before the transport that feeds it, destroyed
  /// in the reverse order.
  std::unique_ptr<comm_audit::Auditor> audit_;
#endif
  Transport transport_;
  int nranks_;
};

}  // namespace exw::par
