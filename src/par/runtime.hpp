#pragma once
/// \file runtime.hpp
/// The simulated distributed world: ranks, transport, and cost accounting.
///
/// The reproduction runs SPMD algorithms "rank-sequentially": distributed
/// operations are driven globally and loop over ranks for their local
/// phases, exchanging data through the in-memory Transport below. The
/// Transport mirrors the MPI message-passing model (explicit send/recv with
/// source, destination, and tag; exchange = the pack/communicate/unpack
/// halo pattern) so the code reads like the real program, and it charges
/// every message to the Tracer's cost model.
///
/// Local phases may also run concurrently, one thread per simulated rank,
/// via Runtime::parallel_for_ranks (see thread_pool.hpp for the threading
/// contract). Mailboxes are sharded by destination rank with one lock per
/// shard, so sends from concurrent rank bodies are safe without
/// serializing the whole transport.

#include <cstddef>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "par/contract.hpp"
#include "par/thread_pool.hpp"
#include "perf/purity.hpp"
#include "perf/tracer.hpp"

namespace exw::par {

/// In-memory point-to-point mailboxes between simulated ranks.
class Transport {
 public:
  Transport(perf::Tracer* tracer, int nranks)
      : tracer_(tracer),
        shards_(static_cast<std::size_t>(nranks > 0 ? nranks : 1)),
        nranks_(nranks > 0 ? nranks : 1) {}

  /// Post a message. Bytes are charged to the cost model immediately.
  /// Safe to call from concurrent rank bodies; per-channel FIFO order is
  /// preserved because each (src, dst, tag) channel has a single sender
  /// (enforced by the contract checker inside parallel regions).
  template <typename T>
  void send(RankId src, RankId dst, int tag, const std::vector<T>& payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    require_rank(src, "send src");
    require_rank(dst, "send dst");
    EXW_CONTRACT_CHECK(contract::check_send(src, dst, tag, "Transport::send"));
    // The staging buffer and mailbox nodes stand in for the NIC/MPI
    // library's internal buffers, which a real run would not allocate on
    // the application's critical path — so purity regions tolerate them.
    EXW_PURITY_ALLOW("simulated-NIC message serialization");
    if (tracer_ != nullptr) {
      tracer_->message(src, dst, static_cast<double>(payload.size() * sizeof(T)));
    }
    Shard& sh = shard(dst);
    std::vector<std::byte> raw = to_bytes(payload);
    std::lock_guard<std::mutex> lk(sh.mutex);
    sh.boxes[Key{src, dst, tag}].push_back(std::move(raw));
  }

  /// Receive the oldest matching message; throws if none is pending.
  template <typename T>
  std::vector<T> recv(RankId dst, RankId src, int tag) {
    require_rank(dst, "recv dst");
    require_rank(src, "recv src");
    EXW_CONTRACT_CHECK(contract::check_recv(dst, src, tag, "Transport::recv"));
    // Mirror of send(): deserialization is the simulated NIC's buffer,
    // not application warm-path state.
    EXW_PURITY_ALLOW("simulated-NIC message deserialization");
    Shard& sh = shard(dst);
    std::vector<std::byte> raw;
    {
      std::lock_guard<std::mutex> lk(sh.mutex);
      auto it = sh.boxes.find(Key{src, dst, tag});
      EXW_REQUIRE(it != sh.boxes.end() && !it->second.empty(),
                  "recv with no matching message");
      raw = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) {
        sh.boxes.erase(it);
      }
    }
    return from_bytes<T>(raw);
  }

  /// True if a message from src to dst with tag is pending.
  bool has_message(RankId dst, RankId src, int tag) const {
    require_rank(dst, "has_message dst");
    require_rank(src, "has_message src");
    const Shard& sh = shard(dst);
    std::lock_guard<std::mutex> lk(sh.mutex);
    auto it = sh.boxes.find(Key{src, dst, tag});
    return it != sh.boxes.end() && !it->second.empty();
  }

  /// No messages left anywhere (useful test invariant: protocols drain).
  bool drained() const {
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh.mutex);
      if (!sh.boxes.empty()) return false;
    }
    return true;
  }

 private:
  struct Key {
    RankId src;
    RankId dst;
    int tag;
    auto operator<=>(const Key&) const = default;
  };

  /// One lock + mailbox map per destination rank: concurrent senders to
  /// different destinations never contend, and the common in-region
  /// pattern (every rank draining its own inbox while posting to
  /// neighbors) contends only on true neighbor pairs.
  struct Shard {
    mutable std::mutex mutex;
    std::map<Key, std::deque<std::vector<std::byte>>> boxes;
  };

  /// All public entry points validate ranks first: an out-of-range id
  /// must throw, not silently alias another rank's shard via modulo
  /// wrap-around and corrupt its mailboxes.
  void require_rank(RankId r, const char* what) const {
    EXW_REQUIRE(r.value() >= 0 && r.value() < nranks_,
                std::string(what) + " rank out of range [0, nranks)");
  }

  Shard& shard(RankId dst) { return shards_[static_cast<std::size_t>(dst)]; }
  const Shard& shard(RankId dst) const {
    return shards_[static_cast<std::size_t>(dst)];
  }

  template <typename T>
  static std::vector<std::byte> to_bytes(const std::vector<T>& v) {
    std::vector<std::byte> out(v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(out.data(), v.data(), out.size());
    }
    return out;
  }

  template <typename T>
  static std::vector<T> from_bytes(const std::vector<std::byte>& raw) {
    EXW_REQUIRE(raw.size() % sizeof(T) == 0, "message size/type mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), raw.data(), raw.size());
    }
    return out;
  }

  perf::Tracer* tracer_;
  std::vector<Shard> shards_;
  int nranks_;
};

/// The simulated world handed to every distributed component.
class Runtime {
 public:
  explicit Runtime(int nranks)
      : tracer_(nranks), transport_(&tracer_, nranks), nranks_(nranks) {
    EXW_REQUIRE(nranks >= 1, "runtime needs at least one rank");
  }

  int nranks() const { return nranks_; }
  perf::Tracer& tracer() { return tracer_; }
  const perf::Tracer& tracer() const { return tracer_; }
  Transport& transport() { return transport_; }

  /// Run fn(r) for every rank, potentially concurrently (one thread per
  /// rank body, blocking until all return). Rank bodies stay internally
  /// sequential, so results are bitwise-identical to the serial loop.
  /// Templated (not std::function) so warm-path dispatch never heap-
  /// allocates: the callable travels by non-owning FunctionRef.
  template <typename F>
  void parallel_for_ranks(F&& fn) const {
    parallel_for(nranks_, [&fn](int i) { fn(RankId{i}); });
  }

  /// Sum a per-rank contribution into one global value, charging one
  /// allreduce. The SPMD analogue of MPI_Allreduce(MPI_SUM).
  double allreduce_sum(const std::vector<double>& per_rank_values);

  /// Elementwise allreduce over per-rank vectors of equal length.
  std::vector<double> allreduce_sum_vec(
      const std::vector<std::vector<double>>& per_rank_values);

  GlobalIndex allreduce_sum(const std::vector<GlobalIndex>& per_rank_values);
  GlobalIndex allreduce_max(const std::vector<GlobalIndex>& per_rank_values);

 private:
  perf::Tracer tracer_;
  Transport transport_;
  int nranks_;
};

}  // namespace exw::par
