#pragma once
/// \file runtime.hpp
/// The simulated distributed world: ranks, transport, and cost accounting.
///
/// The reproduction runs SPMD algorithms "rank-sequentially": distributed
/// operations are driven globally and loop over ranks for their local
/// phases, exchanging data through the in-memory Transport below. The
/// Transport mirrors the MPI message-passing model (explicit send/recv with
/// source, destination, and tag; exchange = the pack/communicate/unpack
/// halo pattern) so the code reads like the real program, and it charges
/// every message to the Tracer's cost model.

#include <cstddef>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "perf/tracer.hpp"

namespace exw::par {

/// In-memory point-to-point mailboxes between simulated ranks.
class Transport {
 public:
  explicit Transport(perf::Tracer* tracer) : tracer_(tracer) {}

  /// Post a message. Bytes are charged to the cost model immediately.
  template <typename T>
  void send(RankId src, RankId dst, int tag, std::vector<T> payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (tracer_ != nullptr) {
      tracer_->message(src, dst, static_cast<double>(payload.size() * sizeof(T)));
    }
    auto& box = boxes_[Key{src, dst, tag}];
    box.push_back(to_bytes(payload));
  }

  /// Receive the oldest matching message; throws if none is pending.
  template <typename T>
  std::vector<T> recv(RankId dst, RankId src, int tag) {
    auto it = boxes_.find(Key{src, dst, tag});
    EXW_REQUIRE(it != boxes_.end() && !it->second.empty(),
                "recv with no matching message");
    std::vector<std::byte> raw = std::move(it->second.front());
    it->second.erase(it->second.begin());
    if (it->second.empty()) {
      boxes_.erase(it);
    }
    return from_bytes<T>(raw);
  }

  /// True if a message from src to dst with tag is pending.
  bool has_message(RankId dst, RankId src, int tag) const {
    auto it = boxes_.find(Key{src, dst, tag});
    return it != boxes_.end() && !it->second.empty();
  }

  /// No messages left anywhere (useful test invariant: protocols drain).
  bool drained() const { return boxes_.empty(); }

 private:
  struct Key {
    RankId src;
    RankId dst;
    int tag;
    auto operator<=>(const Key&) const = default;
  };

  template <typename T>
  static std::vector<std::byte> to_bytes(const std::vector<T>& v) {
    std::vector<std::byte> out(v.size() * sizeof(T));
    if (!v.empty()) {
      std::memcpy(out.data(), v.data(), out.size());
    }
    return out;
  }

  template <typename T>
  static std::vector<T> from_bytes(const std::vector<std::byte>& raw) {
    EXW_REQUIRE(raw.size() % sizeof(T) == 0, "message size/type mismatch");
    std::vector<T> out(raw.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), raw.data(), raw.size());
    }
    return out;
  }

  perf::Tracer* tracer_;
  std::map<Key, std::vector<std::vector<std::byte>>> boxes_;
};

/// The simulated world handed to every distributed component.
class Runtime {
 public:
  explicit Runtime(int nranks)
      : tracer_(nranks), transport_(&tracer_), nranks_(nranks) {}

  int nranks() const { return nranks_; }
  perf::Tracer& tracer() { return tracer_; }
  const perf::Tracer& tracer() const { return tracer_; }
  Transport& transport() { return transport_; }

  /// Sum a per-rank contribution into one global value, charging one
  /// allreduce. The SPMD analogue of MPI_Allreduce(MPI_SUM).
  double allreduce_sum(const std::vector<double>& per_rank_values);

  /// Elementwise allreduce over per-rank vectors of equal length.
  std::vector<double> allreduce_sum_vec(
      const std::vector<std::vector<double>>& per_rank_values);

  GlobalIndex allreduce_sum(const std::vector<GlobalIndex>& per_rank_values);
  GlobalIndex allreduce_max(const std::vector<GlobalIndex>& per_rank_values);

 private:
  perf::Tracer tracer_;
  Transport transport_;
  int nranks_;
};

}  // namespace exw::par
