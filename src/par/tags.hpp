#pragma once
/// \file tags.hpp
/// Central registry of every point-to-point message tag in the tree.
///
/// A tag names a (src, dst, tag) mailbox channel in par::Transport, and
/// two subsystems reusing one integer silently cross their streams: the
/// receiver deserializes the other protocol's bytes and the failure
/// surfaces far from the collision (the classic MPI tag-collision bug).
/// Before this registry each subsystem kept private `constexpr int`
/// tags in its .cpp and uniqueness rested on a code-review convention.
///
/// Rules, machine-checked on two fronts:
///   * every tag is a named constant here — raw integer literals at
///     send/recv call sites are rejected by tools/lint_comm.py;
///   * the registry below is compile-time checked for duplicates
///     (static_assert), so a collision cannot build;
///   * with EXW_COMM_AUDIT=ON, Transport::send/recv additionally reject
///     unregistered tags at runtime (par/comm_audit.hpp), so a tag
///     cannot bypass the registry by arithmetic.
///
/// Ranges (a reading aid, not a mechanism — uniqueness is global):
///   100-199  linalg      (halo exchange, remote-row fetch)
///   200-299  assembly    (cold triple routing, warm plan refills)
///   900-999  tests       (tests/ fixtures; never used by src/)

#include <cstddef>

namespace exw::par::tags {

// --- linalg: ParCsr halo exchange and remote-row fetch (parcsr.cpp) ------
inline constexpr int kHaloValues = 101;   ///< matvec/fused halo payloads
inline constexpr int kRowRequest = 102;   ///< remote-row fetch: wanted ids
inline constexpr int kRowHeader = 103;    ///< remote-row fetch: row sizes
inline constexpr int kRowCols = 104;      ///< remote-row fetch: columns
inline constexpr int kRowVals = 105;      ///< remote-row fetch: values

// --- assembly: cold triple routing (global.cpp) --------------------------
inline constexpr int kCooRows = 201;      ///< shared matrix triples: rows
inline constexpr int kCooCols = 202;      ///< shared matrix triples: cols
inline constexpr int kCooVals = 203;      ///< shared matrix triples: values
inline constexpr int kRhsRows = 204;      ///< shared RHS pairs: rows
inline constexpr int kRhsVals = 205;      ///< shared RHS pairs: values

// --- assembly: warm value-only plan refills (plan.cpp). Distinct from
// the cold 201-205 channels so a warm refill can never consume a cold
// assembly's triples by accident. -----------------------------------------
inline constexpr int kPlanMatVals = 206;  ///< frozen-slice matrix values
inline constexpr int kPlanRhsVals = 207;  ///< frozen-slice RHS values

// --- tests/ fixtures. Production code must never use these. --------------
inline constexpr int kTestPing = 901;     ///< generic one-shot channel
inline constexpr int kTestFifo = 902;     ///< per-channel FIFO ordering
inline constexpr int kTestRing = 903;     ///< ring-neighbor exchanges
inline constexpr int kTestRelay = 904;    ///< cross-rank relay fixtures
inline constexpr int kTestEmpty = 905;    ///< recv-with-no-message probes
inline constexpr int kTestSelf = 906;     ///< self-send (dst == src)
inline constexpr int kTestRows = 907;     ///< wide-index row payloads
inline constexpr int kTestVals = 908;     ///< wide-index value payloads
inline constexpr int kTestAudit = 909;    ///< comm-audit unit fixtures

/// One registry row: the tag and the human-readable channel name used in
/// audit diagnostics ("tag 206 [plan-mat-vals]").
struct Entry {
  int tag;
  const char* name;
};

/// Every tag in the tree. Adding a constant above without a row here
/// leaves it unregistered: lint_comm.py accepts it (it is a named
/// constant) but the runtime audit rejects the first send using it, so
/// the registry cannot silently go stale.
inline constexpr Entry kRegistry[] = {
    {kHaloValues, "halo-values"},
    {kRowRequest, "row-request"},
    {kRowHeader, "row-header"},
    {kRowCols, "row-cols"},
    {kRowVals, "row-vals"},
    {kCooRows, "coo-rows"},
    {kCooCols, "coo-cols"},
    {kCooVals, "coo-vals"},
    {kRhsRows, "rhs-rows"},
    {kRhsVals, "rhs-vals"},
    {kPlanMatVals, "plan-mat-vals"},
    {kPlanRhsVals, "plan-rhs-vals"},
    {kTestPing, "test-ping"},
    {kTestFifo, "test-fifo"},
    {kTestRing, "test-ring"},
    {kTestRelay, "test-relay"},
    {kTestEmpty, "test-empty"},
    {kTestSelf, "test-self"},
    {kTestRows, "test-rows"},
    {kTestVals, "test-vals"},
    {kTestAudit, "test-audit"},
};

inline constexpr std::size_t kRegistrySize =
    sizeof(kRegistry) / sizeof(kRegistry[0]);

namespace detail {

/// Compile-time duplicate scan (N is small; O(N^2) is free at constexpr).
template <std::size_t N>
constexpr bool all_unique(const Entry (&entries)[N]) {
  for (std::size_t i = 0; i < N; ++i) {
    for (std::size_t j = i + 1; j < N; ++j) {
      if (entries[i].tag == entries[j].tag) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace detail

// The uniqueness contract: a tag collision is a build error, not a
// runtime mystery. If this fires, two subsystems claimed one channel.
static_assert(detail::all_unique(kRegistry),
              "par::tags registry contains a duplicate tag — every "
              "(src, dst, tag) channel family needs its own integer");

/// True if `tag` is a registered channel.
constexpr bool registered(int tag) {
  for (const Entry& e : kRegistry) {
    if (e.tag == tag) {
      return true;
    }
  }
  return false;
}

/// Channel name for diagnostics; "unregistered" if the tag is unknown.
constexpr const char* name(int tag) {
  for (const Entry& e : kRegistry) {
    if (e.tag == tag) {
      return e.name;
    }
  }
  return "unregistered";
}

}  // namespace exw::par::tags
