#include "perf/machine_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace exw::perf {

double MachineModel::kernel_time(double flops, double bytes) const {
  const double compute = flops / (flops_per_s * efficiency);
  const double traffic = bytes / (bytes_per_s * efficiency);
  return std::max(compute, traffic) + kernel_launch_s;
}

double MachineModel::stream_time(double bytes) const {
  return bytes / (bytes_per_s * efficiency);
}

double MachineModel::message_time(double bytes) const {
  return msg_latency_s + bytes / msg_bytes_per_s;
}

double MachineModel::allreduce_time(double bytes, int nranks) const {
  if (nranks <= 1) {
    return 0.0;
  }
  const double hops = std::ceil(std::log2(static_cast<double>(nranks)));
  return hops * (coll_hop_s + bytes / msg_bytes_per_s);
}

double MachineModel::allreduce_overlapped_time(double bytes,
                                               int nranks) const {
  if (nranks <= 1) {
    return 0.0;
  }
  const double hops = std::ceil(std::log2(static_cast<double>(nranks)));
  return hops * (bytes / msg_bytes_per_s);
}

MachineModel MachineModel::summit_gpu() {
  MachineModel m;
  m.name = "SummitGPU";
  // V100 SXM2: 7.8 TF/s FP64 peak, 900 GB/s HBM2 (sustained ~0.8x).
  m.flops_per_s = 7.8e12;
  m.bytes_per_s = 720e9;
  m.efficiency = 0.12;
  m.kernel_launch_s = 9e-6;
  // Spectrum MPI with GPU-resident buffers: the paper attributes the poor
  // Summit strong-scaling slope largely to this path.
  m.msg_latency_s = 16e-6;
  m.msg_bytes_per_s = 10e9;
  m.coll_hop_s = 10e-6;
  m.ranks_per_node = 6;
  return m;
}

MachineModel MachineModel::summit_cpu() {
  MachineModel m;
  m.name = "SummitCPU";
  // One Power9 core out of 42: ~13 GF/s peak, ~135 GB/s node STREAM.
  m.flops_per_s = 13e9;
  m.bytes_per_s = 135e9 / 42.0;
  m.efficiency = 0.35;
  m.kernel_launch_s = 0.3e-6;  // a function call, not a device launch
  m.msg_latency_s = 1.5e-6;    // host-resident buffers
  m.msg_bytes_per_s = 12.5e9;
  m.coll_hop_s = 1.5e-6;
  m.ranks_per_node = 42;
  return m;
}

MachineModel MachineModel::eagle_gpu() {
  MachineModel m = summit_gpu();
  m.name = "EagleGPU";
  // V100 PCIe: slightly lower peak than SXM2 (paper notes the reduction),
  // but HPE MPT + x86 host drives messages much more cheaply.
  m.flops_per_s = 7.0e12;
  m.bytes_per_s = 720e9;
  m.efficiency = 0.12;
  m.kernel_launch_s = 7e-6;
  m.msg_latency_s = 6e-6;
  m.msg_bytes_per_s = 12e9;
  m.coll_hop_s = 5e-6;
  m.ranks_per_node = 2;
  return m;
}

MachineModel MachineModel::host_cpu() {
  MachineModel m;
  m.name = "HostCPU";
  m.flops_per_s = 5e9;
  m.bytes_per_s = 10e9;
  m.kernel_launch_s = 0.1e-6;
  m.msg_latency_s = 0.2e-6;
  m.msg_bytes_per_s = 20e9;
  m.coll_hop_s = 0.2e-6;
  m.ranks_per_node = 1;
  return m;
}

}  // namespace exw::perf
