#pragma once
/// \file purity.hpp
/// Warm-path allocation-purity sanitizer.
///
/// PRs 5-7 made the warm Picard path a pure value pipeline: assembly-plan
/// refills, AMG hierarchy refreshes, smoother rebinds and fused momentum
/// ops move values through frozen structure with no sort, no searches and
/// no steady-state allocation. That invariant is the repo's central
/// performance claim, and this layer makes it machine-checked the same
/// way par/contract.hpp machine-checks the threading contract:
///
///   * a global operator new/new[]/delete interposition (purity.cpp)
///     counts every heap allocation in the process;
///   * EXW_PURITY_REGION("name") opens a thread-local RAII *purity
///     region*: allocations and frees inside it are attributed to the
///     named region (nested regions all see the activity, like nested
///     Tracer phases);
///   * EXW_PURITY_ALLOW("reason") marks a scope whose allocations are
///     explicitly allowlisted (simulated-NIC message buffers, collective
///     payload staging, first-refill scratch priming) — they are counted
///     separately and never flagged;
///   * fatal mode (EXW_PURITY_FATAL=1, or purity::set_fatal(true))
///     turns any non-allowlisted allocation inside a region into an
///     exw::Error naming the innermost region and the file:line where it
///     was opened;
///   * purity::report() / purity::region() expose the counters, mirroring
///     contract::report(); perf::Tracer additionally folds process-wide
///     allocation deltas into every open phase (PhaseStats::allocs).
///
/// Region context propagates through par::ThreadPool: when a warm entry
/// point opens a region on the orchestrator and dispatches rank bodies,
/// each pool worker inherits the region (purity::capture() +
/// ScopedRegionInherit), so allocations inside rank bodies are checked
/// too. Frames are fixed-capacity thread-locals and the interposition
/// only touches relaxed atomics and those frames, so the layer is
/// TSan-clean and never allocates from inside the allocator hooks.
///
/// Everything compiles away when EXW_PURITY_CHECKS=OFF (the CMake
/// option; default ON except Release, and forced OFF under
/// EXW_SANITIZE=address/leak, whose runtimes own operator new): the
/// macros expand to ((void)0) and no interposition is linked, so
/// production builds are bit-for-bit what they were before this layer.
///
/// The static half of the discipline is tools/lint_warm_path.py: it
/// walks the call graph from functions annotated EXW_WARM_FN and flags
/// reachable sorts / searches / container growth / allocation, with a
/// committed per-file ratchet. DESIGN.md §14 documents both halves.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#ifndef EXW_PURITY_CHECKS_ENABLED
#define EXW_PURITY_CHECKS_ENABLED 0
#endif

/// Annotation for warm-path entry points. Expands to nothing; it is the
/// marker tools/lint_warm_path.py uses as a call-graph root, and a signal
/// to readers that the function body must stay a pure value pipeline.
#define EXW_WARM_FN

namespace exw::perf::purity {

/// True when the build carries the interposition (EXW_PURITY_CHECKS=ON).
constexpr bool enabled() { return EXW_PURITY_CHECKS_ENABLED != 0; }

/// Process-wide allocation totals (all threads, regions or not).
/// All-zero when the checks are compiled out.
struct Totals {
  unsigned long long allocs = 0;
  unsigned long long frees = 0;
  unsigned long long bytes = 0;  ///< bytes requested across all allocs
};
Totals totals();

/// Accumulated per-region-name statistics. "Disallowed" allocations are
/// those made inside the region outside any EXW_PURITY_ALLOW scope —
/// the quantity the warm-path contract requires to be zero in steady
/// state (and which fatal mode turns into a throw).
struct RegionStats {
  long long entries = 0;            ///< times a region of this name closed
  long long allocs = 0;             ///< disallowed allocations
  unsigned long long bytes = 0;     ///< bytes of disallowed allocations
  long long frees = 0;              ///< frees observed inside the region
  long long allowed_allocs = 0;     ///< allocations under EXW_PURITY_ALLOW
  unsigned long long allowed_bytes = 0;
};

/// Snapshot of one region's accumulated stats ({} if never closed).
RegionStats region(std::string_view name);
/// All region names seen so far (first-closed order).
std::vector<std::string> region_names();

/// Counters of everything the sanitizer looked at (for tests and triage).
struct Report {
  long long regions_entered = 0;   ///< region scopes closed
  long long disallowed_allocs = 0; ///< in-region allocs outside allow scopes
  long long allowed_allocs = 0;    ///< in-region allocs under allow scopes
  long long violations = 0;        ///< fatal-mode throws raised
  Totals process;                  ///< process-wide totals
};
Report report();

/// Reset all counters and the region registry (tests).
void reset();

/// One-line human-readable summary of report().
std::string summary();

/// Fatal mode: non-allowlisted in-region allocations throw exw::Error.
/// Seeded from the EXW_PURITY_FATAL environment variable on first query;
/// set_fatal() overrides it (tests, benches).
bool fatal_mode();
void set_fatal(bool fatal);

#if EXW_PURITY_CHECKS_ENABLED

/// Thread-local RAII purity region. Open one at every warm entry point
/// (via EXW_PURITY_REGION); nested regions each account the activity.
class ScopedPurityRegion {
 public:
  ScopedPurityRegion(const char* name, const char* file, int line);
  ~ScopedPurityRegion();
  ScopedPurityRegion(const ScopedPurityRegion&) = delete;
  ScopedPurityRegion& operator=(const ScopedPurityRegion&) = delete;
};

/// Thread-local RAII allowlist scope: allocations inside it are counted
/// as allowed. The reason string is for the reader (and the lint); it is
/// not stored per-allocation.
class ScopedPurityAllow {
 public:
  explicit ScopedPurityAllow(const char* reason);
  ~ScopedPurityAllow();
  ScopedPurityAllow(const ScopedPurityAllow&) = delete;
  ScopedPurityAllow& operator=(const ScopedPurityAllow&) = delete;
};

/// Innermost open region of the calling thread, for handing to pool
/// workers. `name == nullptr` means no region is open.
struct RegionToken {
  const char* name = nullptr;
  const char* file = nullptr;
  int line = 0;
};
RegionToken capture();

/// Push the captured region onto the calling thread's (empty) stack for
/// the duration of a pool body. No-op when the token is inactive or the
/// thread already carries a region (the inline/nested case).
class ScopedRegionInherit {
 public:
  explicit ScopedRegionInherit(const RegionToken& token);
  ~ScopedRegionInherit();
  ScopedRegionInherit(const ScopedRegionInherit&) = delete;
  ScopedRegionInherit& operator=(const ScopedRegionInherit&) = delete;

 private:
  bool active_;
};

#define EXW_PURITY_CONCAT2(a, b) a##b
#define EXW_PURITY_CONCAT(a, b) EXW_PURITY_CONCAT2(a, b)
/// Open a purity region for the rest of the enclosing scope.
#define EXW_PURITY_REGION(name)                             \
  ::exw::perf::purity::ScopedPurityRegion EXW_PURITY_CONCAT( \
      exw_purity_region_, __LINE__)((name), __FILE__, __LINE__)
/// Allowlist allocations for the rest of the enclosing scope.
#define EXW_PURITY_ALLOW(reason)                           \
  ::exw::perf::purity::ScopedPurityAllow EXW_PURITY_CONCAT( \
      exw_purity_allow_, __LINE__)((reason))

#else  // !EXW_PURITY_CHECKS_ENABLED

#define EXW_PURITY_REGION(name) ((void)0)
#define EXW_PURITY_ALLOW(reason) ((void)0)

#endif  // EXW_PURITY_CHECKS_ENABLED

}  // namespace exw::perf::purity
