#pragma once
/// \file machine_model.hpp
/// Analytic performance models of the platforms in the paper's evaluation.
///
/// The paper's headline results are strong-scaling curves on Summit
/// (6 NVIDIA V100 SXM2 + 42 Power9 cores per node, Spectrum MPI) and Eagle
/// (2 V100 PCIe + 36 x86 cores per node, HPE MPT). We cannot clock
/// thousands of GPUs, so the reproduction executes the *real* distributed
/// algorithms on partitioned data and converts counted work into modeled
/// time with these roofline-plus-overhead models:
///
///   kernel time   = max(flops / F, bytes / B) + kernel launch latency
///   message time  = alpha + bytes / beta            (charged to both ends)
///   allreduce     = ceil(log2(R)) * (alpha_coll + small-payload term)
///
/// The qualitative mechanisms the paper reports all live here:
///  * GPUs: enormous F and B but ~10 us per kernel launch and a large
///    per-message overhead for GPU-resident buffers -> strong scaling
///    flattens when DoFs/GPU drops below ~1e5 (paper Figs. 3, 7, 9).
///  * CPU cores: ~two orders of magnitude less bandwidth per rank but tiny
///    launch/message overheads -> near-ideal slope (paper Fig. 6).
///  * Eagle vs Summit: same GPU silicon, different MPI stack; the paper
///    finds 72 Eagle GPUs beat 144 Summit GPUs by ~40% almost entirely in
///    AMG setup+solve. We encode that as lower alpha (Fig. 11).

#include <string>

namespace exw::perf {

/// Per-rank machine parameters. One "rank" is one GPU or one CPU core.
struct MachineModel {
  std::string name;

  double flops_per_s = 1e9;       ///< peak FP64 throughput per rank
  double bytes_per_s = 1e9;       ///< sustained memory bandwidth per rank
  /// Achieved fraction of roofline for this application's irregular
  /// kernels (unstructured SpMV gathers, short Krylov vectors, sparse
  /// setup): GPUs reach ~10-15% here, CPUs ~35% (the paper notes the
  /// application is far from peak; §6 "not to say that Nalu-Wind is
  /// operating at peak performance").
  double efficiency = 1.0;
  double kernel_launch_s = 0.0;   ///< fixed cost per kernel invocation
  double msg_latency_s = 1e-6;    ///< point-to-point alpha
  double msg_bytes_per_s = 1e10;  ///< point-to-point beta
  double coll_hop_s = 1e-6;       ///< per-tree-hop latency in collectives
  int ranks_per_node = 1;         ///< for node-count axes in the figures

  /// Modeled time for one kernel moving `bytes` and doing `flops` work.
  double kernel_time(double flops, double bytes) const;

  /// Modeled time to stream `bytes` through memory at sustained
  /// bandwidth, ignoring flops and launch cost. Prices a labeled slice
  /// of a kernel's traffic — e.g. the index-byte share reported by
  /// PhaseStats::total_index_bytes() — on the same terms as the
  /// bandwidth leg of kernel_time.
  double stream_time(double bytes) const;

  /// Modeled time to send one message of `bytes`.
  double message_time(double bytes) const;

  /// Modeled time for an allreduce of `bytes` across `nranks` ranks.
  double allreduce_time(double bytes, int nranks) const;

  /// Modeled time for an allreduce whose latency is hidden behind
  /// overlapped local work (pipelined Krylov, depth 1): the per-hop
  /// alpha_coll disappears into the overlapped SpMV+precond, but the
  /// payload still crosses every tree hop, so the bandwidth term
  /// remains. This is the term that moves the strong-scaling knee —
  /// alpha_coll * ceil(log2 R) is exactly the cost that grows with R
  /// while per-rank work shrinks (paper Fig. 11, Eagle-vs-Summit gap).
  double allreduce_overlapped_time(double bytes, int nranks) const;

  // --- The platforms of the paper's evaluation section -------------------

  /// Summit, rank = one V100 SXM2 (GPU runs of Figs. 3, 7, 8, 9, 11).
  static MachineModel summit_gpu();
  /// Summit, rank = one Power9 core (CPU runs of Figs. 3, 6, 8, 9).
  static MachineModel summit_cpu();
  /// Eagle, rank = one V100 PCIe (Fig. 11 comparison machine).
  static MachineModel eagle_gpu();
  /// The host this reproduction actually runs on (for sanity checks).
  static MachineModel host_cpu();
};

}  // namespace exw::perf
