#include "perf/purity.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <sstream>

#include "common/error.hpp"

namespace exw::perf::purity {

namespace {

// Fatal mode is seeded from the environment once at static init (before
// any region can open); set_fatal() overrides. Zero-initialized (false)
// until then, so allocations during early static init are never fatal.
bool env_fatal() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read during static init
  const char* s = std::getenv("EXW_PURITY_FATAL");
  return s != nullptr && s[0] != '\0' && !(s[0] == '0' && s[1] == '\0');
}
std::atomic<bool> g_fatal{env_fatal()};

// Process-wide totals. Constant-initialized atomics: safe to touch from
// allocations that happen before main().
std::atomic<unsigned long long> g_allocs{0};
std::atomic<unsigned long long> g_frees{0};
std::atomic<unsigned long long> g_bytes{0};
std::atomic<long long> g_regions_entered{0};
std::atomic<long long> g_disallowed{0};
std::atomic<long long> g_allowed{0};
std::atomic<long long> g_violations{0};

#if EXW_PURITY_CHECKS_ENABLED

/// One open region on the calling thread. Counters are plain (thread-
/// local, single writer); they merge into the shared registry when the
/// region closes.
struct Frame {
  const char* name = nullptr;
  const char* file = nullptr;
  int line = 0;
  long long allocs = 0;
  unsigned long long bytes = 0;
  long long frees = 0;
  long long allowed_allocs = 0;
  unsigned long long allowed_bytes = 0;
};

constexpr int kMaxDepth = 16;
thread_local Frame t_stack[kMaxDepth];  // NOLINT(modernize-avoid-c-arrays)
thread_local int t_depth = 0;
thread_local int t_allow_depth = 0;
/// Suppresses region accounting while the sanitizer itself allocates
/// (registry merges, violation messages) so the hooks cannot recurse.
thread_local bool t_internal = false;

struct InternalGuard {
  bool prev;
  InternalGuard() : prev(t_internal) { t_internal = true; }
  ~InternalGuard() { t_internal = prev; }
  InternalGuard(const InternalGuard&) = delete;
  InternalGuard& operator=(const InternalGuard&) = delete;
};

/// Shared per-region-name accumulation (merged at region close, under a
/// mutex — never from inside the allocator hooks' hot path).
std::mutex g_registry_mutex;
std::map<std::string, RegionStats, std::less<>>& registry() {
  static std::map<std::string, RegionStats, std::less<>> r;
  return r;
}
std::vector<std::string>& registry_order() {
  static std::vector<std::string> order;
  return order;
}

void note_alloc(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(sz, std::memory_order_relaxed);
  if (t_internal || t_depth == 0) {
    return;
  }
  const bool allowed = t_allow_depth > 0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(t_depth); ++i) {
    Frame& f = t_stack[i];
    if (allowed) {
      f.allowed_allocs += 1;
      f.allowed_bytes += sz;
    } else {
      f.allocs += 1;
      f.bytes += sz;
    }
  }
  if (allowed) {
    g_allowed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_disallowed.fetch_add(1, std::memory_order_relaxed);
  if (g_fatal.load(std::memory_order_relaxed)) {
    g_violations.fetch_add(1, std::memory_order_relaxed);
    const Frame& f = t_stack[t_depth - 1];
    InternalGuard guard;  // the message below allocates
    std::ostringstream os;
    os << "purity contract violated: " << sz
       << "-byte heap allocation inside warm region '" << f.name
       << "' outside any EXW_PURITY_ALLOW scope — the warm path must not "
          "allocate in steady state (see perf/purity.hpp)";
    exw::detail::throw_error(f.file, f.line, os.str());
  }
}

void note_free() {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  if (t_internal || t_depth == 0) {
    return;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(t_depth); ++i) {
    t_stack[i].frees += 1;
  }
}

void merge_frame(const Frame& f) {
  g_regions_entered.fetch_add(1, std::memory_order_relaxed);
  InternalGuard guard;  // first-time map-node insertion allocates
  std::lock_guard<std::mutex> lk(g_registry_mutex);
  auto it = registry().find(std::string_view(f.name));
  if (it == registry().end()) {
    it = registry().emplace(f.name, RegionStats{}).first;
    registry_order().emplace_back(f.name);
  }
  RegionStats& s = it->second;
  s.entries += 1;
  s.allocs += f.allocs;
  s.bytes += f.bytes;
  s.frees += f.frees;
  s.allowed_allocs += f.allowed_allocs;
  s.allowed_bytes += f.allowed_bytes;
}

#endif  // EXW_PURITY_CHECKS_ENABLED

}  // namespace

#if EXW_PURITY_CHECKS_ENABLED

ScopedPurityRegion::ScopedPurityRegion(const char* name, const char* file,
                                       int line) {
  EXW_REQUIRE(t_depth < kMaxDepth, "purity regions nested too deeply");
  t_stack[t_depth] = Frame{name, file, line, 0, 0, 0, 0, 0};
  t_depth += 1;
}

ScopedPurityRegion::~ScopedPurityRegion() {
  t_depth -= 1;
  merge_frame(t_stack[t_depth]);
}

ScopedPurityAllow::ScopedPurityAllow(const char* /*reason*/) {
  t_allow_depth += 1;
}

ScopedPurityAllow::~ScopedPurityAllow() { t_allow_depth -= 1; }

RegionToken capture() {
  if (t_depth == 0) {
    return RegionToken{};
  }
  const Frame& f = t_stack[t_depth - 1];
  return RegionToken{f.name, f.file, f.line};
}

ScopedRegionInherit::ScopedRegionInherit(const RegionToken& token)
    : active_(token.name != nullptr && t_depth == 0) {
  if (active_) {
    t_stack[0] = Frame{token.name, token.file, token.line, 0, 0, 0, 0, 0};
    t_depth = 1;
  }
}

ScopedRegionInherit::~ScopedRegionInherit() {
  if (active_) {
    t_depth = 0;
    merge_frame(t_stack[0]);
  }
}

RegionStats region(std::string_view name) {
  std::lock_guard<std::mutex> lk(g_registry_mutex);
  auto it = registry().find(name);  // exw-warm-ok: cold reporting accessor
  return it == registry().end() ? RegionStats{} : it->second;
}

std::vector<std::string> region_names() {
  std::lock_guard<std::mutex> lk(g_registry_mutex);
  return registry_order();
}

#else  // !EXW_PURITY_CHECKS_ENABLED

RegionStats region(std::string_view) { return RegionStats{}; }
std::vector<std::string> region_names() { return {}; }

#endif  // EXW_PURITY_CHECKS_ENABLED

Totals totals() {
  Totals t;
  t.allocs = g_allocs.load(std::memory_order_relaxed);
  t.frees = g_frees.load(std::memory_order_relaxed);
  t.bytes = g_bytes.load(std::memory_order_relaxed);
  return t;
}

Report report() {
  Report r;
  r.regions_entered = g_regions_entered.load(std::memory_order_relaxed);
  r.disallowed_allocs = g_disallowed.load(std::memory_order_relaxed);
  r.allowed_allocs = g_allowed.load(std::memory_order_relaxed);
  r.violations = g_violations.load(std::memory_order_relaxed);
  r.process = totals();
  return r;
}

void reset() {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
  g_regions_entered.store(0, std::memory_order_relaxed);
  g_disallowed.store(0, std::memory_order_relaxed);
  g_allowed.store(0, std::memory_order_relaxed);
  g_violations.store(0, std::memory_order_relaxed);
#if EXW_PURITY_CHECKS_ENABLED
  std::lock_guard<std::mutex> lk(g_registry_mutex);
  registry().clear();
  registry_order().clear();
#endif
}

std::string summary() {
  const Report r = report();
  std::ostringstream os;
  os << "purity: " << r.regions_entered << " regions, "
     << r.disallowed_allocs << " disallowed allocs, " << r.allowed_allocs
     << " allowed allocs, " << r.violations << " violations ("
     << r.process.allocs << " process allocs / " << r.process.bytes
     << " bytes total)";
  return os.str();
}

bool fatal_mode() { return g_fatal.load(std::memory_order_relaxed); }

void set_fatal(bool fatal) {
  g_fatal.store(fatal, std::memory_order_relaxed);
}

}  // namespace exw::perf::purity

#if EXW_PURITY_CHECKS_ENABLED

// --- global operator new/delete interposition ----------------------------
// Every heap allocation in the process routes through these replacements
// (one definition per program; the hand-rolled bench probes were folded
// in here). They must never allocate themselves outside the guarded
// paths above, and they throw only std::bad_alloc — or, in fatal mode,
// an exw::Error raised *before* any memory is obtained.

namespace {

void* checked_malloc(std::size_t sz) {
  exw::perf::purity::note_alloc(sz);
  if (void* p = std::malloc(sz != 0 ? sz : 1)) {  // NOLINT
    return p;
  }
  throw std::bad_alloc{};
}

void* checked_aligned(std::size_t sz, std::align_val_t al) {
  exw::perf::purity::note_alloc(sz);
  const auto a = static_cast<std::size_t>(al);
  const std::size_t rounded = (sz + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded != 0 ? rounded : a)) {
    return p;
  }
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t sz) { return checked_malloc(sz); }
void* operator new[](std::size_t sz) { return checked_malloc(sz); }
void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
  try {
    return checked_malloc(sz);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t sz, const std::nothrow_t&) noexcept {
  try {
    return checked_malloc(sz);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t sz, std::align_val_t al) {
  return checked_aligned(sz, al);
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return checked_aligned(sz, al);
}
void* operator new(std::size_t sz, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  try {
    return checked_aligned(sz, al);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t sz, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  try {
    return checked_aligned(sz, al);
  } catch (...) {
    return nullptr;
  }
}

namespace {
void checked_free(void* p) noexcept {
  if (p != nullptr) {
    exw::perf::purity::note_free();
  }
  std::free(p);  // NOLINT
}
}  // namespace

void operator delete(void* p) noexcept { checked_free(p); }
void operator delete[](void* p) noexcept { checked_free(p); }
void operator delete(void* p, std::size_t) noexcept { checked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { checked_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  checked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  checked_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { checked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { checked_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  checked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  checked_free(p);
}

#endif  // EXW_PURITY_CHECKS_ENABLED
