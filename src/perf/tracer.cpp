#include "perf/tracer.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "par/contract.hpp"
#include "perf/purity.hpp"

namespace exw::perf {

double PhaseStats::modeled_time(const MachineModel& m) const {
  double worst = 0.0;
  const double f = m.flops_per_s * m.efficiency;
  const double b = m.bytes_per_s * m.efficiency;
  for (const RankWork& w : rank) {
    const double compute = std::max(w.flops / f, w.bytes / b) +
                           static_cast<double>(w.kernels) * m.kernel_launch_s;
    const double comm = static_cast<double>(w.msgs) * m.msg_latency_s +
                        w.msg_bytes / m.msg_bytes_per_s;
    worst = std::max(worst, compute + comm);
  }
  const int nranks = checked_narrow<int>(rank.size());
  const double avg_coll_bytes =
      collectives > 0 ? coll_bytes / static_cast<double>(collectives) : 0.0;
  const double avg_ovl_bytes =
      overlapped_collectives > 0
          ? overlapped_coll_bytes / static_cast<double>(overlapped_collectives)
          : 0.0;
  return worst +
         static_cast<double>(collectives) *
             m.allreduce_time(avg_coll_bytes, nranks) +
         static_cast<double>(overlapped_collectives) *
             m.allreduce_overlapped_time(avg_ovl_bytes, nranks);
}

double PhaseStats::compute_time(const MachineModel& m) const {
  double worst = 0.0;
  const double f = m.flops_per_s * m.efficiency;
  const double b = m.bytes_per_s * m.efficiency;
  for (const RankWork& w : rank) {
    worst = std::max(worst, std::max(w.flops / f, w.bytes / b) +
                                static_cast<double>(w.kernels) * m.kernel_launch_s);
  }
  return worst;
}

double PhaseStats::comm_time(const MachineModel& m) const {
  double worst = 0.0;
  for (const RankWork& w : rank) {
    worst = std::max(worst, static_cast<double>(w.msgs) * m.msg_latency_s +
                                w.msg_bytes / m.msg_bytes_per_s);
  }
  const int nranks = checked_narrow<int>(rank.size());
  const double avg_coll_bytes =
      collectives > 0 ? coll_bytes / static_cast<double>(collectives) : 0.0;
  const double avg_ovl_bytes =
      overlapped_collectives > 0
          ? overlapped_coll_bytes / static_cast<double>(overlapped_collectives)
          : 0.0;
  return worst +
         static_cast<double>(collectives) *
             m.allreduce_time(avg_coll_bytes, nranks) +
         static_cast<double>(overlapped_collectives) *
             m.allreduce_overlapped_time(avg_ovl_bytes, nranks);
}

long PhaseStats::total_kernels() const {
  long n = 0;
  for (const auto& w : rank) n += w.kernels;
  return n;
}

long PhaseStats::total_messages() const { return messages; }

double PhaseStats::total_flops() const {
  double n = 0;
  for (const auto& w : rank) n += w.flops;
  return n;
}

double PhaseStats::total_bytes() const {
  double n = 0;
  for (const auto& w : rank) n += w.bytes;
  return n;
}

double PhaseStats::total_index_bytes() const {
  double n = 0;
  for (const auto& w : rank) n += w.index_bytes;
  return n;
}

double PhaseStats::total_value_bytes() const {
  return total_bytes() - total_index_bytes();
}

double PhaseStats::total_value_bytes_f32() const {
  double n = 0;
  for (const auto& w : rank) n += w.value_bytes_f32;
  return n;
}

double PhaseStats::total_value_bytes_f64() const {
  return total_value_bytes() - total_value_bytes_f32();
}

double PhaseStats::max_kernel_flops() const {
  double m = 0;
  for (const auto& w : rank) m = std::max(m, w.max_kernel_flops);
  return m;
}

Tracer::Tracer(int nranks) : nranks_(nranks) {
  EXW_REQUIRE(nranks >= 1, "tracer needs at least one rank");
  stats_for("");  // root phase: untagged work is never lost
  stack_.push_back("");
}

PhaseStats& Tracer::stats_for(const std::string& name) {
  auto it = phases_.find(name);  // exw-warm-ok: the tracer IS the instrument
  if (it == phases_.end()) {
    it = phases_.emplace(  // exw-warm-ok: once per phase name (cold)
        name, PhaseStats{}).first;
    it->second.rank.assign(  // exw-warm-ok: cold first touch of phase name
        static_cast<std::size_t>(nranks_), RankWork{});
    order_.push_back(name);  // exw-warm-ok: cold first touch of phase name
  }
  return it->second;
}

void Tracer::push_phase(const std::string& name) {
  EXW_CONTRACT_CHECK(par::contract::check_phase_mutation("push_phase"));
  const std::string full =
      stack_.back().empty() ? name : stack_.back() + "/" + name;
  stats_for(full);
  stack_.push_back(full);
  const auto t = purity::totals();
  alloc_snap_.emplace_back(t.allocs, t.bytes);
}

void Tracer::pop_phase() {
  EXW_CONTRACT_CHECK(par::contract::check_phase_mutation("pop_phase"));
  EXW_REQUIRE(stack_.size() > 1, "pop_phase with no open phase");
  // Fold the process-wide allocation delta into the closing phase. The
  // delta naturally includes nested phases' activity, matching how
  // kernel charges accrue to every open phase.
  const auto t = purity::totals();
  const auto& [a0, b0] = alloc_snap_.back();
  PhaseStats& s = find_stats(stack_.back());
  s.allocs += static_cast<long long>(t.allocs - a0);
  s.alloc_bytes += static_cast<double>(t.bytes - b0);
  alloc_snap_.pop_back();
  const std::string closed = std::move(stack_.back());
  stack_.pop_back();
  // Boundary hook last, with the pop fully applied, so a listener that
  // throws (a failed boundary audit) leaves the phase stack consistent.
  if (pop_listener_ != nullptr) {
    pop_listener_->on_phase_pop(closed);
  }
}

PhaseStats& Tracer::find_stats(const std::string& name) {
  auto it = phases_.find(name);  // exw-warm-ok: the tracer IS the instrument
  EXW_ASSERT(it != phases_.end());
  return it->second;
}

void Tracer::kernel(RankId r, double flops, double bytes) {
  kernel_split(r, flops, bytes, 0.0);
}

void Tracer::kernel_split(RankId r, double flops, double value_bytes,
                          double index_bytes) {
  kernel_split_prec(r, flops, value_bytes, 0.0, index_bytes);
}

void Tracer::kernel_split_prec(RankId r, double flops, double value_bytes_f64,
                               double value_bytes_f32, double index_bytes) {
  EXW_ASSERT(r.value() >= 0 && r.value() < nranks_);
  EXW_CONTRACT_CHECK(par::contract::check_kernel_charge(r));
  // Rank r's flops/bytes/kernels are written only by the thread running
  // rank r's body, so plain accumulation is race-free even inside
  // parallel regions (the stack is frozen there and find_stats never
  // inserts). The msgs/msg_bytes members are NOT single-writer — any
  // thread may charge rank r as a message endpoint — so Tracer::message
  // uses atomic RMWs for them; they must never be touched here.
  for (const auto& name : stack_) {
    auto& w = find_stats(name).rank[static_cast<std::size_t>(r)];
    w.flops += flops;
    w.bytes += value_bytes_f64 + value_bytes_f32 + index_bytes;
    w.index_bytes += index_bytes;
    w.value_bytes_f32 += value_bytes_f32;
    w.kernels += 1;
    w.max_kernel_flops = std::max(w.max_kernel_flops, flops);
  }
}

void Tracer::message(RankId src, RankId dst, double bytes) {
  EXW_ASSERT(src.value() >= 0 && src.value() < nranks_ &&
             dst.value() >= 0 && dst.value() < nranks_);
  EXW_CONTRACT_CHECK(par::contract::check_message_charge(src));
  for (const auto& name : stack_) {
    auto& s = find_stats(name);
    // In a halo exchange every rank is simultaneously a sender (charged
    // here by its own thread) and a destination (charged by neighbor
    // threads), so BOTH endpoint charges must be atomic: mixing plain
    // and atomic access to the same object is UB and loses updates.
    // Relaxed order suffices — the region barrier publishes the totals —
    // and the double adds stay deterministic because byte counts are
    // integers, exact in double regardless of accumulation order.
    auto& ws = s.rank[static_cast<std::size_t>(src)];
    std::atomic_ref<long>(ws.msgs).fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<double>(ws.msg_bytes)
        .fetch_add(bytes, std::memory_order_relaxed);
    if (dst != src) {
      auto& wd = s.rank[static_cast<std::size_t>(dst)];
      std::atomic_ref<long>(wd.msgs).fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<double>(wd.msg_bytes)
          .fetch_add(bytes, std::memory_order_relaxed);
    }
    std::atomic_ref<long>(s.messages).fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::collective(double bytes) {
  for (const auto& name : stack_) {
    auto& s = stats_for(name);
    s.collectives += 1;
    s.coll_bytes += bytes;
  }
}

void Tracer::collective_overlapped(double bytes) {
  for (const auto& name : stack_) {
    auto& s = stats_for(name);
    s.overlapped_collectives += 1;
    s.overlapped_coll_bytes += bytes;
  }
}

double Tracer::phase_time(const std::string& name,
                          const MachineModel& m) const {
  return phase(name).modeled_time(m);
}

const PhaseStats& Tracer::phase(const std::string& name) const {
  auto it = phases_.find(name);
  EXW_REQUIRE(it != phases_.end(), "unknown phase: " + name);
  return it->second;
}

bool Tracer::has_phase(const std::string& name) const {
  return phases_.contains(name);
}

std::vector<std::string> Tracer::phase_names() const { return order_; }

void Tracer::reset() {
  for (auto& [name, s] : phases_) {
    std::fill(s.rank.begin(), s.rank.end(), RankWork{});
    s.collectives = 0;
    s.coll_bytes = 0;
    s.overlapped_collectives = 0;
    s.overlapped_coll_bytes = 0;
    s.messages = 0;
    s.allocs = 0;
    s.alloc_bytes = 0;
  }
}

}  // namespace exw::perf
