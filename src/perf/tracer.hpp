#pragma once
/// \file tracer.hpp
/// Machine-independent work accounting for the simulated runtime.
///
/// Distributed primitives (linalg, assembly, amg, solver) report the work
/// each simulated rank performs:
///   * kernel(rank, flops, bytes)  — one device kernel / CPU loop nest
///   * message(src, dst, bytes)    — one point-to-point message
///   * collective(bytes)           — one allreduce-style collective
///
/// Work is accumulated per rank inside the currently open *phase* (a
/// hierarchical name such as "continuity/precond_setup"); phase nesting
/// charges work to every open phase. Recorded quantities are machine-
/// independent aggregates (flops, bytes, kernel/message/collective
/// counts), so a single simulation run can be priced under any
/// MachineModel afterwards:
///
///   time(m) = max_r [ max(flops_r/F, bytes_r/B) + kernels_r * t_launch
///                     + msgs_r * alpha + msg_bytes_r / beta ]
///             + collectives * ceil(log2 R) * alpha_coll + coll traffic
///
/// — the bulk-synchronous critical path under a persistent load
/// imbalance, which is the regime of this application (fixed partition,
/// barrier-like collectives every few kernels).

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "perf/machine_model.hpp"

namespace exw::perf {

/// One rank's accumulated work within a phase.
struct RankWork {
  double flops = 0;
  double bytes = 0;
  /// Portion of `bytes` spent on index structure (row_ptr/cols/comm
  /// maps) rather than matrix/vector values. Always <= bytes — it is a
  /// labeled subset, not an extra charge — so every modeled-time formula
  /// keeps pricing `bytes` and is unaffected by the split. Fused
  /// multi-RHS kernels read the index structure once per several value
  /// lanes; this label is what makes that saving auditable
  /// (bench_momentum_fused hard-fails on it).
  double index_bytes = 0;
  /// Portion of the *value* traffic (bytes - index_bytes) that streamed
  /// FP32 storage. Same labeled-subset discipline as index_bytes: the
  /// charge is already priced inside `bytes` (at 4 bytes/value, the
  /// kernel's actual stream), this label only makes the per-precision
  /// ledger auditable — bench_mixed_precision hard-fails on the
  /// smoother-stream FP64/FP32 ratio (DESIGN.md §16).
  double value_bytes_f32 = 0;
  long kernels = 0;
  double msg_bytes = 0;
  long msgs = 0;
  /// Largest single kernel charged (flops). Aggregates hide what kind of
  /// work a phase did; the peak kernel exposes it — the bench/CI
  /// invariant "a warm AMG refresh never charges the O(n^3) coarse-LU
  /// factorization" is checked against this.
  double max_kernel_flops = 0;
};

/// Per-phase accumulated work over all ranks.
struct PhaseStats {
  std::vector<RankWork> rank;
  long collectives = 0;
  double coll_bytes = 0;
  /// Collectives whose latency is hidden behind overlapped local work
  /// (pipelined Krylov: the reduction is in flight while the next
  /// SpMV+precond runs). They are NOT counted in `collectives`; modeled
  /// time prices them with MachineModel::allreduce_overlapped_time —
  /// bandwidth still paid, latency hidden — so a pipelined solver's
  /// blocking-collective count is directly comparable in benches.
  long overlapped_collectives = 0;
  double overlapped_coll_bytes = 0;
  /// Exact point-to-point message count. Kept separately from the
  /// per-rank `msgs` charges: a message is charged to both endpoints
  /// unless dst == src (self-routed triples in assembly), so halving the
  /// per-rank sum undercounts whenever self-messages occur.
  long messages = 0;
  /// Heap allocations observed while this phase was open (process-wide
  /// deltas of the purity sanitizer's counters, taken at push/pop — see
  /// perf/purity.hpp). Like the PR 7 index/value byte split, this is a
  /// label, not a cost: modeled times ignore it, but it lets a bench or
  /// test assert "this phase allocated nothing" without interposing its
  /// own operator new. Zero when EXW_PURITY_CHECKS=OFF.
  long long allocs = 0;
  double alloc_bytes = 0;

  /// Modeled wall time of this phase on machine `m`.
  double modeled_time(const MachineModel& m) const;
  /// Compute-only component (max over ranks, no messages/collectives).
  double compute_time(const MachineModel& m) const;
  /// Communication component.
  double comm_time(const MachineModel& m) const;

  long total_kernels() const;
  long total_messages() const;
  double total_flops() const;
  double total_bytes() const;
  /// Index-structure traffic (subset of total_bytes) and its complement.
  double total_index_bytes() const;
  double total_value_bytes() const;
  /// Per-precision split of total_value_bytes (f32 label + complement).
  double total_value_bytes_f32() const;
  double total_value_bytes_f64() const;
  /// Heap allocations observed while the phase was open (see `allocs`).
  long long total_allocs() const { return allocs; }
  /// Largest single kernel charged by any rank in this phase (flops).
  double max_kernel_flops() const;
};

/// Phase-boundary hook: notified after each pop_phase, with the fully-
/// qualified name of the phase that just closed. This is how boundary
/// audits attach to the phase structure without the tracer knowing about
/// them — par::comm_audit uses it to run its cross-rank collective-
/// sequence comparison at every phase boundary. The notification runs on
/// the orchestrator (pop_phase is contract-checked to be outside
/// parallel regions) and may throw: a boundary audit that fails wants to
/// surface at the boundary, exactly like the contract check that
/// pop_phase already runs.
class PhasePopListener {
 public:
  virtual ~PhasePopListener() = default;
  virtual void on_phase_pop(const std::string& name) = 0;
};

/// Accumulates work by phase.
class Tracer {
 public:
  explicit Tracer(int nranks);

  int nranks() const { return nranks_; }

  /// Open a nested phase. Pair with pop_phase(); prefer PhaseScope.
  /// Must be called on the orchestrator, between parallel regions — the
  /// contract checker rejects push/pop from inside a rank body.
  void push_phase(const std::string& name);
  void pop_phase();
  /// Fully-qualified name of the innermost open phase.
  const std::string& current_phase() const { return stack_.back(); }

  /// One kernel on rank `r` doing `flops` work over `bytes` traffic.
  /// Thread-safe during parallel rank regions as long as it is called
  /// from the thread executing rank r's body (rank r's flops/bytes/
  /// kernels are written only by that thread) and the phase stack is
  /// not mutated. Both conditions are contract-checked (par/contract.hpp).
  void kernel(RankId r, double flops, double bytes);

  /// Same as kernel(), but labels how the traffic splits into value
  /// bytes and index-structure bytes (total charged = value + index).
  /// Kernels that stream sparse structure should prefer this so the
  /// index-vs-value ledger stays meaningful; kernel() charges everything
  /// as value traffic.
  void kernel_split(RankId r, double flops, double value_bytes,
                    double index_bytes);

  /// Full split: value traffic by precision plus index structure (total
  /// charged = f64 + f32 + index). Kernels streaming FP32-tagged storage
  /// charge their value bytes through the f32 lane so the per-precision
  /// ledger stays meaningful; kernel_split() labels everything f64.
  void kernel_split_prec(RankId r, double flops, double value_bytes_f64,
                         double value_bytes_f32, double index_bytes);

  /// One message of `bytes` from src to dst; charged to both endpoints
  /// (once if dst == src). Safe to call from concurrent rank bodies:
  /// both endpoint charges are atomic, since any rank may be charged as
  /// src by its own thread and as dst by neighbor threads at once.
  void message(RankId src, RankId dst, double bytes);

  /// One allreduce-style collective with `bytes` payload per rank.
  void collective(double bytes);

  /// One collective whose latency is overlapped with independent local
  /// work (pipelined Krylov). Counted separately from collective() —
  /// modeled time prices only its bandwidth term (see PhaseStats).
  void collective_overlapped(double bytes);

  /// Modeled seconds of a phase ("" = whole program) on machine `m`.
  double phase_time(const std::string& name, const MachineModel& m) const;
  const PhaseStats& phase(const std::string& name) const;
  bool has_phase(const std::string& name) const;

  /// All phase names in first-seen order.
  std::vector<std::string> phase_names() const;

  /// Reset all accumulated stats (phase registry is kept).
  void reset();

  /// Install (or clear, with nullptr) the phase-boundary listener. At
  /// most one listener; the tracer does not own it. The owner must
  /// outlive the tracer or clear the hook first.
  void set_phase_pop_listener(PhasePopListener* listener) {
    pop_listener_ = listener;
  }

 private:
  PhaseStats& stats_for(const std::string& name);
  /// Lookup without insertion — the hot accounting path. Never mutates
  /// the phase registry, so concurrent rank bodies can charge work while
  /// the orchestrator holds the phase stack fixed.
  PhaseStats& find_stats(const std::string& name);

  int nranks_;
  std::map<std::string, PhaseStats> phases_;
  std::vector<std::string> order_;
  std::vector<std::string> stack_;  ///< open fully-qualified names
  /// Purity-counter snapshot (allocs, bytes) taken when each open phase
  /// was pushed; the delta at pop is folded into that phase's `allocs`.
  /// Parallel to stack_ minus the root entry.
  std::vector<std::pair<unsigned long long, unsigned long long>> alloc_snap_;
  PhasePopListener* pop_listener_ = nullptr;  ///< not owned; may be null
};

/// RAII phase guard.
class PhaseScope {
 public:
  PhaseScope(Tracer& tracer, const std::string& name) : tracer_(tracer) {
    tracer_.push_phase(name);
  }
  ~PhaseScope() { tracer_.pop_phase(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Tracer& tracer_;
};

}  // namespace exw::perf
