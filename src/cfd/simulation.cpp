#include "cfd/simulation.hpp"

#include <cmath>
#include <span>

#include "assembly/global.hpp"
#include "assembly/plan.hpp"
#include "common/error.hpp"
#include "mesh/vtk_writer.hpp"
#include "linalg/parvector.hpp"
#include "perf/purity.hpp"
#include "solver/precond.hpp"

namespace exw::cfd {

namespace {

using mesh::NodeRole;

/// Per-rank element/node counts for charging the physics and local
/// assembly kernels.
struct RankCounts {
  std::vector<double> edges;
  std::vector<double> nodes;
};

RankCounts count_work(const assembly::MeshLayout& layout) {
  RankCounts c;
  c.edges.assign(static_cast<std::size_t>(layout.nranks), 0.0);
  c.nodes.assign(static_cast<std::size_t>(layout.nranks), 0.0);
  for (RankId r : layout.edge_rank) c.edges[static_cast<std::size_t>(r)] += 1.0;
  for (RankId r : layout.node_rank) c.nodes[static_cast<std::size_t>(r)] += 1.0;
  return c;
}

void charge_per_rank(perf::Tracer& tracer, const std::vector<double>& items,
                     double flops_per_item, double bytes_per_item) {
  for (std::size_t r = 0; r < items.size(); ++r) {
    if (items[r] > 0) {
      tracer.kernel(checked_narrow<RankId>(r), items[r] * flops_per_item,
                    items[r] * bytes_per_item);
    }
  }
}

}  // namespace

void Simulation::assemble_system(EquationCache& cache,
                                 assembly::EquationGraph& g) {
  const auto& rows = g.layout().numbering.rows;
  const auto views = assembly::system_views(g);
  const auto span = std::span<const assembly::SystemView>(views);
  const bool plan_path =
      cfg_.use_assembly_plan &&
      cfg_.assembly_algo == assembly::GlobalAssemblyAlgo::kSortReduce;
  if (!plan_path) {
    cache.valid = false;
    cache.matrix = assembly::assemble_matrix(*rt_, rows, rows, span,
                                             cfg_.assembly_algo);
    cache.rhs = assembly::assemble_vector(*rt_, rows, span, cfg_.assembly_algo);
    cache.structure_epoch += 1;  // fresh matrix: derived state is stale
    return;
  }
  if (!cache.valid || cache.generation != g.generation()) {
    // Cold: one structural pass freezes the whole stage-3 pipeline.
    cache.plan = assembly::AssemblyPlan::build(*rt_, rows, rows, span);
    cache.matrix = cache.plan.create_matrix(*rt_);
    cache.rhs = cache.plan.create_vector(*rt_);
    cache.generation = g.generation();
    cache.valid = true;
    cache.structure_epoch += 1;
  }
  // Warm: value-only exchange + segmented sums, bitwise-identical to
  // cold kSortReduce assembly. The purity region opens after the cold
  // branch and the system_views staging above — those may allocate; the
  // refills themselves must not. (Runtime-only check: this caller is not
  // EXW_WARM_FN-annotated because it owns the cold fallback too — see
  // DESIGN.md §14.)
  {
    EXW_PURITY_REGION("picard-warm-assemble");
    cache.plan.refill_matrix(*rt_, span, cache.matrix);
    cache.plan.refill_vector(*rt_, span, cache.rhs);
  }
}

void Simulation::assemble_rhs(EquationCache& cache,
                              assembly::EquationGraph& g) {
  const auto& rows = g.layout().numbering.rows;
  const auto views = assembly::system_views(g);
  const auto span = std::span<const assembly::SystemView>(views);
  if (cache.valid && cache.generation == g.generation()) {
    EXW_PURITY_REGION("picard-warm-assemble");
    cache.plan.refill_vector(*rt_, span, cache.rhs);
    return;
  }
  cache.rhs = assembly::assemble_vector(*rt_, rows, span, cfg_.assembly_algo);
}

solver::SmootherPrecond& Simulation::momentum_smoother(MeshBlock& blk,
                                                       EquationStats& stats) {
  MeshBlock::SmootherSlot& slot = blk.mom_smoother;
  if (!slot.precond || slot.epoch != blk.mom_cache.structure_epoch) {
    slot.precond = std::make_unique<solver::SmootherPrecond>(
        blk.mom_cache.matrix, amg::SmootherType::kSgs2, cfg_.sgs_outer_sweeps,
        cfg_.sgs_inner_sweeps, cfg_.precond_precision);
    slot.epoch = blk.mom_cache.structure_epoch;
    stats.smoother_rebuilds += 1;
  } else {
    // Same sparsity, refreshed values: one value-only streaming pass over
    // the cached L/D/U split instead of reconstruction.
    EXW_PURITY_REGION("picard-smoother-rebind");
    slot.precond->refresh_values();
    stats.smoother_rebinds += 1;
  }
  return *slot.precond;
}

Simulation::Simulation(mesh::OversetSystem& system, const SimConfig& cfg,
                       par::Runtime& rt)
    : system_(&system), cfg_(cfg), rt_(&rt) {
  blocks_.resize(system.meshes.size());
  for (std::size_t m = 0; m < system.meshes.size(); ++m) {
    blocks_[m].db = &system.meshes[m];
    blocks_[m].mesh_index = checked_narrow<int>(m);
    setup_block(blocks_[m]);
  }
  exchange_fringe_values();
}

void Simulation::setup_block(MeshBlock& blk) {
  const mesh::MeshDB& db = *blk.db;
  const auto n = static_cast<std::size_t>(db.num_nodes());

  // Stage 0: domain decomposition + DoF renumbering.
  blk.layout = assembly::make_layout(db, rt_->nranks(), cfg_.partition);

  // Dirichlet masks per equation family (paper §3.1: "periodic, Dirichlet,
  // and overset DoFs are accounted for precisely").
  blk.mom_dirichlet.assign(n, 0);
  blk.prs_dirichlet.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    switch (db.roles[i]) {
      case NodeRole::kInterior:
        break;
      case NodeRole::kInflow:
      case NodeRole::kSymmetry:
      case NodeRole::kWall:
        blk.mom_dirichlet[i] = 1;  // velocity fixed, pressure Neumann
        break;
      case NodeRole::kOutflow:
        blk.prs_dirichlet[i] = 1;  // pressure fixed, velocity Neumann
        break;
      case NodeRole::kFringe:
      case NodeRole::kHole:
        blk.mom_dirichlet[i] = 1;
        blk.prs_dirichlet[i] = 1;
        break;
    }
  }

  // Stage 1: graph computation (pattern is a topology invariant: built
  // once, reused every Picard iteration).
  {
    perf::PhaseScope scope(rt_->tracer(), "graph");
    blk.mom_graph = std::make_unique<assembly::EquationGraph>(
        db, blk.layout, blk.mom_dirichlet);
    blk.prs_graph = std::make_unique<assembly::EquationGraph>(
        db, blk.layout, blk.prs_dirichlet);
    charge_per_rank(rt_->tracer(), blk.mom_graph->pattern_nnz_per_rank(), 16.0,
                    64.0);
    charge_per_rank(rt_->tracer(), blk.prs_graph->pattern_nnz_per_rank(), 16.0,
                    64.0);
  }

  // Initial condition: uniform inflow, ambient scalar; boundary values on
  // their Dirichlet nodes.
  blk.u.assign(n, cfg_.inflow_speed);
  blk.v.assign(n, 0.0);
  blk.w.assign(n, 0.0);
  blk.p.assign(n, 0.0);
  blk.scl.assign(n, cfg_.scalar_inflow);
  for (std::size_t i = 0; i < n; ++i) {
    if (db.roles[i] == NodeRole::kWall || db.roles[i] == NodeRole::kHole) {
      const Vec3 bc = boundary_velocity(blk, checked_narrow<GlobalIndex>(i));
      blk.u[i] = bc.x;
      blk.v[i] = bc.y;
      blk.w[i] = bc.z;
      blk.scl[i] = 0.0;
    }
  }
  blk.u_old = blk.u;
  blk.v_old = blk.v;
  blk.w_old = blk.w;
  blk.scl_old = blk.scl;
  blk.edge_flux.assign(static_cast<std::size_t>(db.num_edges()), 0.0);
}

Vec3 Simulation::mesh_velocity(const MeshBlock& blk, const Vec3& x) const {
  const mesh::RotationSpec& spec =
      system_->motion[static_cast<std::size_t>(blk.mesh_index)];
  if (!spec.rotating) {
    return Vec3{};
  }
  const Vec3 axis = spec.axis * (1.0 / spec.axis.norm());
  return axis.cross(x - spec.center) * spec.omega;
}

Vec3 Simulation::boundary_velocity(const MeshBlock& blk,
                                   GlobalIndex node) const {
  const mesh::MeshDB& db = *blk.db;
  const auto i = static_cast<std::size_t>(node);
  switch (db.roles[i]) {
    case NodeRole::kInflow:
    case NodeRole::kSymmetry:
      return Vec3{cfg_.inflow_speed, 0, 0};
    case NodeRole::kWall:
      return mesh_velocity(blk, db.coords[i]);  // no-slip on rotating blade
    case NodeRole::kFringe:
      return Vec3{blk.u[i], blk.v[i], blk.w[i]};  // donor-interpolated
    case NodeRole::kHole:
      return Vec3{};
    default:
      return Vec3{blk.u[i], blk.v[i], blk.w[i]};
  }
}

void Simulation::exchange_fringe_values() {
  // Overset (additive Schwarz) coupling: every fringe node takes the
  // donor-interpolated field values, used as Dirichlet data by the next
  // per-mesh solves.
  perf::PhaseScope scope(rt_->tracer(), "overset");
  for (const auto& c : system_->constraints) {
    MeshBlock& rec = blocks_[static_cast<std::size_t>(c.mesh)];
    const MeshBlock& don = blocks_[static_cast<std::size_t>(c.donor_mesh)];
    Real su = 0, sv = 0, sw = 0, sp = 0, ss = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      const auto d = static_cast<std::size_t>(c.donors[static_cast<std::size_t>(k)]);
      const Real wk = c.weights[static_cast<std::size_t>(k)];
      su += wk * don.u[d];
      sv += wk * don.v[d];
      sw += wk * don.w[d];
      sp += wk * don.p[d];
      ss += wk * don.scl[d];
    }
    const auto i = static_cast<std::size_t>(c.node);
    rec.u[i] = su;
    rec.v[i] = sv;
    rec.w[i] = sw;
    rec.p[i] = sp;
    rec.scl[i] = ss;
  }
  // Charge: the TIOGA-style exchange moves 5 fields x 8 donors per
  // constraint between ranks.
  const auto nc = static_cast<double>(system_->constraints.size());
  rt_->tracer().kernel(RankId{0}, 80.0 * nc, 320.0 * nc);
  rt_->tracer().collective(8.0);
}

void Simulation::compute_fluxes(MeshBlock& blk) {
  const mesh::MeshDB& db = *blk.db;
  for (std::size_t e = 0; e < db.edges.size(); ++e) {
    const auto& edge = db.edges[e];
    const auto a = static_cast<std::size_t>(edge.a);
    const auto b = static_cast<std::size_t>(edge.b);
    const Vec3 dx = db.coords[b] - db.coords[a];
    const Vec3 uavg{0.5 * (blk.u[a] + blk.u[b]), 0.5 * (blk.v[a] + blk.v[b]),
                    0.5 * (blk.w[a] + blk.w[b])};
    const Vec3 um = mesh_velocity(
        blk, (db.coords[a] + db.coords[b]) * 0.5);
    (void)dx;
    blk.edge_flux[e] = cfg_.density * (uavg - um).dot(edge.area);
  }
}

void Simulation::solve_momentum(MeshBlock& blk) {
  perf::Tracer& tracer = rt_->tracer();
  perf::PhaseScope eq(tracer, "momentum");
  const mesh::MeshDB& db = *blk.db;
  const RankCounts counts = count_work(blk.layout);
  const Real mu = cfg_.viscosity;
  const Real rho = cfg_.density;

  // Nodal pressure gradient (for the momentum RHS).
  std::vector<Vec3> gradp(static_cast<std::size_t>(db.num_nodes()), Vec3{});
  {
    perf::PhaseScope ph(tracer, "physics");
    compute_fluxes(blk);
    for (const auto& edge : db.edges) {
      const auto a = static_cast<std::size_t>(edge.a);
      const auto b = static_cast<std::size_t>(edge.b);
      const Real pf = 0.5 * (blk.p[a] + blk.p[b]);
      gradp[a] += edge.area * pf;
      gradp[b] += edge.area * (-pf);
    }
    for (std::size_t i = 0; i < gradp.size(); ++i) {
      gradp[i] += db.node_boundary_area[i] * blk.p[i];
      const Real vol = std::max(db.node_volume[i], Real{1e-30});
      gradp[i] = gradp[i] * (1.0 / vol);
    }
    charge_per_rank(tracer, counts.edges, 60.0, 200.0);
    charge_per_rank(tracer, counts.nodes, 10.0, 60.0);
  }

  // Local assembly: matrix once + RHS for the u component.
  auto fill_node_rhs = [&](std::size_t component) {
    for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (blk.mom_dirichlet[i]) {
        const Vec3 bc = boundary_velocity(blk, node);
        const Real val = component == 0 ? bc.x : (component == 1 ? bc.y : bc.z);
        blk.mom_graph->add_node_rhs(node, val, cfg_.atomic_local_assembly);
      } else {
        const Real vol = db.node_volume[i];
        const Real mass = rho * vol / cfg_.dt;
        const Real uo = component == 0 ? blk.u_old[i]
                        : component == 1 ? blk.v_old[i] : blk.w_old[i];
        const Real gp = component == 0 ? gradp[i].x
                        : component == 1 ? gradp[i].y : gradp[i].z;
        blk.mom_graph->add_node_rhs(node, mass * uo - vol * gp,
                                    cfg_.atomic_local_assembly);
      }
    }
    charge_per_rank(tracer, counts.nodes, 8.0, 48.0);
  };

  {
    perf::PhaseScope ph(tracer, "local");
    blk.mom_graph->zero_values();
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      const auto& edge = db.edges[e];
      const Real diff = mu * edge.coeff;
      const Real f = blk.edge_flux[e];
      // Upwinded advection + diffusion, rows a and b.
      const std::array<Real, 4> m{std::max(f, 0.0) + diff,
                                  std::min(f, 0.0) - diff,
                                  std::min(-f, 0.0) - diff,
                                  std::max(-f, 0.0) + diff};
      blk.mom_graph->add_edge(e, m, {0.0, 0.0}, cfg_.atomic_local_assembly);
    }
    for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (blk.mom_dirichlet[i]) {
        blk.mom_graph->add_node(node, 1.0, 0.0, cfg_.atomic_local_assembly);
      } else {
        // Time term plus the boundary advection closure (outflow faces of
        // the node's dual cell); together with the edge fluxes this makes
        // constant velocity an exact steady state.
        const Vec3 ui{blk.u[i], blk.v[i], blk.w[i]};
        const Real fb = rho * (ui - mesh_velocity(blk, db.coords[i]))
                                  .dot(db.node_boundary_area[i]);
        blk.mom_graph->add_node(node, rho * db.node_volume[i] / cfg_.dt + fb,
                                0.0, cfg_.atomic_local_assembly);
      }
    }
    fill_node_rhs(0);
    charge_per_rank(tracer, counts.edges, 30.0, 160.0);
    charge_per_rank(tracer, counts.nodes, 6.0, 40.0);
  }

  const auto& rows = blk.layout.numbering.rows;
  {
    perf::PhaseScope ph(tracer, "global");
    assemble_system(blk.mom_cache, *blk.mom_graph);
  }
  linalg::ParCsr& a = blk.mom_cache.matrix;
  linalg::ParVector& rhs = blk.mom_cache.rhs;

  solver::SmootherPrecond* precond = nullptr;
  {
    perf::PhaseScope ph(tracer, "setup");
    precond = &momentum_smoother(blk, mom_stats_);
  }

  // RHS-only pass per remaining component: the matrix (and its
  // value-fill plan) is reused across the three velocity components.
  auto assemble_component_rhs = [&](std::size_t component) {
    {
      perf::PhaseScope ph(tracer, "local");
      blk.mom_graph->zero_rhs();
      fill_node_rhs(component);
    }
    perf::PhaseScope ph(tracer, "global");
    assemble_rhs(blk.mom_cache, *blk.mom_graph);
  };

  if (cfg_.use_fused_momentum) {
    // Fused path: one 3-lane multi-RHS GMRES reads the matrix's index
    // structure once per fused SpMV / smoother sweep for all components
    // and batches the reduction payloads into one allreduce each —
    // bitwise-identical per component to the sequential branch below.
    linalg::ParMultiVector b(*rt_, rows, 3);
    linalg::ParMultiVector x(*rt_, rows, 3);
    assembly::field_to_lane(blk.layout, blk.u, x, 0);
    assembly::field_to_lane(blk.layout, blk.v, x, 1);
    assembly::field_to_lane(blk.layout, blk.w, x, 2);
    b.set_lane(0, rhs);
    for (std::size_t component = 1; component < 3; ++component) {
      assemble_component_rhs(component);
      b.set_lane(component, rhs);
    }
    solver::MultiSolveStats st;
    {
      perf::PhaseScope ph(tracer, "solve");
      st = solver::gmres_solve_multi(a, b, x, *precond, cfg_.momentum_gmres);
    }
    for (const auto& lane : st.lane) {
      mom_stats_.gmres_iterations += lane.iterations;
      mom_stats_.solves += 1;
      mom_stats_.final_residual = lane.final_residual;
    }
    assembly::lane_to_field(blk.layout, x, 0, blk.u);
    assembly::lane_to_field(blk.layout, x, 1, blk.v);
    assembly::lane_to_field(blk.layout, x, 2, blk.w);
    return;
  }

  linalg::ParVector x(*rt_, rows);
  auto solve_component = [&](RealVector& field) {
    assembly::field_to_rows(blk.layout, field, x);
    solver::SolveStats st;
    {
      perf::PhaseScope ph(tracer, "solve");
      st = solver::gmres_solve(a, rhs, x, *precond, cfg_.momentum_gmres);
    }
    mom_stats_.gmres_iterations += st.iterations;
    mom_stats_.solves += 1;
    mom_stats_.final_residual = st.final_residual;
    assembly::rows_to_field(blk.layout, x, field);
  };

  solve_component(blk.u);
  for (std::size_t component = 1; component < 3; ++component) {
    assemble_component_rhs(component);
    solve_component(component == 1 ? blk.v : blk.w);
  }
}

void Simulation::solve_continuity(MeshBlock& blk) {
  perf::Tracer& tracer = rt_->tracer();
  perf::PhaseScope eq(tracer, "continuity");
  const mesh::MeshDB& db = *blk.db;
  const RankCounts counts = count_work(blk.layout);
  const Real rho = cfg_.density;
  const auto n = static_cast<std::size_t>(db.num_nodes());

  // Physics: volume divergence of the predicted velocity.
  RealVector div(n, 0.0);
  {
    perf::PhaseScope ph(tracer, "physics");
    compute_fluxes(blk);
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      const auto& edge = db.edges[e];
      div[static_cast<std::size_t>(edge.a)] += blk.edge_flux[e] / rho;
      div[static_cast<std::size_t>(edge.b)] -= blk.edge_flux[e] / rho;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const Vec3 ui{blk.u[i], blk.v[i], blk.w[i]};
      div[i] += (ui - mesh_velocity(blk, db.coords[i]))
                    .dot(db.node_boundary_area[i]);
    }
    charge_per_rank(tracer, counts.edges, 20.0, 120.0);
  }

  {
    perf::PhaseScope ph(tracer, "local");
    blk.prs_graph->zero_values();
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      const Real g = db.edges[e].coeff;
      blk.prs_graph->add_edge(e, {g, -g, -g, g}, {0.0, 0.0},
                              cfg_.atomic_local_assembly);
    }
    for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (blk.prs_dirichlet[i]) {
        // Solve for total pressure: Dirichlet rows pin p_new; since the
        // RHS later gains A p_old, store (p_bc - p_old) here.
        Real p_bc = 0.0;  // outflow and hole reference pressure
        if (db.roles[i] == NodeRole::kFringe) {
          p_bc = blk.p[i];  // donor-interpolated
        }
        blk.prs_graph->add_node(node, 1.0, p_bc - blk.p[i],
                                cfg_.atomic_local_assembly);
      } else {
        blk.prs_graph->add_node(node, 0.0, -(rho / cfg_.dt) * div[i],
                                cfg_.atomic_local_assembly);
      }
    }
    charge_per_rank(tracer, counts.edges, 16.0, 120.0);
    charge_per_rank(tracer, counts.nodes, 6.0, 40.0);
  }

  const auto& rows = blk.layout.numbering.rows;
  linalg::ParVector p_old_vec(*rt_, rows);
  {
    perf::PhaseScope ph(tracer, "global");
    assemble_system(blk.prs_cache, *blk.prs_graph);
  }
  linalg::ParCsr& a = blk.prs_cache.matrix;
  // The in-place matvec below makes rhs state-dependent; the next
  // assemble_system overwrites it entirely, so aliasing the cache is safe.
  linalg::ParVector& rhs = blk.prs_cache.rhs;
  {
    perf::PhaseScope ph(tracer, "global");
    // Total-pressure form: rhs += A p_old.
    assembly::field_to_rows(blk.layout, blk.p, p_old_vec);
    a.matvec(p_old_vec, rhs, 1.0, 1.0);
  }

  // Preconditioner: structural AMG setup only when the hierarchy cache is
  // off, stale (graph generation or AmgConfig changed), past the refresh
  // lag, or stagnating; otherwise a value-only refresh of the frozen
  // hierarchy (amg/cache.hpp).
  amg::HierarchyCache& pc = blk.prs_precond;
  {
    perf::PhaseScope ph(tracer, "setup");
    // The sim-level precision knob rides into the AMG config here so it
    // participates in the cache key: toggling it forces a rebuild.
    amg::AmgConfig acfg = cfg_.pressure_amg;
    acfg.precision = cfg_.precond_precision;
    const std::uint64_t gen = blk.prs_graph->generation();
    const bool must_rebuild =
        !cfg_.use_amg_cache || pc.stale(gen, acfg) ||
        pc.solves_since_rebuild() >= cfg_.amg_rebuild_lag ||
        pc.stagnating(cfg_.amg_stagnation_ratio);
    if (must_rebuild) {
      pc.rebuild(a, acfg, gen, /*freeze=*/cfg_.use_amg_cache);
      prs_stats_.amg_rebuilds += 1;
    } else {
      EXW_PURITY_REGION("picard-amg-refresh");
      pc.refresh(a);
      prs_stats_.amg_refreshes += 1;
    }
  }
  solver::AmgPrecond precond(pc.hierarchy());
  prs_stats_.amg_levels = pc.hierarchy().num_levels();
  prs_stats_.amg_operator_complexity = pc.hierarchy().operator_complexity();

  linalg::ParVector x(*rt_, rows);
  x.copy_from(p_old_vec);
  solver::SolveStats st;
  {
    perf::PhaseScope ph(tracer, "solve");
    st = solver::gmres_solve(a, rhs, x, precond, cfg_.pressure_gmres);
  }
  pc.note_solve(st.iterations);
  prs_stats_.gmres_iterations += st.iterations;
  prs_stats_.solves += 1;
  prs_stats_.final_residual = st.final_residual;

  // Projection: u -= (dt / rho) grad(p_new - p_old); p := p_new.
  {
    perf::PhaseScope ph(tracer, "physics");
    RealVector dp(n, 0.0);
    assembly::rows_to_field(blk.layout, x, dp);
    for (std::size_t i = 0; i < n; ++i) {
      dp[i] -= blk.p[i];
      blk.p[i] += dp[i];
    }
    std::vector<Vec3> grad(n, Vec3{});
    for (const auto& edge : db.edges) {
      const auto ai = static_cast<std::size_t>(edge.a);
      const auto bi = static_cast<std::size_t>(edge.b);
      const Real pf = 0.5 * (dp[ai] + dp[bi]);
      grad[ai] += edge.area * pf;
      grad[bi] += edge.area * (-pf);
    }
    for (std::size_t i = 0; i < n; ++i) {
      grad[i] += db.node_boundary_area[i] * dp[i];
    }
    const Real c = cfg_.dt / rho;
    for (std::size_t i = 0; i < n; ++i) {
      if (blk.mom_dirichlet[i]) continue;  // keep boundary velocities
      const Real vol = std::max(db.node_volume[i], Real{1e-30});
      blk.u[i] -= c * grad[i].x / vol;
      blk.v[i] -= c * grad[i].y / vol;
      blk.w[i] -= c * grad[i].z / vol;
    }
    charge_per_rank(tracer, counts.edges, 30.0, 160.0);
    charge_per_rank(tracer, counts.nodes, 10.0, 60.0);
  }
}

void Simulation::solve_scalar(MeshBlock& blk) {
  perf::Tracer& tracer = rt_->tracer();
  perf::PhaseScope eq(tracer, "scalar");
  const mesh::MeshDB& db = *blk.db;
  const RankCounts counts = count_work(blk.layout);
  const Real rho = cfg_.density;
  const Real mu = cfg_.viscosity;

  {
    perf::PhaseScope ph(tracer, "physics");
    compute_fluxes(blk);
    charge_per_rank(tracer, counts.edges, 30.0, 150.0);
  }
  {
    perf::PhaseScope ph(tracer, "local");
    blk.mom_graph->zero_values();
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      const auto& edge = db.edges[e];
      const Real diff = mu * edge.coeff;
      const Real f = blk.edge_flux[e];
      const std::array<Real, 4> m{std::max(f, 0.0) + diff,
                                  std::min(f, 0.0) - diff,
                                  std::min(-f, 0.0) - diff,
                                  std::max(-f, 0.0) + diff};
      blk.mom_graph->add_edge(e, m, {0.0, 0.0}, cfg_.atomic_local_assembly);
    }
    for (GlobalIndex node{0}; node < db.num_nodes(); ++node) {
      const auto i = static_cast<std::size_t>(node);
      if (blk.mom_dirichlet[i]) {
        Real bc = cfg_.scalar_inflow;
        if (db.roles[i] == NodeRole::kFringe) bc = blk.scl[i];
        if (db.roles[i] == NodeRole::kWall || db.roles[i] == NodeRole::kHole) bc = 0.0;
        blk.mom_graph->add_node(node, 1.0, bc, cfg_.atomic_local_assembly);
      } else {
        const Real vol = db.node_volume[i];
        const Real mass = rho * vol / cfg_.dt;
        const Vec3 ui{blk.u[i], blk.v[i], blk.w[i]};
        const Real fb = rho * (ui - mesh_velocity(blk, db.coords[i]))
                                  .dot(db.node_boundary_area[i]);
        // Shear-production-like source keeps the scalar field nontrivial.
        blk.mom_graph->add_node(node, mass + fb,
                                mass * blk.scl_old[i] + cfg_.scalar_source * vol,
                                cfg_.atomic_local_assembly);
      }
    }
    charge_per_rank(tracer, counts.edges, 30.0, 160.0);
    charge_per_rank(tracer, counts.nodes, 8.0, 48.0);
  }

  const auto& rows = blk.layout.numbering.rows;
  {
    perf::PhaseScope ph(tracer, "global");
    // The scalar system shares the momentum graph (same pattern), so it
    // reuses the momentum plan cache; only values differ.
    assemble_system(blk.mom_cache, *blk.mom_graph);
  }
  linalg::ParCsr& a = blk.mom_cache.matrix;
  linalg::ParVector& rhs = blk.mom_cache.rhs;
  solver::SmootherPrecond* precond = nullptr;
  {
    perf::PhaseScope ph(tracer, "setup");
    // Same matrix slot as momentum (shared graph): this is always a
    // value rebind unless the scalar assembly went cold.
    precond = &momentum_smoother(blk, scl_stats_);
  }
  linalg::ParVector x(*rt_, rows);
  assembly::field_to_rows(blk.layout, blk.scl, x);
  solver::SolveStats st;
  {
    perf::PhaseScope ph(tracer, "solve");
    st = solver::gmres_solve(a, rhs, x, *precond, cfg_.momentum_gmres);
  }
  scl_stats_.gmres_iterations += st.iterations;
  scl_stats_.solves += 1;
  scl_stats_.final_residual = st.final_residual;
  assembly::rows_to_field(blk.layout, x, blk.scl);
}

void Simulation::step() {
  perf::Tracer& tracer = rt_->tracer();
  time_ += cfg_.dt;
  step_count_ += 1;

  {
    // Mesh motion + overset connectivity update (outside NLI, as in the
    // paper's breakdowns).
    perf::PhaseScope scope(tracer, "motion");
    mesh::advance_motion(*system_, time_);
    const auto nc = static_cast<double>(system_->constraints.size());
    tracer.kernel(RankId{0}, 200.0 * nc, 400.0 * nc);
  }

  for (auto& blk : blocks_) {
    blk.u_old = blk.u;
    blk.v_old = blk.v;
    blk.w_old = blk.w;
    blk.scl_old = blk.scl;
  }

  // Per-step stats: reset once here, accumulated across the Picard loop
  // (resetting inside the solve routines made every step report only its
  // last Picard iteration — solves was always 1).
  mom_stats_ = EquationStats{};
  prs_stats_ = EquationStats{};
  scl_stats_ = EquationStats{};

  perf::PhaseScope nli(tracer, "nli");
  for (std::int64_t picard = 0; picard < cfg_.picard_iters; ++picard) {
    exchange_fringe_values();
    for (auto& blk : blocks_) {
      solve_momentum(blk);
    }
    for (auto& blk : blocks_) {
      solve_continuity(blk);
    }
    for (auto& blk : blocks_) {
      solve_scalar(blk);
    }
  }
}

std::vector<double> Simulation::pressure_nnz_per_rank(int mesh_index) const {
  const MeshBlock& blk = blocks_[static_cast<std::size_t>(mesh_index)];
  std::vector<double> nnz(static_cast<std::size_t>(rt_->nranks()), 0.0);
  for (RankId r{0}; r.value() < blk.prs_graph->nranks(); ++r) {
    nnz[static_cast<std::size_t>(r)] +=
        static_cast<double>(blk.prs_graph->rank(r).owned.nnz());
  }
  return nnz;
}

bool Simulation::write_vtk(const std::string& prefix) const {
  bool ok = true;
  for (const auto& blk : blocks_) {
    mesh::VtkFields fields;
    fields.scalars["pressure"] = blk.p;
    fields.scalars["scalar"] = blk.scl;
    std::vector<Real> vel(3 * blk.u.size());
    for (std::size_t i = 0; i < blk.u.size(); ++i) {
      vel[3 * i] = blk.u[i];
      vel[3 * i + 1] = blk.v[i];
      vel[3 * i + 2] = blk.w[i];
    }
    fields.vectors["velocity"] = std::move(vel);
    const std::string path = prefix + "_" + blk.db->name + "_" +
                             std::to_string(step_count_) + ".vtk";
    ok = mesh::write_vtk(*blk.db, fields, path) && ok;
  }
  return ok;
}

Real Simulation::velocity_rms() const {
  double sum = 0;
  double count = 0;
  for (const auto& blk : blocks_) {
    for (std::size_t i = 0; i < blk.u.size(); ++i) {
      sum += blk.u[i] * blk.u[i] + blk.v[i] * blk.v[i] + blk.w[i] * blk.w[i];
      count += 1;
    }
  }
  return std::sqrt(sum / std::max(count, 1.0));
}

Real Simulation::divergence_rms() const {
  double sum = 0;
  double count = 0;
  for (const auto& blk : blocks_) {
    const mesh::MeshDB& db = *blk.db;
    RealVector div(static_cast<std::size_t>(db.num_nodes()), 0.0);
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      const auto& edge = db.edges[e];
      const auto a = static_cast<std::size_t>(edge.a);
      const auto b = static_cast<std::size_t>(edge.b);
      const Vec3 uavg{0.5 * (blk.u[a] + blk.u[b]), 0.5 * (blk.v[a] + blk.v[b]),
                      0.5 * (blk.w[a] + blk.w[b])};
      const Vec3 um = mesh_velocity(blk, (db.coords[a] + db.coords[b]) * 0.5);
      const Real f = (uavg - um).dot(edge.area);
      div[a] += f;
      div[b] -= f;
    }
    for (std::size_t i = 0; i < div.size(); ++i) {
      const Vec3 ui{blk.u[i], blk.v[i], blk.w[i]};
      div[i] += (ui - mesh_velocity(blk, db.coords[i]))
                    .dot(db.node_boundary_area[i]);
    }
    for (std::size_t i = 0; i < div.size(); ++i) {
      if (blk.prs_dirichlet[i] || blk.mom_dirichlet[i]) continue;
      const Real d = div[i] / std::max(db.node_volume[i], Real{1e-30});
      sum += d * d;
      count += 1;
    }
  }
  return std::sqrt(sum / std::max(count, 1.0));
}

Real Simulation::scalar_mean() const {
  double sum = 0;
  double count = 0;
  for (const auto& blk : blocks_) {
    for (Real s : blk.scl) {
      sum += s;
      count += 1;
    }
  }
  return sum / std::max(count, 1.0);
}

}  // namespace exw::cfd
