#pragma once
/// \file config.hpp
/// Simulation configuration: physics, Picard iteration, solver settings,
/// and the implementation knobs the paper's §5.1 optimization story turns
/// (partitioner, assembly variant, inner smoother sweeps, AMG params).

#include "amg/config.hpp"
#include "assembly/global.hpp"
#include "assembly/layout.hpp"
#include "solver/gmres.hpp"

namespace exw::cfd {

struct SimConfig {
  // Physics (NREL 5-MW-like operating point: 8 m/s uniform inflow).
  Real dt = 0.05;
  Real density = 1.225;
  Real viscosity = 1.0;  ///< effective (turbulent) dynamic viscosity
  Real inflow_speed = 8.0;
  Real scalar_inflow = 0.1;
  Real scalar_source = 0.01;
  int picard_iters = 4;  ///< nonlinear iterations per time step (paper: 4)

  // Decomposition / assembly (the paper's optimization axes).
  assembly::PartitionMethod partition = assembly::PartitionMethod::kGraph;
  assembly::GlobalAssemblyAlgo assembly_algo =
      assembly::GlobalAssemblyAlgo::kSortReduce;
  bool atomic_local_assembly = false;
  /// Cache the stage-3 assembly structure per equation graph and refill
  /// values in place on later Picard iterations (hypre's SetValues2 /
  /// AddToValues2 fast path). Only engages with kSortReduce, whose
  /// result it reproduces bitwise; other algos always assemble cold.
  bool use_assembly_plan = true;

  /// Storage precision of *both* preconditioners (pressure AMG hierarchy
  /// and momentum/scalar SGS2 twin). kF32 is the mixed-precision
  /// configuration (DESIGN.md §16): FP64 outer GMRES, FP32 preconditioner
  /// storage, demote/promote only at the preconditioner boundary —
  /// roughly halving the smoother value streams, V-cycle halo payloads,
  /// and coarse-level collective bytes that dominate the strong-scaling
  /// limit. kF64 is the classic full-precision setup (baseline()).
  Precision precond_precision = Precision::kF32;

  // Pressure-Poisson: AMG-preconditioned one-reduce GMRES (§4.2).
  amg::AmgConfig pressure_amg;
  solver::GmresOptions pressure_gmres{
      .max_iters = 100, .restart = 50, .rel_tol = 1e-5,
      .ortho = solver::OrthoMethod::kOneReduce};
  /// Cache the pressure AMG hierarchy across Picard solves and refresh
  /// its values in place (frozen coarsening + Galerkin-product replay;
  /// amg/cache.hpp) instead of rebuilding setup from scratch. Keyed on
  /// (equation-graph generation, pressure_amg); bitwise-identical
  /// V-cycles against the frozen coarsening.
  bool use_amg_cache = true;
  /// Drift policy: force a structural rebuild after this many solves on
  /// the same hierarchy (refreshed or not). 4 = once per time step at the
  /// paper's picard_iters, since mesh motion regenerates the graph
  /// between steps anyway.
  int amg_rebuild_lag = 4;
  /// Drift policy: force a rebuild when a solve's GMRES iterations
  /// exceed this multiple of the first post-rebuild solve's count
  /// (preconditioner gone stale through value drift).
  double amg_stagnation_ratio = 1.5;

  // Momentum / scalar transport: SGS2-preconditioned GMRES.
  int sgs_outer_sweeps = 2;
  int sgs_inner_sweeps = 2;
  solver::GmresOptions momentum_gmres{
      .max_iters = 60, .restart = 40, .rel_tol = 1e-5,
      .ortho = solver::OrthoMethod::kOneReduce};
  /// Solve the three momentum components as one fused 3-lane multi-RHS
  /// GMRES: the u/v/w systems share the matrix, so the fused path reads
  /// its index structure once per SpMV/smoother sweep for all lanes and
  /// batches the orthogonalization payloads into one allreduce. Each
  /// component's iterates stay bitwise-identical to the sequential
  /// three-solve path, with per-component convergence tracked
  /// independently (solver/gmres.hpp).
  bool use_fused_momentum = true;

  /// The paper's *baseline* GPU configuration (Fig. 3): the earlier
  /// implementation before the second-order optimizations — general
  /// (sparse-add style) assembly, a single inner GS sweep, default AMG
  /// parameters, RCB decomposition.
  static SimConfig baseline();
  /// The optimized configuration (current implementation).
  static SimConfig optimized();
};

}  // namespace exw::cfd
