#include "cfd/config.hpp"

namespace exw::cfd {

SimConfig SimConfig::optimized() { return SimConfig{}; }

SimConfig SimConfig::baseline() {
  // The paper's baseline GPU implementation (Fig. 3): fast GPU AMG setup
  // and two-stage GS already present, but before the second-order
  // optimizations — hypre's general assembly path, RCB decomposition,
  // a single inner GS sweep, and untuned BoomerAMG parameters.
  SimConfig cfg;
  cfg.precond_precision = Precision::kF64;  // mixed precision came later
  cfg.partition = assembly::PartitionMethod::kRcb;
  cfg.assembly_algo = assembly::GlobalAssemblyAlgo::kGeneral;
  cfg.use_amg_cache = false;  // baseline rebuilds AMG setup every solve
  cfg.sgs_inner_sweeps = 1;
  cfg.pressure_amg.inner_sweeps = 1;
  cfg.pressure_amg.agg_levels = 0;
  cfg.pressure_amg.pmax = 0;
  // Before the MM-ext development (§4.1), direct interpolation was the
  // GPU-available option; the tuned configuration selects the MM-ext
  // family with aggressive coarsening and truncation.
  cfg.pressure_amg.interp = amg::InterpType::kDirect;
  cfg.use_fused_momentum = false;  // baseline solves u, v, w sequentially
  return cfg;
}

}  // namespace exw::cfd
