#pragma once
/// \file simulation.hpp
/// Incompressible-flow solver over an overset mesh system (the Nalu-Wind
/// stand-in).
///
/// Governing equations (paper §1): mass-continuity Poisson-type equation
/// for pressure and Helmholtz-type equations for momentum and scalar
/// transport, discretized edge-based finite-volume on the node-centered
/// dual mesh, advanced with implicit Euler inside a nonlinear Picard
/// iteration (4 per time step in the paper's runs).
///
/// Per-mesh systems are built through the three-stage assembly (§3) and
/// solved independently; overset coupling happens through the outer
/// Picard iterations via fringe-value exchange (additive Schwarz, §2).
/// Every stage runs inside a named tracer phase so the per-equation time
/// breakdowns of Figs. 6-7 fall out of one run:
///   <equation>/physics   graph computation & physics evaluation (purple)
///   <equation>/local     Nalu-Wind local assembly             (green)
///   <equation>/global    hypre global assembly                (red)
///   <equation>/setup     preconditioner setup                 (blue)
///   <equation>/solve     GMRES solve                          (orange)
/// with equations "momentum", "continuity", "scalar", all nested under
/// "nli" (the paper's nonlinear-iteration time).

#include <memory>
#include <string>
#include <vector>

#include "amg/cache.hpp"
#include "assembly/graph.hpp"
#include "assembly/plan.hpp"
#include "cfd/config.hpp"
#include "linalg/multivector.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "mesh/generators.hpp"
#include "mesh/motion.hpp"
#include "par/runtime.hpp"
#include "solver/precond.hpp"

namespace exw::cfd {

/// Solver statistics of the last time step, per equation: counters
/// (solves, iterations, rebuilds/refreshes) accumulate over all Picard
/// iterations and mesh blocks of the step — a 3-Picard step reports
/// solves == 3 per single-mesh equation — while final_residual and the
/// AMG shape fields reflect the step's last solve.
struct EquationStats {
  int gmres_iterations = 0;
  int solves = 0;
  Real final_residual = 0;
  int amg_levels = 0;
  double amg_operator_complexity = 0;
  int amg_rebuilds = 0;   ///< structural AMG setups this step
  int amg_refreshes = 0;  ///< value-only hierarchy refreshes this step
  int smoother_rebuilds = 0;  ///< SGS2 L/D/U splits built this step
  int smoother_rebinds = 0;   ///< value-only smoother rebinds this step
};

class Simulation {
 public:
  /// The overset system is borrowed and mutated (rotor motion).
  Simulation(mesh::OversetSystem& system, const SimConfig& cfg,
             par::Runtime& rt);

  /// Advance one time step (mesh motion + Picard iterations).
  void step();

  int step_count() const { return step_count_; }
  Real time() const { return time_; }
  const SimConfig& config() const { return cfg_; }
  par::Runtime& runtime() { return *rt_; }

  const EquationStats& momentum_stats() const { return mom_stats_; }
  const EquationStats& continuity_stats() const { return prs_stats_; }
  const EquationStats& scalar_stats() const { return scl_stats_; }

  /// Pressure-system nonzero counts per rank for one mesh (Figs. 5, 10).
  std::vector<double> pressure_nnz_per_rank(int mesh_index) const;

  /// Write each component mesh with its current fields as legacy VTK:
  /// <prefix>_<meshname>_<step>.vtk. Returns false on any I/O failure.
  bool write_vtk(const std::string& prefix) const;

  /// Mean/RMS diagnostics over all meshes (tests & examples).
  Real velocity_rms() const;
  Real divergence_rms() const;
  Real scalar_mean() const;

 private:
  /// Assembly-plan cache for one equation graph: the stage-3 structure
  /// (AssemblyPlan) plus the ParCsr/ParVector it refills in place. One
  /// cold build per (graph pattern, partition); every later Picard
  /// iteration reassembles values only. `generation` keys the cache on
  /// EquationGraph::generation() so a rebuilt graph invalidates it.
  struct EquationCache {
    assembly::AssemblyPlan plan;
    linalg::ParCsr matrix;
    linalg::ParVector rhs;
    std::uint64_t generation = 0;
    bool valid = false;
    /// Bumped whenever `matrix` is replaced (cold assembly / plan
    /// rebuild), i.e. whenever its sparsity or storage may have changed.
    /// Consumers holding matrix-derived state (the SGS2 smoother's L/D/U
    /// split) key on it: same epoch means the values changed in place
    /// and a cheap rebind suffices; a new epoch forces reconstruction.
    std::uint64_t structure_epoch = 0;
  };

  struct MeshBlock {
    mesh::MeshDB* db = nullptr;
    int mesh_index = 0;
    assembly::MeshLayout layout;
    std::vector<std::uint8_t> mom_dirichlet, prs_dirichlet;
    std::unique_ptr<assembly::EquationGraph> mom_graph;  // momentum+scalar
    std::unique_ptr<assembly::EquationGraph> prs_graph;
    EquationCache mom_cache;  // shared by momentum and scalar (same graph)
    EquationCache prs_cache;
    /// SGS2 preconditioner kept across momentum/scalar solves on
    /// mom_cache.matrix: while the cached matrix keeps its structure
    /// (epoch unchanged), later solves rebind the L/D/U split to the
    /// refreshed values instead of rebuilding it.
    struct SmootherSlot {
      std::unique_ptr<solver::SmootherPrecond> precond;
      std::uint64_t epoch = 0;
    };
    SmootherSlot mom_smoother;
    /// Pressure AMG hierarchy kept across Picard solves; the drift policy
    /// in solve_continuity decides rebuild vs value-only refresh.
    amg::HierarchyCache prs_precond;
    // Nodal fields (indexed by mesh node id).
    RealVector u, v, w, p, scl;
    RealVector u_old, v_old, w_old, scl_old;
    // Cached per-edge mass flux of the latest momentum state.
    RealVector edge_flux;
  };

  void setup_block(MeshBlock& blk);

  /// Stage-3 global assembly of matrix + RHS through the plan cache:
  /// warm in-place refill when the cached plan matches the graph's
  /// generation, cold assembly (and plan build, if enabled) otherwise.
  /// Results land in cache.matrix / cache.rhs.
  void assemble_system(EquationCache& cache, assembly::EquationGraph& g);
  /// RHS-only reassembly (momentum v/w components: matrix unchanged).
  void assemble_rhs(EquationCache& cache, assembly::EquationGraph& g);
  /// The block's SGS2 preconditioner for mom_cache.matrix, rebound to
  /// the current values (or rebuilt after a structural change); counts
  /// the outcome in `stats`. Call inside a "setup" phase, after
  /// assemble_system.
  solver::SmootherPrecond& momentum_smoother(MeshBlock& blk,
                                             EquationStats& stats);
  void exchange_fringe_values();
  Vec3 mesh_velocity(const MeshBlock& blk, const Vec3& x) const;
  Vec3 boundary_velocity(const MeshBlock& blk, GlobalIndex node) const;

  /// Physics evaluation + assembly + solve for each equation.
  void solve_momentum(MeshBlock& blk);
  void solve_continuity(MeshBlock& blk);
  void solve_scalar(MeshBlock& blk);

  /// Compute per-edge mass fluxes from the current velocity.
  void compute_fluxes(MeshBlock& blk);

  mesh::OversetSystem* system_;
  SimConfig cfg_;
  par::Runtime* rt_;
  std::vector<MeshBlock> blocks_;
  int step_count_ = 0;
  Real time_ = 0;
  EquationStats mom_stats_, prs_stats_, scl_stats_;
};

}  // namespace exw::cfd
