#pragma once
/// \file plan.hpp
/// Assembly-plan cache: stage-3 structure discovery done once, value-only
/// refills every Picard iteration after that.
///
/// The paper freezes the sparsity pattern across the nonlinear iterations
/// of a time step (§3.1: the graph stage runs once; §3.2-3.3 re-run per
/// iteration). hypre's IJ fast path (SetValues2 / AddToValues2 /
/// Assemble) exploits exactly that: the first assembly pays for sorting,
/// reduction and diag/offd splitting, later assemblies only move values.
/// AssemblyPlan is that fast path for the simulated runtime. `build()`
/// runs Algorithm 1/2's structural half once per (pattern, partition):
///
///   * per-rank send slices of the shared COO triples (one contiguous
///     run per owner, because the partition is contiguous block-row and
///     the shared set is sorted by row),
///   * the receive composition (source ranks in ascending order — the
///     cold path's drain order — with entry counts),
///   * the stable-sort permutation + reduce segments of the stacked
///     [owned, received] triples, frozen as a linalg::ValueFillPlan
///     whose segmented sums replay reduce_by_key's exact addend order,
///   * the diag/offd destination of every assembled entry, matching
///     split_diag_offd's fill order,
///   * the same three pieces for the RHS (Algorithm 2, received entries
///     only) as a linalg::VectorFillPlan,
///   * the final ParCSR structure (row_ptr / cols / col_map / CommPkg)
///     with zeroed values, cloned by create_matrix().
///
/// `refill_matrix()` / `refill_vector()` are then pure value pipelines —
/// gather values in send order, exchange value-only messages, segmented-
/// sum through the frozen maps into the existing ParCsr/ParVector — with
/// no sort, no searches, and no steady-state allocation on the value
/// path (the transport's serialization buffers are the simulated NIC and
/// are documented as out of scope). Results are bitwise-identical to
/// cold kSortReduce assembly because the stable permutation fixes the
/// addend order the cold path would have used.

#include <cstdint>
#include <span>
#include <vector>

#include "assembly/global.hpp"
#include "assembly/graph.hpp"
#include "common/types.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"

namespace exw::assembly {

/// Per-rank SystemViews aliasing an EquationGraph's stage-2 buffers
/// (valid as long as the graph lives; no copies).
std::vector<SystemView> system_views(const EquationGraph& graph);

class AssemblyPlan {
 public:
  /// One contiguous run of entries exchanged with `peer`. For sends,
  /// [begin, end) indexes the rank's shared COO/RHS arrays; for
  /// receives, it indexes the received region of the stacked value
  /// stream (so recv slices tile [0, n_recv)).
  struct Slice {
    RankId peer{0};
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Frozen stage-3 structure for one rank.
  struct RankPlan {
    // Matrix (Algorithm 1).
    std::vector<Slice> mat_sends;  ///< shared-triple runs, by owner
    std::vector<Slice> mat_recvs;  ///< ascending src — cold drain order
    std::size_t n_own = 0;         ///< owned-pattern nnz
    std::size_t n_recv = 0;        ///< total received triples
    linalg::ValueFillPlan mat_fill;
    // RHS (Algorithm 2).
    std::vector<Slice> rhs_sends;
    std::vector<Slice> rhs_recvs;
    std::size_t rhs_n_own = 0;  ///< local rows (dense owned RHS)
    std::size_t rhs_n_recv = 0;
    linalg::VectorFillPlan rhs_fill;
    // Warm-path scratch, sized on first refill and reused afterwards
    // (capacity never shrinks, so steady-state refills do not allocate).
    // Mutable because refills are const operations on the plan; each
    // rank's body touches only its own RankPlan, per the threading
    // contract.
    mutable RealVector stacked;
    mutable RealVector rhs_recv;
  };

  AssemblyPlan() = default;

  /// Discover the full stage-3 structure from the pattern in `systems`
  /// (values are ignored). Charges the same sort the first cold assembly
  /// would, i.e. building the plan costs one cold structural pass.
  static AssemblyPlan build(par::Runtime& rt, const par::RowPartition& rows,
                            const par::RowPartition& cols,
                            std::span<const SystemView> systems);

  bool valid() const { return !ranks_.empty(); }
  const par::RowPartition& rows() const { return rows_; }
  const par::RowPartition& cols() const { return cols_; }

  /// True if `systems` still has the shape this plan was built for
  /// (per-rank owned/shared sizes). A size match does not prove the
  /// pattern is unchanged — callers that rebuild patterns must also key
  /// the cache on EquationGraph::generation().
  bool matches(std::span<const SystemView> systems) const;

  /// Materialize the frozen structure as a ParCsr with zeroed values
  /// (comm package rebuilt from the cloned structure).
  linalg::ParCsr create_matrix(par::Runtime& rt) const;
  /// Zero ParVector over the row partition.
  linalg::ParVector create_vector(par::Runtime& rt) const;

  /// Warm value-only reassembly into a matrix created by create_matrix()
  /// (or cold-assembled from the same pattern): gather shared values in
  /// send order, exchange one value-only message per neighbor pair,
  /// stack, segmented-sum through the frozen fill plan. Bitwise equal to
  /// assemble_matrix(..., kSortReduce) on the same values.
  void refill_matrix(par::Runtime& rt, std::span<const SystemView> systems,
                     linalg::ParCsr& a) const;

  /// Warm RHS reassembly (Algorithm 2 analogue of refill_matrix).
  void refill_vector(par::Runtime& rt, std::span<const SystemView> systems,
                     linalg::ParVector& b) const;

 private:
  par::RowPartition rows_;
  par::RowPartition cols_;
  std::vector<RankPlan> ranks_;
  std::vector<linalg::RankBlock> structure_;  ///< values all zero
};

}  // namespace exw::assembly
