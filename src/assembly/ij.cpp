#include "assembly/ij.hpp"

#include "common/error.hpp"
#include "par/contract.hpp"

namespace exw::assembly {

IJMatrix::IJMatrix(par::Runtime& rt, par::RowPartition rows,
                   par::RowPartition cols)
    : rt_(&rt), rows_(std::move(rows)), cols_(std::move(cols)) {
  owned_.resize(static_cast<std::size_t>(rt.nranks()));
  shared_.resize(static_cast<std::size_t>(rt.nranks()));
}

void IJMatrix::SetValues2(RankId rank, std::span<const GlobalIndex> rows,
                          std::span<const GlobalIndex> cols,
                          std::span<const Real> values) {
  EXW_REQUIRE(rows.size() == cols.size() && rows.size() == values.size(),
              "IJ SetValues2 array mismatch");
  EXW_CONTRACT_CHECK_WRITE(rank, "IJMatrix::SetValues2(rank)");
  auto& coo = owned_[static_cast<std::size_t>(rank)];
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXW_REQUIRE(rows_.owns(rank, rows[k]),
                "SetValues2 requires rows owned by the calling rank");
    coo.push(rows[k], cols[k], values[k]);
  }
}

void IJMatrix::AddToValues2(RankId rank, std::span<const GlobalIndex> rows,
                            std::span<const GlobalIndex> cols,
                            std::span<const Real> values) {
  EXW_REQUIRE(rows.size() == cols.size() && rows.size() == values.size(),
              "IJ AddToValues2 array mismatch");
  EXW_CONTRACT_CHECK_WRITE(rank, "IJMatrix::AddToValues2(rank)");
  auto& coo = shared_[static_cast<std::size_t>(rank)];
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXW_REQUIRE(!rows_.owns(rank, rows[k]),
                "AddToValues2 is for rows owned by other ranks");
    coo.push(rows[k], cols[k], values[k]);
  }
}

linalg::ParCsr IJMatrix::Assemble(GlobalAssemblyAlgo algo) {
  // Stage-2 output contract: owned/shared sorted and duplicate-free.
  for (auto& coo : owned_) coo.normalize();
  for (auto& coo : shared_) coo.normalize();
  auto matrix = assemble_matrix(*rt_, rows_, cols_, owned_, shared_, algo);
  for (auto& coo : owned_) coo.clear();
  for (auto& coo : shared_) coo.clear();
  return matrix;
}

IJVector::IJVector(par::Runtime& rt, par::RowPartition rows)
    : rt_(&rt), rows_(std::move(rows)) {
  owned_.resize(static_cast<std::size_t>(rt.nranks()));
  for (RankId r{0}; r.value() < rt.nranks(); ++r) {
    owned_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(rows_.local_size(r)), 0.0);
  }
  shared_.resize(static_cast<std::size_t>(rt.nranks()));
}

void IJVector::SetValues2(RankId rank, std::span<const GlobalIndex> rows,
                          std::span<const Real> values) {
  EXW_REQUIRE(rows.size() == values.size(), "IJ SetValues2 array mismatch");
  EXW_CONTRACT_CHECK_WRITE(rank, "IJVector::SetValues2(rank)");
  auto& dense = owned_[static_cast<std::size_t>(rank)];
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXW_REQUIRE(rows_.owns(rank, rows[k]),
                "SetValues2 requires rows owned by the calling rank");
    dense[static_cast<std::size_t>(rows_.to_local(rank, rows[k]))] += values[k];
  }
}

void IJVector::AddToValues2(RankId rank, std::span<const GlobalIndex> rows,
                            std::span<const Real> values) {
  EXW_REQUIRE(rows.size() == values.size(), "IJ AddToValues2 array mismatch");
  EXW_CONTRACT_CHECK_WRITE(rank, "IJVector::AddToValues2(rank)");
  auto& coo = shared_[static_cast<std::size_t>(rank)];
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXW_REQUIRE(!rows_.owns(rank, rows[k]),
                "AddToValues2 is for rows owned by other ranks");
    coo.push(rows[k], values[k]);
  }
}

linalg::ParVector IJVector::Assemble() {
  for (auto& coo : shared_) coo.sort();
  auto vec = assemble_vector(*rt_, rows_, owned_, shared_);
  for (RankId r{0}; r.value() < rt_->nranks(); ++r) {
    owned_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(rows_.local_size(r)), 0.0);
    shared_[static_cast<std::size_t>(r)].clear();
  }
  return vec;
}

}  // namespace exw::assembly
