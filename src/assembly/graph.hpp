#pragma once
/// \file graph.hpp
/// Stage 1 (graph computation) and Stage 2 (local assembly) of the
/// paper's three-stage linear-system construction (§3.1-3.2).
///
/// The graph computation traverses the mesh once and computes the *exact*
/// sparsity pattern per rank, split into owned rows and shared rows
/// (rows owned by other ranks), both sorted row-major COO with no
/// duplicates. It also precomputes the auxiliary write-location slots —
/// the paper's "auxiliary data structures [that] help determine the write
/// location quickly" (looked up through read-only texture memory on the
/// GPU) — so the per-Picard-iteration local assembly is a pure
/// data-parallel fill.
///
/// Boundary-condition rows (Dirichlet, overset fringe/hole) keep only
/// their diagonal ("accounted for precisely", §3.1).

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "assembly/layout.hpp"
#include "common/types.hpp"
#include "mesh/meshdb.hpp"
#include "sparse/coo.hpp"

namespace exw::assembly {

/// Encoded write location: owned slot k -> k, shared slot k -> -(k+1),
/// "no entry" (Dirichlet row) -> kNoSlot.
using Slot = std::int64_t;
inline constexpr Slot kNoSlot = std::numeric_limits<std::int64_t>::min();

inline Slot encode_shared(std::size_t k) { return -static_cast<Slot>(k) - 1; }

/// Per-rank matrix/RHS storage for one equation system.
struct RankSystem {
  sparse::Coo owned;        ///< rows owned by this rank (sorted, unique)
  sparse::Coo shared;       ///< rows owned by other ranks (sorted, unique)
  RealVector rhs_owned;     ///< dense over local rows
  sparse::CooVector rhs_shared;  ///< sparse contributions to off-rank rows

  void zero_values();
};

/// Precomputed slots for one mesh edge's 2x2 stencil + RHS pair.
struct EdgeSlots {
  RankId rank{0};
  Slot aa = kNoSlot, ab = kNoSlot, ba = kNoSlot, bb = kNoSlot;
  Slot rhs_a = kNoSlot, rhs_b = kNoSlot;
};

/// Precomputed slots for one node's diagonal + RHS.
struct NodeSlots {
  RankId rank{0};
  Slot diag = kNoSlot;
  Slot rhs = kNoSlot;
};

/// The per-equation assembly graph over all ranks.
class EquationGraph {
 public:
  /// `dirichlet[node]` marks rows reduced to identity (BC / fringe / hole).
  EquationGraph(const mesh::MeshDB& db, const MeshLayout& layout,
                const std::vector<std::uint8_t>& dirichlet);

  int nranks() const { return checked_narrow<int>(ranks_.size()); }
  RankSystem& rank(RankId r) { return ranks_[static_cast<std::size_t>(r)]; }
  const RankSystem& rank(RankId r) const {
    return ranks_[static_cast<std::size_t>(r)];
  }
  std::vector<RankSystem>& rank_systems() { return ranks_; }

  const MeshLayout& layout() const { return *layout_; }
  const mesh::MeshDB& mesh() const { return *db_; }
  bool row_is_dirichlet(GlobalIndex node) const {
    return dirichlet_[static_cast<std::size_t>(node)] != 0;
  }

  // --- Stage 2: data-parallel value fill ---------------------------------

  /// Reset all matrix/RHS values to zero (start of a Picard iteration).
  void zero_values();

  /// Accumulate one edge's 2x2 stencil `m = [aa ab; ba bb]` and RHS pair.
  /// With `atomic`, values are added through std::atomic_ref — the
  /// device-atomics code path of §3.2 (non-reproducible order, same sum).
  void add_edge(std::size_t edge_id, const std::array<Real, 4>& m,
                const std::array<Real, 2>& rhs, bool atomic = false);

  /// Accumulate one node's diagonal + RHS contribution. For Dirichlet
  /// rows this *is* the row: diag = 1, rhs = boundary value.
  void add_node(GlobalIndex node, Real diag, Real rhs, bool atomic = false);

  /// RHS-only fill (used to reuse one momentum matrix for the three
  /// velocity components: matrix assembled once, three RHS passes).
  void zero_rhs();
  void add_edge_rhs(std::size_t edge_id, const std::array<Real, 2>& rhs,
                    bool atomic = false);
  void add_node_rhs(GlobalIndex node, Real rhs, bool atomic = false);

  /// Graph-stage pattern statistics (for cost accounting).
  std::vector<double> pattern_nnz_per_rank() const;

  /// Process-unique id stamped at construction. Consumers that freeze
  /// pattern-derived state (the assembly-plan cache) key it on this:
  /// a rebuilt graph gets a new generation even if sizes coincide, so
  /// stale plans are detected without comparing patterns.
  std::uint64_t generation() const { return generation_; }

 private:
  void build_patterns();
  void build_slots();
  Slot locate_matrix(RankId r, GlobalIndex row, GlobalIndex col) const;
  Slot locate_rhs(RankId r, GlobalIndex row) const;
  void apply(RankId r, Slot slot, Real v, bool atomic);
  void apply_rhs(RankId r, Slot slot, Real v, bool atomic);

  const mesh::MeshDB* db_;
  const MeshLayout* layout_;
  std::uint64_t generation_ = 0;
  std::vector<std::uint8_t> dirichlet_;
  std::vector<RankSystem> ranks_;
  std::vector<EdgeSlots> edge_slots_;
  std::vector<NodeSlots> node_slots_;
  /// Owned-pattern row offsets per rank (local row -> COO index range).
  std::vector<std::vector<std::size_t>> owned_row_start_;
  /// Shared-pattern row index per rank (sorted distinct shared rows).
  std::vector<std::vector<GlobalIndex>> shared_rows_;
  std::vector<std::vector<std::size_t>> shared_row_start_;
};

}  // namespace exw::assembly
