#include "assembly/global.hpp"

#include <algorithm>
#include <cmath>

#include "assembly/charges.hpp"
#include "common/error.hpp"
#include "par/tags.hpp"
#include "sparse/prim.hpp"

namespace exw::assembly {

// Channel tags come from the central registry (par/tags.hpp); the
// former file-local 201-205 constants live there now, uniqueness
// compile-checked against every other subsystem.
namespace tags = par::tags;

namespace {

using detail::charge_sort;
using detail::charge_stream;
using detail::kPairBytes;
using detail::kTripleBytes;

}  // namespace

linalg::RankBlock split_diag_offd(const sparse::Coo& coo,
                                  const par::RowPartition& rows,
                                  const par::RowPartition& cols, RankId r) {
  linalg::RankBlock block;
  const GlobalIndex row0 = rows.first_row(r);
  const GlobalIndex col0 = cols.first_row(r);
  const GlobalIndex col1 = cols.end_row(r);
  const auto nlocal = rows.local_size(r);

  // Gather distinct off-diagonal columns (ascending). Reserving nnz up
  // front keeps the gather a single allocation even when most entries
  // are off-diagonal (worst case for halo-heavy partitions).
  block.col_map.reserve(coo.nnz());
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    const GlobalIndex c = coo.cols[k];
    if (c < col0 || c >= col1) {
      block.col_map.push_back(c);
    }
  }
  const std::size_t n_offd = block.col_map.size();
  std::sort(block.col_map.begin(), block.col_map.end());
  block.col_map.erase(std::unique(block.col_map.begin(), block.col_map.end()),
                      block.col_map.end());

  block.diag = sparse::Csr(nlocal, checked_narrow<LocalIndex>(col1 - col0));
  block.offd =
      sparse::Csr(nlocal, checked_narrow<LocalIndex>(block.col_map.size()));
  auto& drp = block.diag.row_ptr_mut();
  auto& orp = block.offd.row_ptr_mut();
  // Entry counts are known exactly: n_offd off-diagonal, the rest diag.
  block.diag.cols_vec().reserve(coo.nnz() - n_offd);
  block.diag.vals_vec().reserve(coo.nnz() - n_offd);
  block.offd.cols_vec().reserve(n_offd);
  block.offd.vals_vec().reserve(n_offd);
  std::size_t k = 0;
  for (LocalIndex i{0}; i < nlocal; ++i) {
    const GlobalIndex grow = row0 + i.value();
    while (k < coo.nnz() && coo.rows[k] == grow) {
      const GlobalIndex c = coo.cols[k];
      if (c >= col0 && c < col1) {
        block.diag.cols_vec().push_back(checked_narrow<LocalIndex>(c - col0));
        block.diag.vals_vec().push_back(coo.vals[k]);
      } else {
        const auto it =
            std::lower_bound(block.col_map.begin(), block.col_map.end(), c);
        block.offd.cols_vec().push_back(
            checked_narrow<LocalIndex>(it - block.col_map.begin()));
        block.offd.vals_vec().push_back(coo.vals[k]);
      }
      ++k;
    }
    drp[static_cast<std::size_t>(i) + 1] =
        EntryOffset{block.diag.cols_vec().size()};
    orp[static_cast<std::size_t>(i) + 1] =
        EntryOffset{block.offd.cols_vec().size()};
  }
  EXW_REQUIRE(k == coo.nnz(), "COO rows outside owned range in split");
  return block;
}

linalg::ParCsr assemble_matrix(par::Runtime& rt, const par::RowPartition& rows,
                               const par::RowPartition& cols,
                               std::span<const SystemView> systems,
                               GlobalAssemblyAlgo algo) {
  const int nranks = rt.nranks();
  EXW_REQUIRE(checked_narrow<int>(systems.size()) == nranks,
              "one system view per rank");
  auto& transport = rt.transport();
  auto& tracer = rt.tracer();

  // Pre-compute nnz_recv (paper: "easily computed using MPI_Allreduce API
  // calls after the graph-computation step") so receive buffers can be
  // sized up front.
  std::vector<GlobalIndex> send_counts(static_cast<std::size_t>(nranks),
                                       GlobalIndex{0});
  for (RankId r{0}; r.value() < nranks; ++r) {
    send_counts[static_cast<std::size_t>(r)] =
        GlobalIndex{systems[static_cast<std::size_t>(r)].shared->nnz()};
  }
  (void)rt.allreduce_sum(send_counts);

  // Step 2: route each rank's shared triples to the owning ranks.
  // shared[r] is sorted by row, so owner runs are contiguous.
  rt.parallel_for_ranks([&](RankId r) {
    const auto& sh = *systems[static_cast<std::size_t>(r)].shared;
    std::size_t i = 0;
    while (i < sh.nnz()) {
      const RankId owner = rows.rank_of(sh.rows[i]);
      std::size_t j = i;
      while (j < sh.nnz() && rows.rank_of(sh.rows[j]) == owner) {
        ++j;
      }
      transport.send(r, owner, tags::kCooRows,
                     std::vector<GlobalIndex>(sh.rows.begin() + static_cast<std::ptrdiff_t>(i),
                                              sh.rows.begin() + static_cast<std::ptrdiff_t>(j)));
      transport.send(r, owner, tags::kCooCols,
                     std::vector<GlobalIndex>(sh.cols.begin() + static_cast<std::ptrdiff_t>(i),
                                              sh.cols.begin() + static_cast<std::ptrdiff_t>(j)));
      transport.send(r, owner, tags::kCooVals,
                     std::vector<Real>(sh.vals.begin() + static_cast<std::ptrdiff_t>(i),
                                       sh.vals.begin() + static_cast<std::ptrdiff_t>(j)));
      i = j;
    }
  });

  std::vector<linalg::RankBlock> blocks(static_cast<std::size_t>(nranks));
  rt.parallel_for_ranks([&](RankId r) {
    // Step 3-4: stack owned + all received buffers.
    sparse::Coo recv;
    for (RankId src{0}; src.value() < nranks; ++src) {
      if (!transport.has_message(r, src, tags::kCooRows)) continue;
      auto ri = transport.recv<GlobalIndex>(r, src, tags::kCooRows);
      auto rj = transport.recv<GlobalIndex>(r, src, tags::kCooCols);
      auto rv = transport.recv<Real>(r, src, tags::kCooVals);
      recv.rows.insert(recv.rows.end(), ri.begin(), ri.end());
      recv.cols.insert(recv.cols.end(), rj.begin(), rj.end());
      recv.vals.insert(recv.vals.end(), rv.begin(), rv.end());
    }

    const auto& own = *systems[static_cast<std::size_t>(r)].owned;
    sparse::Coo all;
    if (algo == GlobalAssemblyAlgo::kSortReduce ||
        algo == GlobalAssemblyAlgo::kGeneral) {
      // Algorithm 1 lines 4-6: stack, stable_sort_by_key, reduce_by_key.
      all = own;
      all.append(recv);
      charge_sort(tracer, r, all.nnz(), kTripleBytes);
      all.normalize();
      charge_stream(tracer, r, all.nnz(), kTripleBytes);
      if (algo == GlobalAssemblyAlgo::kGeneral) {
        // The general path cannot assume stacked pre-sized buffers or
        // pre-computed nnz_recv: it re-allocates and re-stages the data
        // several times mid-algorithm (paper §5.1: "more device memory,
        // more data motion, and more complex algorithms"). Charge a
        // second full sort pass plus the staging traffic.
        charge_sort(tracer, r, all.nnz(), 2.0 * kTripleBytes);
        for (std::size_t stage = 0; stage < 6; ++stage) {
          charge_stream(tracer, r, all.nnz(), kTripleBytes);
        }
      }
    } else {
      // Sparse-add variant: normalize only the received set, then one
      // merge pass against the (already normalized) owned set.
      charge_sort(tracer, r, recv.nnz(), kTripleBytes);
      recv.normalize();
      all.reserve(own.nnz() + recv.nnz());
      std::size_t a = 0, b = 0;
      while (a < own.nnz() || b < recv.nnz()) {
        const bool take_a =
            b >= recv.nnz() ||
            (a < own.nnz() &&
             (own.rows[a] < recv.rows[b] ||
              (own.rows[a] == recv.rows[b] && own.cols[a] <= recv.cols[b])));
        if (take_a) {
          if (b < recv.nnz() && own.rows[a] == recv.rows[b] &&
              own.cols[a] == recv.cols[b]) {
            all.push(own.rows[a], own.cols[a], own.vals[a] + recv.vals[b]);
            ++a;
            ++b;
          } else {
            all.push(own.rows[a], own.cols[a], own.vals[a]);
            ++a;
          }
        } else {
          all.push(recv.rows[b], recv.cols[b], recv.vals[b]);
          ++b;
        }
      }
      charge_stream(tracer, r, own.nnz() + recv.nnz(), kTripleBytes);
    }

    // Step 7: split into diag/offd.
    blocks[static_cast<std::size_t>(r)] = split_diag_offd(all, rows, cols, r);
    charge_stream(tracer, r, all.nnz(), kTripleBytes);
  });
  return linalg::ParCsr(rt, rows, cols, std::move(blocks));
}

linalg::ParVector assemble_vector(par::Runtime& rt,
                                  const par::RowPartition& rows,
                                  std::span<const SystemView> systems,
                                  GlobalAssemblyAlgo algo) {
  const int nranks = rt.nranks();
  EXW_REQUIRE(checked_narrow<int>(systems.size()) == nranks,
              "one system view per rank");
  auto& transport = rt.transport();
  auto& tracer = rt.tracer();

  std::vector<GlobalIndex> send_counts(static_cast<std::size_t>(nranks),
                                       GlobalIndex{0});
  for (RankId r{0}; r.value() < nranks; ++r) {
    send_counts[static_cast<std::size_t>(r)] =
        GlobalIndex{systems[static_cast<std::size_t>(r)].rhs_shared->size()};
  }
  (void)rt.allreduce_sum(send_counts);

  rt.parallel_for_ranks([&](RankId r) {
    const auto& sh = *systems[static_cast<std::size_t>(r)].rhs_shared;
    std::size_t i = 0;
    while (i < sh.size()) {
      const RankId owner = rows.rank_of(sh.rows[i]);
      std::size_t j = i;
      while (j < sh.size() && rows.rank_of(sh.rows[j]) == owner) {
        ++j;
      }
      transport.send(r, owner, tags::kRhsRows,
                     std::vector<GlobalIndex>(sh.rows.begin() + static_cast<std::ptrdiff_t>(i),
                                              sh.rows.begin() + static_cast<std::ptrdiff_t>(j)));
      transport.send(r, owner, tags::kRhsVals,
                     std::vector<Real>(sh.vals.begin() + static_cast<std::ptrdiff_t>(i),
                                       sh.vals.begin() + static_cast<std::ptrdiff_t>(j)));
      i = j;
    }
  });

  linalg::ParVector rhs(rt, rows);
  rt.parallel_for_ranks([&](RankId r) {
    const auto& own = *systems[static_cast<std::size_t>(r)].rhs_owned;
    EXW_REQUIRE(own.size() == static_cast<std::size_t>(rows.local_size(r)),
                "owned RHS must be dense over local rows");
    auto& local = rhs.local(r);
    local = own;

    // Algorithm 2 lines 4-5: sort/reduce *only the received values*
    // (n_recv << n_own, the paper's key optimization).
    sparse::CooVector recv;
    for (RankId src{0}; src.value() < nranks; ++src) {
      if (!transport.has_message(r, src, tags::kRhsRows)) continue;
      auto ri = transport.recv<GlobalIndex>(r, src, tags::kRhsRows);
      auto rv = transport.recv<Real>(r, src, tags::kRhsVals);
      recv.rows.insert(recv.rows.end(), ri.begin(), ri.end());
      recv.vals.insert(recv.vals.end(), rv.begin(), rv.end());
    }
    if (algo == GlobalAssemblyAlgo::kGeneral) {
      // Baseline: sort/reduce over the full stacked vector rather than
      // just the received entries (the optimization of Algorithm 2).
      charge_sort(tracer, r, local.size() + recv.size(), kPairBytes);
    } else {
      charge_sort(tracer, r, recv.size(), kPairBytes);
    }
    recv.normalize();
    // Lines 6-7: copy owned, scatter-add the reduced receives.
    const GlobalIndex row0 = rows.first_row(r);
    for (std::size_t k = 0; k < recv.size(); ++k) {
      local[static_cast<std::size_t>(recv.rows[k] - row0)] += recv.vals[k];
    }
    charge_stream(tracer, r, local.size() + recv.size(), kPairBytes);
  });
  return rhs;
}

linalg::ParCsr assemble_matrix(par::Runtime& rt, const par::RowPartition& rows,
                               const par::RowPartition& cols,
                               const std::vector<sparse::Coo>& owned,
                               const std::vector<sparse::Coo>& shared,
                               GlobalAssemblyAlgo algo) {
  EXW_REQUIRE(owned.size() == shared.size(), "one COO pair per rank");
  std::vector<SystemView> views(owned.size());
  for (std::size_t r = 0; r < owned.size(); ++r) {
    views[r].owned = &owned[r];
    views[r].shared = &shared[r];
  }
  return assemble_matrix(rt, rows, cols, std::span<const SystemView>(views),
                         algo);
}

linalg::ParVector assemble_vector(par::Runtime& rt,
                                  const par::RowPartition& rows,
                                  const std::vector<RealVector>& owned,
                                  const std::vector<sparse::CooVector>& shared,
                                  GlobalAssemblyAlgo algo) {
  EXW_REQUIRE(owned.size() == shared.size(), "one RHS pair per rank");
  std::vector<SystemView> views(owned.size());
  for (std::size_t r = 0; r < owned.size(); ++r) {
    views[r].rhs_owned = &owned[r];
    views[r].rhs_shared = &shared[r];
  }
  return assemble_vector(rt, rows, std::span<const SystemView>(views), algo);
}

}  // namespace exw::assembly
