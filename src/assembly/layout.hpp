#pragma once
/// \file layout.hpp
/// Distribution layout of one mesh's DoFs and elements across ranks.
///
/// Each overset component mesh is distributed over *all* ranks (paper §2:
/// the per-mesh linear systems are themselves large distributed systems).
/// A layout fixes (a) the node -> contiguous-global-row renumbering that
/// hypre's block-row format requires and (b) which rank evaluates and
/// assembles each mesh edge. Edges whose endpoints live on different
/// ranks produce the "shared" COO contributions that stage 3 exchanges.

#include <vector>

#include "common/types.hpp"
#include "mesh/meshdb.hpp"
#include "par/partition.hpp"
#include "part/renumber.hpp"

namespace exw::assembly {

/// Partitioner choice for building layouts (paper §5.1, Figs. 4-5).
enum class PartitionMethod { kRcb, kGraph };

struct MeshLayout {
  part::Numbering numbering;        ///< node id <-> global row id
  std::vector<RankId> node_rank;    ///< owner rank per node
  std::vector<RankId> edge_rank;    ///< processing rank per mesh edge
  int nranks = 0;

  GlobalIndex row_of(GlobalIndex node) const {
    return numbering.old_to_new[static_cast<std::size_t>(node)];
  }
};

/// Partition `db` over `nranks` ranks with the given method and build the
/// layout. Node weights are the expected row nonzeros (1 + degree), so
/// the graph method balances the paper's Fig. 5 metric.
MeshLayout make_layout(const mesh::MeshDB& db, int nranks,
                       PartitionMethod method, std::uint64_t seed = 1234);

/// Layout from an externally computed part assignment.
MeshLayout make_layout_from_parts(const mesh::MeshDB& db,
                                  std::vector<RankId> parts, int nranks);

}  // namespace exw::assembly
