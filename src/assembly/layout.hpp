#pragma once
/// \file layout.hpp
/// Distribution layout of one mesh's DoFs and elements across ranks.
///
/// Each overset component mesh is distributed over *all* ranks (paper §2:
/// the per-mesh linear systems are themselves large distributed systems).
/// A layout fixes (a) the node -> contiguous-global-row renumbering that
/// hypre's block-row format requires and (b) which rank evaluates and
/// assembles each mesh edge. Edges whose endpoints live on different
/// ranks produce the "shared" COO contributions that stage 3 exchanges.

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "mesh/meshdb.hpp"
#include "par/partition.hpp"
#include "part/renumber.hpp"

namespace exw::linalg {
class ParVector;
class ParMultiVector;
}  // namespace exw::linalg

namespace exw::assembly {

/// Partitioner choice for building layouts (paper §5.1, Figs. 4-5).
enum class PartitionMethod { kRcb, kGraph };

struct MeshLayout {
  part::Numbering numbering;        ///< node id <-> global row id
  std::vector<RankId> node_rank;    ///< owner rank per node
  std::vector<RankId> edge_rank;    ///< processing rank per mesh edge
  int nranks = 0;

  GlobalIndex row_of(GlobalIndex node) const {
    return numbering.old_to_new[static_cast<std::size_t>(node)];
  }
};

/// Partition `db` over `nranks` ranks with the given method and build the
/// layout. Node weights are the expected row nonzeros (1 + degree), so
/// the graph method balances the paper's Fig. 5 metric.
MeshLayout make_layout(const mesh::MeshDB& db, int nranks,
                       PartitionMethod method, std::uint64_t seed = 1234);

/// Layout from an externally computed part assignment.
MeshLayout make_layout_from_parts(const mesh::MeshDB& db,
                                  std::vector<RankId> parts, int nranks);

/// Gather a nodal field into the layout's distributed row vector:
/// x[row_of(node)] = field[node]. Host-side glue between the physics
/// fields (mesh node order) and solver vectors (renumbered row order);
/// uncharged, like the per-element ParVector accessors it wraps.
void field_to_rows(const MeshLayout& layout, const RealVector& field,
                   linalg::ParVector& x);
/// Scatter a distributed row vector back: field[node] = x[row_of(node)].
void rows_to_field(const MeshLayout& layout, const linalg::ParVector& x,
                   RealVector& field);
/// Gather a nodal field into one lane of a multi-vector.
void field_to_lane(const MeshLayout& layout, const RealVector& field,
                   linalg::ParMultiVector& x, std::size_t lane);
/// Scatter one lane of a multi-vector back into a nodal field.
void lane_to_field(const MeshLayout& layout, const linalg::ParMultiVector& x,
                   std::size_t lane, RealVector& field);

}  // namespace exw::assembly
