#include "assembly/plan.hpp"

#include <algorithm>

#include "assembly/charges.hpp"
#include "common/error.hpp"
#include "par/tags.hpp"
#include "perf/purity.hpp"
#include "sparse/prim.hpp"

namespace exw::assembly {

// Warm-path value-only exchange tags come from the central registry
// (par/tags.hpp): kPlanMatVals/kPlanRhsVals, kept distinct from the cold
// 201-205 channels so a warm refill can never consume a cold assembly's
// triples by accident.
namespace tags = par::tags;

namespace {

using detail::charge_sort;
using detail::charge_stream;
using detail::kPairBytes;
using detail::kTripleBytes;

/// Segment a sorted-by-row COO/RHS row array into one contiguous run per
/// owning rank (the cold send loop's structure, frozen).
std::vector<AssemblyPlan::Slice> owner_runs(
    const std::vector<GlobalIndex>& rows_arr, const par::RowPartition& rows) {
  std::vector<AssemblyPlan::Slice> runs;
  std::size_t i = 0;
  while (i < rows_arr.size()) {
    const RankId owner = rows.rank_of(rows_arr[i]);
    std::size_t j = i;
    while (j < rows_arr.size() && rows.rank_of(rows_arr[j]) == owner) {
      ++j;
    }
    runs.push_back({owner, i, j});
    i = j;
  }
  return runs;
}

/// Receive composition for rank dst: ascending-src slices tiling the
/// received region [0, n_recv) — exactly the cold path's drain order.
std::vector<AssemblyPlan::Slice> recv_runs(
    RankId dst, const std::vector<const std::vector<AssemblyPlan::Slice>*>& sends) {
  std::vector<AssemblyPlan::Slice> runs;
  std::size_t off = 0;
  for (std::size_t src = 0; src < sends.size(); ++src) {
    for (const auto& s : *sends[src]) {
      if (s.peer != dst) continue;
      const std::size_t len = s.end - s.begin;
      runs.push_back({RankId{checked_narrow<int>(src)}, off, off + len});
      off += len;
    }
  }
  return runs;
}

/// Source-side slice of `sends` destined for `dst` (one run per pair).
const AssemblyPlan::Slice* find_send(
    const std::vector<AssemblyPlan::Slice>& sends, RankId dst) {
  for (const auto& s : sends) {
    if (s.peer == dst) return &s;
  }
  return nullptr;
}

}  // namespace

std::vector<SystemView> system_views(const EquationGraph& graph) {
  std::vector<SystemView> views(static_cast<std::size_t>(graph.nranks()));
  for (RankId r{0}; r.value() < graph.nranks(); ++r) {
    const RankSystem& rs = graph.rank(r);
    views[static_cast<std::size_t>(r)] = {&rs.owned, &rs.shared,
                                          &rs.rhs_owned, &rs.rhs_shared};
  }
  return views;
}

AssemblyPlan AssemblyPlan::build(par::Runtime& rt,
                                 const par::RowPartition& rows,
                                 const par::RowPartition& cols,
                                 std::span<const SystemView> systems) {
  const int nranks = rt.nranks();
  EXW_REQUIRE(checked_narrow<int>(systems.size()) == nranks,
              "one system view per rank");
  AssemblyPlan plan;
  plan.rows_ = rows;
  plan.cols_ = cols;
  plan.ranks_.resize(static_cast<std::size_t>(nranks));
  plan.structure_.resize(static_cast<std::size_t>(nranks));

  // Send composition (cheap, serial): one contiguous run per owner.
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& sv = systems[static_cast<std::size_t>(r)];
    auto& p = plan.ranks_[static_cast<std::size_t>(r)];
    p.mat_sends = owner_runs(sv.shared->rows, rows);
    p.rhs_sends = owner_runs(sv.rhs_shared->rows, rows);
    p.n_own = sv.owned->nnz();
    p.rhs_n_own = sv.rhs_owned->size();
    EXW_REQUIRE(p.rhs_n_own == static_cast<std::size_t>(rows.local_size(r)),
                "owned RHS must be dense over local rows");
  }

  // Receive composition: build-time replacement for the cold path's
  // nnz_recv allreduce; charge the same collective.
  std::vector<const std::vector<Slice>*> mat_sends_all;
  std::vector<const std::vector<Slice>*> rhs_sends_all;
  std::vector<GlobalIndex> send_counts(static_cast<std::size_t>(nranks),
                                       GlobalIndex{0});
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& p = plan.ranks_[static_cast<std::size_t>(r)];
    mat_sends_all.push_back(&p.mat_sends);
    rhs_sends_all.push_back(&p.rhs_sends);
    send_counts[static_cast<std::size_t>(r)] =
        GlobalIndex{systems[static_cast<std::size_t>(r)].shared->nnz()};
  }
  (void)rt.allreduce_sum(send_counts);
  for (RankId r{0}; r.value() < nranks; ++r) {
    auto& p = plan.ranks_[static_cast<std::size_t>(r)];
    p.mat_recvs = recv_runs(r, mat_sends_all);
    p.rhs_recvs = recv_runs(r, rhs_sends_all);
    p.n_recv = p.mat_recvs.empty() ? 0 : p.mat_recvs.back().end;
    p.rhs_n_recv = p.rhs_recvs.empty() ? 0 : p.rhs_recvs.back().end;
  }

  // Per-rank structural pass (the expensive half a cold assembly pays
  // every iteration): stack the pattern keys, sort once, freeze the
  // permutation / segments / destinations, split the unique pattern.
  auto& tracer = rt.tracer();
  rt.parallel_for_ranks([&](RankId r) {
    auto& p = plan.ranks_[static_cast<std::size_t>(r)];
    const auto& own = *systems[static_cast<std::size_t>(r)].owned;

    // Stacked keys: owned triples first, then receives in slice order
    // (ascending src), mirroring Algorithm 1's stacking.
    std::vector<GlobalIndex> krow;
    std::vector<GlobalIndex> kcol;
    krow.reserve(p.n_own + p.n_recv);
    kcol.reserve(p.n_own + p.n_recv);
    krow.insert(krow.end(), own.rows.begin(), own.rows.end());
    kcol.insert(kcol.end(), own.cols.begin(), own.cols.end());
    for (const auto& rv : p.mat_recvs) {
      const auto& src_sh = *systems[static_cast<std::size_t>(rv.peer)].shared;
      const Slice* s =
          find_send(plan.ranks_[static_cast<std::size_t>(rv.peer)].mat_sends, r);
      EXW_REQUIRE(s != nullptr, "receive slice without a matching send");
      krow.insert(krow.end(),
                  src_sh.rows.begin() + static_cast<std::ptrdiff_t>(s->begin),
                  src_sh.rows.begin() + static_cast<std::ptrdiff_t>(s->end));
      kcol.insert(kcol.end(),
                  src_sh.cols.begin() + static_cast<std::ptrdiff_t>(s->begin),
                  src_sh.cols.begin() + static_cast<std::ptrdiff_t>(s->end));
    }
    EXW_REQUIRE(krow.size() == p.n_own + p.n_recv,
                "stacked key count mismatch");

    // Freeze stable_sort_by_key + reduce_by_key as permutation + segments.
    p.mat_fill.perm = sparse::prim::sort_permutation2(krow, kcol);
    p.mat_fill.seg_ptr = sparse::prim::segment_pointers(
        p.mat_fill.perm, [&](std::size_t a, std::size_t b) {
          return krow[a] == krow[b] && kcol[a] == kcol[b];
        });
    charge_sort(tracer, r, krow.size(), kTripleBytes);

    // Unique assembled pattern (row-major sorted) and each entry's final
    // home. Destinations follow split_diag_offd's sequential fill order:
    // walking entries in sorted order, diag and offd positions are just
    // running counters within their block.
    const std::size_t nseg =
        p.mat_fill.seg_ptr.empty() ? 0 : p.mat_fill.seg_ptr.size() - 1;
    sparse::Coo pattern;
    pattern.reserve(nseg);
    p.mat_fill.dest.resize(nseg);
    const GlobalIndex col0 = cols.first_row(r);
    const GlobalIndex col1 = cols.end_row(r);
    std::int64_t dk = 0;
    std::int64_t ok = 0;
    for (std::size_t s = 0; s < nseg; ++s) {
      const std::size_t slot = p.mat_fill.perm[p.mat_fill.seg_ptr[s]];
      pattern.push(krow[slot], kcol[slot], 0.0);
      if (kcol[slot] >= col0 && kcol[slot] < col1) {
        p.mat_fill.dest[s] = dk;
        ++dk;
      } else {
        p.mat_fill.dest[s] = -ok - 1;
        ++ok;
      }
    }
    charge_stream(tracer, r, krow.size(), kTripleBytes);
    plan.structure_[static_cast<std::size_t>(r)] =
        split_diag_offd(pattern, rows, cols, r);
    charge_stream(tracer, r, pattern.nnz(), kTripleBytes);

    // RHS plan: Algorithm 2 sorts only the received entries.
    std::vector<GlobalIndex> rrow;
    rrow.reserve(p.rhs_n_recv);
    for (const auto& rv : p.rhs_recvs) {
      const auto& src_sh =
          *systems[static_cast<std::size_t>(rv.peer)].rhs_shared;
      const Slice* s =
          find_send(plan.ranks_[static_cast<std::size_t>(rv.peer)].rhs_sends, r);
      EXW_REQUIRE(s != nullptr, "RHS receive slice without a matching send");
      rrow.insert(rrow.end(),
                  src_sh.rows.begin() + static_cast<std::ptrdiff_t>(s->begin),
                  src_sh.rows.begin() + static_cast<std::ptrdiff_t>(s->end));
    }
    EXW_REQUIRE(rrow.size() == p.rhs_n_recv, "stacked RHS key count mismatch");
    p.rhs_fill.perm =
        sparse::prim::sort_permutation(rrow, std::less<GlobalIndex>{});
    p.rhs_fill.seg_ptr = sparse::prim::segment_pointers(
        p.rhs_fill.perm,
        [&](std::size_t a, std::size_t b) { return rrow[a] == rrow[b]; });
    charge_sort(tracer, r, rrow.size(), kPairBytes);
    const std::size_t nrseg =
        p.rhs_fill.seg_ptr.empty() ? 0 : p.rhs_fill.seg_ptr.size() - 1;
    p.rhs_fill.dest.resize(nrseg);
    for (std::size_t s = 0; s < nrseg; ++s) {
      const std::size_t slot = p.rhs_fill.perm[p.rhs_fill.seg_ptr[s]];
      p.rhs_fill.dest[s] = rows.to_local(r, rrow[slot]);
    }
    charge_stream(tracer, r, rrow.size(), kPairBytes);
  });
  return plan;
}

bool AssemblyPlan::matches(std::span<const SystemView> systems) const {
  if (systems.size() != ranks_.size()) return false;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const auto& p = ranks_[r];
    const auto& sv = systems[r];
    const std::size_t n_shared = p.mat_sends.empty() ? 0 : p.mat_sends.back().end;
    const std::size_t n_rhs_shared =
        p.rhs_sends.empty() ? 0 : p.rhs_sends.back().end;
    if (sv.owned == nullptr || sv.shared == nullptr ||
        sv.rhs_owned == nullptr || sv.rhs_shared == nullptr ||
        sv.owned->nnz() != p.n_own || sv.shared->nnz() != n_shared ||
        sv.rhs_owned->size() != p.rhs_n_own ||
        sv.rhs_shared->size() != n_rhs_shared) {
      return false;
    }
  }
  return true;
}

linalg::ParCsr AssemblyPlan::create_matrix(par::Runtime& rt) const {
  EXW_REQUIRE(valid(), "assembly plan not built");
  return linalg::ParCsr(rt, rows_, cols_, structure_);
}

linalg::ParVector AssemblyPlan::create_vector(par::Runtime& rt) const {
  EXW_REQUIRE(valid(), "assembly plan not built");
  return linalg::ParVector(rt, rows_);
}

EXW_WARM_FN
void AssemblyPlan::refill_matrix(par::Runtime& rt,
                                 std::span<const SystemView> systems,
                                 linalg::ParCsr& a) const {
  EXW_PURITY_REGION("assembly-refill-matrix");
  EXW_REQUIRE(valid(), "assembly plan not built");
  EXW_REQUIRE(systems.size() == ranks_.size(), "one system view per rank");
  auto& transport = rt.transport();
  auto& tracer = rt.tracer();

  // Pack + post value-only messages (structure frozen: one message per
  // neighbor pair; no row/col traffic, no counts allreduce).
  rt.parallel_for_ranks([&](RankId r) {
    const auto& p = ranks_[static_cast<std::size_t>(r)];
    const auto& sh = *systems[static_cast<std::size_t>(r)].shared;
    const std::size_t n_shared = p.mat_sends.empty() ? 0 : p.mat_sends.back().end;
    EXW_REQUIRE(sh.nnz() == n_shared,
                "assembly plan is stale: shared triple count changed");
    // The payload vector is the message being serialized — it belongs to
    // the simulated NIC, like the staging inside Transport::send itself.
    EXW_PURITY_ALLOW("simulated-NIC message serialization");
    for (const auto& s : p.mat_sends) {
      transport.send(
          r, s.peer, tags::kPlanMatVals,
          std::vector<Real>(sh.vals.begin() + static_cast<std::ptrdiff_t>(s.begin),
                            sh.vals.begin() + static_cast<std::ptrdiff_t>(s.end)));
      charge_stream(tracer, r, s.end - s.begin, sizeof(Real));
    }
  });

  // Stack owned + received values and segmented-sum them into place.
  rt.parallel_for_ranks([&](RankId r) {
    const auto& p = ranks_[static_cast<std::size_t>(r)];
    const auto& own = *systems[static_cast<std::size_t>(r)].owned;
    EXW_REQUIRE(own.nnz() == p.n_own,
                "assembly plan is stale: owned triple count changed");
    {
      EXW_PURITY_ALLOW("first-refill scratch priming");
      p.stacked.resize(p.n_own + p.n_recv);  // no-op after the first refill
    }
    std::copy(own.vals.begin(), own.vals.end(), p.stacked.begin());
    for (const auto& s : p.mat_recvs) {
      auto vals = transport.recv<Real>(r, s.peer, tags::kPlanMatVals);
      EXW_REQUIRE(vals.size() == s.end - s.begin,
                  "assembly plan is stale: received triple count changed");
      std::copy(vals.begin(), vals.end(),
                p.stacked.begin() + static_cast<std::ptrdiff_t>(p.n_own + s.begin));
    }
    charge_stream(tracer, r, p.stacked.size(), sizeof(Real));
    a.set_values_from_plan(r, p.mat_fill, p.stacked);
  });
}

EXW_WARM_FN
void AssemblyPlan::refill_vector(par::Runtime& rt,
                                 std::span<const SystemView> systems,
                                 linalg::ParVector& b) const {
  EXW_PURITY_REGION("assembly-refill-vector");
  EXW_REQUIRE(valid(), "assembly plan not built");
  EXW_REQUIRE(systems.size() == ranks_.size(), "one system view per rank");
  auto& transport = rt.transport();
  auto& tracer = rt.tracer();

  rt.parallel_for_ranks([&](RankId r) {
    const auto& p = ranks_[static_cast<std::size_t>(r)];
    const auto& sh = *systems[static_cast<std::size_t>(r)].rhs_shared;
    const std::size_t n_shared = p.rhs_sends.empty() ? 0 : p.rhs_sends.back().end;
    EXW_REQUIRE(sh.size() == n_shared,
                "assembly plan is stale: shared RHS count changed");
    EXW_PURITY_ALLOW("simulated-NIC message serialization");
    for (const auto& s : p.rhs_sends) {
      transport.send(
          r, s.peer, tags::kPlanRhsVals,
          std::vector<Real>(sh.vals.begin() + static_cast<std::ptrdiff_t>(s.begin),
                            sh.vals.begin() + static_cast<std::ptrdiff_t>(s.end)));
      charge_stream(tracer, r, s.end - s.begin, sizeof(Real));
    }
  });

  rt.parallel_for_ranks([&](RankId r) {
    const auto& p = ranks_[static_cast<std::size_t>(r)];
    const auto& own = *systems[static_cast<std::size_t>(r)].rhs_owned;
    EXW_REQUIRE(own.size() == p.rhs_n_own,
                "assembly plan is stale: owned RHS size changed");
    {
      EXW_PURITY_ALLOW("first-refill scratch priming");
      p.rhs_recv.resize(p.rhs_n_recv);  // no-op after the first refill
    }
    for (const auto& s : p.rhs_recvs) {
      auto vals = transport.recv<Real>(r, s.peer, tags::kPlanRhsVals);
      EXW_REQUIRE(vals.size() == s.end - s.begin,
                  "assembly plan is stale: received RHS count changed");
      std::copy(vals.begin(), vals.end(),
                p.rhs_recv.begin() + static_cast<std::ptrdiff_t>(s.begin));
    }
    b.set_values_from_plan(r, own, p.rhs_fill, p.rhs_recv);
  });
}

}  // namespace exw::assembly
