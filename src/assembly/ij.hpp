#pragma once
/// \file ij.hpp
/// hypre-shaped IJ assembly interface (paper §3.3).
///
/// The application injects assembled COO matrices through four calls and
/// finalizes with Assemble, exactly the six-call pattern of the paper:
///   HYPRE_IJMatrixSetValues2   -> IJMatrix::SetValues2   (owned rows)
///   HYPRE_IJMatrixAddToValues2 -> IJMatrix::AddToValues2 (off-rank rows)
///   HYPRE_IJMatrixAssemble     -> IJMatrix::Assemble     (Algorithm 1)
/// and the IJVector analogues (Algorithm 2).

#include <span>
#include <vector>

#include "assembly/global.hpp"

namespace exw::assembly {

class IJMatrix {
 public:
  IJMatrix(par::Runtime& rt, par::RowPartition rows, par::RowPartition cols);

  /// Set entries of rows owned by `rank` (duplicates summed at Assemble).
  void SetValues2(RankId rank, std::span<const GlobalIndex> rows,
                  std::span<const GlobalIndex> cols,
                  std::span<const Real> values);

  /// Add contributions to rows owned by *other* ranks.
  void AddToValues2(RankId rank, std::span<const GlobalIndex> rows,
                    std::span<const GlobalIndex> cols,
                    std::span<const Real> values);

  /// Run global assembly (Algorithm 1) and return the ParCSR matrix.
  /// Buffers are consumed.
  linalg::ParCsr Assemble(
      GlobalAssemblyAlgo algo = GlobalAssemblyAlgo::kSortReduce);

 private:
  par::Runtime* rt_;
  par::RowPartition rows_;
  par::RowPartition cols_;
  std::vector<sparse::Coo> owned_;
  std::vector<sparse::Coo> shared_;
};

class IJVector {
 public:
  IJVector(par::Runtime& rt, par::RowPartition rows);

  void SetValues2(RankId rank, std::span<const GlobalIndex> rows,
                  std::span<const Real> values);
  void AddToValues2(RankId rank, std::span<const GlobalIndex> rows,
                    std::span<const Real> values);

  /// Run global assembly (Algorithm 2) and return the ParVector.
  linalg::ParVector Assemble();

 private:
  par::Runtime* rt_;
  par::RowPartition rows_;
  std::vector<RealVector> owned_;
  std::vector<sparse::CooVector> shared_;
};

}  // namespace exw::assembly
