#pragma once
/// \file global.hpp
/// Stage 3: hypre-side global assembly (paper §3.3, Algorithms 1 and 2).
///
/// Each rank holds two sorted, duplicate-free COO sets: A_own (rows it
/// owns) and A_send (contributions to rows owned by others). Algorithm 1:
/// exchange A_send with the owners, stack [A_own, A_recv],
/// stable_sort_by_key, reduce_by_key, then split the result into the
/// diag/offd ParCSR blocks. Algorithm 2 is the vector analogue with the
/// key optimization the paper highlights: because n_recv << n_own, the
/// sort/reduce runs only over the *received* entries, which are then
/// scatter-added into the dense owned RHS.
///
/// The `kSparseAdd` variant reproduces the alternative the paper tried
/// (cuSPARSE sparse matrix addition): the received entries are normalized
/// separately and merged into the owned stream — little speed benefit,
/// smaller peak memory (§3.3).
///
/// Entry points take per-rank SystemViews (non-owning pointers into the
/// caller's stage-2 buffers) so callers never deep-copy COO sets just to
/// assemble them; the vector-based overloads are compatibility wrappers.

#include <span>
#include <vector>

#include "common/types.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"
#include "sparse/coo.hpp"

namespace exw::assembly {

enum class GlobalAssemblyAlgo {
  kSortReduce,  ///< Algorithm 1 as published (full stack + sort + reduce)
  kSparseAdd,   ///< normalize received set, merge-add into owned set
  kGeneral,     ///< hypre's general assembly path: same result, but with
                ///< the extra device allocations / data motion the paper's
                ///< baseline paid before the application-aware rewrite
};

/// Non-owning view of one rank's stage-2 output. Matrix assembly reads
/// {owned, shared}; vector assembly reads {rhs_owned, rhs_shared}; the
/// assembly-plan cache reads all four. Pointers must outlive the call —
/// they typically alias EquationGraph::rank(r)'s buffers directly.
struct SystemView {
  const sparse::Coo* owned = nullptr;         ///< rows owned by this rank
  const sparse::Coo* shared = nullptr;        ///< rows owned by others
  const RealVector* rhs_owned = nullptr;      ///< dense over local rows
  const sparse::CooVector* rhs_shared = nullptr;  ///< off-rank RHS adds
};

/// Assemble the distributed matrix from per-rank COO contributions.
/// `systems[r].owned` must contain only rows owned by rank r (sorted,
/// unique); `systems[r].shared` only rows owned by other ranks. Both
/// conditions are what stages 1-2 guarantee.
linalg::ParCsr assemble_matrix(par::Runtime& rt,
                               const par::RowPartition& rows,
                               const par::RowPartition& cols,
                               std::span<const SystemView> systems,
                               GlobalAssemblyAlgo algo = GlobalAssemblyAlgo::kSortReduce);

/// Assemble the distributed RHS (Algorithm 2) from
/// `systems[r].rhs_owned` / `systems[r].rhs_shared`.
linalg::ParVector assemble_vector(par::Runtime& rt,
                                  const par::RowPartition& rows,
                                  std::span<const SystemView> systems,
                                  GlobalAssemblyAlgo algo = GlobalAssemblyAlgo::kSortReduce);

/// Compatibility wrapper over the SystemView overload.
linalg::ParCsr assemble_matrix(par::Runtime& rt,
                               const par::RowPartition& rows,
                               const par::RowPartition& cols,
                               const std::vector<sparse::Coo>& owned,
                               const std::vector<sparse::Coo>& shared,
                               GlobalAssemblyAlgo algo = GlobalAssemblyAlgo::kSortReduce);

/// Compatibility wrapper over the SystemView overload.
linalg::ParVector assemble_vector(par::Runtime& rt,
                                  const par::RowPartition& rows,
                                  const std::vector<RealVector>& owned,
                                  const std::vector<sparse::CooVector>& shared,
                                  GlobalAssemblyAlgo algo = GlobalAssemblyAlgo::kSortReduce);

/// Build per-rank diag/offd blocks from one rank's final sorted unique
/// COO rows (exposed for reuse by the distributed Galerkin product).
linalg::RankBlock split_diag_offd(const sparse::Coo& coo,
                                  const par::RowPartition& rows,
                                  const par::RowPartition& cols, RankId r);

}  // namespace exw::assembly
