#pragma once
/// \file global.hpp
/// Stage 3: hypre-side global assembly (paper §3.3, Algorithms 1 and 2).
///
/// Each rank holds two sorted, duplicate-free COO sets: A_own (rows it
/// owns) and A_send (contributions to rows owned by others). Algorithm 1:
/// exchange A_send with the owners, stack [A_own, A_recv],
/// stable_sort_by_key, reduce_by_key, then split the result into the
/// diag/offd ParCSR blocks. Algorithm 2 is the vector analogue with the
/// key optimization the paper highlights: because n_recv << n_own, the
/// sort/reduce runs only over the *received* entries, which are then
/// scatter-added into the dense owned RHS.
///
/// The `kSparseAdd` variant reproduces the alternative the paper tried
/// (cuSPARSE sparse matrix addition): the received entries are normalized
/// separately and merged into the owned stream — little speed benefit,
/// smaller peak memory (§3.3).

#include <vector>

#include "common/types.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"
#include "sparse/coo.hpp"

namespace exw::assembly {

enum class GlobalAssemblyAlgo {
  kSortReduce,  ///< Algorithm 1 as published (full stack + sort + reduce)
  kSparseAdd,   ///< normalize received set, merge-add into owned set
  kGeneral,     ///< hypre's general assembly path: same result, but with
                ///< the extra device allocations / data motion the paper's
                ///< baseline paid before the application-aware rewrite
};

/// Assemble the distributed matrix from per-rank COO contributions.
/// `owned[r]` must contain only rows owned by rank r (sorted, unique);
/// `shared[r]` only rows owned by other ranks. Both conditions are what
/// stages 1-2 guarantee.
linalg::ParCsr assemble_matrix(par::Runtime& rt,
                               const par::RowPartition& rows,
                               const par::RowPartition& cols,
                               const std::vector<sparse::Coo>& owned,
                               const std::vector<sparse::Coo>& shared,
                               GlobalAssemblyAlgo algo = GlobalAssemblyAlgo::kSortReduce);

/// Assemble the distributed RHS (Algorithm 2). `owned[r]` is dense over
/// rank r's rows; `shared[r]` holds off-rank contributions.
linalg::ParVector assemble_vector(par::Runtime& rt,
                                  const par::RowPartition& rows,
                                  const std::vector<RealVector>& owned,
                                  const std::vector<sparse::CooVector>& shared,
                                  GlobalAssemblyAlgo algo = GlobalAssemblyAlgo::kSortReduce);

/// Build per-rank diag/offd blocks from one rank's final sorted unique
/// COO rows (exposed for reuse by the distributed Galerkin product).
linalg::RankBlock split_diag_offd(const sparse::Coo& coo,
                                  const par::RowPartition& rows,
                                  const par::RowPartition& cols, RankId r);

}  // namespace exw::assembly
