#include "assembly/layout.hpp"

#include "common/error.hpp"
#include "linalg/multivector.hpp"
#include "linalg/parvector.hpp"
#include "part/graph_partition.hpp"
#include "part/rcb.hpp"

namespace exw::assembly {

void field_to_rows(const MeshLayout& layout, const RealVector& field,
                   linalg::ParVector& x) {
  EXW_REQUIRE(field.size() == layout.numbering.old_to_new.size(),
              "field size does not match layout node count");
  for (std::size_t i = 0; i < field.size(); ++i) {
    x.at(layout.row_of(checked_narrow<GlobalIndex>(i))) = field[i];
  }
}

void rows_to_field(const MeshLayout& layout, const linalg::ParVector& x,
                   RealVector& field) {
  EXW_REQUIRE(field.size() == layout.numbering.old_to_new.size(),
              "field size does not match layout node count");
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = x.at(layout.row_of(checked_narrow<GlobalIndex>(i)));
  }
}

void field_to_lane(const MeshLayout& layout, const RealVector& field,
                   linalg::ParMultiVector& x, std::size_t lane) {
  EXW_REQUIRE(field.size() == layout.numbering.old_to_new.size(),
              "field size does not match layout node count");
  for (std::size_t i = 0; i < field.size(); ++i) {
    x.at(lane, layout.row_of(checked_narrow<GlobalIndex>(i))) = field[i];
  }
}

void lane_to_field(const MeshLayout& layout, const linalg::ParMultiVector& x,
                   std::size_t lane, RealVector& field) {
  EXW_REQUIRE(field.size() == layout.numbering.old_to_new.size(),
              "field size does not match layout node count");
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = x.at(lane, layout.row_of(checked_narrow<GlobalIndex>(i)));
  }
}

MeshLayout make_layout_from_parts(const mesh::MeshDB& db,
                                  std::vector<RankId> parts, int nranks) {
  MeshLayout layout;
  layout.nranks = nranks;
  layout.node_rank = std::move(parts);
  layout.numbering = part::make_numbering(layout.node_rank, nranks);
  layout.edge_rank.resize(static_cast<std::size_t>(db.num_edges()));
  // An edge is evaluated by the owner of its lower-numbered endpoint (in
  // the new numbering), mirroring element-ownership in Nalu-Wind: most
  // contributions are local, cut edges produce shared rows.
  for (std::size_t e = 0; e < layout.edge_rank.size(); ++e) {
    const auto& edge = db.edges[e];
    const GlobalIndex ra = layout.row_of(edge.a);
    const GlobalIndex rb = layout.row_of(edge.b);
    layout.edge_rank[e] =
        layout.numbering.rows.rank_of(std::min(ra, rb));
  }
  return layout;
}

MeshLayout make_layout(const mesh::MeshDB& db, int nranks,
                       PartitionMethod method, std::uint64_t seed) {
  EXW_REQUIRE(db.num_nodes().value() >= nranks, "more ranks than mesh nodes");
  // Node weight = expected matrix row size: diagonal + neighbors for
  // live rows, 1 for rows the discretization reduces to identity
  // (boundary / fringe / hole). The graph partitioner balances this —
  // the paper's Fig. 5 objective — while RCB, like the original
  // Nalu-Wind decomposition, balances plain node counts and is blind to
  // the row-size variation (the source of its 10x nnz spread).
  std::vector<double> vwgt(static_cast<std::size_t>(db.num_nodes()), 1.0);
  for (const auto& e : db.edges) {
    vwgt[static_cast<std::size_t>(e.a)] += 1.0;
    vwgt[static_cast<std::size_t>(e.b)] += 1.0;
  }
  // Identity rows of the dominant (pressure) system: outflow, overset
  // fringe, and hole nodes. Inflow/symmetry/wall rows are Dirichlet only
  // for momentum — the pressure system keeps their full stencils, so
  // they must carry full weight.
  for (std::size_t i = 0; i < vwgt.size(); ++i) {
    const auto role = db.roles[i];
    if (role == mesh::NodeRole::kOutflow || role == mesh::NodeRole::kFringe ||
        role == mesh::NodeRole::kHole) {
      vwgt[i] = 1.0;
    }
  }
  std::vector<RankId> parts;
  if (method == PartitionMethod::kRcb) {
    parts = part::rcb_partition(db.coords, {}, nranks);
  } else {
    std::vector<LocalIndex> ei(db.edges.size()), ej(db.edges.size());
    for (std::size_t e = 0; e < db.edges.size(); ++e) {
      ei[e] = checked_narrow<LocalIndex>(db.edges[e].a);
      ej[e] = checked_narrow<LocalIndex>(db.edges[e].b);
    }
    part::Graph g = part::graph_from_edges(
        checked_narrow<LocalIndex>(db.num_nodes()), ei, ej, vwgt);
    part::GraphPartOptions opts;
    opts.seed = seed;
    parts = part::graph_partition(g, nranks, opts);
  }
  return make_layout_from_parts(db, std::move(parts), nranks);
}

}  // namespace exw::assembly
