#pragma once
/// \file charges.hpp
/// Cost-model charges shared by the stage-3 assembly paths (cold
/// Algorithm 1/2 in global.cpp, warm plan refills in plan.cpp). Kept in
/// one place so the bench/CI invariant "a warm refill charges streaming
/// passes only, never a sort" is auditable: plan.cpp must not include a
/// charge_sort call.

#include <cstddef>

#include "common/types.hpp"
#include "perf/tracer.hpp"

namespace exw::assembly::detail {

/// Bytes per COO triple / RHS pair moved by the assembly kernels.
inline constexpr double kTripleBytes = sizeof(GlobalIndex) * 2.0 + sizeof(Real);
inline constexpr double kPairBytes = sizeof(GlobalIndex) + sizeof(Real);

/// Charge a device stable_sort_by_key of n keys with `width` payload
/// bytes. Modeled after a radix sort on 2x64-bit keys: 8 digit passes,
/// each a counting kernel + scatter kernel over the full payload, i.e.
/// far from a single streaming pass (matching the measured cost of
/// device tuple sorts, which the paper's assembly time is dominated by).
inline void charge_sort(perf::Tracer& tracer, RankId r, std::size_t n,
                        double width) {
  const auto dn = static_cast<double>(n);
  for (std::size_t pass = 0; pass < 8; ++pass) {
    tracer.kernel(r, 2.0 * dn, 2.0 * width * dn);
  }
}

/// Charge one streaming pass over n items of `width` bytes.
inline void charge_stream(perf::Tracer& tracer, RankId r, std::size_t n,
                          double width) {
  const auto dn = static_cast<double>(n);
  tracer.kernel(r, 2.0 * dn, 2.0 * width * dn);
}

}  // namespace exw::assembly::detail
