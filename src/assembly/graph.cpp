#include "assembly/graph.hpp"

#include <algorithm>
#include <atomic>

#include "common/error.hpp"
#include "par/thread_pool.hpp"

namespace exw::assembly {

void RankSystem::zero_values() {
  std::fill(owned.vals.begin(), owned.vals.end(), 0.0);
  std::fill(shared.vals.begin(), shared.vals.end(), 0.0);
  std::fill(rhs_owned.begin(), rhs_owned.end(), 0.0);
  std::fill(rhs_shared.vals.begin(), rhs_shared.vals.end(), 0.0);
}

namespace {
std::uint64_t next_graph_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace

EquationGraph::EquationGraph(const mesh::MeshDB& db, const MeshLayout& layout,
                             const std::vector<std::uint8_t>& dirichlet)
    : db_(&db), layout_(&layout), generation_(next_graph_generation()),
      dirichlet_(dirichlet) {
  EXW_REQUIRE(dirichlet_.size() == static_cast<std::size_t>(db.num_nodes()),
              "dirichlet mask size mismatch");
  ranks_.resize(static_cast<std::size_t>(layout.nranks));
  build_patterns();
  build_slots();
}

void EquationGraph::build_patterns() {
  const auto& rows = layout_->numbering.rows;
  const int nranks = layout_->nranks;

  // Collect the raw (row, col) pattern per rank; values zero.
  std::vector<sparse::Coo> raw_owned(static_cast<std::size_t>(nranks));
  std::vector<sparse::Coo> raw_shared(static_cast<std::size_t>(nranks));
  std::vector<sparse::CooVector> raw_rhs_shared(static_cast<std::size_t>(nranks));

  auto add_pattern = [&](RankId r, GlobalIndex row, GlobalIndex col) {
    if (rows.owns(r, row)) {
      raw_owned[static_cast<std::size_t>(r)].push(row, col, 0.0);
    } else {
      raw_shared[static_cast<std::size_t>(r)].push(row, col, 0.0);
      raw_rhs_shared[static_cast<std::size_t>(r)].push(row, 0.0);
    }
  };

  // Every node contributes its diagonal on its owner (time term or the
  // identity of a Dirichlet row).
  for (GlobalIndex n{0}; n < db_->num_nodes(); ++n) {
    const GlobalIndex row = layout_->row_of(n);
    const RankId r = layout_->node_rank[static_cast<std::size_t>(n)];
    raw_owned[static_cast<std::size_t>(r)].push(row, row, 0.0);
  }
  // Edge stencils; Dirichlet rows receive nothing off-diagonal.
  for (std::size_t e = 0; e < db_->edges.size(); ++e) {
    const auto& edge = db_->edges[e];
    const RankId r = layout_->edge_rank[e];
    const GlobalIndex ra = layout_->row_of(edge.a);
    const GlobalIndex rb = layout_->row_of(edge.b);
    if (!row_is_dirichlet(edge.a)) {
      add_pattern(r, ra, ra);
      add_pattern(r, ra, rb);
    }
    if (!row_is_dirichlet(edge.b)) {
      add_pattern(r, rb, rb);
      add_pattern(r, rb, ra);
    }
  }

  owned_row_start_.resize(static_cast<std::size_t>(nranks));
  shared_rows_.resize(static_cast<std::size_t>(nranks));
  shared_row_start_.resize(static_cast<std::size_t>(nranks));
  // Per-rank normalize/sort + offset build: each body touches only its
  // own rank's containers (EquationGraph has no Runtime, so this goes
  // through the shared pool directly).
  par::parallel_for(nranks, [&](int r) {
    RankSystem& sys = ranks_[static_cast<std::size_t>(r)];
    sys.owned = std::move(raw_owned[static_cast<std::size_t>(r)]);
    sys.shared = std::move(raw_shared[static_cast<std::size_t>(r)]);
    sys.owned.normalize();
    sys.shared.normalize();
    sys.rhs_owned.assign(static_cast<std::size_t>(rows.local_size(RankId{r})),
                         0.0);
    sys.rhs_shared = std::move(raw_rhs_shared[static_cast<std::size_t>(r)]);
    sys.rhs_shared.normalize();

    // Owned row offsets: owned rows are contiguous [first_row, end_row).
    auto& ors = owned_row_start_[static_cast<std::size_t>(r)];
    ors.assign(static_cast<std::size_t>(rows.local_size(RankId{r})) + 1, 0);
    for (GlobalIndex row : sys.owned.rows) {
      ors[static_cast<std::size_t>(row - rows.first_row(RankId{r})) + 1] += 1;
    }
    for (std::size_t i = 1; i < ors.size(); ++i) {
      ors[i] += ors[i - 1];
    }
    // Shared row directory.
    auto& srows = shared_rows_[static_cast<std::size_t>(r)];
    auto& sstart = shared_row_start_[static_cast<std::size_t>(r)];
    srows.clear();
    sstart.clear();
    for (std::size_t k = 0; k < sys.shared.nnz(); ++k) {
      if (srows.empty() || srows.back() != sys.shared.rows[k]) {
        srows.push_back(sys.shared.rows[k]);
        sstart.push_back(k);
      }
    }
    sstart.push_back(sys.shared.nnz());
  });
}

void EquationGraph::build_slots() {
  const auto& rows = layout_->numbering.rows;
  node_slots_.resize(static_cast<std::size_t>(db_->num_nodes()));
  for (GlobalIndex n{0}; n < db_->num_nodes(); ++n) {
    const RankId r = layout_->node_rank[static_cast<std::size_t>(n)];
    const GlobalIndex row = layout_->row_of(n);
    NodeSlots& s = node_slots_[static_cast<std::size_t>(n)];
    s.rank = r;
    s.diag = locate_matrix(r, row, row);
    s.rhs = (row - rows.first_row(r)).value();
  }
  edge_slots_.resize(db_->edges.size());
  for (std::size_t e = 0; e < db_->edges.size(); ++e) {
    const auto& edge = db_->edges[e];
    const RankId r = layout_->edge_rank[e];
    const GlobalIndex ra = layout_->row_of(edge.a);
    const GlobalIndex rb = layout_->row_of(edge.b);
    EdgeSlots& s = edge_slots_[e];
    s.rank = r;
    if (!row_is_dirichlet(edge.a)) {
      s.aa = locate_matrix(r, ra, ra);
      s.ab = locate_matrix(r, ra, rb);
      s.rhs_a = locate_rhs(r, ra);
    }
    if (!row_is_dirichlet(edge.b)) {
      s.bb = locate_matrix(r, rb, rb);
      s.ba = locate_matrix(r, rb, ra);
      s.rhs_b = locate_rhs(r, rb);
    }
  }
}

Slot EquationGraph::locate_matrix(RankId r, GlobalIndex row,
                                  GlobalIndex col) const {
  const auto& rows = layout_->numbering.rows;
  const RankSystem& sys = ranks_[static_cast<std::size_t>(r)];
  if (rows.owns(r, row)) {
    const auto& ors = owned_row_start_[static_cast<std::size_t>(r)];
    const auto lr = static_cast<std::size_t>(row - rows.first_row(r));
    // Binary search for the column within the row (§3.2's binary-search
    // write-location strategy; rows are short so this is also the linear
    // regime).
    const auto b = sys.owned.cols.begin() + static_cast<std::ptrdiff_t>(ors[lr]);
    const auto e = sys.owned.cols.begin() + static_cast<std::ptrdiff_t>(ors[lr + 1]);
    const auto it = std::lower_bound(b, e, col);
    EXW_REQUIRE(it != e && *it == col, "pattern entry missing (owned)");
    return static_cast<Slot>(it - sys.owned.cols.begin());
  }
  const auto& srows = shared_rows_[static_cast<std::size_t>(r)];
  const auto& sstart = shared_row_start_[static_cast<std::size_t>(r)];
  const auto rit = std::lower_bound(srows.begin(), srows.end(), row);
  EXW_REQUIRE(rit != srows.end() && *rit == row, "pattern row missing (shared)");
  const auto ri = static_cast<std::size_t>(rit - srows.begin());
  const auto b = sys.shared.cols.begin() + static_cast<std::ptrdiff_t>(sstart[ri]);
  const auto e = sys.shared.cols.begin() + static_cast<std::ptrdiff_t>(sstart[ri + 1]);
  const auto it = std::lower_bound(b, e, col);
  EXW_REQUIRE(it != e && *it == col, "pattern entry missing (shared)");
  return encode_shared(static_cast<std::size_t>(it - sys.shared.cols.begin()));
}

Slot EquationGraph::locate_rhs(RankId r, GlobalIndex row) const {
  const auto& rows = layout_->numbering.rows;
  if (rows.owns(r, row)) {
    return (row - rows.first_row(r)).value();
  }
  const RankSystem& sys = ranks_[static_cast<std::size_t>(r)];
  const auto it = std::lower_bound(sys.rhs_shared.rows.begin(),
                                   sys.rhs_shared.rows.end(), row);
  EXW_REQUIRE(it != sys.rhs_shared.rows.end() && *it == row,
              "rhs pattern row missing");
  return encode_shared(
      static_cast<std::size_t>(it - sys.rhs_shared.rows.begin()));
}

void EquationGraph::zero_values() {
  for (auto& sys : ranks_) {
    sys.zero_values();
  }
}

void EquationGraph::apply(RankId r, Slot slot, Real v, bool atomic) {
  RankSystem& sys = ranks_[static_cast<std::size_t>(r)];
  Real& target = slot >= 0
                     ? sys.owned.vals[static_cast<std::size_t>(slot)]
                     : sys.shared.vals[static_cast<std::size_t>(-slot - 1)];
  if (atomic) {
    std::atomic_ref<Real>(target).fetch_add(v, std::memory_order_relaxed);
  } else {
    target += v;
  }
}

void EquationGraph::apply_rhs(RankId r, Slot slot, Real v, bool atomic) {
  RankSystem& sys = ranks_[static_cast<std::size_t>(r)];
  Real& target = slot >= 0
                     ? sys.rhs_owned[static_cast<std::size_t>(slot)]
                     : sys.rhs_shared.vals[static_cast<std::size_t>(-slot - 1)];
  if (atomic) {
    std::atomic_ref<Real>(target).fetch_add(v, std::memory_order_relaxed);
  } else {
    target += v;
  }
}

void EquationGraph::add_edge(std::size_t edge_id, const std::array<Real, 4>& m,
                             const std::array<Real, 2>& rhs, bool atomic) {
  const EdgeSlots& s = edge_slots_[edge_id];
  if (s.aa != kNoSlot) {
    apply(s.rank, s.aa, m[0], atomic);
    apply(s.rank, s.ab, m[1], atomic);
    apply_rhs(s.rank, s.rhs_a, rhs[0], atomic);
  }
  if (s.bb != kNoSlot) {
    apply(s.rank, s.ba, m[2], atomic);
    apply(s.rank, s.bb, m[3], atomic);
    apply_rhs(s.rank, s.rhs_b, rhs[1], atomic);
  }
}

void EquationGraph::add_node(GlobalIndex node, Real diag, Real rhs,
                             bool atomic) {
  const NodeSlots& s = node_slots_[static_cast<std::size_t>(node)];
  apply(s.rank, s.diag, diag, atomic);
  apply_rhs(s.rank, s.rhs, rhs, atomic);
}

void EquationGraph::zero_rhs() {
  for (auto& sys : ranks_) {
    std::fill(sys.rhs_owned.begin(), sys.rhs_owned.end(), 0.0);
    std::fill(sys.rhs_shared.vals.begin(), sys.rhs_shared.vals.end(), 0.0);
  }
}

void EquationGraph::add_edge_rhs(std::size_t edge_id,
                                 const std::array<Real, 2>& rhs, bool atomic) {
  const EdgeSlots& s = edge_slots_[edge_id];
  if (s.rhs_a != kNoSlot) {
    apply_rhs(s.rank, s.rhs_a, rhs[0], atomic);
  }
  if (s.rhs_b != kNoSlot) {
    apply_rhs(s.rank, s.rhs_b, rhs[1], atomic);
  }
}

void EquationGraph::add_node_rhs(GlobalIndex node, Real rhs, bool atomic) {
  const NodeSlots& s = node_slots_[static_cast<std::size_t>(node)];
  apply_rhs(s.rank, s.rhs, rhs, atomic);
}

std::vector<double> EquationGraph::pattern_nnz_per_rank() const {
  std::vector<double> out(ranks_.size());
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    out[r] = static_cast<double>(ranks_[r].owned.nnz() + ranks_[r].shared.nnz());
  }
  return out;
}

}  // namespace exw::assembly
