#pragma once
/// \file error.hpp
/// Error handling: checked preconditions that throw exw::Error.
///
/// Following the CppCoreGuidelines we use exceptions (via RAII-safe code)
/// rather than abort() so that tests can assert on failure paths.

#include <stdexcept>
#include <string>

namespace exw {

/// Exception type thrown by all EXW_REQUIRE / EXW_THROW failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
}  // namespace detail

}  // namespace exw

/// Throw exw::Error with file/line context.
#define EXW_THROW(msg) ::exw::detail::throw_error(__FILE__, __LINE__, (msg))

/// Precondition check, active in all build types (cheap checks only).
#define EXW_REQUIRE(cond, msg)                          \
  do {                                                  \
    if (!(cond)) {                                      \
      EXW_THROW(std::string("requirement failed: ") +   \
                #cond + " — " + (msg));                 \
    }                                                   \
  } while (0)

/// Debug-only assertion for hot paths.
#ifdef NDEBUG
#define EXW_ASSERT(cond) ((void)0)
#else
#define EXW_ASSERT(cond)                                   \
  do {                                                     \
    if (!(cond)) {                                         \
      EXW_THROW(std::string("assertion failed: ") + #cond); \
    }                                                      \
  } while (0)
#endif
