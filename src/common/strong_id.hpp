#pragma once
/// \file strong_id.hpp
/// Compile-time index-safety layer: strong index types.
///
/// The code shuttles indices between three spaces — 64-bit global DoF ids,
/// 32-bit rank-local ids, and rank ids — plus 64-bit CSR entry offsets.
/// With bare integer aliases the compiler accepts every mix-up and every
/// silent int64->int32 narrowing (hypre's mixed-int HYPRE_BigInt builds are
/// a notorious source of exactly this bug class). StrongId<Tag, Rep> makes
/// each space a distinct type:
///
///   * construction from raw integers is explicit (never implicit);
///   * there is NO conversion between different id types, implicit or
///     explicit — the single audited gateway is exw::checked_narrow<To>();
///   * arithmetic exists only where meaningful: same-type +/- (an index
///     difference is a distance in the same space) and +/- a raw integral
///     count; no cross-type arithmetic, no multiplication;
///   * comparisons are same-type only;
///   * subscripting a container that is indexed by one space with an id
///     from another space is a compile error via IndexedSpan<Id, T>.
///
/// The only sanctioned exits back to raw integers are `value()` (named,
/// greppable) and an explicit conversion to std::size_t so that
/// `static_cast<std::size_t>(id)` subscripts of plain vectors keep working.
///
/// checked_narrow validates range and sentinel (-1 / any negative) and
/// throws exw::Error; when EXW_INDEX_CHECKS=OFF (CMake option, default ON
/// except in Release) it compiles to a bare cast with zero overhead.

#include <compare>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

#ifndef EXW_INDEX_CHECKS_ENABLED
#define EXW_INDEX_CHECKS_ENABLED 0
#endif

namespace exw {

template <class Tag, class Rep>
class StrongId {
  static_assert(std::is_integral_v<Rep> && std::is_signed_v<Rep>,
                "index spaces use signed reps so -1 can flag invalid");

 public:
  using tag_type = Tag;
  using rep_type = Rep;

  /// Zero-initialized (a valid first index, matching the old aliases).
  constexpr StrongId() = default;

  /// Explicit construction from a raw integer. Unchecked by design: this
  /// is for literals and values already validated by the caller. Narrowing
  /// from another *index space* must go through checked_narrow (and cannot
  /// compile through this constructor: other StrongIds are not integral).
  template <std::integral I>
  explicit constexpr StrongId(I v) : v_(static_cast<Rep>(v)) {}

  /// Named exit to the raw representation (greppable escape hatch).
  [[nodiscard]] constexpr Rep value() const { return v_; }

  /// Explicit subscript conversion: static_cast<std::size_t>(id) for
  /// indexing plain std::vector storage. Negative ids wrap to huge values,
  /// exactly like the pre-StrongId code; IndexedSpan is the checked path.
  explicit constexpr operator std::size_t() const {
    return static_cast<std::size_t>(v_);
  }

  // --- comparisons: same-type only --------------------------------------
  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  // --- arithmetic: same-type distances and raw integral counts ----------
  constexpr StrongId& operator++() {
    ++v_;
    return *this;
  }
  constexpr StrongId operator++(int) {
    StrongId t{*this};
    ++v_;
    return t;
  }
  constexpr StrongId& operator--() {
    --v_;
    return *this;
  }
  constexpr StrongId operator--(int) {
    StrongId t{*this};
    --v_;
    return t;
  }

  friend constexpr StrongId operator+(StrongId a, StrongId b) {
    return StrongId{a.v_ + b.v_};
  }
  friend constexpr StrongId operator-(StrongId a, StrongId b) {
    return StrongId{a.v_ - b.v_};
  }
  template <std::integral I>
  friend constexpr StrongId operator+(StrongId a, I b) {
    return StrongId{a.v_ + static_cast<Rep>(b)};
  }
  template <std::integral I>
  friend constexpr StrongId operator+(I a, StrongId b) {
    return StrongId{static_cast<Rep>(a) + b.v_};
  }
  template <std::integral I>
  friend constexpr StrongId operator-(StrongId a, I b) {
    return StrongId{a.v_ - static_cast<Rep>(b)};
  }
  template <std::integral I>
  friend constexpr StrongId operator-(I a, StrongId b) {
    return StrongId{static_cast<Rep>(a) - b.v_};
  }

  constexpr StrongId& operator+=(StrongId o) {
    v_ += o.v_;
    return *this;
  }
  constexpr StrongId& operator-=(StrongId o) {
    v_ -= o.v_;
    return *this;
  }
  template <std::integral I>
  constexpr StrongId& operator+=(I o) {
    v_ += static_cast<Rep>(o);
    return *this;
  }
  template <std::integral I>
  constexpr StrongId& operator-=(I o) {
    v_ -= static_cast<Rep>(o);
    return *this;
  }

 private:
  Rep v_{0};
};

template <class T>
inline constexpr bool is_strong_id_v = false;
template <class Tag, class Rep>
inline constexpr bool is_strong_id_v<StrongId<Tag, Rep>> = true;

template <class Tag, class Rep>
std::string to_string(StrongId<Tag, Rep> id) {
  return std::to_string(id.value());
}

template <class Tag, class Rep>
std::ostream& operator<<(std::ostream& os, StrongId<Tag, Rep> id) {
  return os << id.value();
}

namespace detail {

template <class T>
struct rep_of {
  using type = T;
};
template <class Tag, class Rep>
struct rep_of<StrongId<Tag, Rep>> {
  using type = Rep;
};
template <class T>
using rep_of_t = typename rep_of<T>::type;

template <class T>
constexpr rep_of_t<T> raw_value(T v) {
  if constexpr (is_strong_id_v<T>) {
    return v.value();
  } else {
    static_assert(std::is_integral_v<T>,
                  "checked_narrow takes a StrongId or a raw integer");
    return v;
  }
}

[[noreturn]] void throw_narrow_error(long long value, int to_bits);

}  // namespace detail

/// The single audited gateway between index spaces and widths.
///
/// Converts `from` (a StrongId or raw integer) to `To` (a StrongId or raw
/// integer), throwing exw::Error when the value is negative — which
/// rejects the kInvalid* sentinels (-1): an invalid id must never be
/// narrowed into another space — or does not fit `To`'s representation.
/// With EXW_INDEX_CHECKS=OFF this is exactly one bare cast.
template <class To, class From>
inline To checked_narrow(From from) {
  const auto raw = detail::raw_value(from);
#if EXW_INDEX_CHECKS_ENABLED
  using ToRep = detail::rep_of_t<To>;
  bool ok = std::in_range<ToRep>(raw);
  if constexpr (std::is_signed_v<decltype(raw)>) {
    ok = ok && raw >= 0;
  }
  if (!ok) {
    detail::throw_narrow_error(static_cast<long long>(raw),
                               static_cast<int>(sizeof(ToRep) * 8));
  }
#endif
  return static_cast<To>(raw);
}

/// A span whose subscript operator accepts exactly one index space.
///
/// Containers indexed by local rows take IndexedSpan<LocalIndex, T>,
/// CSR entry storage takes IndexedSpan<EntryOffset, T>, and so on; passing
/// an id from any other space — or a raw integer — is a compile error.
template <class Id, class T>
class IndexedSpan {
  static_assert(is_strong_id_v<Id>, "IndexedSpan is indexed by a StrongId");

 public:
  using id_type = Id;
  using element_type = T;

  constexpr IndexedSpan() = default;
  constexpr IndexedSpan(std::span<T> s) : s_(s) {}  // NOLINT(*-explicit-*)
  template <class U = std::remove_const_t<T>>
    requires(!std::is_const_v<T>)
  constexpr IndexedSpan(std::vector<U>& v) : s_(v) {}  // NOLINT(*-explicit-*)
  template <class U = std::remove_const_t<T>>
    requires(std::is_const_v<T>)
  constexpr IndexedSpan(const std::vector<U>& v)  // NOLINT(*-explicit-*)
      : s_(v) {}

  constexpr T& operator[](Id i) const {
    return s_[static_cast<std::size_t>(i)];
  }
  /// Raw integers and foreign index spaces do not subscript this span.
  template <class U>
  T& operator[](U) const = delete;

  [[nodiscard]] constexpr std::size_t size() const { return s_.size(); }
  [[nodiscard]] constexpr bool empty() const { return s_.empty(); }
  constexpr T* data() const { return s_.data(); }
  constexpr auto begin() const { return s_.begin(); }
  constexpr auto end() const { return s_.end(); }
  constexpr T& front() const { return s_.front(); }
  constexpr T& back() const { return s_.back(); }

  /// Sanctioned exit to an unchecked span (for memcpy-style plumbing).
  [[nodiscard]] constexpr std::span<T> raw() const { return s_; }
  constexpr operator std::span<T>() const { return s_; }
  constexpr operator std::span<const T>() const
    requires(!std::is_const_v<T>)
  {
    return s_;
  }

 private:
  std::span<T> s_;
};

}  // namespace exw

template <class Tag, class Rep>
struct std::hash<exw::StrongId<Tag, Rep>> {
  std::size_t operator()(exw::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
