#pragma once
/// \file types.hpp
/// Fundamental scalar and index types used across the library.
///
/// Global indices address degrees of freedom (DoFs) in the assembled global
/// linear system; local indices address rows/entries owned by one simulated
/// MPI rank. We follow hypre's convention of signed index types so that -1
/// can flag "not found / not owned".

#include <cstdint>
#include <vector>

namespace exw {

/// Floating-point type for all field and matrix values.
using Real = double;

/// Global DoF / mesh-entity index (64-bit: the paper's refined mesh has
/// 634M nodes; a reproduction must not bake in 32-bit limits).
using GlobalIndex = std::int64_t;

/// Rank-local index.
using LocalIndex = std::int32_t;

/// Simulated MPI rank id.
using RankId = int;

/// Invalid-index sentinels.
inline constexpr GlobalIndex kInvalidGlobal = -1;
inline constexpr LocalIndex kInvalidLocal = -1;

/// Small geometric vector.
struct Vec3 {
  Real x{0}, y{0}, z{0};

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(Real s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Real dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  Real norm() const;
};

Real norm(const Vec3& v);

/// Convenience alias for dense value arrays.
using RealVector = std::vector<Real>;

}  // namespace exw
