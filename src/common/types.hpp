#pragma once
/// \file types.hpp
/// Fundamental scalar and index types used across the library.
///
/// Global indices address degrees of freedom (DoFs) in the assembled global
/// linear system; local indices address rows owned by one simulated MPI
/// rank; entry offsets address positions in CSR entry storage (row_ptr /
/// nnz space); rank ids address the simulated ranks themselves. We follow
/// hypre's convention of signed index types so that -1 can flag "not found
/// / not owned".
///
/// Each space is a distinct StrongId (see strong_id.hpp): mixing spaces or
/// silently narrowing int64 -> int32 is a compile error, and the single
/// audited runtime gateway between spaces is exw::checked_narrow<To>().

#include <cstdint>
#include <vector>

#include "common/strong_id.hpp"

namespace exw {

/// Floating-point type for all field and matrix values.
using Real = double;

/// Global DoF / mesh-entity index (64-bit: the paper's refined mesh has
/// 634M nodes; a reproduction must not bake in 32-bit limits).
using GlobalIndex = StrongId<struct GlobalIndexTag, std::int64_t>;

/// Rank-local row/column index (32-bit; per-rank shares stay < 2^31).
using LocalIndex = StrongId<struct LocalIndexTag, std::int32_t>;

/// Simulated MPI rank id.
using RankId = StrongId<struct RankIdTag, std::int32_t>;

/// Offset into CSR entry storage (row_ptr / nnz space). 64-bit: a rank's
/// nonzero *count* overflows 32 bits long before its row count does.
using EntryOffset = StrongId<struct EntryOffsetTag, std::int64_t>;

/// Invalid-index sentinels.
inline constexpr GlobalIndex kInvalidGlobal{-1};
inline constexpr LocalIndex kInvalidLocal{-1};

/// Small geometric vector.
struct Vec3 {
  Real x{0}, y{0}, z{0};

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(Real s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Real dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  Real norm() const;
};

Real norm(const Vec3& v);

/// Convenience alias for dense value arrays.
using RealVector = std::vector<Real>;

}  // namespace exw
