#pragma once
/// \file rng.hpp
/// Counter-based deterministic random numbers.
///
/// BoomerAMG's PMIS coarsening uses cuRAND to attach a random weight to
/// each DoF. For a reproduction that must give identical coarse grids
/// regardless of how the mesh is partitioned across simulated ranks, we
/// instead hash the *global* index: rank-count-invariant, reproducible,
/// and massively parallel in spirit (each value is independent).

#include <cstdint>

#include "common/types.hpp"

namespace exw {

/// SplitMix64 finalizer: a high-quality 64-bit mix.
constexpr std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) derived from (seed, counter).
constexpr double uniform01(std::uint64_t seed, std::uint64_t counter) {
  const std::uint64_t h = hash64(seed ^ hash64(counter));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Stateful convenience generator for tests and workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed) {}

  double uniform() { return uniform01(seed_, counter_++); }
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  std::uint64_t next_u64() { return hash64(seed_ ^ hash64(counter_++)); }
  /// Integer in [0, n).
  std::uint64_t index(std::uint64_t n) { return n == 0 ? 0 : next_u64() % n; }

 private:
  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
};

}  // namespace exw
