#include "common/error.hpp"

#include <cmath>

#include "common/types.hpp"

namespace exw {

Real Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }
Real norm(const Vec3& v) { return v.norm(); }

namespace detail {

void throw_error(const char* file, int line, const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

void throw_narrow_error(long long value, int to_bits) {
  throw Error("checked_narrow: value " + std::to_string(value) +
              " does not narrow to a " + std::to_string(to_bits) +
              "-bit index (negative/sentinel or overflow)");
}

}  // namespace detail
}  // namespace exw
