#include "common/error.hpp"

#include <cmath>

#include "common/types.hpp"

namespace exw {

Real Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }
Real norm(const Vec3& v) { return v.norm(); }

namespace detail {

void throw_error(const char* file, int line, const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}

}  // namespace detail
}  // namespace exw
