#pragma once
/// \file precision.hpp
/// The value-plane precision seam (DESIGN.md §16).
///
/// The simulated runtime computes everything in `Real` (double) host
/// arithmetic, but a container can be *tagged* FP32: its value arrays
/// then hold only FP32-representable doubles (every value has passed
/// through `demote_value`), every kernel charge prices its value stream
/// at 4 bytes/entry instead of 8, and halo payloads serialize as
/// `float`. This models what an FP32 preconditioner does to the memory
/// and network planes — the paper's §4 bandwidth wall — while keeping
/// the arithmetic bitwise deterministic and rank-count invariant:
/// loading a float and computing in double is exactly `double(float(v))`
/// on the stored value, which is what we store.
///
/// Numerical policy at the demote boundary (the OpenFOAM GPU
/// coupled-solver convention, Oliani et al., PAPERS.md):
///   * a finite double whose float conversion overflows to ±inf throws —
///     an FP32 preconditioner cannot represent that operator and the
///     caller must stay in FP64;
///   * results in the FP32 *subnormal* range flush to signed zero (FTZ),
///     matching GPU denormal-flush behavior so the model never banks on
///     precision real hardware drops;
///   * NaN/±inf inputs pass through unchanged — downstream guards own
///     those.

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/types.hpp"

namespace exw {

/// Storage precision of a value plane (indices are never demoted).
enum class Precision : std::uint8_t {
  kF64 = 0,  ///< full double storage (8 bytes/value)
  kF32 = 1,  ///< float storage (4 bytes/value), FP64 compute on load
};

/// Modeled bytes per stored value.
constexpr double bytes_of(Precision p) {
  return p == Precision::kF32 ? static_cast<double>(sizeof(float))
                              : static_cast<double>(sizeof(double));
}

constexpr const char* precision_name(Precision p) {
  return p == Precision::kF32 ? "f32" : "f64";
}

/// Round one double through FP32 storage: the value a float load would
/// produce. Finite values that overflow float range throw; subnormal
/// results flush to signed zero; NaN/inf pass through.
inline Real demote_value(Real v) {
  if (!std::isfinite(v)) {
    return v;
  }
  const float f = static_cast<float>(v);
  if (std::isinf(f)) {
    throw Error("fp32 demotion overflow: |value| exceeds float range");
  }
  if (f != 0.0F && std::fabs(f) < std::numeric_limits<float>::min()) {
    return std::signbit(f) ? -0.0 : 0.0;  // FTZ: flush subnormals
  }
  return static_cast<Real>(f);
}

/// FP32 -> FP64 promotion is exact; named for symmetry at call sites.
constexpr Real promote_value(Real v) { return v; }

/// Store `v` under precision `p`: rounds through FP32 when the target
/// storage is tagged kF32, the identity otherwise. Every charged store
/// into a tagged container goes through this, which is what makes the
/// "FP32 storage, FP64 compute" model self-consistent: loads are exact
/// promotions, float serialization of stored values is lossless.
inline Real store_value(Real v, Precision p) {
  return p == Precision::kF32 ? demote_value(v) : v;
}

/// Label one value-stream charge under the per-precision ledger
/// (Tracer::kernel_split_prec): adds `bytes` to the f32 or f64
/// accumulator according to `p`.
inline void split_value_bytes(Precision p, double bytes, double& f64,
                              double& f32) {
  (p == Precision::kF32 ? f32 : f64) += bytes;
}

}  // namespace exw
