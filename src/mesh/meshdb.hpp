#pragma once
/// \file meshdb.hpp
/// Unstructured hexahedral mesh database (the STK-mesh stand-in).
///
/// Nalu-Wind stores its computational mesh and fields in the Sierra
/// Toolkit (paper §2). This compact equivalent keeps what the solver
/// needs: node coordinates (reference + current, for rotor motion), hex
/// connectivity, the derived unique edge set with dual-face coefficients
/// for the edge-based finite-volume discretization, nodal control-volume
/// measures, and per-node roles (interior / boundary kinds / overset
/// fringe / overset hole).

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace exw::mesh {

/// What a node is to the discretization. Boundary and overset roles turn
/// the node's row into a Dirichlet-type row (paper §3.1: "boundary-
/// condition nodes, including periodic, Dirichlet, and overset DoFs are
/// accounted for precisely").
enum class NodeRole : std::uint8_t {
  kInterior,
  kInflow,    ///< Dirichlet velocity, Neumann pressure
  kOutflow,   ///< Neumann velocity, Dirichlet pressure
  kSymmetry,  ///< slip wall
  kWall,      ///< no-slip (blade surface)
  kFringe,    ///< overset receptor: value interpolated from donor mesh
  kHole,      ///< blanked by hole cutting: decoupled identity row
};

/// One edge of the dual FV graph: node pair, median-dual face area
/// vector (oriented a -> b), and the derived diffusive coupling.
struct Edge {
  GlobalIndex a{0};
  GlobalIndex b{0};
  /// Median-dual face area vector (sum over adjacent hexes of the quad
  /// spanned by edge midpoint, the two face centers, and the centroid).
  /// Oriented so that area.dot(x_b - x_a) >= 0. The dual faces of all
  /// edges around an interior node close exactly, which makes constant
  /// fields divergence-free on arbitrarily graded meshes.
  Vec3 area{};
  /// Diffusive coupling g_ab = |area|^2 / (area . dx) >= 0.
  Real coeff = 0;
};

class MeshDB {
 public:
  /// Node data.
  std::vector<Vec3> ref_coords;  ///< reference configuration
  std::vector<Vec3> coords;      ///< current (possibly rotated)
  std::vector<NodeRole> roles;

  /// Element connectivity (hex8, node ids into coords).
  std::vector<std::array<GlobalIndex, 8>> hexes;

  /// Derived: unique mesh edges with FV coefficients and nodal volumes.
  std::vector<Edge> edges;
  std::vector<Real> node_volume;
  /// Boundary-closure area vector per node: minus the sum of incident
  /// dual-face areas. Zero for interior nodes; for boundary nodes it is
  /// the outward boundary-face area of the node's dual cell, needed to
  /// close divergence and Green-Gauss gradients.
  std::vector<Vec3> node_boundary_area;

  std::string name;

  /// Reference-frame dual geometry cached by rotate_mesh (motion.cpp).
  std::vector<Edge> ref_edges_;
  std::vector<Vec3> ref_boundary_area_;

  GlobalIndex num_nodes() const { return GlobalIndex{coords.size()}; }
  GlobalIndex num_hexes() const { return GlobalIndex{hexes.size()}; }
  GlobalIndex num_edges() const { return GlobalIndex{edges.size()}; }

  /// Rebuild edges / coefficients / volumes from hexes + current coords.
  /// Called once after generation and after large deformations (rigid
  /// rotation preserves the coefficients, so motion does not call this).
  void compute_dual_quantities();

  /// Axis-aligned bounding box of current coordinates.
  void bounding_box(Vec3& lo, Vec3& hi) const;

  /// Geometric checks used by tests.
  Real total_volume() const;
  bool edges_valid() const;
};

/// Helper to build structured blocks of hexes as unstructured data:
/// nodes indexed (i, j, k) on an (ni+1) x (nj+1) x (nk+1) lattice whose
/// positions come from a callable mapping.
class StructuredBlockBuilder {
 public:
  StructuredBlockBuilder(GlobalIndex ni, GlobalIndex nj, GlobalIndex nk)
      : ni_(ni), nj_(nj), nk_(nk) {}

  GlobalIndex node_id(GlobalIndex i, GlobalIndex j, GlobalIndex k) const {
    // Lattice flattening multiplies extents, which StrongId deliberately
    // does not define; drop to raw 64-bit values for the arithmetic.
    return GlobalIndex{(k.value() * (nj_.value() + 1) + j.value()) *
                           (ni_.value() + 1) +
                       i.value()};
  }
  GlobalIndex num_nodes() const {
    return GlobalIndex{(ni_.value() + 1) * (nj_.value() + 1) *
                       (nk_.value() + 1)};
  }
  GlobalIndex num_cells() const {
    return GlobalIndex{ni_.value() * nj_.value() * nk_.value()};
  }
  GlobalIndex ni() const { return ni_; }
  GlobalIndex nj() const { return nj_; }
  GlobalIndex nk() const { return nk_; }

  /// Append this block's nodes and hexes to `db` (with node offset);
  /// positions from `pos(i, j, k)`. Returns the node-id offset used.
  template <typename PosFn>
  GlobalIndex emit(MeshDB& db, PosFn&& pos) const {
    const GlobalIndex offset = db.num_nodes();
    db.ref_coords.reserve(static_cast<std::size_t>(offset + num_nodes()));
    for (GlobalIndex k{0}; k <= nk_; ++k) {
      for (GlobalIndex j{0}; j <= nj_; ++j) {
        for (GlobalIndex i{0}; i <= ni_; ++i) {
          db.ref_coords.push_back(pos(i, j, k));
        }
      }
    }
    for (GlobalIndex k{0}; k < nk_; ++k) {
      for (GlobalIndex j{0}; j < nj_; ++j) {
        for (GlobalIndex i{0}; i < ni_; ++i) {
          db.hexes.push_back({offset + node_id(i, j, k),
                              offset + node_id(i + 1, j, k),
                              offset + node_id(i + 1, j + 1, k),
                              offset + node_id(i, j + 1, k),
                              offset + node_id(i, j, k + 1),
                              offset + node_id(i + 1, j, k + 1),
                              offset + node_id(i + 1, j + 1, k + 1),
                              offset + node_id(i, j + 1, k + 1)});
        }
      }
    }
    return offset;
  }

 private:
  GlobalIndex ni_, nj_, nk_;
};

/// Volume of one hex from its corner coordinates (long-diagonal
/// decomposition into 6 tetrahedra; exact for any straight-edged hex).
Real hex_volume(const std::array<Vec3, 8>& x);

}  // namespace exw::mesh
