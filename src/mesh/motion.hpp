#pragma once
/// \file motion.hpp
/// Rigid mesh motion: rotor rotation (paper §2).
///
/// Nalu-Wind meshes move with the turbine through rotor rotation; overset
/// connectivity must be continually updated as they move. Rotation is
/// rigid, so dual-mesh coefficients and volumes are invariant and only
/// coordinates (and donor search) need updating each step.

#include "mesh/overset.hpp"

namespace exw::mesh {

/// Rotate `p` by angle `theta` about the axis (unit `axis` through
/// `center`) — Rodrigues' formula.
Vec3 rotate_point(const Vec3& p, const Vec3& center, const Vec3& axis,
                  Real theta);

/// Set mesh coordinates to the reference configuration rotated by theta.
void rotate_mesh(MeshDB& db, const RotationSpec& spec, Real theta);

/// Advance all rotating meshes of the system to time `t` and rebuild
/// overset connectivity.
void advance_motion(OversetSystem& system, Real t);

}  // namespace exw::mesh
