#pragma once
/// \file generators.hpp
/// Mesh generators for the paper's three turbine cases (Table 1).
///
/// The paper simulates the NREL 5-MW reference turbine (126 m rotor) with
/// blade-resolved overset meshes: body-fitted O-grids around each blade
/// with boundary-layer grading (the source of high-aspect-ratio cells and
/// ill-conditioned pressure systems), embedded in a graded wake-capturing
/// background mesh. We generate geometry-similar meshes at a reduced
/// resolution (DESIGN.md records the scale factor): elliptic blade
/// sections with spanwise taper and twist, geometric wall-normal growth,
/// and a background box clustered around the rotor.

#include "mesh/meshdb.hpp"
#include "mesh/overset.hpp"

namespace exw::mesh {

/// Blade O-grid resolution and geometry (per blade; a rotor has 3).
struct BladeParams {
  GlobalIndex n_wrap{32};    ///< chordwise wrap divisions (periodic)
  GlobalIndex n_span{40};    ///< spanwise divisions
  GlobalIndex n_layers{16};  ///< wall-normal layers
  Real root_radius = 6.0;     ///< blade starts here (m, 5-MW-like scale)
  Real tip_radius = 63.0;     ///< rotor radius
  Real root_chord = 4.6;
  Real tip_chord = 1.4;
  Real thickness_ratio = 0.25;  ///< section thickness / chord
  Real twist_root = 0.23;       ///< radians
  Real twist_tip = 0.0;
  Real first_layer = 0.004;  ///< first wall-normal cell height (m)
  Real growth = 1.35;        ///< geometric growth ratio
};

/// Graded background box.
struct BackgroundParams {
  GlobalIndex nx{48}, ny{44}, nz{44};
  Real upstream = 130.0;    ///< domain extends [-upstream, downstream] in x
  Real downstream = 260.0;  ///< (x is the inflow direction / rotor axis)
  Real half_width = 130.0;  ///< [-half_width, half_width] in y and z
  Real cluster = 4.0;       ///< tanh clustering strength toward the rotor
};

/// One turbine: rotor center on the x axis.
struct TurbineParams {
  BladeParams blade;
  Real hub_x = 0.0;
  int n_blades = 3;
  Real rotor_speed = 1.27;  ///< rad/s (~12.1 rpm, NREL 5-MW rated)
};

/// Rotor mesh (all blades of one turbine, one moving MeshDB).
MeshDB make_rotor_mesh(const TurbineParams& turbine, const std::string& name);

/// Background mesh covering all turbines.
MeshDB make_background_mesh(const BackgroundParams& bg,
                            const std::string& name);

/// The three evaluation cases of Table 1, at a `refine` multiplier
/// (refine = 1 gives the default reduced-scale case).
enum class TurbineCase { kSingle, kDual, kSingleRefined };

/// Assemble a complete overset system: background + one rotor mesh per
/// turbine, hole cutting and donor search already performed.
OversetSystem make_turbine_case(TurbineCase which, Real refine = 1.0);

/// Human-readable case name ("1 Turbine", ...).
std::string case_name(TurbineCase which);

}  // namespace exw::mesh
