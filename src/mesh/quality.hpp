#pragma once
/// \file quality.hpp
/// Mesh-quality metrics. The paper's §1 premise: "blade-resolved
/// simulations of wind turbines lead to unstructured grids with
/// challenging features ... mesh cells with high aspect ratio or mesh
/// cells that are vastly different in size. This leads to poorly
/// conditioned linear systems." These metrics quantify exactly that for
/// the generated meshes (and are printed by the Table 1 bench).

#include "mesh/meshdb.hpp"

namespace exw::mesh {

struct QualityReport {
  Real max_aspect_ratio = 0;   ///< longest / shortest hex edge, worst cell
  Real mean_aspect_ratio = 0;
  Real volume_ratio = 0;       ///< largest / smallest cell volume
  Real min_volume = 0;
  Real max_volume = 0;
  /// Edge-coefficient anisotropy of the dual graph: max over nodes of
  /// (strongest incident coupling / weakest incident coupling) — the
  /// quantity that directly drives pressure-system conditioning.
  Real max_coupling_anisotropy = 0;
};

QualityReport measure_quality(const MeshDB& db);

}  // namespace exw::mesh
