#include "mesh/meshdb.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace exw::mesh {

namespace {

Real tet_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  const Vec3 ab = b - a, ac = c - a, ad = d - a;
  return std::abs(ab.cross(ac).dot(ad)) / 6.0;
}

/// The 12 edges of a hex8 (local node pairs) and, for each, the two hex
/// faces sharing it (bottom 0123, top 4567, then the four sides).
struct HexEdge {
  int a, b;
  int f1, f2;
};

constexpr std::array<std::array<int, 4>, 6> kHexFaces = {{{0, 1, 2, 3},
                                                          {4, 5, 6, 7},
                                                          {0, 1, 5, 4},
                                                          {1, 2, 6, 5},
                                                          {2, 3, 7, 6},
                                                          {3, 0, 4, 7}}};

constexpr std::array<HexEdge, 12> kHexEdges = {{{0, 1, 0, 2},
                                                {1, 2, 0, 3},
                                                {2, 3, 0, 4},
                                                {3, 0, 0, 5},
                                                {4, 5, 1, 2},
                                                {5, 6, 1, 3},
                                                {6, 7, 1, 4},
                                                {7, 4, 1, 5},
                                                {0, 4, 2, 5},
                                                {1, 5, 2, 3},
                                                {2, 6, 3, 4},
                                                {3, 7, 4, 5}}};

Vec3 face_center(const std::array<Vec3, 8>& x, int f) {
  Vec3 c{};
  for (int n : kHexFaces[static_cast<std::size_t>(f)]) {
    c += x[static_cast<std::size_t>(n)] * 0.25;
  }
  return c;
}

}  // namespace

Real hex_volume(const std::array<Vec3, 8>& x) {
  // Split along the 0-6 diagonal into 6 tetrahedra.
  return tet_volume(x[0], x[1], x[2], x[6]) +
         tet_volume(x[0], x[2], x[3], x[6]) +
         tet_volume(x[0], x[3], x[7], x[6]) +
         tet_volume(x[0], x[7], x[4], x[6]) +
         tet_volume(x[0], x[4], x[5], x[6]) +
         tet_volume(x[0], x[5], x[1], x[6]);
}

void MeshDB::compute_dual_quantities() {
  EXW_REQUIRE(coords.size() == ref_coords.size() || coords.empty(),
              "coords/ref_coords mismatch");
  if (coords.empty()) {
    coords = ref_coords;
  }
  if (roles.empty()) {
    roles.assign(coords.size(), NodeRole::kInterior);
  }
  node_volume.assign(coords.size(), 0.0);

  // Median-dual face area per edge: within each hex, the dual face of
  // edge (a, b) is the quad (edge midpoint, face center 1, hex centroid,
  // face center 2); its area vector is half the cross product of the
  // diagonals, oriented a -> b. Dual faces of the edges around an
  // interior node tile a closed surface, so constant fields are exactly
  // divergence-free — the property the projection scheme relies on.
  std::map<std::pair<GlobalIndex, GlobalIndex>, Vec3> areas;
  for (const auto& h : hexes) {
    std::array<Vec3, 8> x;
    for (int c = 0; c < 8; ++c) {
      x[static_cast<std::size_t>(c)] =
          coords[static_cast<std::size_t>(h[static_cast<std::size_t>(c)])];
    }
    const Real vol = hex_volume(x);
    for (int c = 0; c < 8; ++c) {
      node_volume[static_cast<std::size_t>(h[static_cast<std::size_t>(c)])] +=
          vol / 8.0;
    }
    Vec3 centroid{};
    for (const Vec3& p : x) {
      centroid += p * 0.125;
    }
    for (const HexEdge& e : kHexEdges) {
      const GlobalIndex ga = h[static_cast<std::size_t>(e.a)];
      const GlobalIndex gb = h[static_cast<std::size_t>(e.b)];
      const Vec3& xa = x[static_cast<std::size_t>(e.a)];
      const Vec3& xb = x[static_cast<std::size_t>(e.b)];
      const Vec3 mid = (xa + xb) * 0.5;
      const Vec3 fc1 = face_center(x, e.f1);
      const Vec3 fc2 = face_center(x, e.f2);
      // Quad (mid, fc1, centroid, fc2): area = 0.5 * d1 x d2 with
      // diagonals d1 = centroid - mid, d2 = fc2 - fc1.
      Vec3 area = (centroid - mid).cross(fc2 - fc1) * 0.5;
      const Vec3 dx = xb - xa;
      Vec3 oriented_dx = dx;
      if (ga > gb) {
        oriented_dx = oriented_dx * -1.0;  // store edges with a < b
      }
      if (area.dot(oriented_dx) < 0) {
        area = area * -1.0;
      }
      const auto key = ga < gb ? std::make_pair(ga, gb) : std::make_pair(gb, ga);
      areas[key] += area;
    }
  }

  edges.clear();
  edges.reserve(areas.size());
  node_boundary_area.assign(coords.size(), Vec3{});
  for (const auto& [key, area] : areas) {
    Edge e;
    e.a = key.first;
    e.b = key.second;
    e.area = area;
    const Vec3 dx = coords[static_cast<std::size_t>(e.b)] -
                    coords[static_cast<std::size_t>(e.a)];
    const Real adx = area.dot(dx);
    const Real a2 = area.dot(area);
    // Two-point flux coefficient; guard degenerate slivers.
    e.coeff = adx > 1e-300 ? a2 / adx : 0.0;
    edges.push_back(e);
    // Closure: outward for a, inward for b.
    node_boundary_area[static_cast<std::size_t>(e.a)] += area * -1.0;
    node_boundary_area[static_cast<std::size_t>(e.b)] += area;
  }
}

void MeshDB::bounding_box(Vec3& lo, Vec3& hi) const {
  lo = {1e300, 1e300, 1e300};
  hi = {-1e300, -1e300, -1e300};
  for (const Vec3& c : coords) {
    lo = {std::min(lo.x, c.x), std::min(lo.y, c.y), std::min(lo.z, c.z)};
    hi = {std::max(hi.x, c.x), std::max(hi.y, c.y), std::max(hi.z, c.z)};
  }
}

Real MeshDB::total_volume() const {
  Real v = 0;
  for (const auto& h : hexes) {
    std::array<Vec3, 8> x;
    for (int c = 0; c < 8; ++c) {
      x[static_cast<std::size_t>(c)] =
          coords[static_cast<std::size_t>(h[static_cast<std::size_t>(c)])];
    }
    v += hex_volume(x);
  }
  return v;
}

bool MeshDB::edges_valid() const {
  for (const Edge& e : edges) {
    if (e.a < GlobalIndex{0} || e.a >= num_nodes() ||
        e.b < GlobalIndex{0} || e.b >= num_nodes())
      return false;
    if (e.a >= e.b) return false;
    if (!(e.coeff >= 0)) return false;
  }
  return true;
}

}  // namespace exw::mesh
