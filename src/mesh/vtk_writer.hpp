#pragma once
/// \file vtk_writer.hpp
/// Legacy-VTK (ASCII) output of component meshes with nodal fields —
/// how a downstream user inspects the flow field (e.g. the Q-criterion
/// style visualization of the paper's Fig. 2 is produced from exactly
/// this data: coordinates, hex connectivity, velocity/pressure/scalar).

#include <map>
#include <string>

#include "mesh/meshdb.hpp"

namespace exw::mesh {

/// Nodal fields to attach: name -> per-node values. Scalar fields have
/// num_nodes() entries; vector fields 3 * num_nodes() (xyz interleaved).
struct VtkFields {
  std::map<std::string, std::vector<Real>> scalars;
  std::map<std::string, std::vector<Real>> vectors;
};

/// Write `db` (current coordinates) and fields as an UNSTRUCTURED_GRID
/// legacy VTK file. Returns false on I/O failure.
bool write_vtk(const MeshDB& db, const VtkFields& fields,
               const std::string& path);

}  // namespace exw::mesh
