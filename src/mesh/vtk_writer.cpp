#include "mesh/vtk_writer.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace exw::mesh {

bool write_vtk(const MeshDB& db, const VtkFields& fields,
               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const auto n = db.num_nodes();
  const auto nc = db.num_hexes();
  std::fprintf(f, "# vtk DataFile Version 3.0\n%s\nASCII\n"
               "DATASET UNSTRUCTURED_GRID\n",
               db.name.empty() ? "exawind-mini" : db.name.c_str());
  std::fprintf(f, "POINTS %lld double\n", static_cast<long long>(n.value()));
  for (const Vec3& p : db.coords) {
    std::fprintf(f, "%.9g %.9g %.9g\n", p.x, p.y, p.z);
  }
  std::fprintf(f, "CELLS %lld %lld\n", static_cast<long long>(nc.value()),
               static_cast<long long>(nc.value() * 9));
  for (const auto& h : db.hexes) {
    std::fprintf(f, "8 %lld %lld %lld %lld %lld %lld %lld %lld\n",
                 static_cast<long long>(h[0].value()), static_cast<long long>(h[1].value()),
                 static_cast<long long>(h[2].value()), static_cast<long long>(h[3].value()),
                 static_cast<long long>(h[4].value()), static_cast<long long>(h[5].value()),
                 static_cast<long long>(h[6].value()), static_cast<long long>(h[7].value()));
  }
  std::fprintf(f, "CELL_TYPES %lld\n", static_cast<long long>(nc.value()));
  for (GlobalIndex c{0}; c < nc; ++c) {
    std::fprintf(f, "12\n");  // VTK_HEXAHEDRON
  }
  std::fprintf(f, "POINT_DATA %lld\n", static_cast<long long>(n.value()));
  // Node roles always written (hole/fringe visualization).
  std::fprintf(f, "SCALARS node_role int 1\nLOOKUP_TABLE default\n");
  for (const NodeRole role : db.roles) {
    std::fprintf(f, "%d\n", static_cast<int>(role));
  }
  for (const auto& [name, values] : fields.scalars) {
    EXW_REQUIRE(values.size() == static_cast<std::size_t>(n),
                "scalar field size mismatch: " + name);
    std::fprintf(f, "SCALARS %s double 1\nLOOKUP_TABLE default\n",
                 name.c_str());
    for (Real v : values) {
      std::fprintf(f, "%.9g\n", v);
    }
  }
  for (const auto& [name, values] : fields.vectors) {
    EXW_REQUIRE(values.size() == static_cast<std::size_t>(3 * n.value()),
                "vector field size mismatch: " + name);
    std::fprintf(f, "VECTORS %s double\n", name.c_str());
    for (GlobalIndex i{0}; i < n; ++i) {
      std::fprintf(f, "%.9g %.9g %.9g\n",
                   values[static_cast<std::size_t>(3 * i.value())],
                   values[static_cast<std::size_t>(3 * i.value() + 1)],
                   values[static_cast<std::size_t>(3 * i.value() + 2)]);
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace exw::mesh
