#include "mesh/motion.hpp"

#include <cmath>

#include "common/error.hpp"

namespace exw::mesh {

Vec3 rotate_point(const Vec3& p, const Vec3& center, const Vec3& axis,
                  Real theta) {
  const Vec3 v = p - center;
  const Real c = std::cos(theta);
  const Real s = std::sin(theta);
  const Vec3 rotated =
      v * c + axis.cross(v) * s + axis * (axis.dot(v) * (1.0 - c));
  return center + rotated;
}

void rotate_mesh(MeshDB& db, const RotationSpec& spec, Real theta) {
  const Real n = spec.axis.norm();
  EXW_REQUIRE(n > 0, "degenerate rotation axis");
  const Vec3 axis = spec.axis * (1.0 / n);
  const bool first_rotation = db.ref_edges_.empty();
  if (first_rotation) {
    // Cache the reference dual geometry so repeated rotations compose
    // from the reference configuration (no drift).
    db.ref_edges_ = db.edges;
    db.ref_boundary_area_ = db.node_boundary_area;
  }
  for (std::size_t i = 0; i < db.coords.size(); ++i) {
    db.coords[i] = rotate_point(db.ref_coords[i], spec.center, axis, theta);
  }
  // Rigid rotation: scalar couplings are invariant, area vectors rotate.
  const Vec3 origin{0, 0, 0};
  for (std::size_t e = 0; e < db.edges.size(); ++e) {
    db.edges[e].area =
        rotate_point(db.ref_edges_[e].area, origin, axis, theta);
  }
  for (std::size_t i = 0; i < db.node_boundary_area.size(); ++i) {
    db.node_boundary_area[i] =
        rotate_point(db.ref_boundary_area_[i], origin, axis, theta);
  }
}

void advance_motion(OversetSystem& system, Real t) {
  bool moved = false;
  for (std::size_t m = 0; m < system.meshes.size(); ++m) {
    const RotationSpec& spec = system.motion[m];
    if (!spec.rotating || spec.omega == 0.0) continue;
    rotate_mesh(system.meshes[m], spec, spec.omega * t);
    moved = true;
  }
  if (moved) {
    system.update_connectivity();
  }
}

}  // namespace exw::mesh
