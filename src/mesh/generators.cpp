#include "mesh/generators.hpp"

#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/error.hpp"

namespace exw::mesh {

namespace {

constexpr Real kPi = std::numbers::pi_v<Real>;

/// Two-sided sinh clustering on [-1, 1] concentrated at 0.
Real sinh_cluster(Real u, Real beta) {
  return std::sinh(beta * u) / std::sinh(beta);
}

/// Clustering map [0,1] -> [0,1] with grid lines accumulating near
/// `center` (the mapping derivative, i.e. the local spacing, is minimal
/// there: d/dt ~ cosh(strength * (t - center))).
Real center_cluster(Real t, Real center, Real strength) {
  const Real a = std::sinh(strength * (t - center));
  const Real lo = std::sinh(strength * (0.0 - center));
  const Real hi = std::sinh(strength * (1.0 - center));
  return (a - lo) / (hi - lo);
}

Real lerp(Real a, Real b, Real t) { return a + (b - a) * t; }

/// Wrapped angular distance in [0, pi].
Real ang_dist(Real a, Real b) {
  Real d = std::fmod(std::abs(a - b), 2.0 * kPi);
  return d > kPi ? 2.0 * kPi - d : d;
}

struct RotorGrid {
  GlobalIndex n_theta;
  GlobalIndex n_r;
  GlobalIndex n_k;

  GlobalIndex node_id(GlobalIndex it, GlobalIndex j, GlobalIndex k) const {
    return GlobalIndex{(k.value() * (n_r.value() + 1) + j.value()) *
                           n_theta.value() +
                       (it.value() % n_theta.value())};
  }
  GlobalIndex num_nodes() const {
    return GlobalIndex{n_theta.value() * (n_r.value() + 1) *
                       (n_k.value() + 1)};
  }
};

}  // namespace

MeshDB make_rotor_mesh(const TurbineParams& turbine, const std::string& name) {
  const BladeParams& bp = turbine.blade;
  MeshDB db;
  db.name = name;

  // Rotor disc mesh: azimuthal (periodic) x radial x axial, with sinh
  // clustering of axial planes toward the blade plane. This produces the
  // boundary-layer aspect ratios (up to ~10^3) of blade-resolved meshes
  // while keeping full annular coverage for the donor search (the
  // substitution vs per-blade O-grids is recorded in DESIGN.md).
  const RotorGrid g{GlobalIndex{4 * ((bp.n_wrap.value() * 3) / 4)}, bp.n_span,
                    GlobalIndex{2 * (bp.n_layers.value() / 2)}};
  const Real half_extent = 10.0;  // axial half-thickness of the disc mesh
  const Real beta = 6.0;          // axial clustering strength

  db.ref_coords.resize(static_cast<std::size_t>(g.num_nodes()));
  for (GlobalIndex k{0}; k <= g.n_k; ++k) {
    const Real u = 2.0 * static_cast<Real>(k.value()) / static_cast<Real>(g.n_k.value()) - 1.0;
    const Real x = turbine.hub_x + half_extent * sinh_cluster(u, beta);
    for (GlobalIndex j{0}; j <= g.n_r; ++j) {
      const Real r = lerp(bp.root_radius, bp.tip_radius,
                          static_cast<Real>(j.value()) / static_cast<Real>(g.n_r.value()));
      for (GlobalIndex it{0}; it < g.n_theta; ++it) {
        const Real th = 2.0 * kPi * static_cast<Real>(it.value()) / static_cast<Real>(g.n_theta.value());
        db.ref_coords[static_cast<std::size_t>(g.node_id(it, j, k))] =
            Vec3{x, r * std::cos(th), r * std::sin(th)};
      }
    }
  }
  for (GlobalIndex k{0}; k < g.n_k; ++k) {
    for (GlobalIndex j{0}; j < g.n_r; ++j) {
      for (GlobalIndex it{0}; it < g.n_theta; ++it) {
        db.hexes.push_back({g.node_id(it, j, k), g.node_id(it + 1, j, k),
                            g.node_id(it + 1, j + 1, k), g.node_id(it, j + 1, k),
                            g.node_id(it, j, k + 1), g.node_id(it + 1, j, k + 1),
                            g.node_id(it + 1, j + 1, k + 1),
                            g.node_id(it, j + 1, k + 1)});
      }
    }
  }

  // Roles: disc boundary nodes are overset fringe (they receive the
  // background solution); blade-plane nodes inside a blade footprint are
  // no-slip walls.
  db.roles.assign(static_cast<std::size_t>(g.num_nodes()), NodeRole::kInterior);
  const GlobalIndex kmid{g.n_k.value() / 2};
  const Real dtheta = 2.0 * kPi / static_cast<Real>(g.n_theta.value());
  for (GlobalIndex k{0}; k <= g.n_k; ++k) {
    for (GlobalIndex j{0}; j <= g.n_r; ++j) {
      for (GlobalIndex it{0}; it < g.n_theta; ++it) {
        const auto id = static_cast<std::size_t>(g.node_id(it, j, k));
        if (k == GlobalIndex{0} || k == g.n_k || j == GlobalIndex{0} ||
            j == g.n_r) {
          db.roles[id] = NodeRole::kFringe;
          continue;
        }
        if (k != kmid) continue;
        const Real s = static_cast<Real>(j.value()) / static_cast<Real>(g.n_r.value());
        const Real r = lerp(bp.root_radius, bp.tip_radius, s);
        const Real chord = lerp(bp.root_chord, bp.tip_chord, s);
        // Angular half-width of the blade footprint, floored to resolve
        // at least one azimuthal cell near the tip.
        const Real half_w = std::max(0.5 * chord / r, 1.2 * dtheta);
        const Real th = dtheta * static_cast<Real>(it.value());
        for (int b = 0; b < turbine.n_blades; ++b) {
          const Real blade_th =
              2.0 * kPi * static_cast<Real>(b) / static_cast<Real>(turbine.n_blades);
          if (ang_dist(th, blade_th) <= half_w && s <= 0.97) {
            db.roles[id] = NodeRole::kWall;
            break;
          }
        }
      }
    }
  }

  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  return db;
}

MeshDB make_background_mesh(const BackgroundParams& bg,
                            const std::string& name) {
  MeshDB db;
  db.name = name;
  const StructuredBlockBuilder block(bg.nx, bg.ny, bg.nz);
  // Cluster x planes toward the rotor (x = 0 .. last hub) and y/z toward
  // the axis.
  const Real xc = bg.upstream / (bg.upstream + bg.downstream);
  block.emit(db, [&](GlobalIndex i, GlobalIndex j, GlobalIndex k) {
    const Real ti = static_cast<Real>(i.value()) / static_cast<Real>(bg.nx.value());
    const Real tj = static_cast<Real>(j.value()) / static_cast<Real>(bg.ny.value());
    const Real tk = static_cast<Real>(k.value()) / static_cast<Real>(bg.nz.value());
    const Real x = -bg.upstream +
                   (bg.upstream + bg.downstream) * center_cluster(ti, xc, bg.cluster);
    const Real y = -bg.half_width +
                   2.0 * bg.half_width * center_cluster(tj, 0.5, bg.cluster);
    const Real z = -bg.half_width +
                   2.0 * bg.half_width * center_cluster(tk, 0.5, bg.cluster);
    return Vec3{x, y, z};
  });

  db.roles.assign(db.ref_coords.size(), NodeRole::kInterior);
  for (GlobalIndex k{0}; k <= bg.nz; ++k) {
    for (GlobalIndex j{0}; j <= bg.ny; ++j) {
      for (GlobalIndex i{0}; i <= bg.nx; ++i) {
        const auto id = static_cast<std::size_t>(block.node_id(i, j, k));
        // Inflow/outflow normal to the rotor plane; symmetry elsewhere
        // (paper §5: "inflow and outflow boundary conditions in the
        // directions normal to the blade rotation and symmetry boundary
        // conditions in other directions").
        if (i == GlobalIndex{0}) {
          db.roles[id] = NodeRole::kInflow;
        } else if (i == bg.nx) {
          db.roles[id] = NodeRole::kOutflow;
        } else if (j == GlobalIndex{0} || j == bg.ny || k == GlobalIndex{0} ||
                   k == bg.nz) {
          db.roles[id] = NodeRole::kSymmetry;
        }
      }
    }
  }

  db.coords = db.ref_coords;
  db.compute_dual_quantities();
  return db;
}

std::string case_name(TurbineCase which) {
  switch (which) {
    case TurbineCase::kSingle: return "1 Turbine";
    case TurbineCase::kDual: return "2 Turbines";
    case TurbineCase::kSingleRefined: return "1 Turbine Refined";
  }
  return "?";
}

OversetSystem make_turbine_case(TurbineCase which, Real refine) {
  EXW_REQUIRE(refine > 0, "refine must be positive");
  const Real extra = which == TurbineCase::kSingleRefined ? 1.6 : 1.0;
  const Real f = refine * extra;
  auto scaled = [&](std::int64_t n) {
    return GlobalIndex{
        std::max<std::int64_t>(4, std::llround(static_cast<Real>(n) * f))};
  };

  OversetSystem sys;
  sys.name = case_name(which);
  const int n_turbines = which == TurbineCase::kDual ? 2 : 1;
  const Real spacing = 189.0;  // 1.5 rotor diameters between hubs

  BackgroundParams bg;
  bg.nx = scaled(48);
  bg.ny = scaled(44);
  bg.nz = scaled(44);
  if (n_turbines == 2) {
    bg.downstream += spacing;
    bg.nx = scaled(64);
  }
  sys.meshes.push_back(make_background_mesh(bg, "background"));
  sys.motion.push_back(RotationSpec{});  // background does not move

  for (int t = 0; t < n_turbines; ++t) {
    TurbineParams tp;
    tp.hub_x = spacing * static_cast<Real>(t);
    tp.blade.n_wrap = scaled(32);
    tp.blade.n_span = scaled(40);
    tp.blade.n_layers = scaled(16);
    sys.meshes.push_back(
        make_rotor_mesh(tp, "rotor" + std::to_string(t)));
    RotationSpec spec;
    spec.rotating = true;
    spec.center = Vec3{tp.hub_x, 0, 0};
    spec.axis = Vec3{1, 0, 0};
    spec.omega = tp.rotor_speed;
    sys.motion.push_back(spec);

    // Cut the matching hole in the background: the swept annulus of this
    // rotor, with a fringe shell that stays inside the disc mesh.
    cut_hole(sys.meshes[0], spec.center, spec.axis,
             /*inner_radius=*/10.0, /*outer_radius=*/52.0,
             /*half_thickness=*/4.0, /*fringe_shell=*/4.5);
  }

  sys.update_connectivity();
  return sys;
}

}  // namespace exw::mesh
