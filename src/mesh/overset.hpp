#pragma once
/// \file overset.hpp
/// Overset-grid assembly (the TIOGA stand-in).
///
/// The ExaWind overset method (paper §2): independent meshes overlap; a
/// hole is cut in the background where a body-fitted mesh provides the
/// solution; *fringe* nodes on each side of the overlap receive the
/// solution interpolated from *donor* cells of the other mesh; and the
/// global coupled system is approximated by solving per-mesh systems
/// inside outer (Picard) iterations — an additive Schwarz coupling.
/// Connectivity must be recomputed as the rotor rotates; the donor search
/// here is rebuilt each step via a uniform spatial hash over donor-cell
/// bounding boxes.
///
/// Simplification vs TIOGA (recorded in DESIGN.md): donor weights are
/// inverse-distance weights over the 8 nodes of the containing hex rather
/// than exact iso-parametric coordinates. The coupling *structure*
/// (which DoFs are receptors, which are donors, when connectivity is
/// rebuilt) matches the paper; pointwise interpolation order does not
/// affect the linear-solver behaviour under study.

#include <array>
#include <vector>

#include "mesh/meshdb.hpp"

namespace exw::mesh {

/// One fringe receptor: node `node` of mesh `mesh` takes its value from
/// 8 donor nodes of mesh `donor_mesh` with the given weights (sum = 1).
struct OversetConstraint {
  int mesh = 0;
  GlobalIndex node{0};
  int donor_mesh = 0;
  std::array<GlobalIndex, 8> donors{};
  std::array<Real, 8> weights{};
};

/// Rigid rotation spec for a moving component mesh.
struct RotationSpec {
  bool rotating = false;
  Vec3 center{};
  Vec3 axis{1, 0, 0};
  Real omega = 0.0;  ///< rad/s
};

/// A complete overset system: mesh 0 is the background; meshes 1..N are
/// body-fitted rotor meshes.
struct OversetSystem {
  std::vector<MeshDB> meshes;
  std::vector<RotationSpec> motion;        ///< parallel to meshes
  std::vector<OversetConstraint> constraints;
  std::string name;

  GlobalIndex total_nodes() const;
  GlobalIndex total_hexes() const;

  /// Recompute donor cells/weights for all fringe nodes (called after
  /// every mesh-motion update). Roles are geometric invariants of the
  /// rotating system and are not changed here.
  void update_connectivity();
};

/// Uniform-bin spatial hash over hex cells of one mesh, used for donor
/// search. Query returns candidate cell ids whose bounding box contains
/// the point.
class CellLocator {
 public:
  explicit CellLocator(const MeshDB& db,
                       GlobalIndex target_bins = GlobalIndex{64});

  /// Find the best donor hex for point `p`: the candidate whose centroid
  /// is nearest among cells whose bbox contains p; if none contains p,
  /// widens the search ring by ring. Returns kInvalidGlobal only for an
  /// empty mesh.
  GlobalIndex find_cell(const Vec3& p) const;

 private:
  struct Bin {
    std::vector<GlobalIndex> cells;
  };

  std::size_t bin_index(GlobalIndex bx, GlobalIndex by, GlobalIndex bz) const {
    return static_cast<std::size_t>(
        (bz.value() * ny_.value() + by.value()) * nx_.value() + bx.value());
  }
  void bin_coords(const Vec3& p, GlobalIndex& bx, GlobalIndex& by,
                  GlobalIndex& bz) const;

  const MeshDB& db_;
  Vec3 lo_{}, hi_{};
  GlobalIndex nx_{1}, ny_{1}, nz_{1};
  std::vector<Bin> bins_;
  std::vector<Vec3> centroids_;
};

/// Inverse-distance donor weights for point `p` over hex `cell` of `db`.
void donor_weights(const MeshDB& db, GlobalIndex cell, const Vec3& p,
                   std::array<GlobalIndex, 8>& donors,
                   std::array<Real, 8>& weights);

/// Geometric hole cutting for a rotor embedded in a background mesh:
/// background nodes inside the rotor swept annulus (rotation-invariant)
/// become kHole; hole-adjacent background nodes within the fringe shell
/// become kFringe. Returns (n_holes, n_fringe).
struct HoleCutResult {
  GlobalIndex holes{0};
  GlobalIndex fringe{0};
};
HoleCutResult cut_hole(MeshDB& background, const Vec3& hub, const Vec3& axis,
                       Real inner_radius, Real outer_radius,
                       Real half_thickness, Real fringe_shell);

}  // namespace exw::mesh
