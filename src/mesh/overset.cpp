#include <memory>
#include "mesh/overset.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace exw::mesh {

GlobalIndex OversetSystem::total_nodes() const {
  GlobalIndex n{0};
  for (const auto& m : meshes) n += m.num_nodes();
  return n;
}

GlobalIndex OversetSystem::total_hexes() const {
  GlobalIndex n{0};
  for (const auto& m : meshes) n += m.num_hexes();
  return n;
}

CellLocator::CellLocator(const MeshDB& db, GlobalIndex target_bins) : db_(db) {
  db.bounding_box(lo_, hi_);
  // Pad so boundary points land inside.
  const Vec3 ext = hi_ - lo_;
  const Real pad = 1e-6 * std::max({ext.x, ext.y, ext.z, Real{1.0}});
  lo_ = lo_ - Vec3{pad, pad, pad};
  hi_ = hi_ + Vec3{pad, pad, pad};
  const Real vol = std::max((hi_.x - lo_.x) * (hi_.y - lo_.y) * (hi_.z - lo_.z),
                            Real{1e-30});
  const Real cells_per_bin = 8.0;
  const auto want = static_cast<Real>(db.num_hexes().value()) / cells_per_bin;
  const Real h = std::cbrt(vol / std::max(want, Real{1.0}));
  auto bins_along = [&](Real extent) {
    return GlobalIndex{std::clamp<std::int64_t>(
        static_cast<std::int64_t>(extent / h), 1, target_bins.value())};
  };
  nx_ = bins_along(hi_.x - lo_.x);
  ny_ = bins_along(hi_.y - lo_.y);
  nz_ = bins_along(hi_.z - lo_.z);
  bins_.resize(
      static_cast<std::size_t>(nx_.value() * ny_.value() * nz_.value()));
  centroids_.resize(static_cast<std::size_t>(db.num_hexes()));

  for (GlobalIndex c{0}; c < db.num_hexes(); ++c) {
    Vec3 clo{1e300, 1e300, 1e300}, chi{-1e300, -1e300, -1e300};
    Vec3 centroid{};
    for (GlobalIndex n : db.hexes[static_cast<std::size_t>(c)]) {
      const Vec3& p = db.coords[static_cast<std::size_t>(n)];
      clo = {std::min(clo.x, p.x), std::min(clo.y, p.y), std::min(clo.z, p.z)};
      chi = {std::max(chi.x, p.x), std::max(chi.y, p.y), std::max(chi.z, p.z)};
      centroid += p * 0.125;
    }
    centroids_[static_cast<std::size_t>(c)] = centroid;
    GlobalIndex bx0, by0, bz0, bx1, by1, bz1;
    bin_coords(clo, bx0, by0, bz0);
    bin_coords(chi, bx1, by1, bz1);
    for (GlobalIndex bz = bz0; bz <= bz1; ++bz) {
      for (GlobalIndex by = by0; by <= by1; ++by) {
        for (GlobalIndex bx = bx0; bx <= bx1; ++bx) {
          bins_[bin_index(bx, by, bz)].cells.push_back(c);
        }
      }
    }
  }
}

void CellLocator::bin_coords(const Vec3& p, GlobalIndex& bx, GlobalIndex& by,
                             GlobalIndex& bz) const {
  auto clampi = [](Real t, GlobalIndex n) {
    return GlobalIndex{std::clamp<std::int64_t>(static_cast<std::int64_t>(t),
                                                0, n.value() - 1)};
  };
  bx = clampi((p.x - lo_.x) / (hi_.x - lo_.x) * static_cast<Real>(nx_.value()),
              nx_);
  by = clampi((p.y - lo_.y) / (hi_.y - lo_.y) * static_cast<Real>(ny_.value()),
              ny_);
  bz = clampi((p.z - lo_.z) / (hi_.z - lo_.z) * static_cast<Real>(nz_.value()),
              nz_);
}

GlobalIndex CellLocator::find_cell(const Vec3& p) const {
  if (db_.num_hexes() == GlobalIndex{0}) return kInvalidGlobal;
  GlobalIndex bx, by, bz;
  bin_coords(p, bx, by, bz);
  GlobalIndex best = kInvalidGlobal;
  Real best_d2 = 1e300;
  // Expand ring by ring until a candidate is found (guaranteed to
  // terminate: the whole mesh is binned).
  // Ring offsets are signed displacements, not node ids: raw 64-bit.
  const std::int64_t max_ring =
      std::max({nx_.value(), ny_.value(), nz_.value()});
  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    for (std::int64_t dz = -ring; dz <= ring; ++dz) {
      for (std::int64_t dy = -ring; dy <= ring; ++dy) {
        for (std::int64_t dx = -ring; dx <= ring; ++dx) {
          if (std::max({std::abs(dx), std::abs(dy), std::abs(dz)}) != ring) {
            continue;  // only the shell of this ring
          }
          const GlobalIndex x = bx + dx, y = by + dy, z = bz + dz;
          if (x < GlobalIndex{0} || x >= nx_ || y < GlobalIndex{0} ||
              y >= ny_ || z < GlobalIndex{0} || z >= nz_) {
            continue;
          }
          for (GlobalIndex c : bins_[bin_index(x, y, z)].cells) {
            const Vec3 d = centroids_[static_cast<std::size_t>(c)] - p;
            const Real d2 = d.dot(d);
            if (d2 < best_d2) {
              best_d2 = d2;
              best = c;
            }
          }
        }
      }
    }
    if (best != kInvalidGlobal) break;
  }
  return best;
}

void donor_weights(const MeshDB& db, GlobalIndex cell, const Vec3& p,
                   std::array<GlobalIndex, 8>& donors,
                   std::array<Real, 8>& weights) {
  const auto& h = db.hexes[static_cast<std::size_t>(cell)];
  Real total = 0;
  for (int c = 0; c < 8; ++c) {
    donors[static_cast<std::size_t>(c)] = h[static_cast<std::size_t>(c)];
    const Vec3 d = db.coords[static_cast<std::size_t>(h[static_cast<std::size_t>(c)])] - p;
    const Real w = 1.0 / (std::sqrt(d.dot(d)) + 1e-12);
    weights[static_cast<std::size_t>(c)] = w;
    total += w;
  }
  for (auto& w : weights) {
    w /= total;
  }
}

HoleCutResult cut_hole(MeshDB& background, const Vec3& hub, const Vec3& axis,
                       Real inner_radius, Real outer_radius,
                       Real half_thickness, Real fringe_shell) {
  HoleCutResult res;
  const Real axis_norm = axis.norm();
  EXW_REQUIRE(axis_norm > 0, "degenerate rotation axis");
  const Vec3 a = axis * (1.0 / axis_norm);
  // Signed distance to the swept annulus: axial |d.a|, radial |d - (d.a)a|.
  auto region = [&](const Vec3& p, Real grow) {
    const Vec3 d = p - hub;
    const Real ax = std::abs(d.dot(a));
    const Vec3 rad_vec = d - a * d.dot(a);
    const Real rad = rad_vec.norm();
    return ax <= half_thickness + grow && rad >= inner_radius - grow &&
           rad <= outer_radius + grow;
  };
  for (std::size_t n = 0; n < background.coords.size(); ++n) {
    if (background.roles[n] != NodeRole::kInterior) continue;
    if (region(background.coords[n], 0.0)) {
      background.roles[n] = NodeRole::kHole;
      res.holes += 1;
    }
  }
  // Fringe = interior nodes in the shell just outside the hole region.
  for (std::size_t n = 0; n < background.coords.size(); ++n) {
    if (background.roles[n] != NodeRole::kInterior) continue;
    if (region(background.coords[n], fringe_shell)) {
      background.roles[n] = NodeRole::kFringe;
      res.fringe += 1;
    }
  }
  return res;
}

void OversetSystem::update_connectivity() {
  constraints.clear();
  // Build one locator per mesh lazily (only meshes that act as donors).
  std::vector<std::unique_ptr<CellLocator>> locators(meshes.size());
  auto locator = [&](int m) -> CellLocator& {
    if (!locators[static_cast<std::size_t>(m)]) {
      locators[static_cast<std::size_t>(m)] =
          std::make_unique<CellLocator>(meshes[static_cast<std::size_t>(m)]);
    }
    return *locators[static_cast<std::size_t>(m)];
  };

  // Donor-mesh policy: background fringe nodes (mesh 0) take donors from
  // the nearest rotor mesh; rotor fringe nodes take donors from the
  // background. With several rotors, "nearest" = rotor whose hub is
  // closest (hubs are far apart compared to rotor diameters).
  const int nmesh = checked_narrow<int>(meshes.size());
  for (int m = 0; m < nmesh; ++m) {
    const MeshDB& rec = meshes[static_cast<std::size_t>(m)];
    for (GlobalIndex n{0}; n < rec.num_nodes(); ++n) {
      if (rec.roles[static_cast<std::size_t>(n)] != NodeRole::kFringe) continue;
      const Vec3& p = rec.coords[static_cast<std::size_t>(n)];
      int dm;
      if (m == 0) {
        dm = 1;
        Real best = 1e300;
        for (int r = 1; r < nmesh; ++r) {
          const Vec3 d = p - motion[static_cast<std::size_t>(r)].center;
          const Real d2 = d.dot(d);
          if (d2 < best) {
            best = d2;
            dm = r;
          }
        }
      } else {
        dm = 0;
      }
      const GlobalIndex cell = locator(dm).find_cell(p);
      EXW_REQUIRE(cell != kInvalidGlobal, "fringe node found no donor cell");
      OversetConstraint c;
      c.mesh = m;
      c.node = n;
      c.donor_mesh = dm;
      donor_weights(meshes[static_cast<std::size_t>(dm)], cell, p, c.donors,
                    c.weights);
      constraints.push_back(c);
    }
  }
}

}  // namespace exw::mesh
