#include "mesh/quality.hpp"

#include <algorithm>
#include <cmath>

namespace exw::mesh {

namespace {

constexpr std::array<std::array<int, 2>, 12> kEdges = {{{0, 1},
                                                        {1, 2},
                                                        {2, 3},
                                                        {3, 0},
                                                        {4, 5},
                                                        {5, 6},
                                                        {6, 7},
                                                        {7, 4},
                                                        {0, 4},
                                                        {1, 5},
                                                        {2, 6},
                                                        {3, 7}}};

}  // namespace

QualityReport measure_quality(const MeshDB& db) {
  QualityReport rep;
  rep.min_volume = 1e300;
  double aspect_sum = 0;
  for (const auto& h : db.hexes) {
    std::array<Vec3, 8> x;
    for (std::size_t c = 0; c < 8; ++c) {
      x[c] = db.coords[static_cast<std::size_t>(h[c])];
    }
    Real lmin = 1e300, lmax = 0;
    for (const auto& e : kEdges) {
      const Real len = (x[static_cast<std::size_t>(e[1])] -
                        x[static_cast<std::size_t>(e[0])]).norm();
      lmin = std::min(lmin, len);
      lmax = std::max(lmax, len);
    }
    const Real aspect = lmin > 0 ? lmax / lmin : 1e300;
    rep.max_aspect_ratio = std::max(rep.max_aspect_ratio, aspect);
    aspect_sum += aspect;
    const Real vol = hex_volume(x);
    rep.min_volume = std::min(rep.min_volume, vol);
    rep.max_volume = std::max(rep.max_volume, vol);
  }
  if (!db.hexes.empty()) {
    rep.mean_aspect_ratio = aspect_sum / static_cast<double>(db.hexes.size());
    rep.volume_ratio = rep.min_volume > 0 ? rep.max_volume / rep.min_volume : 0;
  }
  // Per-node incident coupling spread.
  std::vector<Real> cmin(db.coords.size(), 1e300);
  std::vector<Real> cmax(db.coords.size(), 0.0);
  for (const auto& e : db.edges) {
    if (e.coeff <= 0) continue;
    for (const GlobalIndex n : {e.a, e.b}) {
      cmin[static_cast<std::size_t>(n)] =
          std::min(cmin[static_cast<std::size_t>(n)], e.coeff);
      cmax[static_cast<std::size_t>(n)] =
          std::max(cmax[static_cast<std::size_t>(n)], e.coeff);
    }
  }
  for (std::size_t n = 0; n < db.coords.size(); ++n) {
    if (cmax[n] > 0 && cmin[n] < 1e300) {
      rep.max_coupling_anisotropy =
          std::max(rep.max_coupling_anisotropy, cmax[n] / cmin[n]);
    }
  }
  return rep;
}

}  // namespace exw::mesh
