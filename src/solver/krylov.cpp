#include "solver/krylov.hpp"

#include <cmath>

#include "common/error.hpp"

namespace exw::solver {

SolveStats cg_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                    linalg::ParVector& x, Preconditioner& m,
                    const KrylovOptions& opts) {
  par::Runtime& rt = a.runtime();
  SolveStats stats;
  linalg::ParVector r(rt, a.rows()), z(rt, a.rows()), p(rt, a.rows()),
      ap(rt, a.rows());

  const Real bnorm = b.norm2();
  a.residual(b, x, r);
  stats.initial_residual = r.norm2();
  stats.final_residual = stats.initial_residual;
  const Real target = std::max(opts.rel_tol * (bnorm > 0 ? bnorm : stats.initial_residual),
                               opts.abs_tol);
  if (stats.initial_residual <= target) {
    stats.converged = true;
    return stats;
  }

  m.apply(r, z);
  p.copy_from(z);
  Real rz = r.dot(z);
  while (stats.iterations < opts.max_iters) {
    stats.iterations += 1;
    a.matvec(p, ap);
    const Real pap = p.dot(ap);
    if (pap <= 0.0) {
      break;  // loss of positive definiteness (e.g. indefinite precond)
    }
    const Real alpha = rz / pap;
    x.axpy(alpha, p);
    r.axpy(-alpha, ap);
    stats.final_residual = r.norm2();
    if (stats.final_residual <= target) {
      stats.converged = true;
      return stats;
    }
    m.apply(r, z);
    const Real rz_next = r.dot(z);
    const Real beta = rz_next / rz;
    rz = rz_next;
    // p = z + beta p.
    p.aypx(beta, z);
  }
  return stats;
}

SolveStats bicgstab_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                          linalg::ParVector& x, Preconditioner& m,
                          const KrylovOptions& opts) {
  par::Runtime& rt = a.runtime();
  SolveStats stats;
  linalg::ParVector r(rt, a.rows()), r0(rt, a.rows()), p(rt, a.rows()),
      v(rt, a.rows()), s(rt, a.rows()), t(rt, a.rows()), phat(rt, a.rows()),
      shat(rt, a.rows());

  const Real bnorm = b.norm2();
  a.residual(b, x, r);
  stats.initial_residual = r.norm2();
  stats.final_residual = stats.initial_residual;
  const Real target = std::max(opts.rel_tol * (bnorm > 0 ? bnorm : stats.initial_residual),
                               opts.abs_tol);
  if (stats.initial_residual <= target) {
    stats.converged = true;
    return stats;
  }
  r0.copy_from(r);
  Real rho_prev = 1, alpha = 1, omega = 1;
  v.fill(0.0);
  p.fill(0.0);

  while (stats.iterations < opts.max_iters) {
    stats.iterations += 1;
    const Real rho = r0.dot(r);
    if (rho == 0.0) break;  // breakdown
    if (stats.iterations == 1) {
      p.copy_from(r);
    } else {
      const Real beta = (rho / rho_prev) * (alpha / omega);
      // p = r + beta (p - omega v).
      p.axpy(-omega, v);
      p.aypx(beta, r);
    }
    m.apply(p, phat);
    a.matvec(phat, v);
    const Real r0v = r0.dot(v);
    if (r0v == 0.0) break;
    alpha = rho / r0v;
    s.copy_from(r);
    s.axpy(-alpha, v);
    const Real snorm = s.norm2();
    if (snorm <= target) {
      x.axpy(alpha, phat);
      stats.final_residual = snorm;
      stats.converged = true;
      return stats;
    }
    m.apply(s, shat);
    a.matvec(shat, t);
    const Real tt = t.dot(t);
    if (tt == 0.0) break;
    omega = t.dot(s) / tt;
    x.axpy(alpha, phat);
    x.axpy(omega, shat);
    r.copy_from(s);
    r.axpy(-omega, t);
    stats.final_residual = r.norm2();
    if (stats.final_residual <= target) {
      stats.converged = true;
      return stats;
    }
    if (omega == 0.0) break;
    rho_prev = rho;
  }
  return stats;
}

}  // namespace exw::solver
