#include "solver/gmres.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace exw::solver {

namespace {

/// Per-rank partial dots of w against v[0..count), plus ||w||^2, fused
/// into ONE allreduce — the kernel of the one-reduce orthogonalization.
/// With `overlapped` the same payload rides the non-blocking collective
/// (charged so its latency hides behind whatever the caller computes
/// next); the returned values are identical either way, because both
/// reductions sum rank partials element-wise in rank order.
std::vector<double> fused_dots(const std::vector<linalg::ParVector>& v,
                               std::size_t count, const linalg::ParVector& w,
                               bool overlapped = false) {
  par::Runtime& rt = w.runtime();
  const int nranks = w.nranks();
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(nranks),
      std::vector<double>(count + 1, 0.0));
  rt.parallel_for_ranks([&](RankId r) {
    const auto& wl = w.local(r);
    auto& p = partial[static_cast<std::size_t>(r)];
    for (std::size_t j = 0; j < count; ++j) {
      const auto& vl = v[j].local(r);
      double s = 0;
      for (std::size_t i = 0; i < wl.size(); ++i) {
        s += vl[i] * wl[i];
      }
      p[j] = s;
    }
    double s = 0;
    for (double x : wl) s += x * x;
    p[count] = s;
    rt.tracer().kernel(
        r, 2.0 * static_cast<double>((count + 1) * wl.size()),
        static_cast<double>((count + 2) * wl.size()) * sizeof(Real));
  });
  return overlapped ? rt.allreduce_sum_vec_overlapped(partial)
                    : rt.allreduce_sum_vec(partial);
}

/// Depth-1 pipelined cycles (OrthoMethod::kPipelined). Entered after the
/// initial-residual bookkeeping of gmres_solve; carries the same restart
/// structure and Givens machinery, but each iteration's fused reduction
/// is overlapped with the next SpMV + preconditioner application on the
/// un-orthogonalized candidate. The auxiliary basis q_i = A M^-1 v_i
/// turns that early matvec into the next candidate without a second
/// operator application.
SolveStats pipelined_cycles(const linalg::ParMatrix& a,
                            const linalg::ParVector& b, linalg::ParVector& x,
                            Preconditioner& m, const GmresOptions& opts,
                            Real target, SolveStats stats) {
  par::Runtime& rt = a.runtime();
  const int restart = opts.restart;

  linalg::ParVector r(rt, a.rows());
  linalg::ParVector w(rt, a.rows());
  linalg::ParVector z(rt, a.rows());
  linalg::ParVector t(rt, a.rows());
  linalg::ParVector tq(rt, a.rows());

  std::vector<linalg::ParVector> v;  // Krylov basis
  std::vector<linalg::ParVector> q;  // q_i = A M^-1 v_i
  std::vector<std::vector<Real>> h;
  std::vector<Real> cs(static_cast<std::size_t>(restart) + 1);
  std::vector<Real> sn(static_cast<std::size_t>(restart) + 1);
  std::vector<Real> g(static_cast<std::size_t>(restart) + 1);

  while (stats.iterations < opts.max_iters) {
    a.residual(b, x, r);
    Real beta = r.norm2();
    stats.final_residual = beta;
    if (beta <= target) {
      stats.converged = true;
      return stats;
    }
    v.clear();
    q.clear();
    h.assign(static_cast<std::size_t>(restart),
             std::vector<Real>(static_cast<std::size_t>(restart) + 1, 0.0));
    v.emplace_back(rt, a.rows());
    v[0].copy_from(r);
    v[0].scale(1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;
    // Prime the pipeline: q_0 = A M^-1 v_0 (the only per-cycle operator
    // application outside the overlapped iteration body).
    m.apply(v[0], z);
    q.emplace_back(rt, a.rows());
    a.matvec(z, q[0]);
    // Running amplification of q-recurrence rounding error this cycle
    // (see GmresOptions::pipeline_drift_limit).
    double drift = 1.0;

    int j = 0;
    for (; j < restart && stats.iterations < opts.max_iters; ++j) {
      stats.iterations += 1;
      const auto ju = static_cast<std::size_t>(j);
      // The q recurrence amplifies rounding error by ~||q_j|| / h_last
      // per iteration — ruinous under a strong preconditioner, where the
      // candidate is nearly parallel to the basis. Every sync_period-th
      // iteration is therefore a synchronization point: the reduction
      // blocks (there is no pipeline stage to hide it behind) and
      // q_{j+1} is recomputed directly from v_{j+1}, resetting the
      // drift. Keyed off j alone so the multi-RHS solver makes the
      // identical choice lane-for-lane.
      const bool sync = opts.pipeline_sync_period > 0 &&
                        (j + 1) % opts.pipeline_sync_period == 0;
      // Initiate the fused reduction on the un-orthogonalized candidate
      // q_j, then immediately run the next pipeline stage t = A M^-1 q_j
      // — the work that hides the collective's latency.
      const auto dots = fused_dots(v, ju + 1, q[ju], /*overlapped=*/!sync);
      if (!sync) {
        m.apply(q[ju], z);
        a.matvec(z, t);
      }

      // Consume the reduction: CGS coefficients + Pythagorean norm.
      auto& hj = h[ju];
      w.copy_from(q[ju]);
      if (!sync) tq.copy_from(t);
      double h_norm2 = 0;
      for (std::size_t i = 0; i < ju + 1; ++i) {
        hj[i] = dots[i];
        h_norm2 += dots[i] * dots[i];
        w.axpy(-hj[i], v[i]);
        if (!sync) tq.axpy(-hj[i], q[i]);
      }
      const double w_norm2 = dots[ju + 1];
      double corrected = w_norm2 - h_norm2;
      if (!(corrected > 0.5 * w_norm2)) {
        // Rutishauser fallback: one *blocking* reduction, folded into h
        // and into the q recurrence so both bases stay consistent.
        const auto dots2 = fused_dots(v, ju + 1, w);
        double c_norm2 = 0;
        for (std::size_t i = 0; i < ju + 1; ++i) {
          const double c = dots2[i];
          hj[i] += c;
          c_norm2 += c * c;
          w.axpy(-c, v[i]);
          if (!sync) tq.axpy(-c, q[i]);
        }
        const double w_norm2_2 = dots2[ju + 1];
        corrected = w_norm2_2 - c_norm2;
        hj[ju + 1] = corrected > 1e-4 * w_norm2_2 ? std::sqrt(corrected)
                                                  : w.norm2();
      } else {
        hj[ju + 1] = std::sqrt(corrected);
      }

      const Real hlast = hj[ju + 1];
      // Drift bookkeeping: this iteration multiplied any error already
      // in the q basis by ~||q_j||/h_last. Resync once the running
      // product threatens the usable precision.
      const double amp =
          hlast > 0.0 ? std::sqrt(std::max(w_norm2, 0.0)) / hlast : 0.0;
      drift *= std::max(amp, 1.0);
      const bool resync = sync || drift > opts.pipeline_drift_limit;
      if (resync) drift = 1.0;
      if (hlast > 0.0) {
        v.emplace_back(rt, a.rows());
        v.back().copy_from(w);
        v.back().scale(1.0 / hlast);
        q.emplace_back(rt, a.rows());
        if (resync) {
          // Synchronization point (periodic or drift-triggered):
          // recompute q_{j+1} = A M^-1 v_{j+1} directly, discarding
          // accumulated recurrence drift.
          m.apply(v.back(), z);
          a.matvec(z, q.back());
        } else {
          // q_{j+1} = A M^-1 v_{j+1} by linearity: same combination of
          // the already-computed t and the q basis — no second matvec.
          q.back().copy_from(tq);
          q.back().scale(1.0 / hlast);
        }
      }

      for (std::int64_t i = 0; i < j; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        const Real tg = cs[iu] * hj[iu] + sn[iu] * hj[iu + 1];
        hj[iu + 1] = -sn[iu] * hj[iu] + cs[iu] * hj[iu + 1];
        hj[iu] = tg;
      }
      const Real denom = std::hypot(hj[ju], hlast);
      if (denom == 0.0) {
        ++j;
        break;
      }
      cs[ju] = hj[ju] / denom;
      sn[ju] = hlast / denom;
      hj[ju] = denom;
      hj[ju + 1] = 0.0;
      g[ju + 1] = -sn[ju] * g[ju];
      g[ju] = cs[ju] * g[ju];

      stats.final_residual = std::abs(g[ju + 1]);
      if (opts.residual_trace) {
        opts.residual_trace->push_back(stats.final_residual);
      }
      if (stats.final_residual <= target || hlast == 0.0) {
        ++j;
        break;
      }
    }

    std::vector<Real> y(static_cast<std::size_t>(j), 0.0);
    for (std::int64_t i = j - 1; i >= 0; --i) {
      Real acc = g[static_cast<std::size_t>(i)];
      for (std::int64_t k = i + 1; k < j; ++k) {
        acc -= h[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      y[static_cast<std::size_t>(i)] =
          acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    w.fill(0.0);
    for (std::int64_t i = 0; i < j; ++i) {
      w.axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)]);
    }
    m.apply(w, z);
    x.axpy(1.0, z);

    if (stats.final_residual <= target) {
      a.residual(b, x, r);
      stats.final_residual = r.norm2();
      if (stats.final_residual <= 1.5 * std::max(target, Real{1e-300})) {
        stats.converged = true;
        return stats;
      }
    }
  }
  return stats;
}

}  // namespace

SolveStats gmres_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                       linalg::ParVector& x, Preconditioner& m,
                       const GmresOptions& opts) {
  par::Runtime& rt = a.runtime();
  const int restart = opts.restart;
  SolveStats stats;

  linalg::ParVector r(rt, a.rows());
  linalg::ParVector w(rt, a.rows());
  linalg::ParVector z(rt, a.rows());

  if (opts.residual_trace) opts.residual_trace->clear();

  // Convergence target follows hypre's convention: relative to ||b||.
  const Real bnorm = b.norm2();
  a.residual(b, x, r);
  Real beta = r.norm2();
  stats.initial_residual = beta;
  stats.final_residual = beta;
  const Real target =
      std::max(opts.rel_tol * (bnorm > 0.0 ? bnorm : beta), opts.abs_tol);
  if (beta <= target || beta == 0.0) {
    stats.converged = true;
    return stats;
  }

  if (opts.ortho == OrthoMethod::kPipelined) {
    return pipelined_cycles(a, b, x, m, opts, target, stats);
  }

  std::vector<linalg::ParVector> v;  // Krylov basis
  // Hessenberg (column-major by iteration), Givens rotations, rhs.
  std::vector<std::vector<Real>> h;
  std::vector<Real> cs(static_cast<std::size_t>(restart) + 1);
  std::vector<Real> sn(static_cast<std::size_t>(restart) + 1);
  std::vector<Real> g(static_cast<std::size_t>(restart) + 1);

  while (stats.iterations < opts.max_iters) {
    // (Re)start.
    a.residual(b, x, r);
    beta = r.norm2();
    stats.final_residual = beta;
    if (beta <= target) {
      stats.converged = true;
      return stats;
    }
    v.clear();
    h.assign(static_cast<std::size_t>(restart),
             std::vector<Real>(static_cast<std::size_t>(restart) + 1, 0.0));
    v.emplace_back(rt, a.rows());
    v[0].copy_from(r);
    v[0].scale(1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < restart && stats.iterations < opts.max_iters; ++j) {
      stats.iterations += 1;
      // w = A M^-1 v_j.
      m.apply(v[static_cast<std::size_t>(j)], z);
      a.matvec(z, w);

      auto& hj = h[static_cast<std::size_t>(j)];
      if (opts.ortho == OrthoMethod::kMgs) {
        // One reduction per projection + one for the norm.
        for (std::size_t i = 0; i < static_cast<std::size_t>(j) + 1; ++i) {
          hj[i] = w.dot(v[i]);
          w.axpy(-hj[i], v[i]);
        }
        hj[static_cast<std::size_t>(j) + 1] = w.norm2();
      } else {
        // One fused reduction: [V^T w ; ||w||^2].
        const auto dots = fused_dots(v, static_cast<std::size_t>(j) + 1, w);
        double h_norm2 = 0;
        for (std::size_t i = 0; i < static_cast<std::size_t>(j) + 1; ++i) {
          hj[i] = dots[i];
          h_norm2 += dots[i] * dots[i];
          w.axpy(-hj[i], v[i]);
        }
        const double w_norm2 = dots[static_cast<std::size_t>(j) + 1];
        double corrected = w_norm2 - h_norm2;
        // The Pythagorean identity ||w - V h||^2 = ||w||^2 - ||h||^2 only
        // holds for an orthonormal V. A single classical Gram-Schmidt pass
        // loses orthogonality exactly when the projections dominate (e.g.
        // under a strong preconditioner the new Krylov direction is tiny),
        // and a corrupted h stalls the Givens residual estimate above the
        // target while the true residual keeps falling. Rutishauser's
        // "twice is enough" criterion: if the pass removed more than half
        // of ||w||^2, reorthogonalize with a second fused reduction.
        if (!(corrected > 0.5 * w_norm2)) {
          const auto dots2 =
              fused_dots(v, static_cast<std::size_t>(j) + 1, w);
          double c_norm2 = 0;
          for (std::size_t i = 0; i < static_cast<std::size_t>(j) + 1; ++i) {
            const double c = dots2[i];
            hj[i] += c;
            c_norm2 += c * c;
            w.axpy(-c, v[i]);
          }
          // The second pass removes only O(eps)-sized components, so its
          // own Pythagorean update is reliable unless w vanished entirely.
          const double w_norm2_2 = dots2[static_cast<std::size_t>(j) + 1];
          corrected = w_norm2_2 - c_norm2;
          if (corrected > 1e-4 * w_norm2_2) {
            hj[static_cast<std::size_t>(j) + 1] = std::sqrt(corrected);
          } else {
            // Happy breakdown / full cancellation: take the explicit norm.
            hj[static_cast<std::size_t>(j) + 1] = w.norm2();
          }
        } else {
          hj[static_cast<std::size_t>(j) + 1] = std::sqrt(corrected);
        }
      }

      const Real hlast = hj[static_cast<std::size_t>(j) + 1];
      if (hlast > 0.0) {
        v.emplace_back(rt, a.rows());
        v.back().copy_from(w);
        v.back().scale(1.0 / hlast);
      }

      // Apply accumulated Givens rotations to the new column.
      for (std::int64_t i = 0; i < j; ++i) {
        const Real t = cs[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i)] +
                       sn[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i) + 1];
        hj[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i) + 1];
        hj[static_cast<std::size_t>(i)] = t;
      }
      const Real denom = std::hypot(hj[static_cast<std::size_t>(j)], hlast);
      if (denom == 0.0) {
        ++j;
        break;  // exact solution reached
      }
      cs[static_cast<std::size_t>(j)] = hj[static_cast<std::size_t>(j)] / denom;
      sn[static_cast<std::size_t>(j)] = hlast / denom;
      hj[static_cast<std::size_t>(j)] = denom;
      hj[static_cast<std::size_t>(j) + 1] = 0.0;
      g[static_cast<std::size_t>(j) + 1] = -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];

      stats.final_residual = std::abs(g[static_cast<std::size_t>(j) + 1]);
      if (opts.residual_trace) {
        opts.residual_trace->push_back(stats.final_residual);
      }
      if (stats.final_residual <= target || hlast == 0.0) {
        ++j;
        break;
      }
    }

    // Back-substitute y and update x += M^-1 (V y).
    std::vector<Real> y(static_cast<std::size_t>(j), 0.0);
    for (std::int64_t i = j - 1; i >= 0; --i) {
      Real acc = g[static_cast<std::size_t>(i)];
      for (std::int64_t k = i + 1; k < j; ++k) {
        acc -= h[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      y[static_cast<std::size_t>(i)] =
          acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    w.fill(0.0);
    for (std::int64_t i = 0; i < j; ++i) {
      w.axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)]);
    }
    m.apply(w, z);
    x.axpy(1.0, z);

    if (stats.final_residual <= target) {
      // Confirm with a true residual before declaring victory.
      a.residual(b, x, r);
      stats.final_residual = r.norm2();
      if (stats.final_residual <= 1.5 * std::max(target, Real{1e-300})) {
        stats.converged = true;
        return stats;
      }
    }
  }
  return stats;
}

}  // namespace exw::solver
