#include "solver/gmres.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace exw::solver {

namespace {

/// Per-rank partial dots of w against v[0..count), plus ||w||^2, fused
/// into ONE allreduce — the kernel of the one-reduce orthogonalization.
std::vector<double> fused_dots(const std::vector<linalg::ParVector>& v,
                               std::size_t count, const linalg::ParVector& w) {
  par::Runtime& rt = w.runtime();
  const int nranks = w.nranks();
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(nranks),
      std::vector<double>(count + 1, 0.0));
  rt.parallel_for_ranks([&](RankId r) {
    const auto& wl = w.local(r);
    auto& p = partial[static_cast<std::size_t>(r)];
    for (std::size_t j = 0; j < count; ++j) {
      const auto& vl = v[j].local(r);
      double s = 0;
      for (std::size_t i = 0; i < wl.size(); ++i) {
        s += vl[i] * wl[i];
      }
      p[j] = s;
    }
    double s = 0;
    for (double x : wl) s += x * x;
    p[count] = s;
    rt.tracer().kernel(
        r, 2.0 * static_cast<double>((count + 1) * wl.size()),
        static_cast<double>((count + 2) * wl.size()) * sizeof(Real));
  });
  return rt.allreduce_sum_vec(partial);
}

}  // namespace

SolveStats gmres_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                       linalg::ParVector& x, Preconditioner& m,
                       const GmresOptions& opts) {
  par::Runtime& rt = a.runtime();
  const int restart = opts.restart;
  SolveStats stats;

  linalg::ParVector r(rt, a.rows());
  linalg::ParVector w(rt, a.rows());
  linalg::ParVector z(rt, a.rows());

  // Convergence target follows hypre's convention: relative to ||b||.
  const Real bnorm = b.norm2();
  a.residual(b, x, r);
  Real beta = r.norm2();
  stats.initial_residual = beta;
  stats.final_residual = beta;
  const Real target =
      std::max(opts.rel_tol * (bnorm > 0.0 ? bnorm : beta), opts.abs_tol);
  if (beta <= target || beta == 0.0) {
    stats.converged = true;
    return stats;
  }

  std::vector<linalg::ParVector> v;  // Krylov basis
  // Hessenberg (column-major by iteration), Givens rotations, rhs.
  std::vector<std::vector<Real>> h;
  std::vector<Real> cs(static_cast<std::size_t>(restart) + 1);
  std::vector<Real> sn(static_cast<std::size_t>(restart) + 1);
  std::vector<Real> g(static_cast<std::size_t>(restart) + 1);

  while (stats.iterations < opts.max_iters) {
    // (Re)start.
    a.residual(b, x, r);
    beta = r.norm2();
    stats.final_residual = beta;
    if (beta <= target) {
      stats.converged = true;
      return stats;
    }
    v.clear();
    h.assign(static_cast<std::size_t>(restart),
             std::vector<Real>(static_cast<std::size_t>(restart) + 1, 0.0));
    v.emplace_back(rt, a.rows());
    v[0].copy_from(r);
    v[0].scale(1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < restart && stats.iterations < opts.max_iters; ++j) {
      stats.iterations += 1;
      // w = A M^-1 v_j.
      m.apply(v[static_cast<std::size_t>(j)], z);
      a.matvec(z, w);

      auto& hj = h[static_cast<std::size_t>(j)];
      if (opts.ortho == OrthoMethod::kMgs) {
        // One reduction per projection + one for the norm.
        for (std::size_t i = 0; i < static_cast<std::size_t>(j) + 1; ++i) {
          hj[i] = w.dot(v[i]);
          w.axpy(-hj[i], v[i]);
        }
        hj[static_cast<std::size_t>(j) + 1] = w.norm2();
      } else {
        // One fused reduction: [V^T w ; ||w||^2].
        const auto dots = fused_dots(v, static_cast<std::size_t>(j) + 1, w);
        double h_norm2 = 0;
        for (std::size_t i = 0; i < static_cast<std::size_t>(j) + 1; ++i) {
          hj[i] = dots[i];
          h_norm2 += dots[i] * dots[i];
          w.axpy(-hj[i], v[i]);
        }
        const double w_norm2 = dots[static_cast<std::size_t>(j) + 1];
        double corrected = w_norm2 - h_norm2;
        // The Pythagorean identity ||w - V h||^2 = ||w||^2 - ||h||^2 only
        // holds for an orthonormal V. A single classical Gram-Schmidt pass
        // loses orthogonality exactly when the projections dominate (e.g.
        // under a strong preconditioner the new Krylov direction is tiny),
        // and a corrupted h stalls the Givens residual estimate above the
        // target while the true residual keeps falling. Rutishauser's
        // "twice is enough" criterion: if the pass removed more than half
        // of ||w||^2, reorthogonalize with a second fused reduction.
        if (!(corrected > 0.5 * w_norm2)) {
          const auto dots2 =
              fused_dots(v, static_cast<std::size_t>(j) + 1, w);
          double c_norm2 = 0;
          for (std::size_t i = 0; i < static_cast<std::size_t>(j) + 1; ++i) {
            const double c = dots2[i];
            hj[i] += c;
            c_norm2 += c * c;
            w.axpy(-c, v[i]);
          }
          // The second pass removes only O(eps)-sized components, so its
          // own Pythagorean update is reliable unless w vanished entirely.
          const double w_norm2_2 = dots2[static_cast<std::size_t>(j) + 1];
          corrected = w_norm2_2 - c_norm2;
          if (corrected > 1e-4 * w_norm2_2) {
            hj[static_cast<std::size_t>(j) + 1] = std::sqrt(corrected);
          } else {
            // Happy breakdown / full cancellation: take the explicit norm.
            hj[static_cast<std::size_t>(j) + 1] = w.norm2();
          }
        } else {
          hj[static_cast<std::size_t>(j) + 1] = std::sqrt(corrected);
        }
      }

      const Real hlast = hj[static_cast<std::size_t>(j) + 1];
      if (hlast > 0.0) {
        v.emplace_back(rt, a.rows());
        v.back().copy_from(w);
        v.back().scale(1.0 / hlast);
      }

      // Apply accumulated Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const Real t = cs[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i)] +
                       sn[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i) + 1];
        hj[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * hj[static_cast<std::size_t>(i) + 1];
        hj[static_cast<std::size_t>(i)] = t;
      }
      const Real denom = std::hypot(hj[static_cast<std::size_t>(j)], hlast);
      if (denom == 0.0) {
        ++j;
        break;  // exact solution reached
      }
      cs[static_cast<std::size_t>(j)] = hj[static_cast<std::size_t>(j)] / denom;
      sn[static_cast<std::size_t>(j)] = hlast / denom;
      hj[static_cast<std::size_t>(j)] = denom;
      hj[static_cast<std::size_t>(j) + 1] = 0.0;
      g[static_cast<std::size_t>(j) + 1] = -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] = cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];

      stats.final_residual = std::abs(g[static_cast<std::size_t>(j) + 1]);
      if (stats.final_residual <= target || hlast == 0.0) {
        ++j;
        break;
      }
    }

    // Back-substitute y and update x += M^-1 (V y).
    std::vector<Real> y(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      Real acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= h[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      y[static_cast<std::size_t>(i)] =
          acc / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    w.fill(0.0);
    for (int i = 0; i < j; ++i) {
      w.axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)]);
    }
    m.apply(w, z);
    x.axpy(1.0, z);

    if (stats.final_residual <= target) {
      // Confirm with a true residual before declaring victory.
      a.residual(b, x, r);
      stats.final_residual = r.norm2();
      if (stats.final_residual <= 1.5 * std::max(target, Real{1e-300})) {
        stats.converged = true;
        return stats;
      }
    }
  }
  return stats;
}

}  // namespace exw::solver
