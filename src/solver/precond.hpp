#pragma once
/// \file precond.hpp
/// Preconditioner interface and the two preconditioners of the paper:
/// one AMG V-cycle for the pressure-Poisson system, and the compact
/// two-stage symmetric Gauss-Seidel (SGS2) for momentum and scalar
/// transport ("two outer and two inner iterations often leads to rapid
/// convergence in less than five preconditioned GMRES iterations", §4.2).

#include <memory>

#include "amg/hierarchy.hpp"
#include "amg/smoothers.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "perf/purity.hpp"

namespace exw::solver {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// z = M^-1 r.
  virtual void apply(const linalg::ParVector& r, linalg::ParVector& z) = 0;

  /// Lane-wise z_c = M^-1 r_c. The default routes every lane through
  /// apply() via scratch vectors — correct for any preconditioner;
  /// implementations with fused kernels (SmootherPrecond) override it.
  virtual void apply_multi(const linalg::ParMultiVector& r,
                           linalg::ParMultiVector& z) {
    linalg::ParVector rl(r.runtime(), r.rows());
    linalg::ParVector zl(r.runtime(), r.rows());
    for (std::size_t c = 0; c < r.ncomp(); ++c) {
      r.extract_lane(c, rl);
      apply(rl, zl);
      z.set_lane(c, zl);
    }
  }
};

/// No preconditioning (z = r).
class IdentityPrecond final : public Preconditioner {
 public:
  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    z.copy_from(r);
  }
  void apply_multi(const linalg::ParMultiVector& r,
                   linalg::ParMultiVector& z) override {
    z.copy_from(r);
  }
};

/// One AMG V-cycle from a zero initial guess. Owns its hierarchy when
/// built from a matrix, or borrows one managed elsewhere (the
/// amg::HierarchyCache kept across Picard solves by cfd::Simulation).
class AmgPrecond final : public Preconditioner {
 public:
  AmgPrecond(const linalg::ParCsr& a, const amg::AmgConfig& cfg)
      : owned_(std::make_unique<amg::AmgHierarchy>(a, cfg)),
        h_(owned_.get()) {}

  /// Borrow an externally owned hierarchy (must outlive the precond).
  explicit AmgPrecond(amg::AmgHierarchy& h) : h_(&h) {}

  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    z.fill(0.0);
    h_->vcycle(r, z);
  }

  const amg::AmgHierarchy& hierarchy() const { return *h_; }

 private:
  std::unique_ptr<amg::AmgHierarchy> owned_;
  amg::AmgHierarchy* h_ = nullptr;
};

/// `outer` sweeps of a relaxation scheme from a zero initial guess
/// (SGS2 with outer=2 is the paper's momentum preconditioner).
///
/// Construction streams the matrix once to build the L/D/U scratch
/// state (charged as a setup kernel per rank); when a later solve
/// reuses the same sparsity with new values, refresh_values() rebinds
/// the split in place — one value-only streaming pass, roughly a third
/// of the setup traffic and no allocation — instead of rebuilding.
class SmootherPrecond final : public Preconditioner {
 public:
  SmootherPrecond(const linalg::ParCsr& a, amg::SmootherType type,
                  int outer_sweeps, int inner_sweeps)
      : a_(&a), smoother_(a, type, inner_sweeps, /*jacobi_weight=*/1.0),
        outer_(outer_sweeps) {
    charge(/*rebuild=*/true);
  }

  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    smoother_.apply_zero(r, z, outer_);
  }

  void apply_multi(const linalg::ParMultiVector& r,
                   linalg::ParMultiVector& z) override {
    smoother_.apply_zero_multi(r, z, outer_);
  }

  /// Re-read the matrix's current values into the existing L/D/U split
  /// (structure must be unchanged — throws otherwise).
  EXW_WARM_FN void refresh_values() {
    EXW_PURITY_REGION("smoother-precond-rebind");
    smoother_.refresh_values();
    charge(/*rebuild=*/false);
  }

 private:
  void charge(bool rebuild) {
    // Build streams structure (cols twice: classify + store) and values
    // into the split plus the dinv/l1 pass; a value rebind re-walks the
    // structure once but only rewrites values and the inverse diagonals.
    auto& rt = a_->runtime();
    rt.parallel_for_ranks([&](RankId r) {
      const auto& b = a_->block(r);
      const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
      const auto n = static_cast<double>(b.diag.nrows().value());
      if (rebuild) {
        rt.tracer().kernel_split(r, nnz, 2.0 * sizeof(Real) * nnz +
                                            3.0 * sizeof(Real) * n,
                                 2.0 * sizeof(LocalIndex) * nnz);
      } else {
        rt.tracer().kernel_split(r, nnz, 2.0 * sizeof(Real) * nnz +
                                            2.0 * sizeof(Real) * n,
                                 sizeof(LocalIndex) * nnz);
      }
    });
  }

  const linalg::ParCsr* a_;
  amg::Smoother smoother_;
  int outer_;
};

}  // namespace exw::solver
