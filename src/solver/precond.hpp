#pragma once
/// \file precond.hpp
/// Preconditioner interface and the two preconditioners of the paper:
/// one AMG V-cycle for the pressure-Poisson system, and the compact
/// two-stage symmetric Gauss-Seidel (SGS2) for momentum and scalar
/// transport ("two outer and two inner iterations often leads to rapid
/// convergence in less than five preconditioned GMRES iterations", §4.2).

#include <memory>

#include "amg/hierarchy.hpp"
#include "amg/smoothers.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "perf/purity.hpp"
#include "perf/tracer.hpp"

namespace exw::solver {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// z = M^-1 r.
  virtual void apply(const linalg::ParVector& r, linalg::ParVector& z) = 0;

  /// Lane-wise z_c = M^-1 r_c. The default routes every lane through
  /// apply() via scratch vectors — correct for any preconditioner;
  /// implementations with fused kernels (SmootherPrecond) override it.
  virtual void apply_multi(const linalg::ParMultiVector& r,
                           linalg::ParMultiVector& z) {
    linalg::ParVector rl(r.runtime(), r.rows());
    linalg::ParVector zl(r.runtime(), r.rows());
    for (std::size_t c = 0; c < r.ncomp(); ++c) {
      r.extract_lane(c, rl);
      apply(rl, zl);
      z.set_lane(c, zl);
    }
  }
};

/// No preconditioning (z = r).
class IdentityPrecond final : public Preconditioner {
 public:
  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    z.copy_from(r);
  }
  void apply_multi(const linalg::ParMultiVector& r,
                   linalg::ParMultiVector& z) override {
    z.copy_from(r);
  }
};

/// One AMG V-cycle from a zero initial guess. Owns its hierarchy when
/// built from a matrix, or borrows one managed elsewhere (the
/// amg::HierarchyCache kept across Picard solves by cfd::Simulation).
///
/// With a mixed-precision hierarchy (AmgConfig::precision == kF32) the
/// precision boundary lives here, iterative-refinement style: the FP64
/// residual demotes into an FP32 scratch once per application, the whole
/// V-cycle runs on FP32 storage, and the correction promotes back into
/// the caller's FP64 vector. The outer Krylov space never sees rounded
/// storage. Work inside apply() lands in a nested "precond" phase so
/// benches can split preconditioner traffic from the outer solve.
class AmgPrecond final : public Preconditioner {
 public:
  AmgPrecond(const linalg::ParCsr& a, const amg::AmgConfig& cfg)
      : owned_(std::make_unique<amg::AmgHierarchy>(a, cfg)),
        h_(owned_.get()) {
    init_mixed_scratch();
  }

  /// Borrow an externally owned hierarchy (must outlive the precond).
  explicit AmgPrecond(amg::AmgHierarchy& h) : h_(&h) { init_mixed_scratch(); }

  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    perf::PhaseScope ph(r.runtime().tracer(), "precond");
    if (rb_) {
      // FP64 -> FP32 demote at the boundary (charged by copy_from), FP32
      // V-cycle, FP32 -> FP64 promote of the correction (lossless).
      rb_->copy_from(r);
      zb_->fill(0.0);
      h_->vcycle(*rb_, *zb_);
      z.copy_from(*zb_);
      return;
    }
    z.fill(0.0);
    h_->vcycle(r, z);
  }

  const amg::AmgHierarchy& hierarchy() const { return *h_; }

 private:
  void init_mixed_scratch() {
    if (h_->config().precision != Precision::kF32) {
      return;
    }
    const auto& fine = h_->level(0).a;
    rb_ = std::make_unique<linalg::ParVector>(fine.runtime(), fine.rows());
    zb_ = std::make_unique<linalg::ParVector>(fine.runtime(), fine.rows());
    rb_->set_value_precision(Precision::kF32);
    zb_->set_value_precision(Precision::kF32);
  }

  std::unique_ptr<amg::AmgHierarchy> owned_;
  amg::AmgHierarchy* h_ = nullptr;
  /// FP32 boundary scratch (residual in, correction out); null in the
  /// full-FP64 configuration.
  std::unique_ptr<linalg::ParVector> rb_, zb_;
};

/// `outer` sweeps of a relaxation scheme from a zero initial guess
/// (SGS2 with outer=2 is the paper's momentum preconditioner).
///
/// Construction streams the matrix once to build the L/D/U scratch
/// state (charged as a setup kernel per rank); when a later solve
/// reuses the same sparsity with new values, refresh_values() rebinds
/// the split in place — one value-only streaming pass, roughly a third
/// of the setup traffic and no allocation — instead of rebuilding.
/// With `precision == kF32` the precond owns a demoted FP32 twin of the
/// matrix: the smoother is built on (and refreshed from) the twin, its
/// scratch streams price at 4 bytes/value, and apply() demotes/promotes
/// at the boundary exactly like AmgPrecond. The caller's matrix stays
/// FP64 — it is still the operator of the outer Krylov solve.
class SmootherPrecond final : public Preconditioner {
 public:
  SmootherPrecond(const linalg::ParCsr& a, amg::SmootherType type,
                  int outer_sweeps, int inner_sweeps,
                  Precision precision = Precision::kF64)
      : a_(&a), prec_(precision), a32_(make_twin(a, precision)),
        smoother_(precision == Precision::kF32 ? a32_ : a, type, inner_sweeps,
                  /*jacobi_weight=*/1.0),
        outer_(outer_sweeps) {
    if (prec_ == Precision::kF32) {
      rb_ = std::make_unique<linalg::ParVector>(a.runtime(), a.rows());
      zb_ = std::make_unique<linalg::ParVector>(a.runtime(), a.rows());
      rb_->set_value_precision(Precision::kF32);
      zb_->set_value_precision(Precision::kF32);
    }
    charge(/*rebuild=*/true);
  }

  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    perf::PhaseScope ph(a_->runtime().tracer(), "precond");
    if (rb_) {
      rb_->copy_from(r);
      smoother_.apply_zero(*rb_, *zb_, outer_);
      z.copy_from(*zb_);
      return;
    }
    smoother_.apply_zero(r, z, outer_);
  }

  void apply_multi(const linalg::ParMultiVector& r,
                   linalg::ParMultiVector& z) override {
    perf::PhaseScope ph(a_->runtime().tracer(), "precond");
    if (prec_ == Precision::kF32) {
      if (!rbm_ || rbm_->ncomp() != r.ncomp()) {
        rbm_ = std::make_unique<linalg::ParMultiVector>(a_->runtime(),
                                                        a_->rows(), r.ncomp());
        zbm_ = std::make_unique<linalg::ParMultiVector>(a_->runtime(),
                                                        a_->rows(), r.ncomp());
        rbm_->set_value_precision(Precision::kF32);
        zbm_->set_value_precision(Precision::kF32);
      }
      rbm_->copy_from(r);
      smoother_.apply_zero_multi(*rbm_, *zbm_, outer_);
      z.copy_from(*zbm_);
      return;
    }
    smoother_.apply_zero_multi(r, z, outer_);
  }

  /// Re-read the matrix's current values into the existing L/D/U split
  /// (structure must be unchanged — throws otherwise). In mixed mode the
  /// FP32 twin re-demotes from the refreshed FP64 matrix first.
  EXW_WARM_FN void refresh_values() {
    EXW_PURITY_REGION("smoother-precond-rebind");
    if (prec_ == Precision::kF32) {
      a32_.copy_demoted_values_from(*a_);
    }
    smoother_.refresh_values();
    charge(/*rebuild=*/false);
  }

 private:
  static linalg::ParCsr make_twin(const linalg::ParCsr& a, Precision p) {
    if (p != Precision::kF32) {
      return {};
    }
    linalg::ParCsr twin = a;
    twin.demote_values();
    return twin;
  }

  void charge(bool rebuild) {
    // Build streams structure (cols twice: classify + store) and values
    // into the split plus the dinv/l1 pass; a value rebind re-walks the
    // structure once but only rewrites values and the inverse diagonals.
    // Value streams price at the smoother matrix's storage precision.
    auto& rt = a_->runtime();
    const Precision pr = prec_;
    const double vb = bytes_of(pr);
    rt.parallel_for_ranks([&](RankId r) {
      const auto& b = a_->block(r);
      const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
      const auto n = static_cast<double>(b.diag.nrows().value());
      double f64 = 0, f32 = 0;
      if (rebuild) {
        split_value_bytes(pr, 2.0 * vb * nnz + 3.0 * vb * n, f64, f32);
        rt.tracer().kernel_split_prec(r, nnz, f64, f32,
                                      2.0 * sizeof(LocalIndex) * nnz);
      } else {
        split_value_bytes(pr, 2.0 * vb * nnz + 2.0 * vb * n, f64, f32);
        rt.tracer().kernel_split_prec(r, nnz, f64, f32,
                                      sizeof(LocalIndex) * nnz);
      }
    });
  }

  const linalg::ParCsr* a_;
  Precision prec_ = Precision::kF64;
  /// Demoted twin (empty in the FP64 configuration); must be declared
  /// before the smoother, which may bind to it.
  linalg::ParCsr a32_;
  amg::Smoother smoother_;
  int outer_;
  std::unique_ptr<linalg::ParVector> rb_, zb_;
  std::unique_ptr<linalg::ParMultiVector> rbm_, zbm_;
};

}  // namespace exw::solver
