#pragma once
/// \file precond.hpp
/// Preconditioner interface and the two preconditioners of the paper:
/// one AMG V-cycle for the pressure-Poisson system, and the compact
/// two-stage symmetric Gauss-Seidel (SGS2) for momentum and scalar
/// transport ("two outer and two inner iterations often leads to rapid
/// convergence in less than five preconditioned GMRES iterations", §4.2).

#include <memory>

#include "amg/hierarchy.hpp"
#include "amg/smoothers.hpp"
#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"

namespace exw::solver {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  /// z = M^-1 r.
  virtual void apply(const linalg::ParVector& r, linalg::ParVector& z) = 0;
};

/// No preconditioning (z = r).
class IdentityPrecond final : public Preconditioner {
 public:
  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    z.copy_from(r);
  }
};

/// One AMG V-cycle from a zero initial guess. Owns its hierarchy when
/// built from a matrix, or borrows one managed elsewhere (the
/// amg::HierarchyCache kept across Picard solves by cfd::Simulation).
class AmgPrecond final : public Preconditioner {
 public:
  AmgPrecond(const linalg::ParCsr& a, const amg::AmgConfig& cfg)
      : owned_(std::make_unique<amg::AmgHierarchy>(a, cfg)),
        h_(owned_.get()) {}

  /// Borrow an externally owned hierarchy (must outlive the precond).
  explicit AmgPrecond(amg::AmgHierarchy& h) : h_(&h) {}

  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    z.fill(0.0);
    h_->vcycle(r, z);
  }

  const amg::AmgHierarchy& hierarchy() const { return *h_; }

 private:
  std::unique_ptr<amg::AmgHierarchy> owned_;
  amg::AmgHierarchy* h_ = nullptr;
};

/// `outer` sweeps of a relaxation scheme from a zero initial guess
/// (SGS2 with outer=2 is the paper's momentum preconditioner).
class SmootherPrecond final : public Preconditioner {
 public:
  SmootherPrecond(const linalg::ParCsr& a, amg::SmootherType type,
                  int outer_sweeps, int inner_sweeps)
      : smoother_(a, type, inner_sweeps, /*jacobi_weight=*/1.0),
        outer_(outer_sweeps) {}

  void apply(const linalg::ParVector& r, linalg::ParVector& z) override {
    smoother_.apply_zero(r, z, outer_);
  }

 private:
  amg::Smoother smoother_;
  int outer_;
};

}  // namespace exw::solver
