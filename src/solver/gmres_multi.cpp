/// \file gmres_multi.cpp
/// Fused multi-RHS GMRES (the solver half of the fused momentum path).
///
/// All lanes march in lockstep through one shared restart cycle: every
/// inner iteration runs ONE fused preconditioner application, ONE fused
/// SpMV, and ONE batched orthogonalization allreduce carrying every
/// active lane's [V^T w ; ||w||^2] payload. Per-lane Hessenberg/Givens
/// state is host-side scalar work, exactly the scalar algorithm's.
///
/// Lane independence is the invariant everything rests on: every fused
/// kernel (spmv_multi, the SGS2 multi sweeps, the masked BLAS-1 ops)
/// computes lane c from lane c alone, and the batched reductions of
/// par::Runtime reduce element-wise in rank order — so each lane's
/// entire iterate sequence is bitwise-identical to a scalar gmres_solve
/// on that lane (pinned by test_fused across 1/2/4/8 ranks). Three
/// consequences the code leans on:
///  * Converged lanes are masked out of fused ops (never touched again —
///    even an alpha = 0 axpy could flip a -0.0) while full-width
///    scratch ops may scribble on their dead planes freely.
///  * A lane that exits the inner loop early (converged or happy
///    breakdown) runs its epilogue immediately with single-lane ops;
///    the shared scratch planes it used are fully overwritten before
///    any other lane reads them (matvec beta = 0, apply_zero).
///  * A lane whose true-residual confirmation fails waits, frozen, and
///    rejoins at the next shared restart — the same arithmetic the
///    scalar solver performs, just later in wall-clock.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "solver/gmres.hpp"

namespace exw::solver {

namespace {

enum class LaneState : std::uint8_t {
  kIterating,  ///< inside the current shared restart cycle
  kWaiting,    ///< needs a (re)start
  kDone,       ///< finished, converged or budget-exhausted
};

/// Batched one-reduce payload: for each lane in `lanes` (ascending), the
/// partial dots of its w plane against v[0..count) plus ||w||^2, all in
/// ONE allreduce. Each lane's entries are computed exactly as the scalar
/// fused_dots computes them, so the reduced values match bitwise.
std::vector<double> fused_dots_multi(
    const std::vector<linalg::ParMultiVector>& v, std::size_t count,
    const linalg::ParMultiVector& w, const std::vector<std::size_t>& lanes,
    bool overlapped = false) {
  par::Runtime& rt = w.runtime();
  const int nranks = w.nranks();
  const std::size_t seg = count + 1;
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(nranks),
      std::vector<double>(lanes.size() * seg, 0.0));
  rt.parallel_for_ranks([&](RankId r) {
    auto& p = partial[static_cast<std::size_t>(r)];
    double n = 0.0;
    for (std::size_t li = 0; li < lanes.size(); ++li) {
      const std::size_t c = lanes[li];
      const auto wl = w.lane_span(r, c);
      n = static_cast<double>(wl.size());
      for (std::size_t j = 0; j < count; ++j) {
        const auto vl = v[j].lane_span(r, c);
        double s = 0;
        for (std::size_t i = 0; i < wl.size(); ++i) {
          s += vl[i] * wl[i];
        }
        p[li * seg + j] = s;
      }
      double s = 0;
      for (double xv : wl) s += xv * xv;
      p[li * seg + count] = s;
    }
    const auto nl = static_cast<double>(lanes.size());
    rt.tracer().kernel(r, nl * 2.0 * static_cast<double>(count + 1) * n,
                       nl * static_cast<double>(count + 2) * n * sizeof(Real));
  });
  return overlapped ? rt.allreduce_sum_vec_overlapped(partial)
                    : rt.allreduce_sum_vec(partial);
}

}  // namespace

MultiSolveStats gmres_solve_multi(const linalg::ParMatrix& a,
                                  const linalg::ParMultiVector& b,
                                  linalg::ParMultiVector& x, Preconditioner& m,
                                  const GmresOptions& opts) {
  par::Runtime& rt = a.runtime();
  const std::size_t nc = x.ncomp();
  EXW_REQUIRE(b.ncomp() == nc, "gmres_solve_multi lane count mismatch");
  EXW_REQUIRE(b.global_size() == a.global_rows() &&
                  x.global_size() == a.global_cols(),
              "gmres_solve_multi shape mismatch");
  const auto restart = static_cast<std::size_t>(opts.restart);

  MultiSolveStats out;
  out.lane.assign(nc, SolveStats{});

  const bool pipe = opts.ortho == OrthoMethod::kPipelined;

  linalg::ParMultiVector r(rt, a.rows(), nc);
  linalg::ParMultiVector w(rt, a.rows(), nc);
  linalg::ParMultiVector z(rt, a.rows(), nc);
  // Pipelined auxiliary planes: t = A M^-1 q_j and the running
  // combination that becomes q_{j+1} (allocated only when used).
  linalg::ParMultiVector t;
  linalg::ParMultiVector tq;
  if (pipe) {
    t = linalg::ParMultiVector(rt, a.rows(), nc);
    tq = linalg::ParMultiVector(rt, a.rows(), nc);
  }
  // Scalar scratch for the per-lane epilogues.
  linalg::ParVector ws(rt, a.rows());
  linalg::ParVector zs(rt, a.rows());
  linalg::ParVector xs(rt, a.rows());
  linalg::ParVector bs(rt, a.rows());
  linalg::ParVector rs(rt, a.rows());

  // Per-lane convergence targets (hypre convention: relative to ||b||),
  // batched into one reduction each for ||b|| and the initial residual.
  const auto bnorms = b.norms();
  a.residual_multi(b, x, r);
  auto betas = r.norms();

  std::vector<LaneState> state(nc, LaneState::kWaiting);
  std::vector<Real> target(nc, 0.0);
  for (std::size_t c = 0; c < nc; ++c) {
    auto& s = out.lane[c];
    const Real beta = betas[c];
    s.initial_residual = beta;
    s.final_residual = beta;
    target[c] = std::max(opts.rel_tol * (bnorms[c] > 0.0 ? bnorms[c] : beta),
                         opts.abs_tol);
    if (beta <= target[c] || beta == 0.0) {
      s.converged = true;
      state[c] = LaneState::kDone;
    }
  }

  std::vector<linalg::ParMultiVector> v;  // shared Krylov basis planes
  std::vector<linalg::ParMultiVector> q;  // pipelined: q_i = A M^-1 v_i
  // Per-lane running q-recurrence error amplification (see
  // GmresOptions::pipeline_drift_limit), reset at every shared restart.
  std::vector<double> drift(nc, 1.0);
  // Per-lane Hessenberg (column-major by iteration), Givens, rhs.
  std::vector<std::vector<std::vector<Real>>> h(nc);
  std::vector<std::vector<Real>> cs(nc);
  std::vector<std::vector<Real>> sn(nc);
  std::vector<std::vector<Real>> g(nc);
  std::vector<Real> hlast(nc, 0.0);

  // Scratch masks / per-lane coefficient vectors for the fused ops.
  std::vector<std::uint8_t> mask(nc, 0);
  std::vector<Real> coef(nc, 0.0);

  auto any_state = [&](LaneState want) {
    return std::any_of(state.begin(), state.end(),
                       [want](LaneState sc) { return sc == want; });
  };

  // Exactly the scalar post-loop tail: back-substitute the lane's y,
  // x += M^-1 (V y), and — when the Givens estimate says converged —
  // confirm against a true residual before declaring victory. A lane
  // that fails the confirmation goes back to kWaiting and rejoins at
  // the next shared restart.
  auto epilogue = [&](std::size_t c, std::size_t jcols) {
    auto& s = out.lane[c];
    std::vector<Real> y(jcols, 0.0);
    for (std::size_t i = jcols; i-- > 0;) {
      Real acc = g[c][i];
      for (std::size_t k = i + 1; k < jcols; ++k) {
        acc -= h[c][k][i] * y[k];
      }
      y[i] = acc / h[c][i][i];
    }
    w.lane_fill(c, 0.0);
    for (std::size_t i = 0; i < jcols; ++i) {
      w.lane_axpy(c, y[i], v[i]);
    }
    w.extract_lane(c, ws);
    m.apply(ws, zs);
    x.extract_lane(c, xs);
    xs.axpy(1.0, zs);
    x.set_lane(c, xs);
    if (s.final_residual <= target[c]) {
      b.extract_lane(c, bs);
      a.residual(bs, xs, rs);
      s.final_residual = rs.norm2();
      if (s.final_residual <= 1.5 * std::max(target[c], Real{1e-300})) {
        s.converged = true;
        state[c] = LaneState::kDone;
        return;
      }
    }
    state[c] = LaneState::kWaiting;
  };

  while (any_state(LaneState::kWaiting)) {
    // Budget-exhausted lanes are finished (their x already holds the
    // last epilogue's update, like the scalar max_iters return).
    for (std::size_t c = 0; c < nc; ++c) {
      if (state[c] == LaneState::kWaiting &&
          out.lane[c].iterations >= opts.max_iters) {
        state[c] = LaneState::kDone;
      }
    }
    if (!any_state(LaneState::kWaiting)) break;

    // --- shared (re)start for every waiting lane ------------------------
    a.residual_multi(b, x, r);
    betas = r.norms();
    std::fill(mask.begin(), mask.end(), 0);
    std::fill(coef.begin(), coef.end(), 0.0);
    bool any_active = false;
    for (std::size_t c = 0; c < nc; ++c) {
      if (state[c] != LaneState::kWaiting) continue;
      auto& s = out.lane[c];
      const Real beta = betas[c];
      s.final_residual = beta;
      if (beta <= target[c]) {
        s.converged = true;
        state[c] = LaneState::kDone;
        continue;
      }
      state[c] = LaneState::kIterating;
      any_active = true;
      mask[c] = 1;
      coef[c] = 1.0 / beta;
      h[c].assign(restart, std::vector<Real>(restart + 1, 0.0));
      cs[c].assign(restart + 1, 0.0);
      sn[c].assign(restart + 1, 0.0);
      g[c].assign(restart + 1, 0.0);
      g[c][0] = beta;
    }
    if (!any_active) continue;
    if (v.empty()) {
      v.emplace_back(rt, a.rows(), nc);
    }
    v[0].copy_from(r);
    v[0].scale_lanes(coef, mask);
    if (pipe) {
      // Prime the pipeline: q_0 = A M^-1 v_0, fused across lanes (dead
      // planes are scribble space, exactly like the w planes below).
      if (q.empty()) {
        q.emplace_back(rt, a.rows(), nc);
      }
      m.apply_multi(v[0], z);
      a.matvec_multi(z, q[0]);
      std::fill(drift.begin(), drift.end(), 1.0);
    }

    std::size_t j = 0;
    while (j < restart && any_state(LaneState::kIterating)) {
      // Scalar loop condition: a lane out of budget exits here, runs its
      // epilogue with the columns it has, and is finalized at the top of
      // the outer loop.
      for (std::size_t c = 0; c < nc; ++c) {
        if (state[c] == LaneState::kIterating &&
            out.lane[c].iterations >= opts.max_iters) {
          epilogue(c, j);
        }
      }
      std::vector<std::size_t> act;
      for (std::size_t c = 0; c < nc; ++c) {
        if (state[c] == LaneState::kIterating) act.push_back(c);
      }
      if (act.empty()) break;
      std::fill(mask.begin(), mask.end(), 0);
      for (std::size_t c : act) {
        mask[c] = 1;
        out.lane[c].iterations += 1;
      }

      // w = A M^-1 v_j, fused across all lanes (dead planes are scribble
      // space: matvec's beta = 0 and apply_zero overwrite them fully).
      // Pipelined: the candidate IS q_j — initiate the batched fused
      // reduction on it, then run the next pipeline stage t = A M^-1 q_j
      // while the collective is in flight.
      // Synchronization point (see GmresOptions::pipeline_sync_period):
      // keyed off j alone, exactly like the scalar solver, so every lane
      // stays bitwise-identical to its scalar solve.
      const bool sync =
          pipe && opts.pipeline_sync_period > 0 &&
          (j + 1) % static_cast<std::size_t>(opts.pipeline_sync_period) == 0;
      std::vector<double> pdots;
      if (pipe) {
        pdots = fused_dots_multi(v, j + 1, q[j], act, /*overlapped=*/!sync);
        if (!sync) {
          m.apply_multi(q[j], z);
          a.matvec_multi(z, t);
          tq.copy_from(t);
        }
        w.copy_from(q[j]);
      } else {
        m.apply_multi(v[j], z);
        a.matvec_multi(z, w);
      }

      // Pipelined lanes whose reorthogonalization fallback fired this
      // iteration: their q_{j+1} is recomputed directly below instead of
      // continuing the recurrence (see the scalar solver for the
      // amplification argument). Per-lane, exactly as a scalar solve of
      // that lane would decide, preserving bitwise lane equivalence.
      std::vector<std::uint8_t> rsync(nc, 0);
      bool any_rsync = false;
      if (opts.ortho == OrthoMethod::kMgs) {
        // One batched reduction per projection + one for the norm.
        for (std::size_t i = 0; i <= j; ++i) {
          const auto dots = w.dots(v[i]);
          for (std::size_t c : act) {
            h[c][j][i] = dots[c];
            coef[c] = -dots[c];
          }
          w.axpy_lanes(coef, v[i], mask);
        }
        const auto norms = w.norms();
        for (std::size_t c : act) {
          hlast[c] = norms[c];
          h[c][j][j + 1] = norms[c];
        }
      } else {
        // One fused reduction for every active lane: [V^T w ; ||w||^2]
        // (already in flight — and consumed here — when pipelined).
        const std::size_t seg = j + 2;
        const auto dots =
            pipe ? std::move(pdots) : fused_dots_multi(v, j + 1, w, act);
        std::vector<double> w_norm2(nc, 0.0);
        std::vector<double> h_norm2(nc, 0.0);
        for (std::size_t li = 0; li < act.size(); ++li) {
          const std::size_t c = act[li];
          auto& hj = h[c][j];
          for (std::size_t i = 0; i <= j; ++i) {
            hj[i] = dots[li * seg + i];
            h_norm2[c] += hj[i] * hj[i];
          }
          w_norm2[c] = dots[li * seg + j + 1];
        }
        for (std::size_t i = 0; i <= j; ++i) {
          for (std::size_t c : act) {
            coef[c] = -h[c][j][i];
          }
          w.axpy_lanes(coef, v[i], mask);
          // The q recurrence gets the same combination so that
          // q_{j+1} = A M^-1 v_{j+1} keeps holding by linearity.
          if (pipe && !sync) tq.axpy_lanes(coef, q[i], mask);
        }
        // Rutishauser "twice is enough", per lane; lanes that trigger
        // share one second fused reduction.
        std::vector<std::size_t> reo;
        std::vector<double> corrected(nc, 0.0);
        for (std::size_t c : act) {
          corrected[c] = w_norm2[c] - h_norm2[c];
          if (!(corrected[c] > 0.5 * w_norm2[c])) reo.push_back(c);
        }
        for (std::size_t c : act) {
          if (corrected[c] > 0.5 * w_norm2[c]) {
            hlast[c] = std::sqrt(corrected[c]);
            h[c][j][j + 1] = hlast[c];
          }
        }
        if (!reo.empty()) {
          const auto dots2 = fused_dots_multi(v, j + 1, w, reo);
          std::vector<std::uint8_t> rmask(nc, 0);
          for (std::size_t c : reo) rmask[c] = 1;
          std::vector<double> c_norm2(nc, 0.0);
          for (std::size_t li = 0; li < reo.size(); ++li) {
            const std::size_t c = reo[li];
            auto& hj = h[c][j];
            for (std::size_t i = 0; i <= j; ++i) {
              const double cv = dots2[li * seg + i];
              hj[i] += cv;
              c_norm2[c] += cv * cv;
            }
          }
          for (std::size_t i = 0; i <= j; ++i) {
            for (std::size_t li = 0; li < reo.size(); ++li) {
              const std::size_t c = reo[li];
              coef[c] = -dots2[li * seg + i];
            }
            w.axpy_lanes(coef, v[i], rmask);
            // Fold the (blocking) reorthogonalization into the q
            // recurrence too, keeping both bases consistent. (Lanes
            // that resync below overwrite this — the fold is only live
            // for lanes still on the recurrence.)
            if (pipe && !sync) tq.axpy_lanes(coef, q[i], rmask);
          }
          for (std::size_t li = 0; li < reo.size(); ++li) {
            const std::size_t c = reo[li];
            const double w_norm2_2 = dots2[li * seg + j + 1];
            const double corr2 = w_norm2_2 - c_norm2[c];
            if (corr2 > 1e-4 * w_norm2_2) {
              hlast[c] = std::sqrt(corr2);
            } else {
              // Happy breakdown / full cancellation: explicit norm.
              hlast[c] = w.lane_norm2(c);
            }
            h[c][j][j + 1] = hlast[c];
          }
        }
        if (pipe) {
          // Drift bookkeeping, mirroring the scalar solver exactly:
          // every reduced quantity here is bitwise-equal to the scalar
          // solve's, so each lane resyncs at the identical iteration.
          for (std::size_t c : act) {
            const double amp =
                hlast[c] > 0.0
                    ? std::sqrt(std::max(w_norm2[c], 0.0)) / hlast[c]
                    : 0.0;
            drift[c] *= std::max(amp, 1.0);
            if (sync || drift[c] > opts.pipeline_drift_limit) {
              drift[c] = 1.0;
              if (!sync) {
                rsync[c] = 1;
                any_rsync = true;
              }
            }
          }
        }
      }

      // v_{j+1} = w / hlast for every lane with hlast > 0 (a lane with
      // hlast == 0 always breaks below, so its unscaled plane is dead).
      if (v.size() <= j + 1) {
        v.emplace_back(rt, a.rows(), nc);
      }
      std::fill(coef.begin(), coef.end(), 0.0);
      std::vector<std::uint8_t> pmask(nc, 0);
      bool any_push = false;
      for (std::size_t c : act) {
        if (hlast[c] > 0.0) {
          pmask[c] = 1;
          coef[c] = 1.0 / hlast[c];
          any_push = true;
        }
      }
      if (any_push) {
        v[j + 1].copy_from(w);
        v[j + 1].scale_lanes(coef, pmask);
        // Scrub the scribble planes. Dead-lane values cycle through
        // A M^-1 every iteration (directly in the pipelined q recurrence,
        // via the fused w product otherwise) and the operator's norm can
        // exceed 1, so left alone they grow geometrically until the FP32
        // demote boundary inside a mixed-precision preconditioner
        // overflows. Zeroing is invisible to live lanes — every fused
        // kernel is lane-wise — and keeps the scratch planes bounded.
        for (std::size_t c = 0; c < nc; ++c) {
          if (!pmask[c]) v[j + 1].lane_fill(c, 0.0);
        }
      }
      if (pipe) {
        if (q.size() <= j + 1) {
          q.emplace_back(rt, a.rows(), nc);
        }
        if (any_push) {
          if (sync) {
            // Periodic synchronization point: recompute
            // q_{j+1} = A M^-1 v_{j+1} directly (the operator
            // application this iteration skipped), discarding
            // accumulated recurrence drift for every lane at once.
            m.apply_multi(v[j + 1], z);
            a.matvec_multi(z, q[j + 1]);
          } else {
            // q_{j+1} = A M^-1 v_{j+1} by linearity: the
            // already-computed t minus the same basis combination,
            // scaled by the same 1/hlast — no second operator
            // application.
            q[j + 1].copy_from(tq);
            q[j + 1].scale_lanes(coef, pmask);
            if (any_rsync) {
              // Reorth-triggered resync: overwrite exactly the lanes
              // whose fallback fired with a direct recompute, leaving
              // the clean lanes' recurrence values untouched (a scalar
              // solve of each lane makes the identical choice).
              std::vector<std::uint8_t> rsmask(nc, 0);
              for (std::size_t c = 0; c < nc; ++c) {
                if (rsync[c] && pmask[c]) rsmask[c] = 1;
              }
              m.apply_multi(v[j + 1], z);
              a.matvec_multi(z, t);
              q[j + 1].copy_lanes(t, rsmask);
            }
          }
          // Same scribble scrub as v[j+1] above: q planes feed the
          // preconditioner every iteration, so unbounded dead-lane
          // values would hit the FP32 demote boundary first.
          for (std::size_t c = 0; c < nc; ++c) {
            if (!pmask[c]) q[j + 1].lane_fill(c, 0.0);
          }
        }
      }

      // Givens update + convergence test, per lane on the host.
      for (std::size_t c : act) {
        auto& hj = h[c][j];
        for (std::size_t i = 0; i < j; ++i) {
          const Real tg = cs[c][i] * hj[i] + sn[c][i] * hj[i + 1];
          hj[i + 1] = -sn[c][i] * hj[i] + cs[c][i] * hj[i + 1];
          hj[i] = tg;
        }
        const Real denom = std::hypot(hj[j], hlast[c]);
        if (denom == 0.0) {
          epilogue(c, j + 1);  // exact solution reached
          continue;
        }
        cs[c][j] = hj[j] / denom;
        sn[c][j] = hlast[c] / denom;
        hj[j] = denom;
        hj[j + 1] = 0.0;
        g[c][j + 1] = -sn[c][j] * g[c][j];
        g[c][j] = cs[c][j] * g[c][j];
        out.lane[c].final_residual = std::abs(g[c][j + 1]);
        if (out.lane[c].final_residual <= target[c] || hlast[c] == 0.0) {
          epilogue(c, j + 1);
        }
      }
      ++j;
    }

    // Restart exhausted: remaining lanes update x and go back to waiting.
    for (std::size_t c = 0; c < nc; ++c) {
      if (state[c] == LaneState::kIterating) {
        epilogue(c, j);
      }
    }
  }
  return out;
}

}  // namespace exw::solver
