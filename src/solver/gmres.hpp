#pragma once
/// \file gmres.hpp
/// Right-preconditioned GMRES with classical (MGS) and one-reduce
/// orthogonalization.
///
/// "The Nalu-Wind time integrator employs the one-reduce GMRES linear
/// solver for the momentum and pressure-Poisson governing equations"
/// (paper §4.2, citing the low-synchronization Gram-Schmidt work [39]).
/// The one-reduce variant fuses the j projection dot products and the
/// candidate norm into a single allreduce per iteration, using the
/// Pythagorean identity ||w - V h||^2 = ||w||^2 - ||h||^2 to recover the
/// corrected norm without a second reduction. Because the identity only
/// holds for an orthonormal basis — and single-pass classical
/// Gram-Schmidt loses orthogonality precisely when the projections
/// dominate (a strong preconditioner makes each new Krylov direction
/// small) — the implementation applies Rutishauser's "twice is enough"
/// test: when a pass removes more than half of ||w||^2, a second fused
/// reduction reorthogonalizes before the norm is trusted. Collective
/// counts drive the strong-scaling model, so the distinction is charged
/// faithfully: MGS costs j+2 reductions per iteration, one-reduce costs
/// 1 (2 when reorthogonalization triggers).

#include <cstdint>
#include <vector>

#include "linalg/multivector.hpp"
#include "linalg/parmatrix.hpp"
#include "linalg/parvector.hpp"
#include "solver/precond.hpp"

namespace exw::solver {

enum class OrthoMethod : std::uint8_t {
  kMgs,        ///< modified Gram-Schmidt, one reduction per basis vector
  kOneReduce,  ///< fused CGS with Pythagorean norm update
  /// Depth-1 pipelined one-reduce (Ghysels-style): the fused
  /// [V^T w ; ||w||^2] reduction is *initiated*, then the next
  /// SpMV + preconditioner application runs on the un-orthogonalized
  /// candidate while the reduction is in flight — legal because
  /// A M^-1 v_{j+1} is recovered from the auxiliary basis
  /// q_i = A M^-1 v_i by the same linear recurrence that builds v_{j+1},
  /// so nothing downstream blocks on the dots until the matvec is done.
  /// Per iteration this removes the last blocking collective from the
  /// critical path (its bandwidth is still paid; see
  /// MachineModel::allreduce_overlapped_time); the reorthogonalization
  /// fallback, when Rutishauser's test triggers, stays a blocking
  /// reduce. Costs one extra basis (Q) of storage and one extra axpy
  /// fan per iteration — the classic pipelined-GMRES trade.
  /// Iterates agree with kOneReduce to rounding (the q recurrence
  /// reassociates A M^-1), not bitwise. The recurrence amplifies
  /// rounding error by ~||q_j||/h_{j+1,j} per iteration, so every
  /// `pipeline_sync_period`-th iteration synchronizes: the reduction
  /// blocks and q_{j+1} is recomputed directly (residual replacement),
  /// bounding the drift that would otherwise inflate iteration counts
  /// under strong preconditioners.
  kPipelined,
};

struct GmresOptions {
  int max_iters = 200;
  int restart = 60;
  Real rel_tol = 1e-6;
  Real abs_tol = 0.0;
  OrthoMethod ortho = OrthoMethod::kOneReduce;
  /// kPipelined only: every N-th iteration of a restart cycle is a
  /// synchronization point — blocking fused reduction plus a direct
  /// recompute of q_{j+1} = A M^-1 v_{j+1} — resetting q-recurrence
  /// drift (residual replacement). Keyed off the in-cycle iteration
  /// index alone, so scalar and multi-RHS solves choose identically.
  /// <= 0 disables (pure recurrence; unstable with strong
  /// preconditioners).
  int pipeline_sync_period = 8;
  /// kPipelined only: the q recurrence multiplies accumulated rounding
  /// error by ~||q_j||/h_{j+1,j} each iteration (~sqrt(2) when the
  /// Rutishauser test does not fire, orders of magnitude when it does).
  /// The solver tracks the running product per restart cycle and
  /// resynchronizes q_{j+1} by direct recompute once it exceeds this
  /// limit, holding the basis error near limit * machine-epsilon
  /// (~1e-9 at the default) at the cost of one extra preconditioner +
  /// SpMV application per resync. Tracked per lane in the multi-RHS
  /// solver from bitwise-identical reduced quantities, so fused lanes
  /// resync exactly when their scalar solves would.
  double pipeline_drift_limit = 1e7;
  /// Optional per-iteration residual-estimate trace (the Givens value
  /// |g_{j+1}| each accepted iteration appends). Not owned; cleared by
  /// the solver at entry. Scalar gmres_solve only.
  std::vector<Real>* residual_trace = nullptr;
};

struct SolveStats {
  int iterations = 0;
  Real initial_residual = 0;
  Real final_residual = 0;
  bool converged = false;
};

/// Solve A x = b with right preconditioning (x holds the initial guess).
/// `a` is consumed through the storage-format seam (linalg::ParMatrix),
/// so any backend exposing matvec/residual can drive the solver.
SolveStats gmres_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                       linalg::ParVector& x, Preconditioner& m,
                       const GmresOptions& opts);

/// Per-lane outcome of a fused multi-RHS solve.
struct MultiSolveStats {
  std::vector<SolveStats> lane;
  bool all_converged() const {
    for (const auto& s : lane) {
      if (!s.converged) return false;
    }
    return true;
  }
};

/// Fused multi-RHS GMRES: solve A x_c = b_c for every lane of `x`
/// simultaneously. Lanes share the operator (one fused SpMV /
/// preconditioner application reads the sparse structure once for all
/// lanes) and their reduction payloads ride one batched allreduce per
/// orthogonalization — but each lane's convergence is tracked
/// independently, and every lane's iterates are bitwise-identical to a
/// scalar gmres_solve on that lane alone (the rank-ordered element-wise
/// reductions of par::Runtime make the batched collectives exact).
/// Lanes that converge drop out of the fused work via lane masks; lanes
/// whose true-residual confirmation fails rejoin at the next restart.
MultiSolveStats gmres_solve_multi(const linalg::ParMatrix& a,
                                  const linalg::ParMultiVector& b,
                                  linalg::ParMultiVector& x, Preconditioner& m,
                                  const GmresOptions& opts);

}  // namespace exw::solver
