#pragma once
/// \file gmres.hpp
/// Right-preconditioned GMRES with classical (MGS) and one-reduce
/// orthogonalization.
///
/// "The Nalu-Wind time integrator employs the one-reduce GMRES linear
/// solver for the momentum and pressure-Poisson governing equations"
/// (paper §4.2, citing the low-synchronization Gram-Schmidt work [39]).
/// The one-reduce variant fuses the j projection dot products and the
/// candidate norm into a single allreduce per iteration, using the
/// Pythagorean identity ||w - V h||^2 = ||w||^2 - ||h||^2 to recover the
/// corrected norm without a second reduction. Because the identity only
/// holds for an orthonormal basis — and single-pass classical
/// Gram-Schmidt loses orthogonality precisely when the projections
/// dominate (a strong preconditioner makes each new Krylov direction
/// small) — the implementation applies Rutishauser's "twice is enough"
/// test: when a pass removes more than half of ||w||^2, a second fused
/// reduction reorthogonalizes before the norm is trusted. Collective
/// counts drive the strong-scaling model, so the distinction is charged
/// faithfully: MGS costs j+2 reductions per iteration, one-reduce costs
/// 1 (2 when reorthogonalization triggers).

#include <cstdint>

#include "linalg/parcsr.hpp"
#include "linalg/parvector.hpp"
#include "solver/precond.hpp"

namespace exw::solver {

enum class OrthoMethod : std::uint8_t {
  kMgs,        ///< modified Gram-Schmidt, one reduction per basis vector
  kOneReduce,  ///< fused CGS with Pythagorean norm update
};

struct GmresOptions {
  int max_iters = 200;
  int restart = 60;
  Real rel_tol = 1e-6;
  Real abs_tol = 0.0;
  OrthoMethod ortho = OrthoMethod::kOneReduce;
};

struct SolveStats {
  int iterations = 0;
  Real initial_residual = 0;
  Real final_residual = 0;
  bool converged = false;
};

/// Solve A x = b with right preconditioning (x holds the initial guess).
SolveStats gmres_solve(const linalg::ParCsr& a, const linalg::ParVector& b,
                       linalg::ParVector& x, Preconditioner& m,
                       const GmresOptions& opts);

}  // namespace exw::solver
