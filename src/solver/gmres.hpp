#pragma once
/// \file gmres.hpp
/// Right-preconditioned GMRES with classical (MGS) and one-reduce
/// orthogonalization.
///
/// "The Nalu-Wind time integrator employs the one-reduce GMRES linear
/// solver for the momentum and pressure-Poisson governing equations"
/// (paper §4.2, citing the low-synchronization Gram-Schmidt work [39]).
/// The one-reduce variant fuses the j projection dot products and the
/// candidate norm into a single allreduce per iteration, using the
/// Pythagorean identity ||w - V h||^2 = ||w||^2 - ||h||^2 to recover the
/// corrected norm without a second reduction. Because the identity only
/// holds for an orthonormal basis — and single-pass classical
/// Gram-Schmidt loses orthogonality precisely when the projections
/// dominate (a strong preconditioner makes each new Krylov direction
/// small) — the implementation applies Rutishauser's "twice is enough"
/// test: when a pass removes more than half of ||w||^2, a second fused
/// reduction reorthogonalizes before the norm is trusted. Collective
/// counts drive the strong-scaling model, so the distinction is charged
/// faithfully: MGS costs j+2 reductions per iteration, one-reduce costs
/// 1 (2 when reorthogonalization triggers).

#include <cstdint>
#include <vector>

#include "linalg/multivector.hpp"
#include "linalg/parmatrix.hpp"
#include "linalg/parvector.hpp"
#include "solver/precond.hpp"

namespace exw::solver {

enum class OrthoMethod : std::uint8_t {
  kMgs,        ///< modified Gram-Schmidt, one reduction per basis vector
  kOneReduce,  ///< fused CGS with Pythagorean norm update
};

struct GmresOptions {
  int max_iters = 200;
  int restart = 60;
  Real rel_tol = 1e-6;
  Real abs_tol = 0.0;
  OrthoMethod ortho = OrthoMethod::kOneReduce;
};

struct SolveStats {
  int iterations = 0;
  Real initial_residual = 0;
  Real final_residual = 0;
  bool converged = false;
};

/// Solve A x = b with right preconditioning (x holds the initial guess).
/// `a` is consumed through the storage-format seam (linalg::ParMatrix),
/// so any backend exposing matvec/residual can drive the solver.
SolveStats gmres_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                       linalg::ParVector& x, Preconditioner& m,
                       const GmresOptions& opts);

/// Per-lane outcome of a fused multi-RHS solve.
struct MultiSolveStats {
  std::vector<SolveStats> lane;
  bool all_converged() const {
    for (const auto& s : lane) {
      if (!s.converged) return false;
    }
    return true;
  }
};

/// Fused multi-RHS GMRES: solve A x_c = b_c for every lane of `x`
/// simultaneously. Lanes share the operator (one fused SpMV /
/// preconditioner application reads the sparse structure once for all
/// lanes) and their reduction payloads ride one batched allreduce per
/// orthogonalization — but each lane's convergence is tracked
/// independently, and every lane's iterates are bitwise-identical to a
/// scalar gmres_solve on that lane alone (the rank-ordered element-wise
/// reductions of par::Runtime make the batched collectives exact).
/// Lanes that converge drop out of the fused work via lane masks; lanes
/// whose true-residual confirmation fails rejoin at the next restart.
MultiSolveStats gmres_solve_multi(const linalg::ParMatrix& a,
                                  const linalg::ParMultiVector& b,
                                  linalg::ParMultiVector& x, Preconditioner& m,
                                  const GmresOptions& opts);

}  // namespace exw::solver
