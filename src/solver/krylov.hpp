#pragma once
/// \file krylov.hpp
/// Additional Krylov solvers from the hypre family: preconditioned
/// conjugate gradients (for the SPD pressure-Poisson system) and
/// BiCGStab (a short-recurrence alternative to GMRES for the
/// nonsymmetric momentum/scalar systems). The paper's production
/// configuration uses one-reduce GMRES everywhere (§4.2); these are the
/// comparison points a solver library is expected to provide, with the
/// same collective accounting so their synchronization cost can be
/// contrasted with GMRES (CG: 2 reductions/iter; BiCGStab: 4).

#include "solver/gmres.hpp"

namespace exw::solver {

struct KrylovOptions {
  int max_iters = 200;
  Real rel_tol = 1e-6;
  Real abs_tol = 0.0;
};

/// Preconditioned conjugate gradients (requires SPD A and SPD M).
SolveStats cg_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                    linalg::ParVector& x, Preconditioner& m,
                    const KrylovOptions& opts);

/// Preconditioned BiCGStab (right preconditioning).
SolveStats bicgstab_solve(const linalg::ParMatrix& a, const linalg::ParVector& b,
                          linalg::ParVector& x, Preconditioner& m,
                          const KrylovOptions& opts);

}  // namespace exw::solver
