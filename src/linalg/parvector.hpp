#pragma once
/// \file parvector.hpp
/// Distributed vector in 1-D block-row layout (hypre ParVector analogue).
///
/// Storage is per simulated rank; operations are driven globally and
/// charge the cost model: BLAS-1 kernels per rank plus one allreduce per
/// reduction (the collective count is what the one-reduce GMRES of the
/// paper §4.2 optimizes, so it must be faithful).

#include <span>
#include <vector>

#include "common/precision.hpp"
#include "common/types.hpp"
#include "par/contract.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"

namespace exw::linalg {

/// Precomputed in-place RHS-refill map for one rank (the Algorithm 2
/// analogue of ValueFillPlan, built by assembly::AssemblyPlan). Received
/// contribution u gathers recv[perm[seg_ptr[u] .. seg_ptr[u+1])] in
/// ascending permutation order — reduce_by_key's addend order, so
/// refills are bitwise-identical to the cold path — and scatter-adds
/// into local row dest[u].
struct VectorFillPlan {
  std::vector<std::size_t> perm;     ///< sorted position -> recv slot
  std::vector<std::size_t> seg_ptr;  ///< unique recv row -> range in perm
  std::vector<LocalIndex> dest;      ///< unique recv row -> local row
};

class ParVector {
 public:
  ParVector() = default;
  ParVector(par::Runtime& rt, par::RowPartition rows);

  const par::RowPartition& rows() const { return rows_; }
  GlobalIndex global_size() const { return rows_.global_size(); }
  int nranks() const { return rows_.nranks(); }

  /// Mutable access to rank r's local block. Inside a parallel rank
  /// region only rank r's own body may take it (contract-checked).
  RealVector& local(RankId r) {
    EXW_CONTRACT_CHECK_WRITE(r, "ParVector::local(r)");
    return local_[static_cast<std::size_t>(r)];
  }
  const RealVector& local(RankId r) const {
    return local_[static_cast<std::size_t>(r)];
  }

  /// Element access by global index (test/debug convenience; not charged,
  /// and a mutable at() bypasses the FP32 store-rounding invariant —
  /// charged operations below maintain it).
  Real& at(GlobalIndex g);
  Real at(GlobalIndex g) const;

  /// Storage precision of the value plane (DESIGN.md §16). Tagging a
  /// vector kF32 demotes its current contents and makes every charged
  /// store round through float (store_value), so the invariant "an FP32
  /// vector holds only FP32-representable values" holds and float halo
  /// serialization of its data is lossless. Untagged vectors are plain
  /// FP64. Tagging is a cold setup operation and is not charged.
  Precision value_precision() const { return prec_; }
  void set_value_precision(Precision p);

  /// Warm-path refill of rank r's local block: copy the dense owned
  /// values, then scatter-add the received contributions reduced through
  /// the frozen plan (Algorithm 2's sort/reduce replayed as a pure value
  /// pipeline; no sort, no allocation). Inside a parallel rank region
  /// only rank r's own body may call it (contract-checked).
  void set_values_from_plan(RankId r, std::span<const Real> owned,
                            const VectorFillPlan& plan,
                            std::span<const Real> recv);

  // --- charged distributed operations ------------------------------------
  void fill(Real value);
  void copy_from(const ParVector& other);
  void scale(Real alpha);
  /// this += alpha * x
  void axpy(Real alpha, const ParVector& x);
  /// this = alpha * this + x  (useful for smoother updates)
  void aypx(Real alpha, const ParVector& x);
  double dot(const ParVector& other) const;
  double norm2() const;

  /// Kahan-compensated dot product — the paper's §3.2 future-work item
  /// ("one could perform compensated summation [27] to minimize the
  /// effect of the potential discrepancies"): per-rank compensated
  /// partial sums make the reduction insensitive to local accumulation
  /// order, at ~4x the flops of a plain dot.
  double dot_compensated(const ParVector& other) const;

  /// Gather to one dense global vector (tests only; not charged).
  RealVector gather() const;
  /// Scatter from a dense global vector (tests/setup; not charged).
  void scatter(const RealVector& global);

  par::Runtime& runtime() const { return *rt_; }

 private:
  par::Runtime* rt_ = nullptr;
  par::RowPartition rows_;
  std::vector<RealVector> local_;
  Precision prec_ = Precision::kF64;
};

}  // namespace exw::linalg
