#include "linalg/parvector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "perf/purity.hpp"
#include "sparse/prim.hpp"

namespace exw::linalg {

namespace {
// Bytes moved per element for streaming BLAS-1 kernels.
constexpr double kRead = sizeof(Real);
}  // namespace

ParVector::ParVector(par::Runtime& rt, par::RowPartition rows)
    : rt_(&rt), rows_(std::move(rows)) {
  EXW_REQUIRE(rows_.nranks() == rt.nranks(),
              "vector partition does not match runtime rank count");
  local_.resize(static_cast<std::size_t>(rows_.nranks()));
  for (RankId r{0}; r.value() < rows_.nranks(); ++r) {
    local_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(rows_.local_size(r)), 0.0);
  }
}

Real& ParVector::at(GlobalIndex g) {
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)][static_cast<std::size_t>(
      rows_.to_local(r, g))];
}

Real ParVector::at(GlobalIndex g) const {
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)][static_cast<std::size_t>(
      rows_.to_local(r, g))];
}

EXW_WARM_FN
void ParVector::set_values_from_plan(RankId r, std::span<const Real> owned,
                                     const VectorFillPlan& plan,
                                     std::span<const Real> recv) {
  EXW_PURITY_REGION("parvector-value-fill");
  EXW_CONTRACT_CHECK_WRITE(r, "ParVector::set_values_from_plan(r)");
  auto& x = local_[static_cast<std::size_t>(r)];
  EXW_REQUIRE(owned.size() == x.size(),
              "owned RHS must be dense over local rows");
  EXW_REQUIRE(plan.seg_ptr.size() == plan.dest.size() + 1 &&
                  (plan.perm.empty() || plan.seg_ptr.back() == plan.perm.size()),
              "RHS-fill plan shape mismatch");
  EXW_REQUIRE(recv.size() == plan.perm.size(),
              "received value stream does not match plan");
  std::copy(owned.begin(), owned.end(), x.begin());
  sparse::prim::segmented_reduce<Real>(
      recv, plan.perm, plan.seg_ptr, [&](std::size_t u, Real acc) {
        x[static_cast<std::size_t>(plan.dest[u])] += acc;
      });
  const auto n = static_cast<double>(x.size());
  const auto nr = static_cast<double>(recv.size());
  rt_->tracer().kernel(r, nr, 2.0 * kRead * n +
                                  nr * (kRead + sizeof(std::size_t)));
}

void ParVector::fill(Real value) {
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    std::fill(x.begin(), x.end(), value);
    rt_->tracer().kernel(r, 0.0, kRead * static_cast<double>(x.size()));
  });
}

void ParVector::copy_from(const ParVector& other) {
  EXW_REQUIRE(other.global_size() == global_size(), "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    local_[static_cast<std::size_t>(r)] = other.local_[static_cast<std::size_t>(r)];
    rt_->tracer().kernel(
        r, 0.0,
        2.0 * kRead * static_cast<double>(local_[static_cast<std::size_t>(r)].size()));
  });
}

void ParVector::scale(Real alpha) {
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    for (auto& v : x) v *= alpha;
    rt_->tracer().kernel(r, static_cast<double>(x.size()),
                         2.0 * kRead * static_cast<double>(x.size()));
  });
}

void ParVector::axpy(Real alpha, const ParVector& x) {
  EXW_REQUIRE(x.global_size() == global_size(), "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += alpha * xs[i];
    }
    rt_->tracer().kernel(r, 2.0 * static_cast<double>(y.size()),
                         3.0 * kRead * static_cast<double>(y.size()));
  });
}

void ParVector::aypx(Real alpha, const ParVector& x) {
  EXW_REQUIRE(x.global_size() == global_size(), "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = alpha * y[i] + xs[i];
    }
    rt_->tracer().kernel(r, 2.0 * static_cast<double>(y.size()),
                         3.0 * kRead * static_cast<double>(y.size()));
  });
}

double ParVector::dot(const ParVector& other) const {
  EXW_REQUIRE(other.global_size() == global_size(), "vector size mismatch");
  std::vector<double> partial(static_cast<std::size_t>(nranks()), 0.0);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& x = local_[static_cast<std::size_t>(r)];
    const auto& y = other.local_[static_cast<std::size_t>(r)];
    double s = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      s += x[i] * y[i];
    }
    partial[static_cast<std::size_t>(r)] = s;
    rt_->tracer().kernel(r, 2.0 * static_cast<double>(x.size()),
                         2.0 * kRead * static_cast<double>(x.size()));
  });
  return rt_->allreduce_sum(partial);
}

double ParVector::norm2() const { return std::sqrt(dot(*this)); }

double ParVector::dot_compensated(const ParVector& other) const {
  EXW_REQUIRE(other.global_size() == global_size(), "vector size mismatch");
  std::vector<double> partial(static_cast<std::size_t>(nranks()), 0.0);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& x = local_[static_cast<std::size_t>(r)];
    const auto& y = other.local_[static_cast<std::size_t>(r)];
    // Neumaier (Kahan-Babuska) compensation: robust even when a term is
    // larger in magnitude than the running sum.
    double sum = 0, comp = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double v = x[i] * y[i];
      const double t = sum + v;
      if (std::abs(sum) >= std::abs(v)) {
        comp += (sum - t) + v;
      } else {
        comp += (v - t) + sum;
      }
      sum = t;
    }
    partial[static_cast<std::size_t>(r)] = sum + comp;
    rt_->tracer().kernel(r, 8.0 * static_cast<double>(x.size()),
                         2.0 * kRead * static_cast<double>(x.size()));
  });
  return rt_->allreduce_sum(partial);
}

RealVector ParVector::gather() const {
  RealVector out(static_cast<std::size_t>(global_size()));
  // Ranks write disjoint [first_row, end_row) slices.
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& x = local_[static_cast<std::size_t>(r)];
    std::copy(x.begin(), x.end(),
              out.begin() + static_cast<std::ptrdiff_t>(rows_.first_row(r).value()));
  });
  return out;
}

void ParVector::scatter(const RealVector& global) {
  EXW_REQUIRE(global.size() == static_cast<std::size_t>(global_size()),
              "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    std::copy(global.begin() +
                  static_cast<std::ptrdiff_t>(rows_.first_row(r).value()),
              global.begin() + static_cast<std::ptrdiff_t>(rows_.end_row(r).value()),
              x.begin());
  });
}

}  // namespace exw::linalg
