#include "linalg/parvector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "perf/purity.hpp"
#include "sparse/prim.hpp"

namespace exw::linalg {

namespace {
// Bytes moved per element for streaming BLAS-1 kernels.
constexpr double kRead = sizeof(Real);
}  // namespace

void ParVector::set_value_precision(Precision p) {
  if (p == prec_) {
    return;
  }
  prec_ = p;
  if (p == Precision::kF32) {
    // Establish the storage invariant on whatever is already held.
    // Cold (re)tagging, not a modeled kernel: no charge.
    rt_->parallel_for_ranks([&](RankId r) {
      for (Real& v : local_[static_cast<std::size_t>(r)]) {
        v = demote_value(v);
      }
    });
  }
}

ParVector::ParVector(par::Runtime& rt, par::RowPartition rows)
    : rt_(&rt), rows_(std::move(rows)) {
  EXW_REQUIRE(rows_.nranks() == rt.nranks(),
              "vector partition does not match runtime rank count");
  local_.resize(static_cast<std::size_t>(rows_.nranks()));
  for (RankId r{0}; r.value() < rows_.nranks(); ++r) {
    local_[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(rows_.local_size(r)), 0.0);
  }
}

Real& ParVector::at(GlobalIndex g) {
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)][static_cast<std::size_t>(
      rows_.to_local(r, g))];
}

Real ParVector::at(GlobalIndex g) const {
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)][static_cast<std::size_t>(
      rows_.to_local(r, g))];
}

EXW_WARM_FN
void ParVector::set_values_from_plan(RankId r, std::span<const Real> owned,
                                     const VectorFillPlan& plan,
                                     std::span<const Real> recv) {
  EXW_PURITY_REGION("parvector-value-fill");
  EXW_CONTRACT_CHECK_WRITE(r, "ParVector::set_values_from_plan(r)");
  EXW_REQUIRE(prec_ == Precision::kF64,
              "value-fill plans refill fp64 vectors (assembly plane)");
  auto& x = local_[static_cast<std::size_t>(r)];
  EXW_REQUIRE(owned.size() == x.size(),
              "owned RHS must be dense over local rows");
  EXW_REQUIRE(plan.seg_ptr.size() == plan.dest.size() + 1 &&
                  (plan.perm.empty() || plan.seg_ptr.back() == plan.perm.size()),
              "RHS-fill plan shape mismatch");
  EXW_REQUIRE(recv.size() == plan.perm.size(),
              "received value stream does not match plan");
  std::copy(owned.begin(), owned.end(), x.begin());
  sparse::prim::segmented_reduce<Real>(
      recv, plan.perm, plan.seg_ptr, [&](std::size_t u, Real acc) {
        x[static_cast<std::size_t>(plan.dest[u])] += acc;
      });
  const auto n = static_cast<double>(x.size());
  const auto nr = static_cast<double>(recv.size());
  rt_->tracer().kernel(r, nr, 2.0 * kRead * n +
                                  nr * (kRead + sizeof(std::size_t)));
}

void ParVector::fill(Real value) {
  const Real sv = store_value(value, prec_);
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    std::fill(x.begin(), x.end(), sv);
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, bytes_of(prec_) * static_cast<double>(x.size()),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

void ParVector::copy_from(const ParVector& other) {
  EXW_REQUIRE(other.global_size() == global_size(), "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = other.local_[static_cast<std::size_t>(r)];
    if (prec_ == Precision::kF32 && other.prec_ == Precision::kF64) {
      for (std::size_t i = 0; i < y.size(); ++i) {
        y[i] = demote_value(xs[i]);
      }
    } else {
      // Same precision, or f64 <- f32: source values already
      // representable in the destination storage.
      y = xs;
    }
    const auto n = static_cast<double>(y.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(other.prec_, bytes_of(other.prec_) * n, f64, f32);
    split_value_bytes(prec_, bytes_of(prec_) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

void ParVector::scale(Real alpha) {
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    for (auto& v : x) v = store_value(v * alpha, prec_);
    double f64 = 0, f32 = 0;
    split_value_bytes(
        prec_, 2.0 * bytes_of(prec_) * static_cast<double>(x.size()), f64,
        f32);
    rt_->tracer().kernel_split_prec(r, static_cast<double>(x.size()), f64,
                                    f32, 0.0);
  });
}

void ParVector::axpy(Real alpha, const ParVector& x) {
  EXW_REQUIRE(x.global_size() == global_size(), "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = store_value(y[i] + alpha * xs[i], prec_);
    }
    const auto n = static_cast<double>(y.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, 2.0 * bytes_of(prec_) * n, f64, f32);
    split_value_bytes(x.prec_, bytes_of(x.prec_) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * n, f64, f32, 0.0);
  });
}

void ParVector::aypx(Real alpha, const ParVector& x) {
  EXW_REQUIRE(x.global_size() == global_size(), "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = store_value(alpha * y[i] + xs[i], prec_);
    }
    const auto n = static_cast<double>(y.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, 2.0 * bytes_of(prec_) * n, f64, f32);
    split_value_bytes(x.prec_, bytes_of(x.prec_) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * n, f64, f32, 0.0);
  });
}

double ParVector::dot(const ParVector& other) const {
  EXW_REQUIRE(other.global_size() == global_size(), "vector size mismatch");
  std::vector<double> partial(static_cast<std::size_t>(nranks()), 0.0);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& x = local_[static_cast<std::size_t>(r)];
    const auto& y = other.local_[static_cast<std::size_t>(r)];
    double s = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      s += x[i] * y[i];
    }
    partial[static_cast<std::size_t>(r)] = s;
    const auto n = static_cast<double>(x.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, bytes_of(prec_) * n, f64, f32);
    split_value_bytes(other.prec_, bytes_of(other.prec_) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * n, f64, f32, 0.0);
  });
  return rt_->allreduce_sum(partial);
}

double ParVector::norm2() const { return std::sqrt(dot(*this)); }

double ParVector::dot_compensated(const ParVector& other) const {
  EXW_REQUIRE(other.global_size() == global_size(), "vector size mismatch");
  std::vector<double> partial(static_cast<std::size_t>(nranks()), 0.0);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& x = local_[static_cast<std::size_t>(r)];
    const auto& y = other.local_[static_cast<std::size_t>(r)];
    // Neumaier (Kahan-Babuska) compensation: robust even when a term is
    // larger in magnitude than the running sum.
    double sum = 0, comp = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double v = x[i] * y[i];
      const double t = sum + v;
      if (std::abs(sum) >= std::abs(v)) {
        comp += (sum - t) + v;
      } else {
        comp += (v - t) + sum;
      }
      sum = t;
    }
    partial[static_cast<std::size_t>(r)] = sum + comp;
    rt_->tracer().kernel(r, 8.0 * static_cast<double>(x.size()),
                         2.0 * kRead * static_cast<double>(x.size()));
  });
  return rt_->allreduce_sum(partial);
}

RealVector ParVector::gather() const {
  RealVector out(static_cast<std::size_t>(global_size()));
  // Ranks write disjoint [first_row, end_row) slices.
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& x = local_[static_cast<std::size_t>(r)];
    std::copy(x.begin(), x.end(),
              out.begin() + static_cast<std::ptrdiff_t>(rows_.first_row(r).value()));
  });
  return out;
}

void ParVector::scatter(const RealVector& global) {
  EXW_REQUIRE(global.size() == static_cast<std::size_t>(global_size()),
              "vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    std::copy(global.begin() +
                  static_cast<std::ptrdiff_t>(rows_.first_row(r).value()),
              global.begin() + static_cast<std::ptrdiff_t>(rows_.end_row(r).value()),
              x.begin());
    if (prec_ == Precision::kF32) {
      for (Real& v : x) v = demote_value(v);
    }
  });
}

}  // namespace exw::linalg
