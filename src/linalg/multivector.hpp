#pragma once
/// \file multivector.hpp
/// Distributed multi-vector: ncomp component lanes over one row
/// partition, stored SoA (per rank, lane c occupies the contiguous
/// plane [c*n, (c+1)*n) of one value array).
///
/// This is the vector half of the fused momentum path: the u/v/w
/// systems share one sparsity pattern, so their GMRES state is carried
/// as 3-lane multi-vectors and every BLAS-1 operation runs once over
/// all lanes — one kernel launch per rank instead of one per component,
/// and one allreduce carrying all lanes' partial reductions instead of
/// one collective per component. Because Runtime::allreduce_sum_vec
/// reduces element-wise in rank order, each lane's reduction result is
/// bitwise-identical to the per-component ParVector operation — the
/// property the fused-vs-sequential equivalence tests pin down.
///
/// Ops come in two groups: fused all-lane ops (optionally masked, so
/// converged GMRES components stop participating without perturbing
/// their lanes), and single-lane ops for per-component epilogues
/// (back-substitution, true-residual confirmation).

#include <cstdint>
#include <span>
#include <vector>

#include "common/precision.hpp"
#include "common/types.hpp"
#include "par/contract.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"

namespace exw::linalg {

class ParVector;

class ParMultiVector {
 public:
  ParMultiVector() = default;
  ParMultiVector(par::Runtime& rt, par::RowPartition rows, std::size_t ncomp);

  std::size_t ncomp() const { return ncomp_; }
  const par::RowPartition& rows() const { return rows_; }
  GlobalIndex global_size() const { return rows_.global_size(); }
  int nranks() const { return rows_.nranks(); }
  par::Runtime& runtime() const { return *rt_; }

  /// Rank r's full SoA block (size ncomp * local rows). Inside a
  /// parallel rank region only rank r's own body may take the mutable
  /// view (contract-checked).
  RealVector& local(RankId r) {
    EXW_CONTRACT_CHECK_WRITE(r, "ParMultiVector::local(r)");
    return local_[static_cast<std::size_t>(r)];
  }
  const RealVector& local(RankId r) const {
    return local_[static_cast<std::size_t>(r)];
  }

  /// One lane's contiguous plane of rank r's block.
  std::span<Real> lane_span(RankId r, std::size_t lane);
  std::span<const Real> lane_span(RankId r, std::size_t lane) const;

  /// Element access by (lane, global row) — test/setup convenience, not
  /// charged.
  Real& at(std::size_t lane, GlobalIndex g);
  Real at(std::size_t lane, GlobalIndex g) const;

  /// Storage precision of the value plane — same contract as
  /// ParVector::set_value_precision (stores round through FP32 when
  /// tagged, contents demoted at tagging, charges priced per precision).
  Precision value_precision() const { return prec_; }
  void set_value_precision(Precision p);

  // --- fused charged operations (one kernel per rank, one collective
  // --- per reduction, regardless of lane count) --------------------------

  void fill(Real value);
  void copy_from(const ParMultiVector& other);
  /// Lane c = (lane c of src) for lanes with mask[c] != 0; other lanes
  /// are untouched (same frozen-lane rule as scale_lanes/axpy_lanes).
  /// Copies are bitwise for matching precisions, demoted f64 -> f32
  /// otherwise. An empty mask means all lanes.
  void copy_lanes(const ParMultiVector& src,
                  std::span<const std::uint8_t> mask = {});
  /// Lane c *= alpha[c]. Lanes with mask[c] == 0 are skipped entirely
  /// (not even multiplied by their alpha — a converged component's lane
  /// must stay bitwise-frozen). An empty mask means all lanes.
  void scale_lanes(std::span<const Real> alpha,
                   std::span<const std::uint8_t> mask = {});
  /// Lane c += alpha[c] * (lane c of x), same masking rule.
  void axpy_lanes(std::span<const Real> alpha, const ParMultiVector& x,
                  std::span<const std::uint8_t> mask = {});
  /// Per-lane dot products against `other`, one batched allreduce.
  std::vector<double> dots(const ParMultiVector& other) const;
  /// Per-lane 2-norms, one batched allreduce.
  std::vector<double> norms() const;

  // --- single-lane charged operations ------------------------------------

  void lane_fill(std::size_t lane, Real value);
  void lane_axpy(std::size_t lane, Real alpha, const ParMultiVector& x);
  double lane_norm2(std::size_t lane) const;
  /// Copy a ParVector into / out of one lane (streaming copy charge).
  void set_lane(std::size_t lane, const ParVector& src);
  void extract_lane(std::size_t lane, ParVector& dst) const;

 private:
  std::size_t local_n(RankId r) const {
    return static_cast<std::size_t>(rows_.local_size(r));
  }

  par::Runtime* rt_ = nullptr;
  par::RowPartition rows_;
  std::size_t ncomp_ = 0;
  std::vector<RealVector> local_;
  Precision prec_ = Precision::kF64;
};

}  // namespace exw::linalg
