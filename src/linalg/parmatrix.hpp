#pragma once
/// \file parmatrix.hpp
/// Storage-format seam of the distributed matrix stack.
///
/// The solver layer (GMRES/CG/BiCGStab, the smoother-preconditioned
/// momentum path) consumes a distributed operator through this interface
/// only: partition metadata, SpMV / residual, the fused multi-vector
/// variants, and the diagonal. ParCsr (hypre's ParCSR layout) is the
/// first — currently only — implementation; the seam is what future
/// storage backends (BSR for the 3-component momentum block system,
/// SELL-C-sigma for wide-SIMD machines, mixed-precision value arrays)
/// plug into without the Krylov code changing. Format-specific surfaces
/// that do not generalize — diag/offd block access, the comm package,
/// the L/D/U smoother split — stay on the concrete class; relaxation
/// (amg::Smoother) is likewise a per-format kernel set keyed on the
/// concrete type it was built from.
///
/// The fused multi-vector entry points (`matvec_multi`,
/// `residual_multi`) are the interface half of the paper-adjacent
/// "repeated block structure" optimization: the u/v/w momentum systems
/// share one sparsity pattern, so one fused pass reads the index
/// structure (row_ptr/cols) once per `ncomp` value lanes, tripling the
/// arithmetic intensity per index byte. Implementations charge the
/// split through perf::Tracer::kernel_split so the saved index traffic
/// is auditable (bench_momentum_fused hard-fails without it).

#include "common/types.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"

namespace exw::linalg {

class ParVector;
class ParMultiVector;

class ParMatrix {
 public:
  virtual ~ParMatrix() = default;

  /// Short storage-format tag ("csr", later "bsr", ...): diagnostics and
  /// format-dispatch assertions in tests.
  virtual const char* format_name() const = 0;

  virtual par::Runtime& runtime() const = 0;
  virtual const par::RowPartition& rows() const = 0;
  virtual const par::RowPartition& cols() const = 0;
  virtual int nranks() const = 0;
  virtual GlobalIndex global_rows() const = 0;
  virtual GlobalIndex global_cols() const = 0;
  virtual GlobalIndex global_nnz() const = 0;

  /// y = alpha * A * x + beta * y (x over cols(), y over rows()).
  virtual void matvec(const ParVector& x, ParVector& y, Real alpha = 1.0,
                      Real beta = 0.0) const = 0;

  /// r = b - A * x.
  virtual void residual(const ParVector& b, const ParVector& x,
                        ParVector& r) const = 0;

  /// Fused multi-vector SpMV: lane c of y gets alpha * A * (lane c of x)
  /// + beta * (lane c of y), bitwise-identical per lane to `matvec` on
  /// that lane alone; the index structure is read once for all lanes.
  virtual void matvec_multi(const ParMultiVector& x, ParMultiVector& y,
                            Real alpha = 1.0, Real beta = 0.0) const = 0;

  /// Fused multi-vector residual: lane c of r = lane c of b - A x_c.
  virtual void residual_multi(const ParMultiVector& b,
                              const ParMultiVector& x,
                              ParMultiVector& r) const = 0;

  /// Per-rank diagonal of the locally-owned block.
  virtual std::vector<RealVector> diagonals() const = 0;

 protected:
  ParMatrix() = default;
  ParMatrix(const ParMatrix&) = default;
  ParMatrix(ParMatrix&&) = default;
  ParMatrix& operator=(const ParMatrix&) = default;
  ParMatrix& operator=(ParMatrix&&) = default;
};

}  // namespace exw::linalg
