#include "linalg/multivector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/precision.hpp"
#include "linalg/parvector.hpp"
#include "perf/purity.hpp"

namespace exw::linalg {

namespace {
std::size_t active_lanes(std::size_t ncomp,
                         std::span<const std::uint8_t> mask) {
  if (mask.empty()) {
    return ncomp;
  }
  std::size_t n = 0;
  for (std::uint8_t m : mask) {
    if (m != 0) ++n;
  }
  return n;
}
}  // namespace

ParMultiVector::ParMultiVector(par::Runtime& rt, par::RowPartition rows,
                               std::size_t ncomp)
    : rt_(&rt), rows_(std::move(rows)), ncomp_(ncomp) {
  EXW_REQUIRE(ncomp >= 1, "multivector needs at least one lane");
  EXW_REQUIRE(rows_.nranks() == rt.nranks(),
              "multivector partition does not match runtime rank count");
  local_.resize(static_cast<std::size_t>(rows_.nranks()));
  for (RankId r{0}; r.value() < rows_.nranks(); ++r) {
    local_[static_cast<std::size_t>(r)].assign(ncomp_ * local_n(r), 0.0);
  }
}

void ParMultiVector::set_value_precision(Precision p) {
  if (p == prec_) {
    return;
  }
  prec_ = p;
  if (p == Precision::kF32) {
    // Cold (re)tagging: establish the storage invariant, no charge.
    rt_->parallel_for_ranks([&](RankId r) {
      for (Real& v : local_[static_cast<std::size_t>(r)]) {
        v = demote_value(v);
      }
    });
  }
}

std::span<Real> ParMultiVector::lane_span(RankId r, std::size_t lane) {
  EXW_CONTRACT_CHECK_WRITE(r, "ParMultiVector::lane_span(r)");
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const std::size_t n = local_n(r);
  return std::span<Real>(local_[static_cast<std::size_t>(r)])
      .subspan(lane * n, n);
}

std::span<const Real> ParMultiVector::lane_span(RankId r,
                                                std::size_t lane) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const std::size_t n = local_n(r);
  return std::span<const Real>(local_[static_cast<std::size_t>(r)])
      .subspan(lane * n, n);
}

Real& ParMultiVector::at(std::size_t lane, GlobalIndex g) {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)]
               [lane * local_n(r) +
                static_cast<std::size_t>(rows_.to_local(r, g))];
}

Real ParMultiVector::at(std::size_t lane, GlobalIndex g) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)]
               [lane * local_n(r) +
                static_cast<std::size_t>(rows_.to_local(r, g))];
}

void ParMultiVector::fill(Real value) {
  const Real sv = store_value(value, prec_);
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    std::fill(x.begin(), x.end(), sv);
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, bytes_of(prec_) * static_cast<double>(x.size()),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

void ParMultiVector::copy_from(const ParMultiVector& other) {
  EXW_REQUIRE(other.ncomp_ == ncomp_, "multivector lane count mismatch");
  EXW_REQUIRE(other.global_size() == global_size(),
              "multivector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = other.local_[static_cast<std::size_t>(r)];
    if (prec_ == Precision::kF32 && other.prec_ == Precision::kF64) {
      for (std::size_t i = 0; i < y.size(); ++i) {
        y[i] = demote_value(xs[i]);
      }
    } else {
      y = xs;
    }
    const auto n = static_cast<double>(y.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(other.prec_, bytes_of(other.prec_) * n, f64, f32);
    split_value_bytes(prec_, bytes_of(prec_) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

EXW_WARM_FN
void ParMultiVector::copy_lanes(const ParMultiVector& src,
                                std::span<const std::uint8_t> mask) {
  EXW_PURITY_REGION("multivector-copy-lanes");
  EXW_REQUIRE(src.ncomp_ == ncomp_, "multivector lane count mismatch");
  EXW_REQUIRE(src.global_size() == global_size(), "multivector size mismatch");
  EXW_REQUIRE(mask.empty() || mask.size() == ncomp_,
              "lane mask size mismatch");
  const auto na = static_cast<double>(active_lanes(ncomp_, mask));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t n = local_n(r);
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = src.local_[static_cast<std::size_t>(r)];
    const bool demote = prec_ == Precision::kF32 &&
                        src.prec_ == Precision::kF64;
    for (std::size_t c = 0; c < ncomp_; ++c) {
      if (!mask.empty() && mask[c] == 0) continue;
      for (std::size_t i = 0; i < n; ++i) {
        y[c * n + i] = demote ? demote_value(xs[c * n + i]) : xs[c * n + i];
      }
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(src.prec_, bytes_of(src.prec_) * na * static_cast<double>(n),
                      f64, f32);
    split_value_bytes(prec_, bytes_of(prec_) * na * static_cast<double>(n),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

EXW_WARM_FN
void ParMultiVector::scale_lanes(std::span<const Real> alpha,
                                 std::span<const std::uint8_t> mask) {
  EXW_PURITY_REGION("multivector-scale-lanes");
  EXW_REQUIRE(alpha.size() == ncomp_, "one scale factor per lane required");
  EXW_REQUIRE(mask.empty() || mask.size() == ncomp_,
              "lane mask size mismatch");
  const auto na = static_cast<double>(active_lanes(ncomp_, mask));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t n = local_n(r);
    auto& x = local_[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < ncomp_; ++c) {
      if (!mask.empty() && mask[c] == 0) continue;
      const Real a = alpha[c];
      for (std::size_t i = 0; i < n; ++i) {
        x[c * n + i] = store_value(x[c * n + i] * a, prec_);
      }
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, 2.0 * bytes_of(prec_) * na * static_cast<double>(n),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, na * static_cast<double>(n), f64, f32,
                                    0.0);
  });
}

EXW_WARM_FN
void ParMultiVector::axpy_lanes(std::span<const Real> alpha,
                                const ParMultiVector& x,
                                std::span<const std::uint8_t> mask) {
  EXW_PURITY_REGION("multivector-axpy-lanes");
  EXW_REQUIRE(alpha.size() == ncomp_, "one axpy factor per lane required");
  EXW_REQUIRE(mask.empty() || mask.size() == ncomp_,
              "lane mask size mismatch");
  EXW_REQUIRE(x.ncomp_ == ncomp_, "multivector lane count mismatch");
  EXW_REQUIRE(x.global_size() == global_size(), "multivector size mismatch");
  const auto na = static_cast<double>(active_lanes(ncomp_, mask));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t n = local_n(r);
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < ncomp_; ++c) {
      if (!mask.empty() && mask[c] == 0) continue;
      const Real a = alpha[c];
      for (std::size_t i = 0; i < n; ++i) {
        y[c * n + i] = store_value(y[c * n + i] + a * xs[c * n + i], prec_);
      }
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, 2.0 * bytes_of(prec_) * na * static_cast<double>(n),
                      f64, f32);
    split_value_bytes(x.prec_, bytes_of(x.prec_) * na * static_cast<double>(n),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * na * static_cast<double>(n), f64,
                                    f32, 0.0);
  });
}

EXW_WARM_FN
std::vector<double> ParMultiVector::dots(const ParMultiVector& other) const {
  EXW_PURITY_REGION("multivector-dots");
  EXW_REQUIRE(other.ncomp_ == ncomp_, "multivector lane count mismatch");
  EXW_REQUIRE(other.global_size() == global_size(),
              "multivector size mismatch");
  // Per-rank partial sums and the reduced result are the collective's
  // payload — MPI library buffers in a real run, not warm-path state.
  EXW_PURITY_ALLOW("collective payload staging");
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(nranks()), std::vector<double>(ncomp_, 0.0));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t n = local_n(r);
    const auto& x = local_[static_cast<std::size_t>(r)];
    const auto& y = other.local_[static_cast<std::size_t>(r)];
    auto& p = partial[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < ncomp_; ++c) {
      double s = 0;
      for (std::size_t i = 0; i < n; ++i) {
        s += x[c * n + i] * y[c * n + i];
      }
      p[c] = s;
    }
    const double nc = static_cast<double>(ncomp_) * static_cast<double>(n);
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, bytes_of(prec_) * nc, f64, f32);
    split_value_bytes(other.prec_, bytes_of(other.prec_) * nc, f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * nc, f64, f32, 0.0);
  });
  return rt_->allreduce_sum_vec(partial);
}

std::vector<double> ParMultiVector::norms() const {
  auto out = dots(*this);
  for (double& v : out) {
    v = std::sqrt(v);
  }
  return out;
}

void ParMultiVector::lane_fill(std::size_t lane, Real value) {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const Real sv = store_value(value, prec_);
  rt_->parallel_for_ranks([&](RankId r) {
    auto s = lane_span(r, lane);
    std::fill(s.begin(), s.end(), sv);
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, bytes_of(prec_) * static_cast<double>(s.size()),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

void ParMultiVector::lane_axpy(std::size_t lane, Real alpha,
                               const ParMultiVector& x) {
  EXW_REQUIRE(lane < ncomp_ && lane < x.ncomp_,
              "multivector lane out of range");
  EXW_REQUIRE(x.global_size() == global_size(), "multivector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto y = lane_span(r, lane);
    const auto xs = x.lane_span(r, lane);
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] = store_value(y[i] + alpha * xs[i], prec_);
    }
    const auto n = static_cast<double>(y.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, 2.0 * bytes_of(prec_) * n, f64, f32);
    split_value_bytes(x.prec_, bytes_of(x.prec_) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * n, f64, f32, 0.0);
  });
}

double ParMultiVector::lane_norm2(std::size_t lane) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  std::vector<double> partial(static_cast<std::size_t>(nranks()), 0.0);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto x = lane_span(r, lane);
    double s = 0;
    for (double v : x) {
      s += v * v;
    }
    partial[static_cast<std::size_t>(r)] = s;
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_,
                      2.0 * bytes_of(prec_) * static_cast<double>(x.size()),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * static_cast<double>(x.size()),
                                    f64, f32, 0.0);
  });
  return std::sqrt(rt_->allreduce_sum(partial));
}

void ParMultiVector::set_lane(std::size_t lane, const ParVector& src) {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  EXW_REQUIRE(src.global_size() == global_size(),
              "multivector/vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto dst = lane_span(r, lane);
    const auto& s = src.local(r);
    if (prec_ == Precision::kF32 &&
        src.value_precision() == Precision::kF64) {
      for (std::size_t i = 0; i < dst.size(); ++i) {
        dst[i] = demote_value(s[i]);
      }
    } else {
      std::copy(s.begin(), s.end(), dst.begin());
    }
    const auto n = static_cast<double>(s.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(src.value_precision(),
                      bytes_of(src.value_precision()) * n, f64, f32);
    split_value_bytes(prec_, bytes_of(prec_) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

void ParMultiVector::extract_lane(std::size_t lane, ParVector& dst) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  EXW_REQUIRE(dst.global_size() == global_size(),
              "multivector/vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    const auto s = lane_span(r, lane);
    auto& d = dst.local(r);
    if (dst.value_precision() == Precision::kF32 &&
        prec_ == Precision::kF64) {
      for (std::size_t i = 0; i < d.size(); ++i) {
        d[i] = demote_value(s[i]);
      }
    } else {
      std::copy(s.begin(), s.end(), d.begin());
    }
    const auto n = static_cast<double>(s.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, bytes_of(prec_) * n, f64, f32);
    split_value_bytes(dst.value_precision(),
                      bytes_of(dst.value_precision()) * n, f64, f32);
    rt_->tracer().kernel_split_prec(r, 0.0, f64, f32, 0.0);
  });
}

}  // namespace exw::linalg
