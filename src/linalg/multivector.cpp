#include "linalg/multivector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/parvector.hpp"
#include "perf/purity.hpp"

namespace exw::linalg {

namespace {
constexpr double kRead = sizeof(Real);

std::size_t active_lanes(std::size_t ncomp,
                         std::span<const std::uint8_t> mask) {
  if (mask.empty()) {
    return ncomp;
  }
  std::size_t n = 0;
  for (std::uint8_t m : mask) {
    if (m != 0) ++n;
  }
  return n;
}
}  // namespace

ParMultiVector::ParMultiVector(par::Runtime& rt, par::RowPartition rows,
                               std::size_t ncomp)
    : rt_(&rt), rows_(std::move(rows)), ncomp_(ncomp) {
  EXW_REQUIRE(ncomp >= 1, "multivector needs at least one lane");
  EXW_REQUIRE(rows_.nranks() == rt.nranks(),
              "multivector partition does not match runtime rank count");
  local_.resize(static_cast<std::size_t>(rows_.nranks()));
  for (RankId r{0}; r.value() < rows_.nranks(); ++r) {
    local_[static_cast<std::size_t>(r)].assign(ncomp_ * local_n(r), 0.0);
  }
}

std::span<Real> ParMultiVector::lane_span(RankId r, std::size_t lane) {
  EXW_CONTRACT_CHECK_WRITE(r, "ParMultiVector::lane_span(r)");
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const std::size_t n = local_n(r);
  return std::span<Real>(local_[static_cast<std::size_t>(r)])
      .subspan(lane * n, n);
}

std::span<const Real> ParMultiVector::lane_span(RankId r,
                                                std::size_t lane) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const std::size_t n = local_n(r);
  return std::span<const Real>(local_[static_cast<std::size_t>(r)])
      .subspan(lane * n, n);
}

Real& ParMultiVector::at(std::size_t lane, GlobalIndex g) {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)]
               [lane * local_n(r) +
                static_cast<std::size_t>(rows_.to_local(r, g))];
}

Real ParMultiVector::at(std::size_t lane, GlobalIndex g) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  const RankId r = rows_.rank_of(g);
  return local_[static_cast<std::size_t>(r)]
               [lane * local_n(r) +
                static_cast<std::size_t>(rows_.to_local(r, g))];
}

void ParMultiVector::fill(Real value) {
  rt_->parallel_for_ranks([&](RankId r) {
    auto& x = local_[static_cast<std::size_t>(r)];
    std::fill(x.begin(), x.end(), value);
    rt_->tracer().kernel(r, 0.0, kRead * static_cast<double>(x.size()));
  });
}

void ParMultiVector::copy_from(const ParMultiVector& other) {
  EXW_REQUIRE(other.ncomp_ == ncomp_, "multivector lane count mismatch");
  EXW_REQUIRE(other.global_size() == global_size(),
              "multivector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    local_[static_cast<std::size_t>(r)] =
        other.local_[static_cast<std::size_t>(r)];
    rt_->tracer().kernel(
        r, 0.0,
        2.0 * kRead *
            static_cast<double>(local_[static_cast<std::size_t>(r)].size()));
  });
}

EXW_WARM_FN
void ParMultiVector::scale_lanes(std::span<const Real> alpha,
                                 std::span<const std::uint8_t> mask) {
  EXW_PURITY_REGION("multivector-scale-lanes");
  EXW_REQUIRE(alpha.size() == ncomp_, "one scale factor per lane required");
  EXW_REQUIRE(mask.empty() || mask.size() == ncomp_,
              "lane mask size mismatch");
  const auto na = static_cast<double>(active_lanes(ncomp_, mask));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t n = local_n(r);
    auto& x = local_[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < ncomp_; ++c) {
      if (!mask.empty() && mask[c] == 0) continue;
      const Real a = alpha[c];
      for (std::size_t i = 0; i < n; ++i) {
        x[c * n + i] *= a;
      }
    }
    rt_->tracer().kernel(r, na * static_cast<double>(n),
                         2.0 * kRead * na * static_cast<double>(n));
  });
}

EXW_WARM_FN
void ParMultiVector::axpy_lanes(std::span<const Real> alpha,
                                const ParMultiVector& x,
                                std::span<const std::uint8_t> mask) {
  EXW_PURITY_REGION("multivector-axpy-lanes");
  EXW_REQUIRE(alpha.size() == ncomp_, "one axpy factor per lane required");
  EXW_REQUIRE(mask.empty() || mask.size() == ncomp_,
              "lane mask size mismatch");
  EXW_REQUIRE(x.ncomp_ == ncomp_, "multivector lane count mismatch");
  EXW_REQUIRE(x.global_size() == global_size(), "multivector size mismatch");
  const auto na = static_cast<double>(active_lanes(ncomp_, mask));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t n = local_n(r);
    auto& y = local_[static_cast<std::size_t>(r)];
    const auto& xs = x.local_[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < ncomp_; ++c) {
      if (!mask.empty() && mask[c] == 0) continue;
      const Real a = alpha[c];
      for (std::size_t i = 0; i < n; ++i) {
        y[c * n + i] += a * xs[c * n + i];
      }
    }
    rt_->tracer().kernel(r, 2.0 * na * static_cast<double>(n),
                         3.0 * kRead * na * static_cast<double>(n));
  });
}

EXW_WARM_FN
std::vector<double> ParMultiVector::dots(const ParMultiVector& other) const {
  EXW_PURITY_REGION("multivector-dots");
  EXW_REQUIRE(other.ncomp_ == ncomp_, "multivector lane count mismatch");
  EXW_REQUIRE(other.global_size() == global_size(),
              "multivector size mismatch");
  // Per-rank partial sums and the reduced result are the collective's
  // payload — MPI library buffers in a real run, not warm-path state.
  EXW_PURITY_ALLOW("collective payload staging");
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(nranks()), std::vector<double>(ncomp_, 0.0));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t n = local_n(r);
    const auto& x = local_[static_cast<std::size_t>(r)];
    const auto& y = other.local_[static_cast<std::size_t>(r)];
    auto& p = partial[static_cast<std::size_t>(r)];
    for (std::size_t c = 0; c < ncomp_; ++c) {
      double s = 0;
      for (std::size_t i = 0; i < n; ++i) {
        s += x[c * n + i] * y[c * n + i];
      }
      p[c] = s;
    }
    rt_->tracer().kernel(
        r, 2.0 * static_cast<double>(ncomp_) * static_cast<double>(n),
        2.0 * kRead * static_cast<double>(ncomp_) * static_cast<double>(n));
  });
  return rt_->allreduce_sum_vec(partial);
}

std::vector<double> ParMultiVector::norms() const {
  auto out = dots(*this);
  for (double& v : out) {
    v = std::sqrt(v);
  }
  return out;
}

void ParMultiVector::lane_fill(std::size_t lane, Real value) {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  rt_->parallel_for_ranks([&](RankId r) {
    auto s = lane_span(r, lane);
    std::fill(s.begin(), s.end(), value);
    rt_->tracer().kernel(r, 0.0, kRead * static_cast<double>(s.size()));
  });
}

void ParMultiVector::lane_axpy(std::size_t lane, Real alpha,
                               const ParMultiVector& x) {
  EXW_REQUIRE(lane < ncomp_ && lane < x.ncomp_,
              "multivector lane out of range");
  EXW_REQUIRE(x.global_size() == global_size(), "multivector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto y = lane_span(r, lane);
    const auto xs = x.lane_span(r, lane);
    for (std::size_t i = 0; i < y.size(); ++i) {
      y[i] += alpha * xs[i];
    }
    rt_->tracer().kernel(r, 2.0 * static_cast<double>(y.size()),
                         3.0 * kRead * static_cast<double>(y.size()));
  });
}

double ParMultiVector::lane_norm2(std::size_t lane) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  std::vector<double> partial(static_cast<std::size_t>(nranks()), 0.0);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto x = lane_span(r, lane);
    double s = 0;
    for (double v : x) {
      s += v * v;
    }
    partial[static_cast<std::size_t>(r)] = s;
    rt_->tracer().kernel(r, 2.0 * static_cast<double>(x.size()),
                         2.0 * kRead * static_cast<double>(x.size()));
  });
  return std::sqrt(rt_->allreduce_sum(partial));
}

void ParMultiVector::set_lane(std::size_t lane, const ParVector& src) {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  EXW_REQUIRE(src.global_size() == global_size(),
              "multivector/vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    auto dst = lane_span(r, lane);
    const auto& s = src.local(r);
    std::copy(s.begin(), s.end(), dst.begin());
    rt_->tracer().kernel(r, 0.0, 2.0 * kRead * static_cast<double>(s.size()));
  });
}

void ParMultiVector::extract_lane(std::size_t lane, ParVector& dst) const {
  EXW_REQUIRE(lane < ncomp_, "multivector lane out of range");
  EXW_REQUIRE(dst.global_size() == global_size(),
              "multivector/vector size mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    const auto s = lane_span(r, lane);
    auto& d = dst.local(r);
    std::copy(s.begin(), s.end(), d.begin());
    rt_->tracer().kernel(r, 0.0, 2.0 * kRead * static_cast<double>(s.size()));
  });
}

}  // namespace exw::linalg
