#pragma once
/// \file parcsr.hpp
/// Distributed sparse matrix in hypre's ParCSR layout.
///
/// Each simulated rank owns a contiguous block of global rows and stores
/// them as two CSR blocks (paper §3.3, Algorithm 1, line 7): `diag` holds
/// the columns owned by the same rank (local square-ish block) and `offd`
/// holds columns owned by other ranks, compressed through `col_map`
/// (offd local column -> global column, ascending). This split is "an
/// efficient decomposition for performing SpMVs in parallel": the diag
/// product needs no communication and the offd product consumes exactly
/// the halo values fetched by the communication package.

#include <cstdint>
#include <span>
#include <vector>

#include "common/precision.hpp"
#include "common/types.hpp"
#include "linalg/multivector.hpp"
#include "linalg/parmatrix.hpp"
#include "linalg/parvector.hpp"
#include "par/partition.hpp"
#include "par/runtime.hpp"
#include "sparse/csr.hpp"

namespace exw::linalg {

/// One rank's share of the matrix.
struct RankBlock {
  sparse::Csr diag;
  sparse::Csr offd;
  std::vector<GlobalIndex> col_map;  ///< offd local col -> global col
};

/// Precomputed in-place value-refill map for one rank's diag/offd blocks
/// (the warm half of the assembly-plan cache, built by
/// assembly::AssemblyPlan). Assembled entry e gathers the stacked value
/// stream through stacked[perm[seg_ptr[e] .. seg_ptr[e+1])] in ascending
/// permutation order — the same addend order as stable_sort_by_key +
/// reduce_by_key, so a refill is bitwise-identical to cold assembly —
/// and lands at diag vals[dest[e]] when dest[e] >= 0, else at
/// offd vals[-dest[e] - 1].
struct ValueFillPlan {
  std::vector<std::size_t> perm;     ///< sorted position -> stacked slot
  std::vector<std::size_t> seg_ptr;  ///< entry -> range in perm
  std::vector<std::int64_t> dest;    ///< entry -> diag k / offd -(k+1)
};

/// hypre-style communication package: who sends which owned values where.
struct CommPkg {
  struct Send {
    RankId dst{0};
    std::vector<LocalIndex> idx;  ///< local col indices to pack
  };
  struct Recv {
    RankId src{0};
    LocalIndex count{0};  ///< contiguous run in col_map order
  };
  std::vector<std::vector<Send>> sends;  ///< [rank]
  std::vector<std::vector<Recv>> recvs;  ///< [rank], ascending src
};

class ParCsr final : public ParMatrix {
 public:
  ParCsr() = default;

  /// Wrap per-rank blocks (col_map sorted ascending, offd cols indexing
  /// into it). Builds the communication package.
  ParCsr(par::Runtime& rt, par::RowPartition rows, par::RowPartition cols,
         std::vector<RankBlock> blocks);

  /// Split a serial CSR into ParCSR form (tests / reference paths).
  static ParCsr from_serial(par::Runtime& rt, const sparse::Csr& global,
                            const par::RowPartition& rows,
                            const par::RowPartition& cols);

  const char* format_name() const override { return "csr"; }
  const par::RowPartition& rows() const override { return rows_; }
  const par::RowPartition& cols() const override { return cols_; }
  int nranks() const override { return rows_.nranks(); }
  GlobalIndex global_rows() const override { return rows_.global_size(); }
  GlobalIndex global_cols() const override { return cols_.global_size(); }

  const RankBlock& block(RankId r) const {
    return blocks_[static_cast<std::size_t>(r)];
  }
  /// Mutable access to rank r's block. Inside a parallel rank region
  /// only rank r's own body may take it (contract-checked).
  RankBlock& block_mut(RankId r) {
    EXW_CONTRACT_CHECK_WRITE(r, "ParCsr::block_mut(r)");
    return blocks_[static_cast<std::size_t>(r)];
  }
  const CommPkg& comm() const { return comm_; }

  /// Warm-path value refill of rank r's blocks from the stacked value
  /// stream (owned values followed by received values in Algorithm 1's
  /// stacking order). Structure — row_ptr, cols, col_map, CommPkg — is
  /// untouched and no memory is allocated; this is the reproduction of
  /// hypre's SetValues2/AddToValues2 fast path, where repeated
  /// assemblies skip structure discovery entirely. Inside a parallel
  /// rank region only rank r's own body may call it (contract-checked).
  void set_values_from_plan(RankId r, const ValueFillPlan& plan,
                            std::span<const Real> stacked);

  /// Storage precision of the value arrays (indices are never demoted).
  /// An FP32-tagged matrix holds only FP32-representable values, its
  /// kernels price the value stream at 4 bytes/entry, and V-cycle
  /// transfer payloads serialize as float (DESIGN.md §16).
  Precision value_precision() const { return prec_; }

  /// Demote every diag/offd value in place and tag the matrix kF32.
  /// Cold setup operation (AMG hierarchy construction); charges one
  /// value-stream pass per rank. Throws on FP32 range overflow.
  void demote_values();

  /// Warm value-only refresh from an FP64 twin with identical structure:
  /// demote src's values straight into this matrix's FP32 storage, no
  /// allocation, structure untouched. The mixed-precision analogue of
  /// set_values_from_plan for preconditioner rebinds.
  void copy_demoted_values_from(const ParCsr& src);

  GlobalIndex nnz_of_rank(RankId r) const;
  GlobalIndex global_nnz() const override;
  /// Per-rank nonzero counts — the quantity of Figs. 5 and 10.
  std::vector<double> nnz_per_rank() const;

  /// Fetch halo values of `x` (laid out per rank in col_map order),
  /// charging pack kernels and one message per neighbor pair.
  std::vector<RealVector> halo_exchange(const ParVector& x) const;

  /// Fused halo fetch for all lanes of `x`: per rank one SoA buffer of
  /// size ncomp * col_map.size() (lane c's halo values occupy the plane
  /// [c*m, (c+1)*m)), one message per neighbor pair carrying every
  /// lane's payload — the batched-comm half of the fused SpMV.
  std::vector<RealVector> halo_exchange_multi(const ParMultiVector& x) const;

  /// y = alpha * A * x + beta * y (x over cols(), y over rows()).
  void matvec(const ParVector& x, ParVector& y, Real alpha = 1.0,
              Real beta = 0.0) const override;

  /// r = b - A * x.
  void residual(const ParVector& b, const ParVector& x,
                ParVector& r) const override;

  void matvec_multi(const ParMultiVector& x, ParMultiVector& y,
                    Real alpha = 1.0, Real beta = 0.0) const override;

  void residual_multi(const ParMultiVector& b, const ParMultiVector& x,
                      ParMultiVector& r) const override;

  /// y = alpha * A^T * x + beta * y (x over rows(), y over cols()).
  /// Off-diagonal contributions are sent to the owning ranks — the
  /// reverse of the halo pattern; used for AMG restriction with R = P^T.
  void matvec_transpose(const ParVector& x, ParVector& y, Real alpha = 1.0,
                        Real beta = 0.0) const;

  /// Per-rank diagonal of the diag block.
  std::vector<RealVector> diagonals() const override;

  /// Reassemble the full matrix on one "rank" (tests only).
  sparse::Csr to_serial() const;

  par::Runtime& runtime() const override { return *rt_; }

 private:
  void build_comm_pkg();

  par::Runtime* rt_ = nullptr;
  par::RowPartition rows_;
  par::RowPartition cols_;
  std::vector<RankBlock> blocks_;
  CommPkg comm_;
  Precision prec_ = Precision::kF64;
};

/// Rows of a distributed matrix fetched from other ranks, with *global*
/// column indices (used by the distributed Galerkin product).
struct ExtRows {
  std::vector<GlobalIndex> row_ids;   ///< global row ids, ascending
  std::vector<std::size_t> row_ptr;   ///< size row_ids.size() + 1
  std::vector<GlobalIndex> cols;
  std::vector<Real> vals;

  /// Index of global row `g` in row_ids, or npos.
  std::size_t find(GlobalIndex g) const;
};

/// For each rank, fetch the rows of `m` listed in `needed[r]` (global row
/// ids owned by other ranks). One request + one reply message per
/// neighbor pair is charged.
std::vector<ExtRows> fetch_external_rows(
    const ParCsr& m, const std::vector<std::vector<GlobalIndex>>& needed);

}  // namespace exw::linalg
