#include "linalg/parcsr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "par/tags.hpp"
#include "perf/purity.hpp"
#include "sparse/prim.hpp"

namespace exw::linalg {

// Channel tags come from the central registry (par/tags.hpp); the
// former file-local 101-105 constants live there now, uniqueness
// compile-checked against every other subsystem.
namespace tags = par::tags;

ParCsr::ParCsr(par::Runtime& rt, par::RowPartition rows,
               par::RowPartition cols, std::vector<RankBlock> blocks)
    : rt_(&rt), rows_(std::move(rows)), cols_(std::move(cols)),
      blocks_(std::move(blocks)) {
  EXW_REQUIRE(checked_narrow<int>(blocks_.size()) == rows_.nranks(),
              "one block per rank required");
  EXW_REQUIRE(rows_.nranks() == cols_.nranks(),
              "row/col partitions must agree on rank count");
  for (RankId r{0}; r.value() < rows_.nranks(); ++r) {
    const auto& b = blocks_[static_cast<std::size_t>(r)];
    EXW_REQUIRE(b.diag.nrows() == rows_.local_size(r), "diag block rows");
    EXW_REQUIRE(b.offd.nrows() == rows_.local_size(r), "offd block rows");
    EXW_REQUIRE(b.offd.ncols() == checked_narrow<LocalIndex>(b.col_map.size()),
                "offd cols must match col_map");
    EXW_REQUIRE(std::is_sorted(b.col_map.begin(), b.col_map.end()),
                "col_map must be ascending");
  }
  build_comm_pkg();
}

void ParCsr::build_comm_pkg() {
  const int nranks = rows_.nranks();
  comm_.sends.assign(static_cast<std::size_t>(nranks), {});
  comm_.recvs.assign(static_cast<std::size_t>(nranks), {});
  // Group each rank's col_map by owner (ascending col_map => grouped runs),
  // then mirror the request onto the owner's send list.
  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& map = blocks_[static_cast<std::size_t>(r)].col_map;
    std::size_t i = 0;
    while (i < map.size()) {
      const RankId owner = cols_.rank_of(map[i]);
      EXW_REQUIRE(owner != r, "owned column found in offd col_map");
      std::size_t j = i;
      CommPkg::Send send;
      send.dst = r;
      while (j < map.size() && cols_.rank_of(map[j]) == owner) {
        send.idx.push_back(cols_.to_local(owner, map[j]));
        ++j;
      }
      comm_.recvs[static_cast<std::size_t>(r)].push_back(
          CommPkg::Recv{owner, checked_narrow<LocalIndex>(j - i)});
      comm_.sends[static_cast<std::size_t>(owner)].push_back(std::move(send));
      i = j;
    }
  }
}

void ParCsr::demote_values() {
  prec_ = Precision::kF32;
  rt_->parallel_for_ranks([&](RankId r) {
    RankBlock& blk = blocks_[static_cast<std::size_t>(r)];
    for (Real& v : blk.diag.vals_vec()) v = demote_value(v);
    for (Real& v : blk.offd.vals_vec()) v = demote_value(v);
    const auto nnz = static_cast<double>(blk.diag.nnz() + blk.offd.nnz());
    // One pass: read the fp64 value, write the fp32 storage.
    rt_->tracer().kernel_split_prec(r, nnz, sizeof(double) * nnz,
                                    sizeof(float) * nnz, 0.0);
  });
}

EXW_WARM_FN
void ParCsr::copy_demoted_values_from(const ParCsr& src) {
  EXW_PURITY_REGION("parcsr-demote-refresh");
  EXW_REQUIRE(prec_ == Precision::kF32,
              "demoted refresh targets an fp32-tagged matrix");
  EXW_REQUIRE(src.nranks() == nranks(), "demoted refresh rank mismatch");
  rt_->parallel_for_ranks([&](RankId r) {
    RankBlock& dst = blocks_[static_cast<std::size_t>(r)];
    const RankBlock& s = src.blocks_[static_cast<std::size_t>(r)];
    EXW_REQUIRE(s.diag.nnz() == dst.diag.nnz() &&
                    s.offd.nnz() == dst.offd.nnz(),
                "demoted refresh structure mismatch");
    auto dv = dst.diag.vals_mut();
    const auto sv = s.diag.vals();
    const auto dn = EntryOffset{static_cast<std::int64_t>(dst.diag.nnz())};
    for (EntryOffset k{0}; k < dn; ++k) {
      dv[k] = demote_value(sv[k]);
    }
    auto ov = dst.offd.vals_mut();
    const auto so = s.offd.vals();
    const auto on = EntryOffset{static_cast<std::int64_t>(dst.offd.nnz())};
    for (EntryOffset k{0}; k < on; ++k) {
      ov[k] = demote_value(so[k]);
    }
    const auto nnz = static_cast<double>(dst.diag.nnz() + dst.offd.nnz());
    rt_->tracer().kernel_split_prec(r, nnz, sizeof(double) * nnz,
                                    sizeof(float) * nnz, 0.0);
  });
}

EXW_WARM_FN
void ParCsr::set_values_from_plan(RankId r, const ValueFillPlan& plan,
                                  std::span<const Real> stacked) {
  EXW_PURITY_REGION("parcsr-value-fill");
  EXW_CONTRACT_CHECK_WRITE(r, "ParCsr::set_values_from_plan(r)");
  // Note: a value refill writes raw FP64 values even into an FP32-tagged
  // matrix — the AMG value replay deliberately runs the whole Galerkin
  // chain in FP64 and demotes every level once at the end, so refresh
  // stays bitwise-identical to a cold rebuild. A caller that refills an
  // FP32 matrix owns the follow-up demote_values() pass before the next
  // kernel consumes it (AmgHierarchy::refresh_values does).
  RankBlock& blk = blocks_[static_cast<std::size_t>(r)];
  EXW_REQUIRE(plan.seg_ptr.size() == plan.dest.size() + 1 &&
                  (plan.perm.empty() || plan.seg_ptr.back() == plan.perm.size()),
              "value-fill plan shape mismatch");
  EXW_REQUIRE(stacked.size() == plan.perm.size(),
              "stacked value stream does not match plan");
  EXW_REQUIRE(plan.dest.size() == blk.diag.nnz() + blk.offd.nnz(),
              "value-fill plan does not match block structure");
  auto& dvals = blk.diag.vals_vec();
  auto& ovals = blk.offd.vals_vec();
  sparse::prim::segmented_reduce<Real>(
      stacked, plan.perm, plan.seg_ptr, [&](std::size_t e, Real acc) {
        const std::int64_t d = plan.dest[e];
        if (d >= 0) {
          dvals[static_cast<std::size_t>(d)] = acc;
        } else {
          ovals[static_cast<std::size_t>(-d - 1)] = acc;
        }
      });
  // One streaming pass: gathered value + permutation index per stacked
  // slot, destination index + value store per assembled entry.
  const auto n_in = static_cast<double>(plan.perm.size());
  const auto n_out = static_cast<double>(plan.dest.size());
  rt_->tracer().kernel(r, n_in - n_out,
                       n_in * (sizeof(Real) + sizeof(std::size_t)) +
                           n_out * (sizeof(Real) + sizeof(std::int64_t)));
}

ParCsr ParCsr::from_serial(par::Runtime& rt, const sparse::Csr& global,
                           const par::RowPartition& rows,
                           const par::RowPartition& cols) {
  std::vector<RankBlock> blocks(static_cast<std::size_t>(rows.nranks()));
  for (RankId r{0}; r.value() < rows.nranks(); ++r) {
    RankBlock& b = blocks[static_cast<std::size_t>(r)];
    const GlobalIndex row0 = rows.first_row(r);
    const GlobalIndex row1 = rows.end_row(r);
    const GlobalIndex col0 = cols.first_row(r);
    const GlobalIndex col1 = cols.end_row(r);
    const auto nlocal = checked_narrow<LocalIndex>(row1 - row0);

    // Collect off-diagonal global columns for this rank.
    std::vector<GlobalIndex> offd_cols;
    for (GlobalIndex i = row0; i < row1; ++i) {
      // The serial matrix addresses all rows with local indices.
      const auto li = checked_narrow<LocalIndex>(i);
      for (EntryOffset k = global.row_begin(li); k < global.row_end(li); ++k) {
        const GlobalIndex c{global.cols()[k].value()};
        if (c < col0 || c >= col1) {
          offd_cols.push_back(c);
        }
      }
    }
    std::sort(offd_cols.begin(), offd_cols.end());
    offd_cols.erase(std::unique(offd_cols.begin(), offd_cols.end()),
                    offd_cols.end());
    b.col_map = offd_cols;

    b.diag = sparse::Csr(nlocal, checked_narrow<LocalIndex>(col1 - col0));
    b.offd = sparse::Csr(nlocal, checked_narrow<LocalIndex>(offd_cols.size()));
    auto& drp = b.diag.row_ptr_mut();
    auto& orp = b.offd.row_ptr_mut();
    for (GlobalIndex i = row0; i < row1; ++i) {
      const auto li = checked_narrow<LocalIndex>(i);
      for (EntryOffset k = global.row_begin(li); k < global.row_end(li); ++k) {
        const GlobalIndex c{global.cols()[k].value()};
        const Real v = global.vals()[k];
        if (c >= col0 && c < col1) {
          b.diag.cols_vec().push_back(checked_narrow<LocalIndex>(c - col0));
          b.diag.vals_vec().push_back(v);
        } else {
          const auto it =
              std::lower_bound(offd_cols.begin(), offd_cols.end(), c);
          b.offd.cols_vec().push_back(
              checked_narrow<LocalIndex>(it - offd_cols.begin()));
          b.offd.vals_vec().push_back(v);
        }
      }
      drp[static_cast<std::size_t>(i - row0) + 1] =
          EntryOffset{b.diag.cols_vec().size()};
      orp[static_cast<std::size_t>(i - row0) + 1] =
          EntryOffset{b.offd.cols_vec().size()};
    }
  }
  return ParCsr(rt, rows, cols, std::move(blocks));
}

GlobalIndex ParCsr::nnz_of_rank(RankId r) const {
  const auto& b = blocks_[static_cast<std::size_t>(r)];
  return checked_narrow<GlobalIndex>(b.diag.nnz() + b.offd.nnz());
}

GlobalIndex ParCsr::global_nnz() const {
  GlobalIndex n{0};
  for (RankId r{0}; r.value() < nranks(); ++r) n += nnz_of_rank(r);
  return n;
}

std::vector<double> ParCsr::nnz_per_rank() const {
  std::vector<double> out(static_cast<std::size_t>(nranks()));
  for (RankId r{0}; r.value() < nranks(); ++r) {
    out[static_cast<std::size_t>(r)] =
        static_cast<double>(nnz_of_rank(r).value());
  }
  return out;
}

std::vector<RealVector> ParCsr::halo_exchange(const ParVector& x) const {
  auto& transport = rt_->transport();
  const int nranks = rows_.nranks();
  // FP32-tagged vectors ship their halos as float: lossless (stores
  // round through float, so every held value is FP32-representable) and
  // the Transport's sizeof(T)-based message charge halves by itself.
  const bool f32 = x.value_precision() == Precision::kF32;
  // Pack + send owned values requested by neighbors.
  rt_->parallel_for_ranks([&](RankId r) {
    for (const auto& send : comm_.sends[static_cast<std::size_t>(r)]) {
      const auto& xl = x.local(r);
      const double pack_bytes =
          2.0 * bytes_of(x.value_precision()) *
          static_cast<double>(send.idx.size());
      if (f32) {
        std::vector<float> buf(send.idx.size());
        for (std::size_t i = 0; i < send.idx.size(); ++i) {
          buf[i] =
              static_cast<float>(xl[static_cast<std::size_t>(send.idx[i])]);
        }
        rt_->tracer().kernel_split_prec(r, 0.0, 0.0, pack_bytes, 0.0);
        transport.send(r, send.dst, tags::kHaloValues, std::move(buf));
      } else {
        RealVector buf(send.idx.size());
        for (std::size_t i = 0; i < send.idx.size(); ++i) {
          buf[i] = xl[static_cast<std::size_t>(send.idx[i])];
        }
        rt_->tracer().kernel(r, 0.0, pack_bytes);
        transport.send(r, send.dst, tags::kHaloValues, std::move(buf));
      }
    }
  });
  // Receive in col_map order (all sends completed at the region barrier).
  std::vector<RealVector> ext(static_cast<std::size_t>(nranks));
  rt_->parallel_for_ranks([&](RankId r) {
    auto& e = ext[static_cast<std::size_t>(r)];
    e.reserve(blocks_[static_cast<std::size_t>(r)].col_map.size());
    for (const auto& recv : comm_.recvs[static_cast<std::size_t>(r)]) {
      if (f32) {
        auto buf = transport.recv<float>(r, recv.src, tags::kHaloValues);
        EXW_ASSERT(checked_narrow<LocalIndex>(buf.size()) == recv.count);
        e.insert(e.end(), buf.begin(), buf.end());  // exact promotion
      } else {
        auto buf = transport.recv<Real>(r, recv.src, tags::kHaloValues);
        EXW_ASSERT(checked_narrow<LocalIndex>(buf.size()) == recv.count);
        e.insert(e.end(), buf.begin(), buf.end());
      }
    }
  });
  return ext;
}

void ParCsr::matvec(const ParVector& x, ParVector& y, Real alpha,
                    Real beta) const {
  EXW_REQUIRE(x.global_size() == global_cols(), "matvec x size mismatch");
  EXW_REQUIRE(y.global_size() == global_rows(), "matvec y size mismatch");
  const auto ext = halo_exchange(x);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& b = blocks_[static_cast<std::size_t>(r)];
    auto& yl = y.local(r);
    b.diag.spmv(x.local(r), yl, alpha, beta);
    if (b.offd.nnz() > 0) {
      b.offd.spmv(ext[static_cast<std::size_t>(r)], yl, alpha, 1.0);
    }
    if (y.value_precision() == Precision::kF32) {
      // Fused diag+offd accumulation in fp64 registers, one rounded
      // store into the FP32-tagged result.
      for (Real& v : yl) v = demote_value(v);
    }
    // Same total traffic as before the index/value split: matrix values
    // + gathered x are value bytes, the column indices are index bytes —
    // each value stream priced at its container's storage precision.
    const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
    const auto ny = static_cast<double>(yl.size());
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, nnz * bytes_of(prec_), f64, f32);
    split_value_bytes(y.value_precision(),
                      2.0 * bytes_of(y.value_precision()) * ny, f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * nnz, f64, f32,
                                    nnz * sizeof(LocalIndex));
  });
}

void ParCsr::residual(const ParVector& b, const ParVector& x,
                      ParVector& r) const {
  r.copy_from(b);
  matvec(x, r, -1.0, 1.0);
}

std::vector<RealVector> ParCsr::halo_exchange_multi(
    const ParMultiVector& x) const {
  auto& transport = rt_->transport();
  const int nranks = rows_.nranks();
  const std::size_t lanes = x.ncomp();
  const bool f32 = x.value_precision() == Precision::kF32;
  // Pack every lane's requested values into one buffer per neighbor,
  // lane-major, so the per-message latency is paid once for all lanes.
  // FP32-tagged multivectors ship float payloads (lossless, see
  // halo_exchange).
  rt_->parallel_for_ranks([&](RankId r) {
    for (const auto& send : comm_.sends[static_cast<std::size_t>(r)]) {
      const double pack_bytes =
          2.0 * bytes_of(x.value_precision()) *
          static_cast<double>(lanes * send.idx.size());
      if (f32) {
        std::vector<float> buf(lanes * send.idx.size());
        for (std::size_t l = 0; l < lanes; ++l) {
          const auto xl = x.lane_span(r, l);
          for (std::size_t i = 0; i < send.idx.size(); ++i) {
            buf[l * send.idx.size() + i] = static_cast<float>(
                xl[static_cast<std::size_t>(send.idx[i])]);
          }
        }
        rt_->tracer().kernel_split_prec(r, 0.0, 0.0, pack_bytes, 0.0);
        transport.send(r, send.dst, tags::kHaloValues, std::move(buf));
      } else {
        RealVector buf(lanes * send.idx.size());
        for (std::size_t l = 0; l < lanes; ++l) {
          const auto xl = x.lane_span(r, l);
          for (std::size_t i = 0; i < send.idx.size(); ++i) {
            buf[l * send.idx.size() + i] =
                xl[static_cast<std::size_t>(send.idx[i])];
          }
        }
        rt_->tracer().kernel(r, 0.0, pack_bytes);
        transport.send(r, send.dst, tags::kHaloValues, std::move(buf));
      }
    }
  });
  // Receive in col_map order; lane c's halo values land in the plane
  // [c*m, (c+1)*m) of the rank's ext buffer (m = col_map size), matching
  // the stride spmv_multi reads the offd product with.
  std::vector<RealVector> ext(static_cast<std::size_t>(nranks));
  rt_->parallel_for_ranks([&](RankId r) {
    const std::size_t m = blocks_[static_cast<std::size_t>(r)].col_map.size();
    auto& e = ext[static_cast<std::size_t>(r)];
    e.assign(lanes * m, 0.0);
    std::size_t offset = 0;
    for (const auto& recv : comm_.recvs[static_cast<std::size_t>(r)]) {
      const auto scatter = [&](const auto& buf) {
        const auto count = static_cast<std::size_t>(recv.count);
        EXW_ASSERT(buf.size() == lanes * count);
        for (std::size_t l = 0; l < lanes; ++l) {
          std::copy(buf.begin() + static_cast<std::ptrdiff_t>(l * count),
                    buf.begin() + static_cast<std::ptrdiff_t>((l + 1) * count),
                    e.begin() + static_cast<std::ptrdiff_t>(l * m + offset));
        }
        offset += count;
      };
      if (f32) {
        scatter(transport.recv<float>(r, recv.src, tags::kHaloValues));
      } else {
        scatter(transport.recv<Real>(r, recv.src, tags::kHaloValues));
      }
    }
  });
  return ext;
}

void ParCsr::matvec_multi(const ParMultiVector& x, ParMultiVector& y,
                          Real alpha, Real beta) const {
  EXW_REQUIRE(x.global_size() == global_cols(), "matvec x size mismatch");
  EXW_REQUIRE(y.global_size() == global_rows(), "matvec y size mismatch");
  EXW_REQUIRE(x.ncomp() == y.ncomp(), "matvec lane count mismatch");
  const std::size_t lanes = x.ncomp();
  const auto ext = halo_exchange_multi(x);
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& b = blocks_[static_cast<std::size_t>(r)];
    const std::size_t xs =
        static_cast<std::size_t>(cols_.local_size(r).value());
    const std::size_t ys =
        static_cast<std::size_t>(rows_.local_size(r).value());
    auto& yl = y.local(r);
    b.diag.spmv_multi(x.local(r), xs, yl, ys, lanes, alpha, beta);
    if (b.offd.nnz() > 0) {
      const std::size_t m = b.col_map.size();
      b.offd.spmv_multi(ext[static_cast<std::size_t>(r)], m, yl, ys, lanes,
                        alpha, 1.0);
    }
    if (y.value_precision() == Precision::kF32) {
      for (Real& v : yl) v = demote_value(v);
    }
    // The fused pass streams matrix values, x gathers, and y updates
    // once per lane — but the column indices only once for all lanes:
    // that one-index-read-per-ncomp-value-lanes is the whole point.
    const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
    const auto nl = static_cast<double>(lanes);
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, nl * nnz * bytes_of(prec_), f64, f32);
    split_value_bytes(y.value_precision(),
                      nl * 2.0 * bytes_of(y.value_precision()) *
                          static_cast<double>(ys),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * nnz * nl, f64, f32,
                                    nnz * sizeof(LocalIndex));
  });
}

void ParCsr::residual_multi(const ParMultiVector& b, const ParMultiVector& x,
                            ParMultiVector& r) const {
  r.copy_from(b);
  matvec_multi(x, r, -1.0, 1.0);
}

void ParCsr::matvec_transpose(const ParVector& x, ParVector& y, Real alpha,
                              Real beta) const {
  EXW_REQUIRE(x.global_size() == global_rows(), "matvec_T x size mismatch");
  EXW_REQUIRE(y.global_size() == global_cols(), "matvec_T y size mismatch");
  auto& transport = rt_->transport();
  const int nranks = rows_.nranks();

  // Local transpose products: diag^T into owned part of y; offd^T into a
  // buffer laid out in col_map order, shipped to the owners (the exact
  // reverse of the halo exchange, so the comm package is reused).
  std::vector<RealVector> offd_contrib(static_cast<std::size_t>(nranks));
  rt_->parallel_for_ranks([&](RankId r) {
    const auto& b = blocks_[static_cast<std::size_t>(r)];
    auto& yl = y.local(r);
    b.diag.spmv_transpose(x.local(r), yl, alpha, beta);
    auto& buf = offd_contrib[static_cast<std::size_t>(r)];
    buf.assign(b.col_map.size(), 0.0);
    if (b.offd.nnz() > 0) {
      b.offd.spmv_transpose(x.local(r), buf, alpha, 0.0);
    }
    const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
    double f64 = 0, f32 = 0;
    split_value_bytes(prec_, nnz * bytes_of(prec_), f64, f32);
    split_value_bytes(y.value_precision(),
                      2.0 * bytes_of(y.value_precision()) *
                          static_cast<double>(yl.size()),
                      f64, f32);
    rt_->tracer().kernel_split_prec(r, 2.0 * nnz, f64, f32,
                                    nnz * sizeof(LocalIndex));
  });
  // Reverse-direction exchange: each recv run in col_map order becomes a
  // send back to its source rank. An FP32-tagged operator (AMG
  // restriction in the mixed hierarchy) ships float contributions — the
  // rounding a real FP32 MPI buffer applies; deterministic because the
  // partition is fixed.
  const bool f32_wire = prec_ == Precision::kF32;
  rt_->parallel_for_ranks([&](RankId r) {
    std::size_t offset = 0;
    const auto& contrib = offd_contrib[static_cast<std::size_t>(r)];
    for (const auto& recv : comm_.recvs[static_cast<std::size_t>(r)]) {
      const auto count = static_cast<std::size_t>(recv.count);
      if (f32_wire) {
        std::vector<float> buf(count);
        for (std::size_t i = 0; i < count; ++i) {
          buf[i] = static_cast<float>(contrib[offset + i]);
        }
        transport.send(r, recv.src, tags::kHaloValues, std::move(buf));
      } else {
        RealVector buf(contrib.begin() + static_cast<std::ptrdiff_t>(offset),
                       contrib.begin() +
                           static_cast<std::ptrdiff_t>(offset + count));
        transport.send(r, recv.src, tags::kHaloValues, std::move(buf));
      }
      offset += count;
    }
  });
  rt_->parallel_for_ranks([&](RankId owner) {
    auto& yl = y.local(owner);
    for (const auto& send : comm_.sends[static_cast<std::size_t>(owner)]) {
      const auto scatter_add = [&](const auto& buf) {
        EXW_ASSERT(buf.size() == send.idx.size());
        for (std::size_t i = 0; i < buf.size(); ++i) {
          yl[static_cast<std::size_t>(send.idx[i])] += buf[i];
        }
        double f64 = 0, f32 = 0;
        split_value_bytes(y.value_precision(),
                          3.0 * bytes_of(y.value_precision()) *
                              static_cast<double>(buf.size()),
                          f64, f32);
        rt_->tracer().kernel_split_prec(
            owner, static_cast<double>(buf.size()), f64, f32, 0.0);
      };
      if (f32_wire) {
        scatter_add(transport.recv<float>(owner, send.dst, tags::kHaloValues));
      } else {
        scatter_add(transport.recv<Real>(owner, send.dst, tags::kHaloValues));
      }
    }
    if (y.value_precision() == Precision::kF32) {
      for (Real& v : yl) v = demote_value(v);
    }
  });
}

std::vector<RealVector> ParCsr::diagonals() const {
  std::vector<RealVector> out(static_cast<std::size_t>(nranks()));
  for (RankId r{0}; r.value() < nranks(); ++r) {
    out[static_cast<std::size_t>(r)] =
        blocks_[static_cast<std::size_t>(r)].diag.diagonal();
  }
  return out;
}

sparse::Csr ParCsr::to_serial() const {
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  for (RankId r{0}; r.value() < nranks(); ++r) {
    const auto& b = blocks_[static_cast<std::size_t>(r)];
    const GlobalIndex row0 = rows_.first_row(r);
    const GlobalIndex col0 = cols_.first_row(r);
    for (LocalIndex i{0}; i < b.diag.nrows(); ++i) {
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        ti.push_back(checked_narrow<LocalIndex>(row0 + i.value()));
        tj.push_back(checked_narrow<LocalIndex>(col0 + b.diag.cols()[k].value()));
        tv.push_back(b.diag.vals()[k]);
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        ti.push_back(checked_narrow<LocalIndex>(row0 + i.value()));
        tj.push_back(checked_narrow<LocalIndex>(
            b.col_map[static_cast<std::size_t>(b.offd.cols()[k])]));
        tv.push_back(b.offd.vals()[k]);
      }
    }
  }
  return sparse::Csr::from_triples(checked_narrow<LocalIndex>(global_rows()),
                                   checked_narrow<LocalIndex>(global_cols()),
                                   std::move(ti), std::move(tj), std::move(tv));
}

std::size_t ExtRows::find(GlobalIndex g) const {
  const auto it = std::lower_bound(row_ids.begin(), row_ids.end(), g);
  if (it == row_ids.end() || *it != g) {
    return static_cast<std::size_t>(-1);
  }
  return static_cast<std::size_t>(it - row_ids.begin());
}

std::vector<ExtRows> fetch_external_rows(
    const ParCsr& m, const std::vector<std::vector<GlobalIndex>>& needed) {
  par::Runtime& rt = m.runtime();
  auto& transport = rt.transport();
  const int nranks = m.nranks();
  EXW_REQUIRE(checked_narrow<int>(needed.size()) == nranks,
              "one request list per rank");

  // 1. Send row-id requests to owners.
  std::vector<std::vector<std::vector<GlobalIndex>>> reqs(
      static_cast<std::size_t>(nranks));  // [owner][requester] -> ids
  for (auto& v : reqs) v.resize(static_cast<std::size_t>(nranks));
  rt.parallel_for_ranks([&](RankId r) {
    std::vector<GlobalIndex> sorted = needed[static_cast<std::size_t>(r)];
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      const RankId owner = m.rows().rank_of(sorted[i]);
      EXW_REQUIRE(owner != r, "requested an owned row as external");
      std::size_t j = i;
      std::vector<GlobalIndex> ids;
      while (j < sorted.size() && m.rows().rank_of(sorted[j]) == owner) {
        ids.push_back(sorted[j]);
        ++j;
      }
      transport.send(r, owner, tags::kRowRequest, ids);
      reqs[static_cast<std::size_t>(owner)][static_cast<std::size_t>(r)] =
          std::move(ids);
      i = j;
    }
  });

  // 2. Owners reply with (row length header, global cols, values).
  rt.parallel_for_ranks([&](RankId owner) {
    const auto& b = m.block(owner);
    const GlobalIndex row0 = m.rows().first_row(owner);
    const GlobalIndex col0 = m.cols().first_row(owner);
    for (RankId r{0}; r.value() < nranks; ++r) {
      const auto& ids = reqs[static_cast<std::size_t>(owner)][static_cast<std::size_t>(r)];
      if (ids.empty()) continue;
      (void)transport.recv<GlobalIndex>(owner, r, tags::kRowRequest);
      std::vector<GlobalIndex> hdr;
      std::vector<GlobalIndex> cols;
      std::vector<Real> vals;
      for (GlobalIndex g : ids) {
        const auto li = checked_narrow<LocalIndex>(g - row0);
        GlobalIndex len{0};
        for (EntryOffset k = b.diag.row_begin(li); k < b.diag.row_end(li); ++k) {
          cols.push_back(col0 + b.diag.cols()[k].value());
          vals.push_back(b.diag.vals()[k]);
          ++len;
        }
        for (EntryOffset k = b.offd.row_begin(li); k < b.offd.row_end(li); ++k) {
          cols.push_back(
              b.col_map[static_cast<std::size_t>(
                  b.offd.cols()[k])]);
          vals.push_back(b.offd.vals()[k]);
          ++len;
        }
        hdr.push_back(len);
      }
      transport.send(owner, r, tags::kRowHeader, std::move(hdr));
      transport.send(owner, r, tags::kRowCols, std::move(cols));
      transport.send(owner, r, tags::kRowVals, std::move(vals));
    }
  });

  // 3. Requesters assemble ExtRows in ascending row order.
  std::vector<ExtRows> out(static_cast<std::size_t>(nranks));
  rt.parallel_for_ranks([&](RankId r) {
    ExtRows& e = out[static_cast<std::size_t>(r)];
    e.row_ptr.push_back(0);
    for (RankId owner{0}; owner.value() < nranks; ++owner) {
      const auto& ids = reqs[static_cast<std::size_t>(owner)][static_cast<std::size_t>(r)];
      if (ids.empty()) continue;
      auto hdr = transport.recv<GlobalIndex>(r, owner, tags::kRowHeader);
      auto cols = transport.recv<GlobalIndex>(r, owner, tags::kRowCols);
      auto vals = transport.recv<Real>(r, owner, tags::kRowVals);
      std::size_t cursor = 0;
      for (std::size_t i = 0; i < ids.size(); ++i) {
        e.row_ids.push_back(ids[i]);
        const auto len = static_cast<std::size_t>(hdr[i]);
        for (std::size_t k = 0; k < len; ++k) {
          e.cols.push_back(cols[cursor + k]);
          e.vals.push_back(vals[cursor + k]);
        }
        cursor += len;
        e.row_ptr.push_back(e.cols.size());
      }
    }
    EXW_ASSERT(std::is_sorted(e.row_ids.begin(), e.row_ids.end()));
  });
  return out;
}

}  // namespace exw::linalg
