#pragma once
/// \file coo.hpp
/// Coordinate-format sparse matrix/vector pieces used by the assembly path.
///
/// COO is the lingua franca of the paper's three-stage assembly (§3): the
/// graph computation emits (row, col) pairs, the local assembly fills the
/// value array in place, and the global assembly exchanges and merges COO
/// triples between ranks. Rows/cols are *global* indices.

#include <vector>

#include "common/types.hpp"

namespace exw::sparse {

/// A set of (row, col, val) triples with global indices.
struct Coo {
  std::vector<GlobalIndex> rows;
  std::vector<GlobalIndex> cols;
  std::vector<Real> vals;

  std::size_t nnz() const { return rows.size(); }

  void reserve(std::size_t n) {
    rows.reserve(n);
    cols.reserve(n);
    vals.reserve(n);
  }

  void push(GlobalIndex i, GlobalIndex j, Real v) {
    rows.push_back(i);
    cols.push_back(j);
    vals.push_back(v);
  }

  void clear() {
    rows.clear();
    cols.clear();
    vals.clear();
  }

  /// Append another COO set (the "stack" step of Algorithm 1, line 4).
  void append(const Coo& other);

  /// Stable row-major sort of the triples.
  void sort();

  /// Sum duplicate (row, col) entries; requires sorted triples.
  void sum_duplicates();

  /// sort() + sum_duplicates().
  void normalize();

  /// True if triples are sorted row-major with no duplicates.
  bool is_normalized() const;
};

/// Sparse RHS contributions: (row, value) pairs with global rows.
struct CooVector {
  std::vector<GlobalIndex> rows;
  std::vector<Real> vals;

  std::size_t size() const { return rows.size(); }

  void push(GlobalIndex i, Real v) {
    rows.push_back(i);
    vals.push_back(v);
  }

  void clear() {
    rows.clear();
    vals.clear();
  }

  void append(const CooVector& other);
  void sort();
  void sum_duplicates();
  void normalize();
};

}  // namespace exw::sparse
