#pragma once
/// \file prim.hpp
/// Parallel-primitive library with the Thrust API shape.
///
/// The paper's global assembly (Algorithms 1 and 2) is expressed in terms
/// of `stable_sort_by_key` and `reduce_by_key`, and notes that "other GPU
/// architectures can be supported provided implementations exist for"
/// those two primitives. This header is that provider for the simulated
/// runtime: sequential (optionally OpenMP) implementations with identical
/// semantics, so assembly and AMG setup read like the paper's pseudocode.

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace exw::sparse::prim {

/// Permutation that stably sorts `keys` ascending under `less`.
template <typename K, typename Less>
std::vector<std::size_t> sort_permutation(const std::vector<K>& keys, Less less) {
  std::vector<std::size_t> p(keys.size());
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::stable_sort(p.begin(), p.end(), [&](std::size_t a, std::size_t b) {
    return less(keys[a], keys[b]);
  });
  return p;
}

/// Apply a permutation out-of-place: out[i] = v[p[i]].
template <typename T>
std::vector<T> gather(const std::vector<T>& v, const std::vector<std::size_t>& p) {
  std::vector<T> out(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    out[i] = v[p[i]];
  }
  return out;
}

/// thrust::stable_sort_by_key over one key array and one value array.
template <typename K, typename V>
void stable_sort_by_key(std::vector<K>& keys, std::vector<V>& values) {
  EXW_REQUIRE(keys.size() == values.size(), "key/value length mismatch");
  const auto p = sort_permutation(keys, std::less<K>{});
  keys = gather(keys, p);
  values = gather(values, p);
}

/// Permutation that stably sorts composite (k1, k2) lexicographic keys
/// ascending — the structure half of the COO-triple stable_sort_by_key,
/// exposed separately so it can be computed once and replayed (the
/// assembly-plan cache freezes this permutation per sparsity pattern).
template <typename K1, typename K2>
std::vector<std::size_t> sort_permutation2(const std::vector<K1>& k1,
                                           const std::vector<K2>& k2) {
  EXW_REQUIRE(k1.size() == k2.size(), "key length mismatch");
  std::vector<std::size_t> p(k1.size());
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::stable_sort(p.begin(), p.end(), [&](std::size_t a, std::size_t b) {
    if (k1[a] != k1[b]) return k1[a] < k1[b];
    return k2[a] < k2[b];
  });
  return p;
}

/// stable_sort_by_key with a composite (k1, k2) lexicographic key and one
/// value array — the shape used for COO (row, col, val) triples.
template <typename K1, typename K2, typename V>
void stable_sort_by_key(std::vector<K1>& k1, std::vector<K2>& k2,
                        std::vector<V>& values) {
  EXW_REQUIRE(k1.size() == values.size(), "key/value length mismatch");
  const auto p = sort_permutation2(k1, k2);
  k1 = gather(k1, p);
  k2 = gather(k2, p);
  values = gather(values, p);
}

/// Boundaries of the runs of equal keys encountered when traversing slots
/// through permutation `p`: run s spans p[seg_ptr[s] .. seg_ptr[s+1]).
/// `same(a, b)` compares two *unpermuted* slot indices. With `p` a stable
/// sort permutation this yields exactly reduce_by_key's segments.
template <typename Same>
std::vector<std::size_t> segment_pointers(const std::vector<std::size_t>& p,
                                          Same same) {
  std::vector<std::size_t> ptr;
  ptr.reserve(p.size() + 1);
  ptr.push_back(0);
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (!same(p[i - 1], p[i])) ptr.push_back(i);
  }
  if (!p.empty()) ptr.push_back(p.size());
  return ptr;
}

/// Permuted segmented sum: for segment s, accumulate values[perm[j]] for
/// j in [seg_ptr[s], seg_ptr[s+1]) in ascending j and call emit(s, acc).
/// Addend order equals reduce_by_key after the stable sort that produced
/// `perm`, so results are bitwise-identical to sort+reduce — the warm
/// half of the assembly-plan cache depends on this.
template <typename V, typename Emit>
void segmented_reduce(std::span<const V> values,
                      std::span<const std::size_t> perm,
                      std::span<const std::size_t> seg_ptr, Emit emit) {
  EXW_REQUIRE(values.size() == perm.size(),
              "segmented_reduce value/permutation length mismatch");
  for (std::size_t s = 0; s + 1 < seg_ptr.size(); ++s) {
    V acc = values[perm[seg_ptr[s]]];
    for (std::size_t j = seg_ptr[s] + 1; j < seg_ptr[s + 1]; ++j) {
      acc += values[perm[j]];
    }
    emit(s, acc);
  }
}

/// thrust::reduce_by_key with sum reduction: consecutive equal keys are
/// collapsed and their values summed. Returns the number of unique keys;
/// outputs are resized to that length.
template <typename K, typename V>
std::size_t reduce_by_key(std::vector<K>& keys, std::vector<V>& values) {
  EXW_REQUIRE(keys.size() == values.size(), "key/value length mismatch");
  std::size_t out = 0;
  for (std::size_t i = 0; i < keys.size();) {
    K k = keys[i];
    V acc = values[i];
    std::size_t j = i + 1;
    while (j < keys.size() && keys[j] == k) {
      acc += values[j];
      ++j;
    }
    keys[out] = k;
    values[out] = acc;
    ++out;
    i = j;
  }
  keys.resize(out);
  values.resize(out);
  return out;
}

/// reduce_by_key over composite (k1, k2) keys — the COO duplicate-sum step
/// of the paper's Algorithm 1, line 6.
template <typename K1, typename K2, typename V>
std::size_t reduce_by_key(std::vector<K1>& k1, std::vector<K2>& k2,
                          std::vector<V>& values) {
  EXW_REQUIRE(k1.size() == k2.size() && k1.size() == values.size(),
              "key/value length mismatch");
  std::size_t out = 0;
  for (std::size_t i = 0; i < k1.size();) {
    const K1 a = k1[i];
    const K2 b = k2[i];
    V acc = values[i];
    std::size_t j = i + 1;
    while (j < k1.size() && k1[j] == a && k2[j] == b) {
      acc += values[j];
      ++j;
    }
    k1[out] = a;
    k2[out] = b;
    values[out] = acc;
    ++out;
    i = j;
  }
  k1.resize(out);
  k2.resize(out);
  values.resize(out);
  return out;
}

/// Exclusive prefix sum; returns the total.
template <typename T>
T exclusive_scan(std::vector<T>& v) {
  T sum{};
  for (auto& x : v) {
    const T next = sum + x;
    x = sum;
    sum = next;
  }
  return sum;
}

}  // namespace exw::sparse::prim
