#include "sparse/csr.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "sparse/prim.hpp"

namespace exw::sparse {

Csr Csr::from_triples(LocalIndex nrows, LocalIndex ncols,
                      std::vector<LocalIndex> rows,
                      std::vector<LocalIndex> cols,
                      std::vector<Real> vals) {
  EXW_REQUIRE(rows.size() == cols.size() && rows.size() == vals.size(),
              "triple array length mismatch");
  prim::stable_sort_by_key(rows, cols, vals);
  prim::reduce_by_key(rows, cols, vals);

  Csr out(nrows, ncols);
  out.cols_ = std::move(cols);
  out.vals_ = std::move(vals);
  for (LocalIndex r : rows) {
    EXW_ASSERT(r >= LocalIndex{0} && r < nrows);
    out.row_ptr_[static_cast<std::size_t>(r) + 1] += 1;
  }
  for (std::size_t i = 1; i < out.row_ptr_.size(); ++i) {
    out.row_ptr_[i] += out.row_ptr_[i - 1];
  }
  return out;
}

Csr Csr::identity(LocalIndex n) {
  Csr out(n, n);
  out.cols_.resize(static_cast<std::size_t>(n));
  out.vals_.assign(static_cast<std::size_t>(n), 1.0);
  for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
    out.cols_[i] = LocalIndex{i};
    out.row_ptr_[i + 1] = EntryOffset{i + 1};
  }
  return out;
}

void Csr::spmv(std::span<const Real> x, std::span<Real> y, Real alpha,
               Real beta) const {
  EXW_ASSERT(x.size() >= static_cast<std::size_t>(ncols_));
  EXW_ASSERT(y.size() >= static_cast<std::size_t>(nrows_));
  // Raw 64-bit loop variable: OpenMP requires an integral canonical form.
  const std::int64_t n = nrows_.value();
#ifdef EXW_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t ii = 0; ii < n; ++ii) {
    const LocalIndex i{ii};
    Real acc = 0.0;
    for (EntryOffset k = row_begin(i); k < row_end(i); ++k) {
      acc += vals_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])];
    }
    auto& yi = y[static_cast<std::size_t>(i)];
    yi = beta == 0.0 ? alpha * acc : beta * yi + alpha * acc;
  }
}

void Csr::spmv_multi(std::span<const Real> x, std::size_t x_stride,
                     std::span<Real> y, std::size_t y_stride,
                     std::size_t lanes, Real alpha, Real beta) const {
  constexpr std::size_t kMaxLanes = 8;
  EXW_REQUIRE(lanes >= 1 && lanes <= kMaxLanes,
              "spmv_multi lane count out of range");
  EXW_ASSERT(x_stride >= static_cast<std::size_t>(ncols_));
  EXW_ASSERT(y_stride >= static_cast<std::size_t>(nrows_));
  EXW_ASSERT(x.size() >= (lanes - 1) * x_stride +
                             static_cast<std::size_t>(ncols_));
  EXW_ASSERT(y.size() >= (lanes - 1) * y_stride +
                             static_cast<std::size_t>(nrows_));
  // Raw 64-bit loop variable: OpenMP requires an integral canonical form.
  const std::int64_t n = nrows_.value();
#ifdef EXW_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t ii = 0; ii < n; ++ii) {
    const LocalIndex i{ii};
    std::array<Real, kMaxLanes> acc{};
    // One pass over the row's index structure feeds every lane; each
    // lane accumulates in the same entry order as the scalar spmv.
    for (EntryOffset k = row_begin(i); k < row_end(i); ++k) {
      const Real a = vals_[static_cast<std::size_t>(k)];
      const auto c =
          static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)]);
      for (std::size_t l = 0; l < lanes; ++l) {
        acc[l] += a * x[l * x_stride + c];
      }
    }
    for (std::size_t l = 0; l < lanes; ++l) {
      auto& yi = y[l * y_stride + static_cast<std::size_t>(i)];
      yi = beta == 0.0 ? alpha * acc[l] : beta * yi + alpha * acc[l];
    }
  }
}

void Csr::spmv_transpose(std::span<const Real> x, std::span<Real> y,
                         Real alpha, Real beta) const {
  EXW_ASSERT(x.size() >= static_cast<std::size_t>(nrows_));
  EXW_ASSERT(y.size() >= static_cast<std::size_t>(ncols_));
  if (beta == 0.0) {
    std::fill(y.begin(), y.begin() + ncols_.value(), 0.0);
  } else if (beta != 1.0) {
    for (LocalIndex j{0}; j < ncols_; ++j) {
      y[static_cast<std::size_t>(j)] *= beta;
    }
  }
  for (LocalIndex i{0}; i < nrows_; ++i) {
    const Real xi = alpha * x[static_cast<std::size_t>(i)];
    if (xi == 0.0) continue;
    for (EntryOffset k = row_begin(i); k < row_end(i); ++k) {
      y[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])] +=
          vals_[static_cast<std::size_t>(k)] * xi;
    }
  }
}

std::vector<Real> Csr::diagonal() const {
  std::vector<Real> d(static_cast<std::size_t>(nrows_), 0.0);
  const LocalIndex bound{std::min(nrows_.value(), ncols_.value())};
  for (LocalIndex i{0}; i < bound; ++i) {
    for (EntryOffset k = row_begin(i); k < row_end(i); ++k) {
      if (cols_[static_cast<std::size_t>(k)].value() == i.value()) {
        d[static_cast<std::size_t>(i)] = vals_[static_cast<std::size_t>(k)];
        break;
      }
    }
  }
  return d;
}

Csr Csr::transpose() const {
  Csr out(ncols_, nrows_);
  out.cols_.resize(nnz());
  out.vals_.resize(nnz());
  // Counting sort by column.
  std::vector<EntryOffset> count(static_cast<std::size_t>(ncols_) + 1,
                                 EntryOffset{0});
  for (LocalIndex c : cols_) {
    count[static_cast<std::size_t>(c) + 1] += 1;
  }
  for (std::size_t i = 1; i < count.size(); ++i) {
    count[i] += count[i - 1];
  }
  out.row_ptr_ = count;
  std::vector<EntryOffset> cursor(count.begin(), count.end() - 1);
  for (LocalIndex i{0}; i < nrows_; ++i) {
    for (EntryOffset k = row_begin(i); k < row_end(i); ++k) {
      const LocalIndex c = cols_[static_cast<std::size_t>(k)];
      const EntryOffset slot = cursor[static_cast<std::size_t>(c)]++;
      out.cols_[static_cast<std::size_t>(slot)] = i;
      out.vals_[static_cast<std::size_t>(slot)] =
          vals_[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

void Csr::sort_rows() {
  std::vector<std::pair<LocalIndex, Real>> tmp;
  for (LocalIndex i{0}; i < nrows_; ++i) {
    const auto b = static_cast<std::size_t>(row_begin(i));
    const auto e = static_cast<std::size_t>(row_end(i));
    tmp.clear();
    for (std::size_t k = b; k < e; ++k) {
      tmp.emplace_back(cols_[k], vals_[k]);
    }
    std::sort(tmp.begin(), tmp.end(),
              [](const auto& a, const auto& c) { return a.first < c.first; });
    for (std::size_t k = b; k < e; ++k) {
      cols_[k] = tmp[k - b].first;
      vals_[k] = tmp[k - b].second;
    }
  }
}

void Csr::scale_rows(std::span<const Real> s) {
  EXW_ASSERT(s.size() >= static_cast<std::size_t>(nrows_));
  for (LocalIndex i{0}; i < nrows_; ++i) {
    for (EntryOffset k = row_begin(i); k < row_end(i); ++k) {
      vals_[static_cast<std::size_t>(k)] *= s[static_cast<std::size_t>(i)];
    }
  }
}

Real Csr::at(LocalIndex i, LocalIndex j) const {
  for (EntryOffset k = row_begin(i); k < row_end(i); ++k) {
    if (cols_[static_cast<std::size_t>(k)] == j) {
      return vals_[static_cast<std::size_t>(k)];
    }
  }
  return 0.0;
}

Real Csr::max_abs() const {
  Real m = 0.0;
  for (Real v : vals_) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

Csr add(const Csr& a, const Csr& b) {
  EXW_REQUIRE(a.nrows() == b.nrows() && a.ncols() == b.ncols(),
              "matrix add shape mismatch");
  Csr out(a.nrows(), a.ncols());
  auto& rp = out.row_ptr_mut();
  auto& cols = out.cols_vec();
  auto& vals = out.vals_vec();
  std::vector<Real> accum(static_cast<std::size_t>(a.ncols()), 0.0);
  std::vector<LocalIndex> marker(static_cast<std::size_t>(a.ncols()),
                                 kInvalidLocal);
  std::vector<LocalIndex> live;
  for (LocalIndex i{0}; i < a.nrows(); ++i) {
    live.clear();
    auto absorb = [&](const Csr& m) {
      for (EntryOffset k = m.row_begin(i); k < m.row_end(i); ++k) {
        const LocalIndex c = m.cols()[k];
        if (marker[static_cast<std::size_t>(c)] != i) {
          marker[static_cast<std::size_t>(c)] = i;
          accum[static_cast<std::size_t>(c)] = 0.0;
          live.push_back(c);
        }
        accum[static_cast<std::size_t>(c)] += m.vals()[k];
      }
    };
    absorb(a);
    absorb(b);
    std::sort(live.begin(), live.end());
    for (LocalIndex c : live) {
      cols.push_back(c);
      vals.push_back(accum[static_cast<std::size_t>(c)]);
    }
    rp[static_cast<std::size_t>(i) + 1] = EntryOffset{cols.size()};
  }
  return out;
}

Csr extract(const Csr& a, std::span<const LocalIndex> rows,
            std::span<const LocalIndex> col_map, LocalIndex ncols_out) {
  Csr out(checked_narrow<LocalIndex>(rows.size()), ncols_out);
  auto& rp = out.row_ptr_mut();
  auto& cols = out.cols_vec();
  auto& vals = out.vals_vec();
  for (std::size_t oi = 0; oi < rows.size(); ++oi) {
    const LocalIndex i = rows[oi];
    for (EntryOffset k = a.row_begin(i); k < a.row_end(i); ++k) {
      const LocalIndex c = a.cols()[k];
      const LocalIndex nc = col_map[static_cast<std::size_t>(c)];
      if (nc != kInvalidLocal) {
        cols.push_back(nc);
        vals.push_back(a.vals()[k]);
      }
    }
    rp[oi + 1] = EntryOffset{cols.size()};
  }
  return out;
}

Real residual_inf_norm(const Csr& a, std::span<const Real> x,
                       std::span<const Real> b) {
  std::vector<Real> y(static_cast<std::size_t>(a.nrows()), 0.0);
  a.spmv(x, y);
  Real m = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    m = std::max(m, std::abs(y[i] - b[i]));
  }
  return m;
}

}  // namespace exw::sparse
