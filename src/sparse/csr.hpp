#pragma once
/// \file csr.hpp
/// Compressed-sparse-row matrix and the core kernels built on it.
///
/// CSR is the solver-side format: SpMV ("the primary workhorse of Krylov
/// and AMG algorithms", paper §3.3), transposition, matrix addition, and
/// submatrix extraction (for the FF/FC blocks of the MM-ext interpolation
/// operators, §4.1). Indices here are rank-local; the distributed layer
/// (linalg/ParCsr) pairs a local CSR "diag" block with an "offd" block.
///
/// Index spaces: rows/columns are LocalIndex (32-bit), but positions in
/// the entry storage — row_ptr values and subscripts of cols()/vals() —
/// are 64-bit EntryOffset: a rank's nonzero *count* overflows 32 bits
/// long before its row count does. The accessors return IndexedSpan, so
/// subscripting entry storage with a row index (or vice versa) does not
/// compile.

#include <span>
#include <vector>

#include "common/types.hpp"

namespace exw::sparse {

class Csr {
 public:
  Csr() = default;
  Csr(LocalIndex nrows, LocalIndex ncols)
      : nrows_(nrows), ncols_(ncols),
        row_ptr_(static_cast<std::size_t>(nrows) + 1, EntryOffset{0}) {}

  /// Build from local-index triples (need not be sorted; duplicates summed).
  static Csr from_triples(LocalIndex nrows, LocalIndex ncols,
                          std::vector<LocalIndex> rows,
                          std::vector<LocalIndex> cols,
                          std::vector<Real> vals);

  /// Identity matrix.
  static Csr identity(LocalIndex n);

  LocalIndex nrows() const { return nrows_; }
  LocalIndex ncols() const { return ncols_; }
  std::size_t nnz() const { return cols_.size(); }

  IndexedSpan<LocalIndex, const EntryOffset> row_ptr() const {
    return {row_ptr_};
  }
  IndexedSpan<EntryOffset, const LocalIndex> cols() const { return {cols_}; }
  IndexedSpan<EntryOffset, const Real> vals() const { return {vals_}; }
  IndexedSpan<EntryOffset, LocalIndex> cols_mut() { return {cols_}; }
  IndexedSpan<EntryOffset, Real> vals_mut() { return {vals_}; }

  EntryOffset row_begin(LocalIndex i) const {
    return row_ptr_[static_cast<std::size_t>(i)];
  }
  EntryOffset row_end(LocalIndex i) const {
    return row_ptr_[static_cast<std::size_t>(i) + 1];
  }
  /// Entries in row i. A single row is bounded by ncols, so this narrows
  /// back to LocalIndex through the audited gateway.
  LocalIndex row_nnz(LocalIndex i) const {
    return checked_narrow<LocalIndex>(row_end(i) - row_begin(i));
  }

  /// Direct access used by builders; row_ptr invariants are the caller's.
  std::vector<EntryOffset>& row_ptr_mut() { return row_ptr_; }
  std::vector<LocalIndex>& cols_vec() { return cols_; }
  std::vector<Real>& vals_vec() { return vals_; }

  /// y = alpha*A*x + beta*y.
  void spmv(std::span<const Real> x, std::span<Real> y, Real alpha = 1.0,
            Real beta = 0.0) const;

  /// Fused multi-RHS SpMV: for lane c in [0, lanes), treat
  /// x[c*x_stride ..] and y[c*y_stride ..] as one vector pair and apply
  /// y_c = alpha*A*x_c + beta*y_c. Row structure (row_ptr/cols) is read
  /// once per row for all lanes; per-lane arithmetic (accumulation
  /// order, beta handling) is exactly spmv's, so each lane's result is
  /// bitwise-identical to a per-lane spmv call.
  void spmv_multi(std::span<const Real> x, std::size_t x_stride,
                  std::span<Real> y, std::size_t y_stride, std::size_t lanes,
                  Real alpha = 1.0, Real beta = 0.0) const;

  /// y += A^T * x (used for restriction when R = P^T).
  void spmv_transpose(std::span<const Real> x, std::span<Real> y,
                      Real alpha = 1.0, Real beta = 0.0) const;

  /// Main diagonal (0 where absent).
  std::vector<Real> diagonal() const;

  /// A^T as a new CSR (counting-sort by column; O(nnz)).
  Csr transpose() const;

  /// Sort column indices (and values) ascending within each row.
  void sort_rows();

  /// Scale row i by s[i].
  void scale_rows(std::span<const Real> s);

  /// Value at (i, j) or 0; linear scan of row i.
  Real at(LocalIndex i, LocalIndex j) const;

  /// Frobenius-ish sanity: largest |a_ij|.
  Real max_abs() const;

 private:
  LocalIndex nrows_{0};
  LocalIndex ncols_{0};
  std::vector<EntryOffset> row_ptr_{EntryOffset{0}};
  std::vector<LocalIndex> cols_;
  std::vector<Real> vals_;
};

/// C = A + B (same shape).
Csr add(const Csr& a, const Csr& b);

/// Extract A(rows, cols): `rows` lists kept rows in output order;
/// `col_map[j]` is the new index of column j or kInvalidLocal to drop;
/// `ncols_out` is the output column count.
Csr extract(const Csr& a, std::span<const LocalIndex> rows,
            std::span<const LocalIndex> col_map, LocalIndex ncols_out);

/// Dense |residual| check helper: y = A*x - b, returns max |y_i|.
Real residual_inf_norm(const Csr& a, std::span<const Real> x,
                       std::span<const Real> b);

}  // namespace exw::sparse
