#pragma once
/// \file csr.hpp
/// Compressed-sparse-row matrix and the core kernels built on it.
///
/// CSR is the solver-side format: SpMV ("the primary workhorse of Krylov
/// and AMG algorithms", paper §3.3), transposition, matrix addition, and
/// submatrix extraction (for the FF/FC blocks of the MM-ext interpolation
/// operators, §4.1). Indices here are rank-local; the distributed layer
/// (linalg/ParCsr) pairs a local CSR "diag" block with an "offd" block.

#include <span>
#include <vector>

#include "common/types.hpp"

namespace exw::sparse {

class Csr {
 public:
  Csr() = default;
  Csr(LocalIndex nrows, LocalIndex ncols)
      : nrows_(nrows), ncols_(ncols),
        row_ptr_(static_cast<std::size_t>(nrows) + 1, 0) {}

  /// Build from local-index triples (need not be sorted; duplicates summed).
  static Csr from_triples(LocalIndex nrows, LocalIndex ncols,
                          std::vector<LocalIndex> rows,
                          std::vector<LocalIndex> cols,
                          std::vector<Real> vals);

  /// Identity matrix.
  static Csr identity(LocalIndex n);

  LocalIndex nrows() const { return nrows_; }
  LocalIndex ncols() const { return ncols_; }
  std::size_t nnz() const { return cols_.size(); }

  std::span<const LocalIndex> row_ptr() const { return row_ptr_; }
  std::span<const LocalIndex> cols() const { return cols_; }
  std::span<const Real> vals() const { return vals_; }
  std::span<LocalIndex> cols_mut() { return cols_; }
  std::span<Real> vals_mut() { return vals_; }

  LocalIndex row_begin(LocalIndex i) const {
    return row_ptr_[static_cast<std::size_t>(i)];
  }
  LocalIndex row_end(LocalIndex i) const {
    return row_ptr_[static_cast<std::size_t>(i) + 1];
  }
  LocalIndex row_nnz(LocalIndex i) const { return row_end(i) - row_begin(i); }

  /// Direct access used by builders; row_ptr invariants are the caller's.
  std::vector<LocalIndex>& row_ptr_mut() { return row_ptr_; }
  std::vector<LocalIndex>& cols_vec() { return cols_; }
  std::vector<Real>& vals_vec() { return vals_; }

  /// y = alpha*A*x + beta*y.
  void spmv(std::span<const Real> x, std::span<Real> y, Real alpha = 1.0,
            Real beta = 0.0) const;

  /// y += A^T * x (used for restriction when R = P^T).
  void spmv_transpose(std::span<const Real> x, std::span<Real> y,
                      Real alpha = 1.0, Real beta = 0.0) const;

  /// Main diagonal (0 where absent).
  std::vector<Real> diagonal() const;

  /// A^T as a new CSR (counting-sort by column; O(nnz)).
  Csr transpose() const;

  /// Sort column indices (and values) ascending within each row.
  void sort_rows();

  /// Scale row i by s[i].
  void scale_rows(std::span<const Real> s);

  /// Value at (i, j) or 0; linear scan of row i.
  Real at(LocalIndex i, LocalIndex j) const;

  /// Frobenius-ish sanity: largest |a_ij|.
  Real max_abs() const;

 private:
  LocalIndex nrows_ = 0;
  LocalIndex ncols_ = 0;
  std::vector<LocalIndex> row_ptr_{0};
  std::vector<LocalIndex> cols_;
  std::vector<Real> vals_;
};

/// C = A + B (same shape).
Csr add(const Csr& a, const Csr& b);

/// Extract A(rows, cols): `rows` lists kept rows in output order;
/// `col_map[j]` is the new index of column j or kInvalidLocal to drop;
/// `ncols_out` is the output column count.
Csr extract(const Csr& a, std::span<const LocalIndex> rows,
            std::span<const LocalIndex> col_map, LocalIndex ncols_out);

/// Dense |residual| check helper: y = A*x - b, returns max |y_i|.
Real residual_inf_norm(const Csr& a, std::span<const Real> x,
                       std::span<const Real> b);

}  // namespace exw::sparse
