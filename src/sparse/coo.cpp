#include "sparse/coo.hpp"

#include "sparse/prim.hpp"

namespace exw::sparse {

void Coo::append(const Coo& other) {
  rows.insert(rows.end(), other.rows.begin(), other.rows.end());
  cols.insert(cols.end(), other.cols.begin(), other.cols.end());
  vals.insert(vals.end(), other.vals.begin(), other.vals.end());
}

void Coo::sort() { prim::stable_sort_by_key(rows, cols, vals); }

void Coo::sum_duplicates() { prim::reduce_by_key(rows, cols, vals); }

void Coo::normalize() {
  sort();
  sum_duplicates();
}

bool Coo::is_normalized() const {
  for (std::size_t k = 1; k < nnz(); ++k) {
    if (rows[k - 1] > rows[k]) return false;
    if (rows[k - 1] == rows[k] && cols[k - 1] >= cols[k]) return false;
  }
  return true;
}

void CooVector::append(const CooVector& other) {
  rows.insert(rows.end(), other.rows.begin(), other.rows.end());
  vals.insert(vals.end(), other.vals.begin(), other.vals.end());
}

void CooVector::sort() { prim::stable_sort_by_key(rows, vals); }

void CooVector::sum_duplicates() { prim::reduce_by_key(rows, vals); }

void CooVector::normalize() {
  sort();
  sum_duplicates();
}

}  // namespace exw::sparse
