#pragma once
/// \file dense.hpp
/// Small dense linear algebra: LU with partial pivoting.
///
/// AMG hierarchies bottom out on a coarsest grid of a few dozen rows;
/// BoomerAMG solves that system directly (Gaussian elimination). This is
/// that solver, also used as an exact reference in tests.

#include <vector>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace exw::sparse {

/// Row-major dense matrix with an in-place LU factorization.
class DenseLu {
 public:
  DenseLu() = default;

  /// Factor a dense copy of `a` (must be square and nonsingular).
  explicit DenseLu(const Csr& a);

  /// Factor an explicit row-major dense matrix.
  DenseLu(LocalIndex n, std::vector<Real> a);

  LocalIndex size() const { return n_; }
  bool empty() const { return n_ == LocalIndex{0}; }

  /// Solve A x = b.
  std::vector<Real> solve(std::span<const Real> b) const;
  void solve_in_place(std::span<Real> x) const;

 private:
  void factor();

  LocalIndex n_{0};
  std::vector<Real> lu_;        ///< packed LU factors
  std::vector<LocalIndex> piv_; ///< row pivots
};

}  // namespace exw::sparse
