#include "sparse/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace exw::sparse {

namespace {

/// Flattened row-major position of (i, j) in an n x n dense matrix.
std::size_t dense_at(LocalIndex n, LocalIndex i, LocalIndex j) {
  return static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(j);
}

}  // namespace

DenseLu::DenseLu(const Csr& a) : n_(a.nrows()) {
  EXW_REQUIRE(a.nrows() == a.ncols(), "dense LU needs a square matrix");
  lu_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), 0.0);
  for (LocalIndex i{0}; i < n_; ++i) {
    for (EntryOffset k = a.row_begin(i); k < a.row_end(i); ++k) {
      lu_[dense_at(n_, i, a.cols()[k])] = a.vals()[k];
    }
  }
  factor();
}

DenseLu::DenseLu(LocalIndex n, std::vector<Real> a) : n_(n), lu_(std::move(a)) {
  EXW_REQUIRE(lu_.size() ==
                  static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
              "dense matrix size mismatch");
  factor();
}

void DenseLu::factor() {
  piv_.resize(static_cast<std::size_t>(n_));
  for (LocalIndex k{0}; k < n_; ++k) {
    // Partial pivot.
    LocalIndex p = k;
    Real best = std::abs(lu_[dense_at(n_, k, k)]);
    for (LocalIndex i = k + 1; i < n_; ++i) {
      const Real v = std::abs(lu_[dense_at(n_, i, k)]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    EXW_REQUIRE(best > 0.0, "singular matrix in dense LU");
    piv_[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (LocalIndex j{0}; j < n_; ++j) {
        std::swap(lu_[dense_at(n_, k, j)], lu_[dense_at(n_, p, j)]);
      }
    }
    const Real pivot = lu_[dense_at(n_, k, k)];
    for (LocalIndex i = k + 1; i < n_; ++i) {
      Real& lik = lu_[dense_at(n_, i, k)];
      lik /= pivot;
      const Real f = lik;
      if (f == 0.0) continue;
      for (LocalIndex j = k + 1; j < n_; ++j) {
        lu_[dense_at(n_, i, j)] -= f * lu_[dense_at(n_, k, j)];
      }
    }
  }
}

std::vector<Real> DenseLu::solve(std::span<const Real> b) const {
  std::vector<Real> x(b.begin(), b.begin() + n_.value());
  solve_in_place(x);
  return x;
}

void DenseLu::solve_in_place(std::span<Real> x) const {
  // Apply pivots, forward substitution with unit L, back substitution with U.
  for (LocalIndex k{0}; k < n_; ++k) {
    const LocalIndex p = piv_[static_cast<std::size_t>(k)];
    if (p != k) {
      std::swap(x[static_cast<std::size_t>(k)], x[static_cast<std::size_t>(p)]);
    }
  }
  for (LocalIndex i{1}; i < n_; ++i) {
    Real acc = x[static_cast<std::size_t>(i)];
    for (LocalIndex j{0}; j < i; ++j) {
      acc -= lu_[dense_at(n_, i, j)] * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = acc;
  }
  for (LocalIndex i = n_ - 1; i >= LocalIndex{0}; --i) {
    Real acc = x[static_cast<std::size_t>(i)];
    for (LocalIndex j = i + 1; j < n_; ++j) {
      acc -= lu_[dense_at(n_, i, j)] * x[static_cast<std::size_t>(j)];
    }
    x[static_cast<std::size_t>(i)] = acc / lu_[dense_at(n_, i, i)];
  }
}

}  // namespace exw::sparse
