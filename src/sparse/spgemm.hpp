#pragma once
/// \file spgemm.hpp
/// Sparse matrix-matrix multiplication: hash-based vs sort-based.
///
/// AMG setup cost is dominated by SpGEMM (interpolation products and the
/// Galerkin triple product, paper §4.1). The paper reports that hypre's
/// hash-based SpGEMM has "superior throughput" to the cuSPARSE (v10.2)
/// implementation; that vendor kernel is the classic expand-sort-compress
/// formulation. We implement both so the ablation can be reproduced:
///   * spgemm_hash: Gustavson row-by-row products accumulated in a
///     per-row open-addressing hash table (hypre's approach),
///   * spgemm_sort: expand all partial products into COO triples, then
///     stable_sort_by_key + reduce_by_key (cuSPARSE-style baseline).

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace exw::sparse {

enum class SpGemmAlgo : std::uint8_t {
  kHash,  ///< Gustavson + per-row hash accumulator (hypre-style)
  kSort,  ///< expand / sort / reduce (cuSPARSE-style baseline)
};

/// C = A * B.
Csr spgemm(const Csr& a, const Csr& b, SpGemmAlgo algo = SpGemmAlgo::kHash);

Csr spgemm_hash(const Csr& a, const Csr& b);
Csr spgemm_sort(const Csr& a, const Csr& b);

/// Galerkin triple product A_c = R * A * P (R given explicitly).
Csr triple_product(const Csr& r, const Csr& a, const Csr& p,
                   SpGemmAlgo algo = SpGemmAlgo::kHash);

/// Galerkin with R = P^T without forming P^T twice.
Csr rap(const Csr& a, const Csr& p, SpGemmAlgo algo = SpGemmAlgo::kHash);

/// Flop count of C = A*B (2 * sum of partial products); used by the
/// modeled-time layer to charge AMG setup kernels.
double spgemm_flops(const Csr& a, const Csr& b);

/// Frozen-product replay plan: the value half of a sparse product whose
/// structure has already been discovered once (the SpGEMM analogue of
/// assembly::AssemblyPlan's value-fill maps). Output entry e is
///
///   out[e] = sum over t in [seg_ptr[e], seg_ptr[e+1]) of
///            left[lslot[t]] * right[rslot[t]]
///
/// with the terms stored in the exact addend order the cold product used,
/// so a replay is bitwise-identical to re-running the product on the same
/// values. Replays do no hashing, no sorting, no searches and allocate
/// nothing — one streaming pass over the term lists.
struct ProductPlan {
  std::vector<std::size_t> seg_ptr;  ///< output entry -> term range
  std::vector<std::size_t> lslot;    ///< term -> index into `left`
  std::vector<std::size_t> rslot;    ///< term -> index into `right`
  /// Cold accumulators differ in their first addend: reduce_by_key seeds
  /// the sum with the first value (zero_init = false) while the RAP row
  /// accumulator folds into an explicit 0.0 (zero_init = true). The seed
  /// changes the bit pattern when the first product is -0.0, so replays
  /// must reproduce it.
  bool zero_init = false;

  std::size_t outputs() const { return seg_ptr.empty() ? 0 : seg_ptr.size() - 1; }
  std::size_t terms() const { return lslot.size(); }
  /// Multiply-add per term, matching the cold product's charge.
  double flops() const { return 2.0 * static_cast<double>(terms()); }

  /// Append one output entry whose terms are `ls/rs` (parallel arrays).
  void append(std::span<const std::size_t> ls, std::span<const std::size_t> rs);

  void replay(std::span<const Real> left, std::span<const Real> right,
              std::span<Real> out) const;
};

/// Frozen serial C = A * B in spgemm_hash's numerics: `build()` runs the
/// cold hash product once, keeping its output structure and the term list
/// behind every entry; `replay()` then refills C's values from new A/B
/// values without touching the hash table. Bitwise-identical to
/// spgemm_hash(a, b) as long as A keeps the zero/nonzero value pattern it
/// had at build time (the hash path skips a_ij == 0 when discovering
/// structure, so moving stored zeros changes the cold output's pattern —
/// that is a structural change and needs a rebuild).
class SpGemmPlan {
 public:
  SpGemmPlan() = default;

  static SpGemmPlan build(const Csr& a, const Csr& b);

  bool valid() const { return a_nnz_ + b_nnz_ > 0; }
  /// Frozen output: the structure replays refill (values as of build).
  const Csr& structure() const { return c_; }

  /// Refill `c` (a copy of structure()) from new values of a/b. Throws
  /// when the shapes or nnz of a, b, or c no longer match the plan.
  void replay(const Csr& a, const Csr& b, Csr& c) const;

 private:
  ProductPlan plan_;
  Csr c_;
  LocalIndex a_rows_{0}, a_cols_{0}, b_cols_{0};
  std::size_t a_nnz_ = 0, b_nnz_ = 0;
};

}  // namespace exw::sparse
