#pragma once
/// \file spgemm.hpp
/// Sparse matrix-matrix multiplication: hash-based vs sort-based.
///
/// AMG setup cost is dominated by SpGEMM (interpolation products and the
/// Galerkin triple product, paper §4.1). The paper reports that hypre's
/// hash-based SpGEMM has "superior throughput" to the cuSPARSE (v10.2)
/// implementation; that vendor kernel is the classic expand-sort-compress
/// formulation. We implement both so the ablation can be reproduced:
///   * spgemm_hash: Gustavson row-by-row products accumulated in a
///     per-row open-addressing hash table (hypre's approach),
///   * spgemm_sort: expand all partial products into COO triples, then
///     stable_sort_by_key + reduce_by_key (cuSPARSE-style baseline).

#include <cstdint>

#include "sparse/csr.hpp"

namespace exw::sparse {

enum class SpGemmAlgo : std::uint8_t {
  kHash,  ///< Gustavson + per-row hash accumulator (hypre-style)
  kSort,  ///< expand / sort / reduce (cuSPARSE-style baseline)
};

/// C = A * B.
Csr spgemm(const Csr& a, const Csr& b, SpGemmAlgo algo = SpGemmAlgo::kHash);

Csr spgemm_hash(const Csr& a, const Csr& b);
Csr spgemm_sort(const Csr& a, const Csr& b);

/// Galerkin triple product A_c = R * A * P (R given explicitly).
Csr triple_product(const Csr& r, const Csr& a, const Csr& p,
                   SpGemmAlgo algo = SpGemmAlgo::kHash);

/// Galerkin with R = P^T without forming P^T twice.
Csr rap(const Csr& a, const Csr& p, SpGemmAlgo algo = SpGemmAlgo::kHash);

/// Flop count of C = A*B (2 * sum of partial products); used by the
/// modeled-time layer to charge AMG setup kernels.
double spgemm_flops(const Csr& a, const Csr& b);

}  // namespace exw::sparse
