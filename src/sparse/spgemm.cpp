#include "sparse/spgemm.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"
#include "sparse/prim.hpp"

namespace exw::sparse {

namespace {

/// Open-addressing hash table for one output row: maps column -> slot.
/// Power-of-two capacity, linear probing, rebuilt (grown) on overflow.
class RowHash {
 public:
  void reset(std::size_t expected) {
    const std::size_t want = std::bit_ceil(std::max<std::size_t>(16, 2 * expected));
    if (want > keys_.size()) {
      keys_.assign(want, kEmpty);
      vals_.assign(want, 0.0);
    } else {
      std::fill(keys_.begin(), keys_.end(), kEmpty);
    }
    count_ = 0;
  }

  void insert(LocalIndex key, Real val) {
    if (2 * (count_ + 1) > keys_.size()) {
      grow();
    }
    std::size_t h = hash(key);
    while (true) {
      if (keys_[h] == kEmpty) {
        keys_[h] = key;
        vals_[h] = val;
        ++count_;
        return;
      }
      if (keys_[h] == key) {
        vals_[h] += val;
        return;
      }
      h = (h + 1) & (keys_.size() - 1);
    }
  }

  /// Emit (sorted by column) into the output arrays.
  void emit(std::vector<LocalIndex>& cols, std::vector<Real>& vals,
            std::vector<std::pair<LocalIndex, Real>>& scratch) const {
    scratch.clear();
    scratch.reserve(count_);  // capacity persists across rows via caller
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) {
        scratch.emplace_back(keys_[i], vals_[i]);
      }
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // The row's size is known now; grow the outputs once, geometrically,
    // so per-row appends never reallocate mid-row yet stay amortized
    // over the whole matrix.
    if (cols.capacity() - cols.size() < scratch.size()) {
      const std::size_t want =
          std::max(cols.size() + scratch.size(),
                   cols.capacity() + cols.capacity() / 2);
      cols.reserve(want);
      vals.reserve(want);
    }
    for (const auto& [c, v] : scratch) {
      cols.push_back(c);
      vals.push_back(v);
    }
  }

  std::size_t count() const { return count_; }

 private:
  static constexpr LocalIndex kEmpty{-1};

  std::size_t hash(LocalIndex key) const {
    return (static_cast<std::size_t>(key) * 0x9e3779b9u) & (keys_.size() - 1);
  }

  void grow() {
    std::vector<LocalIndex> old_keys = std::move(keys_);
    std::vector<Real> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    vals_.assign(old_vals.size() * 2, 0.0);
    count_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmpty) {
        insert(old_keys[i], old_vals[i]);
      }
    }
  }

  std::vector<LocalIndex> keys_;
  std::vector<Real> vals_;
  std::size_t count_ = 0;
};

}  // namespace

Csr spgemm_hash(const Csr& a, const Csr& b) {
  EXW_REQUIRE(a.ncols() == b.nrows(), "spgemm shape mismatch");
  Csr out(a.nrows(), b.ncols());
  auto& rp = out.row_ptr_mut();
  auto& cols = out.cols_vec();
  auto& vals = out.vals_vec();
  RowHash table;
  std::vector<std::pair<LocalIndex, Real>> scratch;
  for (LocalIndex i{0}; i < a.nrows(); ++i) {
    // Upper bound on this row's products sizes the hash table.
    std::size_t upper = 0;
    for (EntryOffset ka = a.row_begin(i); ka < a.row_end(i); ++ka) {
      upper += static_cast<std::size_t>(
          b.row_nnz(a.cols()[ka]));
    }
    table.reset(upper);
    for (EntryOffset ka = a.row_begin(i); ka < a.row_end(i); ++ka) {
      const LocalIndex j = a.cols()[ka];
      const Real av = a.vals()[ka];
      if (av == 0.0) continue;
      for (EntryOffset kb = b.row_begin(j); kb < b.row_end(j); ++kb) {
        table.insert(b.cols()[kb],
                     av * b.vals()[kb]);
      }
    }
    table.emit(cols, vals, scratch);
    rp[static_cast<std::size_t>(i) + 1] = EntryOffset{cols.size()};
  }
  return out;
}

Csr spgemm_sort(const Csr& a, const Csr& b) {
  EXW_REQUIRE(a.ncols() == b.nrows(), "spgemm shape mismatch");
  // Expand every partial product into a triple...
  std::vector<LocalIndex> ti, tj;
  std::vector<Real> tv;
  const auto upper = static_cast<std::size_t>(spgemm_flops(a, b) / 2.0);
  ti.reserve(upper);
  tj.reserve(upper);
  tv.reserve(upper);
  for (LocalIndex i{0}; i < a.nrows(); ++i) {
    for (EntryOffset ka = a.row_begin(i); ka < a.row_end(i); ++ka) {
      const LocalIndex j = a.cols()[ka];
      const Real av = a.vals()[ka];
      for (EntryOffset kb = b.row_begin(j); kb < b.row_end(j); ++kb) {
        ti.push_back(i);
        tj.push_back(b.cols()[kb]);
        tv.push_back(av * b.vals()[kb]);
      }
    }
  }
  // ...then sort and compress, exactly like the assembly path.
  prim::stable_sort_by_key(ti, tj, tv);
  prim::reduce_by_key(ti, tj, tv);
  return Csr::from_triples(a.nrows(), b.ncols(), std::move(ti), std::move(tj),
                           std::move(tv));
}

Csr spgemm(const Csr& a, const Csr& b, SpGemmAlgo algo) {
  return algo == SpGemmAlgo::kHash ? spgemm_hash(a, b) : spgemm_sort(a, b);
}

Csr triple_product(const Csr& r, const Csr& a, const Csr& p, SpGemmAlgo algo) {
  return spgemm(r, spgemm(a, p, algo), algo);
}

Csr rap(const Csr& a, const Csr& p, SpGemmAlgo algo) {
  const Csr ap = spgemm(a, p, algo);
  const Csr rt = p.transpose();
  return spgemm(rt, ap, algo);
}

void ProductPlan::append(std::span<const std::size_t> ls,
                         std::span<const std::size_t> rs) {
  EXW_REQUIRE(ls.size() == rs.size() && !ls.empty(),
              "product-plan entry needs matching, non-empty term lists");
  if (seg_ptr.empty()) seg_ptr.push_back(0);
  lslot.insert(lslot.end(), ls.begin(), ls.end());
  rslot.insert(rslot.end(), rs.begin(), rs.end());
  seg_ptr.push_back(lslot.size());
}

void ProductPlan::replay(std::span<const Real> left,
                         std::span<const Real> right,
                         std::span<Real> out) const {
  EXW_REQUIRE(out.size() == outputs(), "product-plan output size mismatch");
  for (std::size_t e = 0; e + 1 < seg_ptr.size(); ++e) {
    std::size_t t = seg_ptr[e];
    Real acc = zero_init ? 0.0 : left[lslot[t]] * right[rslot[t]];
    if (!zero_init) ++t;
    for (; t < seg_ptr[e + 1]; ++t) {
      acc += left[lslot[t]] * right[rslot[t]];
    }
    out[e] = acc;
  }
}

SpGemmPlan SpGemmPlan::build(const Csr& a, const Csr& b) {
  EXW_REQUIRE(a.ncols() == b.nrows(), "spgemm shape mismatch");
  SpGemmPlan plan;
  plan.c_ = spgemm_hash(a, b);
  plan.a_rows_ = a.nrows();
  plan.a_cols_ = a.ncols();
  plan.b_cols_ = b.ncols();
  plan.a_nnz_ = a.nnz();
  plan.b_nnz_ = b.nnz();
  // Record the partial products of every row in traversal order — the
  // order the hash accumulator folded them in — then group them by output
  // column with a stable sort, which preserves that fold order per entry.
  std::vector<LocalIndex> term_cols;
  std::vector<std::size_t> term_l, term_r;
  std::vector<std::size_t> ls, rs;
  for (LocalIndex i{0}; i < a.nrows(); ++i) {
    term_cols.clear();
    term_l.clear();
    term_r.clear();
    for (EntryOffset ka = a.row_begin(i); ka < a.row_end(i); ++ka) {
      const LocalIndex j = a.cols()[ka];
      if (a.vals()[ka] == 0.0) continue;  // mirror spgemm_hash
      for (EntryOffset kb = b.row_begin(j); kb < b.row_end(j); ++kb) {
        term_cols.push_back(b.cols()[kb]);
        term_l.push_back(static_cast<std::size_t>(ka.value()));
        term_r.push_back(static_cast<std::size_t>(kb.value()));
      }
    }
    const auto perm = prim::sort_permutation(term_cols, std::less<LocalIndex>{});
    for (std::size_t s = 0; s < perm.size();) {
      const LocalIndex col = term_cols[perm[s]];
      ls.clear();
      rs.clear();
      while (s < perm.size() && term_cols[perm[s]] == col) {
        ls.push_back(term_l[perm[s]]);
        rs.push_back(term_r[perm[s]]);
        ++s;
      }
      plan.plan_.append(ls, rs);
    }
  }
  EXW_REQUIRE(plan.plan_.outputs() == plan.c_.nnz(),
              "spgemm plan entry count does not match the hash product");
  return plan;
}

void SpGemmPlan::replay(const Csr& a, const Csr& b, Csr& c) const {
  EXW_REQUIRE(valid(), "replay of an empty spgemm plan");
  EXW_REQUIRE(a.nrows() == a_rows_ && a.ncols() == a_cols_ &&
                  b.ncols() == b_cols_ && a.nnz() == a_nnz_ &&
                  b.nnz() == b_nnz_,
              "spgemm plan is stale: input structure changed");
  EXW_REQUIRE(c.nrows() == c_.nrows() && c.ncols() == c_.ncols() &&
                  c.nnz() == c_.nnz(),
              "spgemm plan is stale: output structure changed");
  plan_.replay(a.vals().raw(), b.vals().raw(), c.vals_vec());
}

double spgemm_flops(const Csr& a, const Csr& b) {
  double flops = 0;
  for (LocalIndex i{0}; i < a.nrows(); ++i) {
    for (EntryOffset k = a.row_begin(i); k < a.row_end(i); ++k) {
      flops += 2.0 * b.row_nnz(a.cols()[k]).value();
    }
  }
  return flops;
}

}  // namespace exw::sparse
