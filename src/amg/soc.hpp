#pragma once
/// \file soc.hpp
/// Strength-of-connection matrix S (paper §4.1).
///
/// "A strength-of-connection matrix S is typically first computed to
/// indicate directions of algebraic smoothness... The construction of S
/// can be performed efficiently on GPUs, because each row of S can be
/// computed independently by selecting entries in the corresponding row
/// of A with a prescribed threshold value theta."
///
/// Classical definition (for the essentially-M-matrices of the pressure
/// Poisson system): j strongly influences i iff
///     -a_ij >= theta * max_{k != i} (-a_ik).
/// The result is stored as boolean masks over A's diag/offd entries so no
/// copy of the values is needed.

#include <vector>

#include "common/types.hpp"
#include "linalg/parcsr.hpp"

namespace exw::amg {

/// Per-rank strength masks, parallel to A's diag/offd value arrays.
struct Strength {
  std::vector<std::vector<std::uint8_t>> diag;  ///< [rank][entry]
  std::vector<std::vector<std::uint8_t>> offd;

  bool strong_diag(RankId r, std::size_t k) const {
    return diag[static_cast<std::size_t>(r)][k] != 0;
  }
  bool strong_offd(RankId r, std::size_t k) const {
    return offd[static_cast<std::size_t>(r)][k] != 0;
  }
};

/// Compute S(A, theta). Diagonal entries are never strong.
Strength compute_strength(const linalg::ParCsr& a, Real theta);

/// Count of strong entries per rank (cost accounting / tests).
std::vector<double> strong_counts(const Strength& s);

}  // namespace exw::amg
