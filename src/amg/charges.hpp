#pragma once
/// \file charges.hpp
/// Cost-model charges for the AMG setup paths, split so the bench/CI
/// invariant "a warm hierarchy refresh streams values only — it never
/// charges the O(n^3) coarse-LU factorization or a setup SpGEMM" stays
/// auditable (the AMG analogue of the charge_sort vs charge_stream split
/// in src/assembly/charges.hpp):
///
///   * rebuild-only: charge_dense_lu (called from AmgHierarchy::setup,
///     alongside the SpGEMM product charges issued by galerkin_rap /
///     par_matmat themselves),
///   * refresh: charge_value_stream and charge_replay only — cache.cpp
///     must not reference charge_dense_lu, and a frozen-product replay is
///     priced as its multiply-adds over one streaming pass.

#include <cmath>
#include <cstddef>

#include "common/types.hpp"
#include "perf/tracer.hpp"

namespace exw::amg::detail {

/// Dense LU factorization of the n x n coarsest operator on rank 0:
/// n^3/3 flops over the n^2 matrix. True rebuilds only — a value refresh
/// keeps the frozen factors (see DESIGN.md §12).
inline void charge_dense_lu(perf::Tracer& tracer, std::int64_t n) {
  const auto dn = static_cast<double>(n);
  tracer.kernel(RankId{0}, dn * dn * dn / 3.0, 8.0 * dn * dn);
}

/// One streaming pass over n Real values (gather/copy on the warm path).
inline void charge_value_stream(perf::Tracer& tracer, RankId r,
                                std::size_t n) {
  const auto dn = static_cast<double>(n);
  tracer.kernel(r, dn, 2.0 * sizeof(Real) * dn);
}

/// One frozen-product replay: `flops` multiply-adds reading two value
/// slots per term plus one store per output — a single pass, no sort, no
/// hash probes (contrast with the sort_penalty factors in rap.cpp).
inline void charge_replay(perf::Tracer& tracer, RankId r, double flops,
                          std::size_t outputs) {
  tracer.kernel(r, flops,
                flops * sizeof(Real) +
                    sizeof(Real) * static_cast<double>(outputs));
}

}  // namespace exw::amg::detail
