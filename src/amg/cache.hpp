#pragma once
/// \file cache.hpp
/// AMG hierarchy cache: setup's structural outputs frozen once, value-only
/// refreshes every Picard iteration after that.
///
/// AMG setup — SoC, PMIS, interpolation, and the Galerkin SpGEMMs — is a
/// pure function of the fine matrix's *pattern* plus its values. Inside a
/// time step the pressure-Poisson pattern is frozen (the equation graph
/// runs once, PR "assembly plan" reuses it), so every Picard solve after
/// the first re-derives the same coarsening, the same interpolation
/// pattern and the same product structures. The cache freezes those once
/// (AmgHierarchy's freeze_replay mode records a RapRecord per level and
/// converts it into a LevelReplay here) and then replays frozen
/// ProductPlans to refill every level's values in place: no graph
/// traversal, no hashing, no steady-state allocation, bitwise-identical
/// to re-running setup against the frozen coarsening. This is the setup
/// half of the algorithmic-scalability program of "Alya towards Exascale"
/// (PAPERS.md) applied to our §4 pressure solve.
///
/// What is frozen vs refilled per level is documented in DESIGN.md §12;
/// the drift policy (refresh lag, stagnation rebuilds) lives in
/// cfd::Simulation and is keyed through HierarchyCache below.

#include <cstdint>
#include <memory>
#include <vector>

#include "amg/config.hpp"
#include "amg/hierarchy.hpp"
#include "amg/rap.hpp"
#include "assembly/plan.hpp"
#include "linalg/parcsr.hpp"

namespace exw::amg {

/// Frozen value-replay state for one level transition l -> l+1: the
/// RapRecord's term plans plus the AssemblyPlan that turns the replayed
/// coarse COO triples into the coarse ParCsr's values in place.
struct LevelReplay {
  RapRecord record;
  assembly::AssemblyPlan plan;
  /// AssemblyPlan views require all four pieces; RAP has no RHS, so dense
  /// zero vectors and empty sparse adds back the RHS half permanently.
  std::vector<RealVector> rhs_owned;
  std::vector<sparse::CooVector> rhs_shared;
  std::vector<assembly::SystemView> views;
  /// Per-rank warm scratch, sized on the first refresh and reused (rank
  /// r's body touches only entry r, per the threading contract).
  struct Scratch {
    RealVector a_flat;   ///< [diag vals | offd vals] of the fine level
    RealVector ap_vals;  ///< replayed intermediate AP values
  };
  std::vector<Scratch> scratch;
};

/// Convert a RapRecord into a LevelReplay: build the coarse-operator
/// AssemblyPlan over the frozen normalized triples (charged like the one
/// cold structural pass it is) and wire up the views.
std::unique_ptr<LevelReplay> freeze_level_replay(par::Runtime& rt,
                                                 RapRecord&& record,
                                                 const par::RowPartition& coarse);

/// Replay one transition: gather the fine level's values, run the frozen
/// AP and outer-product term plans, and refill `coarse_a`'s values via the
/// AssemblyPlan. Streaming charges only — never the setup SpGEMM or sort
/// charges (see amg/charges.hpp).
void replay_level(par::Runtime& rt, LevelReplay& lr,
                  const linalg::ParCsr& fine_a, linalg::ParCsr& coarse_a);

/// Pressure-preconditioner cache: one AmgHierarchy kept across Picard
/// solves, keyed on (equation-graph generation, AmgConfig), with rebuild
/// vs refresh bookkeeping for the drift policy and the solver stats.
class HierarchyCache {
 public:
  bool valid() const { return valid_; }
  std::uint64_t generation() const { return generation_; }
  const AmgConfig& config() const { return cfg_; }
  AmgHierarchy& hierarchy() { return *hierarchy_; }

  long rebuilds() const { return rebuilds_; }
  long refreshes() const { return refreshes_; }
  int solves_since_rebuild() const { return solves_since_rebuild_; }

  /// True when the key no longer matches (invalid cache, new graph
  /// generation, or changed AMG configuration).
  bool stale(std::uint64_t generation, const AmgConfig& cfg) const {
    return !valid_ || generation_ != generation || !(cfg_ == cfg);
  }

  /// Structural rebuild from `a`. `freeze` additionally records the
  /// replay plans so later solves can refresh() instead.
  void rebuild(const linalg::ParCsr& a, const AmgConfig& cfg,
               std::uint64_t generation, bool freeze);

  /// Value-only refresh; requires a frozen, valid hierarchy with an
  /// unchanged fine structure (throws exw::Error otherwise).
  void refresh(const linalg::ParCsr& a);

  void invalidate() { valid_ = false; }

  /// Record one preconditioned solve against the current hierarchy. The
  /// first solve after a rebuild sets the iteration baseline the
  /// stagnation policy compares against.
  void note_solve(int iterations);

  /// True when the last solve's iterations drifted `ratio`x above the
  /// post-rebuild baseline — the preconditioner has gone stale enough
  /// that the drift policy should force a rebuild.
  bool stagnating(double ratio) const;

 private:
  std::unique_ptr<AmgHierarchy> hierarchy_;
  AmgConfig cfg_;
  std::uint64_t generation_ = 0;
  bool valid_ = false;
  long rebuilds_ = 0;
  long refreshes_ = 0;
  int solves_since_rebuild_ = 0;
  int baseline_iters_ = -1;
  int last_iters_ = -1;
};

}  // namespace exw::amg
