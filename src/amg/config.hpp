#pragma once
/// \file config.hpp
/// BoomerAMG-style configuration knobs (paper §4, §5.1 "parameter tuning
/// of the BoomerAMG preconditioner ... yielded modest but nontrivial
/// gains").

#include <cstdint>

#include "common/precision.hpp"
#include "common/types.hpp"
#include "sparse/spgemm.hpp"

namespace exw::amg {

/// Interpolation operators of §4.1.
enum class InterpType : std::uint8_t {
  kDirect,   ///< classical direct interpolation
  kBamg,     ///< BAMG-direct closed form (Eq. 2)
  kMmExt,    ///< matrix-matrix extended ("MM-ext")
  kMmExtI,   ///< "MM-ext+i" variant (includes the diagonal i-connection)
};

/// Smoothers of §4.2.
enum class SmootherType : std::uint8_t {
  kJacobi,      ///< diagonally-scaled Richardson
  kL1Jacobi,    ///< l1-scaled Jacobi (always convergent)
  kHybridGs,    ///< process-local true Gauss-Seidel, Jacobi across ranks
  kTwoStageGs,  ///< two-stage GS: inner Jacobi-Richardson sweeps (Eqs. 5-7)
  kSgs2,        ///< two-stage *symmetric* GS, compact form (Eqs. 11-14)
  kChebyshev,   ///< polynomial smoother (collective-free alternative)
};

struct AmgConfig {
  Real strong_threshold = 0.25;  ///< SoC threshold theta
  int agg_levels = 2;   ///< aggressive (two-stage) coarsening on first N levels
  InterpType interp = InterpType::kMmExt;
  int pmax = 4;                ///< max interpolation entries per row
  Real trunc_factor = 0.0;     ///< drop |w| < trunc * max|w| before pmax
  int max_levels = 20;
  GlobalIndex max_coarse_size{64};  ///< direct-solve threshold
  SmootherType smoother = SmootherType::kTwoStageGs;
  int pre_sweeps = 1;
  int post_sweeps = 1;
  int inner_sweeps = 1;  ///< Jacobi-Richardson inner iterations (two-stage GS)
  Real jacobi_weight = 0.8;
  sparse::SpGemmAlgo spgemm = sparse::SpGemmAlgo::kHash;
  std::uint64_t pmis_seed = 42;
  /// Storage precision of the hierarchy's operators, transfers, and work
  /// vectors (DESIGN.md §16). kF32 runs the whole V-cycle — smoother
  /// streams, halo payloads, transfer wires — through FP32 storage with
  /// FP64 arithmetic between rounded stores, the iterative-refinement
  /// split of Oliani et al.; the outer Krylov solve stays FP64. Part of
  /// the cache key: flipping it forces a structural rebuild.
  Precision precision = Precision::kF64;

  /// Memberwise equality — the HierarchyCache key: any knob change forces
  /// a structural rebuild.
  bool operator==(const AmgConfig&) const = default;
};

}  // namespace exw::amg
