#include "amg/soc.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace exw::amg {

Strength compute_strength(const linalg::ParCsr& a, Real theta) {
  const int nranks = a.nranks();
  Strength s;
  s.diag.resize(static_cast<std::size_t>(nranks));
  s.offd.resize(static_cast<std::size_t>(nranks));
  auto& tracer = a.runtime().tracer();

  for (RankId r{0}; r.value() < nranks; ++r) {
    const auto& b = a.block(r);
    auto& sd = s.diag[static_cast<std::size_t>(r)];
    auto& so = s.offd[static_cast<std::size_t>(r)];
    sd.assign(b.diag.nnz(), 0);
    so.assign(b.offd.nnz(), 0);
    for (LocalIndex i{0}; i < b.diag.nrows(); ++i) {
      // Row-wise threshold: strongest negative off-diagonal coupling.
      Real max_neg = 0.0;
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        if (b.diag.cols()[k] == i) continue;
        max_neg = std::max(max_neg, -b.diag.vals()[k]);
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        max_neg = std::max(max_neg, -b.offd.vals()[k]);
      }
      if (max_neg <= 0.0) continue;  // no negative couplings: all weak
      const Real cut = theta * max_neg;
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        if (b.diag.cols()[k] == i) continue;
        if (-b.diag.vals()[k] >= cut) {
          sd[static_cast<std::size_t>(k)] = 1;
        }
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        if (-b.offd.vals()[k] >= cut) {
          so[static_cast<std::size_t>(k)] = 1;
        }
      }
    }
    const auto nnz = static_cast<double>(b.diag.nnz() + b.offd.nnz());
    tracer.kernel(r, 2.0 * nnz, nnz * (sizeof(Real) + sizeof(LocalIndex) + 1.0));
  }
  return s;
}

std::vector<double> strong_counts(const Strength& s) {
  std::vector<double> out(s.diag.size(), 0.0);
  for (std::size_t r = 0; r < s.diag.size(); ++r) {
    for (auto v : s.diag[r]) out[r] += v;
    for (auto v : s.offd[r]) out[r] += v;
  }
  return out;
}

}  // namespace exw::amg
