#include "amg/smoothers.hpp"

#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "perf/purity.hpp"

namespace exw::amg {

LduSplit LduSplit::build(const linalg::ParCsr& a) {
  LduSplit out;
  const Precision pr = a.value_precision();
  const int nranks = a.nranks();
  out.lower.resize(static_cast<std::size_t>(nranks));
  out.upper.resize(static_cast<std::size_t>(nranks));
  out.dinv.resize(static_cast<std::size_t>(nranks));
  out.l1_dinv.resize(static_cast<std::size_t>(nranks));
  a.runtime().parallel_for_ranks([&](RankId r) {
    const auto& b = a.block(r);
    const LocalIndex n = b.diag.nrows();
    sparse::Csr lo(n, n), up(n, n);
    auto& dinv = out.dinv[static_cast<std::size_t>(r)];
    auto& l1 = out.l1_dinv[static_cast<std::size_t>(r)];
    dinv.assign(static_cast<std::size_t>(n), 0.0);
    l1.assign(static_cast<std::size_t>(n), 0.0);
    for (LocalIndex i{0}; i < n; ++i) {
      Real d = 0, off_rank_l1 = 0;
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        const LocalIndex c = b.diag.cols()[k];
        const Real v = b.diag.vals()[k];
        if (c < i) {
          lo.cols_vec().push_back(c);
          lo.vals_vec().push_back(v);
        } else if (c > i) {
          up.cols_vec().push_back(c);
          up.vals_vec().push_back(v);
        } else {
          d = v;
        }
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        off_rank_l1 += std::abs(b.offd.vals()[k]);
      }
      lo.row_ptr_mut()[static_cast<std::size_t>(i) + 1] =
          EntryOffset{lo.cols_vec().size()};
      up.row_ptr_mut()[static_cast<std::size_t>(i) + 1] =
          EntryOffset{up.cols_vec().size()};
      EXW_REQUIRE(d != 0.0, "zero diagonal in smoother setup");
      // The split shares the matrix's storage plane: an FP32 operator
      // gets FP32-rounded reciprocals (L/U values are copies of already
      // rounded entries, so only the divisions need the store round).
      dinv[static_cast<std::size_t>(i)] = store_value(1.0 / d, pr);
      l1[static_cast<std::size_t>(i)] =
          store_value(1.0 / (d + off_rank_l1), pr);
    }
    out.lower[static_cast<std::size_t>(r)] = std::move(lo);
    out.upper[static_cast<std::size_t>(r)] = std::move(up);
  });
  return out;
}

EXW_WARM_FN
void LduSplit::refresh_values(const linalg::ParCsr& a) {
  const Precision pr = a.value_precision();
  a.runtime().parallel_for_ranks([&](RankId r) {
    const auto& b = a.block(r);
    const LocalIndex n = b.diag.nrows();
    auto& lo = lower[static_cast<std::size_t>(r)];
    auto& up = upper[static_cast<std::size_t>(r)];
    auto& di = dinv[static_cast<std::size_t>(r)];
    auto& l1 = l1_dinv[static_cast<std::size_t>(r)];
    EXW_REQUIRE(di.size() == static_cast<std::size_t>(n),
                "smoother refresh: matrix structure changed");
    auto& lo_vals = lo.vals_vec();
    auto& up_vals = up.vals_vec();
    std::size_t lo_k = 0, up_k = 0;
    for (LocalIndex i{0}; i < n; ++i) {
      Real d = 0, off_rank_l1 = 0;
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        const LocalIndex c = b.diag.cols()[k];
        const Real v = b.diag.vals()[k];
        if (c < i) {
          lo_vals[lo_k++] = v;
        } else if (c > i) {
          up_vals[up_k++] = v;
        } else {
          d = v;
        }
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        off_rank_l1 += std::abs(b.offd.vals()[k]);
      }
      EXW_REQUIRE(d != 0.0, "zero diagonal in smoother refresh");
      di[static_cast<std::size_t>(i)] = store_value(1.0 / d, pr);
      l1[static_cast<std::size_t>(i)] =
          store_value(1.0 / (d + off_rank_l1), pr);
    }
    EXW_REQUIRE(lo_k == lo.nnz() && up_k == up.nnz(),
                "smoother refresh: triangular structure changed");
  });
}

Real estimate_eig_max(const linalg::ParCsr& a) {
  // Gershgorin on Dinv A: max_i (1 + sum_{j != i} |a_ij| / |a_ii|).
  // Rows with a negative diagonal must contribute through |a_ii| — the
  // old `dii > 0` guard silently skipped them and could return a bound
  // of 0, which collapses the Chebyshev interval to a point and poisons
  // the smoother. A zero diagonal has no valid Dinv A row at all, so
  // that fails loudly instead.
  std::vector<Real> per_rank(static_cast<std::size_t>(a.nranks()), 0.0);
  a.runtime().parallel_for_ranks([&](RankId r) {
    const auto& b = a.block(r);
    const auto d = b.diag.diagonal();
    Real bound = 0;
    for (LocalIndex i{0}; i < b.diag.nrows(); ++i) {
      Real row = 0;
      for (EntryOffset k = b.diag.row_begin(i); k < b.diag.row_end(i); ++k) {
        if (b.diag.cols()[k] != i) {
          row += std::abs(b.diag.vals()[k]);
        }
      }
      for (EntryOffset k = b.offd.row_begin(i); k < b.offd.row_end(i); ++k) {
        row += std::abs(b.offd.vals()[k]);
      }
      const Real dii = d[static_cast<std::size_t>(i)];
      EXW_REQUIRE(dii != 0.0, "zero diagonal in eigenvalue estimate");
      bound = std::max(bound, 1.0 + row / std::abs(dii));
    }
    per_rank[static_cast<std::size_t>(r)] = bound;
  });
  Real bound = 0;
  for (Real b : per_rank) bound = std::max(bound, b);
  return bound;
}

Smoother::Smoother(const linalg::ParCsr& a, SmootherType type,
                   int inner_sweeps, Real jacobi_weight)
    : a_(&a), type_(type), inner_sweeps_(inner_sweeps), weight_(jacobi_weight),
      ldu_(LduSplit::build(a)) {
  if (type == SmootherType::kChebyshev) {
    eig_max_ = estimate_eig_max(a);
    a.runtime().tracer().collective(sizeof(Real));  // eig-bound reduction
  }
}

EXW_WARM_FN
void Smoother::refresh_values() {
  EXW_PURITY_REGION("smoother-rebind");
  ldu_.refresh_values(*a_);
  if (type_ == SmootherType::kChebyshev) {
    // Per-rank bound staging + the diagonal view inside the estimate are
    // reduction buffers, the collective's payload in a real run.
    EXW_PURITY_ALLOW("collective payload staging");
    eig_max_ = estimate_eig_max(*a_);
    a_->runtime().tracer().collective(sizeof(Real));
  }
}

void Smoother::apply(const linalg::ParVector& b, linalg::ParVector& x,
                     int sweeps) const {
  for (std::int64_t s = 0; s < sweeps; ++s) {
    switch (type_) {
      case SmootherType::kJacobi: sweep_jacobi(b, x, false); break;
      case SmootherType::kL1Jacobi: sweep_jacobi(b, x, true); break;
      case SmootherType::kHybridGs: sweep_hybrid_gs(b, x); break;
      case SmootherType::kTwoStageGs: sweep_two_stage(b, x); break;
      case SmootherType::kSgs2: sweep_sgs2(b, x); break;
      case SmootherType::kChebyshev: sweep_chebyshev(b, x); break;
    }
  }
}

void Smoother::apply_zero(const linalg::ParVector& r, linalg::ParVector& z,
                          int sweeps) const {
  z.fill(0.0);
  apply(r, z, sweeps);
}

void Smoother::apply_multi(const linalg::ParMultiVector& b,
                           linalg::ParMultiVector& x, int sweeps) const {
  EXW_REQUIRE(b.ncomp() == x.ncomp(), "smoother lane count mismatch");
  switch (type_) {
    case SmootherType::kJacobi:
    case SmootherType::kL1Jacobi:
    case SmootherType::kSgs2:
      for (std::int64_t s = 0; s < sweeps; ++s) {
        if (type_ == SmootherType::kSgs2) {
          sweep_sgs2_multi(b, x);
        } else {
          sweep_jacobi_multi(b, x, type_ == SmootherType::kL1Jacobi);
        }
      }
      return;
    default: {
      // Per-lane fallback through scratch vectors: correct for every
      // type, fused traffic savings only where a native sweep exists.
      linalg::ParVector bl(a_->runtime(), a_->rows());
      linalg::ParVector xl(a_->runtime(), a_->rows());
      for (std::size_t c = 0; c < x.ncomp(); ++c) {
        b.extract_lane(c, bl);
        x.extract_lane(c, xl);
        apply(bl, xl, sweeps);
        x.set_lane(c, xl);
      }
      return;
    }
  }
}

void Smoother::apply_zero_multi(const linalg::ParMultiVector& r,
                                linalg::ParMultiVector& z, int sweeps) const {
  z.fill(0.0);
  apply_multi(r, z, sweeps);
}

void Smoother::sweep_jacobi(const linalg::ParVector& b, linalg::ParVector& x,
                            bool l1) const {
  // x += w * Dinv * (b - A x). The update arithmetic is FP64; stores into
  // x round through the smoother's storage plane (the matrix precision).
  const Precision pr = a_->value_precision();
  linalg::ParVector r(a_->runtime(), a_->rows());
  r.set_value_precision(pr);
  a_->residual(b, x, r);
  auto& tracer = a_->runtime().tracer();
  a_->runtime().parallel_for_ranks([&](RankId rk) {
    auto& xl = x.local(rk);
    const auto& rl = r.local(rk);
    const auto& d = l1 ? ldu_.l1_dinv[static_cast<std::size_t>(rk)]
                       : ldu_.dinv[static_cast<std::size_t>(rk)];
    for (std::size_t i = 0; i < xl.size(); ++i) {
      xl[i] = store_value(xl[i] + weight_ * d[i] * rl[i], pr);
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr, 4.0 * bytes_of(pr) * static_cast<double>(xl.size()),
                      f64, f32);
    tracer.kernel_split_prec(rk, 3.0 * static_cast<double>(xl.size()), f64,
                             f32, 0.0);
  });
}

void Smoother::sweep_jacobi_multi(const linalg::ParMultiVector& b,
                                  linalg::ParMultiVector& x, bool l1) const {
  // Lane c: x_c += w * Dinv * (b_c - A x_c), residual fused across lanes.
  const Precision pr = a_->value_precision();
  linalg::ParMultiVector r(a_->runtime(), a_->rows(), x.ncomp());
  r.set_value_precision(pr);
  a_->residual_multi(b, x, r);
  auto& tracer = a_->runtime().tracer();
  const auto nl = static_cast<double>(x.ncomp());
  a_->runtime().parallel_for_ranks([&](RankId rk) {
    const auto& d = l1 ? ldu_.l1_dinv[static_cast<std::size_t>(rk)]
                       : ldu_.dinv[static_cast<std::size_t>(rk)];
    const std::size_t n = d.size();
    auto& xl = x.local(rk);
    const auto& rl = r.local(rk);
    for (std::size_t c = 0; c < x.ncomp(); ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        xl[c * n + i] =
            store_value(xl[c * n + i] + weight_ * d[i] * rl[c * n + i], pr);
      }
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr, 4.0 * bytes_of(pr) * nl * static_cast<double>(n),
                      f64, f32);
    tracer.kernel_split_prec(rk, 3.0 * nl * static_cast<double>(n), f64, f32,
                             0.0);
  });
}

void Smoother::sweep_hybrid_gs(const linalg::ParVector& b,
                               linalg::ParVector& x) const {
  // One round of neighbor communication, then a true sequential forward
  // GS sweep on the local rows (off-rank values frozen).
  const Precision pr = a_->value_precision();
  const auto ext = a_->halo_exchange(x);
  auto& tracer = a_->runtime().tracer();
  a_->runtime().parallel_for_ranks([&](RankId rk) {
    const auto& blk = a_->block(rk);
    auto& xl = x.local(rk);
    const auto& bl = b.local(rk);
    const auto& el = ext[static_cast<std::size_t>(rk)];
    for (LocalIndex i{0}; i < blk.diag.nrows(); ++i) {
      Real acc = bl[static_cast<std::size_t>(i)];
      Real diag = 1.0;
      for (EntryOffset k = blk.diag.row_begin(i); k < blk.diag.row_end(i); ++k) {
        const LocalIndex c = blk.diag.cols()[k];
        const Real v = blk.diag.vals()[k];
        if (c == i) {
          diag = v;
        } else {
          acc -= v * xl[static_cast<std::size_t>(c)];
        }
      }
      for (EntryOffset k = blk.offd.row_begin(i); k < blk.offd.row_end(i); ++k) {
        acc -= blk.offd.vals()[k] *
               el[static_cast<std::size_t>(
                   blk.offd.cols()[k])];
      }
      xl[static_cast<std::size_t>(i)] = store_value(acc / diag, pr);
    }
    const auto nnz = static_cast<double>(blk.diag.nnz() + blk.offd.nnz());
    double f64 = 0, f32 = 0;
    split_value_bytes(pr, nnz * bytes_of(pr), f64, f32);
    tracer.kernel_split_prec(rk, 2.0 * nnz, f64, f32,
                             nnz * sizeof(LocalIndex));
  });
}

void Smoother::jr_lower(RankId r, const RealVector& rhs, RealVector& g) const {
  // Eqs. (5)-(7): g_0 = Dinv rhs; g_{j+1} = Dinv (rhs - L g_j). The JR
  // iterate is a smoother-internal stream: stores round through the
  // matrix's storage plane and the value bytes price accordingly — this
  // is the stream the mixed hierarchy halves.
  const Precision pr = a_->value_precision();
  const auto& lo = ldu_.lower[static_cast<std::size_t>(r)];
  const auto& d = ldu_.dinv[static_cast<std::size_t>(r)];
  const std::size_t n = rhs.size();
  g.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = store_value(d[i] * rhs[i], pr);
  }
  RealVector lg(n);
  auto& tracer = a_->runtime().tracer();
  for (std::int64_t j = 0; j < inner_sweeps_; ++j) {
    lo.spmv(g, lg);
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = store_value(d[i] * (rhs[i] - lg[i]), pr);
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr,
                      bytes_of(pr) * (static_cast<double>(lo.nnz()) +
                                      4.0 * static_cast<double>(n)),
                      f64, f32);
    tracer.kernel_split_prec(
        r, 2.0 * static_cast<double>(lo.nnz()) + 3.0 * static_cast<double>(n),
        f64, f32, sizeof(LocalIndex) * static_cast<double>(lo.nnz()));
  }
}

void Smoother::jr_lower_multi(RankId r, const RealVector& rhs,
                              std::size_t lanes, RealVector& g) const {
  // Fused Eqs. (5)-(7): every lane runs the scalar recurrence g_0 =
  // Dinv rhs, g_{j+1} = Dinv (rhs - L g_j) bitwise-identically; the L
  // structure is streamed once per sweep for all lanes.
  const Precision pr = a_->value_precision();
  const auto& lo = ldu_.lower[static_cast<std::size_t>(r)];
  const auto& d = ldu_.dinv[static_cast<std::size_t>(r)];
  const std::size_t n = d.size();
  EXW_ASSERT(rhs.size() == lanes * n);
  g.resize(lanes * n);
  for (std::size_t c = 0; c < lanes; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      g[c * n + i] = store_value(d[i] * rhs[c * n + i], pr);
    }
  }
  RealVector lg(lanes * n);
  auto& tracer = a_->runtime().tracer();
  const auto nl = static_cast<double>(lanes);
  for (std::int64_t j = 0; j < inner_sweeps_; ++j) {
    lo.spmv_multi(g, n, lg, n, lanes);
    for (std::size_t c = 0; c < lanes; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        g[c * n + i] =
            store_value(d[i] * (rhs[c * n + i] - lg[c * n + i]), pr);
      }
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr,
                      nl * bytes_of(pr) * (static_cast<double>(lo.nnz()) +
                                           4.0 * static_cast<double>(n)),
                      f64, f32);
    tracer.kernel_split_prec(
        r,
        nl * (2.0 * static_cast<double>(lo.nnz()) + 3.0 * static_cast<double>(n)),
        f64, f32, sizeof(LocalIndex) * static_cast<double>(lo.nnz()));
  }
}

void Smoother::jr_upper(RankId r, const RealVector& rhs, RealVector& g) const {
  const Precision pr = a_->value_precision();
  const auto& up = ldu_.upper[static_cast<std::size_t>(r)];
  const auto& d = ldu_.dinv[static_cast<std::size_t>(r)];
  const std::size_t n = rhs.size();
  g.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = store_value(d[i] * rhs[i], pr);
  }
  RealVector ug(n);
  auto& tracer = a_->runtime().tracer();
  for (std::int64_t j = 0; j < inner_sweeps_; ++j) {
    up.spmv(g, ug);
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = store_value(d[i] * (rhs[i] - ug[i]), pr);
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr,
                      bytes_of(pr) * (static_cast<double>(up.nnz()) +
                                      4.0 * static_cast<double>(n)),
                      f64, f32);
    tracer.kernel_split_prec(
        r, 2.0 * static_cast<double>(up.nnz()) + 3.0 * static_cast<double>(n),
        f64, f32, sizeof(LocalIndex) * static_cast<double>(up.nnz()));
  }
}

void Smoother::jr_upper_multi(RankId r, const RealVector& rhs,
                              std::size_t lanes, RealVector& g) const {
  const Precision pr = a_->value_precision();
  const auto& up = ldu_.upper[static_cast<std::size_t>(r)];
  const auto& d = ldu_.dinv[static_cast<std::size_t>(r)];
  const std::size_t n = d.size();
  EXW_ASSERT(rhs.size() == lanes * n);
  g.resize(lanes * n);
  for (std::size_t c = 0; c < lanes; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      g[c * n + i] = store_value(d[i] * rhs[c * n + i], pr);
    }
  }
  RealVector ug(lanes * n);
  auto& tracer = a_->runtime().tracer();
  const auto nl = static_cast<double>(lanes);
  for (std::int64_t j = 0; j < inner_sweeps_; ++j) {
    up.spmv_multi(g, n, ug, n, lanes);
    for (std::size_t c = 0; c < lanes; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        g[c * n + i] =
            store_value(d[i] * (rhs[c * n + i] - ug[c * n + i]), pr);
      }
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr,
                      nl * bytes_of(pr) * (static_cast<double>(up.nnz()) +
                                           4.0 * static_cast<double>(n)),
                      f64, f32);
    tracer.kernel_split_prec(
        r,
        nl * (2.0 * static_cast<double>(up.nnz()) + 3.0 * static_cast<double>(n)),
        f64, f32, sizeof(LocalIndex) * static_cast<double>(up.nnz()));
  }
}

void Smoother::sweep_two_stage(const linalg::ParVector& b,
                               linalg::ParVector& x) const {
  // x += Mtilde^-1 (b - A x) with Mtilde^-1 ~ (L+D)^-1 by inner JR.
  const Precision pr = a_->value_precision();
  linalg::ParVector r(a_->runtime(), a_->rows());
  r.set_value_precision(pr);
  a_->residual(b, x, r);
  a_->runtime().parallel_for_ranks([&](RankId rk) {
    RealVector g;
    jr_lower(rk, r.local(rk), g);
    auto& xl = x.local(rk);
    for (std::size_t i = 0; i < xl.size(); ++i) {
      xl[i] = store_value(xl[i] + g[i], pr);
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr, 3.0 * bytes_of(pr) * static_cast<double>(xl.size()),
                      f64, f32);
    a_->runtime().tracer().kernel_split_prec(
        rk, static_cast<double>(xl.size()), f64, f32, 0.0);
  });
}

void Smoother::sweep_sgs2(const linalg::ParVector& b,
                          linalg::ParVector& x) const {
  // Symmetric two-stage GS: M = (L+D) D^-1 (D+U), both triangular solves
  // approximated by inner JR sweeps (compact form of Eqs. 11-14).
  const Precision pr = a_->value_precision();
  linalg::ParVector r(a_->runtime(), a_->rows());
  r.set_value_precision(pr);
  a_->residual(b, x, r);
  a_->runtime().parallel_for_ranks([&](RankId rk) {
    RealVector g, h, t;
    const auto& d = ldu_.dinv[static_cast<std::size_t>(rk)];
    jr_lower(rk, r.local(rk), g);
    // rhs for the backward stage: D * g.
    t.resize(g.size());
    for (std::size_t i = 0; i < g.size(); ++i) {
      t[i] = store_value(g[i] / d[i], pr);
    }
    jr_upper(rk, t, h);
    auto& xl = x.local(rk);
    for (std::size_t i = 0; i < xl.size(); ++i) {
      xl[i] = store_value(xl[i] + h[i], pr);
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr, 4.0 * bytes_of(pr) * static_cast<double>(xl.size()),
                      f64, f32);
    a_->runtime().tracer().kernel_split_prec(
        rk, 2.0 * static_cast<double>(xl.size()), f64, f32, 0.0);
  });
}

void Smoother::sweep_sgs2_multi(const linalg::ParMultiVector& b,
                                linalg::ParMultiVector& x) const {
  // Fused symmetric two-stage GS: one multi-residual, then the forward
  // and backward JR stages stream L/U once per inner sweep for all
  // lanes. Each lane's arithmetic is exactly sweep_sgs2's.
  const Precision pr = a_->value_precision();
  linalg::ParMultiVector r(a_->runtime(), a_->rows(), x.ncomp());
  r.set_value_precision(pr);
  a_->residual_multi(b, x, r);
  const std::size_t lanes = x.ncomp();
  const auto nl = static_cast<double>(lanes);
  a_->runtime().parallel_for_ranks([&](RankId rk) {
    RealVector g, h, t;
    const auto& d = ldu_.dinv[static_cast<std::size_t>(rk)];
    const std::size_t n = d.size();
    jr_lower_multi(rk, r.local(rk), lanes, g);
    // rhs for the backward stage: D * g, lane by lane.
    t.resize(g.size());
    for (std::size_t c = 0; c < lanes; ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        t[c * n + i] = store_value(g[c * n + i] / d[i], pr);
      }
    }
    jr_upper_multi(rk, t, lanes, h);
    auto& xl = x.local(rk);
    for (std::size_t i = 0; i < xl.size(); ++i) {
      xl[i] = store_value(xl[i] + h[i], pr);
    }
    double f64 = 0, f32 = 0;
    split_value_bytes(pr, 4.0 * bytes_of(pr) * nl * static_cast<double>(n),
                      f64, f32);
    a_->runtime().tracer().kernel_split_prec(
        rk, 2.0 * nl * static_cast<double>(n), f64, f32, 0.0);
  });
}

void Smoother::sweep_chebyshev(const linalg::ParVector& b,
                               linalg::ParVector& x) const {
  // Degree-k Chebyshev on Dinv A over [eig_max/30, 1.1 eig_max] (the
  // upper part of the spectrum that smoothers must damp). Entirely made
  // of SpMVs and AXPYs: no triangular solves and no extra collectives —
  // the classic GPU-friendly alternative to Gauss-Seidel.
  const Real lmax = 1.1 * eig_max_;
  const Real lmin = lmax / 30.0;
  const Real theta = 0.5 * (lmax + lmin);
  const Real delta = 0.5 * (lmax - lmin);
  const int degree = std::max(1, inner_sweeps_ + 1);

  const Precision pr = a_->value_precision();
  par::Runtime& rt = a_->runtime();
  linalg::ParVector r(rt, a_->rows());
  linalg::ParVector d(rt, a_->rows());
  linalg::ParVector dinv_r(rt, a_->rows());
  r.set_value_precision(pr);
  d.set_value_precision(pr);
  dinv_r.set_value_precision(pr);
  a_->residual(b, x, r);

  auto scale_dinv = [&](const linalg::ParVector& src, linalg::ParVector& dst) {
    rt.parallel_for_ranks([&](RankId rk) {
      const auto& dv = ldu_.dinv[static_cast<std::size_t>(rk)];
      auto& out = dst.local(rk);
      const auto& in = src.local(rk);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = store_value(dv[i] * in[i], pr);
      }
      double f64 = 0, f32 = 0;
      split_value_bytes(
          pr, 3.0 * bytes_of(pr) * static_cast<double>(out.size()), f64, f32);
      rt.tracer().kernel_split_prec(rk, static_cast<double>(out.size()), f64,
                                    f32, 0.0);
    });
  };

  // d_0 = (1/theta) Dinv r.
  scale_dinv(r, d);
  d.scale(1.0 / theta);
  Real sigma = theta / delta;
  for (std::int64_t k = 0; k < degree; ++k) {
    x.axpy(1.0, d);
    if (k + 1 == degree) break;
    a_->matvec(d, dinv_r);     // dinv_r = A d (reuse as scratch)
    r.axpy(-1.0, dinv_r);      // r -= A d
    scale_dinv(r, dinv_r);     // dinv_r = Dinv r
    const Real sigma_next = 1.0 / (2.0 * theta / delta - sigma);
    const Real rho = sigma * sigma_next;
    // d = rho d + (2 sigma_next / delta) Dinv r.
    d.scale(rho);
    d.axpy(2.0 * sigma_next / delta, dinv_r);
    sigma = sigma_next;
  }
}

}  // namespace exw::amg
