#pragma once
/// \file rap.hpp
/// Distributed Galerkin triple product A_c = P^T A P (paper §4.1).
///
/// "Galerkin triple-matrix products are used to build coarse-level
/// operators. This computation is performed using parallel primitives
/// from Thrust and routines from cuSPARSE or hypre's own sparse kernels."
///
/// Formulation: each rank owns fine rows i of both A and P, fetches the
/// external P rows referenced by its A offd columns, forms AP row-by-row
/// with a sparse accumulator, then expands the outer product
/// (P(i,jc), AP(i,kc)) into COO triples of the coarse matrix. The triples
/// for coarse rows owned elsewhere are exactly the "shared" set of the
/// paper's Algorithm 1, so global assembly of the coarse operator reuses
/// the same sort/reduce machinery as the application matrices.

#include "amg/config.hpp"
#include "linalg/parcsr.hpp"

namespace exw::amg {

/// Coarse operator P^T A P. `algo` selects the SpGEMM flavor used for
/// cost accounting and for the local products (hash vs sort-expand).
linalg::ParCsr galerkin_rap(const linalg::ParCsr& a, const linalg::ParCsr& p,
                            sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kHash);

/// Distributed C = A * B (result rows follow A's row partition; used for
/// the two-stage interpolation product P = P1 * P2 of §4.1).
linalg::ParCsr par_matmat(const linalg::ParCsr& a, const linalg::ParCsr& b,
                          sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kHash);

}  // namespace exw::amg
