#pragma once
/// \file rap.hpp
/// Distributed Galerkin triple product A_c = P^T A P (paper §4.1).
///
/// "Galerkin triple-matrix products are used to build coarse-level
/// operators. This computation is performed using parallel primitives
/// from Thrust and routines from cuSPARSE or hypre's own sparse kernels."
///
/// Formulation: each rank owns fine rows i of both A and P, fetches the
/// external P rows referenced by its A offd columns, forms AP row-by-row
/// with a sparse accumulator, then expands the outer product
/// (P(i,jc), AP(i,kc)) into COO triples of the coarse matrix. The triples
/// for coarse rows owned elsewhere are exactly the "shared" set of the
/// paper's Algorithm 1, so global assembly of the coarse operator reuses
/// the same sort/reduce machinery as the application matrices.

#include <vector>

#include "amg/config.hpp"
#include "linalg/parcsr.hpp"
#include "sparse/coo.hpp"
#include "sparse/spgemm.hpp"

namespace exw::amg {

/// Value-replay record of one galerkin_rap call. When a record is passed,
/// the cold product additionally freezes, per rank, the term lists behind
/// every intermediate AP entry and every coarse COO triple — in the exact
/// addend order the accumulators used — plus the interpolation values
/// (including the fetched external P rows) and the normalized coarse
/// triples. AmgHierarchy::refresh_values replays these ProductPlans to
/// refill the coarse operator's values from new fine values with no graph
/// traversal and no hashing, bitwise-identically to re-running
/// galerkin_rap against the frozen P.
struct RapRecord {
  struct Rank {
    /// AP values from (a_flat, p_flat); a_flat = [diag vals | offd vals]
    /// of the fine matrix, p_flat = [P diag | P offd | external rows].
    sparse::ProductPlan ap;
    sparse::ProductPlan owned;   ///< owned-triple values from (p_flat, AP)
    sparse::ProductPlan shared;  ///< shared-triple values from (p_flat, AP)
    RealVector p_flat;           ///< frozen interpolation values
    std::size_t a_diag_nnz = 0;  ///< fine-structure fingerprint
    std::size_t a_offd_nnz = 0;
  };
  std::vector<Rank> ranks;
  /// Normalized coarse COO triples (structure frozen, values refilled by
  /// the replay and then assembled through an assembly::AssemblyPlan).
  std::vector<sparse::Coo> owned;
  std::vector<sparse::Coo> shared;
};

/// Coarse operator P^T A P. `algo` selects the SpGEMM flavor used for
/// cost accounting and for the local products (hash vs sort-expand).
/// A non-null `record` freezes the value-replay structure as a side
/// effect (recording is host-side bookkeeping and charges nothing beyond
/// the cold product itself).
linalg::ParCsr galerkin_rap(const linalg::ParCsr& a, const linalg::ParCsr& p,
                            sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kHash,
                            RapRecord* record = nullptr);

/// Distributed C = A * B (result rows follow A's row partition; used for
/// the two-stage interpolation product P = P1 * P2 of §4.1).
linalg::ParCsr par_matmat(const linalg::ParCsr& a, const linalg::ParCsr& b,
                          sparse::SpGemmAlgo algo = sparse::SpGemmAlgo::kHash);

}  // namespace exw::amg
